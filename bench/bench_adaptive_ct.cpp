// Robustness extension: static vs adaptive cut bands. The paper's global
// constants (500 q/min warning, CT = 5) have a blind spot — an agent that
// ramps slowly, pulses, or probes its way to just under the warning
// threshold is never even suspected. The adaptive policy learns per-link
// normal bands and derives suspicion/cut rails from them. Expected shape:
// the full-rate rows match between policies (both catch an overt flood);
// the low-slow and pulse rows show detected ~0% under "static" and high
// detection with bounded latency under "adaptive"; the flash-crowd rows
// (agents = 0) show the adaptive policy does not buy detection with honest
// false cuts — forwarding cancels in g, so surging honest peers are
// acquitted by the very buddy rounds the rails trigger.

#include <algorithm>

#include "bench_common.hpp"
#include "experiments/extensions.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(
      argc, argv, "bench_adaptive_ct — learned cut bands vs evasive attackers",
      "robustness extension (static vs adaptive CT, sub-threshold attackers, "
      "flash crowds)");
  const std::size_t agents = std::min<std::size_t>(50, run.scale.peers / 20);
  const auto rows =
      experiments::run_adaptive_ct_ablation(run.scale, agents, run.seed);
  bench::finish(run, experiments::adaptive_ct_table(rows),
                "detection latency / damage / false cuts per strategy x policy",
                "fig_adaptive_ct");
  return 0;
}
