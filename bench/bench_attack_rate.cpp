// Extension: the detectability cliff. Sweeps the per-link sourcing rate
// Q_d from below the 500/min warning threshold up to the paper's 20,000.
// Expected shape: agents throttled near or under the warning threshold are
// rarely suspected — the protocol's blind spot — and DD-POLICE barely
// improves on no defense there (each agent does proportionally less harm,
// but a large-enough fleet of slow agents still degrades the overlay).
// Above the cliff, identification is near-total and DD-POLICE removes most
// of the damage.

#include <algorithm>

#include "bench_common.hpp"
#include "experiments/extensions.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv, "bench_attack_rate — Q_d detectability sweep",
                          "Sec. 3.3 extension (warning-threshold blind spot)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  const auto rows =
      experiments::run_attack_rate_sweep(run.scale, agents, run.seed);
  bench::finish(run, experiments::attack_rate_table(rows),
                "attack sourcing rate vs detection and damage", "attack_rate");
  return 0;
}
