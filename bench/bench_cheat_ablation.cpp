// Sec. 3.4: the cheating analysis. Agents answer buddy-group
// Neighbor_Traffic requests honestly / inflating / deflating / refusing,
// and may fabricate or withhold neighbour-list entries.
// Expected shape: no strategy saves the agents — they are identified in
// every case (inflation only strengthens their victims' exoneration;
// deflation and muting can smear individual forwarders but do not stop
// the campaign; list lies are caught by the consistency check).

#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv, "bench_cheat_ablation — cheating strategies",
                          "Sec. 3.4 (cheating case analysis)");
  const std::size_t agents = std::min<std::size_t>(50, run.scale.peers / 12);
  const auto rows = experiments::run_cheat_ablation(run.scale, agents, run.seed);
  bench::finish(run, experiments::cheat_table(rows),
                "Sec. 3.4 — agent cheating strategies vs detection",
                "cheat_ablation");
  return 0;
}
