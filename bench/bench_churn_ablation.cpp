// Robustness ablation: membership dynamics. Buddy-group staleness is the
// protocol's main error source, so this study sweeps churn regimes from a
// static overlay to lifetimes far shorter than the paper's, plus the
// alternative lifetime distributions. Expected shape: wrong cuts of good
// peers grow as lifetimes shrink; a static overlay has (near) none.

#include <algorithm>

#include "bench_common.hpp"
#include "experiments/extensions.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv, "bench_churn_ablation — membership dynamics",
                          "DESIGN.md ablation (churn sensitivity, Sec. 3.5)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  const auto rows = experiments::run_churn_ablation(run.scale, agents, run.seed);
  bench::finish(run, experiments::churn_table(rows),
                "DD-POLICE error counts across churn regimes",
                "churn_ablation");
  return 0;
}
