#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the figure-reproduction benches: run-provenance
/// banner, scale resolution (DDP_FULL / DDP_TRIALS / DDP_SEED) and CSV
/// emission next to the binary output.

#include <cstdio>
#include <iostream>
#include <string>

#include "experiments/figures.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

namespace ddp::bench {

struct Run {
  experiments::Scale scale;
  std::uint64_t seed;
};

inline Run begin(const std::string& title, const std::string& paper_ref) {
  Run run;
  run.scale = experiments::default_scale();
  run.seed = util::env_seed();
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %zu peers, %.0f min simulated, %u trial(s), seed %llu%s\n",
              run.scale.peers, run.scale.total_minutes, run.scale.trials,
              static_cast<unsigned long long>(run.seed),
              util::full_scale_requested() ? " [FULL]" : " [laptop; DDP_FULL=1 for paper scale]");
  return run;
}

inline void finish(const util::Table& table, const std::string& title,
                   const std::string& csv_name) {
  table.print(std::cout, title);
  const std::string path = csv_name + ".csv";
  if (table.write_csv(path)) {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace ddp::bench
