#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the figure-reproduction benches: run-provenance
/// banner, scale resolution (DDP_FULL / DDP_TRIALS / DDP_SEED) and CSV
/// emission into a shared output directory (default `results/`, override
/// with `--out-dir=DIR`).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "experiments/figures.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

namespace ddp::bench {

/// Peak resident set size of this process in bytes (0 if unknown).
/// Prefers VmHWM from /proc/self/status (Linux, byte-accurate pages);
/// falls back to getrusage, whose ru_maxrss unit is KiB on Linux and
/// bytes on macOS.
inline std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      const std::uint64_t kib =
          std::strtoull(line.c_str() + 6, nullptr, 10);
      if (kib != 0) return kib * 1024;
      break;
    }
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

struct Run {
  experiments::Scale scale;
  std::uint64_t seed;
  std::string out_dir = "results";
};

/// Parse the shared bench flags out of argv. `--out-dir=DIR` (or
/// `--out-dir DIR`) and `--jobs=N` (or `--jobs N`) are recognized; unknown
/// arguments are ignored so each bench stays forward-compatible with
/// future shared flags.
inline std::string parse_out_dir(int argc, char** argv) {
  std::string dir = "results";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kPrefix = "--out-dir=";
    if (arg.rfind(kPrefix, 0) == 0) {
      dir = std::string(arg.substr(kPrefix.size()));
    } else if (arg == "--out-dir" && i + 1 < argc) {
      dir = argv[++i];
    }
  }
  return dir;
}

/// Worker threads for SweepRunner-backed sweeps: `--jobs N` / `--jobs=N`
/// (0 = one per hardware thread), falling back to DDP_JOBS, then
/// `fallback`. Output is jobs-invariant; only wall clock changes.
inline unsigned parse_jobs(int argc, char** argv, unsigned fallback) {
  unsigned jobs = util::env_jobs(fallback);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kPrefix = "--jobs=";
    std::string value;
    if (arg.rfind(kPrefix, 0) == 0) {
      value = std::string(arg.substr(kPrefix.size()));
    } else if (arg == "--jobs" && i + 1 < argc) {
      value = argv[++i];
    } else {
      continue;
    }
    char* end = nullptr;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (end != value.c_str() && *end == '\0') {
      jobs = static_cast<unsigned>(v);
    }
  }
  return jobs;
}

inline Run begin(int argc, char** argv, const std::string& title,
                 const std::string& paper_ref) {
  Run run;
  run.scale = experiments::default_scale();
  run.scale.jobs = parse_jobs(argc, argv, run.scale.jobs);
  run.seed = util::env_seed();
  run.out_dir = parse_out_dir(argc, argv);
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %zu peers, %.0f min simulated, %u trial(s), seed %llu%s\n",
              run.scale.peers, run.scale.total_minutes, run.scale.trials,
              static_cast<unsigned long long>(run.seed),
              util::full_scale_requested() ? " [FULL]" : " [laptop; DDP_FULL=1 for paper scale]");
  if (run.scale.jobs != 1) {
    std::printf("jobs: %u (output identical to --jobs 1)\n", run.scale.jobs);
  }
  return run;
}

inline Run begin(const std::string& title, const std::string& paper_ref) {
  return begin(0, nullptr, title, paper_ref);
}

inline void finish(const Run& run, const util::Table& table,
                   const std::string& title, const std::string& csv_name) {
  table.print(std::cout, title);
  std::error_code ec;
  std::filesystem::create_directories(run.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", run.out_dir.c_str(),
                 ec.message().c_str());
    return;
  }
  const std::string path =
      (std::filesystem::path(run.out_dir) / (csv_name + ".csv")).string();
  if (table.write_csv(path)) {
    std::printf("wrote %s\n", path.c_str());
  }
  // Memory provenance rides in a side file so the figure CSV bytes stay
  // golden-comparable across runs and releases.
  const std::uint64_t rss = peak_rss_bytes();
  if (rss != 0) {
    std::printf("peak RSS: %.1f MiB\n",
                static_cast<double>(rss) / (1024.0 * 1024.0));
    const std::string meta =
        (std::filesystem::path(run.out_dir) / (csv_name + "_meta.csv"))
            .string();
    std::ofstream out(meta, std::ios::trunc);
    if (out) {
      out << "metric,value\n";
      out << "peak_rss_bytes," << rss << "\n";
      out << "peers," << run.scale.peers << "\n";
      out << "seed," << run.seed << "\n";
    }
  }
}

}  // namespace ddp::bench
