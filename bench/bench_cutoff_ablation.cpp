// ROADMAP ablation: DD-POLICE vs the hard-cutoff overlay family. The
// hub-suppressed scale-free graphs (Barabási–Albert growth with degree
// capped at n^(1/cutoff_exp)) are the topologies proposed to blunt
// flooding by removing high-degree relays — but those same hubs are the
// judges with the largest buddy groups. Expected shape: detection stays
// near-total and honest cuts near zero across the sweep, with the
// residual attack traffic before the verdict roughly flat — the buddy
// round needs the suspect's direct neighbours, not a hub's fan-out, so
// capping hubs costs the defense little.

#include <algorithm>

#include "bench_common.hpp"
#include "experiments/extensions.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv,
                          "bench_cutoff_ablation — degree-capped overlays",
                          "ROADMAP ablation (hard-cutoff exponent sweep)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  // Exponent 1 is plain BA (cap = n, never binds); 2 is the classic
  // sqrt(n) hub cap; beyond 4 the overlay approaches degree-regular.
  const std::vector<double> exponents{1.0, 1.5, 2.0, 3.0, 4.0, 6.0};
  const auto rows =
      experiments::run_cutoff_ablation(run.scale, agents, run.seed, exponents);
  bench::finish(run, experiments::cutoff_table(rows),
                "detection / false cuts / damage per degree cap",
                "fig_cutoff_ablation");
  return 0;
}
