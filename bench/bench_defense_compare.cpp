// Extension of Sec. 4 (related work): all four defenses under the same
// campaign, quantified. Expected shape: the naive strawman identifies the
// agents but wrongly cuts the forwarders around them (the danger Sec. 2.1
// calls out); fair-share preserves some service but identifies nobody;
// DD-POLICE both restores service and names the agents at modest overhead.

#include <algorithm>

#include "bench_common.hpp"
#include "experiments/extensions.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv, "bench_defense_compare — defenses head to head",
                          "Sec. 4 quantified (none / naive-cut / fair-share / "
                          "DD-POLICE)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  const auto rows =
      experiments::run_defense_comparison(run.scale, agents, run.seed);
  bench::finish(run, experiments::defense_table(rows),
                "defense comparison under identical attack",
                "defense_compare");
  return 0;
}
