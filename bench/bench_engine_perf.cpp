// Engine micro-benchmarks (google-benchmark): event-queue throughput,
// wire codec speed, flood propagation rate in both engines, coverage
// profiling and the DD-POLICE indicator computation. These quantify the
// simulator itself, not the paper's results.
//
// Besides the google-benchmark console table, the binary runs a fixed
// headline pass and writes machine-readable BENCH_engine.json (and .csv)
// into --out-dir [results/]: events/sec, ns/event, queries/sec, wall
// time, jobs — one file per run, so the perf trajectory is diffable
// across PRs. `--headline-only` skips the google-benchmark suite.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/ddpolice.hpp"
#include "flow/flow_port.hpp"
#include "core/indicators.hpp"
#include "flow/network.hpp"
#include "net/message.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "p2p/network.hpp"
#include "sim/engine.hpp"
#include "topology/coverage.hpp"
#include "topology/generators.hpp"

namespace {

using namespace ddp;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      e.schedule_at(static_cast<double>((i * 7919) % 1000),
                    [&sink] { ++sink; });
    }
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MessageEncodeDecode(benchmark::State& state) {
  util::Rng rng(1);
  net::Message m;
  m.header.guid = net::Guid::random(rng);
  m.payload = net::NeighborTraffic{1, 2, 3, 20000, 312};
  for (auto _ : state) {
    const auto bytes = net::encode(m);
    auto out = net::decode(bytes);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_FloodCoverage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const topology::Graph g = topology::paper_topology(n, rng);
  for (auto _ : state) {
    auto p = topology::flood_coverage(g, 0, 7);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FloodCoverage)->Arg(500)->Arg(2000);

void BM_PacketEngineFlood(benchmark::State& state) {
  // One full TTL-7 flood through a 200-peer overlay, message granularity.
  util::Rng rng(3);
  topology::Graph g = topology::paper_topology(200, rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 200);
  std::uint64_t messages = 0;
  for (auto _ : state) {
    sim::Engine engine;
    p2p::P2pConfig cfg;
    p2p::PacketNetwork net(g, content, engine, cfg, util::Rng(4));
    net.issue_query(0, 1);
    engine.run_until(60.0);
    messages += net.totals().messages_sent;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["msgs/flood"] =
      static_cast<double>(messages) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_PacketEngineFlood);

void BM_PacketEngineFloodProfiled(benchmark::State& state) {
  // Same flood with an EngineProfiler attached: the delta vs
  // BM_PacketEngineFlood is the cost of per-dispatch wall-clock sampling.
  util::Rng rng(3);
  topology::Graph g = topology::paper_topology(200, rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 200);
  obs::EngineProfiler profiler;
  for (auto _ : state) {
    sim::Engine engine;
    engine.set_profiler(&profiler);
    p2p::P2pConfig cfg;
    p2p::PacketNetwork net(g, content, engine, cfg, util::Rng(4));
    net.issue_query(0, 1);
    engine.run_until(60.0);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(profiler.total_events()));
  state.counters["transmit_mean_us"] =
      profiler.stats(obs::EventCategory::kTransmit).mean_us();
  state.counters["service_mean_us"] =
      profiler.stats(obs::EventCategory::kService).mean_us();
  state.counters["max_pending"] = static_cast<double>(profiler.max_pending());
}
BENCHMARK(BM_PacketEngineFloodProfiled);

void BM_PacketEngineFloodTraced(benchmark::State& state) {
  // Same flood with a ring-buffer trace sink bound: the delta vs
  // BM_PacketEngineFlood is the full tracing cost (event build + store).
  util::Rng rng(3);
  topology::Graph g = topology::paper_topology(200, rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 200);
  obs::RingBufferSink sink(4096);
  for (auto _ : state) {
    sim::Engine engine;
    p2p::P2pConfig cfg;
    p2p::PacketNetwork net(g, content, engine, cfg, util::Rng(4));
    net.set_trace_sink(&sink);
    net.issue_query(0, 1);
    engine.run_until(60.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sink.total()));
  state.counters["events/flood"] = static_cast<double>(sink.total()) /
                                   static_cast<double>(state.iterations());
}
BENCHMARK(BM_PacketEngineFloodTraced);

void BM_TraceEventSerialize(benchmark::State& state) {
  // JSONL serialization throughput of one fully-populated event.
  obs::TraceEvent e;
  e.t = 123.456;
  e.type = obs::EventType::kIndicatorComputed;
  e.a = 17;
  e.b = 42;
  e.add_field("g", 165.87);
  e.add_field("s", 132.537);
  e.add_field("k", 8.0);
  e.add_field("responders", 7.0);
  for (auto _ : state) {
    auto line = obs::to_jsonl(e);
    benchmark::DoNotOptimize(line);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEventSerialize);

void BM_FlowEngineMinute(benchmark::State& state) {
  // One simulated minute of the flow engine at the given overlay size.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  topology::Graph g = topology::paper_topology(n, rng);
  util::Rng bw_rng = rng.fork("bw");
  const topology::BandwidthMap bw(n, bw_rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, n);
  flow::FlowConfig cfg;
  flow::FlowNetwork net(g, bw, content, cfg, rng.fork("flow"));
  for (PeerId a = 0; a < n / 20; ++a) net.set_kind(a, PeerKind::kBad);
  for (auto _ : state) {
    net.run_minutes(1.0);
    benchmark::DoNotOptimize(net.last_minute_report());
  }
  state.SetItemsProcessed(state.iterations() * 60);  // ticks
}
BENCHMARK(BM_FlowEngineMinute)->Arg(500)->Arg(2000);

void BM_Indicators(benchmark::State& state) {
  std::vector<core::MemberReport> reports;
  for (PeerId m = 0; m < 8; ++m) {
    reports.push_back({m, 1200.0 + m, 8000.0 - m, true});
  }
  for (auto _ : state) {
    const double g = core::general_indicator(reports, 100.0, 10000.0);
    const double s = core::single_indicator(reports, 3, 100.0, 10000.0);
    benchmark::DoNotOptimize(g);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Indicators);

// ------------------------------------------------------- headline pass

/// Event-core throughput: schedule-and-drain cycles of `n` one-shot
/// events through fresh engines for at least `min_seconds` of wall time.
/// Returns events per second.
double headline_events_per_sec(std::size_t n, double min_seconds) {
  using clock = std::chrono::steady_clock;
  std::uint64_t events = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    sim::Engine e;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      e.schedule_at(static_cast<double>((i * 7919) % 1000),
                    [&sink] { ++sink; });
    }
    e.run();
    benchmark::DoNotOptimize(sink);
    events += e.events_executed();
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(events) / elapsed;
}

/// Packet-engine query throughput: repeated TTL-7 floods through a
/// 200-peer overlay. Returns serviced queries per second of wall time.
double headline_queries_per_sec(double min_seconds) {
  using clock = std::chrono::steady_clock;
  util::Rng rng(3);
  topology::Graph g = topology::paper_topology(200, rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 200);
  std::uint64_t queries = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    sim::Engine engine;
    p2p::P2pConfig cfg;
    p2p::PacketNetwork net(g, content, engine, cfg, util::Rng(4));
    net.issue_query(0, 1);
    engine.run_until(60.0);
    queries += net.totals().queries_processed;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(queries) / elapsed;
}

/// Flow-engine throughput: simulated minutes per second of wall time on an
/// overlay of `peers` under a 5% compromised-peer load — the figure
/// benches' dominant inner loop. `worker_jobs` > 1 runs the sharded
/// parallel tick sweeps (output is byte-identical; only wall time moves).
double headline_flow_minutes_per_sec(std::size_t peers, double min_seconds,
                                     unsigned worker_jobs = 1) {
  using clock = std::chrono::steady_clock;
  util::Rng rng(5);
  topology::Graph g = topology::paper_topology(peers, rng);
  util::Rng bw_rng = rng.fork("bw");
  const topology::BandwidthMap bw(peers, bw_rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, peers);
  flow::FlowConfig cfg;
  cfg.jobs = worker_jobs;
  flow::FlowNetwork net(g, bw, content, cfg, rng.fork("flow"));
  for (PeerId a = 0; a < peers / 20; ++a) net.set_kind(a, PeerKind::kBad);
  std::uint64_t minutes = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    net.run_minutes(1.0);
    benchmark::DoNotOptimize(net.last_minute_report());
    ++minutes;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(minutes) / elapsed;
}

/// One point of the shard-count scaling curve.
struct ShardPoint {
  unsigned jobs = 1;
  double flow_minutes_per_sec = 0.0;
};

/// The shard scaling curve: flow-minutes/sec at `peers` for 1/2/4/8
/// workers. On a single-core builder the curve is flat (the merge is
/// deterministic, not magic); on a real multi-core host it is the
/// headline speedup figure of the sharded engine.
std::vector<ShardPoint> shard_scaling_curve(std::size_t peers,
                                            double min_seconds) {
  std::vector<ShardPoint> curve;
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    curve.push_back(
        {jobs, headline_flow_minutes_per_sec(peers, min_seconds, jobs)});
    std::printf("  shard curve: %u jobs -> %.2f flow min/s @%zu peers\n",
                jobs, curve.back().flow_minutes_per_sec, peers);
  }
  return curve;
}

/// Million-peer soak: build a `peers`-node overlay, attach DD-POLICE over
/// the flow port, and run `sim_minutes` simulated minutes. Reports wall
/// time per simulated minute and peak RSS — the scale acceptance run for
/// the sharded engine (`--mega`, optionally `--mega=PEERS`). Numbers go to
/// stdout only; docs/perf.md records the canonical measurement.
int run_mega(std::size_t peers, unsigned worker_jobs, double sim_minutes) {
  using clock = std::chrono::steady_clock;
  std::printf("mega: building %zu-peer overlay (jobs=%u)...\n", peers,
              worker_jobs);
  const auto t0 = clock::now();
  util::Rng rng(5);
  topology::Graph g = topology::paper_topology(peers, rng);
  util::Rng bw_rng = rng.fork("bw");
  const topology::BandwidthMap bw(peers, bw_rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, peers);
  flow::FlowConfig cfg;
  cfg.jobs = worker_jobs;
  flow::FlowNetwork net(g, bw, content, cfg, rng.fork("flow"));
  for (PeerId a = 0; a < peers / 20; ++a) net.set_kind(a, PeerKind::kBad);
  ddp::flow::FlowPort port(net);
  ddp::core::DdPoliceConfig dcfg;
  ddp::core::DdPolice ddp(port, dcfg, rng.fork("ddp"));
  ddp.set_sweep_pool(net.worker_pool());
  const double build_s =
      std::chrono::duration<double>(clock::now() - t0).count();
  std::printf("mega: build %.1fs, %.0f MiB RSS after construction\n",
              build_s,
              static_cast<double>(ddp::bench::peak_rss_bytes()) / (1 << 20));
  const auto t1 = clock::now();
  double minute = 0.0;
  while (minute < sim_minutes) {
    net.run_minutes(1.0);
    minute += 1.0;
    ddp.on_minute(minute);
    const double so_far =
        std::chrono::duration<double>(clock::now() - t1).count();
    std::printf("mega: minute %.0f done, %.1fs wall (%.1fs/min), "
                "%llu suspicions, %zu cuts\n",
                minute, so_far, so_far / minute,
                static_cast<unsigned long long>(ddp.suspicions()),
                ddp.decisions().size());
  }
  const double sweep_s =
      std::chrono::duration<double>(clock::now() - t1).count();
  std::printf("mega: %zu peers, jobs=%u: %.1fs build, %.2fs/sim-minute, "
              "peak RSS %.0f MiB\n",
              peers, worker_jobs, build_s, sweep_s / sim_minutes,
              static_cast<double>(ddp::bench::peak_rss_bytes()) / (1 << 20));
  return 0;
}

void write_headline(const std::string& out_dir, double events_per_sec,
                    double queries_per_sec, double flow_minutes_per_sec,
                    std::size_t flow_peers, double wall_seconds,
                    unsigned jobs, std::size_t shard_peers,
                    const std::vector<ShardPoint>& curve) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return;
  }
  const double ns_per_event =
      events_per_sec > 0.0 ? 1e9 / events_per_sec : 0.0;
  const std::string json_path =
      (std::filesystem::path(out_dir) / "BENCH_engine.json").string();
  const std::uint64_t rss = ddp::bench::peak_rss_bytes();
  // The sharded headline is the curve's best point: on one core that is
  // jobs=1 (the curve is flat), on a multi-core host the widest fan-out.
  double sharded_best = 0.0;
  for (const auto& p : curve) {
    sharded_best = std::max(sharded_best, p.flow_minutes_per_sec);
  }
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"engine_perf\",\n"
                 "  \"events_per_sec\": %.1f,\n"
                 "  \"ns_per_event\": %.2f,\n"
                 "  \"queries_per_sec\": %.1f,\n"
                 "  \"flow_minutes_per_sec\": %.2f,\n"
                 "  \"flow_peers\": %zu,\n"
                 "  \"sharded_flow_minutes_per_sec\": %.2f,\n"
                 "  \"sharded_flow_peers\": %zu,\n",
                 events_per_sec, ns_per_event, queries_per_sec,
                 flow_minutes_per_sec, flow_peers, sharded_best, shard_peers);
    std::fprintf(f, "  \"shard_curve\": [");
    for (std::size_t i = 0; i < curve.size(); ++i) {
      std::fprintf(f, "%s{\"jobs\": %u, \"flow_minutes_per_sec\": %.2f}",
                   i == 0 ? "" : ", ", curve[i].jobs,
                   curve[i].flow_minutes_per_sec);
    }
    std::fprintf(f,
                 "],\n"
                 "  \"peak_rss_bytes\": %llu,\n"
                 "  \"wall_seconds\": %.3f,\n"
                 "  \"jobs\": %u\n"
                 "}\n",
                 static_cast<unsigned long long>(rss), wall_seconds, jobs);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  const std::string csv_path =
      (std::filesystem::path(out_dir) / "BENCH_engine.csv").string();
  if (std::FILE* f = std::fopen(csv_path.c_str(), "w")) {
    std::fprintf(f,
                 "events_per_sec,ns_per_event,queries_per_sec,"
                 "flow_minutes_per_sec,flow_peers,"
                 "sharded_flow_minutes_per_sec,sharded_flow_peers,"
                 "peak_rss_bytes,wall_seconds,jobs\n"
                 "%.1f,%.2f,%.1f,%.2f,%zu,%.2f,%zu,%llu,%.3f,%u\n",
                 events_per_sec, ns_per_event, queries_per_sec,
                 flow_minutes_per_sec, flow_peers, sharded_best, shard_peers,
                 static_cast<unsigned long long>(rss), wall_seconds, jobs);
    std::fclose(f);
    std::printf("wrote %s\n", csv_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();

  // Pull the shared bench flags out before google-benchmark parses the
  // rest (it rejects flags it does not know).
  std::string out_dir = "results";
  unsigned jobs = 1;
  bool headline_only = false;
  std::size_t mega_peers = 0;  // 0 = mega mode off
  std::vector<char*> pass{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(10);
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--mega") {
      mega_peers = 1000000;
    } else if (arg.rfind("--mega=", 0) == 0) {
      mega_peers = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--headline-only") {
      headline_only = true;
    } else {
      pass.push_back(argv[i]);
    }
  }
  if (mega_peers > 0) {
    return run_mega(mega_peers, jobs == 0 ? 1 : jobs, 3.0);
  }
  int pass_argc = static_cast<int>(pass.size());
  benchmark::Initialize(&pass_argc, pass.data());
  if (!headline_only) {
    if (benchmark::ReportUnrecognizedArguments(pass_argc, pass.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();

  // Headline pass: fixed workloads, wall-clock timed, machine-readable.
  const double events_per_sec = headline_events_per_sec(100000, 1.0);
  const double queries_per_sec = headline_queries_per_sec(1.0);
  const std::size_t flow_peers = 2000;
  const double flow_minutes_per_sec =
      headline_flow_minutes_per_sec(flow_peers, 2.0);
  const std::size_t shard_peers = 20000;
  const auto curve = shard_scaling_curve(shard_peers, 1.0);
  const double wall =
      std::chrono::duration<double>(clock::now() - t0).count();
  std::printf("headline: %.2fM events/s (%.1f ns/event), %.0f queries/s, "
              "%.2f flow min/s @%zu peers, %.1fs wall\n",
              events_per_sec / 1e6, 1e9 / events_per_sec, queries_per_sec,
              flow_minutes_per_sec, flow_peers, wall);
  write_headline(out_dir, events_per_sec, queries_per_sec,
                 flow_minutes_per_sec, flow_peers, wall, jobs, shard_peers,
                 curve);
  return 0;
}
