// Engine micro-benchmarks (google-benchmark): event-queue throughput,
// wire codec speed, flood propagation rate in both engines, coverage
// profiling and the DD-POLICE indicator computation. These quantify the
// simulator itself, not the paper's results.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/indicators.hpp"
#include "flow/network.hpp"
#include "net/message.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "p2p/network.hpp"
#include "sim/engine.hpp"
#include "topology/coverage.hpp"
#include "topology/generators.hpp"

namespace {

using namespace ddp;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      e.schedule_at(static_cast<double>((i * 7919) % 1000),
                    [&sink] { ++sink; });
    }
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MessageEncodeDecode(benchmark::State& state) {
  util::Rng rng(1);
  net::Message m;
  m.header.guid = net::Guid::random(rng);
  m.payload = net::NeighborTraffic{1, 2, 3, 20000, 312};
  for (auto _ : state) {
    const auto bytes = net::encode(m);
    auto out = net::decode(bytes);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_FloodCoverage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const topology::Graph g = topology::paper_topology(n, rng);
  for (auto _ : state) {
    auto p = topology::flood_coverage(g, 0, 7);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FloodCoverage)->Arg(500)->Arg(2000);

void BM_PacketEngineFlood(benchmark::State& state) {
  // One full TTL-7 flood through a 200-peer overlay, message granularity.
  util::Rng rng(3);
  topology::Graph g = topology::paper_topology(200, rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 200);
  std::uint64_t messages = 0;
  for (auto _ : state) {
    sim::Engine engine;
    p2p::P2pConfig cfg;
    p2p::PacketNetwork net(g, content, engine, cfg, util::Rng(4));
    net.issue_query(0, 1);
    engine.run_until(60.0);
    messages += net.totals().messages_sent;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["msgs/flood"] =
      static_cast<double>(messages) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_PacketEngineFlood);

void BM_PacketEngineFloodProfiled(benchmark::State& state) {
  // Same flood with an EngineProfiler attached: the delta vs
  // BM_PacketEngineFlood is the cost of per-dispatch wall-clock sampling.
  util::Rng rng(3);
  topology::Graph g = topology::paper_topology(200, rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 200);
  obs::EngineProfiler profiler;
  for (auto _ : state) {
    sim::Engine engine;
    engine.set_profiler(&profiler);
    p2p::P2pConfig cfg;
    p2p::PacketNetwork net(g, content, engine, cfg, util::Rng(4));
    net.issue_query(0, 1);
    engine.run_until(60.0);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(profiler.total_events()));
  state.counters["transmit_mean_us"] =
      profiler.stats(obs::EventCategory::kTransmit).mean_us();
  state.counters["service_mean_us"] =
      profiler.stats(obs::EventCategory::kService).mean_us();
  state.counters["max_pending"] = static_cast<double>(profiler.max_pending());
}
BENCHMARK(BM_PacketEngineFloodProfiled);

void BM_PacketEngineFloodTraced(benchmark::State& state) {
  // Same flood with a ring-buffer trace sink bound: the delta vs
  // BM_PacketEngineFlood is the full tracing cost (event build + store).
  util::Rng rng(3);
  topology::Graph g = topology::paper_topology(200, rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 200);
  obs::RingBufferSink sink(4096);
  for (auto _ : state) {
    sim::Engine engine;
    p2p::P2pConfig cfg;
    p2p::PacketNetwork net(g, content, engine, cfg, util::Rng(4));
    net.set_trace_sink(&sink);
    net.issue_query(0, 1);
    engine.run_until(60.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sink.total()));
  state.counters["events/flood"] = static_cast<double>(sink.total()) /
                                   static_cast<double>(state.iterations());
}
BENCHMARK(BM_PacketEngineFloodTraced);

void BM_TraceEventSerialize(benchmark::State& state) {
  // JSONL serialization throughput of one fully-populated event.
  obs::TraceEvent e;
  e.t = 123.456;
  e.type = obs::EventType::kIndicatorComputed;
  e.a = 17;
  e.b = 42;
  e.add_field("g", 165.87);
  e.add_field("s", 132.537);
  e.add_field("k", 8.0);
  e.add_field("responders", 7.0);
  for (auto _ : state) {
    auto line = obs::to_jsonl(e);
    benchmark::DoNotOptimize(line);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEventSerialize);

void BM_FlowEngineMinute(benchmark::State& state) {
  // One simulated minute of the flow engine at the given overlay size.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  topology::Graph g = topology::paper_topology(n, rng);
  util::Rng bw_rng = rng.fork("bw");
  const topology::BandwidthMap bw(n, bw_rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, n);
  flow::FlowConfig cfg;
  flow::FlowNetwork net(g, bw, content, cfg, rng.fork("flow"));
  for (PeerId a = 0; a < n / 20; ++a) net.set_kind(a, PeerKind::kBad);
  for (auto _ : state) {
    net.run_minutes(1.0);
    benchmark::DoNotOptimize(net.last_minute_report());
  }
  state.SetItemsProcessed(state.iterations() * 60);  // ticks
}
BENCHMARK(BM_FlowEngineMinute)->Arg(500)->Arg(2000);

void BM_Indicators(benchmark::State& state) {
  std::vector<core::MemberReport> reports;
  for (PeerId m = 0; m < 8; ++m) {
    reports.push_back({m, 1200.0 + m, 8000.0 - m, true});
  }
  for (auto _ : state) {
    const double g = core::general_indicator(reports, 100.0, 10000.0);
    const double s = core::single_indicator(reports, 3, 100.0, 10000.0);
    benchmark::DoNotOptimize(g);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Indicators);

}  // namespace

BENCHMARK_MAIN();
