// Sec. 3.7.1: the neighbour-list exchange frequency study. Periodic
// policies at s in {1,2,4,5,10} minutes against the event-driven policy.
// Expected shape: little performance difference for s <= 2 minutes;
// misjudgment grows at s = 4..10 (stale lists); event-driven minimizes
// errors but costs the most exchange messages in a dynamic overlay.

#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv,
      "bench_exchange_freq — neighbour-list exchange frequency study",
      "Sec. 3.7.1 (frequency of neighbor list exchanging)");
  const std::size_t agents = std::min<std::size_t>(50, run.scale.peers / 12);
  const auto rows = experiments::run_exchange_frequency_study(
      run.scale, {1.0, 2.0, 4.0, 5.0, 10.0}, true, agents, run.seed);
  bench::finish(run, experiments::exchange_frequency_table(rows),
                "Sec. 3.7.1 — exchange policy vs errors and overhead",
                "exchange_freq");
  return 0;
}
