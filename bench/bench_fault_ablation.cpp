// Robustness extension (Sec. 5 future work): DD-POLICE judges its
// neighbours through Neighbor_List / Neighbor_Traffic messages, so its
// decision quality is only as good as the channel those messages cross.
// This bench sweeps control-plane message loss x delay jitter (payload
// corruption rides along at loss/4) with the timeout/retry hardening
// active. Expected shape: the loss = jitter = 0 row matches the fault-free
// dd-police row bit for bit; rising loss monotonically raises timeouts,
// retries and misjudgments; jitter beyond the 5 s collect timeout converts
// valid replies into late ones.

#include <algorithm>

#include "bench_common.hpp"
#include "experiments/extensions.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv, "bench_fault_ablation — DD-POLICE on a lossy wire",
                          "robustness extension (control-plane loss x jitter "
                          "sweep with timeout/retry)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  const std::vector<double> losses{0.0, 0.1, 0.3, 0.5};
  const std::vector<double> jitters{0.0, 4.0};
  const auto rows = experiments::run_fault_ablation(run.scale, agents,
                                                    run.seed, losses, jitters);
  bench::finish(run, experiments::fault_table(rows),
                "detection quality vs control-plane degradation",
                "fault_ablation");
  return 0;
}
