// Figure 10: average query response time vs. number of DDoS agents.
// Expected shape: response time grows several-fold under attack (the paper
// reports ~2.4x at 100 agents) and DD-POLICE restores it close to the
// no-attack curve.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const auto run = bench::begin(argc, argv,
      "bench_fig10_response — average response time vs #DDoS agents",
      "Figure 10 (query response time)");
  const auto rows = experiments::run_agent_sweep(run.scale, run.seed);
  bench::finish(run, experiments::fig10_response_table(rows),
                "Figure 10 — average response time (seconds)",
                "fig10_response");
  return 0;
}
