// Figure 11: average query success rate vs. number of DDoS agents.
// Expected shape: success collapses as agents multiply (the paper reports
// up to 89.7% of queries failing), while DD-POLICE holds success near the
// healthy baseline.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const auto run = bench::begin(argc, argv,
      "bench_fig11_success — query success rate vs #DDoS agents",
      "Figure 11 (success rate)");
  const auto rows = experiments::run_agent_sweep(run.scale, run.seed);
  bench::finish(run, experiments::fig11_success_table(rows),
                "Figure 11 — average success rate (%)", "fig11_success");
  return 0;
}
