// Figure 12: damage rate D(t) over time under a 100-agent attack, for the
// undefended overlay and DD-POLICE at CT in {3, 7, 10}.
// Expected shape: damage spikes when the attack starts; DD-POLICE pulls it
// down within minutes — CT=3 converges fastest but stabilizes above CT=7
// (good peers wrongly cut), while CT=10 converges slowly and stabilizes
// highest.

#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv,
      "bench_fig12_damage — damage rate timeline under 100-agent attack",
      "Figure 12 (effectiveness of DD-POLICE in dynamic P2P environments)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  const auto tl = experiments::run_damage_timelines(run.scale, {3.0, 7.0, 10.0},
                                                    agents, run.seed);
  bench::finish(run, experiments::fig12_damage_table(tl),
                "Figure 12 — damage rate D(t) (%)", "fig12_damage");
  return 0;
}
