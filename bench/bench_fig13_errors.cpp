// Figure 13: the three error counts vs. the cut threshold CT.
// Expected shape: false negative (good peers wrongly cut — the paper's
// naming) decreases with CT; false positive (bad peers not identified)
// increases with CT; their sum — false judgment — is minimized around
// CT = 5..7, the paper's recommended operating point.

#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv, "bench_fig13_errors — errors vs cut threshold",
                          "Figure 13 (errors vs. cut threshold)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  const auto rows = experiments::run_ct_sweep(
      run.scale, {1.0, 2.0, 3.0, 5.0, 7.0, 9.0, 12.0}, agents, run.seed);
  bench::finish(run, experiments::fig13_errors_table(rows),
                "Figure 13 — errors vs cut threshold", "fig13_errors");
  return 0;
}
