// Figure 13: the three error counts vs. the cut threshold CT.
// Expected shape: false negative (good peers wrongly cut — the paper's
// naming) decreases with CT; false positive (bad peers not identified)
// increases with CT; their sum — false judgment — is minimized around
// CT = 5..7, the paper's recommended operating point.
//
// Extension columns (same seeds, CutPolicy::kQuarantine): mean time for a
// falsely cut honest peer to be reinstated, how many honest peers were
// reinstated per trial, the reinstated peers' own end-of-run query
// success probability (0 while cut, and 0 forever under a permanent
// cut), and the network-wide S(t) under each policy. The permanent-cut
// error columns are computed from the exact same runs as before and are
// unchanged.

#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv, "bench_fig13_errors — errors vs cut threshold",
                          "Figure 13 (errors vs. cut threshold)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  const auto rows = experiments::run_ct_sweep(
      run.scale, {1.0, 2.0, 3.0, 5.0, 7.0, 9.0, 12.0}, agents, run.seed,
      /*with_quarantine=*/true);
  bench::finish(run, experiments::fig13_errors_table(rows),
                "Figure 13 — errors vs cut threshold", "fig13_errors");
  return 0;
}
