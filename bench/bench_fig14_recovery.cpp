// Figure 14: damage recovery time (from D >= 20% until D <= 15%) vs. the
// cut threshold CT.
// Expected shape: recovery time grows with CT — laxer thresholds take
// longer to identify the agents, so the damage persists longer.

#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv,
      "bench_fig14_recovery — damage recovery time vs cut threshold",
      "Figure 14 (damage recovery time vs. cut threshold)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  const auto rows = experiments::run_ct_sweep(
      run.scale, {1.0, 2.0, 3.0, 5.0, 7.0, 9.0, 12.0}, agents, run.seed);
  bench::finish(run, experiments::fig14_recovery_table(rows),
                "Figure 14 — damage recovery time (minutes)", "fig14_recovery");
  return 0;
}
