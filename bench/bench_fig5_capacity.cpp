// Figure 5: queries sent out vs. queries processed per minute in the
// Sec. 2.3 LimeWire testbed (A -> B -> C chain; B services ~10,000/min).
// Expected shape: processing tracks the offered rate up to ~15,000/min
// (service + one minute of queue absorption), then plateaus at capacity.

#include "bench_common.hpp"
#include "p2p/testbed.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const auto run = bench::begin(argc, argv,
      "bench_fig5_capacity — single-peer query processing under load",
      "Figure 5 (queries sent out vs. processed)");

  p2p::TestbedConfig cfg;
  std::vector<double> rates;
  for (double r = 1000.0; r <= 29000.0; r += 2000.0) rates.push_back(r);
  const auto points = p2p::run_testbed_sweep(cfg, rates, run.seed);

  util::Table t({"sent_per_minute", "processed_per_minute", "received_by_B"});
  for (const auto& p : points) {
    t.row()
        .cell(p.sent_per_minute, 0)
        .cell(p.processed_per_minute, 0)
        .cell(p.received_by_b, 0);
  }
  bench::finish(run, t, "Figure 5 — queries sent vs processed (per minute)",
                "fig5_capacity");
  return 0;
}
