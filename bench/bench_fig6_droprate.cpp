// Figure 6: query drop rate vs. query density at peer B in the Sec. 2.3
// testbed. Expected shape: near-zero drops below the ~15,000/min onset,
// rising to ~47% at peer A's maximum replay rate (~29,000/min).

#include "bench_common.hpp"
#include "p2p/testbed.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const auto run = bench::begin(argc, argv,
      "bench_fig6_droprate — drop rate vs query density",
      "Figure 6 (query drop rate vs. query density)");

  p2p::TestbedConfig cfg;
  std::vector<double> rates;
  for (double r = 5000.0; r <= 29000.0; r += 2000.0) rates.push_back(r);
  const auto points = p2p::run_testbed_sweep(cfg, rates, run.seed);

  util::Table t({"received_per_minute", "drop_rate_pct"});
  for (const auto& p : points) {
    t.row().cell(p.sent_per_minute, 0).cell(p.drop_rate * 100.0, 1);
  }
  bench::finish(run, t, "Figure 6 — drop rate vs query density", "fig6_droprate");
  return 0;
}
