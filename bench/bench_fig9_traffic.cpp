// Figure 9: average traffic cost vs. number of DDoS agents, three curves
// (under DDoS without DD-POLICE / with DD-POLICE / no attack).
// Expected shape: the undefended curve grows steeply with the agent count
// (tens of agents multiply total traffic; ~100 agents push it an order of
// magnitude over baseline), while DD-POLICE stays near the no-attack curve
// with slightly higher cost (its protocol overhead).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const auto run = bench::begin(argc, argv,
      "bench_fig9_traffic — average traffic cost vs #DDoS agents",
      "Figure 9 (average traffic cost)");
  const auto rows = experiments::run_agent_sweep(run.scale, run.seed);
  bench::finish(run, experiments::fig9_traffic_table(rows),
                "Figure 9 — average traffic cost (10^3 msgs/min)",
                "fig9_traffic");
  return 0;
}
