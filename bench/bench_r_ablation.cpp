// Sec. 3.5: DD-POLICE-r. Buddy radius r = 1 vs r = 2, with honest and
// colluding (deflating) agents.
// Expected shape: with honest reporting the radii perform alike; with
// deflating agents r = 2's flow-balance cross-check protects the
// forwarders that r = 1 wrongly cuts, at extra protocol cost.

#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv, "bench_r_ablation — DD-POLICE-r buddy radius",
                          "Sec. 3.5 (DD-POLICE-r, r > 1)");
  const std::size_t agents = std::min<std::size_t>(50, run.scale.peers / 12);
  const auto rows = experiments::run_radius_ablation(run.scale, agents, run.seed);
  bench::finish(run, experiments::radius_table(rows),
                "Sec. 3.5 — buddy radius ablation", "r_ablation");
  return 0;
}
