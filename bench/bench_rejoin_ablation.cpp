// Extension of Sec. 3.7.2: attacker persistence. "No mechanism can
// prevent the DDoS agent from joining the system again"; this study
// quantifies the arms race when isolated agents walk back in. Expected
// shape: the faster agents rejoin, the higher the steady-state damage and
// the more disconnect work DD-POLICE performs — but service stays far
// above the undefended level.

#include <algorithm>

#include "bench_common.hpp"
#include "experiments/extensions.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv, "bench_rejoin_ablation — attacker persistence",
                          "Sec. 3.7.2 extension (agents rejoining)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  const auto rows = experiments::run_rejoin_study(run.scale, agents, run.seed);
  bench::finish(run, experiments::rejoin_table(rows),
                "steady state under persistent attackers", "rejoin_ablation");
  return 0;
}
