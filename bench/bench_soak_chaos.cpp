// Chaos soak: run the full self-healing stack (quarantine cuts, priority
// shedding, partition repair) under a hostile schedule — flooding agents
// that rejoin after every cut, churn, lossy control links, peer
// crash/stall faults — and assert the standing invariants every simulated
// minute (see src/experiments/soak.hpp). Exits non-zero on any violation,
// so CI can gate on it.
//
// Keys (defaults in brackets):
//   peers[300] agents[30] minutes[480] seed[20070710]
//   connectivity[0.85]   honest-majority largest-component floor
//   check_every[1]       minutes between invariant sweeps
//   csv[-]               write the per-hour series to this file
//
// The default schedule is 480 simulated minutes = 8 simulated hours.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "experiments/soak.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opts(argc, argv);

  const auto peers =
      static_cast<std::size_t>(opts.get("peers", std::int64_t{300}));
  const auto agents =
      static_cast<std::size_t>(opts.get("agents", std::int64_t{30}));
  const double minutes = opts.get("minutes", 480.0);
  const auto seed =
      static_cast<std::uint64_t>(opts.get("seed", std::int64_t{20070710}));

  experiments::SoakConfig cfg =
      experiments::chaos_soak_config(peers, agents, minutes, seed);
  cfg.min_honest_connectivity = opts.get("connectivity", 0.85);
  cfg.check_every_minutes = opts.get("check_every", 1.0);

  std::printf("bench_soak_chaos — %zu peers, %zu agents, %.0f min "
              "(%.1f simulated hours), seed %llu\n",
              peers, agents, minutes, minutes / 60.0,
              static_cast<unsigned long long>(seed));
  std::printf("chaos: rejoining agents, churn, loss=%.2f corrupt=%.2f, "
              "crash=%g/min stall=%g/min, quarantine+priority+repair on\n",
              cfg.scenario.fault.channel.drop_probability,
              cfg.scenario.fault.channel.corrupt_probability,
              cfg.scenario.fault.peer.crash_probability_per_minute,
              cfg.scenario.fault.peer.stall_probability_per_minute);

  const experiments::SoakReport report = experiments::run_soak(cfg);

  // Per-hour digest of the run: a soak log humans can scan.
  util::Table t({"hour", "success_pct", "traffic", "dropped", "dropped_good",
                 "dropped_attack", "active_peers"});
  const auto& hist = report.result.history;
  for (std::size_t h = 0; h * 60 < hist.size(); ++h) {
    double success = 0.0, traffic = 0.0, dropped = 0.0;
    double dgood = 0.0, dattack = 0.0;
    std::size_t n = 0;
    for (std::size_t i = h * 60; i < hist.size() && i < (h + 1) * 60; ++i) {
      success += hist[i].success_rate;
      traffic += hist[i].traffic_messages;
      dropped += hist[i].dropped;
      dgood += hist[i].dropped_good;
      dattack += hist[i].dropped_attack;
      ++n;
    }
    if (n == 0) break;
    t.row()
        .cell(static_cast<std::uint64_t>(h))
        .cell(success / static_cast<double>(n) * 100.0, 1)
        .cell(traffic, 0)
        .cell(dropped, 0)
        .cell(dgood, 0)
        .cell(dattack, 0)
        .cell(report.result.final_active_peers, 0);
  }
  t.print(std::cout, "per-hour soak digest");

  std::printf("\n%s\n", experiments::soak_verdict(report).c_str());
  for (const auto& v : report.violations) {
    std::printf("  violation @%.0f min: %s\n", v.minute, v.what.c_str());
  }

  const std::string csv = opts.get("csv", std::string("-"));
  if (csv != "-" && t.write_csv(csv)) std::printf("wrote %s\n", csv.c_str());

  return report.passed() ? 0 : 1;
}
