// Chaos soak: run the full self-healing stack (quarantine cuts, priority
// shedding, partition repair) under a hostile schedule — flooding agents
// that rejoin after every cut, churn, lossy control links, peer
// crash/stall faults — and assert the standing invariants every simulated
// minute (see src/experiments/soak.hpp). Exits non-zero on any violation,
// so CI can gate on it.
//
// Keys (defaults in brackets):
//   peers[300] agents[30] minutes[480] seed[20070710]
//   connectivity[0.85]   honest-majority largest-component floor
//   check_every[1]       minutes between invariant sweeps
//   csv[-]               write the per-hour series to this file
//   soaks[1]             independent soak instances (seed, seed+1000003, …)
//   jobs[1]              worker threads across soak instances (0 = nproc)
//
// Crash-resume drill (base-seed instance only; see docs/robustness.md):
//   checkpoint[-]        snapshot file for periodic checkpoints
//   checkpoint_every[0]  minutes between checkpoints (0 = only at kill)
//   kill_at[0]           >0: stop at that minute, checkpoint, then resume
//                        from the snapshot in-process and run to the end —
//                        the kill-and-resume leg of the chaos soak
//   restore[-]           resume the base instance from an existing snapshot
//
// The default schedule is 480 simulated minutes = 8 simulated hours.
// With soaks > 1 the extra instances fan out across the SweepRunner pool;
// the digest below always shows the first (base-seed) instance, and the
// exit code is non-zero if ANY instance violated an invariant.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiments/soak.hpp"
#include "experiments/sweep.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opts(argc, argv);

  const auto peers =
      static_cast<std::size_t>(opts.get("peers", std::int64_t{300}));
  const auto agents =
      static_cast<std::size_t>(opts.get("agents", std::int64_t{30}));
  const double minutes = opts.get("minutes", 480.0);
  const auto seed =
      static_cast<std::uint64_t>(opts.get("seed", std::int64_t{20070710}));
  const auto soaks = static_cast<std::size_t>(
      std::max<std::int64_t>(1, opts.get("soaks", std::int64_t{1})));
  const auto jobs = static_cast<unsigned>(opts.get(
      "jobs", static_cast<std::int64_t>(util::env_jobs(1))));

  experiments::SoakConfig cfg =
      experiments::chaos_soak_config(peers, agents, minutes, seed);
  cfg.min_honest_connectivity = opts.get("connectivity", 0.85);
  cfg.check_every_minutes = opts.get("check_every", 1.0);

  const std::string ckpt_path = opts.get("checkpoint", std::string("-"));
  const double ckpt_every = opts.get("checkpoint_every", 0.0);
  const double kill_at = opts.get("kill_at", 0.0);
  const std::string restore_path = opts.get("restore", std::string("-"));

  std::printf("bench_soak_chaos — %zu peers, %zu agents, %.0f min "
              "(%.1f simulated hours), seed %llu, %zu soak(s), %u job(s)\n",
              peers, agents, minutes, minutes / 60.0,
              static_cast<unsigned long long>(seed), soaks, jobs);
  std::printf("chaos: rejoining agents, churn, loss=%.2f corrupt=%.2f, "
              "crash=%g/min stall=%g/min, quarantine+priority+repair on\n",
              cfg.scenario.fault.channel.drop_probability,
              cfg.scenario.fault.channel.corrupt_probability,
              cfg.scenario.fault.peer.crash_probability_per_minute,
              cfg.scenario.fault.peer.stall_probability_per_minute);

  // Fan independent soak instances (distinct seeds, otherwise identical
  // hostile schedule) across the trial-granularity pool.
  experiments::SweepRunner runner(jobs);
  const std::vector<experiments::SoakReport> reports =
      runner.map(soaks, [&](std::size_t i) {
        experiments::SoakConfig instance = cfg;
        instance.scenario.seed = seed + 1000003ULL * i;
        if (i != 0) return experiments::run_soak(instance);

        // The base-seed instance carries the crash-resume drill: the
        // snapshot file is a single path, so only one instance may use it.
        if (ckpt_path != "-") {
          instance.checkpoint_path = ckpt_path;
          instance.checkpoint_every_minutes = ckpt_every;
        }
        if (restore_path != "-") instance.restore_path = restore_path;
        if (kill_at > 0.0 && ckpt_path != "-") {
          instance.kill_at_minute = kill_at;
          experiments::SoakReport first = experiments::run_soak(instance);
          if (!first.killed) return first;  // kill_at beyond the schedule

          std::printf("killed at minute %.0f, resuming from %s\n",
                      first.minutes, ckpt_path.c_str());
          experiments::SoakConfig resumed = instance;
          resumed.kill_at_minute = 0.0;
          resumed.restore_path = ckpt_path;
          experiments::SoakReport second = experiments::run_soak(resumed);
          // Verdict covers both legs of the drill.
          second.checks += first.checks;
          second.violation_count += first.violation_count;
          second.violations.insert(second.violations.begin(),
                                   first.violations.begin(),
                                   first.violations.end());
          return second;
        }
        return experiments::run_soak(instance);
      });
  const experiments::SoakReport& report = reports.front();

  // Per-hour digest of the run: a soak log humans can scan.
  util::Table t({"hour", "success_pct", "traffic", "dropped", "dropped_good",
                 "dropped_attack", "active_peers"});
  const auto& hist = report.result.history;
  for (std::size_t h = 0; h * 60 < hist.size(); ++h) {
    double success = 0.0, traffic = 0.0, dropped = 0.0;
    double dgood = 0.0, dattack = 0.0;
    std::size_t n = 0;
    for (std::size_t i = h * 60; i < hist.size() && i < (h + 1) * 60; ++i) {
      success += hist[i].success_rate;
      traffic += hist[i].traffic_messages;
      dropped += hist[i].dropped;
      dgood += hist[i].dropped_good;
      dattack += hist[i].dropped_attack;
      ++n;
    }
    if (n == 0) break;
    t.row()
        .cell(static_cast<std::uint64_t>(h))
        .cell(success / static_cast<double>(n) * 100.0, 1)
        .cell(traffic, 0)
        .cell(dropped, 0)
        .cell(dgood, 0)
        .cell(dattack, 0)
        .cell(report.result.final_active_peers, 0);
  }
  t.print(std::cout, "per-hour soak digest");

  bool all_passed = true;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    all_passed = all_passed && r.passed();
    std::printf("\n[soak %zu, seed %llu] %s\n", i,
                static_cast<unsigned long long>(seed + 1000003ULL * i),
                experiments::soak_verdict(r).c_str());
    for (const auto& v : r.violations) {
      std::printf("  violation @%.0f min: %s\n", v.minute, v.what.c_str());
    }
  }

  const std::string csv = opts.get("csv", std::string("-"));
  if (csv != "-" && t.write_csv(csv)) std::printf("wrote %s\n", csv.c_str());

  const std::uint64_t rss = bench::peak_rss_bytes();
  if (rss != 0) {
    std::printf("peak RSS: %.1f MiB\n",
                static_cast<double>(rss) / (1024.0 * 1024.0));
  }

  return all_passed ? 0 : 1;
}
