// Table 1: the Neighbor_Traffic message body layout (payload type 0x83).
// Prints the byte offsets of each field exactly as the paper tabulates
// them, and verifies a live encode/decode round trip.

#include <cstdio>

#include "bench_common.hpp"
#include "net/address.hpp"
#include "net/message.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const auto run = bench::begin(argc, argv, "bench_table1_wire — Neighbor_Traffic message body",
               "Table 1 (Neighbor Traffic message body)");

  net::NeighborTraffic nt;
  nt.source_ip = net::peer_address(17);
  nt.suspect_ip = net::peer_address(1024);
  nt.timestamp = 3600;
  nt.outgoing_queries = 312;
  nt.incoming_queries = 20000;

  util::Table t({"field", "byte_offset", "value"});
  t.row().cell("Source IP Address").cell("0-3").cell(
      net::ipv4_to_string(nt.source_ip));
  t.row().cell("Suspect IP Address").cell("4-7").cell(
      net::ipv4_to_string(nt.suspect_ip));
  t.row().cell("Source timestamp").cell("8-11").cell(
      std::to_string(nt.timestamp));
  t.row().cell("# of Outgoing queries").cell("12-15").cell(
      std::to_string(nt.outgoing_queries));
  t.row().cell("# of Incoming queries").cell("16-19").cell(
      std::to_string(nt.incoming_queries));
  bench::finish(run, t, "Table 1 — Neighbor_Traffic body (20 bytes, type 0x83)",
                "table1_wire");

  // Round-trip through the full descriptor framing.
  util::Rng rng(1);
  net::Message msg;
  msg.header.guid = net::Guid::random(rng);
  msg.payload = nt;
  const auto bytes = net::encode(msg);
  const auto back = net::decode(bytes);
  if (!back || std::get<net::NeighborTraffic>(back->payload).outgoing_queries !=
                   nt.outgoing_queries) {
    std::printf("round-trip: FAILED\n");
    return 1;
  }
  std::printf("round-trip: OK (%zu bytes on the wire, 23-byte header + %zu body, "
              "payload type 0x%02x)\n",
              bytes.size(), bytes.size() - net::kHeaderSize,
              static_cast<unsigned>(bytes[16]));
  return 0;
}
