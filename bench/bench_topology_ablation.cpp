// Robustness ablation: DD-POLICE across overlay families. The paper
// evaluates one BRITE topology; this study checks that detection quality
// does not hinge on the power-law shape. Expected shape: similar
// detection latency and error counts across Barabási–Albert, Waxman and
// Erdős–Rényi overlays of equal average degree.

#include <algorithm>

#include "bench_common.hpp"
#include "experiments/extensions.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  auto run = bench::begin(argc, argv, "bench_topology_ablation — overlay families",
                          "DESIGN.md ablation (topology robustness)");
  const std::size_t agents = std::min<std::size_t>(100, run.scale.peers / 10);
  const auto rows =
      experiments::run_topology_ablation(run.scale, agents, run.seed);
  bench::finish(run, experiments::topology_table(rows),
                "DD-POLICE across topology families", "topology_ablation");
  return 0;
}
