// Anatomy of an overlay query-flood DDoS agent, replicated at message
// granularity (the paper's Sec. 2.3): a synthetic query trace stands in
// for the 24-hour Gnutella capture, a modified-client agent replays it at
// increasing rates into a forwarding peer, and an observer counts what
// survives — reproducing the capacity cliff of Figures 5 and 6.
//
// Usage: attack_anatomy [capacity=10000] [queue=5000] [seed=7]

#include <cstdio>
#include <iostream>
#include <sstream>

#include "p2p/testbed.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opts(argc, argv);
  const double capacity = opts.get("capacity", 10000.0);
  const auto queue = static_cast<std::size_t>(opts.get("queue", std::int64_t{5000}));
  const auto seed = static_cast<std::uint64_t>(opts.get("seed", std::int64_t{7}));

  // Step 1 — the query trace. The paper's monitoring super-node logged
  // 13,075,339 queries (112 MB) in 24 h; we synthesize a statistically
  // matching slice and show its shape.
  workload::TraceConfig tc;
  workload::TraceGenerator gen(tc);
  util::Rng rng(seed);
  const auto trace = gen.generate(50000, rng);
  const auto stats = workload::analyze_trace(trace);
  std::printf("synthetic query trace: %zu records, %zu unique strings, "
              "%.1f B mean query, top-10 strings cover %.1f%% of traffic\n",
              stats.records, stats.unique_queries, stats.mean_query_bytes,
              stats.top10_share * 100.0);

  // Step 2 — the agent. Peer A replays distinct queries toward peer B at
  // rates from 1,000/min up to the ~29,000/min a log-replaying client can
  // sustain; peer C counts what B forwards.
  p2p::TestbedConfig cfg;
  cfg.capacity_per_minute = capacity;
  cfg.queue_limit = queue;
  std::vector<double> rates;
  for (double r = 1000.0; r <= 29000.0; r += 4000.0) rates.push_back(r);
  const auto points = p2p::run_testbed_sweep(cfg, rates, seed);

  util::Table t({"A_sends_per_min", "B_forwards_per_min", "B_drop_rate_pct"});
  for (const auto& p : points) {
    t.row()
        .cell(p.sent_per_minute, 0)
        .cell(p.processed_per_minute, 0)
        .cell(p.drop_rate * 100.0, 1);
  }
  t.print(std::cout, "A -> B -> C testbed (Sec. 2.3 / Figures 5-6)");

  std::printf("\nreading: B services ~%.0f queries/min; beyond ~%.0f/min its\n"
              "queue overflows and it discards the excess — at the agent's\n"
              "maximum rate roughly half of the flood dies at the first hop,\n"
              "yet what survives still multiplies through the overlay.\n",
              capacity, capacity + static_cast<double>(queue));
  return 0;
}
