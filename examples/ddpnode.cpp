/// \file ddpnode.cpp
/// One real DD-POLICE Gnutella peer process. Listens on a TCP port,
/// dials its bootstrap set, floods queries, answers hits, and polices its
/// neighbours with the per-node judge — the deployment-mode counterpart
/// of one simulated servent. scripts/testbed.sh launches hundreds of
/// these against each other on 127.0.0.1.
///
/// Usage (all key=value, defaults in parentheses):
///   ddpnode index=0 port=42000 bootstrap=42001,42002
///       port_base=42000 ttl=5 query_rate=2 hit_prob=0.05
///       attacker=0 attack_rate=2000 attack_start=1
///       minute_seconds=0.5 duration_min=6 police=1 echo_correction=1
///       warning=500 ct=5 q=100 capacity=10000 confirmations=2
///       suppression_s=5 collect_s=5 exchange_min=2
///       stats=results/node0.jsonl seed=1
///
/// duration_min=0 runs until SIGTERM/SIGINT; either way shutdown is
/// orderly (final stats line, every fd closed).

#include <cstdio>
#include <string>

#include "netengine/node.hpp"
#include "util/config.hpp"

namespace {

std::vector<std::uint16_t> parse_ports(const std::string& csv) {
  std::vector<std::uint16_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string tok = csv.substr(pos, comma - pos);
    if (!tok.empty())
      out.push_back(static_cast<std::uint16_t>(std::stoul(tok)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opt(argc, argv);

  netengine::NodeConfig cfg;
  cfg.index = static_cast<std::uint32_t>(opt.get("index", std::int64_t{0}));
  cfg.engine.listen_port =
      static_cast<std::uint16_t>(opt.get("port", std::int64_t{0}));
  cfg.bootstrap = parse_ports(opt.get("bootstrap", std::string{}));
  cfg.peer_port_base =
      static_cast<std::uint16_t>(opt.get("port_base", std::int64_t{0}));
  cfg.ttl = static_cast<std::uint8_t>(opt.get("ttl", std::int64_t{5}));
  cfg.query_rate_per_minute = opt.get("query_rate", 2.0);
  cfg.hit_probability = opt.get("hit_prob", 0.05);
  cfg.attacker = opt.get("attacker", false);
  cfg.attack_rate_per_minute = opt.get("attack_rate", 2000.0);
  cfg.attack_start_minute = opt.get("attack_start", 1.0);
  cfg.minute_seconds = opt.get("minute_seconds", 60.0);
  cfg.police = opt.get("police", true);
  cfg.echo_correction = opt.get("echo_correction", true);
  cfg.ddp.warning_threshold = opt.get("warning", cfg.ddp.warning_threshold);
  cfg.ddp.cut_threshold = opt.get("ct", cfg.ddp.cut_threshold);
  cfg.ddp.good_issue_bound = opt.get("q", cfg.ddp.good_issue_bound);
  cfg.ddp.capacity_bound_per_minute =
      opt.get("capacity", cfg.ddp.capacity_bound_per_minute);
  cfg.ddp.suppression_window_seconds =
      opt.get("suppression_s", cfg.ddp.suppression_window_seconds);
  cfg.ddp.collect_timeout_seconds =
      opt.get("collect_s", cfg.ddp.collect_timeout_seconds);
  cfg.ddp.exchange_period_minutes =
      opt.get("exchange_min", cfg.ddp.exchange_period_minutes);
  // Deployment default: require a second tripping round before cutting.
  // confirmations=1 restores the paper's first-trip verdict.
  cfg.ddp.cut_confirmations =
      static_cast<int>(opt.get("confirmations", std::int64_t{2}));
  cfg.stats_path = opt.get("stats", std::string{});
  cfg.seed = static_cast<std::uint64_t>(opt.get("seed", std::int64_t{1}));

  netengine::Node node(cfg);
  if (!node.start()) {
    std::fprintf(stderr, "ddpnode: cannot listen on port %u\n",
                 unsigned(cfg.engine.listen_port));
    return 1;
  }
  if (!node.engine().install_signal_handlers()) {
    std::fprintf(stderr, "ddpnode: signalfd setup failed\n");
    return 1;
  }

  const double duration_min = opt.get("duration_min", 0.0);
  if (duration_min > 0) {
    const auto run_ms = static_cast<std::uint64_t>(
        duration_min * cfg.minute_seconds * 1000.0);
    node.engine().timers().schedule(run_ms, [&node] { node.stop(); });
  }
  node.run();
  return 0;
}
