// ddpsim — the everything-configurable scenario runner. Exposes the whole
// ScenarioConfig surface as key=value options and prints the per-minute
// series as CSV, so any experiment variant can be scripted without
// recompiling.
//
// Usage examples:
//   ddpsim peers=2000 agents=100 defense=dd-police ct=5 minutes=40
//   ddpsim topo=two-tier defense=fair-share agents=50 csv=run.csv
//   ddpsim churn=off defense=naive-cut threshold=500
//
// Keys (defaults in brackets):
//   peers[600] agents[50] minutes[26] attack_start[5] seed[20070710]
//   defense[dd-police]   none | naive-cut | fair-share | dd-police
//   topo[ba]             ba | waxman | er | two-tier | hard-cutoff
//   cutoff_exp[2]        hard-cutoff degree ceiling k_c ~ n^(1/exp)
//   ct[5] warning[500] exchange[2] event_driven[0] radius[1]
//   cheat[honest]        honest | inflate | deflate | mute | collude
//   lists[honest]        honest | fabricate | withhold
//   rejoin[0] churn[on] lifetime_min[60] attack_rate[20000]
//   sourcing[constant]   constant | ramp | pulse | probe  (agent schedule)
//   ramp_min[20] ramp_target[1] pulse_on[1] pulse_off[4] pulse_scale[1]
//   probe_step[0.05] probe_backoff[0.5]
//   adaptive[0]          learned per-link cut bands (docs/robustness.md)
//   adaptive_window[10] adaptive_every[2] adaptive_min_samples[4]
//   adaptive_k1[2] adaptive_k2[4] adaptive_floor[50] adaptive_budget[0.5]
//   adaptive_exit[3] malicious_ct[2]
//   flash[0]             correlated legitimate query surges (flash crowds)
//   flash_start[15] flash_min[6] flash_factor[20] flash_frac[0.25]
//   flash_repeat[0]      minutes between surge onsets (0 = one surge)
//   cut_policy[permanent]  permanent | quarantine   (self-healing cuts)
//   quarantine_min[10] quarantine_growth[2] probation_min[5]
//   probation_budget[0.25] probation_links[2] max_strikes[3]
//   admission[blind]     blind | priority (control reserve, shed attack first)
//   control_reserve[0.05]
//   repair[0]            detect partitions and re-bootstrap stranded peers
//   loss[0] dup[0] corrupt[0] delay[0] jitter[0]   control-channel faults
//   crash[0] stall[0] stall_s[90] slow[0]          peer faults (per minute)
//   data_faults[0]       also degrade the query data plane
//   retries[2] timeout[5] retry/collect-timeout knobs of the hardened plane
//   csv[-]               write the series to this file
//   jobs[1]              >1 runs the baseline and scenario legs on
//                        separate threads (identical output, less wall)
//   flow_jobs[1]         worker threads inside the flow engine's sharded
//                        tick sweeps (0 = one per hardware thread); output
//                        is byte-identical at any value
//   flow_shards[0]       peer-span shards for the tick sweeps (0 = one per
//                        worker); output-invariant like flow_jobs
//
// Observability:
//   trace[-]             write a JSONL event trace of the scenario run
//                        (inspect with trace_tool mode=inspect/summary)
//   profile[0]           print the wall-clock phase profile of the run
//   metrics_csv[-]       write per-minute metric snapshots as CSV
//   metrics_json[-]      write final metric values (incl. histograms) as JSON
//   forensics[-]         fold the attack storyline live and write per-agent
//                        forensics (flag/cut latency, pre-cut damage) as CSV
//   forensics_json[-]    same record as JSON (either key enables the fold)
//   series_window[0]     keep a ring of the last N minutes of per-peer and
//                        per-edge send rates (snapshotted with checkpoint=)
//   progress[0]          heartbeat each completed minute on stderr
//                        (minute N/M, cuts, live quarantine count); stdout
//                        is untouched, so piped CSV/tables stay identical
//
// Checkpoint/restore (crash-resume; see docs/robustness.md):
//   checkpoint[-]        snapshot file; written when the run completes or is
//                        interrupted (SIGINT/SIGTERM checkpoint-then-exit)
//   checkpoint_every[0]  also snapshot every N completed minutes
//   restore[-]           resume the scenario leg from this snapshot; the
//                        behavioural config must match the one it was taken
//                        under (minutes= may be extended, trace=/csv= may
//                        point anywhere). Continued runs replay the exact
//                        event sequence of an uninterrupted run.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "experiments/runtime.hpp"
#include "experiments/scenario.hpp"
#include "experiments/sweep.hpp"
#include "metrics/damage.hpp"
#include "obs/trace.hpp"
#include "snapshot/snapshot.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

namespace {

// Written by the signal handler, polled at minute boundaries by the
// scenario leg: the run stops at the next completed minute, writes a final
// checkpoint and exits with the conventional 128+signo code.
volatile std::sig_atomic_t g_signal = 0;

extern "C" void on_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opts(argc, argv);

  experiments::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(opts.get("seed", std::int64_t{20070710}));
  cfg.topo.nodes = static_cast<std::size_t>(opts.get("peers", std::int64_t{600}));
  cfg.content.objects = std::max<std::size_t>(cfg.topo.nodes * 5, 1000);
  cfg.content.mean_replicas =
      std::max(4.0, static_cast<double>(cfg.topo.nodes) / 100.0);
  cfg.attack.agents =
      static_cast<std::size_t>(opts.get("agents", std::int64_t{50}));
  cfg.attack.start_minute = opts.get("attack_start", 5.0);
  cfg.attack.rejoin = opts.get("rejoin", false);
  cfg.total_minutes = opts.get("minutes", 26.0);
  // Short runs (e.g. the first leg of a checkpointed pair) may end before
  // the usual warmup horizon; clamp so validate_config stays happy.
  cfg.warmup_minutes =
      std::min(cfg.attack.start_minute + 3.0, cfg.total_minutes);

  const std::string topo = opts.get("topo", std::string("ba"));
  if (topo == "waxman") cfg.topo.model = topology::Model::kWaxman;
  else if (topo == "er") cfg.topo.model = topology::Model::kErdosRenyi;
  else if (topo == "two-tier") cfg.topo.model = topology::Model::kTwoTier;
  else if (topo == "hard-cutoff") cfg.topo.model = topology::Model::kHardCutoff;
  else cfg.topo.model = topology::Model::kBarabasiAlbert;
  cfg.topo.hc_cutoff_exponent = opts.get("cutoff_exp", 2.0);

  const std::string def = opts.get("defense", std::string("dd-police"));
  if (def == "none") cfg.defense = defense::Kind::kNone;
  else if (def == "naive-cut") cfg.defense = defense::Kind::kNaiveCut;
  else if (def == "fair-share") cfg.defense = defense::Kind::kFairShare;
  else cfg.defense = defense::Kind::kDdPolice;

  cfg.ddpolice.cut_threshold = opts.get("ct", 5.0);
  cfg.ddpolice.warning_threshold = opts.get("warning", 500.0);
  cfg.ddpolice.exchange_period_minutes = opts.get("exchange", 2.0);
  cfg.ddpolice.exchange_policy = opts.get("event_driven", false)
                                     ? core::ExchangePolicy::kEventDriven
                                     : core::ExchangePolicy::kPeriodic;
  cfg.ddpolice.buddy_radius =
      static_cast<int>(opts.get("radius", std::int64_t{1}));
  cfg.naive_cut_threshold = opts.get("threshold", 500.0);
  cfg.flow.attack_target_per_minute = opts.get("attack_rate", 20000.0);

  // Self-healing stack (all default-off: the paper's permanent cuts,
  // class-blind shedding and unrepaired overlay).
  const std::string cut_policy = opts.get("cut_policy", std::string("permanent"));
  cfg.ddpolice.cut_policy = cut_policy == "quarantine"
                                ? core::CutPolicy::kQuarantine
                                : core::CutPolicy::kPermanent;
  cfg.ddpolice.quarantine_minutes = opts.get("quarantine_min", 10.0);
  cfg.ddpolice.quarantine_growth = opts.get("quarantine_growth", 2.0);
  cfg.ddpolice.probation_minutes = opts.get("probation_min", 5.0);
  cfg.ddpolice.probation_budget = opts.get("probation_budget", 0.25);
  cfg.ddpolice.probation_links =
      static_cast<int>(opts.get("probation_links", std::int64_t{2}));
  cfg.ddpolice.max_strikes =
      static_cast<int>(opts.get("max_strikes", std::int64_t{3}));
  const std::string admission = opts.get("admission", std::string("blind"));
  cfg.flow.admission = admission == "priority" ? flow::AdmissionPolicy::kPriority
                                               : flow::AdmissionPolicy::kClassBlind;
  cfg.flow.control_reserve_fraction = opts.get("control_reserve", 0.05);
  cfg.flow.jobs =
      static_cast<unsigned>(opts.get("flow_jobs", std::int64_t{1}));
  cfg.flow.shards =
      static_cast<std::size_t>(opts.get("flow_shards", std::int64_t{0}));
  cfg.repair_partitions = opts.get("repair", false);

  const std::string cheat = opts.get("cheat", std::string("honest"));
  if (const auto rs = attack::report_strategy_from_name(cheat)) {
    cfg.attack.behavior.report = *rs;
  } else {
    std::fprintf(stderr, "ddpsim: unknown cheat strategy '%s'\n", cheat.c_str());
    return 2;
  }
  const std::string lists = opts.get("lists", std::string("honest"));
  if (const auto ls = attack::list_strategy_from_name(lists)) {
    cfg.attack.behavior.list = *ls;
  } else {
    std::fprintf(stderr, "ddpsim: unknown list strategy '%s'\n", lists.c_str());
    return 2;
  }

  // Agent sourcing schedule (constant = the paper's immediate full rate).
  const std::string sourcing = opts.get("sourcing", std::string("constant"));
  if (const auto ss = attack::sourcing_strategy_from_name(sourcing)) {
    cfg.attack.sourcing = *ss;
  } else {
    std::fprintf(stderr, "ddpsim: unknown sourcing strategy '%s'\n",
                 sourcing.c_str());
    return 2;
  }
  cfg.attack.ramp_minutes = opts.get("ramp_min", 20.0);
  cfg.attack.ramp_target_scale = opts.get("ramp_target", 1.0);
  cfg.attack.pulse_on_minutes = opts.get("pulse_on", 1.0);
  cfg.attack.pulse_off_minutes = opts.get("pulse_off", 4.0);
  cfg.attack.pulse_scale = opts.get("pulse_scale", 1.0);
  cfg.attack.probe_step_scale = opts.get("probe_step", 0.05);
  cfg.attack.probe_backoff = opts.get("probe_backoff", 0.5);

  // Adaptive cut bands (off by default: paper-exact static thresholds).
  cfg.ddpolice.adaptive.enabled = opts.get("adaptive", false);
  cfg.ddpolice.adaptive.window_minutes = static_cast<std::size_t>(
      opts.get("adaptive_window", std::int64_t{10}));
  cfg.ddpolice.adaptive.estimate_period_minutes = opts.get("adaptive_every", 2.0);
  cfg.ddpolice.adaptive.min_samples = static_cast<std::size_t>(
      opts.get("adaptive_min_samples", std::int64_t{4}));
  cfg.ddpolice.adaptive.k1 = opts.get("adaptive_k1", 2.0);
  cfg.ddpolice.adaptive.k2 = opts.get("adaptive_k2", 4.0);
  cfg.ddpolice.adaptive.band_floor = opts.get("adaptive_floor", 50.0);
  cfg.ddpolice.adaptive.suspicious_budget = opts.get("adaptive_budget", 0.5);
  cfg.ddpolice.adaptive.suspicion_exit_minutes = opts.get("adaptive_exit", 3.0);
  cfg.ddpolice.adaptive.malicious_ct = opts.get("malicious_ct", 2.0);

  // Flash crowds (legitimate surge workload; the false-cut stressor).
  cfg.flash.enabled = opts.get("flash", false);
  cfg.flash.start_minute = opts.get("flash_start", 15.0);
  cfg.flash.surge_minutes = opts.get("flash_min", 6.0);
  cfg.flash.surge_factor = opts.get("flash_factor", 20.0);
  cfg.flash.participation = opts.get("flash_frac", 0.25);
  cfg.flash.repeat_every_minutes = opts.get("flash_repeat", 0.0);

  cfg.churn.enabled = opts.get("churn", std::string("on")) != "off";
  const double life = opts.get("lifetime_min", 60.0);
  cfg.churn.mean_lifetime = minutes(life);
  cfg.churn.lifetime_variance = life / 2.0 * kMinute * kMinute;

  // Fault injection (all zero by default -> no fault plane is built).
  cfg.fault.channel.drop_probability = opts.get("loss", 0.0);
  cfg.fault.channel.duplicate_probability = opts.get("dup", 0.0);
  cfg.fault.channel.corrupt_probability = opts.get("corrupt", 0.0);
  cfg.fault.channel.base_delay_seconds = opts.get("delay", 0.0);
  cfg.fault.channel.delay_jitter_seconds = opts.get("jitter", 0.0);
  cfg.fault.peer.crash_probability_per_minute = opts.get("crash", 0.0);
  cfg.fault.peer.stall_probability_per_minute = opts.get("stall", 0.0);
  cfg.fault.peer.stall_duration_seconds = opts.get("stall_s", 90.0);
  cfg.fault.peer.slow_peer_fraction = opts.get("slow", 0.0);
  cfg.fault.data_plane = opts.get("data_faults", false);
  cfg.ddpolice.max_report_retries =
      static_cast<int>(opts.get("retries", std::int64_t{2}));
  cfg.ddpolice.max_exchange_retries = cfg.ddpolice.max_report_retries;
  cfg.ddpolice.collect_timeout_seconds = opts.get("timeout", 5.0);

  // Observability plane.
  const std::string trace_path = opts.get("trace", std::string("-"));
  std::unique_ptr<obs::JsonlFileSink> trace_sink;
  if (trace_path != "-") {
    trace_sink = std::make_unique<obs::JsonlFileSink>(trace_path);
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "ddpsim: cannot open trace file %s\n",
                   trace_path.c_str());
      return 1;
    }
    cfg.obs.trace_sink = trace_sink.get();
  }
  const std::string metrics_csv = opts.get("metrics_csv", std::string("-"));
  const std::string metrics_json = opts.get("metrics_json", std::string("-"));
  cfg.obs.metrics = metrics_csv != "-" || metrics_json != "-";
  cfg.obs.profile = opts.get("profile", false);
  const std::string forensics_csv = opts.get("forensics", std::string("-"));
  const std::string forensics_json =
      opts.get("forensics_json", std::string("-"));
  cfg.obs.forensics = forensics_csv != "-" || forensics_json != "-";
  cfg.obs.series_window_minutes =
      static_cast<std::size_t>(opts.get("series_window", std::int64_t{0}));
  const bool progress = opts.get("progress", false);

  std::printf("ddpsim: %zu peers (%s), %zu agents, defense=%s, %s\n",
              cfg.topo.nodes, topo.c_str(), cfg.attack.agents, def.c_str(),
              opts.summary().c_str());

  // Validate up front: a clear one-line diagnosis instead of a throw from
  // deep inside the scenario runner.
  if (const std::string err = experiments::validate_config(cfg); !err.empty()) {
    std::fprintf(stderr, "ddpsim: invalid configuration: %s\n", err.c_str());
    return 2;
  }

  const std::string ckpt_path = opts.get("checkpoint", std::string("-"));
  const double ckpt_every = opts.get("checkpoint_every", 0.0);
  const std::string restore_path = opts.get("restore", std::string("-"));

  // The scenario leg runs minute-by-minute on a ScenarioRuntime so it can
  // be checkpointed, resumed and interrupted at quiescent boundaries; this
  // is exactly the machinery run_scenario() is built on, so runs without
  // snapshot options are byte-identical to the classic path.
  std::unique_ptr<experiments::ScenarioRuntime> runtime;
  try {
    runtime = std::make_unique<experiments::ScenarioRuntime>(cfg);
    if (restore_path != "-") {
      runtime->load_file(restore_path);
      std::printf("restored %s at minute %.0f\n", restore_path.c_str(),
                  runtime->current_minute());
    }
  } catch (const snapshot::SnapshotError& e) {
    std::fprintf(stderr, "ddpsim: snapshot rejected: %s\n", e.what());
    return 3;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::string ckpt_error;
  auto run_scenario_leg = [&]() {
    double m = runtime->current_minute();
    double next_ckpt = ckpt_every > 0.0 ? m + ckpt_every : 0.0;
    while (m + 1e-9 < cfg.total_minutes && g_signal == 0) {
      m = std::min(m + 1.0, cfg.total_minutes);
      runtime->run_to_minute(m);
      if (progress) {
        const auto view = runtime->view();
        const std::size_t cuts =
            view.ddpolice != nullptr ? view.ddpolice->decisions().size() : 0;
        const std::size_t quarantined =
            view.ledger != nullptr ? view.ledger->blocked_count() : 0;
        std::fprintf(stderr,
                     "ddpsim: minute %.0f/%.0f, %zu cut, %zu quarantined\n", m,
                     cfg.total_minutes, cuts, quarantined);
      }
      if (ckpt_every > 0.0 && ckpt_path != "-" && m + 1e-9 >= next_ckpt) {
        try {
          // Flush first so the on-disk trace is consistent with the
          // snapshot should the process die right after.
          if (trace_sink != nullptr) trace_sink->flush();
          runtime->save_file(ckpt_path);
        } catch (const snapshot::SnapshotError& e) {
          ckpt_error = e.what();
          break;
        }
        next_ckpt += ckpt_every;
      }
    }
    return runtime->result();
  };

  // The two legs are fully independent (run_baseline strips the obs
  // plane), so jobs>1 runs them on separate threads. Either way the
  // results — and every file written from them — are identical.
  const auto jobs = static_cast<unsigned>(
      opts.get("jobs", static_cast<std::int64_t>(util::env_jobs(1))));
  experiments::SweepRunner runner(jobs > 1 ? 2u : 1u);
  auto legs = runner.map(2, [&](std::size_t i) {
    return i == 0 ? experiments::run_baseline(cfg) : run_scenario_leg();
  });
  const auto baseline = std::move(legs[0]);
  const auto r = std::move(legs[1]);

  if (!ckpt_error.empty()) {
    std::fprintf(stderr, "ddpsim: checkpoint failed: %s\n",
                 ckpt_error.c_str());
    return 3;
  }
  if (g_signal != 0 || ckpt_path != "-") {
    // Final (or interrupt) checkpoint at the minute boundary we stopped on.
    if (ckpt_path != "-") {
      try {
        if (trace_sink != nullptr) trace_sink->flush();
        runtime->save_file(ckpt_path);
        std::printf("checkpoint %s at minute %.0f\n", ckpt_path.c_str(),
                    runtime->current_minute());
      } catch (const snapshot::SnapshotError& e) {
        std::fprintf(stderr, "ddpsim: checkpoint failed: %s\n", e.what());
        return 3;
      }
    }
    if (g_signal != 0) {
      if (trace_sink != nullptr) trace_sink->flush();
      std::fprintf(stderr,
                   "ddpsim: interrupted by signal %d at minute %.0f%s\n",
                   static_cast<int>(g_signal), runtime->current_minute(),
                   ckpt_path != "-" ? "; resume with restore=" : "");
      return 128 + static_cast<int>(g_signal);
    }
  }

  util::Table t({"minute", "success_pct", "damage_pct", "response_s",
                 "traffic", "attack_issued", "overhead"});
  const double s0 = baseline.summary.avg_success_rate;
  for (const auto& m : r.history) {
    const double dmg =
        s0 > 0 ? std::max(0.0, (s0 - m.success_rate) / s0 * 100.0) : 0.0;
    t.row()
        .cell(m.minute, 0)
        .cell(m.success_rate * 100.0, 1)
        .cell(dmg, 1)
        .cell(m.response_time, 2)
        .cell(m.traffic_messages, 0)
        .cell(m.attack_issued, 0)
        .cell(m.overhead_messages, 0);
  }
  t.print(std::cout, "per-minute series");

  const auto dmg = metrics::analyze_damage(r.history, s0, cfg.attack.start_minute);
  std::printf("\nsummary: success %.1f%% (healthy %.1f%%), stabilized damage "
              "%.1f%%, good wrongly cut %zu, agents missed %zu\n",
              r.summary.avg_success_rate * 100.0, s0 * 100.0,
              dmg.stabilized_damage, r.errors.false_negative,
              r.errors.false_positive);
  if (cfg.ddpolice.cut_policy == core::CutPolicy::kQuarantine) {
    double mean_reinstate = 0.0;
    for (const auto& rec : r.reinstatements) {
      mean_reinstate += rec.reinstate_minute - rec.cut_minute;
    }
    if (!r.reinstatements.empty()) {
      mean_reinstate /= static_cast<double>(r.reinstatements.size());
    }
    std::printf("quarantine: %llu quarantined, %llu probations, %llu "
                "reinstated (mean %.1f min), %llu banned, %llu re-isolations\n",
                static_cast<unsigned long long>(r.quarantine.quarantines),
                static_cast<unsigned long long>(r.quarantine.probations),
                static_cast<unsigned long long>(r.quarantine.reinstatements),
                mean_reinstate,
                static_cast<unsigned long long>(r.quarantine.bans),
                static_cast<unsigned long long>(r.quarantine.re_isolations));
  }
  if (cfg.ddpolice.adaptive.enabled) {
    std::printf("adaptive: %llu band re-estimates, %llu suspicion entries, "
                "%llu exits\n",
                static_cast<unsigned long long>(r.band_reestimates),
                static_cast<unsigned long long>(r.suspicion_entries),
                static_cast<unsigned long long>(r.suspicion_exits));
  }
  if (cfg.flash.enabled) {
    std::printf("flash crowds: %zu surge(s)\n", r.flash_surges);
  }
  if (cfg.repair_partitions) {
    std::printf("repair: %llu sweeps, %llu found partitions, %llu peers "
                "re-bootstrapped\n",
                static_cast<unsigned long long>(r.partition_sweeps),
                static_cast<unsigned long long>(r.partitions_seen),
                static_cast<unsigned long long>(r.peers_repaired));
  }
  if (cfg.fault.any()) {
    std::printf("faults: %llu timeouts, %llu retries, %llu late, %llu corrupt "
                "rejected; %zu crashed, %zu stalls; channel %llu/%llu dropped\n",
                static_cast<unsigned long long>(r.fault_control.timeouts),
                static_cast<unsigned long long>(r.fault_control.retries),
                static_cast<unsigned long long>(r.fault_control.late_replies),
                static_cast<unsigned long long>(r.fault_control.corrupt_rejects),
                r.fault_crashes, r.fault_stalls,
                static_cast<unsigned long long>(r.fault_channel.dropped),
                static_cast<unsigned long long>(r.fault_channel.transfers));
  }

  const std::string csv = opts.get("csv", std::string("-"));
  if (csv != "-") {
    if (t.write_csv(csv)) std::printf("wrote %s\n", csv.c_str());
  }

  if (r.profile != nullptr) {
    std::printf("\n%s", r.profile->report().c_str());
  }
  if (trace_sink != nullptr) {
    trace_sink->flush();
    std::printf("wrote %llu trace events to %s\n",
                static_cast<unsigned long long>(trace_sink->lines()),
                trace_path.c_str());
  }
  if (r.metrics_registry != nullptr) {
    if (metrics_csv != "-" && r.metrics_registry->write_csv(metrics_csv)) {
      std::printf("wrote %s\n", metrics_csv.c_str());
    }
    if (metrics_json != "-" && r.metrics_registry->write_json(metrics_json)) {
      std::printf("wrote %s\n", metrics_json.c_str());
    }
  }
  if (r.forensics != nullptr) {
    std::printf("\n%s", r.forensics->summary().c_str());
    if (forensics_csv != "-" && r.forensics->write_csv(forensics_csv)) {
      std::printf("wrote %s\n", forensics_csv.c_str());
    }
    if (forensics_json != "-" && r.forensics->write_json(forensics_json)) {
      std::printf("wrote %s\n", forensics_json.c_str());
    }
  }
  return 0;
}
