/// \file ddptestbed.cpp
/// Planner and report aggregator for the multi-process localhost testbed.
///
///   ddptestbed plan peers=100 attackers=3 [model=ba|er|waxman|cutoff]
///       [links=3] [port_base=42000] [minute_seconds=0.5] [duration_min=6]
///       [query_rate=2] [hit_prob=0.05] [attack_rate=2000] [attack_start=1]
///       [warning=500] [ct=5] [q=100] [seed=1] [out=plan.txt]
///
/// writes a plan file: '#' metadata lines plus one ddpnode argument line
/// per node. scripts/testbed.sh launches one ddpnode per line.
///
///   ddptestbed report dir=results/testbed [attack_start=1]
///       [csv=results/testbed_report.csv] [strict=0]
///
/// aggregates the per-node JSONL stats in `dir` into detection-latency
/// and cut-correctness numbers. strict=1 exits nonzero unless every
/// attacker was cut and no honest peer was (the check.sh --net gate).

#include <fstream>
#include <iostream>
#include <string>

#include "experiments/testbed.hpp"
#include "util/config.hpp"

namespace {

int usage() {
  std::cerr << "usage: ddptestbed plan|report key=value...\n"
               "  (see the header comment of examples/ddptestbed.cpp)\n";
  return 2;
}

ddp::topology::Model parse_model(const std::string& name) {
  using ddp::topology::Model;
  if (name == "er") return Model::kErdosRenyi;
  if (name == "waxman") return Model::kWaxman;
  if (name == "cutoff") return Model::kHardCutoff;
  if (name == "twotier") return Model::kTwoTier;
  return Model::kBarabasiAlbert;
}

int run_plan(const ddp::util::Options& opt) {
  using namespace ddp::experiments;
  TestbedConfig cfg;
  cfg.peers = static_cast<std::size_t>(opt.get("peers", std::int64_t{100}));
  cfg.attackers =
      static_cast<std::size_t>(opt.get("attackers", std::int64_t{3}));
  cfg.model = parse_model(opt.get("model", std::string{"ba"}));
  cfg.links_per_node =
      static_cast<std::size_t>(opt.get("links", std::int64_t{3}));
  cfg.port_base =
      static_cast<std::uint16_t>(opt.get("port_base", std::int64_t{42000}));
  cfg.minute_seconds = opt.get("minute_seconds", 0.5);
  cfg.duration_minutes = opt.get("duration_min", 6.0);
  cfg.query_rate_per_minute = opt.get("query_rate", 2.0);
  cfg.hit_probability = opt.get("hit_prob", 0.05);
  cfg.ttl = static_cast<std::uint8_t>(opt.get("ttl", std::int64_t{5}));
  cfg.attack_rate_per_minute = opt.get("attack_rate", 2000.0);
  cfg.attack_start_minute = opt.get("attack_start", 1.0);
  cfg.ddp.warning_threshold = opt.get("warning", cfg.ddp.warning_threshold);
  cfg.ddp.cut_threshold = opt.get("ct", cfg.ddp.cut_threshold);
  cfg.ddp.good_issue_bound = opt.get("q", cfg.ddp.good_issue_bound);
  cfg.ddp.suppression_window_seconds =
      opt.get("suppression_s", cfg.ddp.suppression_window_seconds);
  cfg.ddp.collect_timeout_seconds =
      opt.get("collect_s", cfg.ddp.collect_timeout_seconds);
  cfg.ddp.exchange_period_minutes =
      opt.get("exchange_min", cfg.ddp.exchange_period_minutes);
  cfg.seed = static_cast<std::uint64_t>(opt.get("seed", std::int64_t{1}));

  const TestbedPlan plan = make_plan(cfg);
  const std::string out_path = opt.get("out", std::string{});
  if (out_path.empty()) {
    write_plan(plan, std::cout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "ddptestbed: cannot write " << out_path << "\n";
      return 1;
    }
    write_plan(plan, out);
    std::cerr << "plan: " << plan.nodes.size() << " nodes -> " << out_path
              << "\n";
  }
  return 0;
}

int run_report(const ddp::util::Options& opt) {
  using namespace ddp::experiments;
  const std::string dir = opt.get("dir", std::string{});
  if (dir.empty()) return usage();
  const double attack_start = opt.get("attack_start", 1.0);

  const TestbedReport report = aggregate_stats(dir);
  print_report(report, attack_start, std::cout);

  const std::string csv_path = opt.get("csv", std::string{});
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::cerr << "ddptestbed: cannot write " << csv_path << "\n";
      return 1;
    }
    write_report_csv(report, attack_start, csv);
  }

  if (opt.get("strict", false)) {
    if (report.nodes_reporting == 0) {
      std::cerr << "STRICT FAIL: no stats files\n";
      return 1;
    }
    if (report.attackers_cut < report.attackers) {
      std::cerr << "STRICT FAIL: only " << report.attackers_cut << "/"
                << report.attackers << " attackers cut\n";
      return 1;
    }
    if (report.honest_cut != 0) {
      std::cerr << "STRICT FAIL: " << report.honest_cut
                << " honest peer(s) cut\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  const ddp::util::Options opt(argc - 1, argv + 1);
  if (mode == "plan") return run_plan(opt);
  if (mode == "report") return run_report(opt);
  return usage();
}
