// A defended overlay, minute by minute: 800 peers with realistic churn,
// an attack campaign that starts mid-run with cheating agents, and a
// DD-POLICE deployment whose protocol activity is narrated as it happens —
// suspicions raised, buddy-group rounds, disconnect decisions, agents
// walking back in and being caught again.
//
// Usage: defended_overlay [peers=800] [agents=40] [minutes=30] [ct=5]
//                         [cheat=deflate|honest|inflate|mute] [rejoin=1]
//                         [seed=2007]

#include <cstdio>
#include <iostream>

#include "experiments/scenario.hpp"
#include "metrics/damage.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opts(argc, argv);
  const auto peers = static_cast<std::size_t>(opts.get("peers", std::int64_t{800}));
  const auto agents = static_cast<std::size_t>(opts.get("agents", std::int64_t{40}));
  const double minutes_total = opts.get("minutes", 30.0);
  const double ct = opts.get("ct", 5.0);
  const std::string cheat = opts.get("cheat", std::string("deflate"));
  const bool rejoin = opts.get("rejoin", true);
  const auto seed = static_cast<std::uint64_t>(opts.get("seed", std::int64_t{2007}));

  experiments::ScenarioConfig cfg =
      experiments::paper_scenario(peers, agents, defense::Kind::kDdPolice, seed);
  cfg.total_minutes = minutes_total;
  cfg.ddpolice.cut_threshold = ct;
  cfg.attack.rejoin = rejoin;
  if (cheat == "inflate") cfg.attack.behavior.report = attack::ReportStrategy::kInflate;
  else if (cheat == "mute") cfg.attack.behavior.report = attack::ReportStrategy::kMute;
  else if (cheat == "honest") cfg.attack.behavior.report = attack::ReportStrategy::kHonest;
  else cfg.attack.behavior.report = attack::ReportStrategy::kDeflate;

  std::printf("defended overlay: %zu peers, %zu agents (%s reporters, rejoin=%s), "
              "CT=%.0f, attack at minute %.0f\n\n",
              peers, agents, cheat.c_str(), rejoin ? "on" : "off", ct,
              cfg.attack.start_minute);

  const auto baseline = experiments::run_baseline(cfg);
  const auto r = experiments::run_scenario(cfg);

  // Narrate the run: damage per minute with protocol decisions inlined.
  std::size_t decision_idx = 0;
  for (const auto& m : r.history) {
    const double damage =
        baseline.summary.avg_success_rate > 0
            ? std::max(0.0, (baseline.summary.avg_success_rate - m.success_rate) /
                                baseline.summary.avg_success_rate * 100.0)
            : 0.0;
    std::printf("min %4.0f | success %5.1f%% | damage %5.1f%% | traffic %9.0f | ",
                m.minute, m.success_rate * 100.0, damage, m.traffic_messages);
    std::size_t cuts_bad = 0, cuts_good = 0, liars = 0;
    while (decision_idx < r.decisions.size() &&
           r.decisions[decision_idx].minute <= m.minute) {
      const auto& d = r.decisions[decision_idx++];
      if (d.list_violation) ++liars;
      else if (r.is_bad[d.suspect]) ++cuts_bad;
      else ++cuts_good;
    }
    if (cuts_bad + cuts_good + liars == 0) std::printf("-\n");
    else
      std::printf("cut %zu agent links, %zu good links%s\n", cuts_bad, cuts_good,
                  liars ? " (+list violations)" : "");
  }

  const auto dmg = metrics::analyze_damage(
      r.history, baseline.summary.avg_success_rate, cfg.attack.start_minute);
  std::printf("\nsummary: peak damage %.1f%%, stabilized %.1f%%, "
              "recovery(20%%->15%%) %s\n",
              dmg.peak_damage, dmg.stabilized_damage,
              dmg.recovery_minutes >= 0
                  ? (util::format_double(dmg.recovery_minutes, 1) + " min").c_str()
                  : "not reached");
  std::printf("protocol: %llu exchange msgs, %llu round msgs, %llu rounds; "
              "agents identified %zu/%zu, good peers wrongly cut %zu, "
              "agent rejoins %zu\n",
              static_cast<unsigned long long>(r.defense_exchange_messages),
              static_cast<unsigned long long>(r.defense_traffic_messages),
              static_cast<unsigned long long>(r.defense_rounds),
              agents - r.errors.false_positive, agents, r.errors.false_negative,
              r.attack_rejoins);
  return 0;
}
