// Quickstart: build a small unstructured P2P overlay, unleash a query-flood
// DDoS against it, and watch DD-POLICE identify and disconnect the agents.
//
// Usage:
//   quickstart [peers=600] [agents=30] [minutes=25] [ct=5] [seed=42]
//
// Prints the per-minute damage to the search service and the protocol's
// detection record — the whole paper in one screen of output.

#include <cstdio>
#include <iostream>

#include "experiments/scenario.hpp"
#include "metrics/damage.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opts(argc, argv);
  const auto peers = static_cast<std::size_t>(opts.get("peers", std::int64_t{600}));
  const auto agents = static_cast<std::size_t>(opts.get("agents", std::int64_t{30}));
  const double minutes = opts.get("minutes", 25.0);
  const double ct = opts.get("ct", 5.0);
  const auto seed = static_cast<std::uint64_t>(opts.get("seed", std::int64_t{42}));

  std::cout << "DD-POLICE quickstart: " << peers << " peers, " << agents
            << " DDoS agents, CT=" << ct << "\n";

  // A reference run without any attack gives the healthy success rate S.
  experiments::ScenarioConfig base_cfg =
      experiments::paper_scenario(peers, 0, defense::Kind::kNone, seed);
  base_cfg.total_minutes = minutes;
  const auto baseline = experiments::run_baseline(base_cfg);
  std::printf("healthy overlay: success=%.1f%%  response=%.2fs  traffic=%.0f msg/min\n",
              baseline.summary.avg_success_rate * 100.0,
              baseline.summary.avg_response_time,
              baseline.summary.avg_traffic_per_minute);

  // The same overlay under attack, undefended.
  experiments::ScenarioConfig none_cfg =
      experiments::paper_scenario(peers, agents, defense::Kind::kNone, seed);
  none_cfg.total_minutes = minutes;
  const auto undefended = experiments::run_scenario(none_cfg);

  // And defended by DD-POLICE.
  experiments::ScenarioConfig ddp_cfg =
      experiments::paper_scenario(peers, agents, defense::Kind::kDdPolice, seed);
  ddp_cfg.total_minutes = minutes;
  ddp_cfg.ddpolice.cut_threshold = ct;
  const auto defended = experiments::run_scenario(ddp_cfg);

  std::printf("under attack   : success=%.1f%%  response=%.2fs  traffic=%.0f msg/min\n",
              undefended.summary.avg_success_rate * 100.0,
              undefended.summary.avg_response_time,
              undefended.summary.avg_traffic_per_minute);
  std::printf("with DD-POLICE : success=%.1f%%  response=%.2fs  traffic=%.0f msg/min\n",
              defended.summary.avg_success_rate * 100.0,
              defended.summary.avg_response_time,
              defended.summary.avg_traffic_per_minute);

  const auto dmg_none = metrics::analyze_damage(
      undefended.history, baseline.summary.avg_success_rate, 0.0);
  const auto dmg_ddp = metrics::analyze_damage(
      defended.history, baseline.summary.avg_success_rate, 0.0);

  util::Table t({"minute", "damage_no_defense(%)", "damage_dd_police(%)"});
  for (std::size_t i = 0; i < dmg_none.damage.size(); ++i) {
    t.row()
        .cell(dmg_none.damage.time_at(i), 0)
        .cell(dmg_none.damage.value_at(i), 1)
        .cell(i < dmg_ddp.damage.size() ? dmg_ddp.damage.value_at(i) : 0.0, 1);
  }
  t.print(std::cout, "damage rate timeline");

  std::printf("\nDD-POLICE record: %zu agents, %zu correct disconnects, "
              "%zu good peers wrongly cut, %zu agents never identified, "
              "%zu rejoin attempts\n",
              agents, defended.errors.bad_cut_events,
              defended.errors.false_negative, defended.errors.false_positive,
              defended.attack_rejoins);
  if (defended.errors.mean_detection_minute >= 0.0) {
    std::printf("mean detection latency: %.2f minutes after attack start\n",
                defended.errors.mean_detection_minute);
  }
  return 0;
}
