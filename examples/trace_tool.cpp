// Trace tooling. Two families of traces flow through here:
//
//  * workload query traces — generate a synthetic Gnutella-style query
//    trace (the stand-in for the paper's 24 h / 13M-query capture) or
//    analyze an existing one;
//  * simulation event traces — the JSONL streams written by the obs layer
//    (ddpsim trace=run.jsonl): filter them, summarize the defense
//    storyline, or schema-validate them.
//
// Usage:
//   trace_tool gen  out=trace.log [count=100000] [rate=151.3] [vocab=50000] [seed=1]
//   trace_tool stats in=trace.log
//   trace_tool inspect  in=run.jsonl [peer=N] [type=suspect_cut] [tmin=S] [tmax=S] [limit=50]
//   trace_tool summary  in=run.jsonl
//   trace_tool validate in=run.jsonl

#include <cstdio>
#include <fstream>
#include <iostream>

#include "obs/trace_read.hpp"
#include "util/config.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opts(argc, argv);
  const std::string mode =
      opts.positional().empty() ? "gen" : opts.positional().front();

  if (mode == "gen") {
    workload::TraceConfig cfg;
    cfg.queries_per_second = opts.get("rate", cfg.queries_per_second);
    cfg.vocabulary =
        static_cast<std::size_t>(opts.get("vocab", std::int64_t{50000}));
    const auto count =
        static_cast<std::size_t>(opts.get("count", std::int64_t{100000}));
    const auto seed = static_cast<std::uint64_t>(opts.get("seed", std::int64_t{1}));
    const std::string out = opts.get("out", std::string("trace.log"));

    workload::TraceGenerator gen(cfg);
    util::Rng rng(seed);
    const auto records = gen.generate(count, rng);
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
      return 1;
    }
    workload::write_trace(f, records);
    std::printf("wrote %zu records to %s (%.1f simulated seconds)\n",
                records.size(), out.c_str(),
                records.empty() ? 0.0 : records.back().timestamp);
    return 0;
  }

  if (mode == "stats") {
    const std::string in = opts.get("in", std::string("trace.log"));
    std::ifstream f(in);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", in.c_str());
      return 1;
    }
    const auto records = workload::read_trace(f);
    const auto stats = workload::analyze_trace(records);
    std::printf("trace %s:\n", in.c_str());
    std::printf("  records           %zu\n", stats.records);
    std::printf("  unique queries    %zu\n", stats.unique_queries);
    std::printf("  duration          %.1f s\n", stats.duration_seconds);
    std::printf("  mean query size   %.1f bytes\n", stats.mean_query_bytes);
    std::printf("  top-10 share      %.2f%%\n", stats.top10_share * 100.0);
    std::printf("(the paper's capture: 13,075,339 queries / 112 MB / 24 h)\n");
    return 0;
  }

  if (mode == "inspect" || mode == "summary" || mode == "validate") {
    const std::string in = opts.get("in", std::string("run.jsonl"));
    std::ifstream f(in);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", in.c_str());
      return 1;
    }

    if (mode == "validate") {
      std::vector<obs::SchemaError> errors;
      const auto records = obs::validate_trace(f, errors);
      for (const auto& e : errors) {
        std::fprintf(stderr, "%s:%zu: %s\n", in.c_str(), e.line,
                     e.message.c_str());
      }
      if (!errors.empty()) {
        std::printf("%s: INVALID (%zu schema error%s, %zu lines parsed)\n",
                    in.c_str(), errors.size(), errors.size() == 1 ? "" : "s",
                    records.size());
        return 1;
      }
      if (records.empty()) {
        // An empty trace is never what a run produces; treat it as a
        // failed capture rather than a vacuous pass.
        std::printf("%s: INVALID (no events)\n", in.c_str());
        return 1;
      }
      std::printf("%s: OK (%zu events, schema-valid)\n", in.c_str(),
                  records.size());
      return 0;
    }

    const auto records = obs::read_trace_records(f);

    if (mode == "summary") {
      const obs::TraceSummary s = obs::summarize_trace(records);
      std::printf("trace %s: %llu events, t %.1f..%.1f s\n", in.c_str(),
                  static_cast<unsigned long long>(s.records), s.first_t,
                  s.last_t);
      std::printf("  by type:\n");
      for (std::size_t i = 0; i < obs::kEventTypeCount; ++i) {
        if (s.by_type[i] == 0) continue;
        std::printf("    %-18s %llu\n",
                    obs::event_name(static_cast<obs::EventType>(i)),
                    static_cast<unsigned long long>(s.by_type[i]));
      }
      if (s.unknown_types > 0) {
        std::printf("    (unknown types)    %llu\n",
                    static_cast<unsigned long long>(s.unknown_types));
      }
      std::printf("  defense: %llu suspects flagged, %llu cut, %llu list "
                  "violations",
                  static_cast<unsigned long long>(s.suspects_flagged),
                  static_cast<unsigned long long>(s.suspects_cut),
                  static_cast<unsigned long long>(s.list_violations));
      if (s.mean_flag_to_cut_minutes >= 0.0) {
        std::printf(", mean flag-to-cut %.2f min", s.mean_flag_to_cut_minutes);
      }
      std::printf("\n");
      if (s.fault_events > 0 || s.control_timeouts > 0 ||
          s.control_retries > 0) {
        std::printf("  faults: %llu fault events, %llu control timeouts, "
                    "%llu retries\n",
                    static_cast<unsigned long long>(s.fault_events),
                    static_cast<unsigned long long>(s.control_timeouts),
                    static_cast<unsigned long long>(s.control_retries));
      }
      return 0;
    }

    // inspect: filter and print matching events.
    obs::TraceFilter filter;
    const auto peer = opts.get("peer", std::int64_t{-1});
    if (peer >= 0) filter.peer = static_cast<PeerId>(peer);
    const std::string type = opts.get("type", std::string());
    if (!type.empty()) {
      const auto known = obs::event_from_name(type);
      if (!known) {
        std::fprintf(stderr, "unknown event type '%s'\n", type.c_str());
        return 2;
      }
      filter.type = known;
    }
    filter.t_min = opts.get("tmin", -1.0);
    filter.t_max = opts.get("tmax", -1.0);
    const auto limit =
        static_cast<std::size_t>(opts.get("limit", std::int64_t{50}));

    std::size_t matched = 0, printed = 0;
    for (const auto& r : records) {
      if (!filter.matches(r)) continue;
      ++matched;
      if (printed >= limit) continue;
      ++printed;
      std::printf("t=%-9.2f %-18s", r.t, r.type.c_str());
      if (r.a != kInvalidPeer) std::printf(" a=%u", r.a);
      if (r.b != kInvalidPeer) std::printf(" b=%u", r.b);
      for (const auto& [k, v] : r.kv) std::printf(" %s=%g", k.c_str(), v);
      if (!r.note.empty()) std::printf(" note=\"%s\"", r.note.c_str());
      std::printf("\n");
    }
    std::printf("%zu of %zu events matched", matched, records.size());
    if (matched > printed) std::printf(" (%zu shown; raise limit=)", printed);
    std::printf("\n");
    return 0;
  }

  std::fprintf(stderr,
               "usage: trace_tool gen|stats|inspect|summary|validate "
               "[key=value ...]\n");
  return 2;
}
