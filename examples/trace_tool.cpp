// Trace tooling. Two families of traces flow through here:
//
//  * workload query traces — generate a synthetic Gnutella-style query
//    trace (the stand-in for the paper's 24 h / 13M-query capture) or
//    analyze an existing one;
//  * simulation event traces — the JSONL streams written by the obs layer
//    (ddpsim trace=run.jsonl): filter them, summarize the defense
//    storyline, or schema-validate them.
//
// Usage:
//   trace_tool gen  out=trace.log [count=100000] [rate=151.3] [vocab=50000] [seed=1]
//   trace_tool stats in=trace.log
//   trace_tool flood out=flood.jsonl [peers=200] [queries=20] [ttl=7] [seed=1]
//   trace_tool inspect  in=run.jsonl [peer=N] [type=suspect_cut] [tmin=S] [tmax=S] [limit=50]
//   trace_tool summary  in=run.jsonl
//   trace_tool validate in=run.jsonl
//   trace_tool tree     in=run.jsonl query=ID [limit=200]
//   trace_tool forensics in=run.jsonl [csv=out.csv] [json=out.json]

#include <cstdio>
#include <fstream>
#include <iostream>

#include "obs/forensics.hpp"
#include "obs/trace_read.hpp"
#include "p2p/network.hpp"
#include "topology/generators.hpp"
#include "util/config.hpp"
#include "workload/trace.hpp"

namespace {

// Depth-first ASCII rendering of one flood-tree subtree; `budget` caps the
// number of printed nodes so a 2,000-peer flood stays readable.
void print_subtree(const ddp::obs::FloodTree& tree, std::size_t node,
                   const std::string& prefix, bool last, std::size_t& budget) {
  if (budget == 0) return;
  --budget;
  const auto& n = tree.nodes[node];
  std::printf("%s%s%u", prefix.c_str(),
              node == 0 ? "" : (last ? "`-- " : "|-- "), n.peer);
  if (n.hit) std::printf(" [hit]");
  if (n.expired) std::printf(" [ttl-expired]");
  if (n.first_t >= 0.0) std::printf("  t=%.2f", n.first_t);
  std::printf("\n");
  const std::string child_prefix =
      node == 0 ? prefix : prefix + (last ? "    " : "|   ");
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    print_subtree(tree, n.children[i], child_prefix,
                  i + 1 == n.children.size(), budget);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opts(argc, argv);
  const std::string mode =
      opts.positional().empty() ? "gen" : opts.positional().front();

  if (mode == "gen") {
    workload::TraceConfig cfg;
    cfg.queries_per_second = opts.get("rate", cfg.queries_per_second);
    cfg.vocabulary =
        static_cast<std::size_t>(opts.get("vocab", std::int64_t{50000}));
    const auto count =
        static_cast<std::size_t>(opts.get("count", std::int64_t{100000}));
    const auto seed = static_cast<std::uint64_t>(opts.get("seed", std::int64_t{1}));
    const std::string out = opts.get("out", std::string("trace.log"));

    workload::TraceGenerator gen(cfg);
    util::Rng rng(seed);
    const auto records = gen.generate(count, rng);
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
      return 1;
    }
    workload::write_trace(f, records);
    std::printf("wrote %zu records to %s (%.1f simulated seconds)\n",
                records.size(), out.c_str(),
                records.empty() ? 0.0 : records.back().timestamp);
    return 0;
  }

  if (mode == "flood") {
    // A traced packet-engine run: flood a paper-shaped overlay with a few
    // queries and write the packet-layer JSONL — the input `tree` expects.
    const auto peers =
        static_cast<std::size_t>(opts.get("peers", std::int64_t{200}));
    const auto queries =
        static_cast<std::size_t>(opts.get("queries", std::int64_t{20}));
    const auto seed = static_cast<std::uint64_t>(opts.get("seed", std::int64_t{1}));
    const std::string out = opts.get("out", std::string("flood.jsonl"));

    util::Rng rng(seed);
    topology::Graph graph = topology::paper_topology(peers, rng);
    workload::ContentConfig cc;
    const workload::ContentModel content(cc, peers);
    sim::Engine engine;
    p2p::P2pConfig cfg;
    cfg.ttl = static_cast<std::uint8_t>(opts.get("ttl", std::int64_t{cfg.ttl}));
    p2p::PacketNetwork net(graph, content, engine, cfg, util::Rng(seed));
    obs::JsonlFileSink sink(out);
    if (!sink.ok()) {
      std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
      return 1;
    }
    net.set_trace_sink(&sink);
    for (std::size_t i = 0; i < queries; ++i) {
      net.issue_random_query(static_cast<PeerId>(i % peers));
    }
    // Long enough for every flood to run to TTL exhaustion and every hit
    // to route back (ttl hops out + ttl hops back, plus queueing slack).
    engine.run_until(2.0 * cfg.ttl * cfg.hop_latency + 60.0);
    sink.flush();
    std::printf("wrote %llu events to %s (%zu peers, queries 1..%zu; "
                "try: trace_tool tree in=%s query=1)\n",
                static_cast<unsigned long long>(sink.lines()), out.c_str(),
                peers, queries, out.c_str());
    return 0;
  }

  if (mode == "stats") {
    const std::string in = opts.get("in", std::string("trace.log"));
    std::ifstream f(in);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", in.c_str());
      return 1;
    }
    const auto records = workload::read_trace(f);
    const auto stats = workload::analyze_trace(records);
    std::printf("trace %s:\n", in.c_str());
    std::printf("  records           %zu\n", stats.records);
    std::printf("  unique queries    %zu\n", stats.unique_queries);
    std::printf("  duration          %.1f s\n", stats.duration_seconds);
    std::printf("  mean query size   %.1f bytes\n", stats.mean_query_bytes);
    std::printf("  top-10 share      %.2f%%\n", stats.top10_share * 100.0);
    std::printf("(the paper's capture: 13,075,339 queries / 112 MB / 24 h)\n");
    return 0;
  }

  if (mode == "inspect" || mode == "summary" || mode == "validate" ||
      mode == "tree" || mode == "forensics") {
    const std::string in = opts.get("in", std::string("run.jsonl"));
    std::ifstream f(in);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", in.c_str());
      return 1;
    }

    if (mode == "validate") {
      std::vector<obs::SchemaError> errors;
      const auto records = obs::validate_trace(f, errors);
      for (const auto& e : errors) {
        std::fprintf(stderr, "%s:%zu: %s\n", in.c_str(), e.line,
                     e.message.c_str());
      }
      if (!errors.empty()) {
        std::printf("%s: INVALID (%zu schema error%s, %zu lines parsed)\n",
                    in.c_str(), errors.size(), errors.size() == 1 ? "" : "s",
                    records.size());
        return 1;
      }
      if (records.empty()) {
        // An empty trace is never what a run produces; treat it as a
        // failed capture rather than a vacuous pass.
        std::printf("%s: INVALID (no events)\n", in.c_str());
        return 1;
      }
      std::printf("%s: OK (%zu events, schema-valid)\n", in.c_str(),
                  records.size());
      return 0;
    }

    const auto records = obs::read_trace_records(f);

    if (mode == "tree") {
      // Query id: query= or a second positional (trace_tool tree run 7).
      std::int64_t id = opts.get("query", std::int64_t{-1});
      if (id < 0 && opts.positional().size() > 1) {
        id = std::atoll(opts.positional()[1].c_str());
      }
      if (id < 0) {
        std::fprintf(stderr, "tree: pass query=ID (from query_issued events)\n");
        return 2;
      }
      const obs::FloodTree tree =
          obs::build_flood_tree(records, static_cast<QueryId>(id));
      if (!tree.found) {
        std::printf("query %lld: no events in %s\n",
                    static_cast<long long>(id), in.c_str());
        return 1;
      }
      std::printf("query %lld: origin %u, issued t=%.2f, %s\n",
                  static_cast<long long>(id), tree.origin, tree.issued_t,
                  tree.attack ? "attack" : "good");
      std::printf("  %zu peers reached, depth %u, %llu forwards, %llu "
                  "duplicates, %llu queue drops\n",
                  tree.nodes.size(), tree.depth,
                  static_cast<unsigned long long>(tree.forwards),
                  static_cast<unsigned long long>(tree.duplicates),
                  static_cast<unsigned long long>(tree.drops));
      std::printf("  %llu hits, %llu delivered",
                  static_cast<unsigned long long>(tree.hits),
                  static_cast<unsigned long long>(tree.delivered));
      if (tree.first_delivery_latency >= 0.0) {
        std::printf(", first delivery after %.2f s", tree.first_delivery_latency);
      }
      std::printf("\n");
      if (!tree.nodes.empty()) {
        std::size_t budget =
            static_cast<std::size_t>(opts.get("limit", std::int64_t{200}));
        const std::size_t total = tree.nodes.size();
        print_subtree(tree, 0, "  ", true, budget);
        if (budget == 0 && total > 0) {
          std::printf("  ... (tree truncated; raise limit=)\n");
        }
      }
      return 0;
    }

    if (mode == "forensics") {
      obs::ForensicsAccumulator acc;
      for (const auto& r : records) acc.add(r);
      std::printf("%s", acc.summary().c_str());
      const std::string csv = opts.get("csv", std::string("-"));
      const std::string json = opts.get("json", std::string("-"));
      if (csv != "-") {
        if (!acc.write_csv(csv)) {
          std::fprintf(stderr, "cannot write %s\n", csv.c_str());
          return 1;
        }
        std::printf("wrote %s\n", csv.c_str());
      }
      if (json != "-") {
        if (!acc.write_json(json)) {
          std::fprintf(stderr, "cannot write %s\n", json.c_str());
          return 1;
        }
        std::printf("wrote %s\n", json.c_str());
      }
      return 0;
    }

    if (mode == "summary") {
      const obs::TraceSummary s = obs::summarize_trace(records);
      std::printf("trace %s: %llu events, t %.1f..%.1f s\n", in.c_str(),
                  static_cast<unsigned long long>(s.records), s.first_t,
                  s.last_t);
      if (s.wall_logs > 0) {
        std::printf("  (+%llu wall-layer log lines, excluded from the time "
                    "range)\n",
                    static_cast<unsigned long long>(s.wall_logs));
      }
      std::printf("  by type:\n");
      for (std::size_t i = 0; i < obs::kEventTypeCount; ++i) {
        if (s.by_type[i] == 0) continue;
        std::printf("    %-18s %llu\n",
                    obs::event_name(static_cast<obs::EventType>(i)),
                    static_cast<unsigned long long>(s.by_type[i]));
      }
      if (s.unknown_types > 0) {
        std::printf("    (unknown types)    %llu\n",
                    static_cast<unsigned long long>(s.unknown_types));
      }
      std::printf("  defense: %llu suspects flagged, %llu cut, %llu list "
                  "violations",
                  static_cast<unsigned long long>(s.suspects_flagged),
                  static_cast<unsigned long long>(s.suspects_cut),
                  static_cast<unsigned long long>(s.list_violations));
      if (s.mean_flag_to_cut_minutes >= 0.0) {
        std::printf(", mean flag-to-cut %.2f min", s.mean_flag_to_cut_minutes);
      }
      std::printf("\n");
      if (s.fault_events > 0 || s.control_timeouts > 0 ||
          s.control_retries > 0) {
        std::printf("  faults: %llu fault events, %llu control timeouts, "
                    "%llu retries\n",
                    static_cast<unsigned long long>(s.fault_events),
                    static_cast<unsigned long long>(s.control_timeouts),
                    static_cast<unsigned long long>(s.control_retries));
      }
      return 0;
    }

    // inspect: filter and print matching events.
    obs::TraceFilter filter;
    const auto peer = opts.get("peer", std::int64_t{-1});
    if (peer >= 0) filter.peer = static_cast<PeerId>(peer);
    const std::string type = opts.get("type", std::string());
    if (!type.empty()) {
      const auto known = obs::event_from_name(type);
      if (!known) {
        std::fprintf(stderr, "unknown event type '%s'\n", type.c_str());
        return 2;
      }
      filter.type = known;
    }
    filter.t_min = opts.get("tmin", -1.0);
    filter.t_max = opts.get("tmax", -1.0);
    const auto limit =
        static_cast<std::size_t>(opts.get("limit", std::int64_t{50}));

    std::size_t matched = 0, printed = 0;
    for (const auto& r : records) {
      if (!filter.matches(r)) continue;
      ++matched;
      if (printed >= limit) continue;
      ++printed;
      std::printf("t=%-9.2f %-18s", r.t, r.type.c_str());
      if (r.a != kInvalidPeer) std::printf(" a=%u", r.a);
      if (r.b != kInvalidPeer) std::printf(" b=%u", r.b);
      for (const auto& [k, v] : r.kv) std::printf(" %s=%g", k.c_str(), v);
      if (!r.note.empty()) std::printf(" note=\"%s\"", r.note.c_str());
      std::printf("\n");
    }
    std::printf("%zu of %zu events matched", matched, records.size());
    if (matched > printed) std::printf(" (%zu shown; raise limit=)", printed);
    std::printf("\n");
    return 0;
  }

  std::fprintf(stderr,
               "usage: trace_tool gen|stats|flood|inspect|summary|validate|"
               "tree|forensics [key=value ...]\n");
  return 2;
}
