// Query-trace tooling: generate a synthetic Gnutella-style query trace
// (the stand-in for the paper's 24 h / 13M-query capture) or analyze an
// existing one.
//
// Usage:
//   trace_tool gen  out=trace.log [count=100000] [rate=151.3] [vocab=50000] [seed=1]
//   trace_tool stats in=trace.log

#include <cstdio>
#include <fstream>
#include <iostream>

#include "util/config.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opts(argc, argv);
  const std::string mode =
      opts.positional().empty() ? "gen" : opts.positional().front();

  if (mode == "gen") {
    workload::TraceConfig cfg;
    cfg.queries_per_second = opts.get("rate", cfg.queries_per_second);
    cfg.vocabulary =
        static_cast<std::size_t>(opts.get("vocab", std::int64_t{50000}));
    const auto count =
        static_cast<std::size_t>(opts.get("count", std::int64_t{100000}));
    const auto seed = static_cast<std::uint64_t>(opts.get("seed", std::int64_t{1}));
    const std::string out = opts.get("out", std::string("trace.log"));

    workload::TraceGenerator gen(cfg);
    util::Rng rng(seed);
    const auto records = gen.generate(count, rng);
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
      return 1;
    }
    workload::write_trace(f, records);
    std::printf("wrote %zu records to %s (%.1f simulated seconds)\n",
                records.size(), out.c_str(),
                records.empty() ? 0.0 : records.back().timestamp);
    return 0;
  }

  if (mode == "stats") {
    const std::string in = opts.get("in", std::string("trace.log"));
    std::ifstream f(in);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", in.c_str());
      return 1;
    }
    const auto records = workload::read_trace(f);
    const auto stats = workload::analyze_trace(records);
    std::printf("trace %s:\n", in.c_str());
    std::printf("  records           %zu\n", stats.records);
    std::printf("  unique queries    %zu\n", stats.unique_queries);
    std::printf("  duration          %.1f s\n", stats.duration_seconds);
    std::printf("  mean query size   %.1f bytes\n", stats.mean_query_bytes);
    std::printf("  top-10 share      %.2f%%\n", stats.top10_share * 100.0);
    std::printf("(the paper's capture: 13,075,339 queries / 112 MB / 24 h)\n");
    return 0;
  }

  std::fprintf(stderr, "usage: trace_tool gen|stats [key=value ...]\n");
  return 2;
}
