// Operating-point tuning: sweep the cut threshold CT for *your* overlay's
// parameters and print the error/recovery tradeoff the paper's Figures
// 13-14 study, ending with a recommendation (minimum false judgment,
// ties broken by recovery time).
//
// Usage: tune_ct [peers=500] [agents=25] [minutes=22] [trials=2]
//                [cts=1,3,5,7,9,12] [seed=99]

#include <cstdio>
#include <iostream>
#include <sstream>

#include "experiments/figures.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ddp;
  const util::Options opts(argc, argv);
  experiments::Scale scale;
  scale.peers = static_cast<std::size_t>(opts.get("peers", std::int64_t{500}));
  scale.total_minutes = opts.get("minutes", 22.0);
  scale.attack_start = 4.0;
  scale.warmup_minutes = 6.0;
  scale.trials = static_cast<std::uint32_t>(opts.get("trials", std::int64_t{2}));
  const auto agents = static_cast<std::size_t>(opts.get("agents", std::int64_t{25}));
  const auto seed = static_cast<std::uint64_t>(opts.get("seed", std::int64_t{99}));

  std::vector<double> cts;
  {
    std::stringstream ss(opts.get("cts", std::string("1,3,5,7,9,12")));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) cts.push_back(std::stod(tok));
    }
  }

  std::printf("tuning CT for %zu peers under a %zu-agent attack (%u trials)\n",
              scale.peers, agents, scale.trials);
  const auto rows = experiments::run_ct_sweep(scale, cts, agents, seed);

  experiments::fig13_errors_table(rows).print(std::cout, "errors vs CT");
  experiments::fig14_recovery_table(rows).print(std::cout, "recovery vs CT");

  const experiments::CtSweepRow* best = nullptr;
  for (const auto& r : rows) {
    if (best == nullptr || r.false_judgment < best->false_judgment ||
        (r.false_judgment == best->false_judgment &&
         r.recovery_minutes < best->recovery_minutes)) {
      best = &r;
    }
  }
  if (best != nullptr) {
    std::printf("\nrecommended operating point: CT = %.0f "
                "(false judgment %.1f, recovery %.1f min, stabilized damage %.1f%%)\n",
                best->cut_threshold, best->false_judgment,
                best->recovery_minutes, best->stabilized_damage);
    std::printf("the paper settles on CT = 5 for its 2,000-peer configuration "
                "(Sec. 3.7.2).\n");
  }
  return 0;
}
