#!/usr/bin/env sh
# Perf-trajectory gate: run the engine headline bench, compare against the
# last recorded point, and append the new point on pass.
#
#   scripts/bench_trajectory.sh            # measure, gate, append
#   scripts/bench_trajectory.sh --dry-run  # measure + gate, don't append
#
# The trajectory lives in results/BENCH_trajectory.jsonl — one JSON object
# per accepted measurement, append-only, so the file *is* the performance
# history across PRs. The gate fails (exit 1) when either headline metric
# regresses by more than 15% against the previous entry:
#
#   events_per_sec                — raw event-core dispatch throughput
#   flow_minutes_per_sec          — end-to-end flow-layer simulation rate
#   sharded_flow_minutes_per_sec  — best point of the 20k-peer shard
#                                   scaling curve (parallel tick sweeps);
#                                   gated only once a previous point
#                                   recorded it, so old history still parses
#
# 15% is deliberately loose: headline numbers on a shared builder wobble a
# few percent run to run, and the gate must only catch real regressions
# (an accidental O(n^2), a hot-path allocation), not scheduler noise.
# An empty, missing, or unparsable trajectory bootstraps: the run records
# a fresh point and applies no gate.
#
# DDP_TRAJECTORY_FILE overrides the trajectory path (the check.sh --bench
# bootstrap tests point it at a scratch file).
set -eu

cd "$(dirname "$0")/.."

dry_run=0
for arg in "$@"; do
  case "$arg" in
    --dry-run) dry_run=1 ;;
    *) echo "unknown argument: $arg (expected --dry-run)" >&2; exit 2 ;;
  esac
done

bench=./build/bench/bench_engine_perf
if [ ! -x "$bench" ]; then
  echo "bench_trajectory: $bench not built (run scripts/check.sh first)" >&2
  exit 2
fi

trajectory="${DDP_TRAJECTORY_FILE:-results/BENCH_trajectory.jsonl}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== engine headline bench =="
"$bench" --headline-only --out-dir "$tmp" > /dev/null

# BENCH_engine.json is pretty-printed one field per line, so a key lookup
# is a single awk pass (no JSON parser in the image).
json_field() {
  # Exact key match (strip indentation): "flow_minutes_per_sec" must not
  # also pick up "sharded_flow_minutes_per_sec".
  awk -F': ' -v key="\"$1\"" \
      '{ k = $1; gsub(/^[ \t]+/, "", k);
         if (k == key) { gsub(/[ ,]/, "", $2); print $2 } }' \
      "$tmp/BENCH_engine.json"
}

events="$(json_field events_per_sec)"
flow="$(json_field flow_minutes_per_sec)"
sharded="$(json_field sharded_flow_minutes_per_sec)"
ns_event="$(json_field ns_per_event)"
wall="$(json_field wall_seconds)"
if [ -z "$events" ] || [ -z "$flow" ] || [ -z "$sharded" ]; then
  echo "bench_trajectory: could not parse BENCH_engine.json" >&2
  exit 2
fi
echo "measured: $events events/sec, $flow flow-minutes/sec," \
     "$sharded sharded flow-minutes/sec @20k"

# Gate against the last accepted point, when one exists.
prev=""
if [ -s "$trajectory" ]; then
  prev="$(tail -n 1 "$trajectory")"
fi
if [ -n "$prev" ]; then
  prev_events="$(printf '%s\n' "$prev" | tr ',' '\n' | \
      awk -F': *' '/"events_per_sec"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2 }')"
  prev_flow="$(printf '%s\n' "$prev" | tr ',' '\n' | \
      awk -F': *' '/"flow_minutes_per_sec"/ && !/sharded/ { gsub(/[^0-9.eE+-]/, "", $2); print $2 }')"
  prev_sharded="$(printf '%s\n' "$prev" | tr ',' '\n' | \
      awk -F': *' '/"sharded_flow_minutes_per_sec"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2 }')"
  if [ -z "$prev_events" ] || [ -z "$prev_flow" ]; then
    # A truncated write or hand edit left the last line unparsable. Don't
    # gate against garbage and don't fail the build over history damage —
    # re-bootstrap, appending a fresh well-formed point.
    echo "perf trajectory: last line of $trajectory is unparsable;" \
         "re-bootstrapping (no gate this run)"
    prev=""
  fi
fi
if [ -n "$prev" ]; then
  echo "previous: $prev_events events/sec, $prev_flow flow-minutes/sec," \
       "${prev_sharded:-n/a} sharded"
  fail="$(awk -v e="$events" -v pe="$prev_events" \
              -v f="$flow" -v pf="$prev_flow" \
              -v s="$sharded" -v ps="${prev_sharded:-0}" 'BEGIN {
    bad = 0
    if (pe + 0 > 0 && e + 0 < 0.85 * pe) {
      printf "events_per_sec regressed %.1f%% (%s -> %s)\n", \
             100 * (1 - e / pe), pe, e
      bad = 1
    }
    if (pf + 0 > 0 && f + 0 < 0.85 * pf) {
      printf "flow_minutes_per_sec regressed %.1f%% (%s -> %s)\n", \
             100 * (1 - f / pf), pf, f
      bad = 1
    }
    if (ps + 0 > 0 && s + 0 < 0.85 * ps) {
      printf "sharded_flow_minutes_per_sec regressed %.1f%% (%s -> %s)\n", \
             100 * (1 - s / ps), ps, s
      bad = 1
    }
    exit bad ? 0 : 1
  }' || true)"
  if [ -n "$fail" ]; then
    echo "FAIL: perf trajectory gate (>15% vs last recorded point):" >&2
    printf '%s\n' "$fail" >&2
    echo "(if the regression is intended, document it in the PR and" >&2
    echo " append the new point by hand to $trajectory)" >&2
    exit 1
  fi
  echo "perf trajectory: OK (within 15% of the last recorded point)"
else
  echo "perf trajectory: bootstrap (no previous point to gate against)"
fi

if [ "$dry_run" -eq 1 ]; then
  echo "dry run: not appending to $trajectory"
  exit 0
fi

mkdir -p "$(dirname "$trajectory")"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
printf '{"date":"%s","commit":"%s","events_per_sec":%s,"ns_per_event":%s,"flow_minutes_per_sec":%s,"sharded_flow_minutes_per_sec":%s,"wall_seconds":%s}\n' \
    "$stamp" "$commit" "$events" "$ns_event" "$flow" "$sharded" "$wall" >> "$trajectory"
echo "recorded: $trajectory ($stamp, $commit)"
