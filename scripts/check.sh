#!/usr/bin/env sh
# One-stop pre-merge gate.
#
#   scripts/check.sh          # tier-1: configure, build, ctest, trace check
#   scripts/check.sh --asan   # tier-1 plus the ASan+UBSan suite (slow)
#   scripts/check.sh --soak   # tier-1 plus a 2-simulated-hour chaos soak
#   scripts/check.sh --tsan   # tier-1 plus the threaded sweep harness
#                             # under ThreadSanitizer (pool + parallel sweeps)
#   scripts/check.sh --snapshot  # tier-1 plus the checkpoint/restore gate:
#                             # checkpoint mid-run, resume in a fresh
#                             # process, require byte-identical outputs;
#                             # truncated snapshots must be rejected; plus
#                             # a chaos-soak kill-and-resume drill
#   scripts/check.sh --bench  # tier-1 plus the perf-trajectory gate:
#                             # run the engine headline bench, fail on a
#                             # >15% regression vs the last recorded point
#                             # in results/BENCH_trajectory.jsonl, append
#                             # the new point on pass; also shell-tests the
#                             # gate's bootstrap paths (missing / empty /
#                             # corrupt trajectory) against a scratch file
#   scripts/check.sh --adaptive  # tier-1 plus the adaptive-CT gate:
#                             # invalid adaptive configs must exit 2, the
#                             # laptop-scale ablation must be run-to-run
#                             # byte-identical, and adaptive=0 must leave
#                             # ddpsim output byte-identical to the default
#   scripts/check.sh --net    # tier-1 plus the socket-engine gate:
#                             # build ddpnode/ddptestbed, run the loopback
#                             # engine suite (plain and under ASan+UBSan),
#                             # then a 10-process localhost mini-testbed
#                             # that must cut the attacker and no honest
#                             # peer from real TCP traffic
#   scripts/check.sh --shard  # tier-1 plus the sharded-engine gate:
#                             # ddpsim trace/CSV byte-identity across
#                             # flow_jobs/flow_shards combinations, then a
#                             # sharded mini-soak (churn + faults +
#                             # quarantine) and the shard determinism tests
#                             # under the ThreadSanitizer preset
#
# Tier-1 is the contract every PR must keep green: the default-preset
# build, the full ctest suite, and an end-to-end observability check —
# a small traced scenario run through ddpsim whose JSONL output must be
# schema-valid per `trace_tool validate`, and deterministic (same seed
# twice => byte-identical trace files).
set -eu

cd "$(dirname "$0")/.."
repo="$(pwd)"

run_asan=0
run_soak=0
run_tsan=0
run_snapshot=0
run_bench=0
run_adaptive=0
run_shard=0
run_net=0
for arg in "$@"; do
  case "$arg" in
    --asan) run_asan=1 ;;
    --soak) run_soak=1 ;;
    --tsan) run_tsan=1 ;;
    --snapshot) run_snapshot=1 ;;
    --bench) run_bench=1 ;;
    --adaptive) run_adaptive=1 ;;
    --shard) run_shard=1 ;;
    --net) run_net=1 ;;
    *) echo "unknown argument: $arg (expected --asan, --soak, --tsan, --snapshot, --bench, --adaptive, --shard or --net)" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== configure + build (default preset) =="
cmake --preset default
cmake --build --preset default -j "$jobs"

echo "== ctest (tier-1 suite) =="
ctest --preset default

echo "== traced scenario: schema validation + determinism =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./build/examples/ddpsim peers=120 agents=12 minutes=8 seed=7 \
    trace="$tmp/a.jsonl" > /dev/null
./build/examples/ddpsim peers=120 agents=12 minutes=8 seed=7 \
    trace="$tmp/b.jsonl" > /dev/null
./build/examples/trace_tool validate in="$tmp/a.jsonl"
if ! cmp -s "$tmp/a.jsonl" "$tmp/b.jsonl"; then
  echo "FAIL: same-seed traces differ (determinism regression)" >&2
  exit 1
fi
echo "trace determinism: OK (same seed => byte-identical JSONL)"

echo "== forensics: determinism + live-vs-offline fold identity =="
# Two same-seed runs with the forensics accumulator attached must export
# byte-identical CSVs, and trace_tool's offline fold of the JSONL trace
# must reproduce the live accumulator's CSV exactly (same fold, two
# paths — this is what makes post-hoc forensics trustworthy).
./build/examples/ddpsim peers=120 agents=12 minutes=8 seed=7 \
    trace="$tmp/fa.jsonl" forensics="$tmp/fa.csv" > /dev/null
./build/examples/ddpsim peers=120 agents=12 minutes=8 seed=7 \
    forensics="$tmp/fb.csv" > /dev/null
if ! cmp -s "$tmp/fa.csv" "$tmp/fb.csv"; then
  echo "FAIL: same-seed forensics CSVs differ (determinism regression)" >&2
  exit 1
fi
./build/examples/trace_tool forensics in="$tmp/fa.jsonl" \
    csv="$tmp/fa_offline.csv" > /dev/null
if ! cmp -s "$tmp/fa.csv" "$tmp/fa_offline.csv"; then
  echo "FAIL: offline forensics fold diverges from the live accumulator" >&2
  exit 1
fi
echo "forensics determinism: OK (live == offline, byte-identical)"

echo "== golden byte-identity gate (figure CSVs + short trace) =="
# Laptop-scale runs of the figure benches plus a short traced ddpsim
# scenario, hashed against the committed manifest. Catches any change to
# the simulation arithmetic, iteration order or output formatting: a
# refactor that claims bit-exactness must leave every hash untouched
# (regenerate with scripts/regen_golden.sh when a change is *meant* to
# shift results, and say so in the PR).
mkdir -p "$tmp/golden"
env -u DDP_FULL -u DDP_SEED ./build/bench/bench_fig5_capacity \
    --out-dir "$tmp/golden" > /dev/null
env -u DDP_FULL -u DDP_SEED DDP_TRIALS=1 ./build/bench/bench_fig11_success \
    --out-dir "$tmp/golden" > /dev/null
env -u DDP_FULL -u DDP_SEED DDP_TRIALS=1 ./build/bench/bench_attack_rate \
    --out-dir "$tmp/golden" > /dev/null
./build/examples/ddpsim peers=300 agents=20 minutes=8 seed=7 \
    trace="$tmp/golden/ddpsim_short.jsonl" \
    csv="$tmp/golden/ddpsim_short.csv" > /dev/null
if (cd "$tmp/golden" && sha256sum -c "$repo/tests/golden/sha256sums.txt"); then
  echo "golden byte-identity: OK"
else
  echo "FAIL: golden outputs diverged from tests/golden/sha256sums.txt" >&2
  exit 1
fi

if [ "$run_snapshot" -eq 1 ]; then
  echo "== checkpoint/restore determinism gate =="
  # Uninterrupted 8-minute run vs the same schedule checkpointed at minute
  # 4 and resumed in a fresh process: the concatenated traces and the
  # resumed CSV must be byte-identical to the uninterrupted run's.
  mkdir -p "$tmp/snap"
  ./build/examples/ddpsim peers=120 agents=12 minutes=8 seed=7 \
      trace="$tmp/snap/full.jsonl" csv="$tmp/snap/full.csv" > /dev/null
  ./build/examples/ddpsim peers=120 agents=12 minutes=4 seed=7 \
      trace="$tmp/snap/part1.jsonl" checkpoint="$tmp/snap/ck.snap" > /dev/null
  ./build/examples/ddpsim peers=120 agents=12 minutes=8 seed=7 \
      trace="$tmp/snap/part2.jsonl" csv="$tmp/snap/resumed.csv" \
      restore="$tmp/snap/ck.snap" > /dev/null
  cat "$tmp/snap/part1.jsonl" "$tmp/snap/part2.jsonl" > "$tmp/snap/joined.jsonl"
  if ! cmp -s "$tmp/snap/joined.jsonl" "$tmp/snap/full.jsonl"; then
    echo "FAIL: resumed trace diverges from the uninterrupted run" >&2
    exit 1
  fi
  if ! cmp -s "$tmp/snap/resumed.csv" "$tmp/snap/full.csv"; then
    echo "FAIL: resumed per-minute CSV diverges from the uninterrupted run" >&2
    exit 1
  fi
  echo "checkpoint/restore determinism: OK (byte-identical trace + CSV)"

  # A torn snapshot must be rejected with the structured exit code 3,
  # never half-loaded.
  size="$(wc -c < "$tmp/snap/ck.snap")"
  head -c "$((size / 2))" "$tmp/snap/ck.snap" > "$tmp/snap/torn.snap"
  if ./build/examples/ddpsim peers=120 agents=12 minutes=8 seed=7 \
      restore="$tmp/snap/torn.snap" > /dev/null 2>&1; then
    echo "FAIL: truncated snapshot was accepted" >&2
    exit 1
  else
    rc=$?
    if [ "$rc" -ne 3 ]; then
      echo "FAIL: truncated snapshot exited $rc, expected 3" >&2
      exit 1
    fi
  fi
  echo "torn snapshot rejection: OK (exit 3)"

  echo "== chaos soak kill-and-resume drill =="
  # Kill the soak at a minute boundary, checkpoint, resume from the file
  # and run to the end; exits non-zero on any standing-invariant
  # violation across either leg.
  ./build/bench/bench_soak_chaos peers=150 agents=15 minutes=40 \
      kill_at=20 checkpoint="$tmp/snap/soak.snap"
fi

if [ "$run_soak" -eq 1 ]; then
  echo "== chaos soak (quarantine + priority shedding + repair, 2 sim hours) =="
  # Reduced-length version of the 8-hour soak (bench_soak_chaos with no
  # arguments); exits non-zero on any standing-invariant violation.
  ./build/bench/bench_soak_chaos minutes=120
fi

if [ "$run_tsan" -eq 1 ]; then
  echo "== ThreadSanitizer: pool + parallel sweep harness =="
  # Builds the tsan preset and runs the concurrency surface under TSan:
  # the sweep/pool unit tests (which include jobs=1 vs jobs=N identity
  # checks on the real fig 9-11 pipeline) and a fanned-out mini soak.
  # Any data race aborts the process, so this gate fails loudly.
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" \
      --target sweep_test snapshot_test forensics_test adaptive_test \
               attack_test bench_soak_chaos
  ./build-tsan/tests/sweep_test
  ./build-tsan/tests/snapshot_test
  ./build-tsan/tests/forensics_test
  ./build-tsan/tests/adaptive_test
  ./build-tsan/tests/attack_test
  ./build-tsan/bench/bench_soak_chaos minutes=30 soaks=2 jobs=2 > /dev/null
  echo "tsan sweep harness: OK (no races reported)"
fi

if [ "$run_adaptive" -eq 1 ]; then
  echo "== adaptive-CT gate =="
  # 1. Inconsistent adaptive parameters must die with exit 2 and a message
  #    naming the offending knob, not a throw from inside the runner.
  for bad in "adaptive_k1=4 adaptive_k2=2" "adaptive_window=0" \
             "adaptive=1 defense=none"; do
    # shellcheck disable=SC2086
    if ./build/examples/ddpsim peers=100 agents=5 minutes=5 adaptive=1 \
        $bad > /dev/null 2>&1; then
      echo "FAIL: invalid adaptive config ($bad) was accepted" >&2
      exit 1
    else
      rc=$?
      if [ "$rc" -ne 2 ]; then
        echo "FAIL: invalid adaptive config ($bad) exited $rc, expected 2" >&2
        exit 1
      fi
    fi
  done
  echo "adaptive validation: OK (inconsistent params exit 2)"

  # 2. The static-vs-adaptive ablation must be run-to-run byte-identical.
  mkdir -p "$tmp/adp1" "$tmp/adp2"
  env -u DDP_FULL -u DDP_SEED DDP_TRIALS=1 ./build/bench/bench_adaptive_ct \
      --out-dir "$tmp/adp1" > /dev/null
  env -u DDP_FULL -u DDP_SEED DDP_TRIALS=1 ./build/bench/bench_adaptive_ct \
      --out-dir "$tmp/adp2" > /dev/null
  if ! cmp -s "$tmp/adp1/fig_adaptive_ct.csv" "$tmp/adp2/fig_adaptive_ct.csv"; then
    echo "FAIL: adaptive-CT ablation is not run-to-run deterministic" >&2
    exit 1
  fi
  echo "adaptive ablation determinism: OK (byte-identical CSV)"

  # 3. adaptive=0 (the default) must leave the simulation byte-identical:
  #    the flag parses, constructs nothing, and the paper-default series
  #    matches a run that never mentions it.
  ./build/examples/ddpsim peers=120 agents=12 minutes=8 seed=7 \
      csv="$tmp/adp_off.csv" adaptive=0 > /dev/null
  ./build/examples/ddpsim peers=120 agents=12 minutes=8 seed=7 \
      csv="$tmp/adp_default.csv" > /dev/null
  if ! cmp -s "$tmp/adp_off.csv" "$tmp/adp_default.csv"; then
    echo "FAIL: adaptive=0 changes the paper-default series" >&2
    exit 1
  fi
  echo "adaptive off-switch: OK (byte-identical to the default run)"
fi

if [ "$run_shard" -eq 1 ]; then
  echo "== sharded engine: jobs/shard invariance (release build) =="
  # The whole point of the deterministic boundary merge: every worker and
  # shard count must produce byte-identical traces and figure CSVs. The
  # reference leg is the serial engine (flow_jobs=1, no pool constructed).
  mkdir -p "$tmp/shard"
  ./build/examples/ddpsim peers=300 agents=20 minutes=8 seed=7 \
      trace="$tmp/shard/ref.jsonl" csv="$tmp/shard/ref.csv" > /dev/null
  for combo in "2 3" "4 0" "8 5"; do
    j="${combo% *}"
    s="${combo#* }"
    ./build/examples/ddpsim peers=300 agents=20 minutes=8 seed=7 \
        flow_jobs="$j" flow_shards="$s" \
        trace="$tmp/shard/par.jsonl" csv="$tmp/shard/par.csv" > /dev/null
    if ! cmp -s "$tmp/shard/ref.jsonl" "$tmp/shard/par.jsonl" || \
       ! cmp -s "$tmp/shard/ref.csv" "$tmp/shard/par.csv"; then
      echo "FAIL: flow_jobs=$j flow_shards=$s output differs from serial" >&2
      exit 1
    fi
  done
  echo "shard invariance: OK (jobs 2/4/8 x shards byte-identical to serial)"

  echo "== sharded engine: TSan mini-soak + shard determinism tests =="
  # Build the concurrency surface under ThreadSanitizer and run (a) the
  # shard determinism suite (span merge, SoA containers, jobs-invariance
  # up through full scenario runs with the sharded DD-POLICE flag scan)
  # and (b) a sharded mini-soak: churn + control faults + quarantine with
  # the worker pool engaged, byte-compared against its own serial leg.
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target shard_test ddpsim
  ./build-tsan/tests/shard_test
  ./build-tsan/examples/ddpsim peers=300 agents=25 minutes=12 seed=11 \
      cut_policy=quarantine loss=0.05 crash=0.002 stall=0.004 \
      csv="$tmp/shard/soak1.csv" > /dev/null
  ./build-tsan/examples/ddpsim peers=300 agents=25 minutes=12 seed=11 \
      cut_policy=quarantine loss=0.05 crash=0.002 stall=0.004 \
      flow_jobs=4 flow_shards=3 csv="$tmp/shard/soak4.csv" > /dev/null
  if ! cmp -s "$tmp/shard/soak1.csv" "$tmp/shard/soak4.csv"; then
    echo "FAIL: sharded TSan mini-soak diverges from its serial leg" >&2
    exit 1
  fi
  echo "tsan shard gate: OK (no races, soak byte-identical)"
fi

if [ "$run_net" -eq 1 ]; then
  echo "== socket engine: loopback suite (release build) =="
  # ddpnode/ddptestbed are part of the default build above; the loopback
  # suite drives the real epoll engine over 127.0.0.1 sockets — framing
  # across torn reads, backpressure disconnect, half-open timeout, clean
  # SIGTERM shutdown with no leaked fds, and the echo-corrected credit.
  ./build/tests/netengine_test

  echo "== socket engine: loopback suite under ASan + UBSan =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs" --target netengine_test
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
      ./build-asan/tests/netengine_test

  echo "== socket engine: 10-process localhost mini-testbed =="
  # One attacker among ten real ddpnode processes; STRICT aggregation
  # fails the gate unless the attacker is cut and no honest peer is.
  BUILD_DIR="$repo/build" OUT_DIR="$tmp/net_testbed" STRICT=1 \
      scripts/testbed.sh 10 1
  echo "socket engine gate: OK (loopback suite x2 + mini-testbed STRICT)"
fi

if [ "$run_asan" -eq 1 ]; then
  echo "== ASan + UBSan suite =="
  scripts/sanitize.sh
fi

if [ "$run_bench" -eq 1 ]; then
  echo "== perf trajectory gate: bootstrap paths =="
  # The gate must bootstrap cleanly — record a point, apply no gate — when
  # the trajectory file is missing, empty, or ends in an unparsable line.
  # DDP_TRAJECTORY_FILE points each case at a scratch file so the real
  # history in results/ is never touched.
  for case_name in missing empty corrupt; do
    traj="$tmp/traj_$case_name.jsonl"
    case "$case_name" in
      empty) : > "$traj" ;;
      corrupt) echo '{"events_per_sec": tru' > "$traj" ;;
    esac
    if ! DDP_TRAJECTORY_FILE="$traj" scripts/bench_trajectory.sh > "$tmp/traj_out" 2>&1; then
      echo "FAIL: bench_trajectory.sh did not bootstrap on $case_name trajectory" >&2
      cat "$tmp/traj_out" >&2
      exit 1
    fi
    if ! grep -q "bootstrap" "$tmp/traj_out"; then
      echo "FAIL: $case_name trajectory did not take the bootstrap path" >&2
      cat "$tmp/traj_out" >&2
      exit 1
    fi
    lines="$(wc -l < "$traj")"
    expected=1
    [ "$case_name" = corrupt ] && expected=2
    if [ "$lines" -ne "$expected" ]; then
      echo "FAIL: $case_name bootstrap left $lines lines in $traj (expected $expected)" >&2
      exit 1
    fi
  done
  echo "trajectory bootstrap: OK (missing / empty / corrupt all record cleanly)"

  echo "== perf trajectory gate =="
  scripts/bench_trajectory.sh
fi

echo "All checks passed."
