#!/usr/bin/env sh
# Regenerate tests/golden/sha256sums.txt from the current build.
#
# Run this ONLY when a change is *supposed* to shift simulation results
# (new physics, calibration change, output-format change) — and say so in
# the PR. A pure refactor must keep the existing manifest green in
# scripts/check.sh without regeneration.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

env -u DDP_FULL -u DDP_SEED ./build/bench/bench_fig5_capacity \
    --out-dir "$tmp" > /dev/null
env -u DDP_FULL -u DDP_SEED DDP_TRIALS=1 ./build/bench/bench_fig11_success \
    --out-dir "$tmp" > /dev/null
env -u DDP_FULL -u DDP_SEED DDP_TRIALS=1 ./build/bench/bench_attack_rate \
    --out-dir "$tmp" > /dev/null
./build/examples/ddpsim peers=300 agents=20 minutes=8 seed=7 \
    trace="$tmp/ddpsim_short.jsonl" csv="$tmp/ddpsim_short.csv" > /dev/null

mkdir -p tests/golden
(cd "$tmp" && sha256sum fig5_capacity.csv fig11_success.csv \
    attack_rate.csv ddpsim_short.csv ddpsim_short.jsonl) \
    > tests/golden/sha256sums.txt
echo "wrote tests/golden/sha256sums.txt:"
cat tests/golden/sha256sums.txt
