#!/usr/bin/env sh
# Configure, build and run the test suite under ASan + UBSan.
#
#   scripts/sanitize.sh             # full suite
#   scripts/sanitize.sh net_fuzz    # only tests matching the regex
#
# Uses the asan-ubsan preset from CMakePresets.json (build-asan/). Any
# sanitizer report is fatal (-fno-sanitize-recover=all), so a green run
# means no leaks, overflows or UB were observed on the exercised paths.
set -eu

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc 2>/dev/null || echo 4)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

if [ "$#" -gt 0 ]; then
  ctest --preset asan-ubsan -R "$1"
else
  ctest --preset asan-ubsan
fi
