#!/usr/bin/env bash
# Multi-process localhost testbed for the real-socket deployment mode.
#
# Plans an overlay with ddptestbed, launches one ddpnode process per peer
# on 127.0.0.1, waits for the run to finish, then aggregates the per-node
# JSONL stats into a detection-latency / cut-correctness report.
#
# Usage:
#   scripts/testbed.sh [peers] [attackers] [extra ddptestbed-plan args...]
#
# Examples:
#   scripts/testbed.sh                 # 100 peers, 3 attackers (default)
#   scripts/testbed.sh 300 5
#   scripts/testbed.sh 50 2 minute_seconds=0.25 duration_min=4
#
# Environment:
#   BUILD_DIR   build tree holding examples/ (default: repo root, in-tree)
#   OUT_DIR     run artefacts directory (default: results/testbed)
#   STRICT      1 = exit nonzero unless all attackers cut and no honest
#               peer cut (default 1)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root}"
out_dir="${OUT_DIR:-$repo_root/results/testbed}"
strict="${STRICT:-1}"

peers="${1:-100}"
attackers="${2:-3}"
shift $(( $# > 2 ? 2 : $# )) || true

ddpnode="$build_dir/examples/ddpnode"
ddptestbed="$build_dir/examples/ddptestbed"
for bin in "$ddpnode" "$ddptestbed"; do
  [[ -x "$bin" ]] || { echo "testbed.sh: missing $bin (build first)"; exit 2; }
done

mkdir -p "$out_dir"
rm -f "$out_dir"/node*.jsonl "$out_dir"/plan.txt

# A wedged node from an aborted run holds its listen port and silently
# shrinks the next overlay; clear survivors of THIS build's binary only.
pkill -f "$ddpnode" 2>/dev/null || true
sleep 0.2

# Default cadence: compressed minutes so a 6-protocol-minute run takes ~3 s
# of wall clock per minute_seconds=0.5. Callers can override via extra args.
"$ddptestbed" plan \
  "peers=$peers" "attackers=$attackers" \
  minute_seconds=0.5 duration_min=6 \
  warning=200 ct=5 q=20 attack_rate=600 attack_start=1 \
  collect_s=12 suppression_s=3 \
  "$@" out="$out_dir/plan.txt"

# Parse metadata back out of the plan (extra args may have changed it).
attack_start="$(sed -n 's/.* attack_start=\([0-9.]*\).*/\1/p' "$out_dir/plan.txt" | head -1)"
duration_min="$(sed -n 's/.* duration_min=\([0-9.]*\).*/\1/p' "$out_dir/plan.txt" | head -1)"
minute_seconds="$(sed -n 's/.* minute_seconds=\([0-9.]*\).*/\1/p' "$out_dir/plan.txt" | head -1)"

pids=()
cleanup() {
  [[ ${#pids[@]} -gt 0 ]] && kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

launched=0
while IFS= read -r line; do
  [[ "$line" == \#* || -z "$line" ]] && continue
  idx="${line#index=}"; idx="${idx%% *}"
  # shellcheck disable=SC2086  # the plan line IS the argument vector
  "$ddpnode" $line stats="$out_dir/node$idx.jsonl" &
  pids+=($!)
  launched=$((launched + 1))
done < "$out_dir/plan.txt"
echo "testbed: launched $launched ddpnode processes" \
     "(duration ${duration_min} protocol minutes @ ${minute_seconds}s/min)"

# Nodes stop themselves at duration_min; the watchdog is a backstop.
watchdog=$(awk "BEGIN{print int($duration_min * $minute_seconds + 30)}")
deadline=$(( $(date +%s) + watchdog ))
for pid in "${pids[@]}"; do
  while kill -0 "$pid" 2>/dev/null; do
    if (( $(date +%s) >= deadline )); then
      echo "testbed: watchdog expired, terminating stragglers"
      cleanup
      break 2
    fi
    sleep 0.2
  done
done
pids=()

echo "testbed: run complete, aggregating $out_dir"
"$ddptestbed" report dir="$out_dir" "attack_start=${attack_start:-1}" \
  csv="$out_dir/testbed_report.csv" "strict=$strict"
