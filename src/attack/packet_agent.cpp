#include "attack/packet_agent.hpp"

#include "util/types.hpp"

namespace ddp::attack {

PacketAgent::PacketAgent(p2p::PacketNetwork& net, PeerId self,
                         double rate_per_minute)
    : net_(net), self_(self), interval_(kMinute / rate_per_minute) {
  net_.set_kind(self_, PeerKind::kBad);
  net_.engine().schedule_in(interval_, [this]() { tick(); });
}

void PacketAgent::tick() {
  if (stopped_ || !net_.graph().is_active(self_)) return;
  // Distinct query per transmission: rotate through the catalogue by
  // issue count so no two descriptors match.
  net_.issue_random_query(self_);
  ++issued_;
  net_.engine().schedule_in(interval_, [this]() { tick(); });
}

}  // namespace ddp::attack
