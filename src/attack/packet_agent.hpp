#pragma once

/// \file packet_agent.hpp
/// A message-level DDoS agent for the packet engine — the in-simulator
/// equivalent of the paper's modified LimeWire client (Sec. 2.3): it reads
/// queries (synthetic trace ranks) and issues them as fast as configured,
/// as distinct queries rotated across its neighbours.

#include <cstdint>

#include "p2p/network.hpp"
#include "sim/engine.hpp"

namespace ddp::attack {

class PacketAgent {
 public:
  /// Starts issuing immediately; `rate_per_minute` is the sourcing rate
  /// (the paper measured up to ~29,000/min for a log-replaying client).
  PacketAgent(p2p::PacketNetwork& net, PeerId self, double rate_per_minute);

  /// Stop sourcing (the scheduled event chain terminates).
  void stop() noexcept { stopped_ = true; }

  std::uint64_t issued() const noexcept { return issued_; }

 private:
  void tick();

  p2p::PacketNetwork& net_;
  PeerId self_;
  double interval_;
  bool stopped_ = false;
  std::uint64_t issued_ = 0;
};

}  // namespace ddp::attack
