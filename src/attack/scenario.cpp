#include "attack/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "snapshot/state_io.hpp"
#include "util/log.hpp"

namespace ddp::attack {

namespace {
std::string_view sv(const char* s) { return s; }
}  // namespace

std::string_view report_strategy_name(ReportStrategy s) noexcept {
  switch (s) {
    case ReportStrategy::kHonest: return sv("honest");
    case ReportStrategy::kInflate: return sv("inflate");
    case ReportStrategy::kDeflate: return sv("deflate");
    case ReportStrategy::kMute: return sv("mute");
    case ReportStrategy::kCollude: return sv("collude");
  }
  return sv("?");
}

std::optional<ReportStrategy> report_strategy_from_name(
    std::string_view name) noexcept {
  for (const auto s : {ReportStrategy::kHonest, ReportStrategy::kInflate,
                       ReportStrategy::kDeflate, ReportStrategy::kMute,
                       ReportStrategy::kCollude}) {
    if (name == report_strategy_name(s)) return s;
  }
  return std::nullopt;
}

std::string_view list_strategy_name(ListStrategy s) noexcept {
  switch (s) {
    case ListStrategy::kHonest: return sv("honest");
    case ListStrategy::kFabricate: return sv("fabricate");
    case ListStrategy::kWithhold: return sv("withhold");
  }
  return sv("?");
}

std::optional<ListStrategy> list_strategy_from_name(
    std::string_view name) noexcept {
  for (const auto s : {ListStrategy::kHonest, ListStrategy::kFabricate,
                       ListStrategy::kWithhold}) {
    if (name == list_strategy_name(s)) return s;
  }
  return std::nullopt;
}

std::string_view sourcing_strategy_name(SourcingStrategy s) noexcept {
  switch (s) {
    case SourcingStrategy::kConstant: return sv("constant");
    case SourcingStrategy::kRamp: return sv("ramp");
    case SourcingStrategy::kPulse: return sv("pulse");
    case SourcingStrategy::kProbe: return sv("probe");
  }
  return sv("?");
}

std::optional<SourcingStrategy> sourcing_strategy_from_name(
    std::string_view name) noexcept {
  for (const auto s : {SourcingStrategy::kConstant, SourcingStrategy::kRamp,
                       SourcingStrategy::kPulse, SourcingStrategy::kProbe}) {
    if (name == sourcing_strategy_name(s)) return s;
  }
  return std::nullopt;
}

double schedule_scale(const AttackConfig& config, double minutes_since_start) {
  const double t = std::max(0.0, minutes_since_start);
  switch (config.sourcing) {
    case SourcingStrategy::kConstant:
      return 1.0;
    case SourcingStrategy::kRamp: {
      if (config.ramp_minutes <= 0.0) return config.ramp_target_scale;
      return std::min(config.ramp_target_scale,
                      config.ramp_target_scale * t / config.ramp_minutes);
    }
    case SourcingStrategy::kPulse: {
      const double period = config.pulse_on_minutes + config.pulse_off_minutes;
      if (period <= 0.0) return config.pulse_scale;
      const double phase = std::fmod(t, period);
      return phase < config.pulse_on_minutes ? config.pulse_scale : 0.0;
    }
    case SourcingStrategy::kProbe:
      return config.probe_step_scale;  // initial rung of the climb
  }
  return 1.0;
}

AttackScenario::AttackScenario(flow::FlowNetwork& net, const AttackConfig& config,
                               util::Rng rng)
    : net_(net), config_(config), rng_(rng),
      is_agent_(net.graph().node_count(), 0),
      rejoin_due_(net.graph().node_count(), -1.0) {}

bool AttackScenario::is_agent(PeerId p) const noexcept {
  return p < is_agent_.size() && is_agent_[p] != 0;
}

void AttackScenario::start(double minute) {
  started_ = true;
  started_minute_ = minute;
  const auto& g = net_.graph();
  std::size_t picked = 0;
  // Bounded attempts: when the requested campaign size approaches the
  // population, rejection sampling would spin on already-picked peers.
  for (std::size_t attempts = 0;
       picked < config_.agents && attempts < 64 * (config_.agents + g.node_count());
       ++attempts) {
    const PeerId p = g.random_active_node(rng_);
    if (p == kInvalidPeer) break;
    if (is_agent_[p]) continue;
    is_agent_[p] = 1;
    agents_.push_back(p);
    net_.set_kind(p, PeerKind::kBad);
    ++picked;
  }
  util::log_info("attack: campaign started with " + std::to_string(picked) +
                 " agents");
  DDP_TRACE(tracer_, obs::EventType::kAttackStarted, net_.now(), kInvalidPeer,
            kInvalidPeer, {{"agents", static_cast<double>(picked)}});
  if (trace_agents_ && tracer_.on()) {
    // Per-agent activation for the forensics plane, ascending id so the
    // emission order is independent of the pick order.
    std::vector<PeerId> sorted(agents_);
    std::sort(sorted.begin(), sorted.end());
    const double rate = net_.config().attack_target_per_minute;
    for (const PeerId a : sorted) {
      tracer_.emit(obs::EventType::kAgentActivated, net_.now(), a,
                   kInvalidPeer, {{"rate", rate}});
    }
  }
}

void AttackScenario::on_minute(double minute) {
  if (!started_) {
    if (minute >= config_.start_minute) {
      start(minute);
      drive_sourcing(minute);
    }
    return;
  }
  drive_sourcing(minute);
  auto& g = net_.mutable_graph();
  for (PeerId a : agents_) {
    if (rejoin_due_[a] >= 0.0) {
      if (minute >= rejoin_due_[a]) {
        // Walk back in with fresh links (the defense cannot blacklist:
        // queries carry no source identity, Sec. 2.1).
        if (!g.is_active(a)) g.set_active(a, true);
        std::size_t added = 0;
        for (std::size_t tries = 0;
             tries < config_.rejoin_links * 8 && added < config_.rejoin_links;
             ++tries) {
          const PeerId t = g.random_active_node_by_degree(rng_, a);
          if (t == kInvalidPeer) break;
          if (g.add_edge(a, t)) {
            net_.on_edge_added(a, t);
            ++added;
          }
        }
        if (added > 0) {
          rejoin_due_[a] = -1.0;
          ++rejoins_;
          DDP_TRACE(tracer_, obs::EventType::kAgentRejoined, net_.now(), a,
                    kInvalidPeer, {{"links", static_cast<double>(added)}});
        }
      }
      continue;
    }
    // Isolated by the defense (or by churn of all its neighbours)?
    if (g.is_active(a) && g.degree(a) == 0) {
      if (config_.rejoin) {
        rejoin_due_[a] = minute + config_.rejoin_after_minutes;
      }
    }
  }
}

void AttackScenario::drive_sourcing(double minute) {
  // The paper's constant-rate agent never touches issue scales, keeping
  // every pre-existing scenario byte-identical.
  if (config_.sourcing == SourcingStrategy::kConstant) return;
  const auto& g = net_.graph();
  if (config_.sourcing == SourcingStrategy::kProbe) {
    if (probe_scale_.empty()) {
      // Lazily initialized at activation: every agent starts on the
      // lowest rung with its current degree as the baseline.
      probe_scale_.assign(agents_.size(), config_.probe_step_scale);
      prev_degree_.resize(agents_.size());
      for (std::size_t i = 0; i < agents_.size(); ++i) {
        prev_degree_[i] = static_cast<std::uint32_t>(g.degree(agents_[i]));
      }
    }
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      const PeerId a = agents_[i];
      const auto deg = static_cast<std::uint32_t>(g.degree(a));
      if (deg < prev_degree_[i]) {
        // Lost a link since last minute: the defense noticed. Back off
        // (but stay on the ladder — the climb resumes next minute).
        probe_scale_[i] = std::max(config_.probe_step_scale,
                                   probe_scale_[i] * config_.probe_backoff);
      } else {
        probe_scale_[i] =
            std::min(1.0, probe_scale_[i] + config_.probe_step_scale);
      }
      prev_degree_[i] = deg;
      net_.set_issue_scale(a, probe_scale_[i]);
    }
    return;
  }
  const double scale = schedule_scale(config_, minute - started_minute_);
  for (const PeerId a : agents_) net_.set_issue_scale(a, scale);
}

void AttackScenario::save(snapshot::Writer& w) const {
  w.size(agents_.size());
  for (const PeerId p : agents_) w.u32(p);
  w.size(is_agent_.size());
  for (const char c : is_agent_) w.boolean(c != 0);
  snapshot::save_f64_vector(w, rejoin_due_);
  w.boolean(started_);
  w.u64(rejoins_);
  w.f64(started_minute_);
  snapshot::save_f64_vector(w, probe_scale_);
  w.size(prev_degree_.size());
  for (const std::uint32_t d : prev_degree_) w.u32(d);
  snapshot::save_rng(w, rng_);
}

void AttackScenario::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxPeers = 1u << 24;
  agents_.resize(r.size(kMaxPeers));
  for (PeerId& p : agents_) p = r.u32();
  is_agent_.resize(r.size(kMaxPeers));
  for (char& c : is_agent_) c = r.boolean() ? 1 : 0;
  snapshot::load_f64_vector(r, rejoin_due_, kMaxPeers);
  started_ = r.boolean();
  rejoins_ = static_cast<std::size_t>(r.u64());
  started_minute_ = r.f64();
  snapshot::load_f64_vector(r, probe_scale_, kMaxPeers);
  prev_degree_.resize(r.size(kMaxPeers));
  for (std::uint32_t& d : prev_degree_) d = r.u32();
  snapshot::load_rng(r, rng_);
  if (rejoin_due_.size() != net_.graph().node_count()) {
    throw snapshot::SnapshotError("attack rejoin schedule size != node count");
  }
}

}  // namespace ddp::attack
