#include "attack/scenario.hpp"

#include <algorithm>

#include "snapshot/state_io.hpp"
#include "util/log.hpp"

namespace ddp::attack {

namespace {
std::string_view sv(const char* s) { return s; }
}  // namespace

std::string_view report_strategy_name(ReportStrategy s) noexcept {
  switch (s) {
    case ReportStrategy::kHonest: return sv("honest");
    case ReportStrategy::kInflate: return sv("inflate");
    case ReportStrategy::kDeflate: return sv("deflate");
    case ReportStrategy::kMute: return sv("mute");
  }
  return sv("?");
}

std::string_view list_strategy_name(ListStrategy s) noexcept {
  switch (s) {
    case ListStrategy::kHonest: return sv("honest");
    case ListStrategy::kFabricate: return sv("fabricate");
    case ListStrategy::kWithhold: return sv("withhold");
  }
  return sv("?");
}

AttackScenario::AttackScenario(flow::FlowNetwork& net, const AttackConfig& config,
                               util::Rng rng)
    : net_(net), config_(config), rng_(rng),
      is_agent_(net.graph().node_count(), 0),
      rejoin_due_(net.graph().node_count(), -1.0) {}

bool AttackScenario::is_agent(PeerId p) const noexcept {
  return p < is_agent_.size() && is_agent_[p] != 0;
}

void AttackScenario::start() {
  started_ = true;
  const auto& g = net_.graph();
  std::size_t picked = 0;
  // Bounded attempts: when the requested campaign size approaches the
  // population, rejection sampling would spin on already-picked peers.
  for (std::size_t attempts = 0;
       picked < config_.agents && attempts < 64 * (config_.agents + g.node_count());
       ++attempts) {
    const PeerId p = g.random_active_node(rng_);
    if (p == kInvalidPeer) break;
    if (is_agent_[p]) continue;
    is_agent_[p] = 1;
    agents_.push_back(p);
    net_.set_kind(p, PeerKind::kBad);
    ++picked;
  }
  util::log_info("attack: campaign started with " + std::to_string(picked) +
                 " agents");
  DDP_TRACE(tracer_, obs::EventType::kAttackStarted, net_.now(), kInvalidPeer,
            kInvalidPeer, {{"agents", static_cast<double>(picked)}});
  if (trace_agents_ && tracer_.on()) {
    // Per-agent activation for the forensics plane, ascending id so the
    // emission order is independent of the pick order.
    std::vector<PeerId> sorted(agents_);
    std::sort(sorted.begin(), sorted.end());
    const double rate = net_.config().attack_target_per_minute;
    for (const PeerId a : sorted) {
      tracer_.emit(obs::EventType::kAgentActivated, net_.now(), a,
                   kInvalidPeer, {{"rate", rate}});
    }
  }
}

void AttackScenario::on_minute(double minute) {
  if (!started_) {
    if (minute >= config_.start_minute) start();
    return;
  }
  auto& g = net_.mutable_graph();
  for (PeerId a : agents_) {
    if (rejoin_due_[a] >= 0.0) {
      if (minute >= rejoin_due_[a]) {
        // Walk back in with fresh links (the defense cannot blacklist:
        // queries carry no source identity, Sec. 2.1).
        if (!g.is_active(a)) g.set_active(a, true);
        std::size_t added = 0;
        for (std::size_t tries = 0;
             tries < config_.rejoin_links * 8 && added < config_.rejoin_links;
             ++tries) {
          const PeerId t = g.random_active_node_by_degree(rng_, a);
          if (t == kInvalidPeer) break;
          if (g.add_edge(a, t)) {
            net_.on_edge_added(a, t);
            ++added;
          }
        }
        if (added > 0) {
          rejoin_due_[a] = -1.0;
          ++rejoins_;
          DDP_TRACE(tracer_, obs::EventType::kAgentRejoined, net_.now(), a,
                    kInvalidPeer, {{"links", static_cast<double>(added)}});
        }
      }
      continue;
    }
    // Isolated by the defense (or by churn of all its neighbours)?
    if (g.is_active(a) && g.degree(a) == 0) {
      if (config_.rejoin) {
        rejoin_due_[a] = minute + config_.rejoin_after_minutes;
      }
    }
  }
}

void AttackScenario::save(snapshot::Writer& w) const {
  w.size(agents_.size());
  for (const PeerId p : agents_) w.u32(p);
  w.size(is_agent_.size());
  for (const char c : is_agent_) w.boolean(c != 0);
  snapshot::save_f64_vector(w, rejoin_due_);
  w.boolean(started_);
  w.u64(rejoins_);
  snapshot::save_rng(w, rng_);
}

void AttackScenario::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxPeers = 1u << 24;
  agents_.resize(r.size(kMaxPeers));
  for (PeerId& p : agents_) p = r.u32();
  is_agent_.resize(r.size(kMaxPeers));
  for (char& c : is_agent_) c = r.boolean() ? 1 : 0;
  snapshot::load_f64_vector(r, rejoin_due_, kMaxPeers);
  started_ = r.boolean();
  rejoins_ = static_cast<std::size_t>(r.u64());
  snapshot::load_rng(r, rng_);
  if (rejoin_due_.size() != net_.graph().node_count()) {
    throw snapshot::SnapshotError("attack rejoin schedule size != node count");
  }
}

}  // namespace ddp::attack
