#pragma once

/// \file scenario.hpp
/// Orchestrates a DDoS campaign against a FlowNetwork: selects k random
/// peers as compromised agents at the attack-start minute, drives their
/// sourcing behaviour, and — because "no mechanism can prevent the DDoS
/// agent from joining the system again" (Sec. 3.7.2) — rejoins agents that
/// the defense managed to isolate, after a configurable offline gap.

#include <cstdint>
#include <vector>

#include "attack/strategy.hpp"
#include "flow/network.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace ddp::attack {

struct AttackConfig {
  std::size_t agents = 100;
  double start_minute = 0.0;
  /// Offline gap before an isolated agent walks back in, minutes.
  double rejoin_after_minutes = 2.0;
  /// Links an agent establishes on rejoin.
  std::size_t rejoin_links = 3;
  /// Rejoin after isolation. The paper's evaluation measures recovery from
  /// one attack round (Sec. 3.7.2 only *notes* that agents can walk back
  /// in), so the default is off; the persistence ablation turns it on.
  bool rejoin = false;
  AgentBehavior behavior{};

  // ---- Sourcing schedule (adaptive attackers) -----------------------------
  // kConstant reproduces the paper's agent bit-for-bit (no issue-scale
  // writes at all); the other strategies drive set_issue_scale each minute.
  SourcingStrategy sourcing = SourcingStrategy::kConstant;
  /// kRamp: minutes from activation to reach ramp_target_scale.
  double ramp_minutes = 20.0;
  /// kRamp: final fraction of the configured attack rate.
  double ramp_target_scale = 1.0;
  /// kPulse: burst length / quiet gap, minutes, and the burst's scale.
  double pulse_on_minutes = 1.0;
  double pulse_off_minutes = 4.0;
  double pulse_scale = 1.0;
  /// kProbe: additive climb per quiet minute and the multiplicative
  /// backoff applied when the agent notices it lost links.
  double probe_step_scale = 0.05;
  double probe_backoff = 0.5;
};

/// The sourcing schedule as a pure function of time since activation
/// (kProbe is stateful and handled by the scenario itself; this returns
/// its initial scale). Exposed for tests: schedules must be deterministic.
double schedule_scale(const AttackConfig& config, double minutes_since_start);

class AttackScenario {
 public:
  AttackScenario(flow::FlowNetwork& net, const AttackConfig& config,
                 util::Rng rng);

  /// Minute hook: starts the campaign when due and manages rejoin.
  void on_minute(double minute);

  const std::vector<PeerId>& agents() const noexcept { return agents_; }
  bool is_agent(PeerId p) const noexcept;
  bool started() const noexcept { return started_; }
  const AttackConfig& config() const noexcept { return config_; }

  /// Number of rejoin events so far.
  std::size_t rejoins() const noexcept { return rejoins_; }

  /// Attach a trace sink (null detaches). Emits attack_started at campaign
  /// launch and agent_rejoined whenever an isolated agent walks back in.
  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.bind(sink); }
  const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// Additionally emit one agent_activated event per picked agent at
  /// campaign launch (ascending id). Off by default so the paper-default
  /// trace stays byte-identical; the forensics plane turns it on.
  void set_trace_agents(bool on) noexcept { trace_agents_ = on; }

  /// Serialize campaign state (agent set, rejoin schedule, rng) into the
  /// writer's open section.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save().
  void load(snapshot::Reader& r);

 private:
  void start(double minute);

  flow::FlowNetwork& net_;
  AttackConfig config_;
  util::Rng rng_;
  obs::Tracer tracer_;
  void drive_sourcing(double minute);

  std::vector<PeerId> agents_;
  std::vector<char> is_agent_;
  std::vector<double> rejoin_due_;  ///< per-agent pending rejoin minute (<0: none)
  bool started_ = false;
  bool trace_agents_ = false;
  std::size_t rejoins_ = 0;
  double started_minute_ = 0.0;     ///< activation minute (schedule origin)
  /// kProbe per-agent state: current scale and the degree observed last
  /// minute (a drop means the defense cut us — back off).
  std::vector<double> probe_scale_;
  std::vector<std::uint32_t> prev_degree_;
};

}  // namespace ddp::attack
