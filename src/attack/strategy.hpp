#pragma once

/// \file strategy.hpp
/// Behaviour knobs of a compromised peer, mirroring the paper's analysis:
///
///  * sourcing — a DDoS agent "generates as many queries as it is capable
///    of" (Sec. 3.5), sending *distinct* queries to different neighbours
///    (Sec. 2.1) so the flood multiplies through the overlay;
///  * reporting — when asked for Neighbor_Traffic inside someone else's
///    buddy group, the agent may answer honestly, inflate, deflate, or
///    refuse (Sec. 3.4's case analysis);
///  * neighbour lists — the agent may lie about who its neighbours are
///    (Sec. 3.1's consistency discussion).

#include <cstdint>
#include <optional>
#include <string_view>

namespace ddp::attack {

/// How a compromised peer answers Neighbor_Traffic requests (Sec. 3.4).
enum class ReportStrategy : std::uint8_t {
  kHonest,   ///< report true counters
  kInflate,  ///< Case 1: report more than it really sent
  kDeflate,  ///< Case 2: report (much) less than it really sent
  kMute,     ///< third choice: never answer; peers then assume zero
  kCollude,  ///< coordinated: inflate input credit for fellow agents
             ///< (cover the flood), deflate it for honest suspects (frame)
};

std::string_view report_strategy_name(ReportStrategy s) noexcept;
std::optional<ReportStrategy> report_strategy_from_name(
    std::string_view name) noexcept;

/// Whether the agent advertises fabricated neighbour lists.
enum class ListStrategy : std::uint8_t {
  kHonest,      ///< advertise the true neighbour set
  kFabricate,   ///< include peers that are not neighbours
  kWithhold,    ///< omit some true neighbours
};

std::string_view list_strategy_name(ListStrategy s) noexcept;
std::optional<ListStrategy> list_strategy_from_name(
    std::string_view name) noexcept;

/// How an agent shapes its query flood over time. The paper's agent is
/// kConstant ("as many queries as it is capable of", Sec. 3.5); the other
/// schedules are the adaptive attackers the learned-band defense exists
/// for — each keeps the per-link rate under the static 500 q/min warning
/// threshold so the paper's DD-POLICE never even flags it.
enum class SourcingStrategy : std::uint8_t {
  kConstant,  ///< full configured rate from activation (the paper)
  kRamp,      ///< low-and-slow: rate grows linearly to a sub-warning target
  kPulse,     ///< on-off bursts below the warning threshold
  kProbe,     ///< climbs until it loses links, then backs off (CT probing)
};

std::string_view sourcing_strategy_name(SourcingStrategy s) noexcept;
std::optional<SourcingStrategy> sourcing_strategy_from_name(
    std::string_view name) noexcept;

struct AgentBehavior {
  ReportStrategy report = ReportStrategy::kHonest;
  ListStrategy list = ListStrategy::kHonest;
  /// Multiplier applied to true counters when inflating / deflating.
  double inflate_factor = 10.0;
  double deflate_factor = 0.02;
};

}  // namespace ddp::attack
