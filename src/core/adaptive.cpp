#include "core/adaptive.hpp"

#include <algorithm>
#include <limits>

#include "snapshot/state_io.hpp"

namespace ddp::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

AdaptiveThresholds::AdaptiveThresholds(OverlayPort& port,
                                       const DdPoliceConfig& police)
    : port_(port),
      police_(police),
      links_(port.graph().edge_index()),
      next_estimate_minute_(police.adaptive.estimate_period_minutes) {}

double AdaptiveThresholds::rail1(const Band& b) const noexcept {
  if (!b.mature) return kInf;
  return std::max(police_.adaptive.k1 * b.max, police_.adaptive.band_floor);
}

double AdaptiveThresholds::rail2(const Band& b) const noexcept {
  if (!b.mature) return kInf;
  // r2/r1 = k2/k1 by construction, so validation's k1 < k2 keeps the
  // malicious rail strictly above the suspicion rail.
  return (police_.adaptive.k2 / police_.adaptive.k1) * rail1(b);
}

const AdaptiveThresholds::LinkState* AdaptiveThresholds::link(
    PeerId from, PeerId to) const {
  const auto& g = port_.graph();
  if (from >= g.node_count() || to >= g.node_count()) return nullptr;
  const std::uint32_t slot = g.edge_slot(from, to);
  if (slot == topology::EdgeIndex::kInvalidSlot) return nullptr;
  return links_.find(slot);
}

AdaptiveThresholds::Band AdaptiveThresholds::band(PeerId from, PeerId to) const {
  const LinkState* s = link(from, to);
  return s != nullptr ? s->band : Band{};
}

double AdaptiveThresholds::suspicion_rail(PeerId from, PeerId to) const {
  const LinkState* s = link(from, to);
  return s != nullptr ? rail1(s->band) : kInf;
}

double AdaptiveThresholds::malicious_rail(PeerId from, PeerId to) const {
  const LinkState* s = link(from, to);
  return s != nullptr ? rail2(s->band) : kInf;
}

bool AdaptiveThresholds::suspicious(PeerId p) const noexcept {
  const SuspectState* s = suspects_.find(p);
  return s != nullptr && s->suspicious;
}

double AdaptiveThresholds::warning_threshold(PeerId judge, PeerId suspect) const {
  const LinkState* s = link(suspect, judge);
  if (s == nullptr || !s->band.mature) return police_.warning_threshold;
  return std::min(police_.warning_threshold, rail1(s->band));
}

double AdaptiveThresholds::cut_threshold(PeerId judge, PeerId suspect) const {
  const LinkState* s = link(suspect, judge);
  if (s == nullptr || !s->band.mature) return police_.cut_threshold;
  const double rate = port_.sent_last_minute(suspect, judge);
  if (rate > rail2(s->band)) {
    // Never looser than the paper's CT, however the knob is set.
    return std::min(police_.adaptive.malicious_ct, police_.cut_threshold);
  }
  return police_.cut_threshold;
}

void AdaptiveThresholds::feed_samples() {
  const auto& g = port_.graph();
  const std::size_t window = police_.adaptive.window_minutes;
  links_.sync();
  for (PeerId p = 0; p < g.node_count(); ++p) {
    if (!g.is_active(p)) continue;
    const auto neighbors = g.neighbors(p);
    const auto slots = g.out_slots(p);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const double sample = port_.sent_last_minute(p, neighbors[i]);
      LinkState& s = links_.touch(slots[i]);
      if (s.ring.empty()) s.ring.resize(window, 0.0);
      // Poison guard: a mature band refuses samples above its malicious
      // rail, so an attacker cannot drag its own normal upward by
      // attacking. Samples between r1 and r2 still enter — legitimate
      // load drift keeps adapting the band.
      if (s.band.mature && sample > rail2(s.band)) continue;
      s.ring[s.head] = sample;
      s.head = static_cast<std::uint32_t>((s.head + 1) % s.ring.size());
      if (s.count < s.ring.size()) ++s.count;
    }
  }
}

void AdaptiveThresholds::reestimate(double minute) {
  if (minute + 1e-9 < next_estimate_minute_) return;
  next_estimate_minute_ = minute + police_.adaptive.estimate_period_minutes;
  std::size_t updated = 0;
  std::size_t mature = 0;
  links_.for_each([&](topology::EdgeIndex::Slot, LinkState& s) {
    if (s.count < police_.adaptive.min_samples) return;
    double lo = kInf;
    double hi = 0.0;
    double sum = 0.0;
    for (std::uint32_t i = 0; i < s.count; ++i) {
      const double v = s.ring[i];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    s.band.min = lo;
    s.band.max = hi;
    s.band.lambda = sum / static_cast<double>(s.count);
    s.band.mature = true;
    ++updated;
  });
  links_.for_each([&](topology::EdgeIndex::Slot, LinkState& s) {
    if (s.band.mature) ++mature;
  });
  if (updated > 0) {
    ++reestimates_;
    DDP_TRACE(tracer_, obs::EventType::kBandReestimated, minute * kMinute,
              kInvalidPeer, kInvalidPeer,
              {{"links", static_cast<double>(updated)},
               {"mature", static_cast<double>(mature)}});
  }
}

void AdaptiveThresholds::step_suspicion(double minute) {
  const auto& g = port_.graph();
  for (PeerId p = 0; p < g.node_count(); ++p) {
    SuspectState& st = suspects_[p];
    if (!g.is_active(p)) {
      // A departed peer's suspicion dissolves; no budget to restore (the
      // engine resets budgets on rejoin).
      if (st.suspicious) {
        st.suspicious = false;
        --suspicious_now_;
      }
      st.in_band_minutes = 0.0;
      continue;
    }
    const auto neighbors = g.neighbors(p);
    const auto slots = g.out_slots(p);
    bool over = false;
    double worst_ratio = 0.0;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const LinkState* s = links_.find(slots[i]);
      if (s == nullptr || !s->band.mature) continue;
      const double rate = port_.sent_last_minute(p, neighbors[i]);
      const double r1 = rail1(s->band);
      if (rate > r1) {
        over = true;
        worst_ratio = std::max(worst_ratio, rate / r1);
      }
    }
    if (over) {
      st.in_band_minutes = 0.0;
      if (!st.suspicious) {
        st.suspicious = true;
        st.entered_minute = minute;
        ++suspicious_now_;
        ++entries_;
        // Soft rung of the ladder: reduce the budget unless the ledger
        // already owns it (probation/quarantine budgets must not be
        // overwritten by local suspicion).
        if (ledger_ == nullptr || !ledger_->restricted(p)) {
          port_.set_query_budget(p, police_.adaptive.suspicious_budget);
        }
        DDP_TRACE(tracer_, obs::EventType::kSuspicionEntered,
                  minute * kMinute, p, kInvalidPeer,
                  {{"ratio", worst_ratio}});
      }
    } else if (st.suspicious) {
      st.in_band_minutes += 1.0;
      if (st.in_band_minutes + 1e-9 >= police_.adaptive.suspicion_exit_minutes) {
        st.suspicious = false;
        st.in_band_minutes = 0.0;
        --suspicious_now_;
        ++exits_;
        if (ledger_ == nullptr || !ledger_->restricted(p)) {
          port_.set_query_budget(p, 1.0);
        }
        DDP_TRACE(tracer_, obs::EventType::kSuspicionExited, minute * kMinute,
                  p, kInvalidPeer,
                  {{"minutes", minute - st.entered_minute}});
      }
    }
  }
}

void AdaptiveThresholds::on_minute(double minute) {
  feed_samples();
  reestimate(minute);
  step_suspicion(minute);
}

void AdaptiveThresholds::save(snapshot::Writer& w) const {
  // Link states, in slot order (deterministic by construction).
  std::size_t entries = 0;
  links_.for_each([&](topology::EdgeIndex::Slot, const LinkState&) {
    ++entries;
  });
  w.size(entries);
  links_.for_each([&](topology::EdgeIndex::Slot slot, const LinkState& s) {
    w.u32(slot);
    w.size(s.ring.size());
    for (const double v : s.ring) w.f64(v);
    w.u32(s.head);
    w.u32(s.count);
    w.f64(s.band.min);
    w.f64(s.band.lambda);
    w.f64(s.band.max);
    w.boolean(s.band.mature);
  });

  w.size(suspects_.extent());
  suspects_.for_each([&w](PeerId, const SuspectState& st) {
    w.boolean(st.suspicious);
    w.f64(st.entered_minute);
    w.f64(st.in_band_minutes);
  });

  w.f64(next_estimate_minute_);
  w.u64(static_cast<std::uint64_t>(suspicious_now_));
  w.u64(reestimates_);
  w.u64(entries_);
  w.u64(exits_);
}

void AdaptiveThresholds::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxSlots = 1u << 26;
  links_.clear();
  links_.sync();
  const std::size_t entries = r.size(kMaxSlots);
  for (std::size_t i = 0; i < entries; ++i) {
    const std::uint32_t slot = r.u32();
    // The edge index was restored before us, so slots and generations
    // match the ones this state was saved under.
    LinkState& s = links_.touch(slot);
    s.ring.resize(r.size(1u << 16));
    for (double& v : s.ring) v = r.f64();
    s.head = r.u32();
    s.count = r.u32();
    s.band.min = r.f64();
    s.band.lambda = r.f64();
    s.band.max = r.f64();
    s.band.mature = r.boolean();
  }

  suspects_.clear();
  const std::size_t peers = r.size(1u << 24);
  for (PeerId p = 0; p < peers; ++p) {
    SuspectState& st = suspects_[p];
    st.suspicious = r.boolean();
    st.entered_minute = r.f64();
    st.in_band_minutes = r.f64();
  }

  next_estimate_minute_ = r.f64();
  suspicious_now_ = static_cast<std::size_t>(r.u64());
  reestimates_ = r.u64();
  entries_ = r.u64();
  exits_ = r.u64();
}

}  // namespace ddp::core
