#pragma once

/// \file adaptive.hpp
/// Learned per-link cut bands for DD-POLICE (the adaptive-CT extension).
///
/// The paper's defense judges every link against two global constants: the
/// 500 q/min warning threshold and CT = 5. A sub-warning attacker (ramping
/// slowly, or pulsing under the threshold) never triggers a buddy round at
/// all, and no deployment can hand-tune the constants per network. This
/// policy instead has every monitor learn what *normal* looks like on each
/// of its incoming links — a {min, lambda, max} band over a sliding window
/// of per-minute Out_query samples — and derives two rails from the band:
///
///   r1 = max(k1 * band.max, band_floor)    suspicion rail
///   r2 = (k2 / k1) * r1                    malicious rail   (k1 < k2)
///
/// Crossing r1 makes the sender locally suspicious: its query budget is
/// reduced to suspicious_budget until it stays in-band again for
/// suspicion_exit_minutes (the quarantine ladder's soft rung). Crossing r1
/// also arms the normal DD-POLICE warning path — warning_threshold() for a
/// mature link is min(static_warning, r1) — so the buddy round the paper
/// would only run at 500 q/min now runs at the learned rail. Crossing r2
/// additionally tightens the CT that round judges against (malicious_ct,
/// clamped to never exceed the static CT), which is what finally cuts a
/// low-and-slow attacker whose g sits between 1 and 5.
///
/// False-cut safety under flash crowds comes from the indicators, not the
/// rails: a surging honest peer trips r1/r2 too, but forwarding cancels in
/// g, so the buddy round it triggers acquits it — the only cost is the
/// temporary budget reduction. Band learning is poison-resistant: samples
/// above r2 on a mature band are excluded from the window, so an attacker
/// cannot ramp its own band upward faster than the suspicion machinery
/// reacts.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/ddpolice.hpp"
#include "core/overlay_port.hpp"
#include "core/quarantine.hpp"
#include "obs/trace.hpp"
#include "topology/edge_index.hpp"
#include "util/types.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::core {

class AdaptiveThresholds final : public ThresholdPolicy {
 public:
  /// A learned normal band for one directed link (sender -> monitor).
  struct Band {
    double min = 0.0;
    double lambda = 0.0;  ///< mean rate over the window
    double max = 0.0;
    bool mature = false;  ///< enough samples to trust (>= min_samples)
  };

  AdaptiveThresholds(OverlayPort& port, const DdPoliceConfig& police);

  /// The ledger guards budget writes: a quarantined/probationary peer's
  /// budget belongs to the ladder, not to local suspicion.
  void set_ledger(const QuarantineLedger* ledger) noexcept {
    ledger_ = ledger;
  }

  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.bind(sink); }

  /// Feed this minute's per-link samples, re-estimate bands on schedule,
  /// and step the per-peer suspicion state machine. Call once per minute,
  /// before the detection phase consults the rails.
  void on_minute(double minute);

  // -- ThresholdPolicy ------------------------------------------------------
  /// min(static warning, r1) on a mature suspect->judge band; the static
  /// warning threshold while the band is still immature.
  double warning_threshold(PeerId judge, PeerId suspect) const override;
  /// malicious_ct (clamped to the static CT) when the suspect's current
  /// rate into the judge exceeds r2; the static CT otherwise.
  double cut_threshold(PeerId judge, PeerId suspect) const override;

  // -- Introspection (tests, metrics, the ablation) -------------------------
  /// The learned band on the directed link from -> to (default-constructed,
  /// immature, when the link is unknown).
  Band band(PeerId from, PeerId to) const;
  /// r1 for from -> to, or +infinity while the band is immature.
  double suspicion_rail(PeerId from, PeerId to) const;
  /// r2 for from -> to, or +infinity while the band is immature.
  double malicious_rail(PeerId from, PeerId to) const;
  bool suspicious(PeerId p) const noexcept;
  std::size_t currently_suspicious() const noexcept { return suspicious_now_; }

  std::uint64_t band_reestimates() const noexcept { return reestimates_; }
  std::uint64_t suspicion_entries() const noexcept { return entries_; }
  std::uint64_t suspicion_exits() const noexcept { return exits_; }

  /// Serialize sample windows, bands, suspicion states and counters into
  /// the writer's open section. The graph/edge-index must be restored
  /// before load() (slots and generations are snapshot-stable).
  void save(snapshot::Writer& w) const;
  void load(snapshot::Reader& r);

 private:
  /// Per-directed-link learning state: a ring of the last window_minutes
  /// per-minute samples plus the band estimated from them.
  struct LinkState {
    std::vector<double> ring;   ///< sized to window_minutes on first touch
    std::uint32_t head = 0;     ///< next write position
    std::uint32_t count = 0;    ///< samples held (saturates at ring size)
    Band band{};
  };

  /// Per-peer suspicion state (the ladder's soft rung).
  struct SuspectState {
    bool suspicious = false;
    double entered_minute = 0.0;
    double in_band_minutes = 0.0;  ///< consecutive minutes back in band
  };

  const LinkState* link(PeerId from, PeerId to) const;
  double rail1(const Band& b) const noexcept;
  double rail2(const Band& b) const noexcept;
  void feed_samples();
  void reestimate(double minute);
  void step_suspicion(double minute);

  OverlayPort& port_;
  const DdPoliceConfig police_;  ///< adaptive knobs + the static fallbacks
  const QuarantineLedger* ledger_ = nullptr;
  obs::Tracer tracer_;

  topology::EdgeMap<LinkState> links_;
  topology::PeerMap<SuspectState> suspects_;
  double next_estimate_minute_ = 0.0;
  std::size_t suspicious_now_ = 0;
  std::uint64_t reestimates_ = 0;
  std::uint64_t entries_ = 0;
  std::uint64_t exits_ = 0;
};

}  // namespace ddp::core
