#include "core/config.hpp"

#include <cmath>

namespace ddp::core {

namespace {

bool finite_positive(double v) noexcept { return std::isfinite(v) && v > 0.0; }

bool fraction(double v) noexcept {
  return std::isfinite(v) && v >= 0.0 && v <= 1.0;
}

}  // namespace

std::string validate(const DdPoliceConfig& cfg) {
  if (!finite_positive(cfg.cut_threshold)) {
    return "ddpolice.cut_threshold must be a finite value > 0";
  }
  if (!finite_positive(cfg.warning_threshold)) {
    return "ddpolice.warning_threshold must be a finite value > 0";
  }
  if (!finite_positive(cfg.good_issue_bound)) {
    return "ddpolice.good_issue_bound must be a finite value > 0";
  }
  if (std::isnan(cfg.capacity_bound_per_minute) ||
      cfg.capacity_bound_per_minute <= 0.0) {
    // +infinity is a documented setting (the paper's literal definitions).
    return "ddpolice.capacity_bound_per_minute must be > 0 (or +inf)";
  }
  if (cfg.exchange_policy == ExchangePolicy::kPeriodic &&
      !finite_positive(cfg.exchange_period_minutes)) {
    // Event-driven exchange ignores the period (0 is conventional there).
    return "ddpolice.exchange_period_minutes must be a finite value > 0";
  }
  if (cfg.exchange_policy == ExchangePolicy::kEventDriven &&
      (std::isnan(cfg.exchange_period_minutes) ||
       cfg.exchange_period_minutes < 0.0)) {
    return "ddpolice.exchange_period_minutes must be >= 0";
  }
  if (cfg.buddy_radius < 1 || cfg.buddy_radius > 2) {
    return "ddpolice.buddy_radius must be 1 or 2";
  }
  if (!std::isfinite(cfg.suppression_window_seconds) ||
      cfg.suppression_window_seconds < 0.0) {
    return "ddpolice.suppression_window_seconds must be finite and >= 0";
  }
  if (!finite_positive(cfg.collect_timeout_seconds)) {
    return "ddpolice.collect_timeout_seconds must be a finite value > 0";
  }
  if (std::isnan(cfg.ping_period_minutes) || cfg.ping_period_minutes < 0.0) {
    return "ddpolice.ping_period_minutes must be >= 0";
  }
  if (cfg.max_report_retries < 0 || cfg.max_exchange_retries < 0) {
    return "ddpolice retry counts must be >= 0";
  }
  if (cfg.cut_confirmations < 1) {
    return "ddpolice.cut_confirmations must be >= 1";
  }
  if (!std::isfinite(cfg.retry_backoff_base_seconds) ||
      cfg.retry_backoff_base_seconds < 0.0) {
    return "ddpolice.retry_backoff_base_seconds must be finite and >= 0";
  }
  if (!finite_positive(cfg.quarantine_minutes)) {
    return "ddpolice.quarantine_minutes must be a finite value > 0";
  }
  if (!std::isfinite(cfg.quarantine_growth) || cfg.quarantine_growth < 1.0) {
    return "ddpolice.quarantine_growth must be finite and >= 1";
  }
  if (!finite_positive(cfg.probation_minutes)) {
    return "ddpolice.probation_minutes must be a finite value > 0";
  }
  if (!fraction(cfg.probation_budget)) {
    return "ddpolice.probation_budget must be within [0, 1]";
  }
  if (cfg.probation_links < 1) {
    return "ddpolice.probation_links must be >= 1";
  }
  if (cfg.max_strikes < 1) {
    return "ddpolice.max_strikes must be >= 1";
  }
  if (cfg.adaptive.enabled) {
    const AdaptiveConfig& a = cfg.adaptive;
    if (a.window_minutes == 0) {
      return "ddpolice.adaptive.window_minutes must be >= 1";
    }
    if (a.min_samples == 0 || a.min_samples > a.window_minutes) {
      return "ddpolice.adaptive.min_samples must be in [1, window_minutes]";
    }
    if (!finite_positive(a.estimate_period_minutes)) {
      return "ddpolice.adaptive.estimate_period_minutes must be a finite "
             "value > 0";
    }
    if (!finite_positive(a.k1)) {
      return "ddpolice.adaptive.k1 must be a finite value > 0";
    }
    if (!std::isfinite(a.k2) || a.k1 >= a.k2) {
      return "ddpolice.adaptive.k1 must be < k2 (the suspicion rail must "
             "sit below the cut rail)";
    }
    if (!std::isfinite(a.band_floor) || a.band_floor < 0.0) {
      return "ddpolice.adaptive.band_floor must be finite and >= 0";
    }
    if (!fraction(a.suspicious_budget)) {
      return "ddpolice.adaptive.suspicious_budget must be within [0, 1]";
    }
    if (!finite_positive(a.suspicion_exit_minutes)) {
      return "ddpolice.adaptive.suspicion_exit_minutes must be a finite "
             "value > 0";
    }
    if (!finite_positive(a.malicious_ct)) {
      return "ddpolice.adaptive.malicious_ct must be a finite value > 0";
    }
  }
  return {};
}

}  // namespace ddp::core
