#pragma once

/// \file config.hpp
/// DD-POLICE protocol parameters (Sec. 3). Defaults are the paper's
/// recommended operating point: neighbour lists exchanged every 2 minutes,
/// warning threshold 500 queries/min, cut threshold CT = 5.

#include <cstddef>
#include <string>

#include "util/types.hpp"

namespace ddp::core {

enum class ExchangePolicy : std::uint8_t {
  kPeriodic,     ///< fixed-frequency neighbour-list exchange (the paper's pick)
  kEventDriven,  ///< advertise on every join/leave (higher overhead, Sec. 3.7.1)
};

/// What a cut decision does to the suspect (Sec. 3.3 vs. the self-healing
/// extension). The paper's verdict is terminal; the quarantine ladder makes
/// it recoverable because Fig. 13 shows detection errors are nonzero.
enum class CutPolicy : std::uint8_t {
  kPermanent,   ///< the paper's behaviour: disconnected links stay down
  kQuarantine,  ///< quarantine -> probation -> reinstate/ban state machine
};

/// Adaptive cut bands (the "learned CT" extension). Instead of one global
/// warning threshold and one global CT, each monitor learns a per-link
/// {min, lambda, max} band of normal per-minute rates from its own history
/// window and derives two rails from it:
///
///   r1 = max(k1 * band.max, band_floor)   — suspicion rail
///   r2 = (k2 / k1) * r1                   — malicious rail
///
/// A neighbour above r1 enters local suspicion (its query budget is cut to
/// suspicious_budget until it stays inside the band again); a neighbour
/// above r2 additionally faces a tightened cut threshold (malicious_ct) in
/// the very buddy round the static defense would have run at CT. The
/// default (enabled = false) leaves DD-POLICE byte-identical to the paper.
struct AdaptiveConfig {
  /// Master switch. Off = paper-exact static thresholds.
  bool enabled = false;

  /// History window (minutes of per-link samples) a band is estimated from.
  std::size_t window_minutes = 10;

  /// How often bands are re-estimated, minutes.
  double estimate_period_minutes = 2.0;

  /// A band is only trusted ("mature") once it has at least this many
  /// samples; immature links fall back to the static thresholds.
  std::size_t min_samples = 4;

  /// Suspicion rail multiplier: rates above k1 * band.max are suspicious.
  double k1 = 2.0;

  /// Cut rail multiplier: rates above (k2/k1) * r1 are treated as
  /// malicious (CT tightened to malicious_ct). Must be > k1.
  double k2 = 4.0;

  /// Lower clamp on the suspicion rail, queries/minute, so quiet links
  /// don't turn a handful of queries into an alarm.
  double band_floor = 50.0;

  /// Query-budget fraction applied to a locally suspicious peer.
  double suspicious_budget = 0.5;

  /// In-band minutes required before a suspicious peer's budget is
  /// restored.
  double suspicion_exit_minutes = 3.0;

  /// The tightened CT used in buddy rounds against a neighbour whose rate
  /// exceeded the malicious rail. Clamped to the static CT (never looser).
  double malicious_ct = 2.0;
};

struct DdPoliceConfig {
  /// CT — disconnect when g(j,t) or s(j,t,i) exceeds this (Sec. 3.7.2;
  /// the paper settles on 5 after the Figure 12-14 study).
  double cut_threshold = 5.0;

  /// Per-link warning threshold, queries/minute: a neighbour sending more
  /// marks itself suspicious and triggers a buddy-group round (Sec. 3.3
  /// uses 500).
  double warning_threshold = 500.0;

  /// q — the good-peer issue bound in the indicator denominators
  /// (Definition 2.1; the paper argues 100 queries/min).
  double good_issue_bound = 100.0;

  /// Known per-peer query-servicing capacity (the Sec. 2.3 calibration:
  /// ~10,000/min). The indicators credit a suspect with at most this much
  /// forwardable input — output beyond it cannot be explained by relaying.
  /// Set to +infinity to compute the paper's literal Definitions 2.1/2.2.
  double capacity_bound_per_minute = 10000.0;

  /// Neighbour-list exchange policy and period (Sec. 3.1 / 3.7.1).
  ExchangePolicy exchange_policy = ExchangePolicy::kPeriodic;
  double exchange_period_minutes = 2.0;

  /// Verify advertised lists with the named peers and disconnect liars
  /// (Sec. 3.1's consistency check).
  bool verify_neighbor_lists = true;

  /// Buddy-group radius r (Sec. 3.5). r = 1 consults the suspect's direct
  /// neighbours; r = 2 additionally cross-checks member reports against
  /// flow-balance estimates derived from *their* neighbourhoods, which
  /// defeats colluding deflaters.
  int buddy_radius = 1;

  /// Neighbor_Traffic suppression window, seconds: a member answers at
  /// most one round per suspect within this window (Sec. 3.3 uses 5 s; at
  /// the engine's minute cadence this caps rounds at one per minute).
  double suppression_window_seconds = 5.0;

  /// How long a judge waits for BG replies before treating silent members
  /// as having sent zero queries (Sec. 3.4's timeout rule).
  double collect_timeout_seconds = 5.0;

  /// Periodic keep-alive pings among BG members (overhead accounting).
  double ping_period_minutes = 1.0;

  /// Consecutive tripping rounds (Definition 2.3 over CT) required before
  /// a cut verdict fires. 1 is the paper's behaviour: the first bad round
  /// cuts. Deployment nodes (LocalPolice) use 2: on a real host a judge
  /// that was descheduled for seconds drains its socket backlog into one
  /// rolling-window bucket, which inflates every neighbour's apparent
  /// output for exactly one round — a persistence requirement absorbs the
  /// spike while a flooder, which trips every round, merely waits one
  /// more round for its verdict. Trips older than two protocol minutes,
  /// or closer together than half a minute (a starved judge's catch-up
  /// rounds), don't chain. The simulation judge ignores this field.
  int cut_confirmations = 1;

  // ---- Control-plane robustness under unreliable transport (src/fault) ----
  // These only matter when a fault::FaultPlane with non-zero probabilities
  // is attached; on a perfect transport the hardened request loop is
  // bypassed entirely.

  /// Re-sends of a Neighbor_Traffic request after the first attempt fails
  /// (drop, corrupt reply, late reply, unresponsive member). Only after the
  /// last retry does Sec. 3.4's count-as-zero rule apply.
  int max_report_retries = 2;

  /// Re-sends of an unacknowledged Neighbor_List advertisement. Exhausted
  /// retries leave the receiver with its stale snapshot.
  int max_exchange_retries = 2;

  /// Exponential backoff between retries: retry k waits
  /// retry_backoff_base_seconds * 2^(k-1) seconds before re-sending.
  double retry_backoff_base_seconds = 2.0;

  // ---- Self-healing cut ladder (quarantine -> probation -> reinstate/ban) --
  // Only consulted when cut_policy == CutPolicy::kQuarantine; the default
  // reproduces the paper's terminal disconnect bit-for-bit.

  /// Terminal cut (paper) or the recoverable quarantine ladder.
  CutPolicy cut_policy = CutPolicy::kPermanent;

  /// Base quarantine window after the first offense, minutes. Repeat
  /// offenders wait quarantine_minutes * quarantine_growth^strikes.
  double quarantine_minutes = 10.0;

  /// Exponential growth factor applied per prior strike.
  double quarantine_growth = 2.0;

  /// Length of the probation window after release, minutes. The peer is
  /// reconnected with probation_links edges and re-scored by its new buddy
  /// group; surviving the window reinstates it at full budget.
  double probation_minutes = 5.0;

  /// Fraction of the peer's normal query budget allowed while on probation.
  double probation_budget = 0.25;

  /// Number of overlay links granted on probational reconnection.
  int probation_links = 2;

  /// Strikes (cut decisions) after which the peer is banned outright.
  int max_strikes = 3;

  // ---- Adaptive cut bands (learned per-link thresholds) -------------------
  // Only consulted when adaptive.enabled; the default keeps the static
  // paper thresholds bit-for-bit.
  AdaptiveConfig adaptive{};
};

/// Range-checks a DdPoliceConfig. Returns an empty string when every field
/// is usable, otherwise a human-readable description of the first problem.
std::string validate(const DdPoliceConfig& cfg);

}  // namespace ddp::core
