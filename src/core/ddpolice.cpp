#include "core/ddpolice.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "core/adaptive.hpp"
#include "net/message.hpp"
#include "snapshot/state_io.hpp"
#include "util/log.hpp"
#include "util/spans.hpp"

namespace ddp::core {

namespace {

/// The wire format carries per-minute counters as u32 (Table 1); quantize
/// the engine's double-valued truth the way a real servent would.
std::uint32_t quantize_counter(double v) noexcept {
  if (!(v > 0.0)) return 0;
  constexpr double kMax = static_cast<double>(std::numeric_limits<std::uint32_t>::max());
  return v >= kMax ? std::numeric_limits<std::uint32_t>::max()
                   : static_cast<std::uint32_t>(std::llround(v));
}

}  // namespace

DdPolice::DdPolice(OverlayPort& port, const DdPoliceConfig& config, util::Rng rng)
    : port_(port), config_(config), rng_(rng) {
  if (config_.cut_policy == CutPolicy::kQuarantine) {
    // A dedicated fork: ledger reconnection draws never perturb the
    // protocol's own stream (fork is const, so the stagger draws below
    // are bit-identical whether or not the ledger exists).
    ledger_.emplace(port_, config_, rng_.fork("quarantine"));
  }
  if (config_.adaptive.enabled) {
    adaptive_ = std::make_unique<AdaptiveThresholds>(port_, config_);
    if (ledger_) adaptive_->set_ledger(&*ledger_);
    policy_ = adaptive_.get();
  }
  const std::size_t n = port_.graph().node_count();
  next_exchange_minute_.resize(n);
  last_advertised_.resize(n);
  // Stagger first advertisements uniformly inside one period so the whole
  // overlay does not synchronize (Sec. 3.1's overhead concern).
  for (std::size_t p = 0; p < n; ++p) {
    next_exchange_minute_[p] =
        rng_.uniform() * std::max(config_.exchange_period_minutes, 1e-6);
  }
}

DdPolice::~DdPolice() = default;

void DdPolice::set_trace_sink(obs::TraceSink* sink) noexcept {
  tracer_.bind(sink);
  if (ledger_) ledger_->set_trace_sink(sink);
  if (adaptive_) adaptive_->set_trace_sink(sink);
}

const fault::ControlCounters& DdPolice::control_stats() const noexcept {
  static const fault::ControlCounters kZero{};
  return fault_ != nullptr ? fault_->control() : kZero;
}

const DdPolice::Snapshot* DdPolice::find_snapshot(PeerId holder,
                                                  PeerId about) const noexcept {
  const std::vector<Snapshot>* held = snapshots_.find(holder);
  if (held == nullptr) return nullptr;
  for (const Snapshot& s : *held) {
    if (s.about == about) return &s;
  }
  return nullptr;
}

DdPolice::Snapshot& DdPolice::snapshot_for(PeerId holder, PeerId about) {
  std::vector<Snapshot>& held = snapshots_[holder];
  for (Snapshot& s : held) {
    if (s.about == about) return s;
  }
  ++snapshot_count_;
  held.emplace_back();
  held.back().about = about;
  return held.back();
}

std::vector<PeerId> DdPolice::snapshot_of(PeerId holder, PeerId about) const {
  const Snapshot* s = find_snapshot(holder, about);
  return s == nullptr ? std::vector<PeerId>{} : s->members;
}

void DdPolice::on_minute(double minute) {
  // Ledger sweep first: releases/probations/re-isolations settle against
  // the post-churn topology before this minute's exchanges and rounds,
  // so a probationer's fresh edges are advertised in the same minute.
  if (ledger_) ledger_->on_minute(minute);
  // Adaptive bands feed on the completed minute's counters before the
  // detection phase consults the rails derived from them.
  if (adaptive_) adaptive_->on_minute(minute);
  exchange_phase(minute);
  detection_phase(minute);
}

void DdPolice::exchange_phase(double minute) {
  const auto& g = port_.graph();

  // Connection handshake: when a link is established, both endpoints
  // advertise their updated neighbour lists to all of their neighbours
  // (Sec. 3.1: "a joining peer creates its BG membership after its first
  // neighbor list exchanging operation"; joins/new connections are pushed
  // like the event-driven policy). Departures, by contrast, propagate only
  // with the periodic refresh — that residual staleness is what the
  // exchange-frequency study of Sec. 3.7.1 measures.
  std::vector<PeerId> fresh;
  for (PeerId p = 0; p < g.node_count(); ++p) {
    if (!g.is_active(p)) continue;
    for (PeerId n : g.neighbors(p)) {
      if (find_snapshot(n, p) == nullptr) {
        fresh.push_back(p);
        break;
      }
    }
  }
  for (PeerId p : fresh) advertise(p, minute);

  for (PeerId p = 0; p < g.node_count(); ++p) {
    if (!g.is_active(p) || g.degree(p) == 0) continue;
    if (config_.exchange_policy == ExchangePolicy::kPeriodic) {
      if (minute + 1e-9 >= next_exchange_minute_[p]) {
        advertise(p, minute);
        next_exchange_minute_[p] = minute + config_.exchange_period_minutes;
      }
    } else {
      // Event-driven: advertise whenever the membership changed since the
      // last advertisement (joins/leaves both trigger, Sec. 3.1).
      std::vector<PeerId> current(g.neighbors(p).begin(), g.neighbors(p).end());
      std::sort(current.begin(), current.end());
      if (current != last_advertised_[p]) advertise(p, minute);
    }
  }

  // Keep-alive pings among buddy-group members (Sec. 3.1): one ping per
  // held buddy-group snapshot per ping period. (Real servents piggyback
  // these on the Gnutella keep-alive Pings they exchange anyway.)
  if (config_.ping_period_minutes > 0.0) {
    const double per_minute =
        static_cast<double>(snapshot_count_) / config_.ping_period_minutes;
    traffic_messages_ += static_cast<std::uint64_t>(per_minute);
    port_.report_overhead(per_minute);
  }
}

std::vector<PeerId> DdPolice::advertised_list(PeerId p) const {
  const auto& g = port_.graph();
  std::vector<PeerId> truth(g.neighbors(p).begin(), g.neighbors(p).end());
  std::sort(truth.begin(), truth.end());
  return list_policy_ ? list_policy_(p, truth) : truth;
}

bool DdPolice::deliver_list_over_faulty_transport(
    PeerId sender, std::vector<PeerId>& advertised) {
  auto& ch = fault_->channel();
  auto& ctr = fault_->control();
  // A crashed or stalled sender advertises nothing at all.
  if (!fault_->peers().is_responsive(sender)) return false;
  const int attempts = 1 + std::max(0, config_.max_exchange_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++ctr.retries;
      ctr.backoff_seconds_total += config_.retry_backoff_base_seconds *
                                   static_cast<double>(1 << (attempt - 1));
    }
    ++exchange_messages_;
    port_.report_overhead(1.0);
    const fault::Transfer t = ch.transfer();
    if (!t.delivered) continue;  // no ack will come; retry after backoff
    // The advertisement crosses the wire as a real Neighbor_List message;
    // the receiver decodes (and validates) what actually arrived.
    net::Message m;
    m.header.type = net::PayloadType::kNeighborList;
    net::NeighborList nl;
    nl.entries.reserve(advertised.size());
    for (PeerId id : advertised) nl.entries.push_back({id, 6346});
    m.payload = std::move(nl);
    std::vector<std::uint8_t> bytes = net::encode(m);
    if (t.corrupted) ch.corrupt(bytes);
    const auto decoded = net::decode(bytes);
    if (!decoded || decoded->type() != net::PayloadType::kNeighborList) {
      ++ctr.corrupt_rejects;  // receiver discards garbage, sends no ack
      continue;
    }
    std::vector<PeerId> received;
    bool valid = true;
    for (const auto& e : std::get<net::NeighborList>(decoded->payload).entries) {
      if (e.ip >= port_.graph().node_count()) {
        valid = false;  // structured reject: entry names a nonexistent peer
        break;
      }
      received.push_back(static_cast<PeerId>(e.ip));
    }
    if (!valid) {
      ++ctr.corrupt_rejects;
      continue;
    }
    // Ack leg: a lost ack only causes a redundant (idempotent) re-send, so
    // first successful delivery wins. Entries whose bit flips survived
    // validation arrive silently altered — exactly the hazard the
    // consistency check downstream has to absorb.
    advertised = std::move(received);
    return true;
  }
  ++ctr.timeouts;  // receiver keeps its stale snapshot
  return false;
}

void DdPolice::advertise_to(PeerId p, PeerId receiver, double minute) {
  const auto& g = port_.graph();
  std::vector<PeerId> advertised = advertised_list(p);
  if (transport_faulty()) {
    if (!deliver_list_over_faulty_transport(p, advertised)) return;
  } else {
    ++exchange_messages_;
    port_.report_overhead(1.0);
  }
  Snapshot& snap = snapshot_for(receiver, p);
  snap.prev_members = std::move(snap.members);
  snap.members = advertised;
  snap.minute = minute;
  DDP_TRACE(tracer_, obs::EventType::kNeighborListSent, minute * kMinute, p,
            receiver, {{"entries", static_cast<double>(advertised.size())}});

  if (!config_.verify_neighbor_lists) return;
  // Consistency check (Sec. 3.1). Fabricated entries: the receiver
  // confirms each claimed pair with the named peer — but only entries
  // that are new relative to the previous advertisement (already-verified
  // pairs need no re-confirmation). Withheld entries: the receiver knows
  // it is p's neighbour, so its own absence from the advertised list is
  // immediately visible at no message cost.
  bool violated = false;
  double verified = 0.0;
  for (PeerId claimed : advertised) {
    const bool already_known =
        std::find(snap.prev_members.begin(), snap.prev_members.end(),
                  claimed) != snap.prev_members.end();
    if (!already_known) verified += 1.0;
    if (claimed != p && !g.has_edge(p, claimed)) {
      violated = true;
      break;
    }
  }
  if (!violated && std::find(advertised.begin(), advertised.end(), receiver) ==
                       advertised.end()) {
    violated = true;
  }
  exchange_messages_ += static_cast<std::uint64_t>(verified);
  port_.report_overhead(verified);
  if (violated) {
    Decision d;
    d.minute = minute;
    d.judge = receiver;
    d.suspect = p;
    d.list_violation = true;
    decisions_.push_back(d);
    DDP_TRACE(tracer_, obs::EventType::kListViolation, minute * kMinute, p,
              receiver);
    port_.disconnect(receiver, p);
  }
}

void DdPolice::advertise(PeerId p, double minute) {
  const auto& g = port_.graph();
  // Copy: the consistency check may disconnect while we iterate.
  const std::vector<PeerId> receivers(g.neighbors(p).begin(),
                                      g.neighbors(p).end());
  std::vector<PeerId> truth = receivers;
  std::sort(truth.begin(), truth.end());
  last_advertised_[p] = truth;
  for (PeerId n : receivers) advertise_to(p, n, minute);
}

void DdPolice::detection_phase(double minute) {
  const auto& g = port_.graph();
  // Group suspicious neighbours by suspect: if several members of a buddy
  // group raise suspicion in the same minute they share one round (the
  // Neighbor_Traffic suppression window of Sec. 3.3).
  // Rounds run in first-flag order (judges scan in PeerId order), so the
  // per-minute round sequence is canonical rather than hash-layout-driven.
  // Scratch buffers persist across minutes: the per-suspect judge vectors
  // keep their capacity, so steady-state detection allocates nothing.
  flagged_.clear();
  const std::size_t n = g.node_count();
  if (sweep_pool_ != nullptr && sweep_pool_->size() > 1 && n >= 256) {
    // Sharded sweep: each worker scans a contiguous judge span and logs
    // every over-threshold observation; the replay below walks the logs
    // in span order, which is judge PeerId order — exactly the inline
    // loop's sequence, so counters, first-flag round order and trace
    // emission are bit-identical at any worker count. The scan only does
    // const reads (counters, thresholds, topology); see set_sweep_pool.
    const auto spans = util::make_spans(n, sweep_pool_->size());
    if (flag_scratch_.size() < spans.size()) flag_scratch_.resize(spans.size());
    for (std::size_t k = 0; k < spans.size(); ++k) {
      sweep_pool_->submit([this, &g, span = spans[k], &log = flag_scratch_[k]] {
        log.clear();
        for (PeerId i = span.begin; i < span.end; ++i) {
          if (!g.is_active(i)) continue;
          for (PeerId j : g.neighbors(i)) {
            const double out = port_.sent_last_minute(j, i);
            const double warn = policy_ != nullptr
                                    ? policy_->warning_threshold(i, j)
                                    : config_.warning_threshold;
            if (out > warn) log.push_back({i, j, out});
          }
        }
      });
    }
    sweep_pool_->wait_idle();
    for (std::size_t k = 0; k < spans.size(); ++k) {
      for (const FlagHit& hit : flag_scratch_[k]) {
        ++suspicions_;
        auto& judges = judges_scratch_[hit.suspect];
        if (judges.empty()) flagged_.push_back(hit.suspect);
        judges.push_back(hit.judge);
        DDP_TRACE(tracer_, obs::EventType::kSuspectFlagged, minute * kMinute,
                  hit.suspect, hit.judge, {{"out", hit.out}});
      }
    }
  } else {
    for (PeerId i = 0; i < n; ++i) {
      if (!g.is_active(i)) continue;
      for (PeerId j : g.neighbors(i)) {
        const double out = port_.sent_last_minute(j, i);
        const double warn = policy_ != nullptr
                                ? policy_->warning_threshold(i, j)
                                : config_.warning_threshold;
        if (out > warn) {
          ++suspicions_;
          auto& judges = judges_scratch_[j];
          if (judges.empty()) flagged_.push_back(j);
          judges.push_back(i);
          DDP_TRACE(tracer_, obs::EventType::kSuspectFlagged, minute * kMinute,
                    j, i, {{"out", out}});
        }
      }
    }
  }
  // All rounds of this minute evaluate against the same completed-minute
  // counters and the intact topology; the resulting disconnects apply
  // afterwards (the Neighbor_Traffic exchanges of every round fit inside
  // the same suppression window). This also makes the outcome independent
  // of round processing order.
  pending_disconnects_.clear();
  for (PeerId suspect : flagged_) {
    run_round(suspect, judges_scratch_[suspect], minute);
  }
  for (PeerId suspect : flagged_) judges_scratch_[suspect].clear();
  for (const auto& [judge, suspect] : pending_disconnects_) {
    port_.disconnect(judge, suspect);
  }
  if (ledger_ && !pending_disconnects_.empty()) {
    // One ledger verdict per suspect per minute, however many judges
    // concurred; sorted so strike order is hash-map independent.
    std::vector<PeerId> suspects;
    suspects.reserve(pending_disconnects_.size());
    for (const auto& [judge, suspect] : pending_disconnects_) {
      (void)judge;
      suspects.push_back(suspect);
    }
    std::sort(suspects.begin(), suspects.end());
    suspects.erase(std::unique(suspects.begin(), suspects.end()),
                   suspects.end());
    for (PeerId s : suspects) ledger_->on_cut(s, minute);
  }
}

std::vector<PeerId> DdPolice::believed_group(PeerId judge, PeerId suspect) const {
  // Union of the current and previous advertised lists: a feeder that
  // disappeared from the suspect's latest advertisement still carried
  // traffic during the counted minute, so the judge keeps consulting it
  // for one more generation (its monitors remember that minute too).
  std::vector<PeerId> group;
  if (const Snapshot* snap = find_snapshot(judge, suspect)) {
    group = snap->members;
    for (PeerId m : snap->prev_members) {
      if (std::find(group.begin(), group.end(), m) == group.end()) {
        group.push_back(m);
      }
    }
  }
  if (std::find(group.begin(), group.end(), judge) == group.end()) {
    // The judge always knows its own membership, snapshot or not.
    group.push_back(judge);
  }
  return group;
}

MemberReport DdPolice::collect_report(PeerId member, PeerId suspect,
                                      double minute) {
  const auto& g = port_.graph();
  MemberReport r;
  r.member = member;
  const bool reachable = member < g.node_count() && g.is_active(member);
  std::optional<TrafficTruth> answer;
  if (reachable) {
    TrafficTruth truth;
    truth.out_to_suspect = port_.sent_last_minute(member, suspect);
    truth.in_from_suspect = port_.sent_last_minute(suspect, member);
    answer = report_policy_ ? report_policy_(member, suspect, truth)
                            : std::optional<TrafficTruth>(truth);
  }
  if (transport_faulty()) {
    // The judge cannot tell a dead member from a mute one or a lossy link:
    // every silent request runs the full timeout/retry loop.
    return collect_over_faulty_transport(member, suspect, answer, minute);
  }
  DDP_TRACE(tracer_, obs::EventType::kTrafficRequest, minute * kMinute,
            member, suspect);
  if (!reachable || !answer) {
    r.responded = false;  // timeout: counters stay zero (Sec. 3.4)
    DDP_TRACE(tracer_, obs::EventType::kTrafficTimeout, minute * kMinute,
              member, suspect);
    return r;
  }
  r.out_to_suspect = answer->out_to_suspect;
  r.in_from_suspect = answer->in_from_suspect;
  DDP_TRACE(tracer_, obs::EventType::kTrafficReply, minute * kMinute, member,
            suspect,
            {{"out", r.out_to_suspect}, {"in", r.in_from_suspect}});
  return r;
}

MemberReport DdPolice::collect_over_faulty_transport(
    PeerId member, PeerId suspect, const std::optional<TrafficTruth>& answer,
    double minute) {
  auto& ch = fault_->channel();
  auto& ctr = fault_->control();
  MemberReport r;
  r.member = member;
  r.responded = false;
  DDP_TRACE(tracer_, obs::EventType::kTrafficRequest, minute * kMinute,
            member, suspect);
  const int attempts = 1 + std::max(0, config_.max_report_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++ctr.retries;
      ctr.backoff_seconds_total += config_.retry_backoff_base_seconds *
                                   static_cast<double>(1 << (attempt - 1));
      ++traffic_messages_;  // the re-sent request
      port_.report_overhead(1.0);
      DDP_TRACE(tracer_, obs::EventType::kTrafficRetry, minute * kMinute,
                member, suspect, {{"attempt", static_cast<double>(attempt)}});
    }
    // Request leg.
    const fault::Transfer req = ch.transfer();
    if (!req.delivered) continue;
    // The member must be up, awake and willing (ReportPolicy) to answer.
    if (!answer || !fault_->peers().is_responsive(member)) continue;
    // Response leg: the reply crosses the wire as a real Neighbor_Traffic
    // message (Table 1) and is decoded from whatever bytes arrive.
    const fault::Transfer resp = ch.transfer();
    if (!resp.delivered) continue;
    net::Message m;
    m.header.type = net::PayloadType::kNeighborTraffic;
    net::NeighborTraffic nt;
    nt.source_ip = member;
    nt.suspect_ip = suspect;
    nt.timestamp = static_cast<std::uint32_t>(minute * kMinute);
    nt.outgoing_queries = quantize_counter(answer->out_to_suspect);
    nt.incoming_queries = quantize_counter(answer->in_from_suspect);
    m.payload = nt;
    std::vector<std::uint8_t> bytes = net::encode(m);
    if (resp.corrupted) ch.corrupt(bytes);
    const auto decoded = net::decode(bytes);
    if (!decoded || decoded->type() != net::PayloadType::kNeighborTraffic) {
      ++ctr.corrupt_rejects;
      DDP_TRACE(tracer_, obs::EventType::kCorruptReject, minute * kMinute,
                member, suspect);
      continue;
    }
    const auto& got = std::get<net::NeighborTraffic>(decoded->payload);
    if (got.source_ip != member || got.suspect_ip != suspect) {
      // Structured validation: identity fields altered in flight.
      ++ctr.corrupt_rejects;
      DDP_TRACE(tracer_, obs::EventType::kCorruptReject, minute * kMinute,
                member, suspect);
      continue;
    }
    // Round trip: request + reply latency, the latter scaled by the
    // member's processing speed (slow peers answer late).
    const double rtt =
        req.delay + resp.delay * fault_->peers().latency_factor(member);
    if (rtt > config_.collect_timeout_seconds) {
      ++ctr.late_replies;
      DDP_TRACE(tracer_, obs::EventType::kLateReply, minute * kMinute, member,
                suspect, {{"rtt", rtt}});
      continue;
    }
    r.out_to_suspect = got.outgoing_queries;
    r.in_from_suspect = got.incoming_queries;
    r.responded = true;
    DDP_TRACE(tracer_, obs::EventType::kTrafficReply, minute * kMinute,
              member, suspect,
              {{"out", r.out_to_suspect}, {"in", r.in_from_suspect}});
    return r;
  }
  ++ctr.timeouts;  // retries exhausted: count-as-zero (Sec. 3.4)
  DDP_TRACE(tracer_, obs::EventType::kTrafficTimeout, minute * kMinute,
            member, suspect);
  return r;
}

void DdPolice::run_round(PeerId suspect, const std::vector<PeerId>& judges,
                         double minute) {
  ++rounds_;
  const auto& g = port_.graph();

  // Message accounting: the union of believed members exchange
  // Neighbor_Traffic once each (suppression collapses duplicates).
  std::unordered_set<PeerId> union_members;
  for (PeerId i : judges) {
    for (PeerId m : believed_group(i, suspect)) union_members.insert(m);
  }
  const double u = static_cast<double>(union_members.size());
  const double msgs = u > 1.0 ? u * (u - 1.0) : 0.0;
  traffic_messages_ += static_cast<std::uint64_t>(msgs);
  port_.report_overhead(msgs);

  for (PeerId judge : judges) {
    if (!g.is_active(judge) || !g.has_edge(judge, suspect)) continue;

    const std::vector<PeerId> group = believed_group(judge, suspect);
    std::vector<MemberReport> reports;
    reports.reserve(group.size());
    for (PeerId m : group) {
      MemberReport r = m == judge
                           ? MemberReport{judge,
                                          port_.sent_last_minute(judge, suspect),
                                          port_.sent_last_minute(suspect, judge),
                                          true}
                           : collect_report(m, suspect, minute);
      reports.push_back(r);
    }

    if (config_.buddy_radius >= 2) {
      // DD-POLICE-r with r = 2: cross-check each member's claimed input
      // into the suspect against what that member observably sends its
      // *other* neighbours (the judge asks them — the members' buddy
      // groups, two hops from the suspect). Gnutella forwarding and the
      // paper's attack model are both per-link uniform, so a member whose
      // other links carry X queries/min cannot plausibly have sent the
      // suspect a tiny fraction of X. A colluding deflater (Sec. 3.4,
      // Case 2) is therefore overridden by its own traffic.
      for (auto& r : reports) {
        if (r.member == judge || r.member >= g.node_count()) continue;
        // No has_edge requirement: the member may have been disconnected
        // moments ago in this same detection pass; its monitors (and our
        // ghost counters) still cover the counted minute.
        if (!g.is_active(r.member)) continue;
        double max_other_link = 0.0;
        std::size_t asked = 0;
        for (PeerId x : g.neighbors(r.member)) {
          if (x == suspect) continue;
          max_other_link =
              std::max(max_other_link, port_.sent_last_minute(r.member, x));
          ++asked;
        }
        if (asked == 0) continue;
        const double overhead = static_cast<double>(asked);
        traffic_messages_ += static_cast<std::uint64_t>(overhead);
        port_.report_overhead(overhead);
        // 0.9: slack for per-link bandwidth differences.
        r.out_to_suspect = std::max(r.out_to_suspect, 0.9 * max_other_link);
      }
    }

    const double gval = general_indicator(reports, config_.good_issue_bound,
                                          config_.capacity_bound_per_minute);
    const double sval = single_indicator(reports, judge,
                                         config_.good_issue_bound,
                                         config_.capacity_bound_per_minute);
    // A buddy group needs buddies: a judge with no other believed member
    // has nobody to corroborate with, so the protocol cannot conclude
    // (the suspect may simply be forwarding for peers unknown to us).
    if (reports.size() < 2) continue;
    if (tracer_.on()) {
      double responders = 0.0;
      for (const auto& r : reports) {
        if (r.responded) responders += 1.0;
      }
      tracer_.emit(obs::EventType::kIndicatorComputed, minute * kMinute,
                   suspect, judge,
                   {{"g", gval},
                    {"s", sval},
                    {"k", static_cast<double>(reports.size())},
                    {"responders", responders}});
    }
    const double ct = policy_ != nullptr
                          ? policy_->cut_threshold(judge, suspect)
                          : config_.cut_threshold;
    if (is_bad(gval, sval, ct)) {
      Decision d;
      d.minute = minute;
      d.judge = judge;
      d.suspect = suspect;
      d.g = gval;
      d.s = sval;
      d.via_single = !(gval > ct);
      d.believed_k = static_cast<std::uint32_t>(reports.size());
      for (const auto& r : reports) {
        if (r.responded) ++d.responders;
      }
      d.true_degree = static_cast<std::uint32_t>(g.degree(suspect));
      decisions_.push_back(d);
      pending_disconnects_.emplace_back(judge, suspect);
      DDP_TRACE(tracer_, obs::EventType::kSuspectCut, minute * kMinute,
                suspect, judge,
                {{"g", gval},
                 {"s", sval},
                 {"via_single", d.via_single ? 1.0 : 0.0}});
    }
  }
}

namespace {

void save_peer_vector(snapshot::Writer& w, const std::vector<PeerId>& v) {
  w.size(v.size());
  for (const PeerId p : v) w.u32(p);
}

void load_peer_vector(snapshot::Reader& r, std::vector<PeerId>& v) {
  v.resize(r.size(1u << 24));
  for (PeerId& p : v) p = r.u32();
}

}  // namespace

void save_decision(snapshot::Writer& w, const Decision& d) {
  w.f64(d.minute);
  w.u32(d.judge);
  w.u32(d.suspect);
  w.f64(d.g);
  w.f64(d.s);
  w.boolean(d.via_single);
  w.boolean(d.list_violation);
  w.u32(d.believed_k);
  w.u32(d.responders);
  w.u32(d.true_degree);
}

void load_decision(snapshot::Reader& r, Decision& d) {
  d.minute = r.f64();
  d.judge = r.u32();
  d.suspect = r.u32();
  d.g = r.f64();
  d.s = r.f64();
  d.via_single = r.boolean();
  d.list_violation = r.boolean();
  d.believed_k = r.u32();
  d.responders = r.u32();
  d.true_degree = r.u32();
}

void DdPolice::save(snapshot::Writer& w) const {
  w.size(snapshots_.extent());
  snapshots_.for_each([&w](PeerId, const std::vector<Snapshot>& held) {
    w.size(held.size());
    for (const Snapshot& s : held) {
      w.u32(s.about);
      save_peer_vector(w, s.members);
      save_peer_vector(w, s.prev_members);
      w.f64(s.minute);
    }
  });
  w.u64(snapshot_count_);
  snapshot::save_f64_vector(w, next_exchange_minute_);
  w.size(last_advertised_.size());
  for (const std::vector<PeerId>& adv : last_advertised_) save_peer_vector(w, adv);

  w.size(decisions_.size());
  for (const Decision& d : decisions_) save_decision(w, d);
  w.u64(exchange_messages_);
  w.u64(traffic_messages_);
  w.u64(rounds_);
  w.u64(suspicions_);

  w.boolean(ledger_.has_value());
  if (ledger_) ledger_->save(w);
  snapshot::save_rng(w, rng_);
}

void DdPolice::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxPeers = 1u << 24;
  const std::size_t extent = r.size(kMaxPeers);
  snapshots_.clear();
  snapshot_count_ = 0;
  for (PeerId holder = 0; holder < extent; ++holder) {
    std::vector<Snapshot>& held = snapshots_[holder];
    held.resize(r.size(kMaxPeers));
    for (Snapshot& s : held) {
      s.about = r.u32();
      load_peer_vector(r, s.members);
      load_peer_vector(r, s.prev_members);
      s.minute = r.f64();
    }
  }
  snapshot_count_ = r.u64();
  snapshot::load_f64_vector(r, next_exchange_minute_, kMaxPeers);
  last_advertised_.resize(r.size(kMaxPeers));
  for (std::vector<PeerId>& adv : last_advertised_) load_peer_vector(r, adv);

  decisions_.resize(r.size(1u << 26));
  for (Decision& d : decisions_) load_decision(r, d);
  exchange_messages_ = r.u64();
  traffic_messages_ = r.u64();
  rounds_ = r.u64();
  suspicions_ = r.u64();

  const bool had_ledger = r.boolean();
  if (had_ledger != ledger_.has_value()) {
    throw snapshot::SnapshotError(
        "snapshot cut policy (quarantine ledger presence) disagrees with config");
  }
  if (ledger_) ledger_->load(r);
  snapshot::load_rng(r, rng_);
}

}  // namespace ddp::core
