#pragma once

/// \file ddpolice.hpp
/// The DD-POLICE protocol (Sec. 3): every peer polices its direct
/// neighbours' query behaviour by cooperating with each neighbour's buddy
/// group. Three phases run at the engine's minute cadence:
///
///   1. neighbour-list exchange (Sec. 3.1) — periodic or event-driven;
///      received lists are snapshots that age until the next exchange, so
///      buddy groups can be stale (the source of misjudgment studied in
///      Sec. 3.7.1). Advertised lists are optionally verified with the
///      named peers; inconsistencies disconnect the liar.
///   2. neighbour query-traffic monitoring (Sec. 3.2) — per-link
///      per-minute Out_query/In_query counters, provided by the engine.
///   3. bad-peer recognition (Sec. 3.3) — a neighbour exceeding the
///      warning threshold triggers a buddy-group round: members exchange
///      Neighbor_Traffic messages (suppressed to one per suspect per
///      window), silent members count as zero (Sec. 3.4's timeout rule),
///      indicators g / s are computed and any member observing
///      g > CT or s > CT disconnects the suspect.
///
/// Compromised peers can cheat in this protocol; their reporting/list
/// behaviour is injected through ReportPolicy / ListPolicy so the
/// experiment harness can reproduce Sec. 3.4's case analysis.

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/indicators.hpp"
#include "core/overlay_port.hpp"
#include "core/quarantine.hpp"
#include "fault/plane.hpp"
#include "obs/trace.hpp"
#include "topology/edge_index.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::core {

/// Truthful counters handed to a report policy.
struct TrafficTruth {
  double out_to_suspect = 0.0;
  double in_from_suspect = 0.0;
};

/// What `reporter` answers inside the buddy group of `suspect`;
/// std::nullopt models refusal / mute (treated as zeros after timeout).
using ReportPolicy = std::function<std::optional<TrafficTruth>(
    PeerId reporter, PeerId suspect, const TrafficTruth& truth)>;

/// What `owner` advertises as its neighbour list (the truth is passed in;
/// liars fabricate or withhold entries).
using ListPolicy =
    std::function<std::vector<PeerId>(PeerId owner, std::vector<PeerId> truth)>;

/// Per-decision threshold source. DD-POLICE consults the installed policy
/// for both the per-link warning threshold (what makes a neighbour
/// suspicious at the monitor) and the per-pair cut threshold CT (what a
/// buddy round judges the indicators against). A null policy reproduces
/// the paper's static constants bit-for-bit; AdaptiveThresholds
/// (core/adaptive.hpp) learns both from per-link history bands.
class ThresholdPolicy {
 public:
  virtual ~ThresholdPolicy() = default;

  /// Queries/minute above which `judge` flags its neighbour `suspect`.
  virtual double warning_threshold(PeerId judge, PeerId suspect) const = 0;

  /// The CT `judge` applies to the indicators of `suspect` this round.
  virtual double cut_threshold(PeerId judge, PeerId suspect) const = 0;
};

class AdaptiveThresholds;

/// One disconnect decision, for the metrics pipeline.
struct Decision {
  double minute = 0.0;
  PeerId judge = kInvalidPeer;
  PeerId suspect = kInvalidPeer;
  double g = 0.0;
  double s = 0.0;
  bool via_single = false;     ///< s (rather than g) crossed the threshold
  bool list_violation = false; ///< disconnected by the consistency check
  std::uint32_t believed_k = 0;   ///< buddy-group size the judge used
  std::uint32_t responders = 0;   ///< members that answered the round
  std::uint32_t true_degree = 0;  ///< suspect's actual degree at decision time
};

/// Checkpoint io for Decision, shared by every defense that records them.
void save_decision(snapshot::Writer& w, const Decision& d);
void load_decision(snapshot::Reader& r, Decision& d);

class DdPolice {
 public:
  DdPolice(OverlayPort& port, const DdPoliceConfig& config, util::Rng rng);
  ~DdPolice();  // out-of-line: AdaptiveThresholds is incomplete here

  /// Install cheating behaviours (defaults are honest).
  void set_report_policy(ReportPolicy policy) { report_policy_ = std::move(policy); }
  void set_list_policy(ListPolicy policy) { list_policy_ = std::move(policy); }

  /// Override the threshold source (null restores the static constants).
  /// Constructing with config.adaptive.enabled installs the built-in
  /// AdaptiveThresholds automatically; this seam exists for tests and
  /// future policies.
  void set_threshold_policy(ThresholdPolicy* policy) noexcept {
    policy_ = policy;
  }

  /// The built-in adaptive policy, or null when adaptive.enabled is off.
  AdaptiveThresholds* adaptive() noexcept { return adaptive_.get(); }
  const AdaptiveThresholds* adaptive() const noexcept { return adaptive_.get(); }

  /// Attach a fault plane: control messages then traverse its
  /// UnreliableChannel as real encoded wire bytes (lost, delayed,
  /// duplicated or corrupted per its config), peers it reports crashed or
  /// stalled stop answering, and each request runs the per-request
  /// timeout + bounded-retry + exponential-backoff loop before falling
  /// back to Sec. 3.4's count-as-zero rule. Null (the default) or a plane
  /// with all probabilities zero keeps the exact fault-free code path, so
  /// decisions stay bit-identical to an unfaulted run.
  void set_fault_plane(fault::FaultPlane* plane) noexcept { fault_ = plane; }

  /// Timeout/retry/corrupt-reject counters (zeros without a fault plane).
  const fault::ControlCounters& control_stats() const noexcept;

  /// Shard the per-minute flag scan (phase 2's monitor sweep) across the
  /// pool's workers. Requires the port's sent_last_minute() to be safe for
  /// concurrent const reads — true of the flow engine's cold counter array,
  /// NOT of the packet engine's advance-on-read sliding windows, so only
  /// flow-backed runs should attach a pool. The merge replays per-span hits
  /// in span (= PeerId) order, so flags, traces, counters and round order
  /// are bit-identical at any worker count. Null (the default) keeps the
  /// inline serial scan.
  void set_sweep_pool(util::ThreadPool* pool) noexcept { sweep_pool_ = pool; }

  /// Attach a trace sink (null detaches). Emits the control-plane
  /// vocabulary: neighbor_list / list_violation on exchanges,
  /// suspect_flagged / indicator / suspect_cut during detection, and
  /// traffic_request/reply/retry/timeout plus corrupt_reject / late_reply
  /// for each Neighbor_Traffic collection. Out-of-line because the sink is
  /// also forwarded to the (incomplete-here) adaptive policy.
  void set_trace_sink(obs::TraceSink* sink) noexcept;
  const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// The quarantine ledger, or null under CutPolicy::kPermanent.
  const QuarantineLedger* ledger() const noexcept {
    return ledger_ ? &*ledger_ : nullptr;
  }
  QuarantineLedger* ledger() noexcept { return ledger_ ? &*ledger_ : nullptr; }

  /// Run one protocol step; call at every completed simulated minute.
  void on_minute(double minute);

  const std::vector<Decision>& decisions() const noexcept { return decisions_; }

  /// Counters for the overhead/behaviour analyses.
  std::uint64_t exchange_messages() const noexcept { return exchange_messages_; }
  std::uint64_t traffic_messages() const noexcept { return traffic_messages_; }
  std::uint64_t rounds_run() const noexcept { return rounds_; }
  std::uint64_t suspicions() const noexcept { return suspicions_; }

  /// The snapshot a peer holds about a neighbour (empty if none) —
  /// exposed for tests and the exchange-frequency study.
  std::vector<PeerId> snapshot_of(PeerId holder, PeerId about) const;

  /// Serialize durable protocol state (neighbour-list snapshots, exchange
  /// schedule, decisions, counters, ledger, rng) into the writer's open
  /// section. Per-minute scratch (flagged set, judge lists, pending
  /// disconnects) is minute-local and excluded — checkpoints are taken at
  /// minute boundaries where it is empty by construction.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save(). The ledger presence (cut policy) must
  /// match the snapshot's; throws SnapshotError otherwise.
  void load(snapshot::Reader& r);

 private:
  /// A neighbour-list snapshot `holder` keeps about `about`. Snapshots
  /// deliberately outlive the holder-about edge (a cut or churned link
  /// does not erase what the holder learned), so they are NOT slot-keyed:
  /// each holder keeps a small dense vector scanned by `about` (buddy
  /// degree ~6), replacing the global (holder,about)-keyed hash map.
  struct Snapshot {
    PeerId about = kInvalidPeer;
    std::vector<PeerId> members;
    std::vector<PeerId> prev_members;  ///< previous advertisement generation
    double minute = -1.0;
  };

  const Snapshot* find_snapshot(PeerId holder, PeerId about) const noexcept;
  Snapshot& snapshot_for(PeerId holder, PeerId about);

  void exchange_phase(double minute);
  std::vector<PeerId> advertised_list(PeerId p) const;
  void advertise_to(PeerId p, PeerId receiver, double minute);
  void advertise(PeerId p, double minute);
  void detection_phase(double minute);
  void run_round(PeerId suspect, const std::vector<PeerId>& judges,
                 double minute);
  std::vector<PeerId> believed_group(PeerId judge, PeerId suspect) const;
  MemberReport collect_report(PeerId member, PeerId suspect, double minute);
  /// True when a fault plane with non-zero fault rates is attached.
  bool transport_faulty() const noexcept {
    return fault_ != nullptr && fault_->control_active();
  }
  MemberReport collect_over_faulty_transport(
      PeerId member, PeerId suspect,
      const std::optional<TrafficTruth>& answer, double minute);
  bool deliver_list_over_faulty_transport(PeerId sender,
                                          std::vector<PeerId>& advertised);

  OverlayPort& port_;
  DdPoliceConfig config_;
  util::Rng rng_;
  obs::Tracer tracer_;
  std::optional<QuarantineLedger> ledger_;  ///< engaged under kQuarantine
  ReportPolicy report_policy_;
  ListPolicy list_policy_;
  fault::FaultPlane* fault_ = nullptr;
  std::unique_ptr<AdaptiveThresholds> adaptive_;  ///< when adaptive.enabled
  ThresholdPolicy* policy_ = nullptr;  ///< null => static paper thresholds

  topology::PeerMap<std::vector<Snapshot>> snapshots_;  ///< by holder
  std::size_t snapshot_count_ = 0;  ///< total held snapshots (ping costing)
  std::vector<std::pair<PeerId, PeerId>> pending_disconnects_;
  std::vector<double> next_exchange_minute_;
  std::vector<std::vector<PeerId>> last_advertised_;  ///< event-driven diffing
  /// Buddy-round scratch, reused across minutes: per-suspect judge lists
  /// (dense, by suspect) plus the suspects of this minute in first-flag
  /// order — the canonical round order.
  topology::PeerMap<std::vector<PeerId>> judges_scratch_;
  std::vector<PeerId> flagged_;
  /// One over-threshold observation from the sharded flag scan. Workers
  /// record hits in judge-scan order within their span; the serial replay
  /// walks spans in order, reproducing the inline loop's exact sequence.
  struct FlagHit {
    PeerId judge = kInvalidPeer;
    PeerId suspect = kInvalidPeer;
    double out = 0.0;
  };
  util::ThreadPool* sweep_pool_ = nullptr;
  std::vector<std::vector<FlagHit>> flag_scratch_;  ///< per-span hit logs

  std::vector<Decision> decisions_;
  std::uint64_t exchange_messages_ = 0;
  std::uint64_t traffic_messages_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t suspicions_ = 0;
};

}  // namespace ddp::core
