#pragma once

/// \file flow_port.hpp
/// OverlayPort adapter over the flow-level engine.

#include "core/overlay_port.hpp"
#include "flow/network.hpp"

namespace ddp::core {

class FlowPort final : public OverlayPort {
 public:
  explicit FlowPort(flow::FlowNetwork& net) : net_(net) {}

  const topology::Graph& graph() const override { return net_.graph(); }

  double sent_last_minute(PeerId from, PeerId to) const override {
    return net_.sent_last_minute(from, to);
  }

  void disconnect(PeerId a, PeerId b) override { net_.disconnect(a, b); }

  void report_overhead(double messages) override {
    net_.add_overhead_messages(messages);
  }

 private:
  flow::FlowNetwork& net_;
};

}  // namespace ddp::core
