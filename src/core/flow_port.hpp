#pragma once

/// \file flow_port.hpp
/// OverlayPort adapter over the flow-level engine.

#include "core/overlay_port.hpp"
#include "flow/network.hpp"

namespace ddp::core {

class FlowPort final : public OverlayPort {
 public:
  explicit FlowPort(flow::FlowNetwork& net) : net_(net) {}

  const topology::Graph& graph() const override { return net_.graph(); }

  double sent_last_minute(PeerId from, PeerId to) const override {
    return net_.sent_last_minute(from, to);
  }

  void disconnect(PeerId a, PeerId b) override { net_.disconnect(a, b); }

  bool connect(PeerId a, PeerId b) override {
    if (!net_.mutable_graph().add_edge(a, b)) return false;
    net_.on_edge_added(a, b);
    return true;
  }

  void set_query_budget(PeerId p, double scale) override {
    net_.set_issue_scale(p, scale);
  }

  void report_overhead(double messages) override {
    net_.add_overhead_messages(messages);
  }

 private:
  flow::FlowNetwork& net_;
};

}  // namespace ddp::core
