#include "core/indicators.hpp"

#include <algorithm>

namespace ddp::core {

double general_indicator(const std::vector<MemberReport>& reports, double q,
                         double input_credit_cap) {
  const std::size_t k = reports.size();
  if (k == 0 || q <= 0.0) return 0.0;
  double out_of_suspect = 0.0;  // sum_m Q_{j,m}
  double into_suspect = 0.0;    // sum_m Q_{m,j}
  for (const auto& r : reports) {
    out_of_suspect += r.in_from_suspect;
    into_suspect += r.out_to_suspect;
  }
  into_suspect = std::min(into_suspect, input_credit_cap);
  const double kk = static_cast<double>(k);
  return (out_of_suspect - (kk - 1.0) * into_suspect) / (kk * q);
}

double single_indicator(const std::vector<MemberReport>& reports, PeerId judge,
                        double q, double input_credit_cap) {
  if (q <= 0.0) return 0.0;
  double q_ji = 0.0;
  bool found = false;
  double others_into_suspect = 0.0;
  for (const auto& r : reports) {
    if (r.member == judge) {
      q_ji = r.in_from_suspect;
      found = true;
    } else {
      others_into_suspect += r.out_to_suspect;
    }
  }
  if (!found) return 0.0;
  others_into_suspect = std::min(others_into_suspect, input_credit_cap);
  return (q_ji - others_into_suspect) / q;
}

bool is_bad(double g, double s, double cut_threshold) {
  return g > cut_threshold || s > cut_threshold;
}

}  // namespace ddp::core
