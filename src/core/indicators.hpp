#pragma once

/// \file indicators.hpp
/// The paper's detection indicators (Definitions 2.1-2.3), as pure
/// functions over a buddy group's collected Neighbor_Traffic reports.
///
/// For suspect j with believed neighbour set {m_1..m_k} and per-minute
/// counters Q_xy (queries sent from x to y):
///
///   g(j,t)   = [ sum_m Q_{j,m} - (k-1) * sum_m Q_{m,j} ] / (k * q)
///   s(j,t,i) = [ Q_{j,i} - sum_{m != i} Q_{m,j} ] / q
///
/// Under the no-duplication forwarding assumption both equal
/// (queries issued by j per minute) / q; Definition 2.3 calls j bad when
/// either exceeds 1 (generalized to the cut threshold CT in Sec. 3.7.2).
///
/// Missing members (offline, never exchanged, or refusing to answer) are
/// included in k with zero counters — the paper's timeout rule (Sec. 3.4).

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace ddp::core {

/// One member's contribution to a buddy-group round.
struct MemberReport {
  PeerId member = kInvalidPeer;
  /// Queries the member sent to the suspect in the past minute
  /// (Out_query(suspect) at the member; Q_{m,j}).
  double out_to_suspect = 0.0;
  /// Queries the suspect sent to the member in the past minute
  /// (In_query(suspect) at the member; Q_{j,m}).
  double in_from_suspect = 0.0;
  /// False when the member timed out / refused — counters are zeros then.
  bool responded = true;
};

/// General Indicator g(j,t) over the collected reports.
/// `q` is the good-issue bound (Definition 2.1's denominator).
///
/// `input_credit_cap` bounds how much of the suspect's reported input can
/// be credited as forwardable: a good peer services at most its processing
/// capacity per minute (the Sec. 2.3 calibration, ~10,000), so input beyond
/// that cannot explain output. Pass +infinity for the paper's literal
/// Definition 2.1 (which assumes unbounded forwarding). The cap is what
/// keeps the indicator discriminative when the overlay is saturated and
/// every link runs hot.
/// Returns 0 for an empty group.
double general_indicator(const std::vector<MemberReport>& reports, double q,
                         double input_credit_cap =
                             std::numeric_limits<double>::infinity());

/// Single Indicator s(j,t,i) computed by judge `i` (which must appear in
/// `reports`; its in_from_suspect is Q_{j,i}). `input_credit_cap` as above:
/// the suspect cannot have forwarded more input onto the judge's link than
/// it was able to service.
double single_indicator(const std::vector<MemberReport>& reports, PeerId judge,
                        double q,
                        double input_credit_cap =
                            std::numeric_limits<double>::infinity());

/// Definition 2.3 / Sec. 3.7.2 decision: is j a bad peer at threshold CT?
bool is_bad(double g, double s, double cut_threshold);

}  // namespace ddp::core
