#pragma once

/// \file overlay_port.hpp
/// The seam between the DD-POLICE protocol and a simulation engine. The
/// protocol only ever needs what a real deployment would have: the local
/// topology, per-link per-minute query counters (its own monitors), the
/// ability to tear down a logical connection, and a place to account its
/// own message overhead. Both engines (flow and packet) provide this.

#include "topology/graph.hpp"
#include "util/types.hpp"

namespace ddp::core {

class OverlayPort {
 public:
  virtual ~OverlayPort() = default;

  virtual const topology::Graph& graph() const = 0;

  /// Out_query(from -> to) over the last completed minute (Sec. 3.2).
  virtual double sent_last_minute(PeerId from, PeerId to) const = 0;

  /// Tear down the logical connection between a and b.
  virtual void disconnect(PeerId a, PeerId b) = 0;

  /// Establish a logical connection between a and b (probational
  /// reconnection, partition repair). Engines that cannot add edges keep
  /// the default refusal and the caller degrades gracefully.
  virtual bool connect(PeerId a, PeerId b) {
    (void)a;
    (void)b;
    return false;
  }

  /// Scale a peer's query-issue budget (1.0 = normal, 0.25 = probation).
  /// Default no-op: engines without rate control simply ignore budgets.
  virtual void set_query_budget(PeerId p, double scale) {
    (void)p;
    (void)scale;
  }

  /// Account protocol messages into the engine's traffic metric.
  virtual void report_overhead(double messages) = 0;
};

}  // namespace ddp::core
