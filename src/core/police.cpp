#include "core/police.hpp"

#include <algorithm>

namespace ddp::core {

namespace {

/// Protocol seconds -> protocol minutes for the cadence fields.
double seconds_as_minutes(double s) noexcept { return s / 60.0; }

}  // namespace

LocalPolice::LocalPolice(std::uint32_t self, const DdPoliceConfig& config,
                         PoliceTransport& transport)
    : self_(self), config_(config), transport_(transport) {}

void LocalPolice::ban_peer(std::uint32_t peer) {
  if (!is_banned(peer)) banned_.push_back(peer);
}

void LocalPolice::add_neighbor(std::uint32_t peer) {
  if (std::find(neighbors_.begin(), neighbors_.end(), peer) ==
      neighbors_.end()) {
    neighbors_.push_back(peer);
  }
}

void LocalPolice::remove_neighbor(std::uint32_t peer) {
  std::erase(neighbors_, peer);
  std::erase_if(last_minute_,
                [peer](const LinkMinute& l) { return l.peer == peer; });
  // Abandon (not judge) any round the departed peer is the suspect of:
  // the paper's verdicts are about live links. Its snapshot survives —
  // what we learned does not evaporate with the edge.
  std::erase_if(rounds_open_,
                [peer](const Round& r) { return r.suspect == peer; });
}

void LocalPolice::on_neighbor_list(std::uint32_t from,
                                   const std::vector<std::uint32_t>& members,
                                   double now_minutes) {
  bool shrank = false;
  bool updated = false;
  for (ListSnapshot& s : snapshots_) {
    if (s.owner == from) {
      for (const std::uint32_t old : s.members) {
        if (std::find(members.begin(), members.end(), old) ==
            members.end()) {
          shrank = true;
          break;
        }
      }
      s.members = members;
      s.minute = now_minutes;
      if (shrank) s.last_shrink = now_minutes;
      updated = true;
      break;
    }
  }
  if (!updated) snapshots_.push_back({from, members, now_minutes, -1e9});
  reconcile_rounds(from, now_minutes);
}

const LocalPolice::ListSnapshot* LocalPolice::snapshot_for(
    std::uint32_t owner) const {
  for (const ListSnapshot& s : snapshots_) {
    if (s.owner == owner) return &s;
  }
  return nullptr;
}

void LocalPolice::reconcile_rounds(std::uint32_t owner, double now_minutes) {
  // A fresh advertisement changes the believed group mid-round.
  //
  // Shrunk list: the departed member (typically the flood's entry edge,
  // just cut by the suspect) will never testify, and the remaining group
  // cannot account for its traffic still inside the rolling monitor
  // windows — abandon the round rather than cut an honest forwarder on
  // evidence nobody can balance. open_round quarantines the suspect for
  // one monitor window (see ListSnapshot::last_shrink), after which the
  // windows are clean and a still-flooding suspect is judged normally.
  //
  // Grown list: joiners are asked for their report mid-round so the
  // deadline still holds them to account.
  for (std::size_t i = 0; i < rounds_open_.size();) {
    Round& r = rounds_open_[i];
    if (r.suspect != owner) {
      ++i;
      continue;
    }
    std::vector<std::uint32_t> members = believed_group(owner);
    const bool member_left = std::any_of(
        r.members.begin(), r.members.end(), [&members](std::uint32_t m) {
          return std::find(members.begin(), members.end(), m) ==
                 members.end();
        });
    const bool member_banned =
        std::any_of(members.begin(), members.end(),
                    [this](std::uint32_t m) { return is_banned(m); });
    if (member_left || member_banned) {
      rounds_open_.erase(rounds_open_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      continue;
    }
    const net::NeighborTraffic mine = own_report(owner, now_minutes);
    for (const std::uint32_t m : members) {
      if (std::find(r.members.begin(), r.members.end(), m) !=
          r.members.end()) {
        continue;
      }
      report_clock(owner, m) = now_minutes;
      transport_.send_neighbor_traffic(m, mine);
      ++traffic_sent_;
    }
    r.members = std::move(members);
    const bool complete = std::all_of(
        r.members.begin(), r.members.end(), [&r](std::uint32_t m) {
          return std::any_of(r.received.begin(), r.received.end(),
                             [m](const MemberReport& mr) {
                               return mr.member == m;
                             });
        });
    if (complete) {
      Round done = std::move(r);
      rounds_open_.erase(rounds_open_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      close_round(done, now_minutes);
      continue;
    }
    ++i;
  }
}

bool LocalPolice::has_snapshot(std::uint32_t suspect) const {
  return std::any_of(snapshots_.begin(), snapshots_.end(),
                     [suspect](const ListSnapshot& s) {
                       return s.owner == suspect;
                     });
}

std::vector<std::uint32_t> LocalPolice::believed_group(
    std::uint32_t suspect) const {
  for (const ListSnapshot& s : snapshots_) {
    if (s.owner == suspect) {
      std::vector<std::uint32_t> members = s.members;
      std::erase(members, self_);
      return members;
    }
  }
  return {};
}

LocalPolice::SuspectClock& LocalPolice::clock_for(std::uint32_t suspect) {
  for (SuspectClock& c : clocks_) {
    if (c.suspect == suspect) return c;
  }
  clocks_.push_back({suspect, -1e9});
  return clocks_.back();
}

bool LocalPolice::record_trip(std::uint32_t suspect, double now_minutes) {
  const int needed = config_.cut_confirmations < 1 ? 1 : config_.cut_confirmations;
  TripStreak* streak = nullptr;
  for (TripStreak& t : streaks_) {
    if (t.suspect == suspect) { streak = &t; break; }
  }
  if (streak == nullptr) {
    streaks_.push_back({suspect, 0, -1e9});
    streak = &streaks_.back();
  }
  const double since = now_minutes - streak->last_trip;
  if (since > 2.0) {
    // Stale streak: the suspect went quiet for two protocol minutes, so
    // the earlier trip was a transient — restart.
    streak->trips = 0;
  } else if (since < 0.5) {
    // A starved judge replays its missed minute timers back-to-back, so
    // two rounds close milliseconds apart over the SAME inflated window.
    // That is one observation, not two — don't let it self-confirm.
    return false;
  }
  streak->last_trip = now_minutes;
  ++streak->trips;
  if (streak->trips < needed) return false;
  clear_streak(suspect);
  return true;
}

void LocalPolice::clear_streak(std::uint32_t suspect) {
  for (std::size_t i = 0; i < streaks_.size(); ++i) {
    if (streaks_[i].suspect == suspect) {
      streaks_.erase(streaks_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

double& LocalPolice::report_clock(std::uint32_t suspect,
                                  std::uint32_t requester) {
  for (ReportClock& c : report_clocks_) {
    if (c.suspect == suspect && c.requester == requester) {
      return c.last_report;
    }
  }
  report_clocks_.push_back({suspect, requester, -1e9});
  return report_clocks_.back().last_report;
}

net::NeighborTraffic LocalPolice::own_report(std::uint32_t suspect,
                                             double now_minutes) const {
  net::NeighborTraffic nt;
  nt.source_ip = self_;
  nt.suspect_ip = suspect;
  nt.timestamp = static_cast<std::uint32_t>(now_minutes * 60.0);
  if (probe_) {
    if (std::optional<LinkMinute> live = probe_(suspect)) {
      nt.outgoing_queries = static_cast<std::uint32_t>(live->out_queries);
      nt.incoming_queries = static_cast<std::uint32_t>(live->in_queries);
      return nt;
    }
  }
  for (const LinkMinute& l : last_minute_) {
    if (l.peer == suspect) {
      nt.outgoing_queries = static_cast<std::uint32_t>(l.out_queries);
      nt.incoming_queries = static_cast<std::uint32_t>(l.in_queries);
      break;
    }
  }
  return nt;
}

void LocalPolice::on_minute(double minute,
                            const std::vector<LinkMinute>& links) {
  last_minute_ = links;

  // Phase 1 (Sec. 3.1): periodic neighbour-list advertisement.
  if (config_.exchange_policy == ExchangePolicy::kPeriodic &&
      minute >= next_exchange_minute_) {
    for (const std::uint32_t n : neighbors_) {
      transport_.send_neighbor_list(n, neighbors_);
      ++lists_sent_;
      DDP_TRACE(tracer_, obs::EventType::kNeighborListSent, minutes(minute),
                self_, n, {{"entries", double(neighbors_.size())}});
    }
    next_exchange_minute_ = minute + config_.exchange_period_minutes;
  }

  expire_rounds(minute);

  // Phases 2+3 (Sec. 3.2/3.3): warning scan over the completed minute.
  for (const LinkMinute& l : links) {
    if (is_banned(l.peer)) continue;  // already cut; window still draining
    if (l.in_queries <= config_.warning_threshold) continue;
    ++suspicions_;
    DDP_TRACE(tracer_, obs::EventType::kSuspectFlagged, minutes(minute),
              l.peer, self_, {{"out", l.in_queries}});
    const bool round_open =
        std::any_of(rounds_open_.begin(), rounds_open_.end(),
                    [&](const Round& r) { return r.suspect == l.peer; });
    SuspectClock& clock = clock_for(l.peer);
    const double suppression =
        seconds_as_minutes(config_.suppression_window_seconds);
    if (!round_open && minute - clock.last_round >= suppression) {
      open_round(l.peer, l.out_queries, l.in_queries, minute);
    }
  }
}

void LocalPolice::open_round(std::uint32_t suspect, double my_out,
                             double my_in, double minute) {
  // No advertisement, no round: a Sec. 3.3 round without the Sec. 3.2
  // list cannot be addressed to anyone, and judging k=1 on a link that
  // churned into existence mid-attack cuts honest forwarders on the
  // flood they relay. The warning stays pending for the next scan; a
  // genuinely degenerate suspect advertises {self}-only and still gets
  // the k=1 verdict below.
  const ListSnapshot* snap = snapshot_for(suspect);
  if (snap == nullptr) return;
  // Shrink quarantine: for one monitor window after a member left the
  // suspect's list, the rolling counters still hold traffic only the
  // departed member can account for. Judging now cuts honest forwarders
  // on the flood they relayed from a peer they already cut themselves.
  if (minute - snap->last_shrink < 1.0) return;
  std::vector<std::uint32_t> members = believed_group(suspect);
  // A banned member can no longer testify; judging without its report
  // would misattribute the traffic it injected. Skip this window — the
  // next minute's monitors and lists are free of it.
  if (std::any_of(members.begin(), members.end(),
                  [this](std::uint32_t m) { return is_banned(m); })) {
    return;
  }

  Round round;
  round.suspect = suspect;
  round.opened_minute = minute;
  round.deadline_minutes =
      minute + seconds_as_minutes(config_.collect_timeout_seconds);
  round.my_out = my_out;
  round.my_in = my_in;
  round.members = std::move(members);
  ++rounds_;

  clock_for(suspect).last_round = minute;

  // Seed from reports that arrived before our own scan flagged the
  // suspect — another judge's round-opening broadcast IS its report to
  // this round, and it will not be repeated inside the suppression
  // window. Newest cache entry per member wins.
  for (auto it = report_cache_.rbegin(); it != report_cache_.rend(); ++it) {
    if (it->suspect != suspect) continue;
    const std::uint32_t from = it->from;
    if (std::find(round.members.begin(), round.members.end(), from) ==
        round.members.end()) {
      continue;
    }
    if (std::any_of(round.received.begin(), round.received.end(),
                    [from](const MemberReport& mr) {
                      return mr.member == from;
                    })) {
      continue;
    }
    MemberReport mr;
    mr.member = from;
    mr.out_to_suspect = it->out_to_suspect;
    mr.in_from_suspect = it->in_from_suspect;
    mr.responded = true;
    round.received.push_back(mr);
  }

  const net::NeighborTraffic mine = own_report(suspect, minute);
  for (const std::uint32_t m : round.members) {
    // The broadcast doubles as our report to m's own round on this
    // suspect; suppress a redundant direct reply to m's request.
    report_clock(suspect, m) = minute;
    transport_.send_neighbor_traffic(m, mine);
    ++traffic_sent_;
    DDP_TRACE(tracer_, obs::EventType::kTrafficRequest, minutes(minute), m,
              suspect);
  }

  if (round.members.empty() ||
      round.received.size() == round.members.size()) {
    // Degenerate group {self}, or every member already on record.
    close_round(round, minute);
    return;
  }
  rounds_open_.push_back(std::move(round));
}

void LocalPolice::on_neighbor_traffic(std::uint32_t from,
                                      const net::NeighborTraffic& report,
                                      double now_minutes) {
  const std::uint32_t suspect = report.suspect_ip;
  if (suspect == self_ || from == self_) return;  // someone policing us
  if (is_banned(from)) return;  // a cut peer's testimony is worthless

  cache_report(from, report, now_minutes);

  // Record into the matching open round, if the sender is a queried member
  // that has not answered yet.
  for (std::size_t i = 0; i < rounds_open_.size(); ++i) {
    Round& r = rounds_open_[i];
    if (r.suspect != suspect) continue;
    const bool is_member =
        std::find(r.members.begin(), r.members.end(), from) != r.members.end();
    const bool already =
        std::any_of(r.received.begin(), r.received.end(),
                    [&](const MemberReport& mr) { return mr.member == from; });
    if (is_member && !already) {
      MemberReport mr;
      mr.member = from;
      mr.out_to_suspect = double(report.outgoing_queries);
      mr.in_from_suspect = double(report.incoming_queries);
      mr.responded = true;
      r.received.push_back(mr);
      DDP_TRACE(tracer_, obs::EventType::kTrafficReply, minutes(now_minutes),
                from, suspect,
                {{"out", mr.out_to_suspect}, {"in", mr.in_from_suspect}});
      if (r.received.size() == r.members.size()) {
        Round done = std::move(r);
        rounds_open_.erase(rounds_open_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        close_round(done, now_minutes);
      }
    }
    break;
  }

  maybe_reply(from, suspect, now_minutes);
}

void LocalPolice::cache_report(std::uint32_t from,
                               const net::NeighborTraffic& report,
                               double now_minutes) {
  // Horizon = one collect window plus the suppression window: anything
  // older describes traffic a new round's monitors no longer cover.
  const double horizon =
      seconds_as_minutes(config_.collect_timeout_seconds +
                         config_.suppression_window_seconds);
  std::erase_if(report_cache_, [&](const CachedReport& c) {
    return now_minutes - c.minute > horizon;
  });
  for (CachedReport& c : report_cache_) {
    if (c.suspect == report.suspect_ip && c.from == from) {
      c.out_to_suspect = double(report.outgoing_queries);
      c.in_from_suspect = double(report.incoming_queries);
      c.minute = now_minutes;
      return;
    }
  }
  report_cache_.push_back({report.suspect_ip, from,
                           double(report.outgoing_queries),
                           double(report.incoming_queries), now_minutes});
}

void LocalPolice::maybe_reply(std::uint32_t requester, std::uint32_t suspect,
                              double now_minutes) {
  // Only a monitor of the suspect can testify (Sec. 3.3); one reply per
  // suspect per suppression window, and the window also covers our own
  // round-opening broadcast so rounds do not echo.
  if (std::find(neighbors_.begin(), neighbors_.end(), suspect) ==
      neighbors_.end()) {
    return;
  }
  double& last = report_clock(suspect, requester);
  const double suppression =
      seconds_as_minutes(config_.suppression_window_seconds);
  if (now_minutes - last < suppression) return;
  last = now_minutes;
  transport_.send_neighbor_traffic(requester, own_report(suspect, now_minutes));
  ++traffic_sent_;
}

void LocalPolice::on_tick(double now_minutes) { expire_rounds(now_minutes); }

void LocalPolice::expire_rounds(double now_minutes) {
  std::vector<Round> due;
  for (std::size_t i = 0; i < rounds_open_.size();) {
    Round& r = rounds_open_[i];
    if (r.deadline_minutes > now_minutes) {
      ++i;
      continue;
    }
    if (!r.retried && r.received.size() < r.members.size()) {
      // Fault-plane retry (the sim's DdPolice has the same loop): one
      // extra collect window for silent members before Sec. 3.4 counts
      // them as zero. Over a real transport silence is usually latency,
      // not collusion — a member's reply can be queued behind the very
      // flood being judged — and a zero it didn't earn reads as the
      // suspect self-originating the traffic. Colluders that stay
      // silent through BOTH windows still get zeroed.
      r.retried = true;
      r.deadline_minutes =
          now_minutes + seconds_as_minutes(config_.collect_timeout_seconds);
      const net::NeighborTraffic mine = own_report(r.suspect, now_minutes);
      for (const std::uint32_t m : r.members) {
        const bool answered = std::any_of(
            r.received.begin(), r.received.end(),
            [m](const MemberReport& mr) { return mr.member == m; });
        if (answered) continue;
        transport_.send_neighbor_traffic(m, mine);
        ++traffic_sent_;
      }
      ++i;
      continue;
    }
    due.push_back(std::move(r));
    rounds_open_.erase(rounds_open_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  for (Round& r : due) close_round(r, now_minutes);
}

void LocalPolice::close_round(Round& round, double now_minutes) {
  // Assemble the report set: ourselves first, then every queried member —
  // answered ones verbatim, silent ones as zeros (Sec. 3.4).
  std::vector<MemberReport> reports;
  reports.reserve(1 + round.members.size());
  MemberReport self;
  self.member = self_;
  self.out_to_suspect = round.my_out;
  self.in_from_suspect = round.my_in;
  self.responded = true;
  reports.push_back(self);
  std::uint32_t responders = 1;
  for (const std::uint32_t m : round.members) {
    const auto it =
        std::find_if(round.received.begin(), round.received.end(),
                     [m](const MemberReport& mr) { return mr.member == m; });
    if (it != round.received.end()) {
      reports.push_back(*it);
      ++responders;
    } else {
      MemberReport silent;
      silent.member = m;
      silent.responded = false;
      reports.push_back(silent);
    }
  }

  const double q = config_.good_issue_bound;
  const double cap = config_.capacity_bound_per_minute;
  const double g = general_indicator(reports, q, cap);
  const double s = single_indicator(reports, self_, q, cap);
  DDP_TRACE(tracer_, obs::EventType::kIndicatorComputed, minutes(now_minutes),
            round.suspect, self_,
            {{"g", g}, {"s", s}, {"k", double(reports.size())},
             {"responders", double(responders)}});

  if (!is_bad(g, s, config_.cut_threshold)) {
    clear_streak(round.suspect);
    return;
  }
  if (!record_trip(round.suspect, now_minutes)) {
    DDP_TRACE(tracer_, obs::EventType::kIndicatorComputed, minutes(now_minutes),
              round.suspect, self_,
              {{"g", g}, {"s", s}, {"pending_confirmation", 1.0}});
    return;
  }

  Decision d;
  d.minute = now_minutes;
  d.judge = self_;
  d.suspect = round.suspect;
  d.g = g;
  d.s = s;
  d.via_single = !(g > config_.cut_threshold);
  d.believed_k = static_cast<std::uint32_t>(reports.size());
  d.responders = responders;
  d.true_degree = static_cast<std::uint32_t>(round.members.size() + 1);
  decisions_.push_back(d);
  DDP_TRACE(tracer_, obs::EventType::kSuspectCut, minutes(now_minutes),
            round.suspect, self_,
            {{"g", g}, {"s", s}, {"via_single", d.via_single ? 1.0 : 0.0}});
  if (cut_handler_) cut_handler_(round.suspect, d);
}

}  // namespace ddp::core
