#pragma once

/// \file police.hpp
/// LocalPolice: the DD-POLICE judge as seen from ONE peer, for deployments
/// where no omniscient coordinator exists.
///
/// core::DdPolice (ddpolice.hpp) runs the whole overlay's protocol inside
/// one object — it iterates every judge, reads every monitor, and collects
/// every report synchronously, which is exactly right for the simulation
/// engines and exactly wrong for a real socket deployment where each peer
/// only sees its own links and control messages arrive asynchronously.
/// LocalPolice is the per-node half: the same indicators (Definitions
/// 2.1-2.3), the same DdPoliceConfig thresholds, and the same phase
/// structure (Sec. 3.1 list exchange, Sec. 3.2 monitors, Sec. 3.3 buddy
/// rounds, Sec. 3.4 silent-members-count-as-zero), but driven by inbound
/// messages and an owner-supplied minute cadence instead of a global sweep.
///
/// Peers are identified by their 32-bit overlay address (the virtual IPv4
/// carried in Pong/Neighbor_Traffic/Neighbor_List bodies), not by dense
/// PeerId — a node never knows the global node table. Time is protocol
/// minutes (double); the owner scales wall-clock to protocol minutes, which
/// is how the testbed compresses a "minute" to a few wall seconds.
///
/// Buddy rounds over a real transport:
///   - the owner reports per-link monitor readings at each completed minute
///     via on_minute(); a neighbour over the warning threshold opens a
///     round (suppressed to one per suspect per suppression window);
///   - opening a round broadcasts this judge's own Neighbor_Traffic
///     observation to the suspect's believed buddy group (the list the
///     suspect advertised); the broadcast doubles as the request;
///   - a received Neighbor_Traffic about one of our neighbours is answered
///     with our own counters (once per suspect per suppression window) and
///     recorded into the matching open round, if any;
///   - a round closes when every member answered or the collect timeout
///     expires (on_tick); silent members count as zero (Sec. 3.4), then
///     g/s are computed and the cut handler fires when Definition 2.3
///     trips at CT.
///
/// The sim-side extras (list-consistency verification, fault-plane retry
/// loops, quarantine ladder, adaptive bands) stay in DdPolice; a socket
/// node enforces its verdicts by dropping the connection and banning the
/// address, which is the paper's terminal cut.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/ddpolice.hpp"
#include "core/indicators.hpp"
#include "net/message.hpp"
#include "obs/trace.hpp"

namespace ddp::core {

/// Outbound control-message seam. The engine implements this over its
/// connections (dialing a buddy member it is not yet connected to is the
/// engine's problem, not the protocol's).
class PoliceTransport {
 public:
  virtual ~PoliceTransport() = default;

  /// Advertise `members` (our current neighbour addresses) to `to`.
  virtual void send_neighbor_list(std::uint32_t to,
                                  const std::vector<std::uint32_t>& members) = 0;

  /// Send one Table-1 Neighbor_Traffic message to `to`. Serves both as a
  /// round-opening request (carrying our own observation of the suspect)
  /// and as the reply to another judge's request.
  virtual void send_neighbor_traffic(std::uint32_t to,
                                     const net::NeighborTraffic& report) = 0;
};

/// One neighbour link's monitor reading for a completed minute.
struct LinkMinute {
  std::uint32_t peer = 0;    ///< neighbour overlay address
  double out_queries = 0.0;  ///< we -> peer, past minute (Out_query)
  double in_queries = 0.0;   ///< peer -> we, past minute (In_query)
};

class LocalPolice {
 public:
  /// `self` is this node's overlay address. Only the threshold/indicator
  /// and cadence fields of the config are consulted (see file comment).
  LocalPolice(std::uint32_t self, const DdPoliceConfig& config,
              PoliceTransport& transport);

  /// Fired on every cut verdict, after the Decision is recorded. The owner
  /// disconnects and bans the suspect. Decision::judge/suspect carry
  /// overlay addresses in this context, not dense PeerIds.
  void set_cut_handler(std::function<void(std::uint32_t suspect,
                                          const Decision&)> handler) {
    cut_handler_ = std::move(handler);
  }

  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.bind(sink); }

  /// Live per-link counter probe. When set, Neighbor_Traffic reports (both
  /// round-opening broadcasts and replies to other judges) read the rolling
  /// last-minute window at send time instead of the last completed-minute
  /// snapshot. Deployment nodes need this: minute boundaries are anchored
  /// to each process's own start, so a frozen snapshot on one host can
  /// predate the traffic another host is judging — the relayed flood then
  /// looks self-originated and honest forwarders get cut. Returning
  /// nullopt for a peer falls back to the snapshot.
  using TrafficProbe =
      std::function<std::optional<LinkMinute>(std::uint32_t peer)>;
  void set_traffic_probe(TrafficProbe probe) { probe_ = std::move(probe); }

  /// Membership bookkeeping; remove also abandons any round the peer is
  /// the suspect of.
  void add_neighbor(std::uint32_t peer);
  void remove_neighbor(std::uint32_t peer);

  /// The owner enacted a cut verdict against `peer`. Banned peers are
  /// excluded from future buddy groups and their reports are ignored; a
  /// round whose believed group intersects the ban set is skipped for the
  /// window, because its monitor evidence still contains the banned
  /// peer's flood — traffic the remaining group can no longer account
  /// for, which would read as self-originated and cut honest forwarders
  /// during the post-cut transient. The next window judges cleanly.
  void ban_peer(std::uint32_t peer);
  bool is_banned(std::uint32_t peer) const {
    return std::find(banned_.begin(), banned_.end(), peer) != banned_.end();
  }
  const std::vector<std::uint32_t>& neighbors() const noexcept {
    return neighbors_;
  }

  /// A neighbour-list advertisement arrived from `from`.
  void on_neighbor_list(std::uint32_t from,
                        const std::vector<std::uint32_t>& members,
                        double now_minutes);

  /// A Neighbor_Traffic message arrived from `from`.
  void on_neighbor_traffic(std::uint32_t from,
                           const net::NeighborTraffic& report,
                           double now_minutes);

  /// A protocol minute completed; `links` holds every live neighbour's
  /// monitor readings for it. Runs the periodic advertisement, the warning
  /// scan (opening rounds), and expires overdue rounds.
  void on_minute(double minute, const std::vector<LinkMinute>& links);

  /// Sub-minute heartbeat: closes rounds whose collect timeout expired.
  void on_tick(double now_minutes);

  const std::vector<Decision>& decisions() const noexcept { return decisions_; }
  std::uint64_t lists_sent() const noexcept { return lists_sent_; }
  std::uint64_t traffic_sent() const noexcept { return traffic_sent_; }
  std::uint64_t rounds_run() const noexcept { return rounds_; }
  std::uint64_t suspicions() const noexcept { return suspicions_; }

  /// The believed buddy group of `suspect` (its last advertisement, self
  /// excluded). Exposed for tests.
  std::vector<std::uint32_t> believed_group(std::uint32_t suspect) const;

  /// Whether `suspect` has ever advertised a neighbour list to us. Without
  /// one the Sec. 3.3 round cannot be addressed and the warning is held
  /// over to the next minute (churned links advertise on setup, so the
  /// gap is one advertisement round trip).
  bool has_snapshot(std::uint32_t suspect) const;

 private:
  struct Round {
    std::uint32_t suspect = 0;
    double opened_minute = 0.0;
    double deadline_minutes = 0.0;
    double my_out = 0.0;  ///< our Out_query(suspect) at flag time
    double my_in = 0.0;   ///< our In_query(suspect) at flag time
    bool retried = false;  ///< one re-request of silent members granted
    std::vector<std::uint32_t> members;  ///< queried members (self excluded)
    std::vector<MemberReport> received;  ///< answers so far, member-addressed
  };

  void open_round(std::uint32_t suspect, double my_out, double my_in,
                  double minute);
  void reconcile_rounds(std::uint32_t owner, double now_minutes);
  void close_round(Round& round, double now_minutes);
  void expire_rounds(double now_minutes);
  void maybe_reply(std::uint32_t requester, std::uint32_t suspect,
                   double now_minutes);
  net::NeighborTraffic own_report(std::uint32_t suspect,
                                  double now_minutes) const;

  std::uint32_t self_;
  DdPoliceConfig config_;
  PoliceTransport& transport_;
  obs::Tracer tracer_;
  std::function<void(std::uint32_t, const Decision&)> cut_handler_;

  std::vector<std::uint32_t> neighbors_;

  /// Last advertisement received per neighbour address. `last_shrink`
  /// is when a member was last seen LEAVING the list: for one monitor
  /// window after that, the rolling counters still hold traffic only the
  /// departed member could account for (it was typically the flood's
  /// entry edge, cut by the suspect itself), so judging is quarantined —
  /// see open_round. An attacker shedding members to stall its own
  /// verdict buys one window per member and then faces the k=1
  /// self-judgment on an empty list.
  struct ListSnapshot {
    std::uint32_t owner = 0;
    std::vector<std::uint32_t> members;
    double minute = -1.0;
    double last_shrink = -1e9;
  };
  std::vector<ListSnapshot> snapshots_;
  const ListSnapshot* snapshot_for(std::uint32_t owner) const;

  /// Latest completed-minute monitor readings (from on_minute), scanned by
  /// address — degree is small (Gnutella ~6).
  std::vector<LinkMinute> last_minute_;
  TrafficProbe probe_;

  std::vector<Round> rounds_open_;
  /// Round suppression: last minute we opened a round on each suspect.
  struct SuspectClock {
    std::uint32_t suspect = 0;
    double last_round = -1e9;
  };
  std::vector<SuspectClock> clocks_;
  SuspectClock& clock_for(std::uint32_t suspect);

  /// Cut confirmation (config.cut_confirmations > 1): per-suspect count of
  /// consecutive rounds whose indicators tripped CT. A round that closes
  /// clean resets the streak; a verdict only fires when the streak reaches
  /// the configured count. See the config field for why deployment judges
  /// want this (one-round backlog-drain spikes on a starved host).
  struct TripStreak {
    std::uint32_t suspect = 0;
    int trips = 0;
    double last_trip = -1e9;  ///< minute of the newest counted trip
  };
  std::vector<TripStreak> streaks_;
  /// Returns true when this tripping round completes the streak (the cut
  /// should fire); false while confirmation is still pending.
  bool record_trip(std::uint32_t suspect, double now_minutes);
  void clear_streak(std::uint32_t suspect);

  /// Reply suppression, per (suspect, requester): one report to each judge
  /// per suspect per window. Per-pair, not per-suspect — when an attack
  /// saturates the overlay, every monitor of a hot peer opens a round on
  /// it within the same instant, and a member that answers only the first
  /// judge leaves the others closing on silent-as-zero reports, which
  /// reads as self-originated flooding and cuts honest forwarders. Each
  /// judge asks once per round, so the reply volume stays bounded.
  struct ReportClock {
    std::uint32_t suspect = 0;
    std::uint32_t requester = 0;
    double last_report = -1e9;
  };
  std::vector<ReportClock> report_clocks_;
  double& report_clock(std::uint32_t suspect, std::uint32_t requester);

  /// Recently received Neighbor_Traffic observations, kept for one collect
  /// window. Judges' minute boundaries are per-process, so a member's
  /// round-opening broadcast (which doubles as its report to OUR round)
  /// can arrive before our own warning scan flags the suspect; without
  /// this cache that report is lost, the member will not repeat it inside
  /// the suppression window, and the round closes silent-as-zero against
  /// an honest peer. New rounds are seeded from the cache.
  struct CachedReport {
    std::uint32_t suspect = 0;
    std::uint32_t from = 0;
    double out_to_suspect = 0.0;
    double in_from_suspect = 0.0;
    double minute = 0.0;
  };
  std::vector<CachedReport> report_cache_;
  void cache_report(std::uint32_t from, const net::NeighborTraffic& report,
                    double now_minutes);

  double next_exchange_minute_ = 0.0;

  std::vector<std::uint32_t> banned_;

  std::vector<Decision> decisions_;
  std::uint64_t lists_sent_ = 0;
  std::uint64_t traffic_sent_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t suspicions_ = 0;
};

}  // namespace ddp::core
