#include "core/quarantine.hpp"

#include <algorithm>
#include <cmath>

#include "snapshot/state_io.hpp"

namespace ddp::core {

const char* standing_name(Standing s) noexcept {
  switch (s) {
    case Standing::kClear: return "clear";
    case Standing::kQuarantined: return "quarantined";
    case Standing::kProbation: return "probation";
    case Standing::kBanned: return "banned";
  }
  return "unknown";
}

QuarantineLedger::QuarantineLedger(OverlayPort& port,
                                   const DdPoliceConfig& config, util::Rng rng)
    : port_(port), config_(config), rng_(rng) {}

Standing QuarantineLedger::standing(PeerId p) const noexcept {
  const Entry* e = entries_.find(p);
  return e == nullptr ? Standing::kClear : e->state;
}

int QuarantineLedger::strikes(PeerId p) const noexcept {
  const Entry* e = entries_.find(p);
  return e == nullptr ? 0 : e->strikes;
}

bool QuarantineLedger::blocked(PeerId p) const noexcept {
  const Standing s = standing(p);
  return s == Standing::kQuarantined || s == Standing::kBanned;
}

std::size_t QuarantineLedger::blocked_count() const noexcept {
  std::size_t n = 0;
  entries_.for_each([&n](PeerId, const Entry& e) {
    if (e.state == Standing::kQuarantined || e.state == Standing::kBanned) ++n;
  });
  return n;
}

bool QuarantineLedger::restricted(PeerId p) const noexcept {
  return standing(p) != Standing::kClear;
}

void QuarantineLedger::isolate(PeerId p) {
  const auto& g = port_.graph();
  if (p >= g.node_count()) return;
  // Copy: disconnect mutates the adjacency we are walking.
  const std::vector<PeerId> links(g.neighbors(p).begin(), g.neighbors(p).end());
  for (PeerId n : links) port_.disconnect(n, p);
}

void QuarantineLedger::on_cut(PeerId suspect, double minute) {
  Entry& e = entries_[suspect];
  if (e.state == Standing::kBanned) {
    // Already struck out; the sweep keeps it isolated.
    return;
  }
  const bool new_episode = e.state == Standing::kClear;
  ++e.strikes;
  if (new_episode) e.cut_minute = minute;
  // Probation budgets must not outlive the episode that granted them.
  port_.set_query_budget(suspect, 1.0);
  isolate(suspect);
  if (e.strikes >= std::max(config_.max_strikes, 1)) {
    e.state = Standing::kBanned;
    ++stats_.bans;
    DDP_TRACE(tracer_, obs::EventType::kPeerBanned, minute * kMinute, suspect,
              kInvalidPeer, {{"strikes", static_cast<double>(e.strikes)}});
    return;
  }
  // Exponential backoff: strike k waits base * growth^(k-1).
  const double growth = std::max(config_.quarantine_growth, 1.0);
  const double window = std::max(config_.quarantine_minutes, 1.0) *
                        std::pow(growth, static_cast<double>(e.strikes - 1));
  e.state = Standing::kQuarantined;
  e.release_minute = minute + window;
  ++stats_.quarantines;
  DDP_TRACE(tracer_, obs::EventType::kPeerQuarantined, minute * kMinute,
            suspect, kInvalidPeer,
            {{"strikes", static_cast<double>(e.strikes)},
             {"release", e.release_minute}});
}

void QuarantineLedger::enter_probation(PeerId p, Entry& e, double minute) {
  const auto& g = port_.graph();
  // Degree-preferential reconnection, the same bias a real bootstrap has.
  // Targets must be clear-standing (a probationer wired to a quarantined
  // peer would hand the latter edges the ledger must immediately strip).
  int connected = 0;
  const int want = std::max(config_.probation_links, 1);
  const int max_attempts = want * 8;
  for (int attempt = 0; attempt < max_attempts && connected < want; ++attempt) {
    const PeerId target = g.random_active_node_by_degree(rng_, p);
    if (target == kInvalidPeer || target == p) break;
    if (restricted(target) || g.has_edge(p, target)) continue;
    if (port_.connect(p, target)) ++connected;
  }
  e.state = Standing::kProbation;
  e.probation_end = minute + std::max(config_.probation_minutes, 1.0);
  port_.set_query_budget(p, config_.probation_budget);
  ++stats_.probations;
  DDP_TRACE(tracer_, obs::EventType::kPeerProbation, minute * kMinute, p,
            kInvalidPeer,
            {{"links", static_cast<double>(connected)},
             {"budget", config_.probation_budget}});
}

void QuarantineLedger::on_minute(double minute) {
  // Dense sweep in PeerId order (deterministic by construction).
  std::vector<PeerId> peers;
  entries_.for_each([&peers](PeerId p, const Entry& e) {
    if (e.state != Standing::kClear) peers.push_back(p);
  });

  const auto& g = port_.graph();
  for (PeerId p : peers) {
    Entry& e = entries_[p];
    switch (e.state) {
      case Standing::kQuarantined:
        if (p < g.node_count() && g.degree(p) > 0) {
          // A churn rejoin (or anything else) re-wired a blocked peer.
          isolate(p);
          ++stats_.re_isolations;
        }
        if (minute + 1e-9 >= e.release_minute) {
          if (p < g.node_count() && g.is_active(p)) {
            enter_probation(p, e, minute);
          } else {
            // Offline at release: wait until the peer is back before
            // starting the probation clock (scored absence is meaningless).
            ++stats_.deferred_releases;
          }
        }
        break;
      case Standing::kProbation:
        if (minute + 1e-9 >= e.probation_end) {
          // Survived the window without a fresh cut: reinstated.
          e.state = Standing::kClear;
          port_.set_query_budget(p, 1.0);
          reinstated_.push_back({p, e.cut_minute, minute});
          ++stats_.reinstatements;
          DDP_TRACE(tracer_, obs::EventType::kPeerReinstated, minute * kMinute,
                    p, kInvalidPeer,
                    {{"quarantined_minutes", minute - e.cut_minute}});
        }
        break;
      case Standing::kBanned:
        if (p < g.node_count() && g.degree(p) > 0) {
          isolate(p);
          ++stats_.re_isolations;
        }
        break;
      case Standing::kClear:
        break;
    }
  }
}

bool QuarantineLedger::consistent(std::string* why) const {
  const auto set_why = [why](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
  };
  const auto& g = port_.graph();
  for (PeerId p = 0; p < entries_.extent(); ++p) {
    const Entry& e = *entries_.find(p);
    const std::string tag = "peer " + std::to_string(p) + " (" +
                            standing_name(e.state) + "): ";
    if (e.strikes < 0 || e.strikes > std::max(config_.max_strikes, 1)) {
      set_why(tag + "strike count " + std::to_string(e.strikes) +
              " outside [0, max_strikes]");
      return false;
    }
    if (e.state != Standing::kClear && e.strikes == 0) {
      set_why(tag + "restricted standing with zero strikes");
      return false;
    }
    if (e.state == Standing::kBanned &&
        e.strikes < std::max(config_.max_strikes, 1)) {
      set_why(tag + "banned below max_strikes");
      return false;
    }
    if (e.state == Standing::kQuarantined &&
        e.release_minute < e.cut_minute) {
      set_why(tag + "release scheduled before the cut");
      return false;
    }
    if ((e.state == Standing::kQuarantined || e.state == Standing::kBanned) &&
        p < g.node_count() && g.degree(p) > 0) {
      set_why(tag + "blocked peer holds " + std::to_string(g.degree(p)) +
              " edges");
      return false;
    }
  }
  return true;
}

void QuarantineLedger::save(snapshot::Writer& w) const {
  w.size(entries_.extent());
  entries_.for_each([&w](PeerId, const Entry& e) {
    w.u8(static_cast<std::uint8_t>(e.state));
    w.i64(e.strikes);
    w.f64(e.cut_minute);
    w.f64(e.release_minute);
    w.f64(e.probation_end);
  });
  w.size(reinstated_.size());
  for (const ReinstateRecord& rec : reinstated_) {
    w.u32(rec.peer);
    w.f64(rec.cut_minute);
    w.f64(rec.reinstate_minute);
  }
  w.u64(stats_.quarantines);
  w.u64(stats_.probations);
  w.u64(stats_.reinstatements);
  w.u64(stats_.bans);
  w.u64(stats_.re_isolations);
  w.u64(stats_.deferred_releases);
  snapshot::save_rng(w, rng_);
}

void QuarantineLedger::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxPeers = 1u << 24;
  const std::size_t extent = r.size(kMaxPeers);
  entries_.clear();
  for (PeerId p = 0; p < extent; ++p) {
    Entry& e = entries_[p];
    const std::uint8_t state = r.u8();
    if (state > static_cast<std::uint8_t>(Standing::kBanned)) {
      throw snapshot::SnapshotError("invalid quarantine standing value");
    }
    e.state = static_cast<Standing>(state);
    e.strikes = static_cast<int>(r.i64());
    e.cut_minute = r.f64();
    e.release_minute = r.f64();
    e.probation_end = r.f64();
  }
  reinstated_.resize(r.size(1u << 26));
  for (ReinstateRecord& rec : reinstated_) {
    rec.peer = r.u32();
    rec.cut_minute = r.f64();
    rec.reinstate_minute = r.f64();
  }
  stats_.quarantines = r.u64();
  stats_.probations = r.u64();
  stats_.reinstatements = r.u64();
  stats_.bans = r.u64();
  stats_.re_isolations = r.u64();
  stats_.deferred_releases = r.u64();
  snapshot::load_rng(r, rng_);
  std::string why;
  if (!consistent(&why)) {
    throw snapshot::SnapshotError("restored quarantine ledger inconsistent: " + why);
  }
}

}  // namespace ddp::core
