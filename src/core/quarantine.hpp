#pragma once

/// \file quarantine.hpp
/// The self-healing cut ladder: quarantine -> probation -> reinstate/ban.
///
/// The paper's verdict (Sec. 3.3) is terminal — a suspect crossing CT is
/// disconnected forever — but Fig. 13 shows detection errors are nonzero,
/// so a long-lived overlay must survive its own false positives. Under
/// CutPolicy::kQuarantine every cut feeds this ledger instead of being
/// final:
///
///   cut        -> kQuarantined: the suspect is fully isolated for
///                 quarantine_minutes * growth^strikes (exponential
///                 backoff on repeat offenses);
///   release    -> kProbation: the peer is reconnected with
///                 probation_links degree-preferential edges at
///                 probation_budget of its normal query budget, and its
///                 new buddy group re-scores it for probation_minutes;
///   survived   -> kClear (reinstated at full budget; strikes persist);
///   re-cut     -> back to kQuarantined with one more strike;
///   strikes >= max_strikes -> kBanned (isolated for good).
///
/// The ledger also polices its own invariant each minute: a quarantined
/// or banned peer that regained edges (e.g. a churn rejoin re-wired it)
/// is re-isolated on the next sweep.

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/overlay_port.hpp"
#include "obs/trace.hpp"
#include "topology/edge_index.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::core {

/// Where a peer sits on the degradation ladder.
enum class Standing : std::uint8_t {
  kClear,        ///< never cut, or reinstated after probation
  kQuarantined,  ///< isolated, waiting out the quarantine window
  kProbation,    ///< reconnected at reduced budget, being re-scored
  kBanned,       ///< struck out: isolated permanently
};

const char* standing_name(Standing s) noexcept;

/// One completed recovery, for the false-positive time-to-reinstate metric.
struct ReinstateRecord {
  PeerId peer = kInvalidPeer;
  double cut_minute = 0.0;        ///< first cut of this episode
  double reinstate_minute = 0.0;  ///< probation survived
};

/// Ladder transition counters (monotone; soak invariants lean on that).
struct QuarantineStats {
  std::uint64_t quarantines = 0;    ///< entries into kQuarantined
  std::uint64_t probations = 0;     ///< releases into kProbation
  std::uint64_t reinstatements = 0; ///< probations survived
  std::uint64_t bans = 0;           ///< entries into kBanned
  std::uint64_t re_isolations = 0;  ///< blocked peers stripped of rogue edges
  std::uint64_t deferred_releases = 0;  ///< release postponed: peer offline
};

class QuarantineLedger {
 public:
  /// The ledger reconnects and re-isolates peers through the same
  /// OverlayPort the protocol uses; `rng` should be a dedicated fork so
  /// target selection never perturbs the protocol's own draws.
  QuarantineLedger(OverlayPort& port, const DdPoliceConfig& config,
                   util::Rng rng);

  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.bind(sink); }

  /// Record a cut verdict against `suspect` (call once per suspect per
  /// minute, after the judges' disconnects were applied). Isolates the
  /// peer's remaining links and starts/extends its quarantine, or bans it
  /// outright once strikes reach max_strikes.
  void on_cut(PeerId suspect, double minute);

  /// Minute sweep: release quarantines whose window elapsed (into
  /// probation), reinstate peers that survived probation, and re-isolate
  /// blocked peers that regained edges behind the ledger's back.
  void on_minute(double minute);

  Standing standing(PeerId p) const noexcept;
  int strikes(PeerId p) const noexcept;

  /// True when the ledger requires p to stay edge-less (quarantined or
  /// banned). Maintenance/repair must not re-link such peers.
  bool blocked(PeerId p) const noexcept;

  /// Peers currently blocked — the live quarantine count a progress
  /// heartbeat reports (stats() tracks cumulative totals, not occupancy).
  std::size_t blocked_count() const noexcept;

  /// True when p is quarantined, on probation, or banned — i.e. the
  /// ladder currently restricts it in some way.
  bool restricted(PeerId p) const noexcept;

  const std::vector<ReinstateRecord>& reinstatements() const noexcept {
    return reinstated_;
  }
  const QuarantineStats& stats() const noexcept { return stats_; }

  /// Standing self-check for the soak harness. Verifies per-entry
  /// invariants (strike bounds, window ordering, banned => struck out,
  /// blocked => edge-less). Returns true when consistent; otherwise
  /// writes a description of the first violation into *why (if non-null).
  bool consistent(std::string* why = nullptr) const;

  /// Serialize the full ladder (per-peer entries, reinstate records,
  /// transition counters, rng) into the writer's open section.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save(). Throws SnapshotError when the restored
  /// ladder fails consistent().
  void load(snapshot::Reader& r);

 private:
  struct Entry {
    Standing state = Standing::kClear;
    int strikes = 0;
    double cut_minute = 0.0;      ///< first cut of the current episode
    double release_minute = 0.0;  ///< quarantine window end
    double probation_end = 0.0;   ///< probation window end
  };

  void isolate(PeerId p);
  void enter_probation(PeerId p, Entry& e, double minute);

  OverlayPort& port_;
  const DdPoliceConfig config_;
  util::Rng rng_;
  obs::Tracer tracer_;
  /// Dense by PeerId; a default entry (kClear, zero strikes) is
  /// indistinguishable from an absent one, so the map semantics carry over.
  topology::PeerMap<Entry> entries_;
  std::vector<ReinstateRecord> reinstated_;
  QuarantineStats stats_;
};

}  // namespace ddp::core
