#include "defense/defense.hpp"

#include "snapshot/snapshot.hpp"

namespace ddp::defense {

std::string_view kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kNone: return "none";
    case Kind::kDdPolice: return "dd-police";
    case Kind::kNaiveCut: return "naive-cut";
    case Kind::kFairShare: return "fair-share";
  }
  return "?";
}

NaiveCutDefense::NaiveCutDefense(flow::FlowNetwork& net,
                                 double threshold_per_minute)
    : net_(net), threshold_(threshold_per_minute) {}

void NaiveCutDefense::on_minute(double minute) {
  const auto& g = net_.graph();
  const auto& index = g.edge_index();
  // Collect first: disconnecting mutates adjacency. The in-link counter
  // j -> i is the reverse slot of each of i's out-slots — O(1) per link.
  std::vector<std::pair<PeerId, PeerId>> cuts;
  for (PeerId i = 0; i < g.node_count(); ++i) {
    if (!g.is_active(i)) continue;
    const auto nbrs = g.neighbors(i);
    const auto slots = g.out_slots(i);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (net_.sent_last_minute(index.reverse(slots[k])) > threshold_) {
        cuts.emplace_back(i, nbrs[k]);
      }
    }
  }
  for (const auto& [i, j] : cuts) {
    core::Decision d;
    d.minute = minute;
    d.judge = i;
    d.suspect = j;
    d.g = net_.sent_last_minute(j, i) / 100.0;
    decisions_.push_back(d);
    net_.disconnect(i, j);
  }
}

void NaiveCutDefense::save(snapshot::Writer& w) const {
  w.size(decisions_.size());
  for (const core::Decision& d : decisions_) core::save_decision(w, d);
}

void NaiveCutDefense::load(snapshot::Reader& r) {
  decisions_.resize(r.size(1u << 26));
  for (core::Decision& d : decisions_) core::load_decision(r, d);
}

DdPoliceDefense::DdPoliceDefense(flow::FlowNetwork& net,
                                 const core::DdPoliceConfig& config,
                                 util::Rng rng)
    : port_(net), protocol_(port_, config, rng) {}

}  // namespace ddp::defense
