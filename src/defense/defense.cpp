#include "defense/defense.hpp"

#include "snapshot/snapshot.hpp"

namespace ddp::defense {

std::string_view kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kNone: return "none";
    case Kind::kDdPolice: return "dd-police";
    case Kind::kNaiveCut: return "naive-cut";
    case Kind::kFairShare: return "fair-share";
  }
  return "?";
}

NaiveCutDefense::NaiveCutDefense(core::OverlayPort& port,
                                 double threshold_per_minute)
    : port_(port), threshold_(threshold_per_minute) {}

void NaiveCutDefense::on_minute(double minute) {
  const auto& g = port_.graph();
  // Collect first: disconnecting mutates adjacency. The in-link counter is
  // the port's sent_last_minute(neighbour -> i) read.
  std::vector<std::pair<PeerId, PeerId>> cuts;
  for (PeerId i = 0; i < g.node_count(); ++i) {
    if (!g.is_active(i)) continue;
    for (const PeerId j : g.neighbors(i)) {
      if (port_.sent_last_minute(j, i) > threshold_) {
        cuts.emplace_back(i, j);
      }
    }
  }
  for (const auto& [i, j] : cuts) {
    core::Decision d;
    d.minute = minute;
    d.judge = i;
    d.suspect = j;
    d.g = port_.sent_last_minute(j, i) / 100.0;
    decisions_.push_back(d);
    port_.disconnect(i, j);
  }
}

void NaiveCutDefense::save(snapshot::Writer& w) const {
  w.size(decisions_.size());
  for (const core::Decision& d : decisions_) core::save_decision(w, d);
}

void NaiveCutDefense::load(snapshot::Reader& r) {
  decisions_.resize(r.size(1u << 26));
  for (core::Decision& d : decisions_) core::load_decision(r, d);
}

DdPoliceDefense::DdPoliceDefense(core::OverlayPort& port,
                                 const core::DdPoliceConfig& config,
                                 util::Rng rng)
    : protocol_(port, config, rng) {}

}  // namespace ddp::defense
