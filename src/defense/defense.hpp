#pragma once

/// \file defense.hpp
/// Common interface for the defenses evaluated against the overlay DDoS:
///
///   * none        — undefended flooding network (the paper's "under DDoS
///                   without DD-POLICE" curves);
///   * ddpolice    — the paper's contribution (Sec. 3);
///   * naive-cut   — disconnect any neighbour whose per-link rate exceeds a
///                   threshold, without buddy-group consultation. This is
///                   the strawman Sec. 2.1 warns about ("disconnecting all
///                   the peers who send out a large number of queries is
///                   dangerous");
///   * fair-share  — application-layer load balancing in the style of the
///                   related work [21]; no disconnection, per-link max-min
///                   capacity shares (implemented inside the flow engine).

#include <memory>
#include <string_view>
#include <vector>

#include "core/ddpolice.hpp"
#include "core/overlay_port.hpp"

namespace ddp::defense {

enum class Kind : std::uint8_t { kNone, kDdPolice, kNaiveCut, kFairShare };

std::string_view kind_name(Kind k) noexcept;

class Defense {
 public:
  virtual ~Defense() = default;
  virtual std::string_view name() const = 0;
  /// Run one protocol step at a completed simulated minute.
  virtual void on_minute(double minute) = 0;
  /// Disconnect decisions taken so far (empty for non-cutting defenses).
  virtual const std::vector<core::Decision>& decisions() const = 0;
  /// Checkpoint hooks. Stateless defenses (none, fair-share) have nothing
  /// to persist; stateful ones override both.
  virtual void save(snapshot::Writer&) const {}
  virtual void load(snapshot::Reader&) {}
};

/// Undefended baseline.
class NoDefense final : public Defense {
 public:
  std::string_view name() const override { return "none"; }
  void on_minute(double) override {}
  const std::vector<core::Decision>& decisions() const override {
    return decisions_;
  }

 private:
  std::vector<core::Decision> decisions_;
};

/// The Sec. 2.1 strawman: per-link rate threshold, immediate disconnect.
/// Engine-agnostic: reads rates and cuts links through the same
/// core::OverlayPort seam DD-POLICE uses, so it runs behind any engine.
class NaiveCutDefense final : public Defense {
 public:
  NaiveCutDefense(core::OverlayPort& port, double threshold_per_minute);

  std::string_view name() const override { return "naive-cut"; }
  void on_minute(double minute) override;
  const std::vector<core::Decision>& decisions() const override {
    return decisions_;
  }
  void save(snapshot::Writer& w) const override;
  void load(snapshot::Reader& r) override;

 private:
  core::OverlayPort& port_;
  double threshold_;
  std::vector<core::Decision> decisions_;
};

/// DD-POLICE wrapped behind the Defense interface. The port is borrowed
/// (caller-owned, must outlive the defense): which engine sits behind it —
/// flow, packet, or the real-socket netengine — is the caller's choice.
class DdPoliceDefense final : public Defense {
 public:
  DdPoliceDefense(core::OverlayPort& port, const core::DdPoliceConfig& config,
                  util::Rng rng);

  std::string_view name() const override { return "dd-police"; }
  void on_minute(double minute) override { protocol_.on_minute(minute); }
  const std::vector<core::Decision>& decisions() const override {
    return protocol_.decisions();
  }
  void save(snapshot::Writer& w) const override { protocol_.save(w); }
  void load(snapshot::Reader& r) override { protocol_.load(r); }

  core::DdPolice& protocol() noexcept { return protocol_; }

 private:
  core::DdPolice protocol_;
};

/// Fair-share load balancing: the behaviour lives in the engine (the
/// FlowConfig service discipline); this class only carries the label.
class FairShareDefense final : public Defense {
 public:
  std::string_view name() const override { return "fair-share"; }
  void on_minute(double) override {}
  const std::vector<core::Decision>& decisions() const override {
    return decisions_;
  }

 private:
  std::vector<core::Decision> decisions_;
};

}  // namespace ddp::defense
