#include "experiments/extensions.hpp"

#include <algorithm>
#include <cmath>

#include "experiments/sweep.hpp"
#include "util/log.hpp"

namespace ddp::experiments {

namespace {

ScenarioConfig scaled(const Scale& scale, std::size_t agents,
                      defense::Kind kind, std::uint64_t seed) {
  ScenarioConfig cfg = paper_scenario(scale.peers, agents, kind, seed);
  cfg.total_minutes = scale.total_minutes;
  cfg.warmup_minutes = scale.warmup_minutes;
  cfg.attack.start_minute = scale.attack_start;
  return cfg;
}

}  // namespace

// ===================================================== defense comparison

std::vector<DefenseRow> run_defense_comparison(const Scale& scale,
                                               std::size_t agents,
                                               std::uint64_t seed,
                                               const fault::FaultConfig& fault) {
  std::vector<DefenseRow> rows;

  struct Case {
    std::string label;
    defense::Kind kind;
    std::size_t attack;
  };
  const std::vector<Case> cases{
      {"healthy (no attack)", defense::Kind::kNone, 0},
      {"none", defense::Kind::kNone, agents},
      {"naive-cut", defense::Kind::kNaiveCut, agents},
      {"fair-share", defense::Kind::kFairShare, agents},
      {"dd-police", defense::Kind::kDdPolice, agents},
  };

  for (const auto& c : cases) {
    DefenseRow row;
    row.defense = c.label;
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      const std::uint64_t s = seed + 1000003ULL * t;
      const auto base = run_baseline(scaled(scale, 0, defense::Kind::kNone, s));
      ScenarioConfig cfg = scaled(scale, c.attack, c.kind, s);
      cfg.fault = fault;
      const auto r = c.attack == 0 ? base : run_scenario(cfg);
      row.success_pct += r.summary.avg_success_rate * 100.0;
      row.response_s += r.summary.avg_response_time;
      row.traffic_per_minute += r.summary.avg_traffic_per_minute;
      row.false_negative += static_cast<double>(r.errors.false_negative);
      row.bad_identified_pct +=
          c.attack > 0 ? (static_cast<double>(c.attack) -
                          static_cast<double>(r.errors.false_positive)) /
                             static_cast<double>(c.attack) * 100.0
                       : 0.0;
      const auto dmg = metrics::analyze_damage(
          r.history, base.summary.avg_success_rate, scale.attack_start);
      row.stabilized_damage += dmg.stabilized_damage;
      row.fault_timeouts += r.summary.fault_timeouts;
      row.fault_retries += r.summary.fault_retries;
      row.fault_corrupt_rejects += r.summary.fault_corrupt_rejects;
      row.fault_crashed += r.summary.fault_crashed;
      row.fault_stalled += r.summary.fault_stalled;
    }
    const double d = static_cast<double>(scale.trials);
    row.success_pct /= d;
    row.response_s /= d;
    row.traffic_per_minute /= d;
    row.false_negative /= d;
    row.bad_identified_pct /= d;
    row.stabilized_damage /= d;
    row.fault_timeouts /= d;
    row.fault_retries /= d;
    row.fault_corrupt_rejects /= d;
    row.fault_crashed /= d;
    row.fault_stalled /= d;
    rows.push_back(row);
    util::log_info("defense comparison: " + row.defense + " done");
  }
  return rows;
}

util::Table defense_table(const std::vector<DefenseRow>& rows) {
  // The original seven columns keep their exact headers and order;
  // fault-injection tallies are appended as trailing columns (all zero on
  // fault-free runs) so existing consumers keep parsing by position.
  util::Table t({"defense", "success(%)", "response(s)", "traffic/min",
                 "good_wrongly_cut", "bad_identified(%)",
                 "stabilized_damage(%)", "timeouts", "retries",
                 "corrupt_rejects", "crashed", "stalled"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.defense)
        .cell(r.success_pct, 1)
        .cell(r.response_s, 2)
        .cell(r.traffic_per_minute, 0)
        .cell(r.false_negative, 1)
        .cell(r.bad_identified_pct, 1)
        .cell(r.stabilized_damage, 1)
        .cell(r.fault_timeouts, 1)
        .cell(r.fault_retries, 1)
        .cell(r.fault_corrupt_rejects, 1)
        .cell(r.fault_crashed, 1)
        .cell(r.fault_stalled, 1);
  }
  return t;
}

// ======================================================== fault ablation

std::vector<FaultRow> run_fault_ablation(const Scale& scale,
                                         std::size_t agents,
                                         std::uint64_t seed,
                                         const std::vector<double>& losses,
                                         const std::vector<double>& jitters) {
  std::vector<FaultRow> rows;
  for (double jitter : jitters) {
    for (double loss : losses) {
      FaultRow row;
      row.loss = loss;
      row.jitter_s = jitter;
      double rec_sum = 0.0;
      std::uint32_t rec_n = 0;
      for (std::uint32_t t = 0; t < scale.trials; ++t) {
        const std::uint64_t s = seed + 1000003ULL * t;
        const auto base =
            run_baseline(scaled(scale, 0, defense::Kind::kNone, s));
        ScenarioConfig cfg = scaled(scale, agents, defense::Kind::kDdPolice, s);
        cfg.fault.channel.drop_probability = loss;
        cfg.fault.channel.corrupt_probability = loss / 4.0;
        cfg.fault.channel.delay_jitter_seconds = jitter;
        const auto r = run_scenario(cfg);
        row.success_pct += r.summary.avg_success_rate * 100.0;
        row.response_s += r.summary.avg_response_time;
        row.false_negative += static_cast<double>(r.errors.false_negative);
        row.false_positive += static_cast<double>(r.errors.false_positive);
        const auto dmg = metrics::analyze_damage(
            r.history, base.summary.avg_success_rate, scale.attack_start);
        row.stabilized_damage += dmg.stabilized_damage;
        if (dmg.recovery_minutes >= 0.0) {
          rec_sum += dmg.recovery_minutes;
          ++rec_n;
        }
        row.timeouts += r.summary.fault_timeouts;
        row.retries += r.summary.fault_retries;
        row.late_replies += r.summary.fault_late_replies;
        row.corrupt_rejects += r.summary.fault_corrupt_rejects;
        row.crashed += r.summary.fault_crashed;
        row.stalled += r.summary.fault_stalled;
      }
      const double d = static_cast<double>(scale.trials);
      row.success_pct /= d;
      row.response_s /= d;
      row.false_negative /= d;
      row.false_positive /= d;
      row.false_judgment = row.false_negative + row.false_positive;
      row.stabilized_damage /= d;
      row.recovery_minutes = rec_n > 0 ? rec_sum / rec_n : -1.0;
      row.timeouts /= d;
      row.retries /= d;
      row.late_replies /= d;
      row.corrupt_rejects /= d;
      row.crashed /= d;
      row.stalled /= d;
      rows.push_back(row);
      util::log_info("fault ablation: loss=" + util::format_double(loss, 2) +
                     " jitter=" + util::format_double(jitter, 1) + "s done");
    }
  }
  return rows;
}

util::Table fault_table(const std::vector<FaultRow>& rows) {
  util::Table t({"loss", "jitter(s)", "success(%)", "response(s)",
                 "good_wrongly_cut", "bad_missed", "false_judgments",
                 "recovery(min)", "stabilized_damage(%)", "timeouts",
                 "retries", "late_replies", "corrupt_rejects", "crashed",
                 "stalled"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.loss, 2)
        .cell(r.jitter_s, 1)
        .cell(r.success_pct, 1)
        .cell(r.response_s, 2)
        .cell(r.false_negative, 1)
        .cell(r.false_positive, 1)
        .cell(r.false_judgment, 1)
        .cell(r.recovery_minutes, 2)
        .cell(r.stabilized_damage, 1)
        .cell(r.timeouts, 1)
        .cell(r.retries, 1)
        .cell(r.late_replies, 1)
        .cell(r.corrupt_rejects, 1)
        .cell(r.crashed, 1)
        .cell(r.stalled, 1);
  }
  return t;
}

// ====================================================== topology ablation

std::vector<TopologyRow> run_topology_ablation(const Scale& scale,
                                               std::size_t agents,
                                               std::uint64_t seed) {
  std::vector<TopologyRow> rows;
  struct Case {
    std::string label;
    topology::Model model;
  };
  for (const auto& c : std::vector<Case>{
           {"barabasi-albert", topology::Model::kBarabasiAlbert},
           {"waxman", topology::Model::kWaxman},
           {"erdos-renyi", topology::Model::kErdosRenyi},
           {"two-tier (ultrapeer)", topology::Model::kTwoTier}}) {
    TopologyRow row;
    row.model = c.label;
    double det_sum = 0.0;
    std::uint32_t det_n = 0;
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      const std::uint64_t s = seed + 1000003ULL * t;
      ScenarioConfig base_cfg = scaled(scale, 0, defense::Kind::kNone, s);
      base_cfg.topo.model = c.model;
      const auto base = run_baseline(base_cfg);
      ScenarioConfig none_cfg = scaled(scale, agents, defense::Kind::kNone, s);
      none_cfg.topo.model = c.model;
      const auto none = run_scenario(none_cfg);
      ScenarioConfig ddp_cfg =
          scaled(scale, agents, defense::Kind::kDdPolice, s);
      ddp_cfg.topo.model = c.model;
      const auto ddp = run_scenario(ddp_cfg);
      row.baseline_success_pct += base.summary.avg_success_rate * 100.0;
      row.attacked_success_pct += none.summary.avg_success_rate * 100.0;
      row.defended_success_pct += ddp.summary.avg_success_rate * 100.0;
      row.false_negative += static_cast<double>(ddp.errors.false_negative);
      if (ddp.errors.mean_detection_minute >= 0.0) {
        det_sum += ddp.errors.mean_detection_minute;
        ++det_n;
      }
    }
    const double d = static_cast<double>(scale.trials);
    row.baseline_success_pct /= d;
    row.attacked_success_pct /= d;
    row.defended_success_pct /= d;
    row.false_negative /= d;
    row.detection_minutes = det_n > 0 ? det_sum / det_n : -1.0;
    rows.push_back(row);
  }
  return rows;
}

util::Table topology_table(const std::vector<TopologyRow>& rows) {
  util::Table t({"topology", "healthy_success(%)", "attacked_success(%)",
                 "defended_success(%)", "detection(min)", "good_wrongly_cut"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.model)
        .cell(r.baseline_success_pct, 1)
        .cell(r.attacked_success_pct, 1)
        .cell(r.defended_success_pct, 1)
        .cell(r.detection_minutes, 2)
        .cell(r.false_negative, 1);
  }
  return t;
}

// ================================================= cutoff-exponent ablation

std::vector<CutoffRow> run_cutoff_ablation(
    const Scale& scale, std::size_t agents, std::uint64_t seed,
    const std::vector<double>& exponents) {
  struct Cell {
    double detected_pct, detection_minutes;  ///< detection < 0: never
    double injected, delivered, honest_cuts, success_pct;
  };
  SweepRunner runner(scale.jobs);
  const auto cells =
      runner.map(exponents.size() * scale.trials, [&](std::size_t idx) {
        const double exponent = exponents[idx / scale.trials];
        const auto t = static_cast<std::uint32_t>(idx % scale.trials);
        const std::uint64_t s = seed + 1000003ULL * t;
        ScenarioConfig cfg =
            scaled(scale, agents, defense::Kind::kDdPolice, s);
        cfg.topo.model = topology::Model::kHardCutoff;
        cfg.topo.hc_cutoff_exponent = exponent;
        cfg.obs.forensics = true;
        const auto r = run_scenario(cfg);
        Cell c{0.0, -1.0, 0.0, 0.0, 0.0, 0.0};
        c.success_pct = r.summary.avg_success_rate * 100.0;
        c.honest_cuts = static_cast<double>(r.errors.false_negative);
        if (r.forensics != nullptr) {
          std::size_t detected = 0, n = 0;
          double lat_sum = 0.0;
          for (const auto& [id, a] : r.forensics->agents()) {
            ++n;
            c.injected += a.injected_before_cut;
            c.delivered += a.delivered_before_cut;
            if (a.first_cut_t >= 0.0 && a.activated_t >= 0.0) {
              ++detected;
              lat_sum += (a.first_cut_t - a.activated_t) / 60.0;
            }
          }
          if (n > 0) {
            c.detected_pct =
                static_cast<double>(detected) / static_cast<double>(n) * 100.0;
            c.injected /= static_cast<double>(n);
            c.delivered /= static_cast<double>(n);
          }
          if (detected > 0) {
            c.detection_minutes = lat_sum / static_cast<double>(detected);
          }
        }
        return c;
      });

  std::vector<CutoffRow> rows;
  for (std::size_t ei = 0; ei < exponents.size(); ++ei) {
    CutoffRow row;
    row.cutoff_exponent = exponents[ei];
    // Mirror the generator's cap arithmetic so the table shows the degree
    // ceiling each exponent actually produced at this peer count.
    const double kc_raw = std::ceil(
        std::pow(static_cast<double>(scale.peers), 1.0 / exponents[ei]));
    const double m = 3.0;  // topo.ba_links_per_node default
    row.cutoff_degree =
        std::max(m + 1.0,
                 std::min(kc_raw, static_cast<double>(scale.peers)));
    double det_sum = 0.0;
    std::uint32_t det_n = 0;
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      const Cell& c = cells[ei * scale.trials + t];
      row.detected_pct += c.detected_pct;
      row.injected_before_cut += c.injected;
      row.delivered_before_cut += c.delivered;
      row.honest_false_cuts += c.honest_cuts;
      row.success_pct += c.success_pct;
      if (c.detection_minutes >= 0.0) {
        det_sum += c.detection_minutes;
        ++det_n;
      }
    }
    const double d = static_cast<double>(scale.trials);
    row.detected_pct /= d;
    row.injected_before_cut /= d;
    row.delivered_before_cut /= d;
    row.honest_false_cuts /= d;
    row.success_pct /= d;
    row.detection_minutes = det_n > 0 ? det_sum / det_n : -1.0;
    rows.push_back(row);
    util::log_info("cutoff ablation: exponent=" +
                   util::format_double(exponents[ei], 1) + " done");
  }
  return rows;
}

util::Table cutoff_table(const std::vector<CutoffRow>& rows) {
  util::Table t({"cutoff_exp", "degree_cap", "detected(%)", "detection(min)",
                 "injected_before_cut", "delivered_before_cut",
                 "honest_wrongly_cut", "success(%)"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.cutoff_exponent, 1)
        .cell(r.cutoff_degree, 0)
        .cell(r.detected_pct, 1)
        .cell(r.detection_minutes, 2)
        .cell(r.injected_before_cut, 0)
        .cell(r.delivered_before_cut, 0)
        .cell(r.honest_false_cuts, 1)
        .cell(r.success_pct, 1);
  }
  return t;
}

// ========================================================= churn ablation

std::vector<ChurnRow> run_churn_ablation(const Scale& scale,
                                         std::size_t agents,
                                         std::uint64_t seed) {
  struct Case {
    std::string label;
    bool enabled;
    workload::LifetimeDistribution dist;
    double mean_minutes;
  };
  const std::vector<Case> cases{
      {"static (no churn)", false, workload::LifetimeDistribution::kLognormal, 0},
      {"paper lognormal 60min", true, workload::LifetimeDistribution::kLognormal, 60},
      {"fast lognormal 10min", true, workload::LifetimeDistribution::kLognormal, 10},
      {"exponential 60min", true, workload::LifetimeDistribution::kExponential, 60},
      {"pareto 60min", true, workload::LifetimeDistribution::kPareto, 60},
  };
  // One parallel unit per (regime, trial) cell, reduced in serial order.
  struct Cell {
    double false_negative, false_positive, stabilized_damage;
  };
  SweepRunner runner(scale.jobs);
  const auto cells =
      runner.map(cases.size() * scale.trials, [&](std::size_t idx) {
        const Case& c = cases[idx / scale.trials];
        const auto t = static_cast<std::uint32_t>(idx % scale.trials);
        const std::uint64_t s = seed + 1000003ULL * t;
        auto configure = [&](ScenarioConfig cfg) {
          cfg.churn.enabled = c.enabled;
          cfg.churn.distribution = c.dist;
          if (c.mean_minutes > 0) {
            cfg.churn.mean_lifetime = minutes(c.mean_minutes);
            cfg.churn.lifetime_variance =
                c.mean_minutes / 2.0 * kMinute * kMinute;
          }
          return cfg;
        };
        const auto base = run_baseline(
            configure(scaled(scale, 0, defense::Kind::kNone, s)));
        const auto r = run_scenario(
            configure(scaled(scale, agents, defense::Kind::kDdPolice, s)));
        const auto dmg = metrics::analyze_damage(
            r.history, base.summary.avg_success_rate, scale.attack_start);
        return Cell{static_cast<double>(r.errors.false_negative),
                    static_cast<double>(r.errors.false_positive),
                    dmg.stabilized_damage};
      });
  std::vector<ChurnRow> rows;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    ChurnRow row;
    row.regime = c.label;
    row.mean_lifetime_minutes = c.mean_minutes;
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      const Cell& cell = cells[ci * scale.trials + t];
      row.false_negative += cell.false_negative;
      row.false_positive += cell.false_positive;
      row.stabilized_damage += cell.stabilized_damage;
    }
    const double d = static_cast<double>(scale.trials);
    row.false_negative /= d;
    row.false_positive /= d;
    row.stabilized_damage /= d;
    rows.push_back(row);
  }
  return rows;
}

util::Table churn_table(const std::vector<ChurnRow>& rows) {
  util::Table t({"churn_regime", "good_wrongly_cut", "bad_missed",
                 "stabilized_damage(%)"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.regime)
        .cell(r.false_negative, 1)
        .cell(r.false_positive, 1)
        .cell(r.stabilized_damage, 1);
  }
  return t;
}

// ===================================================== rejoin persistence

std::vector<RejoinRow> run_rejoin_study(const Scale& scale, std::size_t agents,
                                        std::uint64_t seed) {
  struct Case {
    std::string label;
    bool rejoin;
    double after;
  };
  const std::vector<Case> cases{
      {"one-shot (paper evaluation)", false, 0.0},
      {"rejoin after 5 min", true, 5.0},
      {"rejoin after 2 min", true, 2.0},
      {"rejoin after 1 min", true, 1.0},
  };
  std::vector<RejoinRow> rows;
  for (const auto& c : cases) {
    RejoinRow row;
    row.mode = c.label;
    row.rejoin_after_minutes = c.after;
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      const std::uint64_t s = seed + 1000003ULL * t;
      const auto base = run_baseline(scaled(scale, 0, defense::Kind::kNone, s));
      ScenarioConfig cfg = scaled(scale, agents, defense::Kind::kDdPolice, s);
      cfg.attack.rejoin = c.rejoin;
      cfg.attack.rejoin_after_minutes = c.after;
      const auto r = run_scenario(cfg);
      const auto dmg = metrics::analyze_damage(
          r.history, base.summary.avg_success_rate, scale.attack_start);
      row.stabilized_damage += dmg.stabilized_damage;
      row.attack_rejoins += static_cast<double>(r.attack_rejoins);
      row.bad_cut_events += static_cast<double>(r.errors.bad_cut_events);
    }
    const double d = static_cast<double>(scale.trials);
    row.stabilized_damage /= d;
    row.attack_rejoins /= d;
    row.bad_cut_events /= d;
    rows.push_back(row);
  }
  return rows;
}

util::Table rejoin_table(const std::vector<RejoinRow>& rows) {
  util::Table t({"attacker_persistence", "stabilized_damage(%)",
                 "rejoin_events", "agent_links_cut"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.mode)
        .cell(r.stabilized_damage, 1)
        .cell(r.attack_rejoins, 1)
        .cell(r.bad_cut_events, 1);
  }
  return t;
}

// ====================================================== attack-rate sweep

std::vector<RateRow> run_attack_rate_sweep(const Scale& scale,
                                           std::size_t agents,
                                           std::uint64_t seed) {
  const std::vector<double> rates{250.0,  500.0,   1000.0,  2000.0,
                                  5000.0, 10000.0, 20000.0};
  // One parallel unit per (rate, trial) cell, reduced in serial order.
  struct Cell {
    double bad_identified_pct, damage_undefended, damage_defended;
    double detection_minute;  ///< < 0 when the trial never detected
  };
  SweepRunner runner(scale.jobs);
  const auto cells =
      runner.map(rates.size() * scale.trials, [&](std::size_t idx) {
        const double rate = rates[idx / scale.trials];
        const auto t = static_cast<std::uint32_t>(idx % scale.trials);
        const std::uint64_t s = seed + 1000003ULL * t;
        const auto base =
            run_baseline(scaled(scale, 0, defense::Kind::kNone, s));
        ScenarioConfig none_cfg = scaled(scale, agents, defense::Kind::kNone, s);
        none_cfg.flow.attack_target_per_minute = rate;
        const auto none = run_scenario(none_cfg);
        ScenarioConfig ddp_cfg =
            scaled(scale, agents, defense::Kind::kDdPolice, s);
        ddp_cfg.flow.attack_target_per_minute = rate;
        const auto ddp = run_scenario(ddp_cfg);
        const auto dmg_none = metrics::analyze_damage(
            none.history, base.summary.avg_success_rate, scale.attack_start);
        const auto dmg_ddp = metrics::analyze_damage(
            ddp.history, base.summary.avg_success_rate, scale.attack_start);
        return Cell{(static_cast<double>(agents) -
                     static_cast<double>(ddp.errors.false_positive)) /
                        static_cast<double>(agents) * 100.0,
                    dmg_none.stabilized_damage, dmg_ddp.stabilized_damage,
                    ddp.errors.mean_detection_minute};
      });
  std::vector<RateRow> rows;
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    const double rate = rates[ri];
    RateRow row;
    row.attack_rate_per_minute = rate;
    double det_sum = 0.0;
    std::uint32_t det_n = 0;
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      const Cell& c = cells[ri * scale.trials + t];
      row.bad_identified_pct += c.bad_identified_pct;
      row.stabilized_damage_undefended += c.damage_undefended;
      row.stabilized_damage_defended += c.damage_defended;
      if (c.detection_minute >= 0.0) {
        det_sum += c.detection_minute;
        ++det_n;
      }
    }
    const double d = static_cast<double>(scale.trials);
    row.bad_identified_pct /= d;
    row.stabilized_damage_undefended /= d;
    row.stabilized_damage_defended /= d;
    row.detection_minutes = det_n > 0 ? det_sum / det_n : -1.0;
    rows.push_back(row);
    util::log_info("attack-rate sweep: Qd=" + util::format_double(rate, 0) +
                   " done");
  }
  return rows;
}

// ================================================== adaptive-CT ablation

std::vector<AdaptiveRow> run_adaptive_ct_ablation(const Scale& scale,
                                                  std::size_t agents,
                                                  std::uint64_t seed) {
  struct Strat {
    std::string label;
    std::size_t agents;
    std::function<void(ScenarioConfig&)> apply;
  };
  // The sub-warning strategies run at a sourcing scale whose per-link rate
  // sits well under the 500 q/min static warning threshold (scale 0.06 of
  // Q_d = 20,000 spread over ~6 links ≈ 200 q/min/link) but far above any
  // honest peer's learned band.
  const std::vector<Strat> strats{
      {"full-rate", agents, [](ScenarioConfig&) {}},
      {"low-slow", agents,
       [](ScenarioConfig& c) {
         c.attack.sourcing = attack::SourcingStrategy::kRamp;
         c.attack.ramp_minutes = 8.0;
         c.attack.ramp_target_scale = 0.06;
       }},
      {"pulse", agents,
       [](ScenarioConfig& c) {
         c.attack.sourcing = attack::SourcingStrategy::kPulse;
         c.attack.pulse_scale = 0.06;
         c.attack.pulse_on_minutes = 1.0;
         c.attack.pulse_off_minutes = 3.0;
       }},
      {"probe", agents,
       [](ScenarioConfig& c) {
         c.attack.sourcing = attack::SourcingStrategy::kProbe;
         c.attack.probe_step_scale = 0.05;
         c.attack.probe_backoff = 0.5;
       }},
      {"collude", agents,
       [](ScenarioConfig& c) {
         c.attack.behavior.report = attack::ReportStrategy::kCollude;
       }},
      {"flash-crowd", 0,
       [](ScenarioConfig& c) {
         c.flash.enabled = true;
         c.flash.start_minute = c.attack.start_minute + 4.0;
         c.flash.surge_minutes = 5.0;
         c.flash.surge_factor = 20.0;
         c.flash.participation = 0.25;
       }},
  };
  struct Policy {
    std::string label;
    bool adaptive;
  };
  const std::vector<Policy> policies{{"static", false}, {"adaptive", true}};

  struct Cell {
    double detected_pct, detection_minutes;  ///< detection < 0: never
    double injected, delivered, honest_cuts, honest_suspected, success_pct;
  };
  SweepRunner runner(scale.jobs);
  const std::size_t per_strat = policies.size() * scale.trials;
  const auto cells =
      runner.map(strats.size() * per_strat, [&](std::size_t idx) {
        const Strat& st = strats[idx / per_strat];
        const Policy& pol = policies[(idx % per_strat) / scale.trials];
        const auto t = static_cast<std::uint32_t>(idx % scale.trials);
        const std::uint64_t s = seed + 1000003ULL * t;
        ScenarioConfig cfg =
            scaled(scale, st.agents, defense::Kind::kDdPolice, s);
        cfg.obs.forensics = true;
        st.apply(cfg);
        cfg.ddpolice.adaptive.enabled = pol.adaptive;
        const auto r = run_scenario(cfg);
        Cell c{0.0, -1.0, 0.0, 0.0, 0.0, 0.0, 0.0};
        c.success_pct = r.summary.avg_success_rate * 100.0;
        c.honest_cuts = static_cast<double>(r.errors.false_negative);
        if (r.forensics != nullptr) {
          c.honest_suspected = static_cast<double>(r.forensics->honest().size());
          std::size_t detected = 0, n = 0;
          double lat_sum = 0.0;
          for (const auto& [id, a] : r.forensics->agents()) {
            ++n;
            c.injected += a.injected_before_cut;
            c.delivered += a.delivered_before_cut;
            if (a.first_cut_t >= 0.0 && a.activated_t >= 0.0) {
              ++detected;
              lat_sum += (a.first_cut_t - a.activated_t) / 60.0;
            }
          }
          if (n > 0) {
            c.detected_pct =
                static_cast<double>(detected) / static_cast<double>(n) * 100.0;
            c.injected /= static_cast<double>(n);
            c.delivered /= static_cast<double>(n);
          }
          if (detected > 0) {
            c.detection_minutes = lat_sum / static_cast<double>(detected);
          }
        }
        return c;
      });

  std::vector<AdaptiveRow> rows;
  for (std::size_t si = 0; si < strats.size(); ++si) {
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      AdaptiveRow row;
      row.strategy = strats[si].label;
      row.policy = policies[pi].label;
      double det_sum = 0.0;
      std::uint32_t det_n = 0;
      for (std::uint32_t t = 0; t < scale.trials; ++t) {
        const Cell& c = cells[si * per_strat + pi * scale.trials + t];
        row.detected_pct += c.detected_pct;
        row.injected_before_cut += c.injected;
        row.delivered_before_cut += c.delivered;
        row.honest_false_cuts += c.honest_cuts;
        row.honest_suspected += c.honest_suspected;
        row.success_pct += c.success_pct;
        if (c.detection_minutes >= 0.0) {
          det_sum += c.detection_minutes;
          ++det_n;
        }
      }
      const double d = static_cast<double>(scale.trials);
      row.detected_pct /= d;
      row.injected_before_cut /= d;
      row.delivered_before_cut /= d;
      row.honest_false_cuts /= d;
      row.honest_suspected /= d;
      row.success_pct /= d;
      row.detection_minutes = det_n > 0 ? det_sum / det_n : -1.0;
      rows.push_back(row);
    }
    util::log_info("adaptive-CT ablation: " + strats[si].label + " done");
  }
  return rows;
}

util::Table adaptive_ct_table(const std::vector<AdaptiveRow>& rows) {
  util::Table t({"strategy", "policy", "detected(%)", "detection(min)",
                 "injected_before_cut", "delivered_before_cut",
                 "honest_wrongly_cut", "honest_suspected", "success(%)"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.strategy)
        .cell(r.policy)
        .cell(r.detected_pct, 1)
        .cell(r.detection_minutes, 2)
        .cell(r.injected_before_cut, 0)
        .cell(r.delivered_before_cut, 0)
        .cell(r.honest_false_cuts, 1)
        .cell(r.honest_suspected, 1)
        .cell(r.success_pct, 1);
  }
  return t;
}

util::Table attack_rate_table(const std::vector<RateRow>& rows) {
  util::Table t({"Qd(queries/min/link)", "bad_identified(%)", "detection(min)",
                 "damage_undefended(%)", "damage_dd_police(%)"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.attack_rate_per_minute, 0)
        .cell(r.bad_identified_pct, 1)
        .cell(r.detection_minutes, 2)
        .cell(r.stabilized_damage_undefended, 1)
        .cell(r.stabilized_damage_defended, 1);
  }
  return t;
}

}  // namespace ddp::experiments
