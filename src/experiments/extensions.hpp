#pragma once

/// \file extensions.hpp
/// Studies beyond the paper's printed evaluation: the quantified defense
/// comparison its related-work section argues qualitatively (Sec. 4), and
/// the robustness ablations its future-work section motivates (Sec. 5) —
/// topology family, churn regime, attacker persistence (rejoin) and
/// attack-rate detectability.

#include "experiments/figures.hpp"

namespace ddp::experiments {

// ------------------------------------------------- defense comparison

struct DefenseRow {
  std::string defense;
  double success_pct = 0.0;
  double response_s = 0.0;
  double traffic_per_minute = 0.0;
  double false_negative = 0.0;   ///< good peers wrongly cut
  double bad_identified_pct = 0.0;
  double stabilized_damage = 0.0;
  // Fault-injection tallies (trailing columns; zero on fault-free runs).
  double fault_timeouts = 0.0;
  double fault_retries = 0.0;
  double fault_corrupt_rejects = 0.0;
  double fault_crashed = 0.0;
  double fault_stalled = 0.0;
};

/// All four defenses under the identical campaign (plus the healthy
/// baseline row). Quantifies Sec. 4's qualitative claims: the naive
/// strawman cuts forwarders, fair-share survives but cannot identify,
/// DD-POLICE both restores service and names the agents.
/// Pass a non-trivial `fault` to run the whole comparison on a degraded
/// control plane; its counters land in the table's trailing columns.
std::vector<DefenseRow> run_defense_comparison(
    const Scale& scale, std::size_t agents, std::uint64_t seed,
    const fault::FaultConfig& fault = {});

util::Table defense_table(const std::vector<DefenseRow>& rows);

// ------------------------------------------------- fault ablation

struct FaultRow {
  double loss = 0.0;      ///< channel drop probability swept
  double jitter_s = 0.0;  ///< channel delay jitter swept, seconds
  double success_pct = 0.0;
  double response_s = 0.0;
  double false_negative = 0.0;   ///< good peers wrongly cut
  double false_positive = 0.0;   ///< agents missed
  double false_judgment = 0.0;   ///< sum of the two misjudgment kinds
  double recovery_minutes = 0.0;
  double stabilized_damage = 0.0;
  double timeouts = 0.0;
  double retries = 0.0;
  double late_replies = 0.0;
  double corrupt_rejects = 0.0;
  double crashed = 0.0;
  double stalled = 0.0;
};

/// DD-POLICE detection quality as the control plane degrades: sweeps
/// message-loss probability x delay jitter on the Neighbor_List /
/// Neighbor_Traffic channel (corruption rides along at loss/4). The
/// loss = jitter = 0 row exercises the exact fault-free code path, so it
/// doubles as a regression anchor: its decisions are bit-identical to a
/// run without any fault plane.
std::vector<FaultRow> run_fault_ablation(const Scale& scale,
                                         std::size_t agents,
                                         std::uint64_t seed,
                                         const std::vector<double>& losses,
                                         const std::vector<double>& jitters);

util::Table fault_table(const std::vector<FaultRow>& rows);

// -------------------------------------------------- topology ablation

struct TopologyRow {
  std::string model;
  double baseline_success_pct = 0.0;
  double attacked_success_pct = 0.0;
  double defended_success_pct = 0.0;
  double detection_minutes = 0.0;
  double false_negative = 0.0;
};

/// DD-POLICE across overlay families (Barabási–Albert / Waxman /
/// Erdős–Rényi) — the defense must not depend on the power-law shape.
std::vector<TopologyRow> run_topology_ablation(const Scale& scale,
                                               std::size_t agents,
                                               std::uint64_t seed);

util::Table topology_table(const std::vector<TopologyRow>& rows);

// ---------------------------------------- cutoff-exponent ablation

struct CutoffRow {
  double cutoff_exponent = 0.0;  ///< hc_cutoff_exponent swept
  double cutoff_degree = 0.0;    ///< resulting hard cap k_c on node degree
  double detected_pct = 0.0;     ///< agents ever cut
  double detection_minutes = 0.0;  ///< activation -> first cut; -1 = never
  double injected_before_cut = 0.0;   ///< residual attack traffic per agent
  double delivered_before_cut = 0.0;  ///< ...of which reached the overlay
  double honest_false_cuts = 0.0;     ///< good peers wrongly cut
  double success_pct = 0.0;
};

/// DD-POLICE on the hub-suppressed scale-free family: sweeps the
/// hard-cutoff generator's exponent (k_c = n^(1/exponent), exponent 1 =
/// plain Barabási–Albert, larger = harder hub cap) and records detection
/// latency, false cuts and the attack traffic each agent lands before its
/// verdict. The interesting axis: capping hubs removes the high-degree
/// peers whose buddy groups are largest (k big -> strong relay bound), so
/// the study shows whether the defense leans on hubs or works as well
/// when the flood has to spread through mid-degree peers.
std::vector<CutoffRow> run_cutoff_ablation(const Scale& scale,
                                           std::size_t agents,
                                           std::uint64_t seed,
                                           const std::vector<double>& exponents);

util::Table cutoff_table(const std::vector<CutoffRow>& rows);

// ----------------------------------------------------- churn ablation

struct ChurnRow {
  std::string regime;  ///< "static", "paper", "fast", distribution names
  double mean_lifetime_minutes = 0.0;
  double false_negative = 0.0;
  double false_positive = 0.0;
  double stabilized_damage = 0.0;
};

/// Sensitivity of the buddy-group scheme to membership dynamics: a static
/// overlay, the paper's 60-minute lifetimes, a fast-churn regime, and the
/// alternative lifetime distributions.
std::vector<ChurnRow> run_churn_ablation(const Scale& scale,
                                         std::size_t agents,
                                         std::uint64_t seed);

util::Table churn_table(const std::vector<ChurnRow>& rows);

// ------------------------------------------------ rejoin persistence

struct RejoinRow {
  std::string mode;  ///< "one-shot" or "rejoin every X min"
  double rejoin_after_minutes = 0.0;
  double stabilized_damage = 0.0;
  double attack_rejoins = 0.0;
  double bad_cut_events = 0.0;
};

/// Sec. 3.7.2 notes that nothing stops an isolated agent from walking
/// back in; this study quantifies the resulting steady state where
/// DD-POLICE re-detects agents every round trip.
std::vector<RejoinRow> run_rejoin_study(const Scale& scale, std::size_t agents,
                                        std::uint64_t seed);

util::Table rejoin_table(const std::vector<RejoinRow>& rows);

// ------------------------------------------------ attack-rate sweep

struct RateRow {
  double attack_rate_per_minute = 0.0;
  double bad_identified_pct = 0.0;
  double detection_minutes = 0.0;
  double stabilized_damage_undefended = 0.0;
  double stabilized_damage_defended = 0.0;
};

/// How slow can an agent go and still be caught? Sweeps the per-link
/// sourcing rate Q_d below and above the warning threshold: the
/// detectability cliff is the protocol's blind spot (an agent throttled
/// under the warning threshold is invisible — but also nearly harmless).
std::vector<RateRow> run_attack_rate_sweep(const Scale& scale,
                                           std::size_t agents,
                                           std::uint64_t seed);

util::Table attack_rate_table(const std::vector<RateRow>& rows);

// -------------------------------------------- adaptive-CT ablation

struct AdaptiveRow {
  std::string strategy;  ///< attacker / workload variant
  std::string policy;    ///< "static" or "adaptive"
  double detected_pct = 0.0;         ///< agents ever cut
  double detection_minutes = 0.0;    ///< activation -> first cut; -1 = never
  double injected_before_cut = 0.0;  ///< mean per agent (whole run if uncut)
  double delivered_before_cut = 0.0;
  double honest_false_cuts = 0.0;    ///< good peers wrongly cut
  double honest_suspected = 0.0;     ///< honest peers the defense flagged
  double success_pct = 0.0;
};

/// Static-vs-adaptive cut bands against the attackers the paper's global
/// constants cannot see: a low-and-slow ramp and an on-off pulse that stay
/// under the 500 q/min warning threshold, a threshold-probing agent, a
/// colluding buddy group covering its own — plus a flash crowd (agents = 0)
/// as the false-cut stressor. Every run has forensics on; detection latency
/// and damage-before-cut come from the per-agent storylines.
std::vector<AdaptiveRow> run_adaptive_ct_ablation(const Scale& scale,
                                                  std::size_t agents,
                                                  std::uint64_t seed);

util::Table adaptive_ct_table(const std::vector<AdaptiveRow>& rows);

}  // namespace ddp::experiments
