#include "experiments/figures.hpp"

#include <algorithm>

#include "experiments/sweep.hpp"
#include "topology/coverage.hpp"
#include "util/config.hpp"
#include "util/log.hpp"

namespace ddp::experiments {

namespace {

/// Configure a scenario at the sweep's scale.
ScenarioConfig scaled_scenario(const Scale& scale, std::size_t agents,
                               defense::Kind kind, std::uint64_t seed) {
  ScenarioConfig cfg = paper_scenario(scale.peers, agents, kind, seed);
  cfg.total_minutes = scale.total_minutes;
  cfg.warmup_minutes = scale.warmup_minutes;
  cfg.attack.start_minute = scale.attack_start;
  return cfg;
}

}  // namespace

Scale default_scale() {
  Scale s;
  if (util::full_scale_requested()) {
    s.peers = 2000;
    s.total_minutes = 40.0;
    s.attack_start = 5.0;
    s.warmup_minutes = 10.0;
    s.trials = 3;
  }
  s.trials = util::env_trials(s.trials);
  s.jobs = util::env_jobs(s.jobs);
  return s;
}

// ================================================================ Figs 9-11

std::vector<AgentSweepRow> run_agent_sweep(const Scale& scale,
                                           std::uint64_t seed) {
  // One sweep unit per (agent-count, trial) cell; each unit builds its
  // whole world from its own seed, so units are embarrassingly parallel.
  struct Cell {
    double traffic_none, traffic_ddp, traffic_base;
    double response_none, response_ddp, response_base;
    double success_none, success_ddp, success_base;
  };
  SweepRunner runner(scale.jobs);
  const auto cells = runner.map(
      scale.agent_counts.size() * scale.trials, [&](std::size_t idx) {
        const std::size_t k = scale.agent_counts[idx / scale.trials];
        const auto t = static_cast<std::uint32_t>(idx % scale.trials);
        const std::uint64_t s = seed + 1000003ULL * t;
        const auto r_base =
            run_baseline(scaled_scenario(scale, 0, defense::Kind::kNone, s));
        const auto r_none = k == 0
                                ? r_base
                                : run_scenario(scaled_scenario(
                                      scale, k, defense::Kind::kNone, s));
        const auto r_ddp = run_scenario(
            scaled_scenario(scale, k, defense::Kind::kDdPolice, s));
        return Cell{r_none.summary.avg_traffic_per_minute,
                    r_ddp.summary.avg_traffic_per_minute,
                    r_base.summary.avg_traffic_per_minute,
                    r_none.summary.avg_response_time,
                    r_ddp.summary.avg_response_time,
                    r_base.summary.avg_response_time,
                    r_none.summary.avg_success_rate,
                    r_ddp.summary.avg_success_rate,
                    r_base.summary.avg_success_rate};
      });
  // Reduce in the serial loops' exact (agent-count, trial) order so the
  // float accumulation — and therefore the output — is jobs-invariant.
  std::vector<AgentSweepRow> rows;
  for (std::size_t ki = 0; ki < scale.agent_counts.size(); ++ki) {
    const std::size_t k = scale.agent_counts[ki];
    AgentSweepRow row;
    row.agents = k;
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      const Cell& c = cells[ki * scale.trials + t];
      row.traffic_none += c.traffic_none;
      row.traffic_ddp += c.traffic_ddp;
      row.traffic_base += c.traffic_base;
      row.response_none += c.response_none;
      row.response_ddp += c.response_ddp;
      row.response_base += c.response_base;
      row.success_none += c.success_none;
      row.success_ddp += c.success_ddp;
      row.success_base += c.success_base;
    }
    const double d = static_cast<double>(scale.trials);
    row.traffic_none /= d;
    row.traffic_ddp /= d;
    row.traffic_base /= d;
    row.response_none /= d;
    row.response_ddp /= d;
    row.response_base /= d;
    row.success_none /= d;
    row.success_ddp /= d;
    row.success_base /= d;
    rows.push_back(row);
    util::log_info("agent sweep: k=" + std::to_string(k) + " done");
  }
  return rows;
}

util::Table fig9_traffic_table(const std::vector<AgentSweepRow>& rows) {
  util::Table t({"agents", "traffic_no_defense(10^3/min)",
                 "traffic_dd_police(10^3/min)", "traffic_no_attack(10^3/min)"});
  for (const auto& r : rows) {
    t.row()
        .cell(static_cast<std::uint64_t>(r.agents))
        .cell(r.traffic_none / 1000.0, 1)
        .cell(r.traffic_ddp / 1000.0, 1)
        .cell(r.traffic_base / 1000.0, 1);
  }
  return t;
}

util::Table fig10_response_table(const std::vector<AgentSweepRow>& rows) {
  util::Table t({"agents", "response_no_defense(s)", "response_dd_police(s)",
                 "response_no_attack(s)"});
  for (const auto& r : rows) {
    t.row()
        .cell(static_cast<std::uint64_t>(r.agents))
        .cell(r.response_none, 3)
        .cell(r.response_ddp, 3)
        .cell(r.response_base, 3);
  }
  return t;
}

util::Table fig11_success_table(const std::vector<AgentSweepRow>& rows) {
  util::Table t({"agents", "success_no_defense(%)", "success_dd_police(%)",
                 "success_no_attack(%)"});
  for (const auto& r : rows) {
    t.row()
        .cell(static_cast<std::uint64_t>(r.agents))
        .cell(r.success_none * 100.0, 1)
        .cell(r.success_ddp * 100.0, 1)
        .cell(r.success_base * 100.0, 1);
  }
  return t;
}

// ==================================================================== Fig 12

DamageTimelines run_damage_timelines(const Scale& scale,
                                     const std::vector<double>& cut_thresholds,
                                     std::size_t agents, std::uint64_t seed) {
  DamageTimelines out;

  // Baseline success for the damage definition (Sec. 3.7.2).
  const auto base =
      run_baseline(scaled_scenario(scale, 0, defense::Kind::kNone, seed));
  const double s_base = base.summary.avg_success_rate;

  auto damage_series = [&](const ScenarioResult& r) {
    std::vector<double> d;
    for (const auto& m : r.history) {
      d.push_back(s_base > 0.0
                      ? std::max(0.0, (s_base - m.success_rate) / s_base) * 100.0
                      : 0.0);
    }
    return d;
  };

  const auto none =
      run_scenario(scaled_scenario(scale, agents, defense::Kind::kNone, seed));
  out.minutes.clear();
  for (const auto& m : none.history) out.minutes.push_back(m.minute);
  out.series["no DD-POLICE"] = damage_series(none);

  for (double ct : cut_thresholds) {
    ScenarioConfig cfg =
        scaled_scenario(scale, agents, defense::Kind::kDdPolice, seed);
    cfg.ddpolice.cut_threshold = ct;
    const auto r = run_scenario(cfg);
    out.series["DD-POLICE-" + util::format_double(ct, 0)] = damage_series(r);
  }
  return out;
}

util::Table fig12_damage_table(const DamageTimelines& timelines) {
  std::vector<std::string> headers{"minute"};
  for (const auto& [label, series] : timelines.series) headers.push_back(label);
  util::Table t(headers);
  for (std::size_t i = 0; i < timelines.minutes.size(); ++i) {
    t.row().cell(timelines.minutes[i], 0);
    for (const auto& [label, series] : timelines.series) {
      t.cell(i < series.size() ? series[i] : 0.0, 1);
    }
  }
  return t;
}

// ================================================================ Figs 13-14

std::vector<CtSweepRow> run_ct_sweep(const Scale& scale,
                                     const std::vector<double>& cut_thresholds,
                                     std::size_t agents, std::uint64_t seed,
                                     bool with_quarantine) {
  // Shared baseline success per seed for recovery analysis.
  std::vector<CtSweepRow> rows;
  for (double ct : cut_thresholds) {
    CtSweepRow row;
    row.cut_threshold = ct;
    double det_sum = 0.0;
    std::uint32_t det_n = 0;
    double reinstate_sum = 0.0;
    std::uint64_t reinstate_n = 0;
    double reinstated_success_sum = 0.0;
    std::uint32_t reinstated_success_n = 0;
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      const std::uint64_t s = seed + 1000003ULL * t;
      const auto base =
          run_baseline(scaled_scenario(scale, 0, defense::Kind::kNone, s));
      ScenarioConfig cfg =
          scaled_scenario(scale, agents, defense::Kind::kDdPolice, s);
      cfg.ddpolice.cut_threshold = ct;
      const auto r = run_scenario(cfg);
      row.false_negative += static_cast<double>(r.errors.false_negative);
      row.false_positive += static_cast<double>(r.errors.false_positive);
      row.false_judgment += static_cast<double>(r.errors.false_judgment);
      const auto dmg = metrics::analyze_damage(
          r.history, base.summary.avg_success_rate, scale.attack_start);
      row.stabilized_damage += dmg.stabilized_damage;
      // A run whose damage never recovers contributes the remaining run
      // length (a conservative lower bound, flagged in EXPERIMENTS.md).
      row.recovery_minutes += dmg.recovery_minutes >= 0.0
                                  ? dmg.recovery_minutes
                                  : scale.total_minutes - scale.attack_start;
      if (r.errors.mean_detection_minute >= 0.0) {
        det_sum += r.errors.mean_detection_minute;
        ++det_n;
      }
      if (with_quarantine) {
        // Same seed, same threshold, quarantine ladder instead of the
        // permanent cut: how fast does a falsely cut honest peer get its
        // service back, and what does that do to S(t)?
        ScenarioConfig qcfg = cfg;
        qcfg.ddpolice.cut_policy = core::CutPolicy::kQuarantine;
        // The recovery receipt: each minute, score every reinstated honest
        // peer's own flood through the engine's hit model. The hook
        // overwrites the capture, so the last completed minute wins — an
        // end-of-run snapshot. While cut the same peers sit at reach 0.
        double trial_reinstated_success = -1.0;
        qcfg.inspect = [&trial_reinstated_success](double /*minute*/,
                                                   const ScenarioView& view) {
          if (view.ledger == nullptr || view.net == nullptr ||
              view.attack == nullptr) {
            return;
          }
          std::vector<PeerId> peers;
          for (const auto& rec : view.ledger->reinstatements()) {
            peers.push_back(rec.peer);
          }
          std::sort(peers.begin(), peers.end());
          peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
          const auto& g = view.net->graph();
          double sum = 0.0;
          std::size_t n = 0;
          for (PeerId p : peers) {
            if (view.attack->is_agent(p)) continue;
            if (p >= g.node_count() || !g.is_active(p)) continue;
            if (view.ledger->standing(p) != core::Standing::kClear) continue;
            const auto prof =
                topology::flood_coverage(g, p, view.net->config().ttl);
            sum += view.net->content().average_hit_probability(
                prof.total_reach());
            ++n;
          }
          if (n > 0) trial_reinstated_success = sum / static_cast<double>(n);
        };
        const auto qr = run_scenario(qcfg);
        if (trial_reinstated_success >= 0.0) {
          reinstated_success_sum += trial_reinstated_success;
          ++reinstated_success_n;
        }
        row.success_permanent += r.summary.avg_success_rate;
        row.success_quarantine += qr.summary.avg_success_rate;
        std::vector<PeerId> honest_peers;
        for (const auto& rec : qr.reinstatements) {
          if (rec.peer < qr.is_bad.size() && qr.is_bad[rec.peer] == 0) {
            reinstate_sum += rec.reinstate_minute - rec.cut_minute;
            ++reinstate_n;
            honest_peers.push_back(rec.peer);
          }
        }
        std::sort(honest_peers.begin(), honest_peers.end());
        honest_peers.erase(
            std::unique(honest_peers.begin(), honest_peers.end()),
            honest_peers.end());
        row.honest_reinstated += static_cast<double>(honest_peers.size());
      }
    }
    const double d = static_cast<double>(scale.trials);
    row.false_negative /= d;
    row.false_positive /= d;
    row.false_judgment /= d;
    row.recovery_minutes /= d;
    row.stabilized_damage /= d;
    row.detection_minutes = det_n > 0 ? det_sum / det_n : -1.0;
    if (with_quarantine) {
      // Fields start at the -1 "not measured" sentinel; shift it out
      // before averaging the accumulated trial sums.
      row.success_permanent = (row.success_permanent + 1.0) / d;
      row.success_quarantine = (row.success_quarantine + 1.0) / d;
      row.honest_reinstated /= d;
      row.reinstate_minutes =
          reinstate_n > 0 ? reinstate_sum / static_cast<double>(reinstate_n)
                          : -1.0;
      row.reinstated_success =
          reinstated_success_n > 0
              ? reinstated_success_sum /
                    static_cast<double>(reinstated_success_n)
              : -1.0;
    }
    rows.push_back(row);
    util::log_info("ct sweep: CT=" + util::format_double(ct, 1) + " done");
  }
  return rows;
}

util::Table fig13_errors_table(const std::vector<CtSweepRow>& rows) {
  // The quarantine columns only appear when the sweep measured them, so
  // a permanent-cut-only sweep renders the exact pre-extension table.
  const bool quarantine =
      !rows.empty() && rows.front().success_quarantine >= 0.0;
  std::vector<std::string> headers{"cut_threshold", "false_negative(good cut)",
                                   "false_positive(bad missed)",
                                   "false_judgment"};
  if (quarantine) {
    headers.insert(headers.end(),
                   {"reinstate_time(min)", "honest_reinstated",
                    "reinstated_success(%)", "success_permanent(%)",
                    "success_quarantine(%)"});
  }
  util::Table t(headers);
  for (const auto& r : rows) {
    t.row()
        .cell(r.cut_threshold, 0)
        .cell(r.false_negative, 1)
        .cell(r.false_positive, 1)
        .cell(r.false_judgment, 1);
    if (quarantine) {
      t.cell(r.reinstate_minutes, 2)
          .cell(r.honest_reinstated, 1)
          .cell(r.reinstated_success < 0.0 ? -1.0
                                           : r.reinstated_success * 100.0,
                1)
          .cell(r.success_permanent * 100.0, 1)
          .cell(r.success_quarantine * 100.0, 1);
    }
  }
  return t;
}

util::Table fig14_recovery_table(const std::vector<CtSweepRow>& rows) {
  util::Table t({"cut_threshold", "recovery_time(min)", "detection_time(min)",
                 "stabilized_damage(%)"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.cut_threshold, 0)
        .cell(r.recovery_minutes, 2)
        .cell(r.detection_minutes, 2)
        .cell(r.stabilized_damage, 1);
  }
  return t;
}

// ========================================================== Sec. 3.7.1 study

std::vector<FreqSweepRow> run_exchange_frequency_study(
    const Scale& scale, const std::vector<double>& periods_minutes,
    bool include_event_driven, std::size_t agents, std::uint64_t seed) {
  std::vector<FreqSweepRow> rows;

  auto run_policy = [&](core::ExchangePolicy policy, double period) {
    FreqSweepRow row;
    row.period_minutes = period;
    row.policy = policy == core::ExchangePolicy::kEventDriven
                     ? "event-driven"
                     : "periodic s=" + util::format_double(period, 0);
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      const std::uint64_t s = seed + 1000003ULL * t;
      const auto base =
          run_baseline(scaled_scenario(scale, 0, defense::Kind::kNone, s));
      ScenarioConfig cfg =
          scaled_scenario(scale, agents, defense::Kind::kDdPolice, s);
      cfg.ddpolice.exchange_policy = policy;
      cfg.ddpolice.exchange_period_minutes = period;
      const auto r = run_scenario(cfg);
      row.false_negative += static_cast<double>(r.errors.false_negative);
      row.false_positive += static_cast<double>(r.errors.false_positive);
      row.false_judgment += static_cast<double>(r.errors.false_judgment);
      row.exchange_msgs_per_minute +=
          static_cast<double>(r.defense_exchange_messages) /
          scale.total_minutes;
      const auto dmg = metrics::analyze_damage(
          r.history, base.summary.avg_success_rate, scale.attack_start);
      row.stabilized_damage += dmg.stabilized_damage;
    }
    const double d = static_cast<double>(scale.trials);
    row.false_negative /= d;
    row.false_positive /= d;
    row.false_judgment /= d;
    row.exchange_msgs_per_minute /= d;
    row.stabilized_damage /= d;
    rows.push_back(row);
  };

  for (double p : periods_minutes) run_policy(core::ExchangePolicy::kPeriodic, p);
  if (include_event_driven) {
    run_policy(core::ExchangePolicy::kEventDriven, 0.0);
  }
  return rows;
}

util::Table exchange_frequency_table(const std::vector<FreqSweepRow>& rows) {
  util::Table t({"policy", "false_negative", "false_positive", "false_judgment",
                 "exchange_msgs/min", "stabilized_damage(%)"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.policy)
        .cell(r.false_negative, 1)
        .cell(r.false_positive, 1)
        .cell(r.false_judgment, 1)
        .cell(r.exchange_msgs_per_minute, 0)
        .cell(r.stabilized_damage, 1);
  }
  return t;
}

// ============================================================ Sec. 3.4 study

std::vector<CheatRow> run_cheat_ablation(const Scale& scale, std::size_t agents,
                                         std::uint64_t seed) {
  struct Case {
    attack::ReportStrategy report;
    attack::ListStrategy list;
  };
  const std::vector<Case> cases{
      {attack::ReportStrategy::kHonest, attack::ListStrategy::kHonest},
      {attack::ReportStrategy::kInflate, attack::ListStrategy::kHonest},
      {attack::ReportStrategy::kDeflate, attack::ListStrategy::kHonest},
      {attack::ReportStrategy::kMute, attack::ListStrategy::kHonest},
      {attack::ReportStrategy::kHonest, attack::ListStrategy::kFabricate},
      {attack::ReportStrategy::kHonest, attack::ListStrategy::kWithhold},
  };

  std::vector<CheatRow> rows;
  for (const auto& c : cases) {
    CheatRow row;
    row.report = std::string(attack::report_strategy_name(c.report));
    row.list = std::string(attack::list_strategy_name(c.list));
    double det_sum = 0.0;
    std::uint32_t det_n = 0;
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      const std::uint64_t s = seed + 1000003ULL * t;
      const auto base =
          run_baseline(scaled_scenario(scale, 0, defense::Kind::kNone, s));
      ScenarioConfig cfg =
          scaled_scenario(scale, agents, defense::Kind::kDdPolice, s);
      cfg.attack.behavior.report = c.report;
      cfg.attack.behavior.list = c.list;
      const auto r = run_scenario(cfg);
      const double bad_total = static_cast<double>(agents);
      row.bad_identified_pct +=
          bad_total > 0.0
              ? (bad_total - static_cast<double>(r.errors.false_positive)) /
                    bad_total * 100.0
              : 0.0;
      row.false_negative += static_cast<double>(r.errors.false_negative);
      const auto dmg = metrics::analyze_damage(
          r.history, base.summary.avg_success_rate, scale.attack_start);
      row.stabilized_damage += dmg.stabilized_damage;
      if (r.errors.mean_detection_minute >= 0.0) {
        det_sum += r.errors.mean_detection_minute;
        ++det_n;
      }
    }
    const double d = static_cast<double>(scale.trials);
    row.bad_identified_pct /= d;
    row.false_negative /= d;
    row.stabilized_damage /= d;
    row.detection_minutes = det_n > 0 ? det_sum / det_n : -1.0;
    rows.push_back(row);
  }
  return rows;
}

util::Table cheat_table(const std::vector<CheatRow>& rows) {
  util::Table t({"report", "list", "bad_identified(%)", "detection_time(min)",
                 "false_negative", "stabilized_damage(%)"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.report)
        .cell(r.list)
        .cell(r.bad_identified_pct, 1)
        .cell(r.detection_minutes, 2)
        .cell(r.false_negative, 1)
        .cell(r.stabilized_damage, 1);
  }
  return t;
}

// ============================================================ Sec. 3.5 study

std::vector<RadiusRow> run_radius_ablation(const Scale& scale,
                                           std::size_t agents,
                                           std::uint64_t seed) {
  std::vector<RadiusRow> rows;
  for (int radius : {1, 2}) {
    for (auto report :
         {attack::ReportStrategy::kHonest, attack::ReportStrategy::kDeflate}) {
      RadiusRow row;
      row.radius = radius;
      row.report = std::string(attack::report_strategy_name(report));
      for (std::uint32_t t = 0; t < scale.trials; ++t) {
        const std::uint64_t s = seed + 1000003ULL * t;
        const auto base =
            run_baseline(scaled_scenario(scale, 0, defense::Kind::kNone, s));
        ScenarioConfig cfg =
            scaled_scenario(scale, agents, defense::Kind::kDdPolice, s);
        cfg.ddpolice.buddy_radius = radius;
        cfg.attack.behavior.report = report;
        const auto r = run_scenario(cfg);
        row.false_negative += static_cast<double>(r.errors.false_negative);
        row.false_positive += static_cast<double>(r.errors.false_positive);
        const auto dmg = metrics::analyze_damage(
            r.history, base.summary.avg_success_rate, scale.attack_start);
        row.stabilized_damage += dmg.stabilized_damage;
        row.overhead_msgs_per_minute +=
            static_cast<double>(r.defense_traffic_messages) /
            scale.total_minutes;
      }
      const double d = static_cast<double>(scale.trials);
      row.false_negative /= d;
      row.false_positive /= d;
      row.stabilized_damage /= d;
      row.overhead_msgs_per_minute /= d;
      rows.push_back(row);
    }
  }
  return rows;
}

util::Table radius_table(const std::vector<RadiusRow>& rows) {
  util::Table t({"r", "agents_report", "false_negative", "false_positive",
                 "stabilized_damage(%)", "protocol_msgs/min"});
  for (const auto& r : rows) {
    t.row()
        .cell(static_cast<std::int64_t>(r.radius))
        .cell(r.report)
        .cell(r.false_negative, 1)
        .cell(r.false_positive, 1)
        .cell(r.stabilized_damage, 1)
        .cell(r.overhead_msgs_per_minute, 0);
  }
  return t;
}

}  // namespace ddp::experiments
