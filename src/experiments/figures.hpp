#pragma once

/// \file figures.hpp
/// Regeneration of every evaluation artifact in the paper: one entry point
/// per figure/table, each returning the raw sweep rows plus a formatted
/// util::Table that prints the same series the paper plots. Bench binaries
/// are thin wrappers over these; integration tests assert the paper-shape
/// properties on reduced scales.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "util/table.hpp"

namespace ddp::experiments {

/// Common sweep scale; default is laptop-sized, DDP_FULL=1 selects the
/// paper's 2,000-peer configuration.
struct Scale {
  std::size_t peers = 600;
  double total_minutes = 26.0;
  double attack_start = 5.0;
  double warmup_minutes = 8.0;  ///< measurement window start (post-attack)
  std::uint32_t trials = 2;
  std::vector<std::size_t> agent_counts{0, 1, 2, 5, 10, 20, 50, 100, 200};
  /// Worker threads for the sweeps built on SweepRunner (0 = one per
  /// hardware thread). Results are jobs-invariant: every reduction runs
  /// in the serial loops' index order, so jobs only changes wall clock.
  unsigned jobs = 1;
};

/// Laptop scale, or the paper's full scale when DDP_FULL is set; trials
/// overridable via DDP_TRIALS, jobs via DDP_JOBS.
Scale default_scale();

// ---------------------------------------------------------------- Figs 9-11
struct AgentSweepRow {
  std::size_t agents = 0;
  // Curves: attacked/no defense, attacked/DD-POLICE, no attack.
  double traffic_none = 0.0, traffic_ddp = 0.0, traffic_base = 0.0;
  double response_none = 0.0, response_ddp = 0.0, response_base = 0.0;
  double success_none = 0.0, success_ddp = 0.0, success_base = 0.0;
};

std::vector<AgentSweepRow> run_agent_sweep(const Scale& scale,
                                           std::uint64_t seed);

util::Table fig9_traffic_table(const std::vector<AgentSweepRow>& rows);
util::Table fig10_response_table(const std::vector<AgentSweepRow>& rows);
util::Table fig11_success_table(const std::vector<AgentSweepRow>& rows);

// ----------------------------------------------------------------- Fig 12
struct DamageTimelines {
  std::vector<double> minutes;                    ///< sample times
  std::map<std::string, std::vector<double>> series;  ///< label -> D(t) %
};

/// Damage-rate D(t) under a fixed attack for no-defense and DD-POLICE at
/// the given cut thresholds (paper: CT in {3, 7, 10}, 100 agents).
DamageTimelines run_damage_timelines(const Scale& scale,
                                     const std::vector<double>& cut_thresholds,
                                     std::size_t agents, std::uint64_t seed);

util::Table fig12_damage_table(const DamageTimelines& timelines);

// -------------------------------------------------------------- Figs 13-14
struct CtSweepRow {
  double cut_threshold = 0.0;
  double false_negative = 0.0;   ///< good peers wrongly cut (paper naming)
  double false_positive = 0.0;   ///< bad peers not identified
  double false_judgment = 0.0;
  double recovery_minutes = 0.0; ///< damage 20% -> 15% (Fig 14)
  double detection_minutes = 0.0;
  double stabilized_damage = 0.0;

  // Self-healing extension, filled only when run_ct_sweep also ran the
  // quarantine-policy variant (-1 marks "not measured"). The permanent-cut
  // columns above are computed from the exact same runs either way.
  double reinstate_minutes = -1.0;   ///< mean cut->reinstate latency, honest peers
  double honest_reinstated = 0.0;    ///< honest peers reinstated, per trial
  double success_permanent = -1.0;   ///< avg S(t) under CutPolicy::kPermanent
  double success_quarantine = -1.0;  ///< avg S(t) under CutPolicy::kQuarantine
  /// Mean end-of-run per-peer success probability of the reinstated honest
  /// peers (their own reach through the engine's hit model). While cut the
  /// same peers sit at 0 — under kPermanent they stay there forever — so
  /// this column is the direct "service recovered" receipt.
  double reinstated_success = -1.0;
};

/// Error counts vs. cut threshold (Figs 13-14). When `with_quarantine` is
/// set, each threshold additionally runs the same seeds under
/// CutPolicy::kQuarantine to measure the mean time-to-reinstate of falsely
/// cut honest peers and the success-rate recovery it buys; the
/// permanent-cut error columns are untouched by the extra runs.
std::vector<CtSweepRow> run_ct_sweep(const Scale& scale,
                                     const std::vector<double>& cut_thresholds,
                                     std::size_t agents, std::uint64_t seed,
                                     bool with_quarantine = false);

util::Table fig13_errors_table(const std::vector<CtSweepRow>& rows);
util::Table fig14_recovery_table(const std::vector<CtSweepRow>& rows);

// ------------------------------------------------- Sec. 3.7.1 (frequency)
struct FreqSweepRow {
  std::string policy;            ///< "periodic s=2" or "event-driven"
  double period_minutes = 0.0;   ///< 0 for event-driven
  double false_negative = 0.0;
  double false_positive = 0.0;
  double false_judgment = 0.0;
  double exchange_msgs_per_minute = 0.0;
  double stabilized_damage = 0.0;
};

std::vector<FreqSweepRow> run_exchange_frequency_study(
    const Scale& scale, const std::vector<double>& periods_minutes,
    bool include_event_driven, std::size_t agents, std::uint64_t seed);

util::Table exchange_frequency_table(const std::vector<FreqSweepRow>& rows);

// ------------------------------------------------------ Sec. 3.4 (cheating)
struct CheatRow {
  std::string report;  ///< honest / inflate / deflate / mute
  std::string list;    ///< honest / fabricate / withhold
  double detection_minutes = 0.0;   ///< mean first-detection latency
  double bad_identified_pct = 0.0;  ///< agents detected at least once
  double false_negative = 0.0;
  double stabilized_damage = 0.0;
};

std::vector<CheatRow> run_cheat_ablation(const Scale& scale, std::size_t agents,
                                         std::uint64_t seed);

util::Table cheat_table(const std::vector<CheatRow>& rows);

// ------------------------------------------------------- Sec. 3.5 (radius)
struct RadiusRow {
  int radius = 1;
  std::string report;  ///< agents' reporting strategy
  double false_negative = 0.0;
  double false_positive = 0.0;
  double stabilized_damage = 0.0;
  double overhead_msgs_per_minute = 0.0;
};

std::vector<RadiusRow> run_radius_ablation(const Scale& scale,
                                           std::size_t agents,
                                           std::uint64_t seed);

util::Table radius_table(const std::vector<RadiusRow>& rows);

}  // namespace ddp::experiments
