#include "experiments/runtime.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/adaptive.hpp"
#include "flow/flow_port.hpp"
#include "snapshot/state_io.hpp"
#include "topology/bandwidth.hpp"

namespace ddp::experiments {

namespace {

/// Reconnect active good peers that fell below the minimum degree —
/// modelling Gnutella's host-cache-driven connection maintenance. Peers
/// the quarantine ledger keeps isolated are skipped on both ends: a host
/// cache handing out a quarantined address would undo the defense.
void maintain_overlay(flow::FlowNetwork& net, const attack::AttackScenario& atk,
                      util::Rng& rng, std::size_t min_degree,
                      double rate_per_minute,
                      const core::QuarantineLedger* ledger) {
  auto& g = net.mutable_graph();
  for (PeerId p = 0; p < g.node_count(); ++p) {
    if (!g.is_active(p) || atk.is_agent(p)) continue;
    if (ledger != nullptr && ledger->blocked(p)) continue;
    if (g.degree(p) >= min_degree) continue;
    if (!rng.chance(rate_per_minute)) continue;  // discovery takes time
    const std::size_t missing = min_degree - g.degree(p);
    for (std::size_t tries = 0, added = 0;
         tries < missing * 8 && added < missing; ++tries) {
      const PeerId t = g.random_active_node_by_degree(rng, p);
      if (t == kInvalidPeer) break;
      if (atk.is_agent(t)) continue;  // host caches would not favour leeches
      if (ledger != nullptr && ledger->blocked(t)) continue;
      if (g.add_edge(p, t)) {
        net.on_edge_added(p, t);
        ++added;
      }
    }
  }
}

constexpr std::uint32_t kSecRun = snapshot::section_id("RUN ");
constexpr std::uint32_t kSecGraph = snapshot::section_id("GRPH");
constexpr std::uint32_t kSecFlow = snapshot::section_id("FLOW");
constexpr std::uint32_t kSecChurn = snapshot::section_id("CHRN");
constexpr std::uint32_t kSecAttack = snapshot::section_id("ATTK");
constexpr std::uint32_t kSecDefense = snapshot::section_id("DEFN");
constexpr std::uint32_t kSecFault = snapshot::section_id("FALT");
constexpr std::uint32_t kSecHeal = snapshot::section_id("HEAL");
constexpr std::uint32_t kSecMaint = snapshot::section_id("MANT");
constexpr std::uint32_t kSecMetrics = snapshot::section_id("METR");
constexpr std::uint32_t kSecSeries = snapshot::section_id("SERS");
constexpr std::uint32_t kSecForensics = snapshot::section_id("FRNS");
constexpr std::uint32_t kSecFlash = snapshot::section_id("FLSH");
constexpr std::uint32_t kSecAdaptive = snapshot::section_id("ADPT");

ScenarioConfig validated(ScenarioConfig config) {
  if (const std::string err = validate_config(config); !err.empty()) {
    throw std::invalid_argument("invalid scenario config: " + err);
  }
  return config;
}

topology::Graph make_graph(const ScenarioConfig& config) {
  util::Rng master(config.seed);
  util::Rng topo_rng = master.fork("topology");
  return topology::generate(config.topo, topo_rng);
}

/// FNV-1a over the behavioural fields of one scenario configuration.
/// Run-shape knobs (total/warmup minutes) and the observability plane are
/// deliberately excluded: a resumed run may extend the horizon or attach
/// different instrumentation without invalidating the snapshot.
class ConfigDigest {
 public:
  void u(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 0x100000001b3ULL;
    }
  }
  void f(double v) noexcept { u(std::bit_cast<std::uint64_t>(v)); }
  void b(bool v) noexcept { u(v ? 1 : 0); }
  std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace

std::uint64_t ScenarioRuntime::config_digest(const ScenarioConfig& c) {
  ConfigDigest d;
  d.u(c.seed);
  d.u(static_cast<std::uint64_t>(c.topo.model));
  d.u(c.topo.nodes);
  d.u(c.topo.two_tier.nodes);
  d.u(c.topo.two_tier.ultrapeers);
  d.u(c.topo.two_tier.core_links_per_node);
  d.u(c.topo.two_tier.leaf_links);
  d.u(c.topo.ba_links_per_node);
  d.f(c.topo.waxman_alpha);
  d.f(c.topo.waxman_beta);
  d.f(c.topo.waxman_target_degree);
  d.f(c.topo.er_target_degree);
  d.f(c.topo.hc_cutoff_exponent);
  d.u(c.content.objects);
  d.f(c.content.popularity_theta);
  d.f(c.content.mean_replicas);
  d.f(c.content.replication_skew);
  d.u(c.content.placement_seed);
  d.b(c.churn.enabled);
  d.u(static_cast<std::uint64_t>(c.churn.distribution));
  d.f(c.churn.mean_lifetime);
  d.f(c.churn.lifetime_variance);
  d.f(c.churn.mean_offline);
  d.u(c.churn.rejoin_links);
  d.f(c.churn.pareto_shape);
  d.u(c.attack.agents);
  d.f(c.attack.start_minute);
  d.f(c.attack.rejoin_after_minutes);
  d.u(c.attack.rejoin_links);
  d.b(c.attack.rejoin);
  d.u(static_cast<std::uint64_t>(c.attack.behavior.report));
  d.u(static_cast<std::uint64_t>(c.attack.behavior.list));
  d.f(c.attack.behavior.inflate_factor);
  d.f(c.attack.behavior.deflate_factor);
  d.u(static_cast<std::uint64_t>(c.attack.sourcing));
  d.f(c.attack.ramp_minutes);
  d.f(c.attack.ramp_target_scale);
  d.f(c.attack.pulse_on_minutes);
  d.f(c.attack.pulse_off_minutes);
  d.f(c.attack.pulse_scale);
  d.f(c.attack.probe_step_scale);
  d.f(c.attack.probe_backoff);
  d.b(c.flash.enabled);
  d.f(c.flash.start_minute);
  d.f(c.flash.surge_minutes);
  d.f(c.flash.repeat_every_minutes);
  d.f(c.flash.surge_factor);
  d.f(c.flash.participation);
  d.u(static_cast<std::uint64_t>(c.defense));
  d.f(c.ddpolice.cut_threshold);
  d.f(c.ddpolice.warning_threshold);
  d.f(c.ddpolice.good_issue_bound);
  d.f(c.ddpolice.capacity_bound_per_minute);
  d.u(static_cast<std::uint64_t>(c.ddpolice.exchange_policy));
  d.f(c.ddpolice.exchange_period_minutes);
  d.b(c.ddpolice.verify_neighbor_lists);
  d.u(static_cast<std::uint64_t>(c.ddpolice.buddy_radius));
  d.f(c.ddpolice.suppression_window_seconds);
  d.f(c.ddpolice.collect_timeout_seconds);
  d.f(c.ddpolice.ping_period_minutes);
  d.u(static_cast<std::uint64_t>(c.ddpolice.max_report_retries));
  d.u(static_cast<std::uint64_t>(c.ddpolice.max_exchange_retries));
  d.f(c.ddpolice.retry_backoff_base_seconds);
  d.u(static_cast<std::uint64_t>(c.ddpolice.cut_policy));
  d.f(c.ddpolice.quarantine_minutes);
  d.f(c.ddpolice.quarantine_growth);
  d.f(c.ddpolice.probation_minutes);
  d.f(c.ddpolice.probation_budget);
  d.u(static_cast<std::uint64_t>(c.ddpolice.probation_links));
  d.u(static_cast<std::uint64_t>(c.ddpolice.max_strikes));
  d.b(c.ddpolice.adaptive.enabled);
  d.u(c.ddpolice.adaptive.window_minutes);
  d.f(c.ddpolice.adaptive.estimate_period_minutes);
  d.u(c.ddpolice.adaptive.min_samples);
  d.f(c.ddpolice.adaptive.k1);
  d.f(c.ddpolice.adaptive.k2);
  d.f(c.ddpolice.adaptive.band_floor);
  d.f(c.ddpolice.adaptive.suspicious_budget);
  d.f(c.ddpolice.adaptive.suspicion_exit_minutes);
  d.f(c.ddpolice.adaptive.malicious_ct);
  d.f(c.naive_cut_threshold);
  d.u(c.flow.ttl);
  d.u(static_cast<std::uint64_t>(c.flow.discipline));
  d.u(static_cast<std::uint64_t>(c.flow.admission));
  d.f(c.flow.control_reserve_fraction);
  d.f(c.flow.tick_seconds);
  d.f(c.flow.capacity_per_minute);
  d.f(c.flow.good_issue_per_minute);
  d.f(c.flow.attack_target_per_minute);
  d.b(c.flow.bandwidth_limits);
  d.f(c.flow.hop_latency);
  d.f(c.flow.max_queue_delay);
  d.f(c.flow.recalibrate_minutes);
  d.u(c.flow.calibration_samples);
  d.f(c.flow.link_reliability);
  d.f(c.fault.channel.drop_probability);
  d.f(c.fault.channel.duplicate_probability);
  d.f(c.fault.channel.corrupt_probability);
  d.f(c.fault.channel.base_delay_seconds);
  d.f(c.fault.channel.delay_jitter_seconds);
  d.f(c.fault.peer.crash_probability_per_minute);
  d.f(c.fault.peer.stall_probability_per_minute);
  d.f(c.fault.peer.stall_duration_seconds);
  d.f(c.fault.peer.slow_peer_fraction);
  d.f(c.fault.peer.slow_factor);
  d.b(c.fault.data_plane);
  d.b(c.maintain_overlay);
  d.u(c.maintain_min_degree);
  d.f(c.maintain_rate_per_minute);
  d.b(c.repair_partitions);
  d.u(static_cast<std::uint64_t>(c.repair.max_attempts));
  d.u(static_cast<std::uint64_t>(c.repair.links));
  return d.value();
}

ScenarioRuntime::~ScenarioRuntime() = default;

ScenarioRuntime::ScenarioRuntime(const ScenarioConfig& config)
    : config_(validated(config)),
      graph_(make_graph(config_)),
      maint_rng_(util::Rng(config_.seed).fork("maintenance")),
      liar_rng_(util::Rng(config_.seed).fork("liar")) {
  util::Rng master(config_.seed);
  {
    util::Rng bw_rng = master.fork("bandwidth");
    bandwidth_ = std::make_unique<topology::BandwidthMap>(graph_.node_count(),
                                                          bw_rng);
  }
  content_ = std::make_unique<workload::ContentModel>(config_.content,
                                                      graph_.node_count());

  flow::FlowConfig flow_cfg = config_.flow;
  if (config_.defense == defense::Kind::kFairShare) {
    flow_cfg.discipline = flow::ServiceDiscipline::kFairShare;
  }
  if (config_.fault.data_plane && config_.fault.channel.any()) {
    // Data-plane degradation: the expected delivered fraction per link
    // (drop removes volume, duplication adds it back). Off by default so
    // the fault ablation isolates control-plane effects.
    flow_cfg.link_reliability =
        std::clamp(1.0 - config_.fault.channel.drop_probability +
                       config_.fault.channel.duplicate_probability,
                   0.0, 2.0);
  }
  net_ = std::make_unique<flow::FlowNetwork>(graph_, *bandwidth_, *content_,
                                             flow_cfg, master.fork("flow"));

  // Fault plane: built only when some fault rate is non-zero, so fault-free
  // runs do not even construct the subsystem (and consume no rng draws —
  // fork() is order-independent, but not constructing is simplest of all).
  if (config_.fault.any()) {
    plane_ = std::make_unique<fault::FaultPlane>(
        config_.fault, graph_.node_count(), master.fork("fault"));
    flow::FlowNetwork* net = net_.get();
    plane_->peers().on_crash = [net](PeerId p) {
      net->on_peer_offline(p);
      net->mutable_graph().set_active(p, false);
    };
    plane_->peers().on_stall = [net](PeerId p) { net->set_issue_scale(p, 0.0); };
    plane_->peers().on_resume = [net](PeerId p) {
      if (net->graph().is_active(p)) net->set_issue_scale(p, 1.0);
    };
  }

  churn_ = std::make_unique<flow::ChurnDriver>(
      *net_, workload::ChurnModel(config_.churn), master.fork("churn"));
  atk_ = std::make_unique<attack::AttackScenario>(*net_, config_.attack,
                                                  master.fork("attack"));

  // The defenses see the engine only through the port seam; the runtime
  // owns the adapter so the core/defense layers never name flow types.
  port_ = std::make_unique<flow::FlowPort>(*net_);
  switch (config_.defense) {
    case defense::Kind::kNone:
      def_ = std::make_unique<defense::NoDefense>();
      break;
    case defense::Kind::kFairShare:
      def_ = std::make_unique<defense::FairShareDefense>();
      break;
    case defense::Kind::kNaiveCut:
      def_ = std::make_unique<defense::NaiveCutDefense>(
          *port_, config_.naive_cut_threshold);
      break;
    case defense::Kind::kDdPolice: {
      auto ddp = std::make_unique<defense::DdPoliceDefense>(
          *port_, config_.ddpolice, master.fork("ddpolice"));
      // Compromised peers cheat per the configured behaviour (Sec. 3.4).
      attack::AttackScenario* atk = atk_.get();
      const attack::AgentBehavior behavior = config_.attack.behavior;
      ddp->protocol().set_report_policy(
          [atk, behavior](PeerId reporter, PeerId suspect,
                          const core::TrafficTruth& truth)
              -> std::optional<core::TrafficTruth> {
            if (!atk->is_agent(reporter)) return truth;
            switch (behavior.report) {
              case attack::ReportStrategy::kHonest:
                return truth;
              case attack::ReportStrategy::kInflate: {
                core::TrafficTruth t = truth;
                t.out_to_suspect *= behavior.inflate_factor;
                return t;
              }
              case attack::ReportStrategy::kDeflate: {
                core::TrafficTruth t = truth;
                t.out_to_suspect *= behavior.deflate_factor;
                return t;
              }
              case attack::ReportStrategy::kMute:
                return std::nullopt;
              case attack::ReportStrategy::kCollude: {
                // Coordinated lying. Input into the suspect *subtracts*
                // in the indicators, so a colluder covers a fellow agent
                // by inflating Q_{m,j} (manufacturing forwardable input
                // that explains the flood) and frames an honest suspect
                // by deflating it (its real forwarding then looks like
                // issuing).
                core::TrafficTruth t = truth;
                if (atk->is_agent(suspect)) {
                  t.out_to_suspect *= behavior.inflate_factor;
                } else {
                  t.out_to_suspect *= behavior.deflate_factor;
                }
                return t;
              }
            }
            return truth;
          });
      if (config_.attack.behavior.list != attack::ListStrategy::kHonest) {
        // The liar stream is a member (not captured by value) so it can be
        // checkpointed; the draw sequence is identical either way.
        has_liar_rng_ = true;
        const attack::ListStrategy ls = config_.attack.behavior.list;
        ddp->protocol().set_list_policy(
            [this, atk, ls](PeerId owner, std::vector<PeerId> truth) {
              if (!atk->is_agent(owner)) return truth;
              if (ls == attack::ListStrategy::kWithhold) {
                if (truth.size() > 1) truth.resize(truth.size() / 2);
                return truth;
              }
              // Fabricate: claim a random non-neighbour as a buddy.
              const PeerId fake =
                  net_->graph().random_active_node(liar_rng_, owner);
              if (fake != kInvalidPeer && !net_->graph().has_edge(owner, fake)) {
                truth.push_back(fake);
              }
              return truth;
            });
      }
      // The flow engine's counters live in a plain cold array once the
      // minute rotates, so the flag scan's reads are const-safe; share the
      // engine's worker pool (null when flow.jobs <= 1 keeps the serial
      // scan). The packet-port harnesses never attach a pool: their
      // sliding-window monitors advance on read.
      ddp->protocol().set_sweep_pool(net_->worker_pool());
      def_ = std::move(ddp);
      break;
    }
  }

  if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def_.get())) {
    ledger_ = ddp->protocol().ledger();
  }

  if (plane_ != nullptr) {
    if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def_.get())) {
      ddp->protocol().set_fault_plane(plane_.get());
    }
    if (ledger_ != nullptr) {
      // A stall resume must not clobber a probation budget: resuming peers
      // come back at whatever rate their ladder standing allows.
      flow::FlowNetwork* net = net_.get();
      const double probation_budget = config_.ddpolice.probation_budget;
      core::QuarantineLedger* ledger_raw = ledger_;
      plane_->peers().on_resume = [net, ledger_raw, probation_budget](PeerId p) {
        if (!net->graph().is_active(p)) return;
        const bool on_probation =
            ledger_raw->standing(p) == core::Standing::kProbation;
        net->set_issue_scale(p, on_probation ? probation_budget : 1.0);
      };
    }
  }

  // Flash crowds: correlated legitimate surges, built only when enabled so
  // the default run constructs nothing. Eligibility keeps the shared
  // issue-scale channel conflict-free: agents (the attack schedule owns
  // their scale), ladder-restricted peers (probation budget) and
  // adaptive-suspicious peers (suspicion budget) are never recruited, so a
  // surge restore can never overwrite a defense-imposed budget.
  if (config_.flash.enabled) {
    flow::FlowNetwork* net = net_.get();
    attack::AttackScenario* atk = atk_.get();
    const core::QuarantineLedger* ledger = ledger_;
    const core::AdaptiveThresholds* adaptive = nullptr;
    if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def_.get())) {
      adaptive = ddp->protocol().adaptive();
    }
    flash_ = std::make_unique<workload::FlashCrowdDriver>(
        config_.flash, graph_.node_count(), master.fork("flash"),
        [net](PeerId p, double scale) { net->set_issue_scale(p, scale); },
        [net, atk, ledger, adaptive](PeerId p) {
          return net->graph().is_active(p) && !atk->is_agent(p) &&
                 (ledger == nullptr || !ledger->restricted(p)) &&
                 (adaptive == nullptr || !adaptive->suspicious(p));
        });
  }

  // Observability plane. Tracing binds the caller's sink to every
  // instrumented subsystem; it only observes, so an untraced run is
  // bit-identical. Forensics folds the same event stream live: the bound
  // sink becomes the accumulator, or a fanout of {caller's sink,
  // accumulator} when both are requested (caller first, so a JSONL trace
  // and the fold see events in the same order). Profiling wraps each
  // minute hook in a wall-clock scope; the metrics hook runs last so it
  // snapshots the settled minute.
  sink_ = config_.obs.trace_sink;
  if (config_.obs.forensics) {
    forensics_ = std::make_shared<obs::ForensicsAccumulator>();
    if (sink_ != nullptr) {
      obs_fanout_.add(sink_);
      obs_fanout_.add(forensics_.get());
      sink_ = &obs_fanout_;
    } else {
      sink_ = forensics_.get();
    }
    atk_->set_trace_agents(true);
  }
  if (sink_ != nullptr) {
    net_->set_trace_sink(sink_);
    churn_->set_trace_sink(sink_);
    atk_->set_trace_sink(sink_);
    if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def_.get())) {
      ddp->protocol().set_trace_sink(sink_);
    }
    if (plane_ != nullptr) {
      plane_->peers().set_trace_sink(sink_);
    }
    if (flash_ != nullptr) {
      flash_->set_trace_sink(sink_);
    }
    obs_tracer_.bind(sink_);
  }
  if (config_.obs.series_window_minutes > 0) {
    series_ = std::make_shared<obs::SeriesStore>(
        graph_, config_.obs.series_window_minutes);
  }
  if (config_.obs.profile) {
    profiler_ = std::make_shared<obs::PhaseProfiler>();
    ph_churn_ = profiler_->phase("churn");
    ph_attack_ = profiler_->phase("attack");
    if (config_.flash.enabled) ph_flash_ = profiler_->phase("flash");
    ph_fault_ = profiler_->phase("fault");
    ph_defense_ = profiler_->phase("defense");
    ph_maintenance_ = profiler_->phase("maintenance");
    if (config_.repair_partitions) ph_repair_ = profiler_->phase("repair");
  }

  register_hooks();
  register_metrics_hook();
  register_obs_hooks();

  if (profiler_ != nullptr) {
    // "flow_ticks" is the engine stepping time *excluding* the hooks, so
    // the phase shares in the report partition the run's wall clock.
    ph_run_ = profiler_->phase("flow_ticks");
  }
}

void ScenarioRuntime::register_hooks() {
  // Hook order matters: churn first (membership), then the attack campaign
  // (start/rejoin), then faults (crash/stall the current membership), then
  // the defense (reads last-minute counters), then overlay maintenance
  // (re-links what the defense cut), then partition repair, inspection and
  // metrics. The order is part of the bit-identity contract and must match
  // what run_scenario always did.
  net_->add_minute_hook(
      [this](double m) { timed(ph_churn_, [&] { churn_->on_minute(m); }); });
  net_->add_minute_hook(
      [this](double m) { timed(ph_attack_, [&] { atk_->on_minute(m); }); });
  if (flash_ != nullptr) {
    // After the attack hook (membership + agent scales settled), before
    // faults and the defense — a surge this minute is visible to the same
    // minute's fault draws and to next minute's monitor samples.
    net_->add_minute_hook(
        [this](double m) { timed(ph_flash_, [&] { flash_->on_minute(m); }); });
  }
  if (plane_ != nullptr) {
    net_->add_minute_hook([this](double m) {
      timed(ph_fault_, [&] {
        plane_->on_minute(m);
        // Churn can resurrect a crash-stopped peer (rejoin draws know
        // nothing of the fault process): put it back down — crash-stop is
        // permanent.
        auto& g = net_->mutable_graph();
        for (PeerId p = 0; p < g.node_count(); ++p) {
          if (plane_->peers().is_crashed(p) && g.is_active(p)) {
            net_->on_peer_offline(p);
            g.set_active(p, false);
          }
        }
      });
    });
  }
  net_->add_minute_hook([this](double m) {
    timed(ph_defense_, [&] { def_->on_minute(m); });
  });
  if (config_.maintain_overlay) {
    net_->add_minute_hook([this](double /*m*/) {
      timed(ph_maintenance_, [&] {
        maintain_overlay(*net_, *atk_, maint_rng_, config_.maintain_min_degree,
                         config_.maintain_rate_per_minute, ledger_);
      });
    });
  }

  // Partition repair runs last in the mutation pipeline: after churn,
  // cuts and maintenance settled the topology, stranded healthy peers are
  // re-bootstrapped into the main component.
  if (config_.repair_partitions) {
    healer_ = std::make_unique<p2p::PartitionHealer>(
        net_->graph(), config_.repair, util::Rng(config_.seed).fork("repair"));
    if (sink_ != nullptr) {
      healer_->set_trace_sink(sink_);
    }
    net_->add_minute_hook([this](double m) {
      timed(ph_repair_, [&] {
        healer_->heal(
            m,
            [this](PeerId p) {
              return net_->graph().is_active(p) && !atk_->is_agent(p) &&
                     (ledger_ == nullptr || !ledger_->blocked(p));
            },
            [this](PeerId a, PeerId b) {
              if (!net_->mutable_graph().add_edge(a, b)) return false;
              net_->on_edge_added(a, b);
              return true;
            });
      });
    });
  }

  // Caller inspection: runs after the full mutation pipeline settled, so
  // invariant checks (soak harness) see exactly the state the next minute
  // starts from. Read-only by contract.
  if (config_.inspect) {
    net_->add_minute_hook([this](double m) { config_.inspect(m, view()); });
  }
}

void ScenarioRuntime::register_metrics_hook() {
  // Metrics snapshots: registered last so every per-minute value reflects
  // the completed hook pipeline for that minute.
  if (!config_.obs.metrics) return;
  registry_ = std::make_shared<obs::MetricsRegistry>();
  obs::MetricsRegistry* reg = registry_.get();
  const obs::MetricId m_traffic = reg->gauge("flow.traffic_messages");
  const obs::MetricId m_attack = reg->gauge("flow.attack_messages");
  const obs::MetricId m_dropped = reg->gauge("flow.dropped");
  const obs::MetricId m_dropped_good = reg->gauge("flow.dropped_good");
  const obs::MetricId m_dropped_attack = reg->gauge("flow.dropped_attack");
  const obs::MetricId m_success = reg->gauge("flow.success_rate");
  const obs::MetricId m_response = reg->gauge("flow.response_time");
  const obs::MetricId m_reach = reg->gauge("flow.reach_per_query");
  const obs::MetricId m_util = reg->gauge("flow.mean_utilization");
  const obs::MetricId m_overhead = reg->gauge("flow.overhead_messages");
  const obs::MetricId m_active = reg->gauge("net.active_peers");
  const obs::MetricId m_joins = reg->gauge("churn.joins");
  const obs::MetricId m_leaves = reg->gauge("churn.leaves");
  const obs::MetricId m_rounds = reg->gauge("defense.rounds");
  const obs::MetricId m_suspicions = reg->gauge("defense.suspicions");
  const obs::MetricId m_cuts = reg->gauge("defense.decisions");
  const obs::MetricId m_timeouts = reg->gauge("fault.timeouts");
  const obs::MetricId m_retries = reg->gauge("fault.retries");
  const obs::MetricId m_quarantines = reg->gauge("defense.quarantines");
  const obs::MetricId m_probations = reg->gauge("defense.probations");
  const obs::MetricId m_reinstated = reg->gauge("defense.reinstatements");
  const obs::MetricId m_bans = reg->gauge("defense.bans");
  const obs::MetricId m_repaired = reg->gauge("repair.peers_repaired");
  const obs::MetricId m_adaptive_susp =
      reg->gauge("defense.adaptive_suspicious");
  const obs::MetricId m_band_reest = reg->gauge("defense.band_reestimates");
  const obs::MetricId m_flash_part = reg->gauge("workload.flash_participants");
  const obs::MetricId m_edge_slots = reg->gauge("topology.edge_slots");
  const obs::MetricId m_edge_live = reg->gauge("topology.edge_live");
  const obs::MetricId m_success_hist =
      reg->histogram("flow.success_rate_hist", 0.0, 1.0, 20);
  fault::FaultPlane* plane_raw = plane_.get();
  auto* ddp_raw = dynamic_cast<defense::DdPoliceDefense*>(def_.get());
  const core::QuarantineLedger* ledger_raw = ledger_;
  p2p::PartitionHealer* healer_obs = healer_.get();
  workload::FlashCrowdDriver* flash_raw = flash_.get();
  flow::FlowNetwork* net = net_.get();
  flow::ChurnDriver* churn = churn_.get();
  net_->add_minute_hook([=](double m) {
    const auto& r = net->last_minute_report();
    reg->set(m_traffic, r.traffic_messages);
    reg->set(m_attack, r.attack_messages);
    reg->set(m_dropped, r.dropped);
    reg->set(m_dropped_good, r.dropped_good);
    reg->set(m_dropped_attack, r.dropped_attack);
    reg->set(m_success, r.success_rate);
    reg->set(m_response, r.response_time);
    reg->set(m_reach, r.reach_per_query);
    reg->set(m_util, r.mean_utilization);
    reg->set(m_overhead, r.overhead_messages);
    reg->set(m_active, static_cast<double>(net->graph().active_count()));
    reg->set(m_joins, static_cast<double>(churn->joins()));
    reg->set(m_leaves, static_cast<double>(churn->leaves()));
    if (ddp_raw != nullptr) {
      reg->set(m_rounds, static_cast<double>(ddp_raw->protocol().rounds_run()));
      reg->set(m_suspicions,
               static_cast<double>(ddp_raw->protocol().suspicions()));
      reg->set(m_cuts,
               static_cast<double>(ddp_raw->protocol().decisions().size()));
    }
    if (plane_raw != nullptr) {
      reg->set(m_timeouts, static_cast<double>(plane_raw->control().timeouts));
      reg->set(m_retries, static_cast<double>(plane_raw->control().retries));
    }
    if (ledger_raw != nullptr) {
      const auto& qs = ledger_raw->stats();
      reg->set(m_quarantines, static_cast<double>(qs.quarantines));
      reg->set(m_probations, static_cast<double>(qs.probations));
      reg->set(m_reinstated, static_cast<double>(qs.reinstatements));
      reg->set(m_bans, static_cast<double>(qs.bans));
    }
    if (healer_obs != nullptr) {
      reg->set(m_repaired, static_cast<double>(healer_obs->peers_repaired()));
    }
    if (ddp_raw != nullptr) {
      if (const core::AdaptiveThresholds* ad = ddp_raw->protocol().adaptive()) {
        reg->set(m_adaptive_susp,
                 static_cast<double>(ad->currently_suspicious()));
        reg->set(m_band_reest, static_cast<double>(ad->band_reestimates()));
      }
    }
    if (flash_raw != nullptr) {
      reg->set(m_flash_part,
               static_cast<double>(flash_raw->participants().size()));
    }
    // Slot-slab occupancy: capacity tracks the high-water mark of live
    // directed edges (free-list reuse keeps it from growing with churn).
    const auto& ei = net->graph().edge_index();
    reg->set(m_edge_slots, static_cast<double>(ei.capacity()));
    reg->set(m_edge_live, static_cast<double>(ei.live_count()));
    reg->observe(m_success_hist, r.success_rate);
    reg->snapshot_minute(m);
  });
}

void ScenarioRuntime::register_obs_hooks() {
  // Observation-only hooks, registered after metrics so they also see the
  // settled minute; they read engine counters and never mutate, so the
  // default (both off) run is bit-identical.
  if (series_ != nullptr) {
    flow::FlowNetwork* net = net_.get();
    obs::SeriesStore* series = series_.get();
    net_->add_minute_hook([net, series](double m) {
      series->begin_minute(m);
      const auto& g = net->graph();
      for (PeerId p = 0; p < g.node_count(); ++p) {
        for (const auto slot : g.out_slots(p)) {
          series->set_edge(slot, net->sent_last_minute(slot));
        }
        series->set_peer(p, net->out_last_minute(p));
      }
    });
  }
  if (forensics_ != nullptr) {
    // Per-agent minute feed: how much each agent pushed into the overlay
    // this minute and the fraction of attack traffic the engine dropped.
    // The accumulator integrates these into injected/delivered-before-cut.
    flow::FlowNetwork* net = net_.get();
    attack::AttackScenario* atk = atk_.get();
    net_->add_minute_hook([this, net, atk](double /*m*/) {
      if (!atk->started() || !obs_tracer_.on()) return;
      const auto& r = net->last_minute_report();
      const double drop_frac =
          r.attack_messages > 0.0
              ? std::clamp(r.dropped_attack / r.attack_messages, 0.0, 1.0)
              : 0.0;
      std::vector<PeerId> sorted(atk->agents());
      std::sort(sorted.begin(), sorted.end());
      for (const PeerId a : sorted) {
        obs_tracer_.emit(obs::EventType::kAgentMinute, net->now(), a,
                         kInvalidPeer,
                         {{"out", net->out_last_minute(a)},
                          {"drop_frac", drop_frac}});
      }
    });
  }
}

void ScenarioRuntime::run_to_minute(double m) {
  if (profiler_ != nullptr) {
    const std::uint64_t hooks_before = profiler_->total_wall_nanos();
    const std::uint64_t t0 = obs::wall_ns();
    net_->run_until_minute(m);
    const std::uint64_t total = obs::wall_ns() - t0;
    const std::uint64_t hooks = profiler_->total_wall_nanos() - hooks_before;
    profiler_->add(ph_run_, total > hooks ? total - hooks : 0);
  } else {
    net_->run_until_minute(m);
  }
}

void ScenarioRuntime::run_all() { run_to_minute(config_.total_minutes); }

double ScenarioRuntime::current_minute() const noexcept {
  return net_->current_minute();
}

ScenarioView ScenarioRuntime::view() const noexcept {
  ScenarioView v;
  v.net = net_.get();
  v.attack = atk_.get();
  v.churn = churn_.get();
  if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def_.get())) {
    v.ddpolice = &ddp->protocol();
  }
  v.ledger = ledger_;
  v.healer = healer_.get();
  v.fault = plane_.get();
  return v;
}

ScenarioResult ScenarioRuntime::result() const {
  ScenarioResult result;
  result.history = net_->minute_history();
  result.summary = metrics::summarize(result.history, config_.warmup_minutes);
  result.decisions = def_->decisions();
  result.is_bad.assign(graph_.node_count(), 0);
  for (PeerId a : atk_->agents()) result.is_bad[a] = 1;
  result.errors = metrics::tally_errors(result.decisions, result.is_bad,
                                        config_.attack.start_minute);
  result.attack_rejoins = atk_->rejoins();
  result.final_active_peers = static_cast<double>(graph_.active_count());
  if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def_.get())) {
    result.defense_exchange_messages = ddp->protocol().exchange_messages();
    result.defense_traffic_messages = ddp->protocol().traffic_messages();
    result.defense_rounds = ddp->protocol().rounds_run();
    if (const core::QuarantineLedger* lg = ddp->protocol().ledger()) {
      result.reinstatements = lg->reinstatements();
      result.quarantine = lg->stats();
    }
    if (const core::AdaptiveThresholds* ad = ddp->protocol().adaptive()) {
      result.band_reestimates = ad->band_reestimates();
      result.suspicion_entries = ad->suspicion_entries();
      result.suspicion_exits = ad->suspicion_exits();
    }
  }
  if (flash_ != nullptr) {
    result.flash_surges = flash_->surges_started();
  }
  if (healer_ != nullptr) {
    result.partition_sweeps = healer_->sweeps();
    result.partitions_seen = healer_->partitions_seen();
    result.peers_repaired = healer_->peers_repaired();
  }
  if (plane_ != nullptr) {
    result.fault_control = plane_->control();
    result.fault_channel = plane_->channel().counters();
    result.fault_crashes =
        static_cast<std::size_t>(plane_->peers().crash_count());
    result.fault_stalls = static_cast<std::size_t>(plane_->peers().stall_count());
    metrics::attach_fault_stats(
        result.summary, result.fault_control.timeouts,
        result.fault_control.retries, result.fault_control.late_replies,
        result.fault_control.corrupt_rejects, result.fault_crashes,
        result.fault_stalls);
  }
  result.metrics_registry = registry_;
  result.profile = profiler_;
  result.forensics = forensics_;
  result.series = series_;
  if (sink_ != nullptr) sink_->flush();
  return result;
}

std::vector<std::uint8_t> ScenarioRuntime::save() const {
  snapshot::Writer w;
  w.begin_section(kSecRun);
  w.u8(static_cast<std::uint8_t>(config_.defense));
  w.boolean(plane_ != nullptr);
  w.boolean(healer_ != nullptr);
  w.boolean(registry_ != nullptr);
  w.boolean(series_ != nullptr);
  w.boolean(forensics_ != nullptr);
  w.boolean(flash_ != nullptr);
  w.f64(net_->current_minute());
  w.end_section();

  w.begin_section(kSecGraph);
  graph_.save(w);
  w.end_section();

  w.begin_section(kSecFlow);
  net_->save(w);
  w.end_section();

  w.begin_section(kSecChurn);
  churn_->save(w);
  w.end_section();

  w.begin_section(kSecAttack);
  atk_->save(w);
  w.end_section();

  if (flash_ != nullptr) {
    w.begin_section(kSecFlash);
    flash_->save(w);
    w.end_section();
  }

  w.begin_section(kSecDefense);
  def_->save(w);
  w.end_section();

  // Adaptive bands ride after DEFN: they reference the same edge slots the
  // defense state does, and the section only exists when the flag built
  // the subsystem (presence is digest-derived, like every other section).
  if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def_.get())) {
    if (const core::AdaptiveThresholds* ad = ddp->protocol().adaptive()) {
      w.begin_section(kSecAdaptive);
      ad->save(w);
      w.end_section();
    }
  }

  if (plane_ != nullptr) {
    w.begin_section(kSecFault);
    plane_->save(w);
    w.end_section();
  }
  if (healer_ != nullptr) {
    w.begin_section(kSecHeal);
    healer_->save(w);
    w.end_section();
  }

  w.begin_section(kSecMaint);
  snapshot::save_rng(w, maint_rng_);
  w.boolean(has_liar_rng_);
  if (has_liar_rng_) snapshot::save_rng(w, liar_rng_);
  w.end_section();

  if (registry_ != nullptr) {
    w.begin_section(kSecMetrics);
    registry_->save(w);
    w.end_section();
  }
  if (series_ != nullptr) {
    w.begin_section(kSecSeries);
    series_->save(w);
    w.end_section();
  }
  if (forensics_ != nullptr) {
    w.begin_section(kSecForensics);
    forensics_->save(w);
    w.end_section();
  }
  return w.finish(config_digest(config_));
}

void ScenarioRuntime::save_file(const std::string& path) const {
  const std::vector<std::uint8_t> image = save();
  // save() already framed everything; write it out atomically through the
  // same tmp+rename path Writer uses.
  const std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      throw snapshot::SnapshotError("cannot open " + tmp + " for writing");
    }
    const std::size_t wrote = std::fwrite(image.data(), 1, image.size(), f);
    const bool ok = wrote == image.size() && std::fflush(f) == 0;
    std::fclose(f);
    if (!ok) {
      std::remove(tmp.c_str());
      throw snapshot::SnapshotError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw snapshot::SnapshotError("cannot rename " + tmp + " to " + path);
  }
}

void ScenarioRuntime::load(snapshot::Reader& r) {
  if (r.config_digest() != config_digest(config_)) {
    throw snapshot::SnapshotError(
        "config digest mismatch: snapshot was taken under a different "
        "scenario configuration");
  }
  r.begin_section(kSecRun);
  const auto kind = r.u8();
  if (kind != static_cast<std::uint8_t>(config_.defense)) {
    throw snapshot::SnapshotError("snapshot defense kind disagrees with config");
  }
  const bool has_plane = r.boolean();
  const bool has_healer = r.boolean();
  const bool has_metrics = r.boolean();
  const bool has_series = r.boolean();
  const bool has_forensics = r.boolean();
  const bool has_flash = r.boolean();
  r.f64();  // minute, informational (FLOW carries the authoritative clock)
  r.end_section();
  if (has_plane != (plane_ != nullptr) || has_healer != (healer_ != nullptr)) {
    throw snapshot::SnapshotError(
        "snapshot subsystem shape disagrees with config (fault plane or "
        "partition healer presence)");
  }
  if (has_metrics != (registry_ != nullptr)) {
    throw snapshot::SnapshotError(
        "snapshot metrics presence disagrees with this run: resume with the "
        "same metrics setting it was taken under");
  }
  if (has_series != (series_ != nullptr)) {
    throw snapshot::SnapshotError(
        "snapshot series presence disagrees with this run: resume with the "
        "same series_window_minutes setting it was taken under");
  }
  if (has_forensics != (forensics_ != nullptr)) {
    throw snapshot::SnapshotError(
        "snapshot forensics presence disagrees with this run: resume with "
        "the same forensics setting it was taken under");
  }
  if (has_flash != (flash_ != nullptr)) {
    throw snapshot::SnapshotError(
        "snapshot flash-crowd presence disagrees with config");
  }

  r.begin_section(kSecGraph);
  graph_.load(r);
  r.end_section();

  r.begin_section(kSecFlow);
  net_->load(r);
  r.end_section();

  r.begin_section(kSecChurn);
  churn_->load(r);
  r.end_section();

  r.begin_section(kSecAttack);
  atk_->load(r);
  r.end_section();

  if (flash_ != nullptr) {
    r.begin_section(kSecFlash);
    flash_->load(r);
    r.end_section();
  }

  r.begin_section(kSecDefense);
  def_->load(r);
  r.end_section();

  if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def_.get())) {
    if (core::AdaptiveThresholds* ad = ddp->protocol().adaptive()) {
      r.begin_section(kSecAdaptive);
      ad->load(r);
      r.end_section();
    }
  }

  if (plane_ != nullptr) {
    r.begin_section(kSecFault);
    plane_->load(r);
    r.end_section();
  }
  if (healer_ != nullptr) {
    r.begin_section(kSecHeal);
    healer_->load(r);
    r.end_section();
  }

  r.begin_section(kSecMaint);
  snapshot::load_rng(r, maint_rng_);
  const bool liar = r.boolean();
  if (liar != has_liar_rng_) {
    throw snapshot::SnapshotError(
        "snapshot liar-stream presence disagrees with config");
  }
  if (liar) snapshot::load_rng(r, liar_rng_);
  r.end_section();

  if (registry_ != nullptr) {
    r.begin_section(kSecMetrics);
    registry_->load(r);
    r.end_section();
  }
  if (series_ != nullptr) {
    r.begin_section(kSecSeries);
    series_->load(r);
    r.end_section();
  }
  if (forensics_ != nullptr) {
    r.begin_section(kSecForensics);
    forensics_->load(r);
    r.end_section();
  }

  if (r.sections_remaining() != 0) {
    throw snapshot::SnapshotError("snapshot carries unexpected extra sections");
  }
}

void ScenarioRuntime::load_bytes(const std::vector<std::uint8_t>& bytes) {
  snapshot::Reader r = snapshot::Reader::from_bytes(bytes);
  load(r);
}

void ScenarioRuntime::load_file(const std::string& path) {
  snapshot::Reader r = snapshot::Reader::from_file(path);
  load(r);
}

}  // namespace ddp::experiments
