#pragma once

/// \file runtime.hpp
/// ScenarioRuntime: the scenario of scenario.hpp as a long-lived object
/// with a checkpoint boundary.
///
/// run_scenario() builds the whole system on the stack, runs it to
/// completion, and tears it down — which is perfect for figure benches
/// and fatal for crash-resume: nothing survives the call. The runtime
/// splits construction from execution. Construction wires exactly what
/// run_scenario wired (same subsystems, same rng fork tags, same minute
/// hook order — run_scenario is now implemented on top of this class and
/// the default runs are bit-identical to the pre-runtime seed); execution
/// advances to an absolute minute boundary and can stop, checkpoint,
/// resume, or be abandoned and reconstructed in a fresh process from a
/// snapshot file.
///
/// Snapshot layout: one versioned container (snapshot.hpp framing) whose
/// config digest binds it to the behavioural configuration it was taken
/// under, followed by one section per subsystem in dependency order:
///
///   RUN  — shape cross-checks (defense kind, subsystem presence, minute)
///   GRPH — overlay graph + edge-slot index
///   FLOW — flow engine (per-link flow, accumulators, report history, rng)
///   CHRN — churn schedule + counters + rng
///   ATTK — attack campaign (agent set, rejoin schedule, rng)
///   DEFN — defense state (DD-POLICE snapshots/decisions/ledger, ...)
///   FALT — fault plane (channel, injector timeline + engine, control)
///   HEAL — partition healer (rng + counters)
///   MANT — maintenance + liar rng streams
///   METR — metrics registry values + minute rows
///   SERS — per-peer/per-edge rate series ring (obs.series_window_minutes)
///   FRNS — forensics accumulator (obs.forensics)
///
/// Sections for subsystems a configuration does not build are omitted;
/// presence is derived from the (digest-checked) config, so reader and
/// writer always agree. Checkpoints are only taken at completed-minute
/// boundaries — every engine in the scenario path is quiescent there.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "flow/churn_driver.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::flow {
class FlowPort;
}  // namespace ddp::flow

namespace ddp::experiments {

class ScenarioRuntime {
 public:
  /// Build (but do not run) the configured system. Throws
  /// std::invalid_argument on an out-of-range configuration, exactly like
  /// run_scenario.
  explicit ScenarioRuntime(const ScenarioConfig& config);

  ScenarioRuntime(const ScenarioRuntime&) = delete;
  ScenarioRuntime& operator=(const ScenarioRuntime&) = delete;

  /// Out-of-line: flow::FlowPort is incomplete here.
  ~ScenarioRuntime();

  /// Advance to the absolute minute `m` (no-op when already there).
  void run_to_minute(double m);

  /// Advance to config.total_minutes.
  void run_all();

  double current_minute() const noexcept;

  /// Assemble the ScenarioResult for the state reached so far — the same
  /// record run_scenario returns after run_all(). Flushes the trace sink.
  ScenarioResult result() const;

  const ScenarioConfig& config() const noexcept { return config_; }

  /// Digest of every behaviour-affecting configuration field. Run-shape
  /// knobs (total/warmup minutes) and the observability plane are
  /// excluded so a snapshot can be resumed with a longer horizon or
  /// different instrumentation attached.
  static std::uint64_t config_digest(const ScenarioConfig& config);

  /// Serialize the complete runtime into a snapshot container.
  std::vector<std::uint8_t> save() const;

  /// Atomically write save() to `path`. Throws SnapshotError on I/O
  /// failure.
  void save_file(const std::string& path) const;

  /// Restore a freshly constructed runtime (same behavioural config) from
  /// a snapshot. Throws SnapshotError when the snapshot is corrupt, from
  /// a different configuration (digest mismatch), or shaped differently
  /// than this runtime. On throw the runtime must be discarded — partial
  /// subsystem state may have been overwritten.
  void load(snapshot::Reader& r);
  void load_bytes(const std::vector<std::uint8_t>& bytes);
  void load_file(const std::string& path);

  /// Read-only view of the live system (same pointers the inspect hook
  /// receives); for harnesses that assert invariants between run calls.
  ScenarioView view() const noexcept;

 private:
  template <typename Fn>
  void timed(std::size_t phase, Fn&& fn) {
    if (profiler_ != nullptr) {
      obs::PhaseProfiler::Scope scope(*profiler_, phase);
      fn();
    } else {
      fn();
    }
  }

  void register_hooks();
  void register_metrics_hook();
  void register_obs_hooks();

  ScenarioConfig config_;
  topology::Graph graph_;
  std::unique_ptr<topology::BandwidthMap> bandwidth_;
  std::unique_ptr<workload::ContentModel> content_;
  std::unique_ptr<flow::FlowNetwork> net_;
  std::unique_ptr<fault::FaultPlane> plane_;
  std::unique_ptr<flow::ChurnDriver> churn_;
  std::unique_ptr<attack::AttackScenario> atk_;
  std::unique_ptr<workload::FlashCrowdDriver> flash_;  ///< when flash.enabled
  std::unique_ptr<flow::FlowPort> port_;  ///< engine seam handed to def_
  std::unique_ptr<defense::Defense> def_;
  core::QuarantineLedger* ledger_ = nullptr;  ///< borrowed from def_
  std::unique_ptr<p2p::PartitionHealer> healer_;
  std::shared_ptr<obs::PhaseProfiler> profiler_;
  std::size_t ph_churn_ = 0, ph_attack_ = 0, ph_flash_ = 0, ph_fault_ = 0,
              ph_defense_ = 0, ph_maintenance_ = 0, ph_repair_ = 0,
              ph_run_ = 0;
  util::Rng maint_rng_;
  bool has_liar_rng_ = false;
  util::Rng liar_rng_;
  std::shared_ptr<obs::MetricsRegistry> registry_;

  // Forensics plane: when obs.forensics is on, every subsystem traces into
  // sink_, which is either the accumulator directly or a fanout of
  // {caller's trace_sink, accumulator}. obs_tracer_ is the runtime's own
  // handle for the per-agent minute feed.
  obs::FanoutSink obs_fanout_;
  obs::TraceSink* sink_ = nullptr;
  std::shared_ptr<obs::ForensicsAccumulator> forensics_;
  std::shared_ptr<obs::SeriesStore> series_;
  obs::Tracer obs_tracer_;
};

}  // namespace ddp::experiments
