#include "experiments/scenario.hpp"

#include <algorithm>
#include <memory>

#include "core/flow_port.hpp"
#include "flow/churn_driver.hpp"
#include "topology/bandwidth.hpp"
#include "util/log.hpp"

namespace ddp::experiments {

namespace {

/// Reconnect active good peers that fell below the minimum degree —
/// modelling Gnutella's host-cache-driven connection maintenance.
void maintain_overlay(flow::FlowNetwork& net, const attack::AttackScenario& atk,
                      util::Rng& rng, std::size_t min_degree,
                      double rate_per_minute) {
  auto& g = net.mutable_graph();
  for (PeerId p = 0; p < g.node_count(); ++p) {
    if (!g.is_active(p) || atk.is_agent(p)) continue;
    if (g.degree(p) >= min_degree) continue;
    if (!rng.chance(rate_per_minute)) continue;  // discovery takes time
    const std::size_t missing = min_degree - g.degree(p);
    for (std::size_t tries = 0, added = 0;
         tries < missing * 8 && added < missing; ++tries) {
      const PeerId t = g.random_active_node_by_degree(rng, p);
      if (t == kInvalidPeer) break;
      if (atk.is_agent(t)) continue;  // host caches would not favour leeches
      if (g.add_edge(p, t)) {
        net.on_edge_added(p, t);
        ++added;
      }
    }
  }
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
  util::Rng master(config.seed);
  util::Rng topo_rng = master.fork("topology");

  topology::Graph graph = topology::generate(config.topo, topo_rng);
  util::Rng bw_rng = master.fork("bandwidth");
  const topology::BandwidthMap bandwidth(graph.node_count(), bw_rng);
  const workload::ContentModel content(config.content, graph.node_count());

  flow::FlowConfig flow_cfg = config.flow;
  if (config.defense == defense::Kind::kFairShare) {
    flow_cfg.discipline = flow::ServiceDiscipline::kFairShare;
  }
  if (config.fault.data_plane && config.fault.channel.any()) {
    // Data-plane degradation: the expected delivered fraction per link
    // (drop removes volume, duplication adds it back). Off by default so
    // the fault ablation isolates control-plane effects.
    flow_cfg.link_reliability =
        std::clamp(1.0 - config.fault.channel.drop_probability +
                       config.fault.channel.duplicate_probability,
                   0.0, 2.0);
  }
  flow::FlowNetwork net(graph, bandwidth, content, flow_cfg,
                        master.fork("flow"));

  // Fault plane: built only when some fault rate is non-zero, so fault-free
  // runs do not even construct the subsystem (and consume no rng draws —
  // fork() is order-independent, but not constructing is simplest of all).
  std::unique_ptr<fault::FaultPlane> plane;
  if (config.fault.any()) {
    plane = std::make_unique<fault::FaultPlane>(
        config.fault, graph.node_count(), master.fork("fault"));
    plane->peers().on_crash = [&net](PeerId p) {
      net.on_peer_offline(p);
      net.mutable_graph().set_active(p, false);
    };
    plane->peers().on_stall = [&net](PeerId p) { net.set_issue_scale(p, 0.0); };
    plane->peers().on_resume = [&net](PeerId p) {
      if (net.graph().is_active(p)) net.set_issue_scale(p, 1.0);
    };
  }

  const workload::ChurnModel churn_model(config.churn);
  flow::ChurnDriver churn(net, churn_model, master.fork("churn"));

  attack::AttackScenario atk(net, config.attack, master.fork("attack"));

  std::unique_ptr<defense::Defense> def;
  switch (config.defense) {
    case defense::Kind::kNone:
      def = std::make_unique<defense::NoDefense>();
      break;
    case defense::Kind::kFairShare:
      def = std::make_unique<defense::FairShareDefense>();
      break;
    case defense::Kind::kNaiveCut:
      def = std::make_unique<defense::NaiveCutDefense>(net,
                                                       config.naive_cut_threshold);
      break;
    case defense::Kind::kDdPolice: {
      auto ddp = std::make_unique<defense::DdPoliceDefense>(
          net, config.ddpolice, master.fork("ddpolice"));
      // Compromised peers cheat per the configured behaviour (Sec. 3.4).
      const attack::AgentBehavior behavior = config.attack.behavior;
      ddp->protocol().set_report_policy(
          [&atk, behavior](PeerId reporter, PeerId /*suspect*/,
                           const core::TrafficTruth& truth)
              -> std::optional<core::TrafficTruth> {
            if (!atk.is_agent(reporter)) return truth;
            switch (behavior.report) {
              case attack::ReportStrategy::kHonest:
                return truth;
              case attack::ReportStrategy::kInflate: {
                core::TrafficTruth t = truth;
                t.out_to_suspect *= behavior.inflate_factor;
                return t;
              }
              case attack::ReportStrategy::kDeflate: {
                core::TrafficTruth t = truth;
                t.out_to_suspect *= behavior.deflate_factor;
                return t;
              }
              case attack::ReportStrategy::kMute:
                return std::nullopt;
            }
            return truth;
          });
      if (config.attack.behavior.list != attack::ListStrategy::kHonest) {
        const attack::ListStrategy ls = config.attack.behavior.list;
        util::Rng list_rng = master.fork("liar");
        auto* net_ptr = &net;
        ddp->protocol().set_list_policy(
            [&atk, ls, list_rng, net_ptr](
                PeerId owner, std::vector<PeerId> truth) mutable {
              if (!atk.is_agent(owner)) return truth;
              if (ls == attack::ListStrategy::kWithhold) {
                if (truth.size() > 1) truth.resize(truth.size() / 2);
                return truth;
              }
              // Fabricate: claim a random non-neighbour as a buddy.
              const PeerId fake =
                  net_ptr->graph().random_active_node(list_rng, owner);
              if (fake != kInvalidPeer &&
                  !net_ptr->graph().has_edge(owner, fake)) {
                truth.push_back(fake);
              }
              return truth;
            });
      }
      def = std::move(ddp);
      break;
    }
  }

  if (plane != nullptr) {
    if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def.get())) {
      ddp->protocol().set_fault_plane(plane.get());
    }
  }

  util::Rng maint_rng = master.fork("maintenance");
  // Hook order matters: churn first (membership), then the attack campaign
  // (start/rejoin), then faults (crash/stall the current membership), then
  // the defense (reads last-minute counters), then overlay maintenance
  // (re-links what the defense cut).
  net.add_minute_hook([&](double m) { churn.on_minute(m); });
  net.add_minute_hook([&](double m) { atk.on_minute(m); });
  if (plane != nullptr) {
    fault::FaultPlane* plane_raw = plane.get();
    net.add_minute_hook([&net, plane_raw](double m) {
      plane_raw->on_minute(m);
      // Churn can resurrect a crash-stopped peer (rejoin draws know nothing
      // of the fault process): put it back down — crash-stop is permanent.
      auto& g = net.mutable_graph();
      for (PeerId p = 0; p < g.node_count(); ++p) {
        if (plane_raw->peers().is_crashed(p) && g.is_active(p)) {
          net.on_peer_offline(p);
          g.set_active(p, false);
        }
      }
    });
  }
  defense::Defense* def_raw = def.get();
  net.add_minute_hook([def_raw](double m) { def_raw->on_minute(m); });
  if (config.maintain_overlay) {
    net.add_minute_hook([&](double /*m*/) {
      maintain_overlay(net, atk, maint_rng, config.maintain_min_degree,
                       config.maintain_rate_per_minute);
    });
  }

  net.run_minutes(config.total_minutes);

  ScenarioResult result;
  result.history = net.minute_history();
  result.summary = metrics::summarize(result.history, config.warmup_minutes);
  result.decisions = def->decisions();
  result.is_bad.assign(graph.node_count(), 0);
  for (PeerId a : atk.agents()) result.is_bad[a] = 1;
  result.errors = metrics::tally_errors(result.decisions, result.is_bad,
                                        config.attack.start_minute);
  result.attack_rejoins = atk.rejoins();
  result.final_active_peers = static_cast<double>(graph.active_count());
  if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def.get())) {
    result.defense_exchange_messages = ddp->protocol().exchange_messages();
    result.defense_traffic_messages = ddp->protocol().traffic_messages();
    result.defense_rounds = ddp->protocol().rounds_run();
  }
  if (plane != nullptr) {
    result.fault_control = plane->control();
    result.fault_channel = plane->channel().counters();
    result.fault_crashes = static_cast<std::size_t>(plane->peers().crash_count());
    result.fault_stalls = static_cast<std::size_t>(plane->peers().stall_count());
    metrics::attach_fault_stats(
        result.summary, result.fault_control.timeouts,
        result.fault_control.retries, result.fault_control.late_replies,
        result.fault_control.corrupt_rejects, result.fault_crashes,
        result.fault_stalls);
  }
  return result;
}

ScenarioResult run_baseline(ScenarioConfig config) {
  config.attack.agents = 0;
  config.defense = defense::Kind::kNone;
  return run_scenario(config);
}

ScenarioConfig paper_scenario(std::size_t peers, std::size_t agents,
                              defense::Kind defense_kind, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.topo.model = topology::Model::kBarabasiAlbert;
  cfg.topo.nodes = peers;
  cfg.topo.ba_links_per_node = 3;
  cfg.content.objects = std::max<std::size_t>(peers * 5, 1000);
  cfg.content.mean_replicas = std::max(4.0, static_cast<double>(peers) / 100.0);
  cfg.attack.agents = agents;
  cfg.attack.start_minute = 5.0;
  cfg.defense = defense_kind;
  cfg.total_minutes = 30.0;
  cfg.warmup_minutes = 6.0;
  return cfg;
}

}  // namespace ddp::experiments
