#include "experiments/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/flow_port.hpp"
#include "flow/churn_driver.hpp"
#include "topology/bandwidth.hpp"
#include "util/log.hpp"

namespace ddp::experiments {

namespace {

/// Reconnect active good peers that fell below the minimum degree —
/// modelling Gnutella's host-cache-driven connection maintenance. Peers
/// the quarantine ledger keeps isolated are skipped on both ends: a host
/// cache handing out a quarantined address would undo the defense.
void maintain_overlay(flow::FlowNetwork& net, const attack::AttackScenario& atk,
                      util::Rng& rng, std::size_t min_degree,
                      double rate_per_minute,
                      const core::QuarantineLedger* ledger) {
  auto& g = net.mutable_graph();
  for (PeerId p = 0; p < g.node_count(); ++p) {
    if (!g.is_active(p) || atk.is_agent(p)) continue;
    if (ledger != nullptr && ledger->blocked(p)) continue;
    if (g.degree(p) >= min_degree) continue;
    if (!rng.chance(rate_per_minute)) continue;  // discovery takes time
    const std::size_t missing = min_degree - g.degree(p);
    for (std::size_t tries = 0, added = 0;
         tries < missing * 8 && added < missing; ++tries) {
      const PeerId t = g.random_active_node_by_degree(rng, p);
      if (t == kInvalidPeer) break;
      if (atk.is_agent(t)) continue;  // host caches would not favour leeches
      if (ledger != nullptr && ledger->blocked(t)) continue;
      if (g.add_edge(p, t)) {
        net.on_edge_added(p, t);
        ++added;
      }
    }
  }
}

bool pos(double v) noexcept { return std::isfinite(v) && v > 0.0; }
bool nonneg(double v) noexcept { return std::isfinite(v) && v >= 0.0; }
bool prob(double v) noexcept { return std::isfinite(v) && v >= 0.0 && v <= 1.0; }

}  // namespace

std::string validate_config(const ScenarioConfig& config) {
  if (config.topo.nodes < 2) return "topo.nodes must be >= 2";
  if (config.topo.ba_links_per_node < 1) {
    return "topo.ba_links_per_node must be >= 1";
  }
  if (config.content.objects == 0) return "content.objects must be > 0";
  if (!pos(config.content.mean_replicas)) {
    return "content.mean_replicas must be a finite value > 0";
  }
  if (!nonneg(config.content.popularity_theta)) {
    return "content.popularity_theta must be finite and >= 0";
  }
  if (config.churn.enabled) {
    if (!pos(config.churn.mean_lifetime)) {
      return "churn.mean_lifetime must be a finite value > 0";
    }
    if (!pos(config.churn.lifetime_variance)) {
      return "churn.lifetime_variance must be a finite value > 0";
    }
    if (!nonneg(config.churn.mean_offline)) {
      return "churn.mean_offline must be finite and >= 0";
    }
    if (config.churn.rejoin_links < 1) return "churn.rejoin_links must be >= 1";
    if (!pos(config.churn.pareto_shape)) {
      return "churn.pareto_shape must be a finite value > 0";
    }
  }
  if (config.attack.agents >= config.topo.nodes) {
    return "attack.agents must be fewer than topo.nodes";
  }
  if (!nonneg(config.attack.start_minute)) {
    return "attack.start_minute must be finite and >= 0";
  }
  if (!nonneg(config.attack.rejoin_after_minutes)) {
    return "attack.rejoin_after_minutes must be finite and >= 0";
  }
  if (const std::string err = core::validate(config.ddpolice); !err.empty()) {
    return err;
  }
  if (!pos(config.naive_cut_threshold)) {
    return "naive_cut_threshold must be a finite value > 0";
  }
  if (config.flow.ttl < 1 || config.flow.ttl > flow::kMaxTtl) {
    return "flow.ttl must be within [1, 8]";
  }
  if (!pos(config.flow.tick_seconds)) {
    return "flow.tick_seconds must be a finite value > 0";
  }
  if (!pos(config.flow.capacity_per_minute)) {
    return "flow.capacity_per_minute must be a finite value > 0";
  }
  if (!nonneg(config.flow.good_issue_per_minute)) {
    return "flow.good_issue_per_minute must be finite and >= 0";
  }
  if (!nonneg(config.flow.attack_target_per_minute)) {
    return "flow.attack_target_per_minute must be finite and >= 0";
  }
  if (!nonneg(config.flow.hop_latency)) {
    return "flow.hop_latency must be finite and >= 0";
  }
  if (!nonneg(config.flow.max_queue_delay)) {
    return "flow.max_queue_delay must be finite and >= 0";
  }
  if (!nonneg(config.flow.recalibrate_minutes)) {
    return "flow.recalibrate_minutes must be finite and >= 0";
  }
  if (config.flow.calibration_samples < 1) {
    return "flow.calibration_samples must be >= 1";
  }
  if (!std::isfinite(config.flow.link_reliability) ||
      config.flow.link_reliability < 0.0 || config.flow.link_reliability > 2.0) {
    return "flow.link_reliability must be within [0, 2]";
  }
  if (!prob(config.flow.control_reserve_fraction) ||
      config.flow.control_reserve_fraction >= 1.0) {
    return "flow.control_reserve_fraction must be within [0, 1)";
  }
  const auto& ch = config.fault.channel;
  if (!prob(ch.drop_probability) || !prob(ch.duplicate_probability) ||
      !prob(ch.corrupt_probability)) {
    return "fault.channel probabilities must be within [0, 1]";
  }
  if (!nonneg(ch.base_delay_seconds) || !nonneg(ch.delay_jitter_seconds)) {
    return "fault.channel delays must be finite and >= 0";
  }
  const auto& pf = config.fault.peer;
  if (!prob(pf.crash_probability_per_minute) ||
      !prob(pf.stall_probability_per_minute) || !prob(pf.slow_peer_fraction)) {
    return "fault.peer probabilities must be within [0, 1]";
  }
  if (!nonneg(pf.stall_duration_seconds)) {
    return "fault.peer.stall_duration_seconds must be finite and >= 0";
  }
  if (!pos(pf.slow_factor)) {
    return "fault.peer.slow_factor must be a finite value > 0";
  }
  if (!pos(config.total_minutes)) {
    return "total_minutes must be a finite value > 0";
  }
  if (!nonneg(config.warmup_minutes) ||
      config.warmup_minutes > config.total_minutes) {
    return "warmup_minutes must be within [0, total_minutes]";
  }
  if (!prob(config.maintain_rate_per_minute)) {
    return "maintain_rate_per_minute must be within [0, 1]";
  }
  if (config.repair_partitions) {
    if (config.repair.max_attempts < 1) {
      return "repair.max_attempts must be >= 1";
    }
    if (config.repair.links < 1) return "repair.links must be >= 1";
  }
  return {};
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  if (const std::string err = validate_config(config); !err.empty()) {
    throw std::invalid_argument("invalid scenario config: " + err);
  }
  util::Rng master(config.seed);
  util::Rng topo_rng = master.fork("topology");

  topology::Graph graph = topology::generate(config.topo, topo_rng);
  util::Rng bw_rng = master.fork("bandwidth");
  const topology::BandwidthMap bandwidth(graph.node_count(), bw_rng);
  const workload::ContentModel content(config.content, graph.node_count());

  flow::FlowConfig flow_cfg = config.flow;
  if (config.defense == defense::Kind::kFairShare) {
    flow_cfg.discipline = flow::ServiceDiscipline::kFairShare;
  }
  if (config.fault.data_plane && config.fault.channel.any()) {
    // Data-plane degradation: the expected delivered fraction per link
    // (drop removes volume, duplication adds it back). Off by default so
    // the fault ablation isolates control-plane effects.
    flow_cfg.link_reliability =
        std::clamp(1.0 - config.fault.channel.drop_probability +
                       config.fault.channel.duplicate_probability,
                   0.0, 2.0);
  }
  flow::FlowNetwork net(graph, bandwidth, content, flow_cfg,
                        master.fork("flow"));

  // Fault plane: built only when some fault rate is non-zero, so fault-free
  // runs do not even construct the subsystem (and consume no rng draws —
  // fork() is order-independent, but not constructing is simplest of all).
  std::unique_ptr<fault::FaultPlane> plane;
  if (config.fault.any()) {
    plane = std::make_unique<fault::FaultPlane>(
        config.fault, graph.node_count(), master.fork("fault"));
    plane->peers().on_crash = [&net](PeerId p) {
      net.on_peer_offline(p);
      net.mutable_graph().set_active(p, false);
    };
    plane->peers().on_stall = [&net](PeerId p) { net.set_issue_scale(p, 0.0); };
    plane->peers().on_resume = [&net](PeerId p) {
      if (net.graph().is_active(p)) net.set_issue_scale(p, 1.0);
    };
  }

  const workload::ChurnModel churn_model(config.churn);
  flow::ChurnDriver churn(net, churn_model, master.fork("churn"));

  attack::AttackScenario atk(net, config.attack, master.fork("attack"));

  std::unique_ptr<defense::Defense> def;
  switch (config.defense) {
    case defense::Kind::kNone:
      def = std::make_unique<defense::NoDefense>();
      break;
    case defense::Kind::kFairShare:
      def = std::make_unique<defense::FairShareDefense>();
      break;
    case defense::Kind::kNaiveCut:
      def = std::make_unique<defense::NaiveCutDefense>(net,
                                                       config.naive_cut_threshold);
      break;
    case defense::Kind::kDdPolice: {
      auto ddp = std::make_unique<defense::DdPoliceDefense>(
          net, config.ddpolice, master.fork("ddpolice"));
      // Compromised peers cheat per the configured behaviour (Sec. 3.4).
      const attack::AgentBehavior behavior = config.attack.behavior;
      ddp->protocol().set_report_policy(
          [&atk, behavior](PeerId reporter, PeerId /*suspect*/,
                           const core::TrafficTruth& truth)
              -> std::optional<core::TrafficTruth> {
            if (!atk.is_agent(reporter)) return truth;
            switch (behavior.report) {
              case attack::ReportStrategy::kHonest:
                return truth;
              case attack::ReportStrategy::kInflate: {
                core::TrafficTruth t = truth;
                t.out_to_suspect *= behavior.inflate_factor;
                return t;
              }
              case attack::ReportStrategy::kDeflate: {
                core::TrafficTruth t = truth;
                t.out_to_suspect *= behavior.deflate_factor;
                return t;
              }
              case attack::ReportStrategy::kMute:
                return std::nullopt;
            }
            return truth;
          });
      if (config.attack.behavior.list != attack::ListStrategy::kHonest) {
        const attack::ListStrategy ls = config.attack.behavior.list;
        util::Rng list_rng = master.fork("liar");
        auto* net_ptr = &net;
        ddp->protocol().set_list_policy(
            [&atk, ls, list_rng, net_ptr](
                PeerId owner, std::vector<PeerId> truth) mutable {
              if (!atk.is_agent(owner)) return truth;
              if (ls == attack::ListStrategy::kWithhold) {
                if (truth.size() > 1) truth.resize(truth.size() / 2);
                return truth;
              }
              // Fabricate: claim a random non-neighbour as a buddy.
              const PeerId fake =
                  net_ptr->graph().random_active_node(list_rng, owner);
              if (fake != kInvalidPeer &&
                  !net_ptr->graph().has_edge(owner, fake)) {
                truth.push_back(fake);
              }
              return truth;
            });
      }
      def = std::move(ddp);
      break;
    }
  }

  core::QuarantineLedger* ledger = nullptr;
  if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def.get())) {
    ledger = ddp->protocol().ledger();
  }

  if (plane != nullptr) {
    if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def.get())) {
      ddp->protocol().set_fault_plane(plane.get());
    }
    if (ledger != nullptr) {
      // A stall resume must not clobber a probation budget: resuming peers
      // come back at whatever rate their ladder standing allows.
      const double probation_budget = config.ddpolice.probation_budget;
      core::QuarantineLedger* ledger_raw = ledger;
      plane->peers().on_resume = [&net, ledger_raw, probation_budget](PeerId p) {
        if (!net.graph().is_active(p)) return;
        const bool on_probation =
            ledger_raw->standing(p) == core::Standing::kProbation;
        net.set_issue_scale(p, on_probation ? probation_budget : 1.0);
      };
    }
  }

  // Observability plane. Tracing binds the caller's sink to every
  // instrumented subsystem; it only observes, so an untraced run is
  // bit-identical. Profiling wraps each minute hook in a wall-clock scope;
  // the metrics hook runs last so it snapshots the settled minute.
  if (config.obs.trace_sink != nullptr) {
    net.set_trace_sink(config.obs.trace_sink);
    churn.set_trace_sink(config.obs.trace_sink);
    atk.set_trace_sink(config.obs.trace_sink);
    if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def.get())) {
      ddp->protocol().set_trace_sink(config.obs.trace_sink);
    }
    if (plane != nullptr) {
      plane->peers().set_trace_sink(config.obs.trace_sink);
    }
  }
  std::shared_ptr<obs::PhaseProfiler> profiler;
  std::size_t ph_churn = 0, ph_attack = 0, ph_fault = 0, ph_defense = 0,
              ph_maintenance = 0, ph_repair = 0;
  if (config.obs.profile) {
    profiler = std::make_shared<obs::PhaseProfiler>();
    ph_churn = profiler->phase("churn");
    ph_attack = profiler->phase("attack");
    ph_fault = profiler->phase("fault");
    ph_defense = profiler->phase("defense");
    ph_maintenance = profiler->phase("maintenance");
    if (config.repair_partitions) ph_repair = profiler->phase("repair");
  }
  obs::PhaseProfiler* prof = profiler.get();
  const auto timed = [prof](std::size_t ph, auto&& fn) {
    if (prof != nullptr) {
      obs::PhaseProfiler::Scope scope(*prof, ph);
      fn();
    } else {
      fn();
    }
  };

  util::Rng maint_rng = master.fork("maintenance");
  // Hook order matters: churn first (membership), then the attack campaign
  // (start/rejoin), then faults (crash/stall the current membership), then
  // the defense (reads last-minute counters), then overlay maintenance
  // (re-links what the defense cut).
  net.add_minute_hook(
      [&, timed](double m) { timed(ph_churn, [&] { churn.on_minute(m); }); });
  net.add_minute_hook(
      [&, timed](double m) { timed(ph_attack, [&] { atk.on_minute(m); }); });
  if (plane != nullptr) {
    fault::FaultPlane* plane_raw = plane.get();
    net.add_minute_hook([&net, plane_raw, timed, ph_fault](double m) {
      timed(ph_fault, [&] {
        plane_raw->on_minute(m);
        // Churn can resurrect a crash-stopped peer (rejoin draws know
        // nothing of the fault process): put it back down — crash-stop is
        // permanent.
        auto& g = net.mutable_graph();
        for (PeerId p = 0; p < g.node_count(); ++p) {
          if (plane_raw->peers().is_crashed(p) && g.is_active(p)) {
            net.on_peer_offline(p);
            g.set_active(p, false);
          }
        }
      });
    });
  }
  defense::Defense* def_raw = def.get();
  net.add_minute_hook([def_raw, timed, ph_defense](double m) {
    timed(ph_defense, [&] { def_raw->on_minute(m); });
  });
  if (config.maintain_overlay) {
    net.add_minute_hook([&, timed, ledger](double /*m*/) {
      timed(ph_maintenance, [&] {
        maintain_overlay(net, atk, maint_rng, config.maintain_min_degree,
                         config.maintain_rate_per_minute, ledger);
      });
    });
  }

  // Partition repair runs last in the mutation pipeline: after churn,
  // cuts and maintenance settled the topology, stranded healthy peers are
  // re-bootstrapped into the main component.
  std::unique_ptr<p2p::PartitionHealer> healer;
  if (config.repair_partitions) {
    healer = std::make_unique<p2p::PartitionHealer>(net.graph(), config.repair,
                                                    master.fork("repair"));
    if (config.obs.trace_sink != nullptr) {
      healer->set_trace_sink(config.obs.trace_sink);
    }
    p2p::PartitionHealer* healer_raw = healer.get();
    net.add_minute_hook([&, healer_raw, ledger, timed, ph_repair](double m) {
      timed(ph_repair, [&] {
        healer_raw->heal(
            m,
            [&](PeerId p) {
              return net.graph().is_active(p) && !atk.is_agent(p) &&
                     (ledger == nullptr || !ledger->blocked(p));
            },
            [&](PeerId a, PeerId b) {
              if (!net.mutable_graph().add_edge(a, b)) return false;
              net.on_edge_added(a, b);
              return true;
            });
      });
    });
  }

  // Caller inspection: runs after the full mutation pipeline settled, so
  // invariant checks (soak harness) see exactly the state the next minute
  // starts from. Read-only by contract.
  if (config.inspect) {
    ScenarioView view;
    view.net = &net;
    view.attack = &atk;
    view.churn = &churn;
    if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def.get())) {
      view.ddpolice = &ddp->protocol();
    }
    view.ledger = ledger;
    view.healer = healer.get();
    view.fault = plane.get();
    net.add_minute_hook(
        [view, inspect = config.inspect](double m) { inspect(m, view); });
  }

  // Metrics snapshots: registered last so every per-minute value reflects
  // the completed hook pipeline for that minute.
  std::shared_ptr<obs::MetricsRegistry> registry;
  if (config.obs.metrics) {
    registry = std::make_shared<obs::MetricsRegistry>();
    obs::MetricsRegistry* reg = registry.get();
    const obs::MetricId m_traffic = reg->gauge("flow.traffic_messages");
    const obs::MetricId m_attack = reg->gauge("flow.attack_messages");
    const obs::MetricId m_dropped = reg->gauge("flow.dropped");
    const obs::MetricId m_dropped_good = reg->gauge("flow.dropped_good");
    const obs::MetricId m_dropped_attack = reg->gauge("flow.dropped_attack");
    const obs::MetricId m_success = reg->gauge("flow.success_rate");
    const obs::MetricId m_response = reg->gauge("flow.response_time");
    const obs::MetricId m_reach = reg->gauge("flow.reach_per_query");
    const obs::MetricId m_util = reg->gauge("flow.mean_utilization");
    const obs::MetricId m_overhead = reg->gauge("flow.overhead_messages");
    const obs::MetricId m_active = reg->gauge("net.active_peers");
    const obs::MetricId m_joins = reg->gauge("churn.joins");
    const obs::MetricId m_leaves = reg->gauge("churn.leaves");
    const obs::MetricId m_rounds = reg->gauge("defense.rounds");
    const obs::MetricId m_suspicions = reg->gauge("defense.suspicions");
    const obs::MetricId m_cuts = reg->gauge("defense.decisions");
    const obs::MetricId m_timeouts = reg->gauge("fault.timeouts");
    const obs::MetricId m_retries = reg->gauge("fault.retries");
    const obs::MetricId m_quarantines = reg->gauge("defense.quarantines");
    const obs::MetricId m_probations = reg->gauge("defense.probations");
    const obs::MetricId m_reinstated = reg->gauge("defense.reinstatements");
    const obs::MetricId m_bans = reg->gauge("defense.bans");
    const obs::MetricId m_repaired = reg->gauge("repair.peers_repaired");
    const obs::MetricId m_edge_slots = reg->gauge("topology.edge_slots");
    const obs::MetricId m_edge_live = reg->gauge("topology.edge_live");
    const obs::MetricId m_success_hist =
        reg->histogram("flow.success_rate_hist", 0.0, 1.0, 20);
    fault::FaultPlane* plane_raw = plane.get();
    auto* ddp_raw = dynamic_cast<defense::DdPoliceDefense*>(def.get());
    const core::QuarantineLedger* ledger_raw = ledger;
    p2p::PartitionHealer* healer_obs = healer.get();
    net.add_minute_hook([=, &net, &churn](double m) {
      const auto& r = net.last_minute_report();
      reg->set(m_traffic, r.traffic_messages);
      reg->set(m_attack, r.attack_messages);
      reg->set(m_dropped, r.dropped);
      reg->set(m_dropped_good, r.dropped_good);
      reg->set(m_dropped_attack, r.dropped_attack);
      reg->set(m_success, r.success_rate);
      reg->set(m_response, r.response_time);
      reg->set(m_reach, r.reach_per_query);
      reg->set(m_util, r.mean_utilization);
      reg->set(m_overhead, r.overhead_messages);
      reg->set(m_active, static_cast<double>(net.graph().active_count()));
      reg->set(m_joins, static_cast<double>(churn.joins()));
      reg->set(m_leaves, static_cast<double>(churn.leaves()));
      if (ddp_raw != nullptr) {
        reg->set(m_rounds, static_cast<double>(ddp_raw->protocol().rounds_run()));
        reg->set(m_suspicions,
                 static_cast<double>(ddp_raw->protocol().suspicions()));
        reg->set(m_cuts,
                 static_cast<double>(ddp_raw->protocol().decisions().size()));
      }
      if (plane_raw != nullptr) {
        reg->set(m_timeouts, static_cast<double>(plane_raw->control().timeouts));
        reg->set(m_retries, static_cast<double>(plane_raw->control().retries));
      }
      if (ledger_raw != nullptr) {
        const auto& qs = ledger_raw->stats();
        reg->set(m_quarantines, static_cast<double>(qs.quarantines));
        reg->set(m_probations, static_cast<double>(qs.probations));
        reg->set(m_reinstated, static_cast<double>(qs.reinstatements));
        reg->set(m_bans, static_cast<double>(qs.bans));
      }
      if (healer_obs != nullptr) {
        reg->set(m_repaired, static_cast<double>(healer_obs->peers_repaired()));
      }
      // Slot-slab occupancy: capacity tracks the high-water mark of live
      // directed edges (free-list reuse keeps it from growing with churn).
      const auto& ei = net.graph().edge_index();
      reg->set(m_edge_slots, static_cast<double>(ei.capacity()));
      reg->set(m_edge_live, static_cast<double>(ei.live_count()));
      reg->observe(m_success_hist, r.success_rate);
      reg->snapshot_minute(m);
    });
  }

  if (prof != nullptr) {
    // "flow_ticks" is the engine stepping time *excluding* the hooks, so
    // the phase shares in the report partition the run's wall clock.
    const std::size_t ph_run = profiler->phase("flow_ticks");
    const std::uint64_t t0 = obs::wall_ns();
    net.run_minutes(config.total_minutes);
    const std::uint64_t total = obs::wall_ns() - t0;
    const std::uint64_t hooks = profiler->total_wall_nanos();
    profiler->add(ph_run, total > hooks ? total - hooks : 0);
  } else {
    net.run_minutes(config.total_minutes);
  }

  ScenarioResult result;
  result.history = net.minute_history();
  result.summary = metrics::summarize(result.history, config.warmup_minutes);
  result.decisions = def->decisions();
  result.is_bad.assign(graph.node_count(), 0);
  for (PeerId a : atk.agents()) result.is_bad[a] = 1;
  result.errors = metrics::tally_errors(result.decisions, result.is_bad,
                                        config.attack.start_minute);
  result.attack_rejoins = atk.rejoins();
  result.final_active_peers = static_cast<double>(graph.active_count());
  if (auto* ddp = dynamic_cast<defense::DdPoliceDefense*>(def.get())) {
    result.defense_exchange_messages = ddp->protocol().exchange_messages();
    result.defense_traffic_messages = ddp->protocol().traffic_messages();
    result.defense_rounds = ddp->protocol().rounds_run();
    if (const core::QuarantineLedger* lg = ddp->protocol().ledger()) {
      result.reinstatements = lg->reinstatements();
      result.quarantine = lg->stats();
    }
  }
  if (healer != nullptr) {
    result.partition_sweeps = healer->sweeps();
    result.partitions_seen = healer->partitions_seen();
    result.peers_repaired = healer->peers_repaired();
  }
  if (plane != nullptr) {
    result.fault_control = plane->control();
    result.fault_channel = plane->channel().counters();
    result.fault_crashes = static_cast<std::size_t>(plane->peers().crash_count());
    result.fault_stalls = static_cast<std::size_t>(plane->peers().stall_count());
    metrics::attach_fault_stats(
        result.summary, result.fault_control.timeouts,
        result.fault_control.retries, result.fault_control.late_replies,
        result.fault_control.corrupt_rejects, result.fault_crashes,
        result.fault_stalls);
  }
  result.metrics_registry = registry;
  result.profile = profiler;
  if (config.obs.trace_sink != nullptr) config.obs.trace_sink->flush();
  return result;
}

ScenarioResult run_baseline(ScenarioConfig config) {
  config.attack.agents = 0;
  config.defense = defense::Kind::kNone;
  // The reference curve runs unobserved: a shared trace sink would
  // otherwise interleave baseline events into the scenario's trace.
  config.obs = ObsConfig{};
  return run_scenario(config);
}

ScenarioConfig paper_scenario(std::size_t peers, std::size_t agents,
                              defense::Kind defense_kind, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.topo.model = topology::Model::kBarabasiAlbert;
  cfg.topo.nodes = peers;
  cfg.topo.ba_links_per_node = 3;
  cfg.content.objects = std::max<std::size_t>(peers * 5, 1000);
  cfg.content.mean_replicas = std::max(4.0, static_cast<double>(peers) / 100.0);
  cfg.attack.agents = agents;
  cfg.attack.start_minute = 5.0;
  cfg.defense = defense_kind;
  cfg.total_minutes = 30.0;
  cfg.warmup_minutes = 6.0;
  return cfg;
}

}  // namespace ddp::experiments
