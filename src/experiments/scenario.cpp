#include "experiments/scenario.hpp"

#include <cmath>

#include "experiments/runtime.hpp"

namespace ddp::experiments {

namespace {

bool pos(double v) noexcept { return std::isfinite(v) && v > 0.0; }
bool nonneg(double v) noexcept { return std::isfinite(v) && v >= 0.0; }
bool prob(double v) noexcept { return std::isfinite(v) && v >= 0.0 && v <= 1.0; }

}  // namespace

std::string validate_config(const ScenarioConfig& config) {
  if (config.topo.nodes < 2) return "topo.nodes must be >= 2";
  if (config.topo.ba_links_per_node < 1) {
    return "topo.ba_links_per_node must be >= 1";
  }
  if (!std::isfinite(config.topo.hc_cutoff_exponent) ||
      config.topo.hc_cutoff_exponent < 1.0 ||
      config.topo.hc_cutoff_exponent > 16.0) {
    return "topo.hc_cutoff_exponent must be within [1, 16] (degree cutoff "
           "k_c ~ n^(1/exponent); 1 reduces to plain BA)";
  }
  if (config.content.objects == 0) return "content.objects must be > 0";
  if (!pos(config.content.mean_replicas)) {
    return "content.mean_replicas must be a finite value > 0";
  }
  if (!nonneg(config.content.popularity_theta)) {
    return "content.popularity_theta must be finite and >= 0";
  }
  if (config.churn.enabled) {
    if (!pos(config.churn.mean_lifetime)) {
      return "churn.mean_lifetime must be a finite value > 0";
    }
    if (!pos(config.churn.lifetime_variance)) {
      return "churn.lifetime_variance must be a finite value > 0";
    }
    if (!nonneg(config.churn.mean_offline)) {
      return "churn.mean_offline must be finite and >= 0";
    }
    if (config.churn.rejoin_links < 1) return "churn.rejoin_links must be >= 1";
    if (!pos(config.churn.pareto_shape)) {
      return "churn.pareto_shape must be a finite value > 0";
    }
  }
  if (config.attack.agents >= config.topo.nodes) {
    return "attack.agents must be fewer than topo.nodes";
  }
  if (!nonneg(config.attack.start_minute)) {
    return "attack.start_minute must be finite and >= 0";
  }
  if (!nonneg(config.attack.rejoin_after_minutes)) {
    return "attack.rejoin_after_minutes must be finite and >= 0";
  }
  if (const std::string err = core::validate(config.ddpolice); !err.empty()) {
    return err;
  }
  if (config.ddpolice.adaptive.enabled &&
      config.defense != defense::Kind::kDdPolice) {
    return "ddpolice.adaptive.enabled requires defense=ddpolice (the bands "
           "are learned from DD-POLICE's own monitors)";
  }
  if (const std::string err = workload::validate(config.flash); !err.empty()) {
    return err;
  }
  {
    const auto& a = config.attack;
    if (!nonneg(a.ramp_minutes)) {
      return "attack.ramp_minutes must be finite and >= 0";
    }
    if (!nonneg(a.ramp_target_scale)) {
      return "attack.ramp_target_scale must be finite and >= 0";
    }
    if (!nonneg(a.pulse_on_minutes) || !nonneg(a.pulse_off_minutes)) {
      return "attack.pulse_on/off_minutes must be finite and >= 0";
    }
    if (a.sourcing == attack::SourcingStrategy::kPulse &&
        a.pulse_on_minutes + a.pulse_off_minutes <= 0.0) {
      return "attack.pulse_on_minutes + pulse_off_minutes must be > 0";
    }
    if (!nonneg(a.pulse_scale)) {
      return "attack.pulse_scale must be finite and >= 0";
    }
    if (!pos(a.probe_step_scale) || a.probe_step_scale > 1.0) {
      return "attack.probe_step_scale must be within (0, 1]";
    }
    if (!prob(a.probe_backoff)) {
      return "attack.probe_backoff must be within [0, 1]";
    }
  }
  if (!pos(config.naive_cut_threshold)) {
    return "naive_cut_threshold must be a finite value > 0";
  }
  if (config.flow.ttl < 1 || config.flow.ttl > flow::kMaxTtl) {
    return "flow.ttl must be within [1, 8]";
  }
  if (!pos(config.flow.tick_seconds)) {
    return "flow.tick_seconds must be a finite value > 0";
  }
  if (!pos(config.flow.capacity_per_minute)) {
    return "flow.capacity_per_minute must be a finite value > 0";
  }
  if (!nonneg(config.flow.good_issue_per_minute)) {
    return "flow.good_issue_per_minute must be finite and >= 0";
  }
  if (!nonneg(config.flow.attack_target_per_minute)) {
    return "flow.attack_target_per_minute must be finite and >= 0";
  }
  if (!nonneg(config.flow.hop_latency)) {
    return "flow.hop_latency must be finite and >= 0";
  }
  if (!nonneg(config.flow.max_queue_delay)) {
    return "flow.max_queue_delay must be finite and >= 0";
  }
  if (!nonneg(config.flow.recalibrate_minutes)) {
    return "flow.recalibrate_minutes must be finite and >= 0";
  }
  if (config.flow.calibration_samples < 1) {
    return "flow.calibration_samples must be >= 1";
  }
  if (!std::isfinite(config.flow.link_reliability) ||
      config.flow.link_reliability < 0.0 || config.flow.link_reliability > 2.0) {
    return "flow.link_reliability must be within [0, 2]";
  }
  if (!prob(config.flow.control_reserve_fraction) ||
      config.flow.control_reserve_fraction >= 1.0) {
    return "flow.control_reserve_fraction must be within [0, 1)";
  }
  if (config.flow.jobs > 256) {
    return "flow.jobs must be within [0, 256] (0 = one per hardware thread)";
  }
  if (config.flow.shards > 4096) {
    return "flow.shards must be within [0, 4096] (0 = one per worker)";
  }
  const auto& ch = config.fault.channel;
  if (!prob(ch.drop_probability) || !prob(ch.duplicate_probability) ||
      !prob(ch.corrupt_probability)) {
    return "fault.channel probabilities must be within [0, 1]";
  }
  if (!nonneg(ch.base_delay_seconds) || !nonneg(ch.delay_jitter_seconds)) {
    return "fault.channel delays must be finite and >= 0";
  }
  const auto& pf = config.fault.peer;
  if (!prob(pf.crash_probability_per_minute) ||
      !prob(pf.stall_probability_per_minute) || !prob(pf.slow_peer_fraction)) {
    return "fault.peer probabilities must be within [0, 1]";
  }
  if (!nonneg(pf.stall_duration_seconds)) {
    return "fault.peer.stall_duration_seconds must be finite and >= 0";
  }
  if (!pos(pf.slow_factor)) {
    return "fault.peer.slow_factor must be a finite value > 0";
  }
  if (!pos(config.total_minutes)) {
    return "total_minutes must be a finite value > 0";
  }
  if (!nonneg(config.warmup_minutes) ||
      config.warmup_minutes > config.total_minutes) {
    return "warmup_minutes must be within [0, total_minutes]";
  }
  if (!prob(config.maintain_rate_per_minute)) {
    return "maintain_rate_per_minute must be within [0, 1]";
  }
  if (config.repair_partitions) {
    if (config.repair.max_attempts < 1) {
      return "repair.max_attempts must be >= 1";
    }
    if (config.repair.links < 1) return "repair.links must be >= 1";
  }
  if (config.obs.series_window_minutes > (1u << 20)) {
    return "obs.series_window_minutes must be <= 2^20";
  }
  return {};
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  // The scenario is now a long-lived object with a checkpoint boundary
  // (runtime.hpp); this entry point keeps the one-shot contract every
  // figure bench and test relies on, bit-identical to the pre-runtime
  // implementation.
  ScenarioRuntime runtime(config);
  runtime.run_all();
  return runtime.result();
}

ScenarioResult run_baseline(ScenarioConfig config) {
  config.attack.agents = 0;
  config.defense = defense::Kind::kNone;
  // No defense means no monitors for adaptive bands to learn from; the
  // flag would only trip validation. Flash crowds stay: they are
  // legitimate workload and belong in the baseline.
  config.ddpolice.adaptive.enabled = false;
  // The reference curve runs unobserved: a shared trace sink would
  // otherwise interleave baseline events into the scenario's trace.
  config.obs = ObsConfig{};
  return run_scenario(config);
}

ScenarioConfig paper_scenario(std::size_t peers, std::size_t agents,
                              defense::Kind defense_kind, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.topo.model = topology::Model::kBarabasiAlbert;
  cfg.topo.nodes = peers;
  cfg.topo.ba_links_per_node = 3;
  cfg.content.objects = std::max<std::size_t>(peers * 5, 1000);
  cfg.content.mean_replicas = std::max(4.0, static_cast<double>(peers) / 100.0);
  cfg.attack.agents = agents;
  cfg.attack.start_minute = 5.0;
  cfg.defense = defense_kind;
  cfg.total_minutes = 30.0;
  cfg.warmup_minutes = 6.0;
  return cfg;
}

}  // namespace ddp::experiments
