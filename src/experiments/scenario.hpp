#pragma once

/// \file scenario.hpp
/// One-stop scenario runner: builds the full simulated system — topology,
/// bandwidth map, content model, flow engine, churn, attack campaign,
/// defense — runs it for a configured number of simulated minutes, and
/// returns the measured series plus ground-truth error tallies. Every
/// figure bench and integration test goes through this.

#include <cstdint>
#include <vector>

#include <functional>

#include <memory>

#include <string>

#include "attack/scenario.hpp"
#include "core/config.hpp"
#include "core/quarantine.hpp"
#include "defense/defense.hpp"
#include "fault/plane.hpp"
#include "flow/config.hpp"
#include "metrics/damage.hpp"
#include "metrics/errors.hpp"
#include "metrics/summary.hpp"
#include "obs/forensics.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/series.hpp"
#include "obs/trace.hpp"
#include "p2p/partition.hpp"
#include "topology/generators.hpp"
#include "workload/churn.hpp"
#include "workload/content.hpp"
#include "workload/flash_crowd.hpp"

namespace ddp::flow {
class ChurnDriver;
}

namespace ddp::experiments {

/// Read-only view of the live system handed to inspection hooks: the soak
/// harness asserts standing invariants against these. Pointers are valid
/// only for the duration of the hook call; subsystems a run did not build
/// are null (ledger without kQuarantine, healer without repair, ...).
struct ScenarioView {
  const flow::FlowNetwork* net = nullptr;
  const attack::AttackScenario* attack = nullptr;
  const flow::ChurnDriver* churn = nullptr;
  const core::DdPolice* ddpolice = nullptr;
  const core::QuarantineLedger* ledger = nullptr;
  const p2p::PartitionHealer* healer = nullptr;
  const fault::FaultPlane* fault = nullptr;
};

/// Observability plane of one run. All knobs default off, in which case
/// the scenario constructs nothing, binds nothing, and every engine runs
/// its exact untraced path (bit-identical results, no extra rng draws).
struct ObsConfig {
  /// Caller-owned trace sink; bound to every instrumented subsystem
  /// (flow, churn, attack, DD-POLICE control plane, fault injector).
  /// Must outlive run_scenario. Null = tracing off.
  obs::TraceSink* trace_sink = nullptr;
  /// Collect per-minute metric snapshots into ScenarioResult::metrics.
  bool metrics = false;
  /// Wall-clock profile the minute hooks into ScenarioResult::profile.
  bool profile = false;
  /// Per-attacker forensics into ScenarioResult::forensics: activates the
  /// per-agent causal events (agent_activated, agent_minute) and folds
  /// them — plus the DD-POLICE flag/indicator/cut storyline — live. The
  /// extra events also reach trace_sink when one is set.
  bool forensics = false;
  /// Ring window (minutes) of the per-peer/per-edge rate series collected
  /// into ScenarioResult::series; 0 = no series store.
  std::size_t series_window_minutes = 0;
};

struct ScenarioConfig {
  std::uint64_t seed = 20070710;

  // Topology (paper: 2,000 peers, BRITE-like, average degree ~6).
  topology::GeneratorConfig topo{};

  // Content / workload.
  workload::ContentConfig content{};

  // Churn (paper: mean lifetime 10 min, var mean/2).
  workload::ChurnConfig churn{};

  // Attack campaign (agents = 0 -> no attack).
  attack::AttackConfig attack{};

  // Flash crowds: correlated legitimate query surges (disabled by default;
  // the false-cut stressor for threshold defenses).
  workload::FlashCrowdConfig flash{};

  // Defense.
  defense::Kind defense = defense::Kind::kNone;
  core::DdPoliceConfig ddpolice{};
  double naive_cut_threshold = 500.0;

  // Engine.
  flow::FlowConfig flow{};

  // Fault injection (all-zero by default: the scenario then builds no
  // FaultPlane at all and every subsystem runs its exact fault-free path).
  fault::FaultConfig fault{};

  // Run shape.
  double total_minutes = 30.0;
  double warmup_minutes = 3.0;  ///< excluded from averages

  /// Re-link under-connected good peers each minute (peers keep their
  /// connection count up via host caches; without this, false disconnects
  /// would permanently fragment the overlay).
  bool maintain_overlay = true;
  std::size_t maintain_min_degree = 3;
  /// Probability per minute that an under-connected peer finds replacement
  /// neighbours (host-cache discovery and connection establishment take
  /// time, so being wrongly disconnected carries a real service cost).
  double maintain_rate_per_minute = 0.5;

  /// Detect disconnected components each minute (after maintenance) and
  /// re-bootstrap stranded healthy peers into the main component. Off by
  /// default: the paper's overlay has no repair, and the default run must
  /// stay bit-identical.
  bool repair_partitions = false;
  p2p::RepairConfig repair{};

  // Observability (off by default: zero-cost path).
  ObsConfig obs{};

  /// Inspection hook, run at every completed minute after all mutation
  /// hooks (churn/attack/fault/defense/maintenance/repair) settled. Null
  /// (the default) registers nothing.
  std::function<void(double minute, const ScenarioView& view)> inspect;
};

struct ScenarioResult {
  std::vector<flow::MinuteReport> history;
  metrics::RunSummary summary;       ///< averaged over the measurement window
  metrics::ErrorTally errors;        ///< vs ground truth
  std::vector<core::Decision> decisions;
  std::vector<char> is_bad;          ///< ground truth per peer
  std::size_t attack_rejoins = 0;
  std::uint64_t defense_exchange_messages = 0;
  std::uint64_t defense_traffic_messages = 0;
  std::uint64_t defense_rounds = 0;
  double final_active_peers = 0.0;

  // Self-healing outcomes (empty/zero under CutPolicy::kPermanent).
  std::vector<core::ReinstateRecord> reinstatements;
  core::QuarantineStats quarantine{};
  std::uint64_t partition_sweeps = 0;   ///< healer invocations
  std::uint64_t partitions_seen = 0;    ///< sweeps that found > 1 component
  std::uint64_t peers_repaired = 0;     ///< stranded peers re-bootstrapped

  // Adaptive-band outcomes (all zero unless ddpolice.adaptive.enabled).
  std::uint64_t band_reestimates = 0;
  std::uint64_t suspicion_entries = 0;
  std::uint64_t suspicion_exits = 0;
  // Flash-crowd outcomes (zero unless flash.enabled).
  std::size_t flash_surges = 0;

  // Fault-injection outcomes (all zero on a fault-free run).
  fault::ControlCounters fault_control{};   ///< DD-POLICE timeout/retry tallies
  fault::ChannelCounters fault_channel{};   ///< link-level fates drawn
  std::size_t fault_crashes = 0;            ///< peers crash-stopped
  std::size_t fault_stalls = 0;             ///< stall episodes

  // Observability outputs (null unless the matching ObsConfig knob is on;
  // shared_ptr keeps ScenarioResult copyable for the bench harnesses).
  std::shared_ptr<obs::MetricsRegistry> metrics_registry;
  std::shared_ptr<obs::PhaseProfiler> profile;
  std::shared_ptr<obs::ForensicsAccumulator> forensics;
  std::shared_ptr<obs::SeriesStore> series;
};

/// Range-check every numeric knob of a scenario (engine rates, protocol
/// thresholds, fault probabilities, run shape). Returns an empty string
/// when the configuration is usable, otherwise a human-readable
/// description of the first problem found.
std::string validate_config(const ScenarioConfig& config);

/// Build and run one scenario. Throws std::invalid_argument with the
/// validate_config() message if the configuration is out of range.
ScenarioResult run_scenario(const ScenarioConfig& config);

/// Same configuration with the attack and defense removed — the paper's
/// "no DDoS attack" reference curve and the S(t) baseline for damage.
ScenarioResult run_baseline(ScenarioConfig config);

/// Convenience: paper-shaped config at a given scale.
ScenarioConfig paper_scenario(std::size_t peers, std::size_t agents,
                              defense::Kind defense, std::uint64_t seed);

}  // namespace ddp::experiments
