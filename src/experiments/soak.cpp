#include "experiments/soak.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "core/ddpolice.hpp"
#include "experiments/runtime.hpp"
#include "fault/plane.hpp"
#include "flow/churn_driver.hpp"
#include "flow/network.hpp"
#include "sim/engine.hpp"

namespace ddp::experiments {

namespace {

/// Cumulative counters snapshotted between sweeps for invariant 3.
struct CounterSnapshot {
  std::uint64_t rounds = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t exchange_messages = 0;
  std::uint64_t traffic_messages = 0;
  std::uint64_t decisions = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t repair_sweeps = 0;
  std::uint64_t peers_repaired = 0;
  std::uint64_t edges_added = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t probations = 0;
  std::uint64_t reinstatements = 0;
  std::uint64_t bans = 0;
  std::uint64_t re_isolations = 0;
  std::uint64_t fault_timeouts = 0;
  std::uint64_t fault_retries = 0;
  std::uint64_t crashes = 0;
  std::uint64_t stalls = 0;
};

/// Live invariant checker, shared between the inspection hook closure and
/// run_soak (the ScenarioConfig copy inside run_scenario owns the hook).
struct Checker {
  // Thresholds (copied from SoakConfig).
  double check_every = 1.0;
  double warmup = 10.0;
  double min_connectivity = 0.85;
  double in_flight_factor = 1.0;
  double max_false_cut = 1.0;
  double false_cut_window = 60.0;
  double false_cut_warmup = 0.0;
  std::size_t max_recorded = 32;

  // State.
  double next_check = 0.0;
  CounterSnapshot prev{};
  std::size_t decisions_scanned = 0;      ///< invariant 5 scan cursor
  /// Honest-cut events (minute, peer) still inside the rolling window.
  std::deque<std::pair<double, PeerId>> honest_cut_events;
  std::uint64_t checks = 0;
  std::uint64_t violation_count = 0;
  std::vector<SoakViolation> violations;

  void fail(double minute, std::string what) {
    ++violation_count;
    if (violations.size() < max_recorded) {
      violations.push_back({minute, std::move(what)});
    }
  }

  void mono(double minute, const char* name, std::uint64_t& last,
            std::uint64_t cur) {
    if (cur < last) {
      std::ostringstream os;
      os << name << " went backwards: " << last << " -> " << cur;
      fail(minute, os.str());
    }
    last = cur;
  }

  void check(double minute, const ScenarioView& view) {
    if (minute + 1e-9 < warmup) return;
    if (minute + 1e-9 < next_check) return;
    next_check = minute + check_every;
    ++checks;

    const auto& g = view.net->graph();

    // Invariant 1: the honest, active, non-restricted majority stays in
    // one component. Quarantined/banned peers are isolated by design and
    // agents are hostile, so neither counts against connectivity.
    const p2p::PartitionReport rep = p2p::find_partitions(g);
    std::size_t honest = 0;
    std::size_t in_core = 0;
    for (PeerId p = 0; p < g.node_count(); ++p) {
      if (!g.is_active(p)) continue;
      if (view.attack != nullptr && view.attack->is_agent(p)) continue;
      if (view.ledger != nullptr && view.ledger->blocked(p)) continue;
      ++honest;
      if (g.degree(p) > 0 && rep.label[p] == 0) ++in_core;
    }
    if (honest > 0) {
      const double frac =
          static_cast<double>(in_core) / static_cast<double>(honest);
      if (frac < min_connectivity) {
        std::ostringstream os;
        os << "honest connectivity " << frac << " below floor "
           << min_connectivity << " (" << in_core << "/" << honest
           << " in largest of " << rep.components << " components)";
        fail(minute, os.str());
      }
    }

    // Invariant 2: quarantine ledger coherent, blocked peers isolated.
    if (view.ledger != nullptr) {
      std::string why;
      if (!view.ledger->consistent(&why)) {
        fail(minute, "quarantine ledger inconsistent: " + why);
      }
    }

    // Invariant 2b: the edge-slot index — every engine's shared per-link
    // state authority — stays structurally sound under churn and cuts,
    // and its live slot count tracks the adjacency lists exactly.
    {
      std::string why;
      if (!g.edge_index().consistent(&why)) {
        fail(minute, "edge index inconsistent: " + why);
      }
      if (g.edge_index().live_count() != 2 * g.edge_count()) {
        std::ostringstream os;
        os << "edge index live slots " << g.edge_index().live_count()
           << " != 2 * edge_count " << 2 * g.edge_count();
        fail(minute, os.str());
      }
    }

    // Invariant 3: cumulative counters never move backwards.
    if (view.ddpolice != nullptr) {
      mono(minute, "defense.rounds", prev.rounds, view.ddpolice->rounds_run());
      mono(minute, "defense.suspicions", prev.suspicions,
           view.ddpolice->suspicions());
      mono(minute, "defense.exchange_messages", prev.exchange_messages,
           view.ddpolice->exchange_messages());
      mono(minute, "defense.traffic_messages", prev.traffic_messages,
           view.ddpolice->traffic_messages());
      mono(minute, "defense.decisions", prev.decisions,
           view.ddpolice->decisions().size());
    }
    if (view.churn != nullptr) {
      mono(minute, "churn.joins", prev.joins, view.churn->joins());
      mono(minute, "churn.leaves", prev.leaves, view.churn->leaves());
    }
    if (view.healer != nullptr) {
      mono(minute, "repair.sweeps", prev.repair_sweeps, view.healer->sweeps());
      mono(minute, "repair.peers_repaired", prev.peers_repaired,
           view.healer->peers_repaired());
      mono(minute, "repair.edges_added", prev.edges_added,
           view.healer->edges_added());
    }
    if (view.ledger != nullptr) {
      const core::QuarantineStats& qs = view.ledger->stats();
      mono(minute, "quarantine.quarantines", prev.quarantines, qs.quarantines);
      mono(minute, "quarantine.probations", prev.probations, qs.probations);
      mono(minute, "quarantine.reinstatements", prev.reinstatements,
           qs.reinstatements);
      mono(minute, "quarantine.bans", prev.bans, qs.bans);
      mono(minute, "quarantine.re_isolations", prev.re_isolations,
           qs.re_isolations);
    }
    // Invariant 2c: the fault plane's event timeline — the one discrete
    // event engine in the scenario path — stays structurally sound (heap
    // ordering, slab accounting, handle table, periodic chains).
    if (view.fault != nullptr) {
      std::string why;
      if (!view.fault->peers().timeline().consistent(&why)) {
        fail(minute, "fault timeline engine inconsistent: " + why);
      }
    }

    if (view.fault != nullptr) {
      mono(minute, "fault.timeouts", prev.fault_timeouts,
           view.fault->control().timeouts);
      mono(minute, "fault.retries", prev.fault_retries,
           view.fault->control().retries);
      mono(minute, "fault.crashes", prev.crashes,
           view.fault->peers().crash_count());
      mono(minute, "fault.stalls", prev.stalls,
           view.fault->peers().stall_count());
    }

    // Invariant 5: false-cut *rate* bounded. Every decision names one
    // suspect; the distinct honest suspects cut within the rolling window
    // must stay under the configured fraction of the honest population —
    // a flash crowd may make peers *suspicious* (budget reduction), but
    // the indicator math must keep acquitting them in the buddy rounds it
    // triggers. Enforcement waits out false_cut_warmup (band maturation).
    if (view.ddpolice != nullptr && view.attack != nullptr &&
        max_false_cut < 1.0) {
      const auto& decs = view.ddpolice->decisions();
      for (; decisions_scanned < decs.size(); ++decisions_scanned) {
        const auto& d = decs[decisions_scanned];
        if (!view.attack->is_agent(d.suspect)) {
          honest_cut_events.emplace_back(d.minute, d.suspect);
        }
      }
      while (!honest_cut_events.empty() &&
             honest_cut_events.front().first + false_cut_window < minute) {
        honest_cut_events.pop_front();
      }
      if (minute >= false_cut_warmup) {
        std::set<PeerId> windowed;
        for (const auto& [when, peer] : honest_cut_events) {
          windowed.insert(peer);
        }
        const std::size_t agents = view.attack->agents().size();
        const std::size_t honest_pop =
            g.node_count() > agents ? g.node_count() - agents : 1;
        const double frac = static_cast<double>(windowed.size()) /
                            static_cast<double>(honest_pop);
        if (frac > max_false_cut) {
          std::ostringstream os;
          os << "honest false-cut fraction " << frac << " above bound "
             << max_false_cut << " (" << windowed.size() << "/" << honest_pop
             << " distinct honest peers cut in the last " << false_cut_window
             << " min)";
          fail(minute, os.str());
        }
      }
    }

    // Invariant 4: engine state bounded and per-minute report sane.
    const double in_flight = view.net->total_in_flight();
    const double cap = view.net->config().capacity_per_minute;
    const double bound =
        in_flight_factor * cap * static_cast<double>(g.active_count());
    if (!std::isfinite(in_flight) || in_flight < -1e-9 || in_flight > bound) {
      std::ostringstream os;
      os << "in-flight volume " << in_flight << " outside [0, " << bound
         << "]";
      fail(minute, os.str());
    }
    const flow::MinuteReport& r = view.net->last_minute_report();
    if (!std::isfinite(r.success_rate) || r.success_rate < -1e-9 ||
        r.success_rate > 1.0 + 1e-9) {
      std::ostringstream os;
      os << "success rate " << r.success_rate << " outside [0, 1]";
      fail(minute, os.str());
    }
    if (!std::isfinite(r.mean_utilization) || r.mean_utilization < -1e-9 ||
        r.mean_utilization > 1.0 + 1e-6) {
      std::ostringstream os;
      os << "mean utilization " << r.mean_utilization << " outside [0, 1]";
      fail(minute, os.str());
    }
    if (r.dropped < -1e-9 || r.dropped_good < -1e-9 ||
        r.dropped_attack < -1e-9) {
      fail(minute, "negative drop tally in minute report");
    }
    const double split = r.dropped_good + r.dropped_attack;
    if (std::abs(split - r.dropped) > 1e-6 * std::max(1.0, r.dropped)) {
      std::ostringstream os;
      os << "per-class drop split " << split << " != total dropped "
         << r.dropped;
      fail(minute, os.str());
    }
  }
};

}  // namespace

SoakConfig chaos_soak_config(std::size_t peers, std::size_t agents,
                             double minutes, std::uint64_t seed) {
  SoakConfig cfg;
  ScenarioConfig& s = cfg.scenario;
  s = paper_scenario(peers, agents, defense::Kind::kDdPolice, seed);
  s.total_minutes = minutes;
  s.warmup_minutes = std::min(6.0, minutes / 4.0);

  // Hostile workload: agents rejoin after every cut, churn stays on, and
  // the agents pulse on/off instead of flooding flat-out — the schedule
  // the static thresholds are weakest against.
  s.attack.rejoin = true;
  s.attack.sourcing = attack::SourcingStrategy::kPulse;
  s.attack.pulse_scale = 0.5;
  s.attack.pulse_on_minutes = 2.0;
  s.attack.pulse_off_minutes = 3.0;

  // Flash-crowd regime: a repeating legitimate surge, so every soak
  // exercises the false-cut stressor alongside the attack.
  s.flash.enabled = true;
  s.flash.start_minute = 8.0;
  s.flash.surge_minutes = 4.0;
  s.flash.repeat_every_minutes = 10.0;
  s.flash.surge_factor = 15.0;
  s.flash.participation = 0.2;

  // Full self-healing stack, with the adaptive cut bands learning on top
  // of it (the pulsing agents above are invisible to the static rails).
  s.ddpolice.adaptive.enabled = true;
  s.ddpolice.cut_policy = core::CutPolicy::kQuarantine;
  s.ddpolice.quarantine_minutes = 8.0;
  s.ddpolice.quarantine_growth = 2.0;
  s.ddpolice.probation_minutes = 4.0;
  s.ddpolice.probation_budget = 0.25;
  s.ddpolice.max_strikes = 3;
  s.flow.admission = flow::AdmissionPolicy::kPriority;
  s.repair_partitions = true;

  // Chaos: lossy control links, crash-stop and stall faults, slow peers.
  s.fault.channel.drop_probability = 0.03;
  s.fault.channel.corrupt_probability = 0.01;
  s.fault.channel.delay_jitter_seconds = 0.4;
  s.fault.peer.crash_probability_per_minute = 2e-4;
  s.fault.peer.stall_probability_per_minute = 3e-3;
  s.fault.peer.stall_duration_seconds = 90.0;
  s.fault.peer.slow_peer_fraction = 0.1;

  cfg.check_warmup_minutes = std::max(10.0, s.warmup_minutes);
  // Invariant 5: even through the surges, the defense may never amputate
  // more than this fraction of the honest overlay per rolling hour. The
  // chaos regime (lossy control plane, count-as-zero timeouts, pulsing
  // agents) misjudges ~4-11% of a 150-peer soak's honest population per
  // hour once the learned bands mature; the bound sits above that
  // operating point but far below anything resembling amputation. The
  // first two hours are excluded: immature bands judge flash-surge
  // forwarders against the static fallbacks while reports are being
  // dropped, and that startup burst peaks near 0.39 before settling.
  cfg.max_false_cut_fraction = 0.15;
  cfg.false_cut_window_minutes = 60.0;
  cfg.false_cut_warmup_minutes = 120.0;
  return cfg;
}

SoakReport run_soak(const SoakConfig& config) {
  auto checker = std::make_shared<Checker>();
  checker->check_every = config.check_every_minutes;
  checker->warmup = config.check_warmup_minutes;
  checker->min_connectivity = config.min_honest_connectivity;
  checker->in_flight_factor = config.max_in_flight_capacity_factor;
  checker->max_false_cut = config.max_false_cut_fraction;
  checker->false_cut_window = config.false_cut_window_minutes;
  checker->false_cut_warmup = config.false_cut_warmup_minutes;
  checker->max_recorded = config.max_recorded_violations;

  ScenarioConfig sc = config.scenario;
  sc.inspect = [checker](double minute, const ScenarioView& view) {
    checker->check(minute, view);
  };

  // Minute-driven runtime so the soak can checkpoint, be killed at a
  // boundary and later resumed from the snapshot (crash-resume drill).
  ScenarioRuntime runtime(sc);
  if (!config.restore_path.empty()) runtime.load_file(config.restore_path);

  const double total = sc.total_minutes;
  const double stop = config.kill_at_minute > 0.0
                          ? std::min(config.kill_at_minute, total)
                          : total;
  double m = runtime.current_minute();
  double next_ckpt = m + config.checkpoint_every_minutes;
  while (m + 1e-9 < stop) {
    m = std::min(m + 1.0, stop);
    runtime.run_to_minute(m);
    if (!config.checkpoint_path.empty() &&
        config.checkpoint_every_minutes > 0.0 && m + 1e-9 >= next_ckpt) {
      runtime.save_file(config.checkpoint_path);
      next_ckpt += config.checkpoint_every_minutes;
    }
  }
  const bool killed = stop + 1e-9 < total;
  if (killed && !config.checkpoint_path.empty()) {
    runtime.save_file(config.checkpoint_path);
  }

  SoakReport report;
  report.result = runtime.result();
  report.minutes = m;
  report.killed = killed;
  report.checks = checker->checks;
  report.violation_count = checker->violation_count;
  report.violations = std::move(checker->violations);
  return report;
}

std::string soak_verdict(const SoakReport& report) {
  std::ostringstream os;
  os << (report.passed() ? "PASS" : "FAIL") << ": " << report.minutes
     << " min soak" << (report.killed ? " (killed at checkpoint)" : "")
     << ", " << report.checks << " invariant sweeps, "
     << report.violation_count << " violations"
     << " | quarantines=" << report.result.quarantine.quarantines
     << " reinstated=" << report.result.quarantine.reinstatements
     << " bans=" << report.result.quarantine.bans
     << " repaired=" << report.result.peers_repaired
     << " rejoins=" << report.result.attack_rejoins;
  if (!report.violations.empty()) {
    os << "\n  first violation @" << report.violations.front().minute << ": "
       << report.violations.front().what;
  }
  return os.str();
}

}  // namespace ddp::experiments
