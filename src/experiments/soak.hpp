#pragma once

/// \file soak.hpp
/// Chaos soak harness: run a hostile scenario — flooding agents that
/// rejoin, heavy churn, lossy links, peer crash/stall faults — with the
/// full self-healing stack enabled (quarantine cuts, priority shedding,
/// partition repair), and assert a set of standing invariants at every
/// simulated minute. A soak passes when the system survived the whole
/// schedule with zero invariant violations.
///
/// Standing invariants (checked after the warmup window):
///   1. Connectivity — the honest, active, non-quarantined majority stays
///      in one overlay component (fraction in the largest component at or
///      above a configured floor).
///   2. Quarantine consistency — the ledger's internal state machine is
///      coherent and every blocked peer really is isolated (no leaked
///      edges to quarantined or banned peers).
///   3. Monotonicity — every cumulative counter (protocol rounds,
///      suspicions, churn joins/leaves, repair sweeps, quarantine stats)
///      only ever grows.
///   4. Bounded engine state — in-flight volume stays finite and below a
///      capacity-derived ceiling; per-minute report fields stay in range
///      and the per-class drop split sums to the total.
///   5. Bounded false-cut rate — within any rolling window, the distinct
///      honest peers the defense cut stay below a configured fraction of
///      the honest population, even through flash-crowd surges (the
///      adaptive rails must reduce budgets, not amputate the overlay).
///      Windowed, not cumulative: over an 8-hour soak the set of peers
///      *ever* misjudged grows without bound even when the steady-state
///      rate is tiny, so a cumulative bound measures soak length, not
///      defense quality.

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"

namespace ddp::experiments {

struct SoakConfig {
  /// Full system under test. chaos_soak_config() fills a hostile default;
  /// callers may tune any knob before running.
  ScenarioConfig scenario{};

  /// Minutes between invariant sweeps (1.0 = every completed minute).
  double check_every_minutes = 1.0;
  /// Invariant checks start after this many minutes (the overlay needs a
  /// few minutes of calibration and ramp-up before "steady state" holds).
  double check_warmup_minutes = 10.0;

  /// Invariant 1: minimum fraction of honest, active, non-restricted
  /// peers that must sit in the largest overlay component.
  double min_honest_connectivity = 0.85;

  /// Invariant 4: in-flight ceiling as a multiple of
  /// active_peers * capacity_per_minute (generous — per-tick in-flight is
  /// far below a full minute of fleet-wide capacity unless state leaks).
  double max_in_flight_capacity_factor = 1.0;

  /// Invariant 5: maximum fraction of the honest population the defense
  /// may cut within any rolling false_cut_window_minutes window (distinct
  /// peers per window). 1.0 disables the bound.
  double max_false_cut_fraction = 1.0;
  /// Invariant 5: width of the rolling window the fraction is measured
  /// over.
  double false_cut_window_minutes = 60.0;
  /// Invariant 5: enforcement starts at this minute (cut events before it
  /// still enter the window). Learned cut bands need a maturation period;
  /// until then the defense judges flash-surge forwarders against the
  /// static fallbacks under a lossy control plane, and the startup burst
  /// of misjudgements says nothing about steady-state behaviour.
  double false_cut_warmup_minutes = 0.0;

  /// Violations recorded verbatim (all are *counted* regardless).
  std::size_t max_recorded_violations = 32;

  /// Crash-resume drill (empty/zero = off). With a checkpoint_path set the
  /// soak snapshots the full runtime there every checkpoint_every_minutes
  /// completed minutes (0 = only at kill). kill_at_minute > 0 stops the
  /// soak at that minute boundary after writing a final checkpoint — the
  /// harness then runs a second soak with restore_path set to the same
  /// file, which must replay the remaining schedule exactly as an
  /// uninterrupted run would have.
  std::string checkpoint_path;
  double checkpoint_every_minutes = 0.0;
  double kill_at_minute = 0.0;
  std::string restore_path;
};

/// One failed invariant check.
struct SoakViolation {
  double minute = 0.0;
  std::string what;
};

struct SoakReport {
  double minutes = 0.0;             ///< absolute minute the soak reached
  std::uint64_t checks = 0;         ///< invariant sweeps executed
  std::uint64_t violation_count = 0;
  std::vector<SoakViolation> violations;  ///< first max_recorded_violations
  ScenarioResult result;            ///< full run telemetry
  bool killed = false;  ///< stopped early at kill_at_minute (checkpoint written)

  bool passed() const noexcept { return violation_count == 0; }
};

/// Hostile-but-survivable default schedule at the given scale: flooding
/// agents with rejoin, churn, link faults, crash/stall faults, quarantine
/// cut policy, priority admission, and partition repair all enabled.
SoakConfig chaos_soak_config(std::size_t peers, std::size_t agents,
                             double minutes, std::uint64_t seed);

/// Run the soak: executes the scenario with an inspection hook that
/// evaluates the standing invariants each check interval.
SoakReport run_soak(const SoakConfig& config);

/// Render a human-readable one-line verdict (for benches and CI logs).
std::string soak_verdict(const SoakReport& report);

}  // namespace ddp::experiments
