#pragma once

/// \file sweep.hpp
/// SweepRunner: deterministic trial-granularity parallelism for the
/// figure sweeps. A sweep is a list of independent units — typically one
/// (config row, trial seed) cell — each of which builds its whole world
/// from its own seed (engine, RNG streams, tracer, metrics; run_scenario
/// is self-contained by design). The runner evaluates the units across a
/// util::ThreadPool and returns results **in index order**, so every
/// reduction downstream (float accumulation included) happens in exactly
/// the order the old serial loops used: the output is invariant under
/// the jobs count, byte for byte.
///
/// jobs == 1 runs inline on the calling thread with no pool at all,
/// which is the reference ordering the parallel path must reproduce.

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace ddp::experiments {

class SweepRunner {
 public:
  /// `jobs` worker threads; 0 means one per hardware thread.
  explicit SweepRunner(unsigned jobs = 1)
      : jobs_(util::resolve_jobs(jobs)) {}

  unsigned jobs() const noexcept { return jobs_; }

  /// Evaluate fn(0), …, fn(n-1) — concurrently when jobs() > 1 — and
  /// return the results indexed by input position. fn must be
  /// self-contained per index: no shared mutable state, no ordering
  /// assumptions. If any unit throws, the exception of the lowest index
  /// is rethrown after all units finished.
  template <typename Fn,
            typename R = std::invoke_result_t<Fn, std::size_t>>
  std::vector<R> map(std::size_t n, Fn&& fn) {
    std::vector<std::optional<R>> out(n);
    std::vector<std::exception_ptr> errors(n);
    if (jobs_ <= 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i].emplace(fn(i));
      }
    } else {
      util::ThreadPool pool(static_cast<unsigned>(
          std::min<std::size_t>(jobs_, n)));
      for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i] {
          try {
            out[i].emplace(fn(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool.wait_idle();
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
    std::vector<R> results;
    results.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      results.push_back(std::move(*out[i]));
    }
    return results;
  }

 private:
  unsigned jobs_;
};

}  // namespace ddp::experiments
