#include "experiments/testbed.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

#include "util/rng.hpp"

namespace ddp::experiments {

namespace {

// ---- tiny flat-JSON field extractors -------------------------------------
// The node stats lines are flat except for embedded arrays we don't need
// per-field access into; keyed scalar extraction is enough and avoids a
// JSON dependency.

std::string_view find_value(std::string_view line, std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return {};
  return line.substr(pos + needle.size());
}

bool json_number(std::string_view line, std::string_view key, double* out) {
  const std::string_view v = find_value(line, key);
  if (v.empty()) return false;
  try {
    *out = std::stod(std::string(v.substr(0, v.find_first_of(",}]"))));
  } catch (...) {
    return false;
  }
  return true;
}

bool json_string(std::string_view line, std::string_view key,
                 std::string* out) {
  std::string_view v = find_value(line, key);
  if (v.empty() || v.front() != '"') return false;
  v.remove_prefix(1);
  const auto end = v.find('"');
  if (end == std::string_view::npos) return false;
  *out = std::string(v.substr(0, end));
  return true;
}

bool json_bool(std::string_view line, std::string_view key, bool* out) {
  const std::string_view v = find_value(line, key);
  if (v.empty()) return false;
  *out = v.substr(0, 4) == "true";
  return true;
}

}  // namespace

TestbedPlan make_plan(const TestbedConfig& config) {
  TestbedPlan plan;
  plan.config = config;

  util::Rng rng(config.seed, /*stream=*/0x7e57bedull);
  topology::GeneratorConfig gen;
  gen.model = config.model;
  gen.nodes = config.peers;
  gen.ba_links_per_node = config.links_per_node;
  const topology::Graph graph = topology::generate(gen, rng);

  // Attacker cohort: uniform without replacement (Fisher-Yates prefix).
  std::vector<std::uint32_t> order(config.peers);
  for (std::uint32_t i = 0; i < config.peers; ++i) order[i] = i;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const auto j =
        i + rng.below(static_cast<std::uint32_t>(order.size() - i));
    std::swap(order[i], order[j]);
  }
  std::set<std::uint32_t> cohort(
      order.begin(),
      order.begin() + static_cast<std::ptrdiff_t>(
                          std::min(config.attackers, config.peers)));

  plan.nodes.resize(config.peers);
  for (std::uint32_t i = 0; i < config.peers; ++i) {
    NodePlan& n = plan.nodes[i];
    n.index = i;
    n.port = static_cast<std::uint16_t>(config.port_base + i);
    n.attacker = cohort.count(i) != 0;
    n.planned_degree = graph.degree(i);
    // Each undirected edge is dialed once, by its higher-index endpoint,
    // so the realised overlay equals the generated graph.
    for (const PeerId nb : graph.neighbors(i)) {
      if (nb < i) {
        n.bootstrap.push_back(
            static_cast<std::uint16_t>(config.port_base + nb));
      }
    }
    std::sort(n.bootstrap.begin(), n.bootstrap.end());
  }
  return plan;
}

void write_plan(const TestbedPlan& plan, std::ostream& out) {
  const TestbedConfig& c = plan.config;
  out << "# ddp testbed plan\n";
  out << "# peers=" << c.peers << " attackers=" << c.attackers
      << " seed=" << c.seed << " port_base=" << c.port_base
      << " minute_seconds=" << c.minute_seconds
      << " duration_min=" << c.duration_minutes
      << " attack_start=" << c.attack_start_minute << "\n";
  for (const NodePlan& n : plan.nodes) {
    out << "index=" << n.index << " port=" << n.port;
    out << " bootstrap=";
    for (std::size_t i = 0; i < n.bootstrap.size(); ++i) {
      if (i != 0) out << ',';
      out << n.bootstrap[i];
    }
    out << " port_base=" << c.port_base << " ttl=" << unsigned(c.ttl)
        << " query_rate=" << c.query_rate_per_minute
        << " hit_prob=" << c.hit_probability
        << " attacker=" << (n.attacker ? 1 : 0)
        << " attack_rate=" << c.attack_rate_per_minute
        << " attack_start=" << c.attack_start_minute
        << " minute_seconds=" << c.minute_seconds
        << " duration_min=" << c.duration_minutes
        << " warning=" << c.ddp.warning_threshold
        << " ct=" << c.ddp.cut_threshold << " q=" << c.ddp.good_issue_bound
        << " capacity=" << c.ddp.capacity_bound_per_minute
        << " suppression_s=" << c.ddp.suppression_window_seconds
        << " collect_s=" << c.ddp.collect_timeout_seconds
        << " exchange_min=" << c.ddp.exchange_period_minutes
        << " seed=" << (c.seed + n.index) << "\n";
  }
}

TestbedReport aggregate_stats(const std::string& stats_dir) {
  TestbedReport report;
  // address -> attacker?, gathered from start lines before classifying cuts.
  std::map<std::string, bool> attacker_by_address;
  struct RawCut {
    double index = 0, minute = 0, g = 0, s = 0;
    std::string suspect;
  };
  std::vector<RawCut> raw;

  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(stats_dir, ec)) {
    if (entry.path().extension() == ".jsonl") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      std::string type;
      if (!json_string(line, "type", &type)) continue;
      if (type == "start") {
        ++report.nodes_reporting;
        std::string address;
        bool attacker = false;
        if (json_string(line, "address", &address)) {
          json_bool(line, "attacker", &attacker);
          attacker_by_address[address] = attacker;
          if (attacker) ++report.attackers;
        }
      } else if (type == "cut") {
        RawCut c;
        json_number(line, "index", &c.index);
        json_number(line, "minute", &c.minute);
        json_number(line, "g", &c.g);
        json_number(line, "s", &c.s);
        json_string(line, "suspect", &c.suspect);
        raw.push_back(std::move(c));
      } else if (type == "final") {
        ++report.finals_reporting;
        double v = 0;
        if (json_number(line, "issued", &v))
          report.total_issued += static_cast<std::uint64_t>(v);
        if (json_number(line, "forwarded", &v))
          report.total_forwarded += static_cast<std::uint64_t>(v);
        if (json_number(line, "hits", &v))
          report.total_hits += static_cast<std::uint64_t>(v);
      }
    }
  }

  std::map<std::string, double> first_cut;  // attacker address -> minute
  std::set<std::string> honest_suspects;
  for (const RawCut& c : raw) {
    CutEvent e;
    e.judge_index = static_cast<std::uint32_t>(c.index);
    e.suspect = c.suspect;
    e.minute = c.minute;
    e.g = c.g;
    e.s = c.s;
    const auto it = attacker_by_address.find(c.suspect);
    e.suspect_is_attacker = it != attacker_by_address.end() && it->second;
    if (e.suspect_is_attacker) {
      auto [slot, fresh] = first_cut.try_emplace(c.suspect, c.minute);
      if (!fresh) slot->second = std::min(slot->second, c.minute);
    } else {
      honest_suspects.insert(c.suspect);
    }
    report.cuts.push_back(std::move(e));
  }
  std::sort(report.cuts.begin(), report.cuts.end(),
            [](const CutEvent& a, const CutEvent& b) {
              return a.minute < b.minute;
            });

  report.attackers_cut = first_cut.size();
  report.honest_cut = honest_suspects.size();
  if (!first_cut.empty()) {
    double sum = 0.0, first = 1e300;
    for (const auto& [addr, minute] : first_cut) {
      sum += minute;
      first = std::min(first, minute);
    }
    report.first_detection_minute = first;
    report.mean_detection_minute = sum / double(first_cut.size());
  }
  return report;
}

void write_report_csv(const TestbedReport& report, double attack_start_minute,
                      std::ostream& out) {
  out << "minute,judge,suspect,suspect_is_attacker,g,s\n";
  for (const CutEvent& e : report.cuts) {
    out << e.minute << ',' << e.judge_index << ',' << e.suspect << ','
        << (e.suspect_is_attacker ? 1 : 0) << ',' << e.g << ',' << e.s
        << "\n";
  }
  out << "# nodes=" << report.nodes_reporting
      << " attackers=" << report.attackers << " attackers_cut="
      << report.attackers_cut << " honest_cut=" << report.honest_cut
      << " first_detection_min=" << report.first_detection_minute
      << " mean_detection_min=" << report.mean_detection_minute
      << " detection_latency_min="
      << (report.first_detection_minute < 0
              ? -1.0
              : report.first_detection_minute - attack_start_minute)
      << "\n";
}

void print_report(const TestbedReport& report, double attack_start_minute,
                  std::ostream& out) {
  out << "nodes_reporting=" << report.nodes_reporting
      << " finals=" << report.finals_reporting << "\n";
  out << "attackers=" << report.attackers << " attackers_cut="
      << report.attackers_cut << " honest_cut=" << report.honest_cut
      << " cut_events=" << report.cuts.size() << "\n";
  if (report.first_detection_minute >= 0) {
    out << "first_detection_minute=" << report.first_detection_minute
        << " mean_detection_minute=" << report.mean_detection_minute
        << " detection_latency_minutes="
        << report.first_detection_minute - attack_start_minute << "\n";
  } else {
    out << "first_detection_minute=-1 (no attacker cut)\n";
  }
  out << "issued=" << report.total_issued
      << " forwarded=" << report.total_forwarded
      << " hits=" << report.total_hits << "\n";
}

}  // namespace ddp::experiments
