#pragma once

/// \file testbed.hpp
/// Multi-process localhost testbed: planning and log aggregation for the
/// real-socket deployment mode (src/netengine).
///
/// The testbed reproduces the paper's LimeWire micro-experiment at
/// adjustable scale: N real ddpnode processes on 127.0.0.1, wired into a
/// generated overlay, with an attacker cohort that starts flooding at a
/// known protocol minute. This module is deliberately engine-free — it
/// only *plans* the run (which process listens where, who dials whom,
/// who is compromised) and *aggregates* the JSONL stats streams the
/// node processes write, so it lives in ddp_experiments and is usable
/// from both the ddptestbed CLI and the check.sh --net gate.
///
/// Plan file format: '#'-prefixed metadata lines followed by one
/// "key=value ..." argument line per node, consumable verbatim as a
/// ddpnode command line (scripts/testbed.sh does exactly that).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "topology/generators.hpp"

namespace ddp::experiments {

struct TestbedConfig {
  std::size_t peers = 100;
  std::size_t attackers = 3;

  /// Overlay shape (BA by default — the paper's evaluation family).
  topology::Model model = topology::Model::kBarabasiAlbert;
  std::size_t links_per_node = 3;

  /// Transport plan: node i listens on port_base + i.
  std::uint16_t port_base = 42000;

  /// Wall seconds per protocol minute (testbed acceleration) and run
  /// length in protocol minutes.
  double minute_seconds = 0.5;
  double duration_minutes = 6.0;

  double query_rate_per_minute = 2.0;
  double hit_probability = 0.05;
  std::uint8_t ttl = 5;

  double attack_rate_per_minute = 2000.0;
  double attack_start_minute = 1.0;

  core::DdPoliceConfig ddp{};
  std::uint64_t seed = 1;
};

struct NodePlan {
  std::uint32_t index = 0;
  std::uint16_t port = 0;
  bool attacker = false;
  /// Ports this node dials at startup. Each overlay edge is dialed by
  /// exactly one endpoint (the higher index), so the realised topology
  /// matches the generated graph without duplicate links.
  std::vector<std::uint16_t> bootstrap;
  std::size_t planned_degree = 0;
};

struct TestbedPlan {
  TestbedConfig config;
  std::vector<NodePlan> nodes;
};

/// Generate the overlay, pick the attacker cohort (uniformly, seeded),
/// and assign ports and dial directions.
TestbedPlan make_plan(const TestbedConfig& config);

/// Render the plan in the plan-file format described above.
void write_plan(const TestbedPlan& plan, std::ostream& out);

/// One judge->suspect disconnect observed in a stats stream.
struct CutEvent {
  std::uint32_t judge_index = 0;
  std::string suspect;  ///< overlay address, dotted quad
  double minute = 0.0;
  double g = 0.0;
  double s = 0.0;
  bool suspect_is_attacker = false;
};

/// Aggregated outcome of one testbed run (from a directory of per-node
/// JSONL stats files).
struct TestbedReport {
  std::size_t nodes_reporting = 0;  ///< stats files with a start line
  std::size_t finals_reporting = 0; ///< stats files with a final line
  std::size_t attackers = 0;
  std::size_t attackers_cut = 0;    ///< attackers cut by >= 1 judge
  std::size_t honest_cut = 0;       ///< distinct honest peers cut (FPs)
  std::vector<CutEvent> cuts;

  /// Earliest cut of any attacker, protocol minutes (-1 = none).
  double first_detection_minute = -1.0;
  /// Mean over attackers of their first cut minute (cut attackers only).
  double mean_detection_minute = -1.0;

  std::uint64_t total_issued = 0;
  std::uint64_t total_forwarded = 0;
  std::uint64_t total_hits = 0;
};

/// Parse every *.jsonl stats file under `stats_dir`.
TestbedReport aggregate_stats(const std::string& stats_dir);

/// Per-cut-event CSV (plus a trailing summary comment), for results/.
void write_report_csv(const TestbedReport& report, double attack_start_minute,
                      std::ostream& out);

/// Human/grep-friendly one-screen summary.
void print_report(const TestbedReport& report, double attack_start_minute,
                  std::ostream& out);

}  // namespace ddp::experiments
