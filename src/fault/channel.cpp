#include "fault/channel.hpp"

#include <algorithm>

#include "snapshot/state_io.hpp"

namespace ddp::fault {

UnreliableChannel::UnreliableChannel(const ChannelFaultConfig& config,
                                     util::Rng rng)
    : config_(config), rng_(rng) {}

Transfer UnreliableChannel::transfer() {
  Transfer t;
  if (!active()) return t;  // no draws: fault-free runs stay bit-identical
  ++counters_.transfers;
  if (config_.drop_probability > 0.0 && rng_.chance(config_.drop_probability)) {
    ++counters_.dropped;
    t.delivered = false;
    t.copies = 0;
    return t;
  }
  if (config_.duplicate_probability > 0.0 &&
      rng_.chance(config_.duplicate_probability)) {
    ++counters_.duplicated;
    t.copies = 2;
  }
  if (config_.corrupt_probability > 0.0 &&
      rng_.chance(config_.corrupt_probability)) {
    ++counters_.corrupted;
    t.corrupted = true;
  }
  t.delay = config_.base_delay_seconds;
  if (config_.delay_jitter_seconds > 0.0) {
    t.delay += rng_.uniform() * config_.delay_jitter_seconds;
  }
  counters_.delay_seconds_total += t.delay;
  return t;
}

void UnreliableChannel::corrupt(std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return;
  if (rng_.chance(0.5)) {
    // Truncation: the connection died mid-message.
    bytes.resize(rng_.below(static_cast<std::uint32_t>(bytes.size())));
  } else {
    // Bit flips: 1-4 random bits anywhere in the buffer.
    const std::uint32_t flips = 1 + rng_.below(4);
    for (std::uint32_t i = 0; i < flips; ++i) {
      const std::uint32_t at = rng_.below(static_cast<std::uint32_t>(bytes.size()));
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
    }
  }
}

void UnreliableChannel::save(snapshot::Writer& w) const {
  snapshot::save_rng(w, rng_);
  w.u64(counters_.transfers);
  w.u64(counters_.dropped);
  w.u64(counters_.duplicated);
  w.u64(counters_.corrupted);
  w.f64(counters_.delay_seconds_total);
}

void UnreliableChannel::load(snapshot::Reader& r) {
  snapshot::load_rng(r, rng_);
  counters_.transfers = r.u64();
  counters_.dropped = r.u64();
  counters_.duplicated = r.u64();
  counters_.corrupted = r.u64();
  counters_.delay_seconds_total = r.f64();
}

}  // namespace ddp::fault
