#pragma once

/// \file channel.hpp
/// UnreliableChannel: the per-message fault policy attached to links.
///
/// Every control-plane message (and, in the packet engine, every query
/// descriptor) passes through transfer(), which draws one fate from the
/// channel's private Rng stream: delivered or dropped, how many copies,
/// with what delay, and whether the payload arrives mangled. corrupt()
/// applies the actual byte damage — truncation or bit flips — to a
/// serialized buffer, so the receiving codec (ddp::net) is exercised
/// against realistic wire garbage rather than a boolean flag.

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "util/rng.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::fault {

/// The fate of one message. `copies` is 0 when dropped, 2 when duplicated.
struct Transfer {
  bool delivered = true;
  bool corrupted = false;
  std::uint32_t copies = 1;
  double delay = 0.0;  ///< one-way latency, seconds
};

struct ChannelCounters {
  std::uint64_t transfers = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  double delay_seconds_total = 0.0;
};

class UnreliableChannel {
 public:
  UnreliableChannel(const ChannelFaultConfig& config, util::Rng rng);

  /// True when this channel can alter traffic at all. A quiet channel
  /// short-circuits: transfer() returns the perfect fate without consuming
  /// any random draws, so attaching a zero-probability channel leaves every
  /// other stream's draw sequence untouched.
  bool active() const noexcept { return config_.any(); }

  /// Draw the fate of one message.
  Transfer transfer();

  /// Damage a serialized message in place: either truncate it at a random
  /// point or flip a few random bits (both happen on real links; both must
  /// be survivable by the ddp::net decoders).
  void corrupt(std::vector<std::uint8_t>& bytes);

  const ChannelFaultConfig& config() const noexcept { return config_; }
  const ChannelCounters& counters() const noexcept { return counters_; }

  /// Serialize the channel's rng stream and counters into the writer's
  /// open section.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save().
  void load(snapshot::Reader& r);

 private:
  ChannelFaultConfig config_;
  util::Rng rng_;
  ChannelCounters counters_;
};

}  // namespace ddp::fault
