#pragma once

/// \file fault.hpp
/// Configuration of the deterministic fault-injection subsystem.
///
/// The paper's Sec. 3.4 timeout rule ("silent buddy-group members count as
/// zero") exists because real overlays lose, delay, duplicate and mangle
/// control messages. This module makes those degradations first-class and
/// reproducible: every probability below is evaluated against a forked
/// util::Rng stream, so the same seed + the same FaultConfig replays the
/// exact same fault schedule, and an all-zero config injects nothing and
/// draws nothing (fault-free runs stay bit-identical to the seed engine).
///
/// Two planes:
///   * channel faults (UnreliableChannel) — per-message drop / duplicate /
///     jittered delay / truncation-or-corruption of the serialized
///     Neighbor_List / Neighbor_Traffic / Query messages;
///   * peer faults (PeerFaultInjector) — crash-stop, temporary stall
///     (freeze for N seconds, then resume) and slow peers (multiplied
///     processing latency), scheduled through a sim::Engine timeline.

#include <cstddef>

namespace ddp::fault {

/// Per-message link behaviour. All probabilities are independent per
/// transfer; delay = base + uniform[0, jitter).
struct ChannelFaultConfig {
  double drop_probability = 0.0;       ///< message lost in transit
  double duplicate_probability = 0.0;  ///< delivered twice
  double corrupt_probability = 0.0;    ///< payload truncated or bit-flipped
  double base_delay_seconds = 0.0;     ///< fixed one-way latency
  double delay_jitter_seconds = 0.0;   ///< additional uniform jitter

  bool any() const noexcept {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           corrupt_probability > 0.0 || base_delay_seconds > 0.0 ||
           delay_jitter_seconds > 0.0;
  }
};

/// Peer-level fault process, evaluated once per peer per simulated minute.
struct PeerFaultConfig {
  /// Crash-stop: the peer goes (and stays) down, without the clean
  /// departure propagation churn models (no host-cache goodbye).
  double crash_probability_per_minute = 0.0;

  /// Temporary stall: the peer freezes (answers nothing, issues nothing)
  /// for stall_duration_seconds, then resumes.
  double stall_probability_per_minute = 0.0;
  double stall_duration_seconds = 90.0;

  /// Fraction of peers that are permanently slow: their reply latency is
  /// multiplied by slow_factor (drawn once at start-up).
  double slow_peer_fraction = 0.0;
  double slow_factor = 4.0;

  bool any() const noexcept {
    return crash_probability_per_minute > 0.0 ||
           stall_probability_per_minute > 0.0 || slow_peer_fraction > 0.0;
  }
};

struct FaultConfig {
  ChannelFaultConfig channel{};
  PeerFaultConfig peer{};

  /// When set, channel drop/duplicate rates also degrade the *data* plane
  /// (the aggregate query flows), not just the DD-POLICE control plane.
  /// Off by default so the fault ablation isolates control-plane effects.
  bool data_plane = false;

  bool any() const noexcept { return channel.any() || peer.any(); }
};

}  // namespace ddp::fault
