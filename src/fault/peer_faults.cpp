#include "fault/peer_faults.hpp"

#include "snapshot/state_io.hpp"

namespace ddp::fault {

PeerFaultInjector::PeerFaultInjector(const PeerFaultConfig& config,
                                     std::size_t peers, util::Rng rng)
    : config_(config), rng_(rng), crashed_(peers, 0), slow_(peers, 0),
      stalled_until_(peers, -1.0) {
  if (config_.slow_peer_fraction > 0.0) {
    for (std::size_t p = 0; p < peers; ++p) {
      if (rng_.chance(config_.slow_peer_fraction)) {
        slow_[p] = 1;
        ++slow_count_;
      }
    }
  }
}

void PeerFaultInjector::crash(PeerId p) {
  if (crashed_[p]) return;
  crashed_[p] = 1;
  ++crashes_;
  DDP_TRACE(tracer_, obs::EventType::kFaultCrash, engine_.now(), p);
  if (on_crash) on_crash(p);
}

void PeerFaultInjector::stall(PeerId p, double until) {
  if (crashed_[p]) return;
  const bool was_stalled = is_stalled(p);
  stalled_until_[p] = std::max(stalled_until_[p], until);
  if (!was_stalled) {
    ++stalls_;
    DDP_TRACE(tracer_, obs::EventType::kFaultStall, engine_.now(), p,
              kInvalidPeer, {{"until", until}});
    if (on_stall) on_stall(p);
  }
  engine_.schedule_at(until, [this, p] { resume_check(p); },
                      obs::EventCategory::kFault, make_tag(kTagResume, p));
}

void PeerFaultInjector::resume_check(PeerId p) {
  // Resume only if no overlapping stall extended the freeze and the
  // peer did not crash while frozen.
  if (crashed_[p] || stalled_until_[p] > engine_.now() + 1e-9) return;
  ++resumes_;
  DDP_TRACE(tracer_, obs::EventType::kFaultResume, engine_.now(), p);
  if (on_resume) on_resume(p);
}

void PeerFaultInjector::on_minute(double minute) {
  // Apply every fault that came due during the minute just completed.
  engine_.run_until(minute * kMinute);

  if (config_.crash_probability_per_minute <= 0.0 &&
      config_.stall_probability_per_minute <= 0.0) {
    return;
  }
  // Draw the coming minute's faults at uniform sub-minute offsets. Draw
  // counts depend only on the (deterministic) crashed set, so the schedule
  // replays exactly for a given seed + config.
  const double base = minute * kMinute;
  for (PeerId p = 0; p < crashed_.size(); ++p) {
    if (crashed_[p]) continue;
    if (config_.crash_probability_per_minute > 0.0 &&
        rng_.chance(config_.crash_probability_per_minute)) {
      const double at = base + rng_.uniform() * kMinute;
      engine_.schedule_at(at, [this, p] { crash(p); },
                          obs::EventCategory::kFault, make_tag(kTagCrash, p));
    }
    if (config_.stall_probability_per_minute > 0.0 &&
        rng_.chance(config_.stall_probability_per_minute)) {
      const double at = base + rng_.uniform() * kMinute;
      const double until = at + config_.stall_duration_seconds;
      engine_.schedule_at(at, [this, p, until] { stall(p, until); },
                          obs::EventCategory::kFault, make_tag(kTagStall, p));
    }
  }
}

void PeerFaultInjector::save(snapshot::Writer& w) const {
  w.size(crashed_.size());
  for (const char c : crashed_) w.boolean(c != 0);
  w.size(slow_.size());
  for (const char c : slow_) w.boolean(c != 0);
  snapshot::save_f64_vector(w, stalled_until_);
  w.u64(slow_count_);
  w.u64(crashes_);
  w.u64(stalls_);
  w.u64(resumes_);
  engine_.save(w);
  snapshot::save_rng(w, rng_);
}

void PeerFaultInjector::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxPeers = 1u << 24;
  crashed_.resize(r.size(kMaxPeers));
  for (char& c : crashed_) c = r.boolean() ? 1 : 0;
  slow_.resize(r.size(kMaxPeers));
  for (char& c : slow_) c = r.boolean() ? 1 : 0;
  snapshot::load_f64_vector(r, stalled_until_, kMaxPeers);
  slow_count_ = static_cast<std::size_t>(r.u64());
  crashes_ = r.u64();
  stalls_ = r.u64();
  resumes_ = r.u64();
  engine_.load(r, [this](std::uint64_t tag, SimTime t, SimTime,
                         obs::EventCategory) -> sim::Engine::Callback {
    const std::uint64_t kind = tag & 0xff;
    const auto p = static_cast<PeerId>(tag >> 8);
    if (p >= crashed_.size()) return nullptr;
    switch (kind) {
      case kTagCrash:
        return [this, p] { crash(p); };
      case kTagStall: {
        // A pending stall's freeze window starts when the event fires.
        const double until = t + config_.stall_duration_seconds;
        return [this, p, until] { stall(p, until); };
      }
      case kTagResume:
        return [this, p] { resume_check(p); };
      default:
        return nullptr;
    }
  });
  snapshot::load_rng(r, rng_);
}

}  // namespace ddp::fault
