#pragma once

/// \file peer_faults.hpp
/// Peer-level fault process: crash-stop, temporary stall and slow peers,
/// scheduled on a private sim::Engine timeline so fault instants fall at
/// second granularity inside each simulated minute (not only at minute
/// boundaries), deterministically for a given seed.
///
/// The injector is engine-agnostic: the embedding scenario subscribes to
/// on_crash / on_stall / on_resume and translates them into its own
/// membership and issue-rate operations. Queries about a peer's current
/// state (is_responsive, latency_factor) are what the DD-POLICE control
/// plane consults when it waits for a reply.

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ddp::fault {

class PeerFaultInjector {
 public:
  PeerFaultInjector(const PeerFaultConfig& config, std::size_t peers,
                    util::Rng rng);

  /// Fault-event callbacks (crash is permanent; stall pairs with resume).
  std::function<void(PeerId)> on_crash;
  std::function<void(PeerId)> on_stall;
  std::function<void(PeerId)> on_resume;

  /// Advance the fault timeline to `minute` (applying due events), then
  /// draw and schedule the coming minute's faults at uniform offsets.
  /// Call once per completed simulated minute, before the defense runs.
  void on_minute(double minute);

  bool is_crashed(PeerId p) const noexcept {
    return p < crashed_.size() && crashed_[p] != 0;
  }
  bool is_stalled(PeerId p) const noexcept {
    return p < stalled_until_.size() && stalled_until_[p] > engine_.now();
  }
  /// Able to answer a control-plane request right now.
  bool is_responsive(PeerId p) const noexcept {
    return !is_crashed(p) && !is_stalled(p);
  }
  /// Reply-latency multiplier (slow peers; 1.0 for everyone else).
  double latency_factor(PeerId p) const noexcept {
    return p < slow_.size() && slow_[p] != 0 ? config_.slow_factor : 1.0;
  }

  std::uint64_t crash_count() const noexcept { return crashes_; }
  std::uint64_t stall_count() const noexcept { return stalls_; }
  std::uint64_t resume_count() const noexcept { return resumes_; }
  std::size_t slow_peer_count() const noexcept { return slow_count_; }

  /// The private fault timeline (exposed for tests and soak invariants).
  sim::Engine& timeline() noexcept { return engine_; }
  const sim::Engine& timeline() const noexcept { return engine_; }

  /// Attach a trace sink (null detaches). Emits fault_crash / fault_stall
  /// / fault_resume at the injected instants (second granularity).
  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.bind(sink); }
  const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// Serialize the fault state and the private timeline (pending crash,
  /// stall and resume events included) into the writer's open section.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save(), rebinding pending timeline events to
  /// fresh callbacks. The on_crash/on_stall/on_resume subscribers are
  /// rebound by the reconstructing scenario, not serialized.
  void load(snapshot::Reader& r);

 private:
  /// Event tags on the private timeline: kind in the low 8 bits, peer id
  /// in the bits above — enough to rebind any pending event on restore.
  static constexpr std::uint64_t kTagCrash = 1;
  static constexpr std::uint64_t kTagStall = 2;
  static constexpr std::uint64_t kTagResume = 3;
  static constexpr std::uint64_t make_tag(std::uint64_t kind, PeerId p) noexcept {
    return kind | (static_cast<std::uint64_t>(p) << 8);
  }

  void crash(PeerId p);
  void stall(PeerId p, double until);
  void resume_check(PeerId p);

  PeerFaultConfig config_;
  sim::Engine engine_;
  util::Rng rng_;
  obs::Tracer tracer_;
  std::vector<char> crashed_;
  std::vector<char> slow_;
  std::vector<double> stalled_until_;
  std::size_t slow_count_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t resumes_ = 0;
};

}  // namespace ddp::fault
