#pragma once

/// \file plane.hpp
/// FaultPlane: the bundle a scenario wires between its engines and the
/// DD-POLICE control plane — one UnreliableChannel (message fates), one
/// PeerFaultInjector (crash/stall/slow processes) and the shared
/// control-plane robustness counters that the hardened DdPolice request
/// loop (timeout / bounded retry / corrupt-reject, see core/ddpolice.cpp)
/// reports into and the metrics pipeline exports.

#include <cstdint>

#include "fault/channel.hpp"
#include "fault/fault.hpp"
#include "fault/peer_faults.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

namespace ddp::fault {

/// Outcomes of the DD-POLICE per-request timeout/retry machinery.
struct ControlCounters {
  std::uint64_t timeouts = 0;         ///< requests that exhausted all retries
  std::uint64_t retries = 0;          ///< re-sent requests (after a failed try)
  std::uint64_t late_replies = 0;     ///< valid replies past the timeout
  std::uint64_t corrupt_rejects = 0;  ///< undecodable or inconsistent replies
  double backoff_seconds_total = 0.0; ///< cumulative exponential backoff waited
};

class FaultPlane {
 public:
  FaultPlane(const FaultConfig& config, std::size_t peers, util::Rng rng)
      : config_(config),
        channel_(config.channel, rng.fork("channel")),
        peers_(config.peer, peers, rng.fork("peer-faults")) {}

  /// True when the control plane must run its timeout/retry path. With an
  /// all-zero config the hardened DdPolice short-circuits to the exact
  /// fault-free code path (bit-identical decisions).
  bool control_active() const noexcept {
    return config_.channel.any() || config_.peer.any();
  }

  const FaultConfig& config() const noexcept { return config_; }
  UnreliableChannel& channel() noexcept { return channel_; }
  PeerFaultInjector& peers() noexcept { return peers_; }
  const PeerFaultInjector& peers() const noexcept { return peers_; }
  ControlCounters& control() noexcept { return control_; }
  const ControlCounters& control() const noexcept { return control_; }

  /// Advance the peer-fault timeline; call once per completed minute.
  void on_minute(double minute) { peers_.on_minute(minute); }

  /// Serialize the bundled channel, injector and control counters into the
  /// writer's open section.
  void save(snapshot::Writer& w) const {
    channel_.save(w);
    peers_.save(w);
    w.u64(control_.timeouts);
    w.u64(control_.retries);
    w.u64(control_.late_replies);
    w.u64(control_.corrupt_rejects);
    w.f64(control_.backoff_seconds_total);
  }

  /// Restore state saved by save().
  void load(snapshot::Reader& r) {
    channel_.load(r);
    peers_.load(r);
    control_.timeouts = r.u64();
    control_.retries = r.u64();
    control_.late_replies = r.u64();
    control_.corrupt_rejects = r.u64();
    control_.backoff_seconds_total = r.f64();
  }

 private:
  FaultConfig config_;
  UnreliableChannel channel_;
  PeerFaultInjector peers_;
  ControlCounters control_;
};

}  // namespace ddp::fault
