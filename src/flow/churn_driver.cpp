#include "flow/churn_driver.hpp"

#include "snapshot/state_io.hpp"
#include "util/types.hpp"

namespace ddp::flow {

ChurnDriver::ChurnDriver(FlowNetwork& net, const workload::ChurnModel& model,
                         util::Rng rng)
    : net_(net), model_(model), rng_(rng) {
  schedule_initial();
}

void ChurnDriver::schedule_initial() {
  const auto& g = net_.graph();
  next_event_minute_.resize(g.node_count());
  for (PeerId p = 0; p < g.node_count(); ++p) {
    // Stagger initial lifetimes: peers are mid-session at t=0, so draw a
    // residual lifetime (uniform fraction of a full one) to avoid a
    // synchronized mass-exodus at the mean lifetime.
    const double life = model_.sample_lifetime(rng_) * rng_.uniform();
    next_event_minute_[p] = to_minutes(life);
  }
}

void ChurnDriver::on_minute(double minute) {
  if (!model_.config().enabled) return;
  auto& g = net_.mutable_graph();
  for (PeerId p = 0; p < g.node_count(); ++p) {
    if (next_event_minute_[p] > minute) continue;
    if (g.is_active(p)) {
      // Leave: tear down links (clearing flow state), mark offline.
      net_.on_peer_offline(p);
      g.set_active(p, false);
      next_event_minute_[p] = minute + to_minutes(model_.sample_offline(rng_));
      ++leaves_;
      DDP_TRACE(tracer_, obs::EventType::kPeerLeft, minute * kMinute, p);
      if (on_leave) on_leave(p);
    } else {
      // Rejoin: reactivate and wire into the overlay.
      g.set_active(p, true);
      model_.connect_joining_peer(g, p, rng_);
      for (PeerId n : g.neighbors(p)) net_.on_edge_added(p, n);
      next_event_minute_[p] = minute + to_minutes(model_.sample_lifetime(rng_));
      ++joins_;
      DDP_TRACE(tracer_, obs::EventType::kPeerJoined, minute * kMinute, p);
      if (on_join) on_join(p);
    }
  }
}

void ChurnDriver::save(snapshot::Writer& w) const {
  snapshot::save_f64_vector(w, next_event_minute_);
  w.u64(joins_);
  w.u64(leaves_);
  snapshot::save_rng(w, rng_);
}

void ChurnDriver::load(snapshot::Reader& r) {
  snapshot::load_f64_vector(r, next_event_minute_, 1u << 24);
  if (next_event_minute_.size() != net_.graph().node_count()) {
    throw snapshot::SnapshotError("churn schedule size != node count");
  }
  joins_ = static_cast<std::size_t>(r.u64());
  leaves_ = static_cast<std::size_t>(r.u64());
  snapshot::load_rng(r, rng_);
}

}  // namespace ddp::flow
