#pragma once

/// \file churn_driver.hpp
/// Drives peer join/leave dynamics on top of a FlowNetwork (Sec. 3.5:
/// peers are turned on/off; each joining peer receives a lifetime from the
/// configured distribution; expired peers go offline and rejoin after an
/// offline gap). Subscribing code (the defense layer, metrics) can watch
/// membership changes through the on_join / on_leave callbacks.

#include <functional>
#include <vector>

#include "flow/network.hpp"
#include "obs/trace.hpp"
#include "workload/churn.hpp"

namespace ddp::flow {

class ChurnDriver {
 public:
  /// All peers currently active in the graph are given initial lifetimes;
  /// inactive ones get rejoin times.
  ChurnDriver(FlowNetwork& net, const workload::ChurnModel& model,
              util::Rng rng);

  /// Process all membership events due by simulated minute `minute`.
  /// Intended to be registered as a minute hook:
  ///   net.add_minute_hook([&](double m) { churn.on_minute(m); });
  void on_minute(double minute);

  std::function<void(PeerId)> on_join;
  std::function<void(PeerId)> on_leave;

  std::size_t joins() const noexcept { return joins_; }
  std::size_t leaves() const noexcept { return leaves_; }

  /// Attach a trace sink (null detaches). Emits peer_joined / peer_left
  /// for every membership transition.
  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.bind(sink); }
  const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// Serialize the per-peer transition schedule, counters and rng into the
  /// writer's open section (the on_join/on_leave callbacks are rebound by
  /// the reconstructing scenario, not serialized).
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save(), replacing the schedule drawn at
  /// construction time.
  void load(snapshot::Reader& r);

 private:
  void schedule_initial();

  FlowNetwork& net_;
  workload::ChurnModel model_;
  util::Rng rng_;
  obs::Tracer tracer_;
  /// Per-peer next transition time (minutes); sign-free state is read from
  /// the graph's activity flag.
  std::vector<double> next_event_minute_;
  std::size_t joins_ = 0;
  std::size_t leaves_ = 0;
};

}  // namespace ddp::flow
