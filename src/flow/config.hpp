#pragma once

/// \file config.hpp
/// Parameters of the flow-level engine (see network.hpp for the model).

#include <cstddef>

#include "util/types.hpp"

namespace ddp::flow {

/// How a peer's finite service capacity is divided among its in-links.
enum class ServiceDiscipline : std::uint8_t {
  /// Pooled FIFO: all arrivals share one queue; overload drops
  /// indiscriminately (plain Gnutella, the paper's default).
  kPooledFifo,
  /// Max-min fair share per in-link: the application-layer load-balancing
  /// defense of Daswani & Garcia-Molina (the paper's related work [21]).
  kFairShare,
};

/// How a peer sheds load when arrivals exceed its service capacity.
enum class AdmissionPolicy : std::uint8_t {
  /// Class-blind tail drop: every arriving query is equally likely to be
  /// discarded (plain Gnutella; the paper's model).
  kClassBlind,
  /// Priority shedding: a control-plane reserve is held back so defense
  /// messages are shed last, good query traffic is admitted first from
  /// the remaining budget, and attack-class traffic is shed first.
  kPriority,
};

struct FlowConfig {
  /// Initial TTL of query floods (Gnutella default, as in the paper).
  std::size_t ttl = 7;

  /// Capacity-sharing policy at each peer.
  ServiceDiscipline discipline = ServiceDiscipline::kPooledFifo;

  /// Overload shedding policy (kClassBlind reproduces the paper exactly).
  AdmissionPolicy admission = AdmissionPolicy::kClassBlind;

  /// Fraction of per-peer capacity held back for control-plane messages
  /// under kPriority (Neighbor_List / Neighbor_Traffic / Ping never starve
  /// even while the peer is being flooded). Ignored under kClassBlind.
  double control_reserve_fraction = 0.05;

  /// Engine tick, seconds. Per-minute protocol state rotates every
  /// 60 / tick ticks; 1 s is fine-grained enough for every experiment.
  double tick_seconds = 1.0;

  /// Good-peer query service capacity (queries/minute; paper Sec. 2.3).
  double capacity_per_minute = 10000.0;

  /// Good-peer issue rate (queries/minute; paper Sec. 3.5).
  double good_issue_per_minute = 0.3;

  /// Attack sourcing target before link clamping (paper Sec. 3.5:
  /// Q_d = min(20000, link capacity)).
  double attack_target_per_minute = 20000.0;

  /// Apply per-link bandwidth clamps from the BandwidthMap.
  bool bandwidth_limits = true;

  /// One-way per-hop latency (seconds) for the response-time model.
  double hop_latency = 0.08;

  /// Queueing-delay ceiling per hop, seconds (finite queues bound waiting).
  double max_queue_delay = 2.0;

  /// Re-derive the duplicate-damping profile from the live topology every
  /// this many minutes (0 = calibrate once at start). Churn slowly deforms
  /// the overlay, so periodic recalibration keeps delta(h) honest.
  double recalibrate_minutes = 10.0;

  /// Origins sampled when calibrating the coverage profile.
  std::size_t calibration_samples = 64;

  /// Fraction of each link's in-flight volume that actually arrives
  /// (data-plane fault injection; src/fault). 1.0 — the default — is a
  /// perfect transport and is applied as an exact multiplicative identity,
  /// so fault-free runs stay bit-identical. Values > 1 model duplication.
  double link_reliability = 1.0;

  /// Worker threads for the sharded tick sweeps. 1 (the default) runs the
  /// exact serial engine; 0 resolves to one worker per hardware thread.
  /// Output is byte-identical at any value — per-shard contributions are
  /// folded back in canonical peer order, so this is a throughput knob
  /// only and is deliberately excluded from the scenario config digest.
  unsigned jobs = 1;

  /// Contiguous peer-span shards the tick sweeps are partitioned into.
  /// 0 (the default) means one shard per worker; values above `jobs` let
  /// the spans load-balance across workers. Output-invariant, like jobs.
  std::size_t shards = 0;
};

}  // namespace ddp::flow
