#pragma once

/// \file flow_port.hpp
/// core::OverlayPort adapter over the flow-level engine. Lives with the
/// engine (not in core/) so the DD-POLICE core stays engine-agnostic: core
/// and defense see only the port interface, and each engine — flow, packet,
/// or the real-socket netengine — ships its own adapter.

#include "core/overlay_port.hpp"
#include "flow/network.hpp"

namespace ddp::flow {

class FlowPort final : public core::OverlayPort {
 public:
  explicit FlowPort(FlowNetwork& net) : net_(net) {}

  const topology::Graph& graph() const override { return net_.graph(); }

  double sent_last_minute(PeerId from, PeerId to) const override {
    return net_.sent_last_minute(from, to);
  }

  void disconnect(PeerId a, PeerId b) override { net_.disconnect(a, b); }

  bool connect(PeerId a, PeerId b) override {
    if (!net_.mutable_graph().add_edge(a, b)) return false;
    net_.on_edge_added(a, b);
    return true;
  }

  void set_query_budget(PeerId p, double scale) override {
    net_.set_issue_scale(p, scale);
  }

  void report_overhead(double messages) override {
    net_.add_overhead_messages(messages);
  }

 private:
  FlowNetwork& net_;
};

}  // namespace ddp::flow
