#include "flow/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "snapshot/state_io.hpp"
#include "util/log.hpp"

namespace ddp::flow {

FlowNetwork::FlowNetwork(topology::Graph& graph,
                         const topology::BandwidthMap& bandwidth,
                         const workload::ContentModel& content,
                         const FlowConfig& config, util::Rng rng)
    : graph_(graph), bandwidth_(bandwidth), content_(content), config_(config),
      rng_(rng), kinds_(graph.node_count(), PeerKind::kGood),
      issue_scale_(graph.node_count(), 1.0),
      edge_state_(graph.edge_index()) {
  ticks_per_minute_ =
      static_cast<std::uint64_t>(std::llround(kMinute / config_.tick_seconds));
  if (ticks_per_minute_ == 0) ticks_per_minute_ = 1;
  const unsigned jobs = util::resolve_jobs(config_.jobs);
  if (jobs > 1) pool_ = std::make_unique<util::ThreadPool>(jobs);
  recalibrate();
}

void FlowNetwork::set_kind(PeerId p, PeerKind kind) { kinds_[p] = kind; }

void FlowNetwork::set_issue_scale(PeerId p, double scale) {
  issue_scale_[p] = std::max(0.0, scale);
}

void FlowNetwork::recalibrate() {
  const std::size_t ttl = std::min(config_.ttl, kMaxTtl);
  profile_ = topology::average_coverage(graph_, config_.ttl,
                                        config_.calibration_samples, rng_);

  // Closed-loop calibration of the forwarding damping: propagate a unit
  // impulse with the engine's exact update rule (uniform per-link split,
  // fan deg-1) from sampled origins, and solve, hop by hop, the factor
  // that makes the engine's message growth equal the exact BFS profile's.
  // Mean-field fresh fractions alone over-branch: hubs collect many copies
  // of a flood but forward it only once.
  std::array<double, kMaxTtl> target_sum{};
  std::array<double, kMaxTtl> unscaled_sum{};
  const std::size_t n = graph_.node_count();
  std::vector<double> a(n), nx(n);
  std::size_t samples = 0;
  for (std::size_t s = 0; s < config_.calibration_samples && s < 4096; ++s) {
    const PeerId origin = graph_.random_active_node(rng_);
    if (origin == kInvalidPeer) break;
    const auto exact = topology::flood_coverage(graph_, origin, ttl);
    std::fill(a.begin(), a.end(), 0.0);
    for (PeerId u : graph_.neighbors(origin)) a[u] = 1.0;
    ++samples;
    for (std::size_t h = 1; h < ttl; ++h) {
      double unscaled = 0.0;
      for (PeerId v = 0; v < n; ++v) {
        if (a[v] <= 0.0 || !graph_.is_active(v)) continue;
        unscaled += a[v] * (static_cast<double>(graph_.degree(v)) - 1.0);
      }
      unscaled_sum[h - 1] += unscaled;
      target_sum[h - 1] += exact.messages[h];  // messages into hop h+1
      const double delta =
          unscaled > 0.0 ? std::min(1.0, exact.messages[h] / unscaled) : 0.0;
      // Advance the impulse with the engine's own rule.
      std::fill(nx.begin(), nx.end(), 0.0);
      for (PeerId v = 0; v < n; ++v) {
        if (a[v] <= 0.0 || !graph_.is_active(v)) continue;
        const double deg = static_cast<double>(graph_.degree(v));
        if (deg < 2.0) continue;
        const double per_link = a[v] * delta * (deg - 1.0) / deg;
        for (PeerId u : graph_.neighbors(v)) nx[u] += per_link;
      }
      a.swap(nx);
    }
  }
  for (std::size_t h = 0; h < kMaxTtl; ++h) {
    forward_damping_[h] =
        (h < ttl - 1 && unscaled_sum[h] > 0.0)
            ? std::min(1.0, target_sum[h] / unscaled_sum[h])
            : 0.0;
  }
  last_calibration_minute_ = current_minute();
}

double FlowNetwork::sent_last_minute(PeerId from, PeerId to) const noexcept {
  const auto slot = graph_.edge_slot(from, to);
  if (slot != topology::EdgeIndex::kInvalidSlot) {
    if (const EdgeMinute* em = edge_state_.find_cold(slot)) {
      return em->minute_done;
    }
  }
  // Link gone, but the endpoint monitors still hold the last minute. The
  // ghost list only ever holds this minute's cuts, so a scan is cheap.
  for (const GhostCount& g : ghost_minute_counts_) {
    if (g.from == from && g.to == to) return g.count;
  }
  return 0.0;
}

double FlowNetwork::sent_last_minute(
    topology::EdgeIndex::Slot slot) const noexcept {
  const EdgeMinute* em = edge_state_.find_cold(slot);
  return em == nullptr ? 0.0 : em->minute_done;
}

double FlowNetwork::out_last_minute(PeerId from) const noexcept {
  double total = 0.0;
  for (const auto slot : graph_.out_slots(from)) {
    if (const EdgeMinute* em = edge_state_.find_cold(slot)) {
      total += em->minute_done;
    }
  }
  // Links cut during this minute's hooks: their counters moved to the
  // ghost list when the slot was released, never both places at once.
  for (const GhostCount& g : ghost_minute_counts_) {
    if (g.from == from) total += g.count;
  }
  return total;
}

void FlowNetwork::disconnect(PeerId a, PeerId b) {
  // Capture the completed-minute counters before remove_edge releases the
  // slot pair (which retires both directions' flow state).
  const auto slot = graph_.edge_slot(a, b);
  if (slot != topology::EdgeIndex::kInvalidSlot) {
    if (const EdgeMinute* em = edge_state_.find_cold(slot);
        em != nullptr && em->minute_done > 0.0) {
      ghost_minute_counts_.push_back({a, b, em->minute_done});
    }
    const auto rev = graph_.edge_index().reverse(slot);
    if (const EdgeMinute* em = edge_state_.find_cold(rev);
        em != nullptr && em->minute_done > 0.0) {
      ghost_minute_counts_.push_back({b, a, em->minute_done});
    }
  }
  if (graph_.remove_edge(a, b)) {
    shard_plan_dirty_ = true;
    DDP_TRACE(tracer_, obs::EventType::kLinkDisconnected, now_, a, b);
  }
}

void FlowNetwork::on_edge_added(PeerId a, PeerId b) {
  // Flow state is created lazily on first transmission, and any state a
  // previous incarnation of this link held died with its slot generation —
  // nothing to clean up beyond invalidating the shard plan.
  shard_plan_dirty_ = true;
  DDP_TRACE(tracer_, obs::EventType::kEdgeAdded, now_, a, b);
}

void FlowNetwork::on_peer_offline(PeerId p) {
  const std::vector<PeerId> nbrs(graph_.neighbors(p).begin(),
                                 graph_.neighbors(p).end());
  for (PeerId n : nbrs) disconnect(p, n);
  shard_plan_dirty_ = true;
  DDP_TRACE(tracer_, obs::EventType::kPeerOffline, now_, p);
}

double FlowNetwork::link_capacity_per_tick(PeerId from, PeerId to) const noexcept {
  if (!config_.bandwidth_limits) return std::numeric_limits<double>::infinity();
  return bandwidth_.link_queries_per_minute(from, to) /
         static_cast<double>(ticks_per_minute_);
}

namespace {

/// Serial-path sink: contributions land straight on the engine's running
/// accumulators, in the same order the pre-shard engine added them — this
/// path's arithmetic is byte-for-byte the original.
struct DirectSink {
  double& transport_lost;
  double& dropped;
  std::array<double, kClasses>& dropped_class;
  double& good_issued;
  double& attack_issued;
  std::array<double, kMaxTtl>& fresh_by_hop;
  double& tick_util;
  std::size_t& util_nodes;
  double& delay_weight;
  double& delay_load;
  double& traffic;
  double& attack_traffic;

  void add_transport_lost(double v) { transport_lost += v; }
  void add_drop(double total, double good, double attack) {
    dropped += total;
    dropped_class[static_cast<std::size_t>(TrafficClass::kGood)] += good;
    dropped_class[static_cast<std::size_t>(TrafficClass::kAttack)] += attack;
  }
  void add_good_issued(double v) { good_issued += v; }
  void add_attack_issued(double v) { attack_issued += v; }
  void add_fresh(std::size_t hop_idx, double v) { fresh_by_hop[hop_idx] += v; }
  void add_peer_load(double rho, double dw, double dl) {
    tick_util += rho;
    ++util_nodes;
    delay_weight += dw;
    delay_load += dl;
  }
  // Phase-3 contributions hit the same accumulators on the serial path;
  // the buffered sink keeps them in separate logs because the serial fold
  // adds all phase-2 contributions before any phase-3 ones.
  void add_p3_drop(double total, double good, double attack) {
    add_drop(total, good, attack);
  }
  void add_p3_traffic(double total, double attack) {
    traffic += total;
    attack_traffic += attack;
  }
};

}  // namespace

/// Sharded-path sink: contributions are recorded, not summed — the
/// coordinator replays the logs in span order after the barrier, which
/// reproduces the serial accumulation sequence exactly.
struct FlowNetwork::SpanLogSink {
  SpanLog& log;

  void add_transport_lost(double v) { log.transport_lost.push_back(v); }
  void add_drop(double total, double good, double attack) {
    log.p2_drops.push_back({total, good, attack});
  }
  void add_good_issued(double v) { log.good_issued.push_back(v); }
  void add_attack_issued(double v) { log.attack_issued.push_back(v); }
  void add_fresh(std::size_t hop_idx, double v) {
    log.fresh.emplace_back(static_cast<std::uint8_t>(hop_idx), v);
  }
  void add_peer_load(double rho, double dw, double dl) {
    log.peer_load.push_back({rho, dw, dl});
  }
  void add_p3_drop(double total, double good, double attack) {
    log.p3_drops.push_back({total, good, attack});
  }
  void add_p3_traffic(double total, double attack) {
    log.p3_traffic.push_back({total, attack});
  }
};

void FlowNetwork::SpanLog::clear() noexcept {
  transport_lost.clear();
  p2_drops.clear();
  good_issued.clear();
  attack_issued.clear();
  fresh.clear();
  peer_load.clear();
  p3_drops.clear();
  p3_traffic.clear();
}

// ---- Phase 1: gather arrivals per peer. -----------------------------------
// Each link delivers the link_reliability fraction of its in-flight volume
// (fault injection; 1.0 is an exact multiplicative identity). Canonical
// sweep order — destinations in PeerId order, in-links in adjacency order —
// so the floating-point accumulation order is a property of the topology,
// not of any container's internal layout. Writes arrivals_[to] exclusively;
// reads only other links' cur vectors, which no phase-1 sweep writes.
template <typename Sink>
void FlowNetwork::phase1_peer(PeerId to, std::size_t ttl, double rel,
                              Sink& sink) {
  auto& a = arrivals_[to];
  a = {};
  for (const std::uint32_t in : graph_.in_slots(to)) {
    const EdgeFlow* ef = edge_state_.find(in);
    if (ef == nullptr) continue;
    for (std::size_t c = 0; c < kClasses; ++c) {
      for (std::size_t k = 0; k < ttl; ++k) a[c][k] += ef->cur[c][k] * rel;
    }
    if (rel < 1.0) {
      double in_flight = 0.0;
      for (std::size_t c = 0; c < kClasses; ++c) {
        for (std::size_t k = 0; k < ttl; ++k) in_flight += ef->cur[c][k];
      }
      sink.add_transport_lost(in_flight * (1.0 - rel));
    }
  }
}

// ---- Phase 2a: service discipline and drop accounting. --------------------
// Drops happen at the receiver, as the paper's testbed measured (peer B
// reads the socket and discards what it cannot service, Sec. 2.3): the
// per-link monitors therefore see what senders actually pushed, which is
// the observable a deployed DD-POLICE works from. Reads arrivals_[v] (own)
// and, under fair share, in-link cur vectors (cross-shard but read-only in
// this barrier); writes only arrivals_[v].
template <typename Sink>
std::array<double, kClasses> FlowNetwork::phase2_service(
    PeerId v, std::size_t ttl, double cap_tick, double service_time,
    double rel, TickScratch& ts, Sink& sink) {
  const auto nbrs = graph_.neighbors(v);

  double in_total = 0.0;
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (std::size_t k = 0; k < ttl; ++k) in_total += arrivals_[v][c][k];
  }
  // Per-class arrival totals, summed separately so in_total keeps its
  // original accumulation order (side accounting must not perturb it).
  std::array<double, kClasses> in_class{};
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (std::size_t k = 0; k < ttl; ++k) in_class[c] += arrivals_[v][c][k];
  }

  double survive = in_total > cap_tick ? cap_tick / in_total : 1.0;
  // Per-class admission factors; under class-blind shedding both entries
  // hold the same double as `survive`, so the arithmetic downstream is
  // bit-identical to the scalar path.
  std::array<double, kClasses> survive_c{};
  survive_c.fill(survive);
  if (config_.discipline == ServiceDiscipline::kFairShare &&
      in_total > cap_tick) {
    // Max-min fair allocation of the service budget across in-links
    // (the load-balancing baseline [21]): lightly-loaded links are fully
    // served; heavy links are capped at the waterfill share.
    const auto vin = graph_.in_slots(v);
    ts.edge_totals.assign(nbrs.size(), 0.0);
    ts.edge_class_totals.assign(nbrs.size(), {});
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (const EdgeFlow* ef = edge_state_.find(vin[e])) {
        for (std::size_t c = 0; c < kClasses; ++c) {
          for (std::size_t k = 0; k < ttl; ++k) {
            const double vol = ef->cur[c][k] * rel;
            ts.edge_totals[e] += vol;
            ts.edge_class_totals[e][c] += vol;
          }
        }
      }
    }
    double budget = cap_tick;
    ts.done.assign(nbrs.size(), 0);
    std::size_t active = nbrs.size();
    double share = 0.0;
    for (int iter = 0; iter < 8 && active > 0; ++iter) {
      share = budget / static_cast<double>(active);
      bool changed = false;
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        if (ts.done[e] || ts.edge_totals[e] > share) continue;
        budget -= ts.edge_totals[e];
        ts.done[e] = 1;
        --active;
        changed = true;
      }
      if (!changed) break;
    }
    for (auto& cls : ts.fair_arrivals) cls.fill(0.0);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const EdgeFlow* ef = edge_state_.find(vin[e]);
      if (ef == nullptr || ts.edge_totals[e] <= 0.0) continue;
      const double sc = ts.done[e] ? 1.0 : share / ts.edge_totals[e];
      sink.add_drop(
          ts.edge_totals[e] * (1.0 - sc),
          ts.edge_class_totals[e][static_cast<std::size_t>(TrafficClass::kGood)] *
              (1.0 - sc),
          ts.edge_class_totals[e]
                             [static_cast<std::size_t>(TrafficClass::kAttack)] *
              (1.0 - sc));
      for (std::size_t c = 0; c < kClasses; ++c) {
        for (std::size_t k = 0; k < ttl; ++k) {
          ts.fair_arrivals[c][k] += ef->cur[c][k] * rel * sc;
        }
      }
    }
    arrivals_[v] = ts.fair_arrivals;
    survive = 1.0;  // per-edge scaling already applied
    survive_c.fill(1.0);
  } else if (config_.admission == AdmissionPolicy::kPriority &&
             in_total > cap_tick) {
    // Priority shedding: hold back the control-plane reserve (defense
    // messages travel out-of-band here, but the reserve models the
    // capacity a real servent would pin for them), admit good-class
    // traffic first from the remaining budget, shed attack-class first.
    const double reserve =
        std::clamp(config_.control_reserve_fraction, 0.0, 0.5);
    const double budget = cap_tick * (1.0 - reserve);
    const auto good = static_cast<std::size_t>(TrafficClass::kGood);
    const auto bad = static_cast<std::size_t>(TrafficClass::kAttack);
    const double sg =
        in_class[good] > 0.0 ? std::min(1.0, budget / in_class[good]) : 1.0;
    const double left = std::max(0.0, budget - in_class[good] * sg);
    const double sa =
        in_class[bad] > 0.0 ? std::min(1.0, left / in_class[bad]) : 1.0;
    survive_c[good] = sg;
    survive_c[bad] = sa;
    const double d_good = in_class[good] * (1.0 - sg);
    const double d_bad = in_class[bad] * (1.0 - sa);
    sink.add_drop(d_good + d_bad, d_good, d_bad);
  } else {
    sink.add_drop(
        in_total * (1.0 - survive),
        in_class[static_cast<std::size_t>(TrafficClass::kGood)] *
            (1.0 - survive),
        in_class[static_cast<std::size_t>(TrafficClass::kAttack)] *
            (1.0 - survive));
  }

  const double rho = std::min(1.0, in_total / cap_tick);
  // M/M/1-flavoured queueing delay with a finite ceiling, load-weighted
  // so hot peers dominate the response-time model.
  double delay = rho < 0.999 ? service_time * rho / (1.0 - rho)
                             : config_.max_queue_delay;
  delay = std::min(delay, config_.max_queue_delay);
  sink.add_peer_load(rho, delay * in_total, in_total);
  return survive_c;
}

// ---- Phase 2b: issuance and forwarding. -----------------------------------
// Writes only this peer's out-link nxt vectors (touch may also reset a
// recycled slot — still own out-links), so peers are freely parallel once
// the cross-shard cur reads of phase 2a are behind a barrier.
template <typename Sink>
void FlowNetwork::phase2_emit(PeerId v, std::size_t ttl,
                              const std::array<double, kClasses>& survive_c,
                              TickScratch& ts, Sink& sink) {
  const auto nbrs = graph_.neighbors(v);
  if (nbrs.empty()) return;
  const auto deg = static_cast<double>(nbrs.size());
  const auto& a = arrivals_[v];

  ts.out_edges.clear();
  for (const std::uint32_t out : graph_.out_slots(v)) {
    ts.out_edges.push_back(&edge_state_.touch(out));
  }

  // Issuance. Good peers flood one copy of each fresh query per link;
  // compromised peers send *distinct* queries per link (Sec. 2.1), at
  // Q_d = min(20,000, link capacity) each (Sec. 3.5); the bandwidth and
  // back-pressure clamps of phase 3 enforce the min().
  const PeerKind kind = kinds_[v];
  if (kind == PeerKind::kGood) {
    const double issue = config_.good_issue_per_minute /
                         static_cast<double>(ticks_per_minute_) *
                         issue_scale_[v];
    if (issue > 0.0) {
      sink.add_good_issued(issue);
      for (EdgeFlow* ef : ts.out_edges) {
        ef->nxt[static_cast<std::size_t>(TrafficClass::kGood)][ttl - 1] += issue;
      }
    }
  } else {
    const double target = config_.attack_target_per_minute /
                          static_cast<double>(ticks_per_minute_) *
                          issue_scale_[v];
    if (target > 0.0) {
      double attempted = 0.0;
      for (std::size_t i = 0; i < ts.out_edges.size(); ++i) {
        const double clamp = link_capacity_per_tick(v, nbrs[i]);
        const double vol = std::min(target, clamp);
        ts.out_edges[i]->nxt[static_cast<std::size_t>(TrafficClass::kAttack)]
                            [ttl - 1] += vol;
        attempted += vol;
      }
      sink.add_attack_issued(attempted);
    }
  }

  // Forwarding of serviced arrivals: only the fresh fraction spreads.
  if (deg >= 2.0) {
    const double fan = (deg - 1.0) / deg;
    for (std::size_t c = 0; c < kClasses; ++c) {
      for (std::size_t k = 0; k < ttl; ++k) {
        const double vol = a[c][k] * survive_c[c];
        if (vol <= 0.0) continue;
        const std::size_t hop = ttl - k;  // arrival hop of this flow
        if (c == static_cast<std::size_t>(TrafficClass::kGood)) {
          // Reach accounting: the exact fresh-node ratio of this hop.
          sink.add_fresh(hop - 1, vol * profile_.fresh_fraction(hop));
        }
        if (k == 0) continue;  // remaining ttl 1 -> no forwarding
        // Forwarding: the closed-loop-calibrated damping (see
        // recalibrate()) keeps aggregate message growth faithful.
        const double per_link = vol * forward_damping_[hop - 1] * fan;
        if (per_link <= 0.0) continue;
        for (EdgeFlow* ef : ts.out_edges) ef->nxt[c][k - 1] += per_link;
      }
    }
  } else {
    // Degree-1 peer: arrivals terminate here, but fresh mass still counts
    // toward reach.
    for (std::size_t k = 0; k < ttl; ++k) {
      const double vol =
          a[static_cast<std::size_t>(TrafficClass::kGood)][k] *
          survive_c[static_cast<std::size_t>(TrafficClass::kGood)];
      if (vol <= 0.0) continue;
      const std::size_t hop = ttl - k;
      sink.add_fresh(hop - 1, vol * profile_.fresh_fraction(hop));
    }
  }
}

// ---- Phase 3: bandwidth clamp at the sender, count, rotate. ---------------
// Canonical order again (senders in PeerId order, out-links in adjacency
// order) so the global drop/traffic accumulators sum deterministically.
// Touches only this sender's out-link state.
template <typename Sink>
void FlowNetwork::phase3_peer(PeerId from, std::size_t ttl, Sink& sink) {
  const auto nbrs = graph_.neighbors(from);
  const auto slots = graph_.out_slots(from);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EdgeFlow* efp = edge_state_.find(slots[i]);
    if (efp == nullptr) continue;
    auto& ef = *efp;
    const PeerId to = nbrs[i];
    double total = 0.0;
    std::array<double, kClasses> cls_tot{};
    for (std::size_t c = 0; c < kClasses; ++c) {
      for (std::size_t k = 0; k < ttl; ++k) {
        total += ef.nxt[c][k];
        cls_tot[c] += ef.nxt[c][k];
      }
    }
    if (total > 0.0) {
      const double clamp = link_capacity_per_tick(from, to);
      double scale = 1.0;
      if (total > clamp) {
        scale = clamp / total;
        sink.add_p3_drop(
            total - clamp,
            cls_tot[static_cast<std::size_t>(TrafficClass::kGood)] *
                (1.0 - scale),
            cls_tot[static_cast<std::size_t>(TrafficClass::kAttack)] *
                (1.0 - scale));
        total = clamp;
      }
      double attack_part = 0.0;
      for (std::size_t c = 0; c < kClasses; ++c) {
        for (std::size_t k = 0; k < ttl; ++k) {
          ef.nxt[c][k] *= scale;
          if (c == static_cast<std::size_t>(TrafficClass::kAttack)) {
            attack_part += ef.nxt[c][k];
          }
        }
      }
      sink.add_p3_traffic(total, attack_part);
      edge_state_.cold(slots[i]).minute_acc += total;
    }
    ef.cur = ef.nxt;
    for (auto& cls : ef.nxt) cls.fill(0.0);
  }
}

void FlowNetwork::step_serial(std::size_t n, std::size_t ttl, double cap_tick,
                              double service_time, double rel) {
  double tick_util = 0.0;
  std::size_t util_nodes = 0;
  DirectSink sink{acc_transport_lost_, acc_dropped_,     acc_dropped_class_,
                  acc_good_issued_,    acc_attack_issued_, acc_fresh_good_by_hop_,
                  tick_util,           util_nodes,        acc_delay_weight_,
                  acc_delay_load_,     acc_traffic_,      acc_attack_traffic_};

  for (PeerId to = 0; to < n; ++to) phase1_peer(to, ttl, rel, sink);

  if (span_scratch_.empty()) span_scratch_.resize(1);
  TickScratch& ts = span_scratch_.front();
  for (PeerId v = 0; v < n; ++v) {
    if (!graph_.is_active(v)) continue;
    const auto survive_c =
        phase2_service(v, ttl, cap_tick, service_time, rel, ts, sink);
    phase2_emit(v, ttl, survive_c, ts, sink);
  }

  for (PeerId from = 0; from < n; ++from) phase3_peer(from, ttl, sink);

  acc_util_ +=
      util_nodes > 0 ? tick_util / static_cast<double>(util_nodes) : 0.0;
}

const std::vector<util::IndexSpan>& FlowNetwork::shard_spans() {
  refresh_shard_plan();
  return shard_spans_;
}

void FlowNetwork::refresh_shard_plan() {
  const std::size_t n = graph_.node_count();
  if (!shard_plan_dirty_ && shard_plan_nodes_ == n) return;
  const std::size_t workers = pool_ ? pool_->size() : 1;
  const std::size_t parts = config_.shards > 0 ? config_.shards : workers;
  // Weight each peer by 1 + degree: a span's cost is dominated by the
  // per-link work of its peers, and the +1 keeps isolated peers from
  // collapsing a span to zero weight.
  shard_weights_.resize(n);
  for (PeerId v = 0; v < n; ++v) {
    shard_weights_[v] = 1 + static_cast<std::uint64_t>(graph_.degree(v));
  }
  shard_spans_ = util::make_weighted_spans(shard_weights_, parts);
  shard_plan_dirty_ = false;
  shard_plan_nodes_ = n;
}

void FlowNetwork::step_sharded(std::size_t n, std::size_t ttl, double cap_tick,
                               double service_time, double rel) {
  refresh_shard_plan();
  const std::size_t spans = shard_spans_.size();
  if (spans <= 1) {
    step_serial(n, ttl, cap_tick, service_time, rel);
    return;
  }
  span_logs_.resize(spans);
  for (SpanLog& log : span_logs_) log.clear();
  if (span_scratch_.size() < spans) span_scratch_.resize(spans);

  // Barrier 1: arrivals. Cross-shard reads of cur, exclusive writes of
  // arrivals_[span] — must fully precede any nxt/cur mutation.
  for (std::size_t s = 0; s < spans; ++s) {
    pool_->submit([this, s, ttl, rel] {
      SpanLogSink sink{span_logs_[s]};
      const util::IndexSpan span = shard_spans_[s];
      for (std::size_t to = span.begin; to < span.end; ++to) {
        phase1_peer(static_cast<PeerId>(to), ttl, rel, sink);
      }
    });
  }
  pool_->wait_idle();

  if (config_.discipline == ServiceDiscipline::kFairShare) {
    // Fair share re-reads in-link cur vectors during service (cross-shard),
    // so the cur-mutating emit/rotate work needs its own barrier.
    survive_scratch_.resize(n);
    for (std::size_t s = 0; s < spans; ++s) {
      pool_->submit([this, s, ttl, cap_tick, service_time, rel] {
        SpanLogSink sink{span_logs_[s]};
        const util::IndexSpan span = shard_spans_[s];
        for (std::size_t v = span.begin; v < span.end; ++v) {
          if (!graph_.is_active(static_cast<PeerId>(v))) continue;
          survive_scratch_[v] =
              phase2_service(static_cast<PeerId>(v), ttl, cap_tick,
                             service_time, rel, span_scratch_[s], sink);
        }
      });
    }
    pool_->wait_idle();
    for (std::size_t s = 0; s < spans; ++s) {
      pool_->submit([this, s, ttl] {
        SpanLogSink sink{span_logs_[s]};
        const util::IndexSpan span = shard_spans_[s];
        for (std::size_t v = span.begin; v < span.end; ++v) {
          if (!graph_.is_active(static_cast<PeerId>(v))) continue;
          phase2_emit(static_cast<PeerId>(v), ttl, survive_scratch_[v],
                      span_scratch_[s], sink);
        }
        for (std::size_t from = span.begin; from < span.end; ++from) {
          phase3_peer(static_cast<PeerId>(from), ttl, sink);
        }
      });
    }
    pool_->wait_idle();
  } else {
    // Barrier 2 (fused phases 2+3): each peer writes only its own
    // out-link nxt/cur state and reads only its own arrivals, so service,
    // emission, clamping and rotation pipeline within one pass per span.
    for (std::size_t s = 0; s < spans; ++s) {
      pool_->submit([this, s, ttl, cap_tick, service_time, rel] {
        SpanLogSink sink{span_logs_[s]};
        const util::IndexSpan span = shard_spans_[s];
        for (std::size_t v = span.begin; v < span.end; ++v) {
          if (!graph_.is_active(static_cast<PeerId>(v))) continue;
          const auto survive_c =
              phase2_service(static_cast<PeerId>(v), ttl, cap_tick,
                             service_time, rel, span_scratch_[s], sink);
          phase2_emit(static_cast<PeerId>(v), ttl, survive_c,
                      span_scratch_[s], sink);
        }
        for (std::size_t from = span.begin; from < span.end; ++from) {
          phase3_peer(static_cast<PeerId>(from), ttl, sink);
        }
      });
    }
    pool_->wait_idle();
  }

  // Canonical fold: replay every span's log in span (= peer) order, one
  // accumulator at a time, phase 2 before phase 3 — the exact sequence of
  // += operations the serial engine performs, hence bit-identical sums.
  for (std::size_t s = 0; s < spans; ++s) {
    for (const double v : span_logs_[s].transport_lost) {
      acc_transport_lost_ += v;
    }
  }
  double tick_util = 0.0;
  std::size_t util_nodes = 0;
  for (std::size_t s = 0; s < spans; ++s) {
    const SpanLog& log = span_logs_[s];
    for (const auto& d : log.p2_drops) {
      acc_dropped_ += d[0];
      acc_dropped_class_[static_cast<std::size_t>(TrafficClass::kGood)] += d[1];
      acc_dropped_class_[static_cast<std::size_t>(TrafficClass::kAttack)] +=
          d[2];
    }
    for (const double v : log.good_issued) acc_good_issued_ += v;
    for (const double v : log.attack_issued) acc_attack_issued_ += v;
    for (const auto& [hop_idx, v] : log.fresh) {
      acc_fresh_good_by_hop_[hop_idx] += v;
    }
    for (const auto& pl : log.peer_load) {
      tick_util += pl[0];
      ++util_nodes;
      acc_delay_weight_ += pl[1];
      acc_delay_load_ += pl[2];
    }
  }
  for (std::size_t s = 0; s < spans; ++s) {
    const SpanLog& log = span_logs_[s];
    for (const auto& d : log.p3_drops) {
      acc_dropped_ += d[0];
      acc_dropped_class_[static_cast<std::size_t>(TrafficClass::kGood)] += d[1];
      acc_dropped_class_[static_cast<std::size_t>(TrafficClass::kAttack)] +=
          d[2];
    }
    for (const auto& t : log.p3_traffic) {
      acc_traffic_ += t[0];
      acc_attack_traffic_ += t[1];
    }
  }
  acc_util_ +=
      util_nodes > 0 ? tick_util / static_cast<double>(util_nodes) : 0.0;
}

void FlowNetwork::step() {
  const std::size_t n = graph_.node_count();
  const std::size_t ttl = std::min(config_.ttl, kMaxTtl);
  const double cap_tick =
      config_.capacity_per_minute / static_cast<double>(ticks_per_minute_);
  const double service_time = kMinute / config_.capacity_per_minute;
  const double rel = config_.link_reliability;
  edge_state_.sync();
  arrivals_.resize(n);

  if (pool_) {
    step_sharded(n, ttl, cap_tick, service_time, rel);
  } else {
    step_serial(n, ttl, cap_tick, service_time, rel);
  }

  now_ += config_.tick_seconds;
  ++tick_count_;
  if (tick_count_ % ticks_per_minute_ == 0) rotate_minute();
}

void FlowNetwork::rotate_minute() {
  // Complete the per-link minute counters — one linear sweep over the
  // *cold* array only (the hot flow vectors stay untouched); ghosts of
  // torn-down links only cover the minute in which they were cut.
  ghost_minute_counts_.clear();
  edge_state_.for_each_cold([](std::uint32_t, EdgeMinute& em) {
    em.minute_done = em.minute_acc;
    em.minute_acc = 0.0;
  });

  MinuteReport r;
  r.minute = to_minutes(now_);
  r.traffic_messages = acc_traffic_;
  r.attack_messages = acc_attack_traffic_;
  r.good_issued = acc_good_issued_;
  r.attack_issued = acc_attack_issued_;
  r.dropped = acc_dropped_;
  r.mean_utilization = acc_util_ / static_cast<double>(ticks_per_minute_);
  r.overhead_messages = overhead_accum_;
  r.transport_lost = acc_transport_lost_;
  r.dropped_good =
      acc_dropped_class_[static_cast<std::size_t>(TrafficClass::kGood)];
  r.dropped_attack =
      acc_dropped_class_[static_cast<std::size_t>(TrafficClass::kAttack)];

  const std::size_t ttl = std::min(config_.ttl, kMaxTtl);
  if (acc_good_issued_ > 0.0) {
    // Per-query hop-resolved reach of good floods this minute.
    double cum_reach = 0.0;
    double prev_hit = 0.0;
    double rt_num = 0.0;
    const double mean_delay =
        acc_delay_load_ > 0.0 ? acc_delay_weight_ / acc_delay_load_ : 0.0;
    // Physical cap: a flood cannot reach more peers than are online (the
    // hop ratios are profile averages and can drift a few percent high).
    const double max_reach = static_cast<double>(graph_.active_count());
    for (std::size_t h = 1; h <= ttl; ++h) {
      const double reach_h = acc_fresh_good_by_hop_[h - 1] / acc_good_issued_;
      cum_reach = std::min(cum_reach + reach_h, max_reach);
      const double hit_by_h = content_.average_hit_probability(cum_reach);
      const double first_here = std::max(0.0, hit_by_h - prev_hit);
      // Round trip: query travels h hops out, the hit h hops back, each hop
      // paying propagation plus the load-dependent queueing delay.
      rt_num += first_here * 2.0 * static_cast<double>(h) *
                (config_.hop_latency + mean_delay);
      prev_hit = hit_by_h;
    }
    r.reach_per_query = cum_reach;
    r.success_rate = prev_hit;
    r.response_time = prev_hit > 0.0 ? rt_num / prev_hit : 0.0;
  }

  last_report_ = r;
  history_.push_back(r);
  DDP_TRACE(tracer_, obs::EventType::kMinuteReport, now_, kInvalidPeer,
            kInvalidPeer,
            {{"minute", r.minute},
             {"traffic", r.traffic_messages},
             {"dropped", r.dropped},
             {"success", r.success_rate}});

  // Reset running-minute accumulators.
  acc_traffic_ = acc_attack_traffic_ = 0.0;
  acc_good_issued_ = acc_attack_issued_ = 0.0;
  acc_dropped_ = 0.0;
  acc_dropped_class_.fill(0.0);
  acc_transport_lost_ = 0.0;
  acc_fresh_good_by_hop_.fill(0.0);
  acc_util_ = 0.0;
  acc_delay_weight_ = acc_delay_load_ = 0.0;
  overhead_accum_ = 0.0;

  // Periodic duplicate-damping recalibration against the churned topology.
  if (config_.recalibrate_minutes > 0.0 &&
      current_minute() - last_calibration_minute_ >= config_.recalibrate_minutes) {
    recalibrate();
  }

  for (const auto& hook : minute_hooks_) hook(r.minute);
  // Hooks cut links and drive churn; re-balance the spans for the minute
  // ahead (cheap: one weighted prefix scan, and only when anything moved).
  shard_plan_dirty_ = true;
}

double FlowNetwork::total_in_flight() const noexcept {
  double total = 0.0;
  const std::size_t n = graph_.node_count();
  for (PeerId from = 0; from < n; ++from) {
    for (const auto slot : graph_.out_slots(from)) {
      const EdgeFlow* ef = edge_state_.find(slot);
      if (ef == nullptr) continue;
      for (const auto& cls : ef->cur) {
        for (double v : cls) total += v;
      }
    }
  }
  return total;
}

void FlowNetwork::run_minutes(double m) {
  const auto ticks = static_cast<std::uint64_t>(
      std::llround(m * static_cast<double>(ticks_per_minute_)));
  for (std::uint64_t i = 0; i < ticks; ++i) step();
}

void FlowNetwork::run_until_minute(double m) {
  const auto target = static_cast<std::uint64_t>(
      std::llround(m * static_cast<double>(ticks_per_minute_)));
  while (tick_count_ < target) step();
}

namespace {

void save_report(snapshot::Writer& w, const MinuteReport& r) {
  w.f64(r.minute);
  w.f64(r.traffic_messages);
  w.f64(r.attack_messages);
  w.f64(r.good_issued);
  w.f64(r.attack_issued);
  w.f64(r.dropped);
  w.f64(r.reach_per_query);
  w.f64(r.success_rate);
  w.f64(r.response_time);
  w.f64(r.mean_utilization);
  w.f64(r.overhead_messages);
  w.f64(r.transport_lost);
  w.f64(r.dropped_good);
  w.f64(r.dropped_attack);
}

void load_report(snapshot::Reader& r, MinuteReport& m) {
  m.minute = r.f64();
  m.traffic_messages = r.f64();
  m.attack_messages = r.f64();
  m.good_issued = r.f64();
  m.attack_issued = r.f64();
  m.dropped = r.f64();
  m.reach_per_query = r.f64();
  m.success_rate = r.f64();
  m.response_time = r.f64();
  m.mean_utilization = r.f64();
  m.overhead_messages = r.f64();
  m.transport_lost = r.f64();
  m.dropped_good = r.f64();
  m.dropped_attack = r.f64();
}

}  // namespace

void FlowNetwork::save(snapshot::Writer& w) const {
  w.size(kinds_.size());
  for (const PeerKind k : kinds_) w.u8(static_cast<std::uint8_t>(k));
  snapshot::save_f64_vector(w, issue_scale_);

  // Per-entry layout matches the pre-split engine (cur, nxt, minute_acc,
  // minute_done interleaved per slot) so snapshots are exchangeable across
  // the hot/cold storage change — and across any jobs/shards setting,
  // which never influences this state.
  std::size_t entries = 0;
  edge_state_.for_each(
      [&entries](std::uint32_t, const EdgeFlow&, const EdgeMinute&) {
        ++entries;
      });
  w.size(entries);
  edge_state_.for_each(
      [&w](std::uint32_t slot, const EdgeFlow& ef, const EdgeMinute& em) {
        w.u32(slot);
        for (const auto& cls : ef.cur) {
          for (const double v : cls) w.f64(v);
        }
        for (const auto& cls : ef.nxt) {
          for (const double v : cls) w.f64(v);
        }
        w.f64(em.minute_acc);
        w.f64(em.minute_done);
      });

  snapshot::save_f64_vector(w, profile_.new_nodes);
  snapshot::save_f64_vector(w, profile_.messages);
  for (const double d : forward_damping_) w.f64(d);
  w.f64(last_calibration_minute_);

  w.size(ghost_minute_counts_.size());
  for (const GhostCount& g : ghost_minute_counts_) {
    w.u32(g.from);
    w.u32(g.to);
    w.f64(g.count);
  }

  w.f64(now_);
  w.u64(tick_count_);
  w.u64(ticks_per_minute_);
  w.f64(acc_traffic_);
  w.f64(acc_attack_traffic_);
  w.f64(acc_good_issued_);
  w.f64(acc_attack_issued_);
  w.f64(acc_dropped_);
  for (const double d : acc_dropped_class_) w.f64(d);
  w.f64(acc_transport_lost_);
  for (const double d : acc_fresh_good_by_hop_) w.f64(d);
  w.f64(acc_util_);
  w.f64(acc_delay_weight_);
  w.f64(acc_delay_load_);
  w.f64(overhead_accum_);

  save_report(w, last_report_);
  w.size(history_.size());
  for (const MinuteReport& m : history_) save_report(w, m);
  snapshot::save_rng(w, rng_);
}

void FlowNetwork::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxPeers = 1u << 24;
  kinds_.resize(r.size(kMaxPeers));
  for (PeerKind& k : kinds_) k = static_cast<PeerKind>(r.u8());
  snapshot::load_f64_vector(r, issue_scale_, kMaxPeers);

  const topology::EdgeIndex& index = graph_.edge_index();
  edge_state_.clear();
  edge_state_.sync();
  const std::size_t entries = r.size(index.capacity());
  for (std::size_t i = 0; i < entries; ++i) {
    const std::uint32_t slot = r.u32();
    if (!index.live(slot)) {
      throw snapshot::SnapshotError("flow state references a dead edge slot");
    }
    EdgeFlow& ef = edge_state_.touch(slot);
    for (auto& cls : ef.cur) {
      for (double& v : cls) v = r.f64();
    }
    for (auto& cls : ef.nxt) {
      for (double& v : cls) v = r.f64();
    }
    EdgeMinute& em = edge_state_.cold(slot);
    em.minute_acc = r.f64();
    em.minute_done = r.f64();
  }

  snapshot::load_f64_vector(r, profile_.new_nodes, kMaxTtl);
  snapshot::load_f64_vector(r, profile_.messages, kMaxTtl);
  for (double& d : forward_damping_) d = r.f64();
  last_calibration_minute_ = r.f64();

  ghost_minute_counts_.resize(r.size(1u << 26));
  for (GhostCount& g : ghost_minute_counts_) {
    g.from = r.u32();
    g.to = r.u32();
    g.count = r.f64();
  }

  now_ = r.f64();
  tick_count_ = r.u64();
  const std::uint64_t tpm = r.u64();
  if (tpm != ticks_per_minute_) {
    throw snapshot::SnapshotError("ticks-per-minute mismatch with config");
  }
  acc_traffic_ = r.f64();
  acc_attack_traffic_ = r.f64();
  acc_good_issued_ = r.f64();
  acc_attack_issued_ = r.f64();
  acc_dropped_ = r.f64();
  for (double& d : acc_dropped_class_) d = r.f64();
  acc_transport_lost_ = r.f64();
  for (double& d : acc_fresh_good_by_hop_) d = r.f64();
  acc_util_ = r.f64();
  acc_delay_weight_ = r.f64();
  acc_delay_load_ = r.f64();
  overhead_accum_ = r.f64();

  load_report(r, last_report_);
  history_.resize(r.size(1u << 24));
  for (MinuteReport& m : history_) load_report(r, m);
  snapshot::load_rng(r, rng_);
  shard_plan_dirty_ = true;
}

}  // namespace ddp::flow
