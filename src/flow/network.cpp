#include "flow/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "snapshot/state_io.hpp"
#include "util/log.hpp"

namespace ddp::flow {

FlowNetwork::FlowNetwork(topology::Graph& graph,
                         const topology::BandwidthMap& bandwidth,
                         const workload::ContentModel& content,
                         const FlowConfig& config, util::Rng rng)
    : graph_(graph), bandwidth_(bandwidth), content_(content), config_(config),
      rng_(rng), kinds_(graph.node_count(), PeerKind::kGood),
      issue_scale_(graph.node_count(), 1.0),
      edge_state_(graph.edge_index()) {
  ticks_per_minute_ =
      static_cast<std::uint64_t>(std::llround(kMinute / config_.tick_seconds));
  if (ticks_per_minute_ == 0) ticks_per_minute_ = 1;
  recalibrate();
}

void FlowNetwork::set_kind(PeerId p, PeerKind kind) { kinds_[p] = kind; }

void FlowNetwork::set_issue_scale(PeerId p, double scale) {
  issue_scale_[p] = std::max(0.0, scale);
}

void FlowNetwork::recalibrate() {
  const std::size_t ttl = std::min(config_.ttl, kMaxTtl);
  profile_ = topology::average_coverage(graph_, config_.ttl,
                                        config_.calibration_samples, rng_);

  // Closed-loop calibration of the forwarding damping: propagate a unit
  // impulse with the engine's exact update rule (uniform per-link split,
  // fan deg-1) from sampled origins, and solve, hop by hop, the factor
  // that makes the engine's message growth equal the exact BFS profile's.
  // Mean-field fresh fractions alone over-branch: hubs collect many copies
  // of a flood but forward it only once.
  std::array<double, kMaxTtl> target_sum{};
  std::array<double, kMaxTtl> unscaled_sum{};
  const std::size_t n = graph_.node_count();
  std::vector<double> a(n), nx(n);
  std::size_t samples = 0;
  for (std::size_t s = 0; s < config_.calibration_samples && s < 4096; ++s) {
    const PeerId origin = graph_.random_active_node(rng_);
    if (origin == kInvalidPeer) break;
    const auto exact = topology::flood_coverage(graph_, origin, ttl);
    std::fill(a.begin(), a.end(), 0.0);
    for (PeerId u : graph_.neighbors(origin)) a[u] = 1.0;
    ++samples;
    for (std::size_t h = 1; h < ttl; ++h) {
      double unscaled = 0.0;
      for (PeerId v = 0; v < n; ++v) {
        if (a[v] <= 0.0 || !graph_.is_active(v)) continue;
        unscaled += a[v] * (static_cast<double>(graph_.degree(v)) - 1.0);
      }
      unscaled_sum[h - 1] += unscaled;
      target_sum[h - 1] += exact.messages[h];  // messages into hop h+1
      const double delta =
          unscaled > 0.0 ? std::min(1.0, exact.messages[h] / unscaled) : 0.0;
      // Advance the impulse with the engine's own rule.
      std::fill(nx.begin(), nx.end(), 0.0);
      for (PeerId v = 0; v < n; ++v) {
        if (a[v] <= 0.0 || !graph_.is_active(v)) continue;
        const double deg = static_cast<double>(graph_.degree(v));
        if (deg < 2.0) continue;
        const double per_link = a[v] * delta * (deg - 1.0) / deg;
        for (PeerId u : graph_.neighbors(v)) nx[u] += per_link;
      }
      a.swap(nx);
    }
  }
  for (std::size_t h = 0; h < kMaxTtl; ++h) {
    forward_damping_[h] =
        (h < ttl - 1 && unscaled_sum[h] > 0.0)
            ? std::min(1.0, target_sum[h] / unscaled_sum[h])
            : 0.0;
  }
  last_calibration_minute_ = current_minute();
}

const FlowNetwork::EdgeState* FlowNetwork::find_edge(PeerId from,
                                                     PeerId to) const noexcept {
  const auto slot = graph_.edge_slot(from, to);
  return slot == topology::EdgeIndex::kInvalidSlot ? nullptr
                                                   : edge_state_.find(slot);
}

double FlowNetwork::sent_last_minute(PeerId from, PeerId to) const noexcept {
  if (const EdgeState* es = find_edge(from, to)) return es->minute_done;
  // Link gone, but the endpoint monitors still hold the last minute. The
  // ghost list only ever holds this minute's cuts, so a scan is cheap.
  for (const GhostCount& g : ghost_minute_counts_) {
    if (g.from == from && g.to == to) return g.count;
  }
  return 0.0;
}

double FlowNetwork::sent_last_minute(
    topology::EdgeIndex::Slot slot) const noexcept {
  const EdgeState* es = edge_state_.find(slot);
  return es == nullptr ? 0.0 : es->minute_done;
}

double FlowNetwork::out_last_minute(PeerId from) const noexcept {
  double total = 0.0;
  for (const auto slot : graph_.out_slots(from)) {
    if (const EdgeState* es = edge_state_.find(slot)) total += es->minute_done;
  }
  // Links cut during this minute's hooks: their counters moved to the
  // ghost list when the slot was released, never both places at once.
  for (const GhostCount& g : ghost_minute_counts_) {
    if (g.from == from) total += g.count;
  }
  return total;
}

void FlowNetwork::disconnect(PeerId a, PeerId b) {
  // Capture the completed-minute counters before remove_edge releases the
  // slot pair (which retires both directions' flow state).
  const auto slot = graph_.edge_slot(a, b);
  if (slot != topology::EdgeIndex::kInvalidSlot) {
    if (const EdgeState* es = edge_state_.find(slot);
        es != nullptr && es->minute_done > 0.0) {
      ghost_minute_counts_.push_back({a, b, es->minute_done});
    }
    const auto rev = graph_.edge_index().reverse(slot);
    if (const EdgeState* es = edge_state_.find(rev);
        es != nullptr && es->minute_done > 0.0) {
      ghost_minute_counts_.push_back({b, a, es->minute_done});
    }
  }
  if (graph_.remove_edge(a, b)) {
    DDP_TRACE(tracer_, obs::EventType::kLinkDisconnected, now_, a, b);
  }
}

void FlowNetwork::on_edge_added(PeerId a, PeerId b) {
  // Flow state is created lazily on first transmission, and any state a
  // previous incarnation of this link held died with its slot generation —
  // nothing to clean up.
  DDP_TRACE(tracer_, obs::EventType::kEdgeAdded, now_, a, b);
}

void FlowNetwork::on_peer_offline(PeerId p) {
  const std::vector<PeerId> nbrs(graph_.neighbors(p).begin(),
                                 graph_.neighbors(p).end());
  for (PeerId n : nbrs) disconnect(p, n);
  DDP_TRACE(tracer_, obs::EventType::kPeerOffline, now_, p);
}

double FlowNetwork::link_capacity_per_tick(PeerId from, PeerId to) const noexcept {
  if (!config_.bandwidth_limits) return std::numeric_limits<double>::infinity();
  return bandwidth_.link_queries_per_minute(from, to) /
         static_cast<double>(ticks_per_minute_);
}

void FlowNetwork::step() {
  const std::size_t n = graph_.node_count();
  const std::size_t ttl = std::min(config_.ttl, kMaxTtl);
  const double cap_tick =
      config_.capacity_per_minute / static_cast<double>(ticks_per_minute_);
  const double service_time = kMinute / config_.capacity_per_minute;
  const topology::EdgeIndex& index = graph_.edge_index();
  edge_state_.sync();

  // ---- Phase 1: gather arrivals per peer. -------------------------------
  // Each link delivers the link_reliability fraction of its in-flight
  // volume (fault injection; 1.0 is an exact multiplicative identity).
  // Canonical sweep order — destinations in PeerId order, in-links in
  // adjacency order — so the floating-point accumulation order is a
  // property of the topology, not of any container's internal layout.
  const double rel = config_.link_reliability;
  arrivals_.assign(n, {});
  for (PeerId to = 0; to < n; ++to) {
    auto& a = arrivals_[to];
    for (const std::uint32_t out : graph_.out_slots(to)) {
      // reverse(to -> from) is the in-link from -> to.
      const EdgeState* es = edge_state_.find(index.reverse(out));
      if (es == nullptr) continue;
      for (std::size_t c = 0; c < kClasses; ++c) {
        for (std::size_t k = 0; k < ttl; ++k) a[c][k] += es->cur[c][k] * rel;
      }
      if (rel < 1.0) {
        double in_flight = 0.0;
        for (std::size_t c = 0; c < kClasses; ++c) {
          for (std::size_t k = 0; k < ttl; ++k) in_flight += es->cur[c][k];
        }
        acc_transport_lost_ += in_flight * (1.0 - rel);
      }
    }
  }

  // ---- Phase 2: per-peer processing, issuance and forwarding. -----------
  // Drops happen at the receiver, as the paper's testbed measured (peer B
  // reads the socket and discards what it cannot service, Sec. 2.3): the
  // per-link monitors therefore see what senders actually pushed, which is
  // the observable a deployed DD-POLICE works from.
  std::vector<EdgeState*> out_edges;  // per-node scratch
  std::array<std::array<double, kMaxTtl>, kClasses> fair_arrivals{};
  std::vector<double> edge_totals;  // fair-share scratch
  std::vector<std::array<double, kClasses>> edge_class_totals;
  double tick_util = 0.0;
  std::size_t util_nodes = 0;
  for (PeerId v = 0; v < n; ++v) {
    if (!graph_.is_active(v)) continue;
    const auto nbrs = graph_.neighbors(v);
    const auto deg = static_cast<double>(nbrs.size());

    double in_total = 0.0;
    for (std::size_t c = 0; c < kClasses; ++c) {
      for (std::size_t k = 0; k < ttl; ++k) in_total += arrivals_[v][c][k];
    }
    // Per-class arrival totals, summed separately so in_total keeps its
    // original accumulation order (side accounting must not perturb it).
    std::array<double, kClasses> in_class{};
    for (std::size_t c = 0; c < kClasses; ++c) {
      for (std::size_t k = 0; k < ttl; ++k) in_class[c] += arrivals_[v][c][k];
    }

    double survive = in_total > cap_tick ? cap_tick / in_total : 1.0;
    // Per-class admission factors; under class-blind shedding both entries
    // hold the same double as `survive`, so the arithmetic downstream is
    // bit-identical to the scalar path.
    std::array<double, kClasses> survive_c{};
    survive_c.fill(survive);
    if (config_.discipline == ServiceDiscipline::kFairShare &&
        in_total > cap_tick) {
      // Max-min fair allocation of the service budget across in-links
      // (the load-balancing baseline [21]): lightly-loaded links are fully
      // served; heavy links are capped at the waterfill share.
      const auto vslots = graph_.out_slots(v);
      edge_totals.assign(nbrs.size(), 0.0);
      edge_class_totals.assign(nbrs.size(), {});
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        if (const EdgeState* es = edge_state_.find(index.reverse(vslots[e]))) {
          for (std::size_t c = 0; c < kClasses; ++c) {
            for (std::size_t k = 0; k < ttl; ++k) {
              const double vol = es->cur[c][k] * rel;
              edge_totals[e] += vol;
              edge_class_totals[e][c] += vol;
            }
          }
        }
      }
      double budget = cap_tick;
      std::vector<char> done(nbrs.size(), 0);
      std::size_t active = nbrs.size();
      double share = 0.0;
      for (int iter = 0; iter < 8 && active > 0; ++iter) {
        share = budget / static_cast<double>(active);
        bool changed = false;
        for (std::size_t e = 0; e < nbrs.size(); ++e) {
          if (done[e] || edge_totals[e] > share) continue;
          budget -= edge_totals[e];
          done[e] = 1;
          --active;
          changed = true;
        }
        if (!changed) break;
      }
      for (auto& cls : fair_arrivals) cls.fill(0.0);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        const EdgeState* es = edge_state_.find(index.reverse(vslots[e]));
        if (es == nullptr || edge_totals[e] <= 0.0) continue;
        const double sc = done[e] ? 1.0 : share / edge_totals[e];
        acc_dropped_ += edge_totals[e] * (1.0 - sc);
        for (std::size_t c = 0; c < kClasses; ++c) {
          acc_dropped_class_[c] += edge_class_totals[e][c] * (1.0 - sc);
        }
        for (std::size_t c = 0; c < kClasses; ++c) {
          for (std::size_t k = 0; k < ttl; ++k) {
            fair_arrivals[c][k] += es->cur[c][k] * rel * sc;
          }
        }
      }
      arrivals_[v] = fair_arrivals;
      survive = 1.0;  // per-edge scaling already applied
      survive_c.fill(1.0);
    } else if (config_.admission == AdmissionPolicy::kPriority &&
               in_total > cap_tick) {
      // Priority shedding: hold back the control-plane reserve (defense
      // messages travel out-of-band here, but the reserve models the
      // capacity a real servent would pin for them), admit good-class
      // traffic first from the remaining budget, shed attack-class first.
      const double reserve =
          std::clamp(config_.control_reserve_fraction, 0.0, 0.5);
      const double budget = cap_tick * (1.0 - reserve);
      const auto good = static_cast<std::size_t>(TrafficClass::kGood);
      const auto bad = static_cast<std::size_t>(TrafficClass::kAttack);
      const double sg =
          in_class[good] > 0.0 ? std::min(1.0, budget / in_class[good]) : 1.0;
      const double left = std::max(0.0, budget - in_class[good] * sg);
      const double sa =
          in_class[bad] > 0.0 ? std::min(1.0, left / in_class[bad]) : 1.0;
      survive_c[good] = sg;
      survive_c[bad] = sa;
      const double d_good = in_class[good] * (1.0 - sg);
      const double d_bad = in_class[bad] * (1.0 - sa);
      acc_dropped_ += d_good + d_bad;
      acc_dropped_class_[good] += d_good;
      acc_dropped_class_[bad] += d_bad;
    } else {
      acc_dropped_ += in_total * (1.0 - survive);
      for (std::size_t c = 0; c < kClasses; ++c) {
        acc_dropped_class_[c] += in_class[c] * (1.0 - survive);
      }
    }
    const auto& a = arrivals_[v];

    ++util_nodes;
    const double rho = std::min(1.0, in_total / cap_tick);
    tick_util += rho;
    // M/M/1-flavoured queueing delay with a finite ceiling, load-weighted
    // so hot peers dominate the response-time model.
    double delay = rho < 0.999 ? service_time * rho / (1.0 - rho)
                               : config_.max_queue_delay;
    delay = std::min(delay, config_.max_queue_delay);
    acc_delay_weight_ += delay * in_total;
    acc_delay_load_ += in_total;

    if (nbrs.empty()) continue;

    out_edges.clear();
    for (const std::uint32_t out : graph_.out_slots(v)) {
      out_edges.push_back(&edge_state_.touch(out));
    }

    // Issuance. Good peers flood one copy of each fresh query per link;
    // compromised peers send *distinct* queries per link (Sec. 2.1), at
    // Q_d = min(20,000, link capacity) each (Sec. 3.5); the bandwidth and
    // back-pressure clamps of phase 3 enforce the min().
    const PeerKind kind = kinds_[v];
    if (kind == PeerKind::kGood) {
      const double issue = config_.good_issue_per_minute /
                           static_cast<double>(ticks_per_minute_) *
                           issue_scale_[v];
      if (issue > 0.0) {
        acc_good_issued_ += issue;
        for (EdgeState* es : out_edges) {
          es->nxt[static_cast<std::size_t>(TrafficClass::kGood)][ttl - 1] += issue;
        }
      }
    } else {
      const double target = config_.attack_target_per_minute /
                            static_cast<double>(ticks_per_minute_) *
                            issue_scale_[v];
      if (target > 0.0) {
        double attempted = 0.0;
        for (std::size_t i = 0; i < out_edges.size(); ++i) {
          const double clamp = link_capacity_per_tick(v, nbrs[i]);
          const double vol = std::min(target, clamp);
          out_edges[i]->nxt[static_cast<std::size_t>(TrafficClass::kAttack)]
                           [ttl - 1] += vol;
          attempted += vol;
        }
        acc_attack_issued_ += attempted;
      }
    }

    // Forwarding of serviced arrivals: only the fresh fraction spreads.
    if (deg >= 2.0) {
      const double fan = (deg - 1.0) / deg;
      for (std::size_t c = 0; c < kClasses; ++c) {
        for (std::size_t k = 0; k < ttl; ++k) {
          const double vol = a[c][k] * survive_c[c];
          if (vol <= 0.0) continue;
          const std::size_t hop = ttl - k;  // arrival hop of this flow
          if (c == static_cast<std::size_t>(TrafficClass::kGood)) {
            // Reach accounting: the exact fresh-node ratio of this hop.
            acc_fresh_good_by_hop_[hop - 1] += vol * profile_.fresh_fraction(hop);
          }
          if (k == 0) continue;  // remaining ttl 1 -> no forwarding
          // Forwarding: the closed-loop-calibrated damping (see
          // recalibrate()) keeps aggregate message growth faithful.
          const double per_link = vol * forward_damping_[hop - 1] * fan;
          if (per_link <= 0.0) continue;
          for (EdgeState* es : out_edges) es->nxt[c][k - 1] += per_link;
        }
      }
    } else {
      // Degree-1 peer: arrivals terminate here, but fresh mass still counts
      // toward reach.
      for (std::size_t k = 0; k < ttl; ++k) {
        const double vol =
            a[static_cast<std::size_t>(TrafficClass::kGood)][k] *
            survive_c[static_cast<std::size_t>(TrafficClass::kGood)];
        if (vol <= 0.0) continue;
        const std::size_t hop = ttl - k;
        acc_fresh_good_by_hop_[hop - 1] += vol * profile_.fresh_fraction(hop);
      }
    }
  }

  // ---- Phase 3: bandwidth clamp at the sender, count, rotate. ------------
  // Canonical order again (senders in PeerId order, out-links in adjacency
  // order) so the global drop/traffic accumulators sum deterministically.
  for (PeerId from = 0; from < n; ++from) {
    const auto nbrs = graph_.neighbors(from);
    const auto slots = graph_.out_slots(from);
    for (std::size_t i = 0; i < slots.size(); ++i) {
    EdgeState* esp = edge_state_.find(slots[i]);
    if (esp == nullptr) continue;
    auto& es = *esp;
    const PeerId to = nbrs[i];
    double total = 0.0;
    std::array<double, kClasses> cls_tot{};
    for (std::size_t c = 0; c < kClasses; ++c) {
      for (std::size_t k = 0; k < ttl; ++k) {
        total += es.nxt[c][k];
        cls_tot[c] += es.nxt[c][k];
      }
    }
    if (total > 0.0) {
      const double clamp = link_capacity_per_tick(from, to);
      double scale = 1.0;
      if (total > clamp) {
        scale = clamp / total;
        acc_dropped_ += total - clamp;
        for (std::size_t c = 0; c < kClasses; ++c) {
          acc_dropped_class_[c] += cls_tot[c] * (1.0 - scale);
        }
        total = clamp;
      }
      double attack_part = 0.0;
      for (std::size_t c = 0; c < kClasses; ++c) {
        for (std::size_t k = 0; k < ttl; ++k) {
          es.nxt[c][k] *= scale;
          if (c == static_cast<std::size_t>(TrafficClass::kAttack)) {
            attack_part += es.nxt[c][k];
          }
        }
      }
      acc_traffic_ += total;
      acc_attack_traffic_ += attack_part;
      es.minute_acc += total;
    }
    es.cur = es.nxt;
    for (auto& cls : es.nxt) cls.fill(0.0);
    }
  }

  acc_util_ += util_nodes > 0 ? tick_util / static_cast<double>(util_nodes) : 0.0;

  now_ += config_.tick_seconds;
  ++tick_count_;
  if (tick_count_ % ticks_per_minute_ == 0) rotate_minute();
}

void FlowNetwork::rotate_minute() {
  // Complete the per-link minute counters — one linear sweep over the
  // slot space; ghosts of torn-down links only cover the minute in which
  // they were cut.
  ghost_minute_counts_.clear();
  edge_state_.for_each([](std::uint32_t, EdgeState& es) {
    es.minute_done = es.minute_acc;
    es.minute_acc = 0.0;
  });

  MinuteReport r;
  r.minute = to_minutes(now_);
  r.traffic_messages = acc_traffic_;
  r.attack_messages = acc_attack_traffic_;
  r.good_issued = acc_good_issued_;
  r.attack_issued = acc_attack_issued_;
  r.dropped = acc_dropped_;
  r.mean_utilization = acc_util_ / static_cast<double>(ticks_per_minute_);
  r.overhead_messages = overhead_accum_;
  r.transport_lost = acc_transport_lost_;
  r.dropped_good =
      acc_dropped_class_[static_cast<std::size_t>(TrafficClass::kGood)];
  r.dropped_attack =
      acc_dropped_class_[static_cast<std::size_t>(TrafficClass::kAttack)];

  const std::size_t ttl = std::min(config_.ttl, kMaxTtl);
  if (acc_good_issued_ > 0.0) {
    // Per-query hop-resolved reach of good floods this minute.
    double cum_reach = 0.0;
    double prev_hit = 0.0;
    double rt_num = 0.0;
    const double mean_delay =
        acc_delay_load_ > 0.0 ? acc_delay_weight_ / acc_delay_load_ : 0.0;
    // Physical cap: a flood cannot reach more peers than are online (the
    // hop ratios are profile averages and can drift a few percent high).
    const double max_reach = static_cast<double>(graph_.active_count());
    for (std::size_t h = 1; h <= ttl; ++h) {
      const double reach_h = acc_fresh_good_by_hop_[h - 1] / acc_good_issued_;
      cum_reach = std::min(cum_reach + reach_h, max_reach);
      const double hit_by_h = content_.average_hit_probability(cum_reach);
      const double first_here = std::max(0.0, hit_by_h - prev_hit);
      // Round trip: query travels h hops out, the hit h hops back, each hop
      // paying propagation plus the load-dependent queueing delay.
      rt_num += first_here * 2.0 * static_cast<double>(h) *
                (config_.hop_latency + mean_delay);
      prev_hit = hit_by_h;
    }
    r.reach_per_query = cum_reach;
    r.success_rate = prev_hit;
    r.response_time = prev_hit > 0.0 ? rt_num / prev_hit : 0.0;
  }

  last_report_ = r;
  history_.push_back(r);
  DDP_TRACE(tracer_, obs::EventType::kMinuteReport, now_, kInvalidPeer,
            kInvalidPeer,
            {{"minute", r.minute},
             {"traffic", r.traffic_messages},
             {"dropped", r.dropped},
             {"success", r.success_rate}});

  // Reset running-minute accumulators.
  acc_traffic_ = acc_attack_traffic_ = 0.0;
  acc_good_issued_ = acc_attack_issued_ = 0.0;
  acc_dropped_ = 0.0;
  acc_dropped_class_.fill(0.0);
  acc_transport_lost_ = 0.0;
  acc_fresh_good_by_hop_.fill(0.0);
  acc_util_ = 0.0;
  acc_delay_weight_ = acc_delay_load_ = 0.0;
  overhead_accum_ = 0.0;

  // Periodic duplicate-damping recalibration against the churned topology.
  if (config_.recalibrate_minutes > 0.0 &&
      current_minute() - last_calibration_minute_ >= config_.recalibrate_minutes) {
    recalibrate();
  }

  for (const auto& hook : minute_hooks_) hook(r.minute);
}

double FlowNetwork::total_in_flight() const noexcept {
  double total = 0.0;
  const std::size_t n = graph_.node_count();
  for (PeerId from = 0; from < n; ++from) {
    for (PeerId to : graph_.neighbors(from)) {
      const EdgeState* es = find_edge(from, to);
      if (es == nullptr) continue;
      for (const auto& cls : es->cur) {
        for (double v : cls) total += v;
      }
    }
  }
  return total;
}

void FlowNetwork::run_minutes(double m) {
  const auto ticks = static_cast<std::uint64_t>(
      std::llround(m * static_cast<double>(ticks_per_minute_)));
  for (std::uint64_t i = 0; i < ticks; ++i) step();
}

void FlowNetwork::run_until_minute(double m) {
  const auto target = static_cast<std::uint64_t>(
      std::llround(m * static_cast<double>(ticks_per_minute_)));
  while (tick_count_ < target) step();
}

namespace {

void save_report(snapshot::Writer& w, const MinuteReport& r) {
  w.f64(r.minute);
  w.f64(r.traffic_messages);
  w.f64(r.attack_messages);
  w.f64(r.good_issued);
  w.f64(r.attack_issued);
  w.f64(r.dropped);
  w.f64(r.reach_per_query);
  w.f64(r.success_rate);
  w.f64(r.response_time);
  w.f64(r.mean_utilization);
  w.f64(r.overhead_messages);
  w.f64(r.transport_lost);
  w.f64(r.dropped_good);
  w.f64(r.dropped_attack);
}

void load_report(snapshot::Reader& r, MinuteReport& m) {
  m.minute = r.f64();
  m.traffic_messages = r.f64();
  m.attack_messages = r.f64();
  m.good_issued = r.f64();
  m.attack_issued = r.f64();
  m.dropped = r.f64();
  m.reach_per_query = r.f64();
  m.success_rate = r.f64();
  m.response_time = r.f64();
  m.mean_utilization = r.f64();
  m.overhead_messages = r.f64();
  m.transport_lost = r.f64();
  m.dropped_good = r.f64();
  m.dropped_attack = r.f64();
}

}  // namespace

void FlowNetwork::save(snapshot::Writer& w) const {
  w.size(kinds_.size());
  for (const PeerKind k : kinds_) w.u8(static_cast<std::uint8_t>(k));
  snapshot::save_f64_vector(w, issue_scale_);

  std::size_t entries = 0;
  edge_state_.for_each([&entries](std::uint32_t, const EdgeState&) { ++entries; });
  w.size(entries);
  edge_state_.for_each([&w](std::uint32_t slot, const EdgeState& es) {
    w.u32(slot);
    for (const auto& cls : es.cur) {
      for (const double v : cls) w.f64(v);
    }
    for (const auto& cls : es.nxt) {
      for (const double v : cls) w.f64(v);
    }
    w.f64(es.minute_acc);
    w.f64(es.minute_done);
  });

  snapshot::save_f64_vector(w, profile_.new_nodes);
  snapshot::save_f64_vector(w, profile_.messages);
  for (const double d : forward_damping_) w.f64(d);
  w.f64(last_calibration_minute_);

  w.size(ghost_minute_counts_.size());
  for (const GhostCount& g : ghost_minute_counts_) {
    w.u32(g.from);
    w.u32(g.to);
    w.f64(g.count);
  }

  w.f64(now_);
  w.u64(tick_count_);
  w.u64(ticks_per_minute_);
  w.f64(acc_traffic_);
  w.f64(acc_attack_traffic_);
  w.f64(acc_good_issued_);
  w.f64(acc_attack_issued_);
  w.f64(acc_dropped_);
  for (const double d : acc_dropped_class_) w.f64(d);
  w.f64(acc_transport_lost_);
  for (const double d : acc_fresh_good_by_hop_) w.f64(d);
  w.f64(acc_util_);
  w.f64(acc_delay_weight_);
  w.f64(acc_delay_load_);
  w.f64(overhead_accum_);

  save_report(w, last_report_);
  w.size(history_.size());
  for (const MinuteReport& m : history_) save_report(w, m);
  snapshot::save_rng(w, rng_);
}

void FlowNetwork::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxPeers = 1u << 24;
  kinds_.resize(r.size(kMaxPeers));
  for (PeerKind& k : kinds_) k = static_cast<PeerKind>(r.u8());
  snapshot::load_f64_vector(r, issue_scale_, kMaxPeers);

  const topology::EdgeIndex& index = graph_.edge_index();
  edge_state_.clear();
  edge_state_.sync();
  const std::size_t entries = r.size(index.capacity());
  for (std::size_t i = 0; i < entries; ++i) {
    const std::uint32_t slot = r.u32();
    if (!index.live(slot)) {
      throw snapshot::SnapshotError("flow state references a dead edge slot");
    }
    EdgeState& es = edge_state_.touch(slot);
    for (auto& cls : es.cur) {
      for (double& v : cls) v = r.f64();
    }
    for (auto& cls : es.nxt) {
      for (double& v : cls) v = r.f64();
    }
    es.minute_acc = r.f64();
    es.minute_done = r.f64();
  }

  snapshot::load_f64_vector(r, profile_.new_nodes, kMaxTtl);
  snapshot::load_f64_vector(r, profile_.messages, kMaxTtl);
  for (double& d : forward_damping_) d = r.f64();
  last_calibration_minute_ = r.f64();

  ghost_minute_counts_.resize(r.size(1u << 26));
  for (GhostCount& g : ghost_minute_counts_) {
    g.from = r.u32();
    g.to = r.u32();
    g.count = r.f64();
  }

  now_ = r.f64();
  tick_count_ = r.u64();
  const std::uint64_t tpm = r.u64();
  if (tpm != ticks_per_minute_) {
    throw snapshot::SnapshotError("ticks-per-minute mismatch with config");
  }
  acc_traffic_ = r.f64();
  acc_attack_traffic_ = r.f64();
  acc_good_issued_ = r.f64();
  acc_attack_issued_ = r.f64();
  acc_dropped_ = r.f64();
  for (double& d : acc_dropped_class_) d = r.f64();
  acc_transport_lost_ = r.f64();
  for (double& d : acc_fresh_good_by_hop_) d = r.f64();
  acc_util_ = r.f64();
  acc_delay_weight_ = r.f64();
  acc_delay_load_ = r.f64();
  overhead_accum_ = r.f64();

  load_report(r, last_report_);
  history_.resize(r.size(1u << 24));
  for (MinuteReport& m : history_) load_report(r, m);
  snapshot::load_rng(r, rng_);
}

}  // namespace ddp::flow
