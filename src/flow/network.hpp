#pragma once

/// \file network.hpp
/// Flow-level P2P engine: the scalable counterpart of p2p::PacketNetwork.
///
/// Instead of individual descriptors, each directed overlay link carries an
/// aggregate *query flow* — a small vector of volumes indexed by (traffic
/// class, remaining TTL). One engine tick (default 1 s) advances every flow
/// one hop:
///
///   1. arrivals at a peer are summed across its in-links;
///   2. the peer services at most capacity/tick queries — excess drops
///      (that is how overload degrades search, Figs. 9-11);
///   3. of the serviced volume, the topology-calibrated fresh fraction
///      delta(h) lands on peers that have not seen the query yet; only
///      those copies are forwarded (duplicates die, as per Gnutella [15]);
///   4. fresh volume is forwarded to (deg-1) neighbours with the TTL
///      decremented, subject to per-link bandwidth clamps.
///
/// Issuance semantics differ by traffic class exactly as the paper
/// describes: a *good* peer floods one query to every neighbour (full copy
/// per link), while a *compromised* peer sends *distinct* queries to
/// different neighbours (Sec. 2.1, Figure 1) so its per-link volume is the
/// split of its sourcing rate.
///
/// The per-minute per-link counters DD-POLICE monitors (Out_query /
/// In_query, Sec. 3.2) fall out of the model natively: they are the
/// accumulated per-edge volumes of the last completed minute.
///
/// Validity: the engine's branching factors are calibrated against exact
/// BFS coverage profiles of the live topology (topology::average_coverage),
/// and the test suite cross-validates reach, message counts and drop onset
/// against the packet engine on identical small topologies.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "flow/config.hpp"
#include "obs/trace.hpp"
#include "topology/bandwidth.hpp"
#include "topology/coverage.hpp"
#include "topology/edge_index.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"
#include "util/spans.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "workload/content.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::flow {

/// Traffic classes tracked separately so ground-truth metrics can tell
/// legitimate search traffic from attack traffic. Protocol-visible
/// counters always see the sum (a real peer cannot tell them apart).
enum class TrafficClass : std::uint8_t { kGood = 0, kAttack = 1 };
inline constexpr std::size_t kClasses = 2;
inline constexpr std::size_t kMaxTtl = 8;  ///< supports ttl <= 8

/// One completed simulated minute of network-wide measurements
/// (the metrics module converts these into the paper's reported series).
struct MinuteReport {
  double minute = 0.0;           ///< index of the completed minute
  double traffic_messages = 0.0; ///< query transmissions, all classes
  double attack_messages = 0.0;  ///< ... attributable to attack floods
  double good_issued = 0.0;      ///< fresh good queries issued
  double attack_issued = 0.0;    ///< fresh attack queries issued
  double dropped = 0.0;          ///< capacity drops (all classes)
  double reach_per_query = 0.0;  ///< mean distinct peers a good flood covered
  double success_rate = 0.0;     ///< S(t), Sec. 3.6
  double response_time = 0.0;    ///< mean first-response latency, seconds
  double mean_utilization = 0.0; ///< load / capacity, averaged over peers
  double overhead_messages = 0.0;///< defense-protocol messages (set by hooks)
  double transport_lost = 0.0;   ///< volume lost to link unreliability (faults)
  double dropped_good = 0.0;     ///< capacity drops, good class only
  double dropped_attack = 0.0;   ///< capacity drops, attack class only
};

class FlowNetwork {
 public:
  FlowNetwork(topology::Graph& graph, const topology::BandwidthMap& bandwidth,
              const workload::ContentModel& content, const FlowConfig& config,
              util::Rng rng);

  /// Traffic-class role of a peer. Compromised peers source
  /// attack_target_per_minute distinct queries; good peers issue
  /// good_issue_per_minute flooded queries.
  void set_kind(PeerId p, PeerKind kind);
  PeerKind kind(PeerId p) const noexcept { return kinds_[p]; }

  /// Scale one peer's issue rate (used by ablations; 1.0 = configured rate).
  void set_issue_scale(PeerId p, double scale);

  /// Advance one tick.
  void step();

  /// Advance whole minutes (60/tick ticks each).
  void run_minutes(double m);

  /// Advance to the *absolute* minute `m` (no-op when already there or
  /// past). Equivalent to run_minutes(m) on a fresh engine, and correct
  /// after a checkpoint restore, where the tick counter is mid-run.
  void run_until_minute(double m);

  SimTime now() const noexcept { return now_; }
  double current_minute() const noexcept { return to_minutes(now_); }

  /// Out_query(from -> to) of the last *completed* minute — exactly the
  /// counter a DD-POLICE monitor reports in a Neighbor_Traffic message.
  double sent_last_minute(PeerId from, PeerId to) const noexcept;

  /// Same counter keyed by directed edge slot — O(1), for defense sweeps
  /// that already walk `graph().out_slots()`. Live slots only (a dead or
  /// recycled slot reads 0; the PeerId overload also consults the ghost
  /// counters of links cut earlier this minute).
  double sent_last_minute(topology::EdgeIndex::Slot slot) const noexcept;

  /// Total Out_query(from -> *) of the last completed minute: live
  /// out-slots plus the ghost counters of links cut earlier this minute —
  /// so a just-cut attacker's final minute of sourcing is still visible
  /// from inside a minute hook (the forensics and series feeds read this).
  double out_last_minute(PeerId from) const noexcept;

  /// Tear down a logical link (defense action or churn). In-flight flow on
  /// the link is discarded; monitors reset.
  void disconnect(PeerId a, PeerId b);

  /// Notify the engine that the graph gained an edge (churn/rejoin); flow
  /// state is created lazily, so this only validates bookkeeping.
  void on_edge_added(PeerId a, PeerId b);

  /// Remove a peer's flow state entirely (peer went offline).
  void on_peer_offline(PeerId p);

  /// Hooks run at each completed minute, after counters rotate — the
  /// defense layer and churn drivers subscribe here.
  using MinuteHook = std::function<void(double minute)>;
  void add_minute_hook(MinuteHook hook) { minute_hooks_.push_back(std::move(hook)); }

  /// Defense layers report their own message overhead here so the traffic
  /// metric includes it (Sec. 3.7: "slightly higher average traffic cost").
  void add_overhead_messages(double count) { overhead_accum_ += count; }

  /// Total query volume currently in transit on all links (all classes,
  /// all TTLs) — the soak harness's bounded-queue-occupancy observable.
  double total_in_flight() const noexcept;

  const MinuteReport& last_minute_report() const noexcept { return last_report_; }
  const std::vector<MinuteReport>& minute_history() const noexcept {
    return history_;
  }

  const topology::Graph& graph() const noexcept { return graph_; }
  topology::Graph& mutable_graph() noexcept { return graph_; }
  const workload::ContentModel& content() const noexcept { return content_; }
  const FlowConfig& config() const noexcept { return config_; }

  /// Force recalibration of the duplicate-damping profile now.
  void recalibrate();

  /// Attach a trace sink (null detaches). The flow engine emits only
  /// minute-granular and structural events (minute_report, link
  /// disconnects, edge adds, peer teardown) — never per-tick events, so
  /// the hot step() loop stays trace-free.
  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.bind(sink); }
  const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// Serialize the complete flow state (roles, per-link flow, calibration,
  /// minute accumulators, report history, rng) into the writer's open
  /// section. The graph itself is saved separately by its owner.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save(). The graph must already be restored
  /// (per-link state re-attaches to its live slots). Minute hooks are not
  /// serialized — subscribers re-register on reconstruction.
  void load(snapshot::Reader& r);

  /// The worker pool driving the sharded tick sweeps, or null when the
  /// engine runs serially (jobs <= 1). Other per-minute sweeps (DD-POLICE
  /// detection, monitor scans) borrow it so one scenario never stacks two
  /// pools; they only ever use it between ticks, so there is no contention
  /// with the flow phases.
  util::ThreadPool* worker_pool() noexcept { return pool_.get(); }

  /// The current shard plan: contiguous PeerId spans, degree-weighted so
  /// hub-heavy spans shrink. Recomputed lazily after topology changes.
  /// Exposed for the defense sweeps that reuse the flow partitioning.
  const std::vector<util::IndexSpan>& shard_spans();

 private:
  /// Hot per-link state: the in-flight flow vectors every tick phase
  /// streams (256 B). Split from the minute counters so phase sweeps and
  /// monitor sweeps each touch only the arrays they need.
  struct EdgeFlow {
    /// Flow in transit on the directed link, arriving next tick.
    std::array<std::array<double, kMaxTtl>, kClasses> cur{};
    std::array<std::array<double, kMaxTtl>, kClasses> nxt{};
  };
  /// Cold per-link state: the per-minute Out_query counters DD-POLICE
  /// reads (16 B). The minute rotation and every defense counter sweep
  /// walk only this array.
  struct EdgeMinute {
    double minute_acc = 0.0;   ///< volume sent this (running) minute
    double minute_done = 0.0;  ///< volume sent in the last completed minute
  };

  /// Per-span contribution log for the parallel tick path. Workers sweep
  /// their contiguous peer span in canonical order and *record* every
  /// value the serial engine would have added to a global accumulator;
  /// the coordinator then replays the logs span-by-span. Because spans
  /// partition the peer range in order, the concatenated replay is the
  /// exact serial fold — same values, same order, bit-identical sums.
  struct SpanLog {
    std::vector<double> transport_lost;               ///< phase 1, per lossy in-link
    std::vector<std::array<double, 3>> p2_drops;      ///< {total, good, attack}
    std::vector<double> good_issued;
    std::vector<double> attack_issued;
    std::vector<std::pair<std::uint8_t, double>> fresh;  ///< {hop-1, reach mass}
    std::vector<std::array<double, 3>> peer_load;     ///< {rho, delay*load, load}
    std::vector<std::array<double, 3>> p3_drops;      ///< {total, good, attack}
    std::vector<std::array<double, 2>> p3_traffic;    ///< {total, attack part}
    void clear() noexcept;
  };
  struct SpanLogSink;

  /// Per-worker scratch for phase 2 (fair-share waterfill buffers, the
  /// out-edge pointer batch) — reused across ticks, one per shard span so
  /// concurrent sweeps never share.
  struct TickScratch {
    std::vector<EdgeFlow*> out_edges;
    std::vector<double> edge_totals;
    std::vector<std::array<double, kClasses>> edge_class_totals;
    std::vector<char> done;
    std::array<std::array<double, kMaxTtl>, kClasses> fair_arrivals{};
  };

  // The tick is three phases; each body processes one peer and reports
  // accumulator contributions through a Sink (direct member accumulation
  // on the serial path, SpanLog recording on the sharded path — the
  // serial path's arithmetic is untouched by the sharding machinery).
  template <typename Sink>
  void phase1_peer(PeerId to, std::size_t ttl, double rel, Sink& sink);
  template <typename Sink>
  std::array<double, kClasses> phase2_service(PeerId v, std::size_t ttl,
                                              double cap_tick,
                                              double service_time, double rel,
                                              TickScratch& ts, Sink& sink);
  template <typename Sink>
  void phase2_emit(PeerId v, std::size_t ttl,
                   const std::array<double, kClasses>& survive_c,
                   TickScratch& ts, Sink& sink);
  template <typename Sink>
  void phase3_peer(PeerId from, std::size_t ttl, Sink& sink);

  void step_serial(std::size_t n, std::size_t ttl, double cap_tick,
                   double service_time, double rel);
  void step_sharded(std::size_t n, std::size_t ttl, double cap_tick,
                    double service_time, double rel);
  void refresh_shard_plan();

  void rotate_minute();
  double link_capacity_per_tick(PeerId from, PeerId to) const noexcept;

  topology::Graph& graph_;
  const topology::BandwidthMap& bandwidth_;
  const workload::ContentModel& content_;
  FlowConfig config_;
  util::Rng rng_;
  obs::Tracer tracer_;

  std::vector<PeerKind> kinds_;
  std::vector<double> issue_scale_;
  /// Per-directed-link flow state, slot-indexed via the graph's EdgeIndex,
  /// hot/cold split (flow vectors vs minute counters). Entries are created
  /// lazily (first transmission touches the slot) and retire automatically
  /// when the slot's generation moves on — edge teardown needs no
  /// flow-side erase.
  topology::SplitEdgeMap<EdgeFlow, EdgeMinute> edge_state_;

  /// Sharded-sweep machinery (absent on the serial path): the worker
  /// pool, the degree-weighted contiguous peer spans, per-span logs and
  /// scratch, and the fair-share survive carry between barriers.
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<util::IndexSpan> shard_spans_;
  std::vector<std::uint64_t> shard_weights_;
  std::vector<SpanLog> span_logs_;
  std::vector<TickScratch> span_scratch_;
  std::vector<std::array<double, kClasses>> survive_scratch_;
  bool shard_plan_dirty_ = true;
  std::size_t shard_plan_nodes_ = 0;

  topology::CoverageProfile profile_;  ///< exact reach ratios (per-hop)
  /// Per-hop forwarding damping, calibrated closed-loop: a unit impulse
  /// propagated with the engine's own update rule must reproduce the exact
  /// BFS profile's per-hop message counts. This corrects the mean-field
  /// bias at hubs (many arrivals, fresh only once).
  std::array<double, kMaxTtl> forward_damping_{};
  double last_calibration_minute_ = 0.0;

  /// Monitors remember the last completed minute even after a link is torn
  /// down (a peer's Out_query/In_query windows do not vanish when a TCP
  /// connection closes). Captured at disconnect time — before the slot is
  /// released — and cleared at each minute rotation; the population is only
  /// ever the links cut in the current minute, so lookups scan linearly.
  struct GhostCount {
    PeerId from = kInvalidPeer;
    PeerId to = kInvalidPeer;
    double count = 0.0;
  };
  std::vector<GhostCount> ghost_minute_counts_;

  SimTime now_ = 0.0;
  std::uint64_t tick_count_ = 0;
  std::uint64_t ticks_per_minute_ = 60;

  // Running-minute accumulators (rotated into MinuteReport).
  double acc_traffic_ = 0.0;
  double acc_attack_traffic_ = 0.0;
  double acc_good_issued_ = 0.0;
  double acc_attack_issued_ = 0.0;
  double acc_dropped_ = 0.0;
  /// Ground-truth split of acc_dropped_ by traffic class (purely additive
  /// side accounting; never feeds back into the flow arithmetic).
  std::array<double, kClasses> acc_dropped_class_{};
  double acc_transport_lost_ = 0.0;
  std::array<double, kMaxTtl> acc_fresh_good_by_hop_{};
  double acc_util_ = 0.0;
  double acc_delay_weight_ = 0.0;
  double acc_delay_load_ = 0.0;
  double overhead_accum_ = 0.0;

  MinuteReport last_report_;
  std::vector<MinuteReport> history_;
  std::vector<MinuteHook> minute_hooks_;

  // Scratch buffers reused across ticks (avoid per-tick allocation).
  std::vector<std::array<std::array<double, kMaxTtl>, kClasses>> arrivals_;
};

}  // namespace ddp::flow
