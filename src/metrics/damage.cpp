#include "metrics/damage.hpp"

#include <algorithm>

namespace ddp::metrics {

DamageAnalysis analyze_damage(const std::vector<flow::MinuteReport>& history,
                              double baseline_success, double from_minute) {
  DamageAnalysis a;
  if (baseline_success <= 0.0) return a;
  for (const auto& r : history) {
    if (r.minute < from_minute) continue;
    const double d =
        std::max(0.0, (baseline_success - r.success_rate) / baseline_success) *
        100.0;
    a.damage.add(r.minute, d);
  }
  if (a.damage.empty()) return a;
  a.peak_damage = a.damage.max_value();
  a.stabilized_damage = a.damage.tail_mean(0.25);
  a.onset_minute = a.damage.first_time_at_or_above(kRecoveryOnsetPercent);
  if (a.onset_minute >= 0.0) {
    const double recovered =
        a.damage.first_time_at_or_below(kRecoveryTargetPercent, a.onset_minute);
    if (recovered >= 0.0) a.recovery_minutes = recovered - a.onset_minute;
  }
  return a;
}

}  // namespace ddp::metrics
