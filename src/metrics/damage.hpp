#pragma once

/// \file damage.hpp
/// Damage-rate analysis (Sec. 3.7.2):
///
///   D(t) = (S(t) - S'(t)) / S(t) * 100%
///
/// where S is the query success rate without any compromised peer and S'
/// the success rate under attack. Damage recovery time is "the time period
/// from when the system damage rate D(t) is equal or greater than 20%
/// until when the damage is equal or less than 15%".

#include <vector>

#include "flow/network.hpp"
#include "util/stats.hpp"

namespace ddp::metrics {

struct DamageAnalysis {
  util::TimeSeries damage;        ///< (minute, D(t) in percent)
  double peak_damage = 0.0;       ///< max D(t), percent
  double stabilized_damage = 0.0; ///< tail-mean D(t), percent
  double recovery_minutes = -1.0; ///< 20% -> 15% rule; negative if never
  double onset_minute = -1.0;     ///< first minute with D >= 20%
};

/// Build the damage series by comparing an attacked run's success-rate
/// history against a baseline (no-attack) success rate. Minutes before
/// `from_minute` are skipped (warm-up).
DamageAnalysis analyze_damage(const std::vector<flow::MinuteReport>& history,
                              double baseline_success, double from_minute = 0.0);

/// Paper thresholds for the recovery-time rule.
inline constexpr double kRecoveryOnsetPercent = 20.0;
inline constexpr double kRecoveryTargetPercent = 15.0;

}  // namespace ddp::metrics
