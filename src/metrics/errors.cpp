#include "metrics/errors.hpp"

#include <algorithm>
#include <limits>

namespace ddp::metrics {

ErrorTally tally_errors(const std::vector<core::Decision>& decisions,
                        const std::vector<char>& is_bad,
                        double attack_start_minute) {
  ErrorTally t;
  const std::size_t n = is_bad.size();
  std::vector<char> good_cut(n, 0);
  std::vector<double> first_detect(n, -1.0);

  for (const auto& d : decisions) {
    if (d.suspect >= n) continue;
    // A compromised judge disconnecting peers is attacker behaviour, not a
    // defense error; only honest judges' decisions are tallied.
    if (d.judge < n && is_bad[d.judge]) continue;
    if (is_bad[d.suspect]) {
      ++t.bad_cut_events;
      if (first_detect[d.suspect] < 0.0) first_detect[d.suspect] = d.minute;
    } else {
      ++t.good_cut_events;
      good_cut[d.suspect] = 1;
    }
  }

  std::size_t bad_total = 0;
  std::size_t detected = 0;
  double latency_sum = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    if (good_cut[p]) ++t.false_negative;
    if (is_bad[p]) {
      ++bad_total;
      if (first_detect[p] >= 0.0) {
        ++detected;
        latency_sum += std::max(0.0, first_detect[p] - attack_start_minute);
      }
    }
  }
  t.false_positive = bad_total - detected;
  t.false_judgment = t.false_negative + t.false_positive;
  t.mean_detection_minute =
      detected > 0 ? latency_sum / static_cast<double>(detected) : -1.0;
  return t;
}

}  // namespace ddp::metrics
