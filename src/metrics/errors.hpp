#pragma once

/// \file errors.hpp
/// The three error metrics of Sec. 3.7.2, with the paper's (swapped)
/// naming kept deliberately:
///
///   * false negative — number of GOOD peers that were wrongly
///     disconnected at least once;
///   * false positive — number of BAD peers that were never identified
///     (no disconnect decision was ever taken against them);
///   * false judgment — the sum of the two.

#include <cstddef>
#include <vector>

#include "core/ddpolice.hpp"
#include "util/types.hpp"

namespace ddp::metrics {

struct ErrorTally {
  std::size_t false_negative = 0;  ///< good peers wrongly cut (paper naming)
  std::size_t false_positive = 0;  ///< bad peers never identified
  std::size_t false_judgment = 0;  ///< sum

  std::size_t good_cut_events = 0;  ///< individual wrong disconnects
  std::size_t bad_cut_events = 0;   ///< individual correct disconnects
  double mean_detection_minute = 0.0;  ///< first decision per detected agent
};

/// Tally decisions against ground truth. `is_bad[p]` marks compromised
/// peers; `attack_start_minute` anchors detection latency.
ErrorTally tally_errors(const std::vector<core::Decision>& decisions,
                        const std::vector<char>& is_bad,
                        double attack_start_minute);

}  // namespace ddp::metrics
