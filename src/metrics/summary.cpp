#include "metrics/summary.hpp"

namespace ddp::metrics {

RunSummary summarize(const std::vector<flow::MinuteReport>& history,
                     double from_minute) {
  RunSummary s;
  std::size_t n = 0;
  for (const auto& r : history) {
    if (r.minute < from_minute) continue;
    s.avg_traffic_per_minute += r.traffic_messages + r.overhead_messages;
    s.avg_attack_traffic += r.attack_messages;
    s.avg_overhead_per_minute += r.overhead_messages;
    s.avg_response_time += r.response_time;
    s.avg_success_rate += r.success_rate;
    s.avg_reach += r.reach_per_query;
    s.avg_drop_per_minute += r.dropped;
    s.avg_transport_lost += r.transport_lost;
    ++n;
  }
  if (n > 0) {
    const double d = static_cast<double>(n);
    s.avg_traffic_per_minute /= d;
    s.avg_attack_traffic /= d;
    s.avg_overhead_per_minute /= d;
    s.avg_response_time /= d;
    s.avg_success_rate /= d;
    s.avg_reach /= d;
    s.avg_drop_per_minute /= d;
    s.avg_transport_lost /= d;
    s.minutes_measured = d;
  }
  return s;
}

void attach_fault_stats(RunSummary& s, std::uint64_t timeouts,
                        std::uint64_t retries, std::uint64_t late_replies,
                        std::uint64_t corrupt_rejects, std::size_t crashed,
                        std::size_t stalled) {
  s.fault_timeouts = static_cast<double>(timeouts);
  s.fault_retries = static_cast<double>(retries);
  s.fault_late_replies = static_cast<double>(late_replies);
  s.fault_corrupt_rejects = static_cast<double>(corrupt_rejects);
  s.fault_crashed = static_cast<double>(crashed);
  s.fault_stalled = static_cast<double>(stalled);
}

}  // namespace ddp::metrics
