#include "metrics/summary.hpp"

namespace ddp::metrics {

RunSummary summarize(const std::vector<flow::MinuteReport>& history,
                     double from_minute) {
  RunSummary s;
  std::size_t n = 0;
  for (const auto& r : history) {
    if (r.minute < from_minute) continue;
    s.avg_traffic_per_minute += r.traffic_messages + r.overhead_messages;
    s.avg_attack_traffic += r.attack_messages;
    s.avg_overhead_per_minute += r.overhead_messages;
    s.avg_response_time += r.response_time;
    s.avg_success_rate += r.success_rate;
    s.avg_reach += r.reach_per_query;
    s.avg_drop_per_minute += r.dropped;
    ++n;
  }
  if (n > 0) {
    const double d = static_cast<double>(n);
    s.avg_traffic_per_minute /= d;
    s.avg_attack_traffic /= d;
    s.avg_overhead_per_minute /= d;
    s.avg_response_time /= d;
    s.avg_success_rate /= d;
    s.avg_reach /= d;
    s.avg_drop_per_minute /= d;
    s.minutes_measured = d;
  }
  return s;
}

}  // namespace ddp::metrics
