#pragma once

/// \file summary.hpp
/// Aggregation of per-minute engine reports into the quantities the
/// paper's figures plot: average traffic cost, average response time, and
/// average query success rate over a measurement window (Sec. 3.6).

#include <vector>

#include "flow/network.hpp"

namespace ddp::metrics {

struct RunSummary {
  double avg_traffic_per_minute = 0.0;   ///< query + protocol messages
  double avg_attack_traffic = 0.0;
  double avg_overhead_per_minute = 0.0;  ///< defense protocol messages only
  double avg_response_time = 0.0;        ///< seconds
  double avg_success_rate = 0.0;         ///< 0..1
  double avg_reach = 0.0;                ///< peers per good flood
  double avg_drop_per_minute = 0.0;
  double minutes_measured = 0.0;
};

/// Average the reports with minute >= from_minute (skipping warm-up).
RunSummary summarize(const std::vector<flow::MinuteReport>& history,
                     double from_minute);

}  // namespace ddp::metrics
