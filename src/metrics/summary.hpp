#pragma once

/// \file summary.hpp
/// Aggregation of per-minute engine reports into the quantities the
/// paper's figures plot: average traffic cost, average response time, and
/// average query success rate over a measurement window (Sec. 3.6).

#include <vector>

#include "flow/network.hpp"

namespace ddp::metrics {

struct RunSummary {
  double avg_traffic_per_minute = 0.0;   ///< query + protocol messages
  double avg_attack_traffic = 0.0;
  double avg_overhead_per_minute = 0.0;  ///< defense protocol messages only
  double avg_response_time = 0.0;        ///< seconds
  double avg_success_rate = 0.0;         ///< 0..1
  double avg_reach = 0.0;                ///< peers per good flood
  double avg_drop_per_minute = 0.0;
  double avg_transport_lost = 0.0;       ///< data-plane fault losses / minute
  double minutes_measured = 0.0;

  // Whole-run fault-injection tallies, attached post-run by the scenario
  // runner (all zero on a fault-free run). Doubles so downstream table /
  // CSV code handles them like every other column.
  double fault_timeouts = 0.0;        ///< control requests that gave up
  double fault_retries = 0.0;         ///< control re-sends
  double fault_late_replies = 0.0;    ///< replies past the collect timeout
  double fault_corrupt_rejects = 0.0; ///< undecodable / inconsistent replies
  double fault_crashed = 0.0;         ///< peers crash-stopped by injection
  double fault_stalled = 0.0;         ///< stall episodes injected
};

/// Copy control-plane fault counters into a summary (plain integers so the
/// metrics layer needs no dependency on src/fault types).
void attach_fault_stats(RunSummary& s, std::uint64_t timeouts,
                        std::uint64_t retries, std::uint64_t late_replies,
                        std::uint64_t corrupt_rejects, std::size_t crashed,
                        std::size_t stalled);

/// Average the reports with minute >= from_minute (skipping warm-up).
RunSummary summarize(const std::vector<flow::MinuteReport>& history,
                     double from_minute);

}  // namespace ddp::metrics
