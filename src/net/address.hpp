#pragma once

/// \file address.hpp
/// Deterministic PeerId <-> synthetic IPv4 mapping. The simulator identifies
/// peers by dense PeerId; the wire messages of Sec. 3.3 carry IPv4
/// addresses, so each simulated peer is assigned the address 10.x.y.z
/// derived from its id. The mapping is a bijection over the 10.0.0.0/8
/// block, which comfortably covers any simulated population.

#include <cstdint>

#include "util/types.hpp"

namespace ddp::net {

/// Synthetic address of a peer: 10.a.b.c with a/b/c from the id's bytes.
constexpr std::uint32_t peer_address(PeerId id) noexcept {
  return (10u << 24) | (id & 0x00ffffffu);
}

/// Inverse of peer_address(); returns kInvalidPeer for out-of-block inputs.
constexpr PeerId peer_from_address(std::uint32_t addr) noexcept {
  if ((addr >> 24) != 10u) return kInvalidPeer;
  return addr & 0x00ffffffu;
}

}  // namespace ddp::net
