#include "net/bytes.hpp"

#include <cassert>

namespace ddp::net {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::cstring(std::string_view s) {
  for (char c : s) buf_.push_back(static_cast<std::uint8_t>(c));
  buf_.push_back(0);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  assert(offset + 4 <= buf_.size());
  // Release builds strip the assert; refuse the out-of-bounds write rather
  // than scribbling past the buffer.
  if (offset > buf_.size() || buf_.size() - offset < 4) return;
  for (int i = 0; i < 4; ++i) {
    buf_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  }
}

bool ByteReader::ensure(std::size_t n) noexcept {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() noexcept {
  if (!ensure(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() noexcept {
  if (!ensure(2)) return 0;
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() noexcept {
  if (!ensure(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() noexcept {
  if (!ensure(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::vector<std::uint8_t> ByteReader::bytes(std::size_t n) {
  if (!ensure(n)) return {};
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::cstring() {
  if (!ok_) return {};
  std::size_t end = pos_;
  while (end < data_.size() && data_[end] != 0) ++end;
  if (end == data_.size()) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), end - pos_);
  pos_ = end + 1;
  return s;
}

std::string ipv4_to_string(std::uint32_t addr) {
  return std::to_string((addr >> 24) & 0xff) + "." +
         std::to_string((addr >> 16) & 0xff) + "." +
         std::to_string((addr >> 8) & 0xff) + "." + std::to_string(addr & 0xff);
}

}  // namespace ddp::net
