#pragma once

/// \file bytes.hpp
/// Bounds-checked binary serialization primitives for the Gnutella-style
/// wire substrate. Gnutella 0.6 encodes multi-byte integers little-endian;
/// these helpers encode explicitly byte-by-byte so the layout is identical
/// on any host.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ddp::net {

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);
  /// Write the characters of `s` followed by a NUL terminator (Gnutella
  /// query strings are C-strings on the wire).
  void cstring(std::string_view s);

  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

  /// Overwrite a previously written u32 at `offset` (used to back-patch the
  /// header's payload-length field after the payload is encoded).
  void patch_u32(std::size_t offset, std::uint32_t v);

 private:
  std::vector<std::uint8_t> buf_;
};

/// Non-owning bounds-checked little-endian decoder. All reads either
/// succeed completely or set the failure flag and return zero values; after
/// any failure every subsequent read also fails, so callers may decode a
/// whole struct and check ok() once.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  std::uint8_t u8() noexcept;
  std::uint16_t u16() noexcept;
  std::uint32_t u32() noexcept;
  std::uint64_t u64() noexcept;
  /// Copy exactly n bytes; returns empty vector (and fails) if short.
  std::vector<std::uint8_t> bytes(std::size_t n);
  /// Read up to the next NUL (consuming it). Fails if no NUL remains.
  std::string cstring();

  bool ok() const noexcept { return ok_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }
  /// True when the reader succeeded AND consumed the whole buffer.
  bool exhausted() const noexcept { return ok_ && pos_ == data_.size(); }

 private:
  bool ensure(std::size_t n) noexcept;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Dotted-quad rendering of a host-order IPv4 address (diagnostics only; the
/// simulator identifies peers by PeerId and synthesizes addresses from it).
std::string ipv4_to_string(std::uint32_t addr);

}  // namespace ddp::net
