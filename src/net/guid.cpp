#include "net/guid.hpp"

namespace ddp::net {

Guid Guid::random(util::Rng& rng) {
  Guid g;
  for (std::size_t i = 0; i < 16; i += 4) {
    const std::uint32_t word = rng.next_u32();
    g.bytes[i] = static_cast<std::uint8_t>(word & 0xff);
    g.bytes[i + 1] = static_cast<std::uint8_t>((word >> 8) & 0xff);
    g.bytes[i + 2] = static_cast<std::uint8_t>((word >> 16) & 0xff);
    g.bytes[i + 3] = static_cast<std::uint8_t>((word >> 24) & 0xff);
  }
  g.bytes[8] = 0xff;
  g.bytes[15] = 0x00;
  return g;
}

std::string Guid::to_string() const {
  static const char* hex = "0123456789abcdef";
  std::string s;
  s.reserve(32);
  for (std::uint8_t b : bytes) {
    s.push_back(hex[b >> 4]);
    s.push_back(hex[b & 0xf]);
  }
  return s;
}

std::size_t GuidHash::operator()(const Guid& g) const noexcept {
  // FNV-1a over the 16 bytes; GUIDs are random so this is plenty.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : g.bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace ddp::net
