#pragma once

/// \file guid.hpp
/// 16-byte Gnutella message GUID. Every descriptor carries one; duplicate
/// suppression in the flooding search keys on it (Gnutella 0.6 Sec. 2.2.1,
/// cited as [15] in the paper).

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "util/rng.hpp"

namespace ddp::net {

struct Guid {
  std::array<std::uint8_t, 16> bytes{};

  auto operator<=>(const Guid&) const = default;

  /// Draw a fresh GUID from the given generator. Matches LimeWire's
  /// convention of fixing byte 8 to 0xff and byte 15 to 0x00 to mark
  /// "modern" servents.
  static Guid random(util::Rng& rng);

  /// Hex rendering for diagnostics.
  std::string to_string() const;
};

struct GuidHash {
  std::size_t operator()(const Guid& g) const noexcept;
};

}  // namespace ddp::net
