#include "net/message.hpp"

#include <limits>

namespace ddp::net {

namespace {

void set_error(std::string* error, std::string_view what) {
  if (error != nullptr) *error = std::string(what);
}

void encode_payload(const Ping&, ByteWriter&) {}

void encode_payload(const Pong& p, ByteWriter& w) {
  w.u16(p.port);
  w.u32(p.ip);
  w.u32(p.files_shared);
  w.u32(p.kilobytes_shared);
}

void encode_payload(const Query& q, ByteWriter& w) {
  w.u16(q.min_speed);
  w.cstring(q.search);
}

void encode_payload(const QueryHit& qh, ByteWriter& w) {
  w.u8(static_cast<std::uint8_t>(qh.records.size()));
  w.u16(qh.port);
  w.u32(qh.ip);
  w.u32(qh.speed);
  for (const auto& r : qh.records) {
    w.u32(r.file_index);
    w.u32(r.file_size);
    w.cstring(r.file_name);
    w.u8(0);  // extensions block terminator (double-NUL convention)
  }
  w.bytes(std::span<const std::uint8_t>(qh.servent_id.bytes.data(), 16));
}

void encode_payload(const NeighborTraffic& nt, ByteWriter& w) {
  w.u32(nt.source_ip);
  w.u32(nt.suspect_ip);
  w.u32(nt.timestamp);
  w.u32(nt.outgoing_queries);
  w.u32(nt.incoming_queries);
}

void encode_payload(const NeighborList& nl, ByteWriter& w) {
  w.u16(static_cast<std::uint16_t>(nl.entries.size()));
  for (const auto& e : nl.entries) {
    w.u32(e.ip);
    w.u16(e.port);
  }
}

std::optional<Payload> decode_payload(PayloadType type, ByteReader& r,
                                      std::string* error) {
  switch (type) {
    case PayloadType::kPing: {
      if (r.remaining() != 0) {
        set_error(error, "ping with non-empty body");
        return std::nullopt;
      }
      return Payload{Ping{}};
    }
    case PayloadType::kPong: {
      Pong p;
      p.port = r.u16();
      p.ip = r.u32();
      p.files_shared = r.u32();
      p.kilobytes_shared = r.u32();
      if (!r.exhausted()) {
        set_error(error, "malformed pong body");
        return std::nullopt;
      }
      return Payload{p};
    }
    case PayloadType::kQuery: {
      Query q;
      q.min_speed = r.u16();
      q.search = r.cstring();
      if (!r.exhausted()) {
        set_error(error, "malformed query body");
        return std::nullopt;
      }
      return Payload{std::move(q)};
    }
    case PayloadType::kQueryHit: {
      QueryHit qh;
      const std::uint8_t n = r.u8();
      qh.port = r.u16();
      qh.ip = r.u32();
      qh.speed = r.u32();
      for (std::uint8_t i = 0; i < n; ++i) {
        QueryHitRecord rec;
        rec.file_index = r.u32();
        rec.file_size = r.u32();
        rec.file_name = r.cstring();
        (void)r.u8();  // extensions terminator
        if (!r.ok()) break;
        qh.records.push_back(std::move(rec));
      }
      const auto id = r.bytes(16);
      if (!r.exhausted() || id.size() != 16) {
        set_error(error, "malformed query-hit body");
        return std::nullopt;
      }
      std::copy(id.begin(), id.end(), qh.servent_id.bytes.begin());
      return Payload{std::move(qh)};
    }
    case PayloadType::kNeighborTraffic: {
      NeighborTraffic nt;
      nt.source_ip = r.u32();
      nt.suspect_ip = r.u32();
      nt.timestamp = r.u32();
      nt.outgoing_queries = r.u32();
      nt.incoming_queries = r.u32();
      if (!r.exhausted()) {
        set_error(error, "neighbor-traffic body must be exactly 20 bytes");
        return std::nullopt;
      }
      return Payload{nt};
    }
    case PayloadType::kNeighborList: {
      NeighborList nl;
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n; ++i) {
        NeighborList::Entry e;
        e.ip = r.u32();
        e.port = r.u16();
        if (!r.ok()) break;
        nl.entries.push_back(e);
      }
      if (!r.exhausted()) {
        set_error(error, "malformed neighbor-list body");
        return std::nullopt;
      }
      return Payload{std::move(nl)};
    }
  }
  set_error(error, "unknown payload type");
  return std::nullopt;
}

}  // namespace

std::string_view payload_type_name(PayloadType t) noexcept {
  switch (t) {
    case PayloadType::kPing: return "Ping";
    case PayloadType::kPong: return "Pong";
    case PayloadType::kQuery: return "Query";
    case PayloadType::kQueryHit: return "QueryHit";
    case PayloadType::kNeighborTraffic: return "Neighbor_Traffic";
    case PayloadType::kNeighborList: return "Neighbor_List";
  }
  return "?";
}

PayloadType Message::type() const noexcept {
  return std::visit(
      [](const auto& p) -> PayloadType {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, Ping>) return PayloadType::kPing;
        else if constexpr (std::is_same_v<T, Pong>) return PayloadType::kPong;
        else if constexpr (std::is_same_v<T, Query>) return PayloadType::kQuery;
        else if constexpr (std::is_same_v<T, QueryHit>) return PayloadType::kQueryHit;
        else if constexpr (std::is_same_v<T, NeighborTraffic>)
          return PayloadType::kNeighborTraffic;
        else
          return PayloadType::kNeighborList;
      },
      payload);
}

std::vector<std::uint8_t> encode(const Message& msg) {
  ByteWriter w;
  w.bytes(std::span<const std::uint8_t>(msg.header.guid.bytes.data(), 16));
  w.u8(static_cast<std::uint8_t>(msg.type()));
  w.u8(msg.header.ttl);
  w.u8(msg.header.hops);
  const std::size_t len_offset = w.size();
  w.u32(0);  // payload length, back-patched below
  const std::size_t body_start = w.size();
  std::visit([&w](const auto& p) { encode_payload(p, w); }, msg.payload);
  w.patch_u32(len_offset, static_cast<std::uint32_t>(w.size() - body_start));
  return w.take();
}

std::string_view decode_status_name(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kShortHeader: return "short-header";
    case DecodeStatus::kUnknownType: return "unknown-type";
    case DecodeStatus::kOversizedPayload: return "oversized-payload";
    case DecodeStatus::kTruncatedPayload: return "truncated-payload";
    case DecodeStatus::kMalformedBody: return "malformed-body";
  }
  return "?";
}

DecodeResult decode_ex(std::span<const std::uint8_t> data) {
  DecodeResult res;
  if (data.size() < kHeaderSize) {
    res.status = DecodeStatus::kShortHeader;
    res.detail = "short header";
    return res;
  }
  Message msg;
  ByteReader hr(data.first(kHeaderSize));
  const auto guid_bytes = hr.bytes(16);
  std::copy(guid_bytes.begin(), guid_bytes.end(), msg.header.guid.bytes.begin());
  const std::uint8_t raw_type = hr.u8();
  msg.header.ttl = hr.u8();
  msg.header.hops = hr.u8();
  msg.header.payload_length = hr.u32();

  switch (raw_type) {
    case 0x00: case 0x01: case 0x80: case 0x81: case 0x83: case 0x84:
      msg.header.type = static_cast<PayloadType>(raw_type);
      break;
    default:
      res.status = DecodeStatus::kUnknownType;
      res.detail = "unknown payload type byte";
      return res;
  }
  // Length sanity before any body work: a corrupted length field must not
  // be able to drive downstream allocation or scanning.
  if (msg.header.payload_length > kMaxPayloadLength) {
    res.status = DecodeStatus::kOversizedPayload;
    res.detail = "declared payload length exceeds cap";
    return res;
  }
  if (data.size() - kHeaderSize < msg.header.payload_length) {
    res.status = DecodeStatus::kTruncatedPayload;
    res.detail = "payload truncated";
    return res;
  }
  ByteReader br(data.subspan(kHeaderSize, msg.header.payload_length));
  auto payload = decode_payload(msg.header.type, br, &res.detail);
  if (!payload) {
    res.status = DecodeStatus::kMalformedBody;
    return res;
  }
  msg.payload = std::move(*payload);
  res.consumed = kHeaderSize + msg.header.payload_length;
  res.message = std::move(msg);
  return res;
}

std::optional<Message> decode(std::span<const std::uint8_t> data,
                              std::string* error, std::size_t* consumed) {
  DecodeResult res = decode_ex(data);
  if (!res.message) {
    set_error(error, res.detail);
    return std::nullopt;
  }
  if (consumed != nullptr) *consumed = res.consumed;
  return std::move(res.message);
}

std::vector<std::uint8_t> encode_neighbor_traffic_body(const NeighborTraffic& nt) {
  ByteWriter w;
  encode_payload(nt, w);
  return w.take();
}

std::optional<NeighborTraffic> decode_neighbor_traffic_body(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  NeighborTraffic nt;
  nt.source_ip = r.u32();
  nt.suspect_ip = r.u32();
  nt.timestamp = r.u32();
  nt.outgoing_queries = r.u32();
  nt.incoming_queries = r.u32();
  if (!r.exhausted()) return std::nullopt;
  return nt;
}

}  // namespace ddp::net
