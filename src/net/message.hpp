#pragma once

/// \file message.hpp
/// Gnutella 0.6 message formats plus the paper's protocol extension.
///
/// Every message starts with the unified 23-byte descriptor header
/// (Gnutella protocol specification 0.6, the paper's [15]):
///
///   offset  0..15  Descriptor ID (GUID)
///   offset  16     Payload type
///   offset  17     TTL
///   offset  18     Hops
///   offset  19..22 Payload length (little-endian u32)
///
/// Payload types implemented here:
///   0x00 Ping, 0x01 Pong, 0x80 Query, 0x81 QueryHit  — the search substrate
///   0x83 Neighbor_Traffic                            — DD-POLICE, Table 1
///   0x84 Neighbor_List                               — DD-POLICE, Sec. 3.1
///
/// Table 1 of the paper defines the Neighbor_Traffic body exactly:
///
///   byte offset 0..3    Source IP address
///   byte offset 4..7    Suspect IP address
///   byte offset 8..11   Source timestamp (seconds, wrapping u32)
///   byte offset 12..15  # of outgoing queries (source -> suspect, past minute)
///   byte offset 16..19  # of incoming queries (suspect -> source, past minute)

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "net/bytes.hpp"
#include "net/guid.hpp"

namespace ddp::net {

enum class PayloadType : std::uint8_t {
  kPing = 0x00,
  kPong = 0x01,
  kQuery = 0x80,
  kQueryHit = 0x81,
  kNeighborTraffic = 0x83,  ///< the paper's new message (Sec. 3.3)
  kNeighborList = 0x84,     ///< neighbour-list exchange (Sec. 3.1)
};

/// Human-readable payload-type name for diagnostics.
std::string_view payload_type_name(PayloadType t) noexcept;

inline constexpr std::size_t kHeaderSize = 23;
inline constexpr std::size_t kNeighborTrafficBodySize = 20;

struct Header {
  Guid guid{};
  PayloadType type = PayloadType::kPing;
  std::uint8_t ttl = 7;
  std::uint8_t hops = 0;
  std::uint32_t payload_length = 0;
};

struct Ping {};  // empty body

struct Pong {
  std::uint16_t port = 6346;
  std::uint32_t ip = 0;
  std::uint32_t files_shared = 0;
  std::uint32_t kilobytes_shared = 0;
};

struct Query {
  std::uint16_t min_speed = 0;  ///< minimum speed in kB/s the responder must have
  std::string search;           ///< NUL-terminated search criteria on the wire
};

/// One result record inside a QueryHit result set.
struct QueryHitRecord {
  std::uint32_t file_index = 0;
  std::uint32_t file_size = 0;
  std::string file_name;  ///< double-NUL terminated on the wire
};

struct QueryHit {
  std::uint16_t port = 6346;
  std::uint32_t ip = 0;
  std::uint32_t speed = 0;  ///< kB/s
  std::vector<QueryHitRecord> records;
  Guid servent_id{};  ///< responding servent, trails the payload
};

/// The paper's Table 1 message body. All counter fields are per-minute
/// counts as maintained by the Out_query / In_query monitors of Sec. 3.2.
struct NeighborTraffic {
  std::uint32_t source_ip = 0;
  std::uint32_t suspect_ip = 0;
  std::uint32_t timestamp = 0;
  std::uint32_t outgoing_queries = 0;  ///< source -> suspect, past minute
  std::uint32_t incoming_queries = 0;  ///< suspect -> source, past minute
};

/// Periodic neighbour-list advertisement (Sec. 3.1). Entries are
/// (IPv4, port) pairs like Gnutella host caches use.
struct NeighborList {
  struct Entry {
    std::uint32_t ip = 0;
    std::uint16_t port = 6346;
    bool operator==(const Entry&) const = default;
  };
  std::vector<Entry> entries;
};

using Payload = std::variant<Ping, Pong, Query, QueryHit, NeighborTraffic, NeighborList>;

/// A complete descriptor: header + typed payload. The header's type and
/// payload_length fields are derived during encoding; decoders verify them.
struct Message {
  Header header;
  Payload payload;

  PayloadType type() const noexcept;
};

/// Serialize a full message (header + payload). The header's payload_length
/// and type are overwritten to match the actual payload.
std::vector<std::uint8_t> encode(const Message& msg);

/// Parse one complete message from `data`. Returns std::nullopt on any
/// framing or bounds error; `error` (if non-null) receives a description.
/// On success exactly header.payload_length + 23 bytes were consumed;
/// `consumed` (if non-null) receives that count so streams can be walked.
std::optional<Message> decode(std::span<const std::uint8_t> data,
                              std::string* error = nullptr,
                              std::size_t* consumed = nullptr);

/// Structured decode outcome: why a buffer was rejected, machine-readably.
/// The categories mirror the order in which decode() validates, so a fuzzer
/// (tests/net_fuzz_test.cpp) can classify every mutation's fate.
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kShortHeader,       ///< fewer than the 23 header bytes
  kUnknownType,       ///< payload-type byte outside the implemented set
  kOversizedPayload,  ///< declared length exceeds kMaxPayloadLength
  kTruncatedPayload,  ///< declared length exceeds the bytes present
  kMalformedBody,     ///< typed body failed bounds or shape validation
};

std::string_view decode_status_name(DecodeStatus s) noexcept;

/// Framing cap on the declared payload length: no message this substrate
/// produces comes near 1 MiB, and rejecting the length field before any
/// body work means a flipped high bit cannot drive allocation or scanning.
inline constexpr std::size_t kMaxPayloadLength = 1u << 20;

struct DecodeResult {
  std::optional<Message> message;  ///< engaged iff status == kOk
  DecodeStatus status = DecodeStatus::kOk;
  std::string detail;              ///< human-readable reason when rejected
  std::size_t consumed = 0;        ///< bytes consumed on success, else 0
  explicit operator bool() const noexcept { return message.has_value(); }
};

/// Like decode(), but reports the rejection category. decode() is
/// implemented on top of this and preserves its historical error strings.
DecodeResult decode_ex(std::span<const std::uint8_t> data);

/// Encode only the Neighbor_Traffic body (Table 1 layout, 20 bytes) —
/// exposed separately so tests can assert the exact byte offsets.
std::vector<std::uint8_t> encode_neighbor_traffic_body(const NeighborTraffic& nt);
std::optional<NeighborTraffic> decode_neighbor_traffic_body(
    std::span<const std::uint8_t> body);

}  // namespace ddp::net
