#include "net/stream.hpp"

namespace ddp::net {

std::string_view stream_status_name(StreamStatus s) noexcept {
  switch (s) {
    case StreamStatus::kMessage: return "message";
    case StreamStatus::kNeedMore: return "need-more";
    case StreamStatus::kError: return "error";
  }
  return "?";
}

void StreamDecoder::feed(std::span<const std::uint8_t> data) {
  if (failed_ || data.empty()) return;
  compact();
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void StreamDecoder::compact() {
  // Drop the consumed prefix before growing the buffer; amortised O(1)
  // because each byte is moved at most once after being decoded.
  if (read_ == 0) return;
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(read_));
  read_ = 0;
}

StreamResult StreamDecoder::next() {
  StreamResult res;
  if (failed_) {
    res.status = StreamStatus::kError;
    res.error = fail_status_;
    res.detail = fail_detail_;
    return res;
  }
  const std::span<const std::uint8_t> pending(buf_.data() + read_,
                                              buf_.size() - read_);
  DecodeResult dr = decode_ex(pending);
  switch (dr.status) {
    case DecodeStatus::kOk:
      read_ += dr.consumed;
      if (buffered() == 0) compact();
      ++decoded_;
      res.status = StreamStatus::kMessage;
      res.message = std::move(dr.message);
      return res;
    case DecodeStatus::kShortHeader:
    case DecodeStatus::kTruncatedPayload:
      // Framing intact, frame incomplete. decode_ex validates the type
      // byte and the declared length before reporting truncation, so a
      // frame we wait on is one that can actually complete — unless the
      // caller wedged the buffer past its cap, which cannot resolve.
      if (buffered() > max_buffered_) {
        failed_ = true;
        fail_status_ = DecodeStatus::kOversizedPayload;
        fail_detail_ = "buffered bytes exceed decoder cap";
        res.status = StreamStatus::kError;
        res.error = fail_status_;
        res.detail = fail_detail_;
        return res;
      }
      res.status = StreamStatus::kNeedMore;
      return res;
    case DecodeStatus::kUnknownType:
    case DecodeStatus::kOversizedPayload:
    case DecodeStatus::kMalformedBody:
      // No resync marker exists in the wire format: once a frame is bad,
      // every later byte offset is guesswork. Latch the failure.
      failed_ = true;
      fail_status_ = dr.status;
      fail_detail_ = std::move(dr.detail);
      res.status = StreamStatus::kError;
      res.error = fail_status_;
      res.detail = fail_detail_;
      return res;
  }
  res.status = StreamStatus::kError;
  res.error = dr.status;
  return res;
}

}  // namespace ddp::net
