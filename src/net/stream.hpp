#pragma once

/// \file stream.hpp
/// Incremental Gnutella framing for byte-stream transports.
///
/// decode_ex() wants one complete message in a contiguous span — fine for
/// the packet engine, where delivery is message-granular, but TCP hands the
/// socket engine arbitrary read boundaries: half a header now, three
/// messages and a fragment later. StreamDecoder sits between recv() and
/// decode_ex(): bytes go in via feed(), framed messages come out of next(),
/// and "the rest hasn't arrived yet" is a first-class kNeedMore status
/// rather than an error.
///
/// Contract (tested in tests/net_stream_test.cpp): for any byte sequence
/// and any partition of it into feed() calls — including one byte at a
/// time — the sequence of messages produced by next() is identical to
/// decoding the whole buffer in one shot.
///
/// Validation is front-loaded exactly like decode_ex: once the 23 header
/// bytes are present, an unknown type byte or an oversized declared length
/// fails immediately — a peer cannot park a poisoned header in the buffer
/// and keep the connection wedged waiting for a payload that will never
/// fit. Errors are sticky: after kError the framing is unrecoverable
/// (there is no resync marker in the wire format), so the owner must drop
/// the connection.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace ddp::net {

enum class StreamStatus : std::uint8_t {
  kMessage,   ///< one complete message decoded; call next() again
  kNeedMore,  ///< buffered bytes form no complete message yet
  kError,     ///< framing broken (see status/detail); connection is dead
};

std::string_view stream_status_name(StreamStatus s) noexcept;

struct StreamResult {
  StreamStatus status = StreamStatus::kNeedMore;
  std::optional<Message> message;           ///< engaged iff kMessage
  DecodeStatus error = DecodeStatus::kOk;   ///< category when kError
  std::string detail;                       ///< human-readable when kError
  explicit operator bool() const noexcept { return message.has_value(); }
};

class StreamDecoder {
 public:
  /// `max_buffered` caps the bytes held across next() calls; the default
  /// admits the largest legal frame. Exceeding it (only possible by
  /// feeding past a complete frame without draining) is a usage error
  /// surfaced as kOversizedPayload.
  explicit StreamDecoder(
      std::size_t max_buffered = kHeaderSize + kMaxPayloadLength) noexcept
      : max_buffered_(max_buffered) {}

  /// Append raw transport bytes. Accepts any partition of the stream,
  /// including empty spans.
  void feed(std::span<const std::uint8_t> data);

  /// Try to frame and decode the next message from the buffered bytes.
  /// Call in a loop after each feed() until it returns kNeedMore.
  StreamResult next();

  /// Bytes currently buffered and not yet consumed by a decoded message.
  std::size_t buffered() const noexcept { return buf_.size() - read_; }

  /// True once any next() returned kError; all further next() calls
  /// repeat the error.
  bool failed() const noexcept { return failed_; }

  /// Number of complete messages decoded over the decoder's lifetime.
  std::uint64_t messages_decoded() const noexcept { return decoded_; }

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t read_ = 0;  ///< consumed prefix of buf_
  std::size_t max_buffered_;
  bool failed_ = false;
  DecodeStatus fail_status_ = DecodeStatus::kOk;
  std::string fail_detail_;
  std::uint64_t decoded_ = 0;
};

}  // namespace ddp::net
