#include "netengine/engine.hpp"

#include <sys/signalfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>

namespace ddp::netengine {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string_view close_reason_name(CloseReason r) noexcept {
  switch (r) {
    case CloseReason::kLocal: return "local";
    case CloseReason::kPeerClosed: return "peer-closed";
    case CloseReason::kError: return "error";
    case CloseReason::kBadFrame: return "bad-frame";
    case CloseReason::kSlowPeer: return "slow-peer";
    case CloseReason::kHandshakeTimeout: return "handshake-timeout";
  }
  return "?";
}

Engine::Engine(const EngineConfig& config)
    : config_(config),
      timers_(config.tick_ms),
      start_ms_(steady_ms()) {
  if (config_.handshake_timeout_ms > 0) {
    timers_.schedule_every(config_.sweep_period_ms,
                           [this] { sweep_half_open(); });
  }
}

Engine::~Engine() = default;

std::uint64_t Engine::now_ms() const { return steady_ms() - start_ms_; }

bool Engine::listen() {
  listener_ = make_listener(config_.listen_port);
  if (!listener_) return false;
  listen_port_ = bound_port(listener_);
  return poller_.add(listener_.get(), /*want_read=*/true, /*want_write=*/false);
}

bool Engine::install_signal_handlers() {
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  if (sigprocmask(SIG_BLOCK, &mask, nullptr) != 0) return false;
  signal_fd_ = Fd(::signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC));
  if (!signal_fd_) return false;
  return poller_.add(signal_fd_.get(), /*want_read=*/true,
                     /*want_write=*/false);
}

ConnId Engine::connect(const std::string& host, std::uint16_t port) {
  Fd fd = connect_nonblocking(host, port);
  if (!fd) return kInvalidConn;
  const ConnId id = next_id_++;
  Conn conn;
  conn.id = id;
  conn.connecting = true;
  conn.opened_ms = now_ms();
  const int raw = fd.get();
  conn.fd = std::move(fd);
  if (!poller_.add(raw, /*want_read=*/false, /*want_write=*/true)) {
    return kInvalidConn;
  }
  by_fd_[raw] = id;
  conns_.emplace(id, std::move(conn));
  return id;
}

Engine::Conn* Engine::conn_by_fd(int fd) {
  const auto it = by_fd_.find(fd);
  if (it == by_fd_.end()) return nullptr;
  const auto cit = conns_.find(it->second);
  return cit == conns_.end() ? nullptr : &cit->second;
}

std::size_t Engine::write_queue_bytes(ConnId id) const {
  const auto it = conns_.find(id);
  return it == conns_.end() ? 0 : it->second.queued_bytes;
}

void Engine::close_conn(ConnId id, CloseReason reason) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  poller_.remove(it->second.fd.get());
  by_fd_.erase(it->second.fd.get());
  conns_.erase(it);  // Fd destructor closes the socket
  if (handler_.on_close) handler_.on_close(id, reason);
}

void Engine::update_interest(Conn& conn) {
  poller_.modify(conn.fd.get(), /*want_read=*/true,
                 /*want_write=*/!conn.write_queue.empty());
}

bool Engine::send(ConnId id, const net::Message& msg) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return false;
  Conn& conn = it->second;
  std::vector<std::uint8_t> wire = net::encode(msg);
  conn.queued_bytes += wire.size();
  conn.write_queue.push_back(std::move(wire));
  ++messages_out_;
  if (conn.queued_bytes > config_.max_write_queue) {
    // Backpressure by eviction: the peer is not draining its socket and
    // the flood must not pile up in our memory instead of its.
    close_conn(id, CloseReason::kSlowPeer);
    return false;
  }
  if (!conn.connecting) {
    if (!flush_writes(conn)) return false;  // connection died writing
    const auto again = conns_.find(id);
    if (again == conns_.end()) return false;
    update_interest(again->second);
  }
  return true;
}

/// Returns false when the connection was closed by a write error.
bool Engine::flush_writes(Conn& conn) {
  while (!conn.write_queue.empty()) {
    const std::vector<std::uint8_t>& front = conn.write_queue.front();
    const std::size_t len = front.size() - conn.write_off;
    const ssize_t n =
        ::send(conn.fd.get(), front.data() + conn.write_off, len,
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      close_conn(conn.id, CloseReason::kError);
      return false;
    }
    bytes_out_ += static_cast<std::uint64_t>(n);
    conn.write_off += static_cast<std::size_t>(n);
    conn.queued_bytes -= static_cast<std::size_t>(n);
    if (conn.write_off == front.size()) {
      conn.write_queue.pop_front();
      conn.write_off = 0;
    } else {
      return true;  // kernel buffer full mid-chunk
    }
  }
  return true;
}

void Engine::handle_accept() {
  for (;;) {
    bool fatal = false;
    std::optional<Fd> fd = accept_connection(listener_, &fatal);
    if (!fd) {
      if (fatal) {
        poller_.remove(listener_.get());
        listener_.reset();
      }
      return;
    }
    set_nodelay(*fd);
    const ConnId id = next_id_++;
    Conn conn;
    conn.id = id;
    conn.opened_ms = now_ms();
    const int raw = fd->get();
    conn.fd = std::move(*fd);
    if (!poller_.add(raw, /*want_read=*/true, /*want_write=*/false)) continue;
    by_fd_[raw] = id;
    conns_.emplace(id, std::move(conn));
    ++accepted_;
    if (handler_.on_accept) handler_.on_accept(id);
  }
}

void Engine::resolve_connect(Conn& conn) {
  const ConnId id = conn.id;
  const int err = connect_result(conn.fd);
  if (err != 0) {
    poller_.remove(conn.fd.get());
    by_fd_.erase(conn.fd.get());
    conns_.erase(id);
    if (handler_.on_connect) handler_.on_connect(id, false);
    return;
  }
  conn.connecting = false;
  set_nodelay(conn.fd);
  update_interest(conn);
  if (handler_.on_connect) handler_.on_connect(id, true);
}

void Engine::handle_readable(Conn& first) {
  const ConnId id = first.id;
  for (;;) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;  // a callback closed us mid-drain
    Conn& conn = it->second;
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (n == 0) {
      close_conn(id, CloseReason::kPeerClosed);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_conn(id, CloseReason::kError);
      return;
    }
    bytes_in_ += static_cast<std::uint64_t>(n);
    conn.decoder.feed(
        std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    for (;;) {
      auto again = conns_.find(id);
      if (again == conns_.end()) return;
      net::StreamResult r = again->second.decoder.next();
      if (r.status == net::StreamStatus::kNeedMore) break;
      if (r.status == net::StreamStatus::kError) {
        close_conn(id, CloseReason::kBadFrame);
        return;
      }
      again->second.saw_message = true;
      ++messages_in_;
      if (handler_.on_message) handler_.on_message(id, *r.message);
    }
  }
}

void Engine::handle_writable(Conn& conn) {
  const ConnId id = conn.id;
  if (!flush_writes(conn)) return;
  const auto it = conns_.find(id);
  if (it != conns_.end()) update_interest(it->second);
}

void Engine::sweep_half_open() {
  const std::uint64_t now = now_ms();
  std::vector<ConnId> overdue;
  for (const auto& [id, conn] : conns_) {
    if (!conn.saw_message &&
        now - conn.opened_ms > config_.handshake_timeout_ms) {
      overdue.push_back(id);
    }
  }
  for (const ConnId id : overdue) {
    close_conn(id, CloseReason::kHandshakeTimeout);
  }
}

bool Engine::poll_once(int timeout_ms) {
  if (stopped_) return false;
  int timeout = timeout_ms;
  const int timer_delay = timers_.next_delay_ms();
  if (timer_delay >= 0 && (timeout < 0 || timer_delay < timeout)) {
    timeout = timer_delay;
  }
  if (!poller_.wait(timeout, events_)) {
    stopped_ = true;
    return false;
  }
  for (const PollEvent& ev : events_) {
    if (listener_.valid() && ev.fd == listener_.get()) {
      handle_accept();
      continue;
    }
    if (signal_fd_.valid() && ev.fd == signal_fd_.get()) {
      signalfd_siginfo info;
      while (::read(signal_fd_.get(), &info, sizeof(info)) ==
             static_cast<ssize_t>(sizeof(info))) {
      }
      stopped_ = true;
      continue;
    }
    Conn* conn = conn_by_fd(ev.fd);
    if (conn == nullptr) continue;  // closed earlier in this batch
    if (conn->connecting) {
      if (ev.writable || ev.error) resolve_connect(*conn);
      continue;
    }
    if (ev.error) {
      close_conn(conn->id, CloseReason::kError);
      continue;
    }
    if (ev.readable) {
      const ConnId id = conn->id;
      handle_readable(*conn);
      conn = conn_by_fd(ev.fd);
      if (conn == nullptr || conn->id != id) continue;
    }
    if (ev.writable) handle_writable(*conn);
  }
  timers_.advance(now_ms());
  return !stopped_;
}

void Engine::run() {
  while (poll_once(50)) {
  }
}

}  // namespace ddp::netengine
