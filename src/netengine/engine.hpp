#pragma once

/// \file engine.hpp
/// The socket engine: a single-threaded epoll event loop carrying framed
/// Gnutella messages over real TCP connections.
///
/// This is the deployment-side counterpart of the simulation engines. It
/// implements everything below the overlay protocol and nothing above it:
///
///   - nonblocking listen / accept / connect on loopback TCP;
///   - per-connection incremental framing (net::StreamDecoder), so
///     messages are reassembled across arbitrary read boundaries;
///   - per-connection bounded write queues: a peer that cannot drain its
///     queue (slow reader) is disconnected rather than allowed to grow
///     the queue without bound — backpressure by eviction, which is the
///     only kind a flooding defense can afford (blocking the loop on one
///     peer would let that peer DoS the engine);
///   - a timer wheel driving the owner's cadences (the DD-POLICE minute,
///     the police tick, issue pacing, half-open timeouts);
///   - half-open sweep: a connection that has not produced a single
///     complete message within the handshake window is dropped;
///   - SIGTERM/SIGINT via signalfd: the loop wakes, stops, and the owner
///     runs an orderly shutdown (flush stats, close every fd) — no
///     handler-context trickery, no leaked descriptors.
///
/// Ownership: the engine owns fds and buffers; protocol state (who a
/// connection is, what the messages mean) lives in the owner (node.hpp)
/// behind the Handler callbacks. Connections are identified by an opaque
/// 64-bit id that is never reused within a run.
///
/// Determinism for tests: poll_once() runs exactly one poll/dispatch
/// round, so loopback tests can single-step two engines in one thread
/// without races or background threads.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "net/stream.hpp"
#include "netengine/poller.hpp"
#include "netengine/socket.hpp"
#include "netengine/timer_wheel.hpp"

namespace ddp::netengine {

using ConnId = std::uint64_t;
inline constexpr ConnId kInvalidConn = 0;

enum class CloseReason : std::uint8_t {
  kLocal,          ///< closed by the owner (cut verdict, shutdown)
  kPeerClosed,     ///< orderly EOF from the peer
  kError,          ///< socket error (reset, refused, poll error)
  kBadFrame,       ///< stream decoder latched a framing error
  kSlowPeer,       ///< write queue exceeded the backpressure bound
  kHandshakeTimeout,  ///< no complete message within the half-open window
};

std::string_view close_reason_name(CloseReason r) noexcept;

struct EngineConfig {
  std::uint16_t listen_port = 0;  ///< 0 = kernel-assigned (read back)
  /// Backpressure bound per connection, bytes. A queue pushed past this
  /// closes the connection with kSlowPeer.
  std::size_t max_write_queue = 1u << 20;
  /// Half-open window, ms: a connection (either direction) must deliver
  /// one complete message within this or be dropped. 0 disables.
  std::uint64_t handshake_timeout_ms = 5000;
  /// Timer wheel resolution.
  std::uint64_t tick_ms = 10;
  /// Milliseconds between half-open sweeps.
  std::uint64_t sweep_period_ms = 250;
};

/// Owner-side callbacks. All fire from inside poll_once(), on its thread.
struct EngineHandler {
  /// Inbound connection accepted (transport-level; the peer is unknown
  /// until it introduces itself in-protocol).
  std::function<void(ConnId)> on_accept;
  /// Outbound connect resolved. `ok` false means refused/failed; the
  /// connection is already gone when false.
  std::function<void(ConnId, bool ok)> on_connect;
  /// One complete framed message arrived.
  std::function<void(ConnId, const net::Message&)> on_message;
  /// Connection closed (any reason, including owner-initiated).
  std::function<void(ConnId, CloseReason)> on_close;
};

class Engine {
 public:
  explicit Engine(const EngineConfig& config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Bind and listen. Returns false (with the engine still usable for
  /// outbound work) when the port is taken.
  bool listen();
  std::uint16_t listen_port() const noexcept { return listen_port_; }

  void set_handler(EngineHandler handler) { handler_ = std::move(handler); }

  /// Begin a nonblocking connect; on_connect fires when it resolves.
  /// kInvalidConn when the socket could not even be created.
  ConnId connect(const std::string& host, std::uint16_t port);

  /// Queue one message. False when the connection does not exist or the
  /// backpressure bound evicted it (the close callback has then already
  /// fired with kSlowPeer).
  bool send(ConnId id, const net::Message& msg);

  /// Owner-initiated close (flushes nothing: the overlay's messages are
  /// advisory, a closing peer's last words can be dropped).
  void close(ConnId id) { close_conn(id, CloseReason::kLocal); }

  bool is_open(ConnId id) const { return conns_.count(id) != 0; }
  std::size_t connection_count() const noexcept { return conns_.size(); }
  std::size_t write_queue_bytes(ConnId id) const;

  TimerWheel& timers() noexcept { return timers_; }

  /// Route SIGTERM/SIGINT into the loop via signalfd; run() then exits
  /// cleanly on delivery. Call once, before run().
  bool install_signal_handlers();

  /// One poll + dispatch round, waiting at most `timeout_ms` (capped by
  /// the next timer deadline). Returns false when the engine has been
  /// stopped. This is the unit of the event loop; tests call it directly.
  bool poll_once(int timeout_ms = 50);

  /// poll_once until stop() (or a handled signal).
  void run();

  void stop() noexcept { stopped_ = true; }
  bool stopped() const noexcept { return stopped_; }

  /// Monotonic milliseconds since engine construction (the wheel's clock).
  std::uint64_t now_ms() const;

  /// Counters for tests and stats.
  std::uint64_t accepted() const noexcept { return accepted_; }
  std::uint64_t messages_in() const noexcept { return messages_in_; }
  std::uint64_t messages_out() const noexcept { return messages_out_; }
  std::uint64_t bytes_in() const noexcept { return bytes_in_; }
  std::uint64_t bytes_out() const noexcept { return bytes_out_; }

 private:
  struct Conn {
    ConnId id = kInvalidConn;
    Fd fd;
    bool connecting = false;   ///< nonblocking connect still in flight
    bool saw_message = false;  ///< a complete frame has arrived
    std::uint64_t opened_ms = 0;
    net::StreamDecoder decoder;
    /// Outbound bytes not yet accepted by the kernel; front `write_off`
    /// bytes of the first chunk are already gone.
    std::deque<std::vector<std::uint8_t>> write_queue;
    std::size_t write_off = 0;
    std::size_t queued_bytes = 0;
  };

  Conn* conn_by_fd(int fd);
  void close_conn(ConnId id, CloseReason reason);
  void handle_accept();
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void resolve_connect(Conn& conn);
  void sweep_half_open();
  bool flush_writes(Conn& conn);
  void update_interest(Conn& conn);

  EngineConfig config_;
  EngineHandler handler_;
  Poller poller_;
  TimerWheel timers_;
  Fd listener_;
  std::uint16_t listen_port_ = 0;
  Fd signal_fd_;
  std::unordered_map<ConnId, Conn> conns_;
  std::unordered_map<int, ConnId> by_fd_;
  ConnId next_id_ = 1;
  bool stopped_ = false;
  std::uint64_t start_ms_ = 0;
  std::vector<PollEvent> events_;  ///< reused poll scratch

  std::uint64_t accepted_ = 0;
  std::uint64_t messages_in_ = 0;
  std::uint64_t messages_out_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

}  // namespace ddp::netengine
