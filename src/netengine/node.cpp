#include "netengine/node.hpp"

#include <algorithm>
#include <sstream>

namespace ddp::netengine {

namespace {

constexpr std::uint32_t kSelfOrigin = kInvalidPeer;  ///< GuidTable marker

/// High bit of a GuidTable `from` field: the query was flooded onward at
/// first arrival with relay credit — the copies left with TTL > 1, so
/// every then-ready overlay link except the source holds one Out_query
/// credit for it (TTL-dead copies are uncredited at send time and need no
/// later revocation). Overlay addresses are 10.x.y.z, leaving bit 31
/// free; kSelfOrigin (all ones) is resolved by the caller against the
/// configured issue TTL.
constexpr std::uint32_t kCreditFlag = 0x80000000u;

constexpr std::uint32_t origin_of(std::uint32_t from) noexcept {
  return from == kSelfOrigin ? kSelfOrigin : (from & ~kCreditFlag);
}

std::string address_string(std::uint32_t a) {
  std::ostringstream os;
  os << ((a >> 24) & 0xff) << '.' << ((a >> 16) & 0xff) << '.'
     << ((a >> 8) & 0xff) << '.' << (a & 0xff);
  return os.str();
}

}  // namespace

Node::Node(const NodeConfig& config)
    : config_(config),
      self_(net::peer_address(config.index)),
      engine_(config.engine),
      police_(net::peer_address(config.index), config.ddp, *this),
      rng_(config.seed, config.index) {
  EngineHandler h;
  h.on_accept = [this](ConnId id) { on_accept(id); };
  h.on_connect = [this](ConnId id, bool ok) { on_connect(id, ok); };
  h.on_message = [this](ConnId id, const net::Message& m) {
    on_message(id, m);
  };
  h.on_close = [this](ConnId id, CloseReason r) { on_close(id, r); };
  engine_.set_handler(std::move(h));
  police_.set_cut_handler([this](std::uint32_t suspect,
                                 const core::Decision& d) {
    apply_cut(suspect, d);
  });
  // Answer traffic requests from the live rolling windows: this node's
  // minute boundary is not the requesting judge's, so the last completed
  // minute may predate the traffic being judged.
  police_.set_traffic_probe(
      [this](std::uint32_t peer) -> std::optional<core::LinkMinute> {
        return link_minute(peer);
      });
}

Node::~Node() { shutdown(); }

bool Node::start() {
  if (!engine_.listen()) return false;
  if (!config_.stats_path.empty()) {
    stats_.open(config_.stats_path, std::ios::out | std::ios::trunc);
    std::ostringstream os;
    os << "{\"type\":\"start\",\"index\":" << config_.index
       << ",\"address\":\"" << address_string(self_) << "\",\"port\":"
       << engine_.listen_port()
       << ",\"attacker\":" << (config_.attacker ? "true" : "false") << "}";
    stats_line(os.str());
  }

  const auto minute_ms =
      static_cast<std::uint64_t>(config_.minute_seconds * 1000.0);
  engine_.timers().schedule_every(std::max<std::uint64_t>(minute_ms, 100),
                                  [this] { on_protocol_minute(); });
  // Police tick: ~20 per protocol minute, floor 50 ms — fine enough to hit
  // collect timeouts promptly even at high acceleration.
  engine_.timers().schedule_every(
      std::max<std::uint64_t>(50, minute_ms / 20), [this] {
        police_.on_tick(protocol_minutes());
        if (adverts_dirty_) {
          adverts_dirty_ = false;
          advertise_neighbors();
        }
      });
  engine_.timers().schedule_every(25, [this] { issue_queries(); });
  engine_.timers().schedule_every(1000, [this] { maintain_bootstrap(); });

  last_issue_s_ = wall_seconds();
  maintain_bootstrap();
  return true;
}

void Node::run() {
  engine_.run();
  shutdown();
}

void Node::shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  if (stats_.is_open()) {
    std::ostringstream os;
    os << "{\"type\":\"final\",\"index\":" << config_.index
       << ",\"minutes\":" << minute_ << ",\"issued\":" << queries_issued_
       << ",\"forwarded\":" << queries_forwarded_
       << ",\"hits\":" << hits_received_ << ",\"degree\":" << overlay_degree()
       << ",\"cuts\":[";
    for (std::size_t i = 0; i < cuts().size(); ++i) {
      const core::Decision& d = cuts()[i];
      if (i != 0) os << ',';
      os << "{\"minute\":" << d.minute << ",\"suspect\":\""
         << address_string(d.suspect) << "\",\"g\":" << d.g
         << ",\"s\":" << d.s << "}";
    }
    os << "]}";
    stats_line(os.str());
    stats_.close();
  }
}

void Node::stats_line(const std::string& json) {
  if (!stats_.is_open()) return;
  stats_ << json << '\n';
  stats_.flush();
}

std::size_t Node::overlay_degree() const {
  std::size_t n = 0;
  for (const auto& [id, link] : links_) {
    if (link.ready && link.kind == LinkKind::kOverlay) ++n;
  }
  return n;
}

Node::Link* Node::link_by_conn(ConnId id) {
  const auto it = links_.find(id);
  return it == links_.end() ? nullptr : &it->second;
}

Node::Link* Node::ready_link_to(std::uint32_t address) {
  const auto it = by_address_.find(address);
  if (it == by_address_.end()) return nullptr;
  Link* link = link_by_conn(it->second);
  return (link != nullptr && link->ready) ? link : nullptr;
}

double Node::out_credit(Link& link, double now_s) const {
  const double raw = link.out_queries.total(now_s);
  if (!config_.echo_correction) return raw;
  return std::max(0.0, raw - link.out_revoked.total(now_s));
}

std::optional<core::LinkMinute> Node::link_minute(std::uint32_t address) {
  const double now_s = wall_seconds();
  for (auto& [id, link] : links_) {
    if (link.ready && link.kind == LinkKind::kOverlay &&
        link.address == address) {
      return core::LinkMinute{address, out_credit(link, now_s),
                              link.in_queries.total(now_s)};
    }
  }
  return std::nullopt;
}

// ------------------------------------------------------------ dialing

void Node::maintain_bootstrap() {
  for (const std::uint16_t port : config_.bootstrap) {
    if (port == engine_.listen_port()) continue;
    if (dialed_ports_.count(port) != 0) continue;
    if (banned_ports_.count(port) != 0) continue;
    const ConnId id = engine_.connect(config_.host, port);
    if (id == kInvalidConn) continue;
    Link link;
    link.conn = id;
    link.kind = LinkKind::kOverlay;
    link.outbound = true;
    link.dialed_port = port;
    link.out_queries = util::RateWindow(config_.minute_seconds, 60);
    link.in_queries = util::RateWindow(config_.minute_seconds, 60);
    link.out_revoked = util::RateWindow(config_.minute_seconds, 60);
    links_.emplace(id, std::move(link));
    dialed_ports_.insert(port);
  }
}

void Node::send_control(std::uint32_t to, const net::Message& msg) {
  if (Link* link = ready_link_to(to)) {
    engine_.send(link->conn, msg);
    return;
  }
  if (banned_.count(to) != 0) return;
  auto& pending = control_pending_[to];
  if (pending.size() < 64) pending.push_back(msg);
  // Already dialing?
  for (const auto& [id, link] : links_) {
    if (link.outbound && link.dial_target == to) return;
  }
  std::uint16_t port = 0;
  if (config_.peer_port_base != 0) {
    const PeerId index = net::peer_from_address(to);
    if (index != kInvalidPeer) {
      port = static_cast<std::uint16_t>(config_.peer_port_base + index);
    }
  }
  if (port == 0) {
    const auto hint = port_hints_.find(to);
    if (hint != port_hints_.end()) port = hint->second;
  }
  if (port == 0) return;  // nobody to dial; member will count as silent
  const ConnId id = engine_.connect(config_.host, port);
  if (id == kInvalidConn) return;
  Link link;
  link.conn = id;
  link.kind = LinkKind::kControl;
  link.outbound = true;
  link.dial_target = to;
  link.dialed_port = port;
  link.out_queries = util::RateWindow(config_.minute_seconds, 60);
  link.in_queries = util::RateWindow(config_.minute_seconds, 60);
  links_.emplace(id, std::move(link));
}

// --------------------------------------------------- police transport

void Node::advertise_neighbors() {
  if (!config_.police) return;
  // Copy: send_neighbor_list can evict a slow peer, which mutates the
  // police neighbour set through on_close -> remove_neighbor.
  const std::vector<std::uint32_t> members = police_.neighbors();
  for (const std::uint32_t n : members) send_neighbor_list(n, members);
}

void Node::send_neighbor_list(std::uint32_t to,
                              const std::vector<std::uint32_t>& members) {
  net::Message msg;
  msg.header.guid = net::Guid::random(rng_);
  msg.header.ttl = 1;
  net::NeighborList nl;
  for (const std::uint32_t m : members) {
    std::uint16_t port = 0;
    const auto hint = port_hints_.find(m);
    if (hint != port_hints_.end()) port = hint->second;
    nl.entries.push_back({m, port});
  }
  msg.payload = std::move(nl);
  send_control(to, msg);
}

void Node::send_neighbor_traffic(std::uint32_t to,
                                 const net::NeighborTraffic& report) {
  if (stats_.is_open()) {
    std::ostringstream os;
    os << "{\"type\":\"traffic\",\"index\":" << config_.index << ",\"to\":\""
       << address_string(to) << "\",\"suspect\":\""
       << address_string(report.suspect_ip)
       << "\",\"out\":" << report.outgoing_queries
       << ",\"in\":" << report.incoming_queries
       << ",\"minute\":" << protocol_minutes() << "}";
    stats_line(os.str());
  }
  net::Message msg;
  msg.header.guid = net::Guid::random(rng_);
  msg.header.ttl = 1;
  msg.payload = report;
  send_control(to, msg);
}

// ------------------------------------------------------- engine events

void Node::on_accept(ConnId id) {
  Link link;
  link.conn = id;
  link.outbound = false;
  link.out_queries = util::RateWindow(config_.minute_seconds, 60);
  link.in_queries = util::RateWindow(config_.minute_seconds, 60);
  link.out_revoked = util::RateWindow(config_.minute_seconds, 60);
  links_.emplace(id, std::move(link));
  // Introduce ourselves; the dialer's hello decides the link kind.
  send_hello(id, LinkKind::kOverlay);
}

void Node::on_connect(ConnId id, bool ok) {
  Link* link = link_by_conn(id);
  if (link == nullptr) return;
  if (!ok) {
    const std::uint16_t port = link->dialed_port;
    const std::uint32_t target = link->dial_target;
    links_.erase(id);
    dialed_ports_.erase(port);
    if (target != 0) control_pending_.erase(target);
    return;
  }
  send_hello(id, link->kind);
}

void Node::send_hello(ConnId id, LinkKind kind) {
  net::Message msg;
  msg.header.guid = net::Guid::random(rng_);
  msg.header.ttl = 1;
  net::Pong hello;
  hello.port = engine_.listen_port();
  hello.ip = self_;
  hello.files_shared = static_cast<std::uint32_t>(kind);
  hello.kilobytes_shared = config_.index;
  msg.payload = hello;
  engine_.send(id, msg);
}

void Node::handle_hello(Link& link, const net::Pong& pong) {
  if (banned_.count(pong.ip) != 0) {
    engine_.close(link.conn);  // on_close cleans the link up
    return;
  }
  link.address = pong.ip;
  link.peer_port = pong.port;
  link.ready = true;
  link.ready_since = wall_seconds();
  if (!link.outbound) {
    link.kind = static_cast<LinkKind>(pong.files_shared == 1 ? 1 : 0);
  }
  port_hints_[pong.ip] = pong.port;
  const auto existing = by_address_.find(link.address);
  if (existing == by_address_.end() || link.kind == LinkKind::kOverlay) {
    by_address_[link.address] = link.conn;
  }
  if (link.kind == LinkKind::kOverlay && config_.police) {
    police_.add_neighbor(link.address);
    // Lists are exchanged at connection setup (Sec. 3.1), not only on the
    // period: a judge cannot address a buddy round at a peer it has no
    // advertisement from, and churned-in links would otherwise be
    // snapshot-blind for up to a full exchange period.
    adverts_dirty_ = true;
  }
  // Flushing can evict the connection (on_close erases the link, so the
  // `link` reference dies); move the queue out and send by conn id only.
  const ConnId conn = link.conn;
  const auto pending = control_pending_.find(link.address);
  if (pending != control_pending_.end()) {
    const std::vector<net::Message> queued = std::move(pending->second);
    control_pending_.erase(pending);
    for (const net::Message& m : queued) {
      if (!engine_.send(conn, m)) break;
    }
  }
}

void Node::on_message(ConnId id, const net::Message& msg) {
  Link* link = link_by_conn(id);
  if (link == nullptr) return;
  switch (msg.type()) {
    case net::PayloadType::kPong:
      if (!link->ready) handle_hello(*link, std::get<net::Pong>(msg.payload));
      return;
    case net::PayloadType::kPing: {
      net::Message pong;
      pong.header.guid = msg.header.guid;
      pong.header.ttl = 1;
      net::Pong p;
      p.port = engine_.listen_port();
      p.ip = self_;
      p.files_shared = 2;  // not a hello: already-ready links ignore pongs
      pong.payload = p;
      if (link->ready) engine_.send(id, pong);
      return;
    }
    case net::PayloadType::kQuery:
      if (link->ready) handle_query(*link, msg);
      return;
    case net::PayloadType::kQueryHit:
      if (link->ready) handle_query_hit(*link, msg);
      return;
    case net::PayloadType::kNeighborList: {
      if (!link->ready || !config_.police) return;
      const auto& nl = std::get<net::NeighborList>(msg.payload);
      std::vector<std::uint32_t> members;
      members.reserve(nl.entries.size());
      for (const auto& e : nl.entries) {
        members.push_back(e.ip);
        if (e.port != 0) port_hints_.emplace(e.ip, e.port);
      }
      police_.on_neighbor_list(link->address, members, protocol_minutes());
      return;
    }
    case net::PayloadType::kNeighborTraffic: {
      if (!link->ready || !config_.police) return;
      const auto& nt = std::get<net::NeighborTraffic>(msg.payload);
      police_.on_neighbor_traffic(nt.source_ip, nt, protocol_minutes());
      return;
    }
  }
}

void Node::on_close(ConnId id, CloseReason) {
  const auto it = links_.find(id);
  if (it == links_.end()) return;
  const Link link = std::move(it->second);
  links_.erase(it);
  if (link.outbound) dialed_ports_.erase(link.dialed_port);
  if (!link.ready) return;
  const auto mapped = by_address_.find(link.address);
  if (mapped != by_address_.end() && mapped->second == id) {
    by_address_.erase(mapped);
    // Another live link to the same peer (overlay + control pair) takes
    // over the address slot.
    for (const auto& [other_id, other] : links_) {
      if (other.ready && other.address == link.address) {
        by_address_[link.address] = other_id;
        break;
      }
    }
  }
  if (link.kind == LinkKind::kOverlay && config_.police) {
    bool still_overlay = false;
    for (const auto& [other_id, other] : links_) {
      if (other.ready && other.address == link.address &&
          other.kind == LinkKind::kOverlay) {
        still_overlay = true;
        break;
      }
    }
    if (!still_overlay) {
      police_.remove_neighbor(link.address);
      adverts_dirty_ = true;
    }
  }
}

// ------------------------------------------------------------ queries

void Node::issue_queries() {
  const double now_s = wall_seconds();
  const double dt = now_s - last_issue_s_;
  last_issue_s_ = now_s;
  if (dt <= 0.0) return;
  const bool attacking =
      config_.attacker && protocol_minutes() >= config_.attack_start_minute;
  const double rate = attacking ? config_.attack_rate_per_minute
                                : config_.query_rate_per_minute;
  issue_acc_ += rate * dt / config_.minute_seconds;
  // Bound a stall's backlog to one protocol minute of queries.
  issue_acc_ = std::min(issue_acc_, rate);
  while (issue_acc_ >= 1.0) {
    issue_acc_ -= 1.0;
    issue_one_query(now_s);
  }
}

void Node::issue_one_query(double now_s) {
  net::Message msg;
  msg.header.guid = net::Guid::random(rng_);
  msg.header.ttl = config_.ttl;
  net::Query q;
  q.search = "obj" + std::to_string(query_serial_++);
  msg.payload = std::move(q);
  seen_.upsert(msg.header.guid, kSelfOrigin, now_s);
  // send() can evict a slow peer, which fires on_close and erases from
  // links_ synchronously — never send while iterating the map.
  std::vector<ConnId> targets;
  targets.reserve(links_.size());
  for (const auto& [id, link] : links_) {
    if (link.ready && link.kind == LinkKind::kOverlay) targets.push_back(id);
  }
  for (const ConnId id : targets) {
    Link* link = link_by_conn(id);
    if (link == nullptr) continue;
    link->out_queries.add(now_s);
    if (config_.echo_correction && msg.header.ttl <= 1) {
      link->out_revoked.add(now_s);  // TTL-dead at issue: no relay credit
    }
    engine_.send(id, msg);
  }
  ++queries_issued_;
}

void Node::handle_query(Link& link, const net::Message& msg) {
  const double now_s = wall_seconds();
  link.in_queries.add(now_s);
  const net::Guid& guid = msg.header.guid;
  if (const auto* entry = seen_.find(guid); entry != nullptr) {
    ++dup_dropped_;
    // Echo correction. This peer just proved it already had the query —
    // it cannot have relayed the copy we flooded to it, so that send's
    // Out_query credit is revoked. The relay bound a judge grants a
    // suspect, (k-1) * sum of members' out_to_suspect, then counts only
    // copies that were first arrivals: an attacker's own flood racing
    // back through two-hop paths (common when process scheduling delays
    // the direct link) no longer launders its output into "forwarding".
    // The guards keep the revocation exactly dual to the grant: we
    // flooded this query WITH credit (kCreditFlag; TTL-dead floods were
    // never credited), to every ready overlay link except its origin,
    // and only links already up at flood time got a copy. The revocation
    // is recorded in the bucket of the original grant (add_at), so grant
    // and revocation expire from the rolling window together — revoking
    // at dup-arrival time would let a revocation outlive its grant and
    // eat credit belonging to newer sends. Repeat dups on one link can
    // over-revoke, but only a replaying peer produces them and the
    // over-revocation lands on the replayer's own credit; out_credit()
    // clamps at zero.
    const bool credited =
        entry->from == kSelfOrigin
            ? config_.ttl > 1
            : (entry->from & kCreditFlag) != 0;
    if (config_.echo_correction && credited &&
        link.kind == LinkKind::kOverlay &&
        origin_of(entry->from) != link.address &&
        link.ready_since <= entry->when) {
      link.out_revoked.add_at(now_s, entry->when);
      ++echo_revoked_;
    }
    return;
  }
  const bool credit_flood = msg.header.ttl > 2;  // forwarded copies keep TTL
  seen_.upsert(guid, credit_flood ? (link.address | kCreditFlag) : link.address,
               now_s);
  // `link` dangles if any send below evicts its connection; capture what
  // we still need first and do not touch the reference afterwards.
  const ConnId from_conn = link.conn;

  if (rng_.uniform() < config_.hit_probability) {
    net::Message hit;
    hit.header.guid = guid;
    hit.header.ttl = static_cast<std::uint8_t>(msg.header.hops + 1);
    net::QueryHit qh;
    qh.port = engine_.listen_port();
    qh.ip = self_;
    qh.speed = 1000;
    qh.records.push_back({config_.index, 1024,
                          std::get<net::Query>(msg.payload).search});
    qh.servent_id = net::Guid::random(rng_);
    hit.payload = std::move(qh);
    engine_.send(from_conn, hit);
  }

  if (msg.header.ttl <= 1) return;
  net::Message fwd = msg;
  fwd.header.ttl = static_cast<std::uint8_t>(msg.header.ttl - 1);
  fwd.header.hops = static_cast<std::uint8_t>(msg.header.hops + 1);
  std::vector<ConnId> targets;
  targets.reserve(links_.size());
  for (const auto& [id, other] : links_) {
    if (id != from_conn && other.ready && other.kind == LinkKind::kOverlay) {
      targets.push_back(id);
    }
  }
  for (const ConnId id : targets) {
    Link* other = link_by_conn(id);
    if (other == nullptr) continue;
    other->out_queries.add(now_s);
    // A copy sent with its last hop spent cannot be relayed onward: it
    // carries no relay credit (out_credit subtracts it), or a suspect at
    // the flood frontier gets its whole output bound stocked by traffic
    // it provably could not forward. The raw monitor still counts it.
    if (config_.echo_correction && fwd.header.ttl <= 1) {
      other->out_revoked.add(now_s);
    }
    engine_.send(id, fwd);
    ++queries_forwarded_;
  }
}

void Node::handle_query_hit(Link& link, const net::Message& msg) {
  (void)link;
  const auto* entry = seen_.find(msg.header.guid);
  if (entry == nullptr) return;  // route expired from the dedup horizon
  if (entry->from == kSelfOrigin) {
    ++hits_received_;
    return;
  }
  if (Link* back = ready_link_to(origin_of(entry->from))) {
    net::Message fwd = msg;
    fwd.header.hops = static_cast<std::uint8_t>(msg.header.hops + 1);
    engine_.send(back->conn, fwd);
  }
}

// ------------------------------------------------------------- cadence

void Node::on_protocol_minute() {
  ++minute_;
  const double now_s = wall_seconds();
  std::vector<core::LinkMinute> links;
  for (auto& [id, link] : links_) {
    if (!link.ready || link.kind != LinkKind::kOverlay) continue;
    core::LinkMinute lm;
    lm.peer = link.address;
    lm.out_queries = out_credit(link, now_s);
    lm.in_queries = link.in_queries.total(now_s);
    links.push_back(lm);
  }
  if (config_.police) police_.on_minute(double(minute_), links);
  // Dedup horizon: anything older than 3 protocol minutes cannot still be
  // in flight; compacting here bounds the table across a long run.
  seen_.prune(now_s - 3.0 * config_.minute_seconds);

  if (stats_.is_open()) {
    std::ostringstream os;
    os << "{\"type\":\"minute\",\"minute\":" << minute_
       << ",\"index\":" << config_.index << ",\"degree\":" << overlay_degree()
       << ",\"issued\":" << queries_issued_
       << ",\"forwarded\":" << queries_forwarded_
       << ",\"dups\":" << dup_dropped_ << ",\"revoked\":" << echo_revoked_
       << ",\"hits\":" << hits_received_
       << ",\"conns\":" << engine_.connection_count() << ",\"links\":[";
    bool first = true;
    for (const core::LinkMinute& lm : links) {
      if (!first) os << ',';
      first = false;
      os << "{\"peer\":\"" << address_string(lm.peer)
         << "\",\"out\":" << lm.out_queries << ",\"in\":" << lm.in_queries
         << "}";
    }
    os << "]}";
    stats_line(os.str());
  }
}

void Node::apply_cut(std::uint32_t suspect, const core::Decision& d) {
  banned_.insert(suspect);
  police_.ban_peer(suspect);
  if (stats_.is_open()) {
    std::ostringstream os;
    os << "{\"type\":\"cut\",\"minute\":" << d.minute << ",\"index\":"
       << config_.index << ",\"suspect\":\"" << address_string(suspect)
       << "\",\"g\":" << d.g << ",\"s\":" << d.s
       << ",\"k\":" << d.believed_k << ",\"responders\":" << d.responders
       << "}";
    stats_line(os.str());
  }
  std::vector<ConnId> doomed;
  for (const auto& [id, link] : links_) {
    if (link.address == suspect ||
        (link.outbound && link.dial_target == suspect)) {
      doomed.push_back(id);
      if (link.peer_port != 0) banned_ports_.insert(link.peer_port);
      if (link.dialed_port != 0) banned_ports_.insert(link.dialed_port);
    }
  }
  for (const ConnId id : doomed) engine_.close(id);
  police_.remove_neighbor(suspect);
  control_pending_.erase(suspect);
  // Re-advertise promptly: neighbours whose snapshot of our list still
  // names the cut peer would address it in rounds about us and close on
  // silent-as-zero — the post-cut transient, seen from the other side.
  adverts_dirty_ = true;
  // Never redial a banned peer's port from the bootstrap list.
  std::erase_if(config_.bootstrap, [this](std::uint16_t p) {
    return banned_ports_.count(p) != 0;
  });
}

}  // namespace ddp::netengine
