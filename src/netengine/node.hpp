#pragma once

/// \file node.hpp
/// DdpNode: one real Gnutella 0.6 peer process — listen, bootstrap,
/// flood queries, answer hits, and police its neighbours with the
/// per-node DD-POLICE judge (core::LocalPolice), all on the socket
/// engine's event loop.
///
/// Identity and addressing. Every node has an overlay address (the
/// synthetic 10.x.y.z of net/address.hpp, derived from its index) and a
/// transport address (127.0.0.1:port). The wire messages carry overlay
/// addresses; the testbed convention `peer_port_base` maps overlay address
/// index -> transport port so a judge can dial any buddy member directly,
/// exactly like DD-POLICE assumes IP connectivity between monitors.
///
/// Handshake. On connect (either direction) each side sends one
/// unsolicited Pong introducing itself: ip = overlay address, port =
/// transport listen port, files_shared = link kind (0 overlay, 1
/// control). A link is up when the peer's Pong arrives; overlay links
/// then join the query flood and the police neighbour set, control links
/// only carry Neighbor_List / Neighbor_Traffic (a buddy dial must not
/// rewire the overlay topology it is judging).
///
/// Protocol time. A "minute" is `minute_seconds` of wall clock, so the
/// testbed compresses the paper's cadence (monitors, rounds, exchanges)
/// into seconds. Monitors are util::RateWindow instances whose window IS
/// the protocol minute.
///
/// The attacker role is the paper's compromised servent: from
/// attack_start_minute it issues attack_rate_per_minute queries instead
/// of the honest rate. It still speaks the whole protocol (handshake,
/// lists, even traffic replies) — detection must come from the
/// indicators, not from a rigged client.

#include <cstdint>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/police.hpp"
#include "net/address.hpp"
#include "netengine/engine.hpp"
#include "p2p/guid_table.hpp"
#include "util/rate_window.hpp"
#include "util/rng.hpp"

namespace ddp::netengine {

struct NodeConfig {
  std::uint32_t index = 0;        ///< overlay identity; address = 10.x.y.z
  std::string host = "127.0.0.1";
  /// Transport ports this node dials at startup (its planned adjacency).
  std::vector<std::uint16_t> bootstrap;
  /// index -> transport port mapping: port_base + index. 0 disables buddy
  /// dialing (rounds then rely on members already connected).
  std::uint16_t peer_port_base = 0;

  std::uint8_t ttl = 5;
  double query_rate_per_minute = 2.0;
  double hit_probability = 0.05;

  bool attacker = false;
  double attack_rate_per_minute = 2000.0;
  double attack_start_minute = 1.0;

  /// Wall seconds per protocol minute (the testbed accelerator).
  double minute_seconds = 60.0;

  bool police = true;
  /// Echo-corrected output credit (deployment refinement, see node.cpp):
  /// when a duplicate of a query arrives on a link we had flooded it to,
  /// that send's Out_query credit is revoked — the peer demonstrably
  /// already had the query, so the copy was unrelayable. Without this an
  /// attacker's own flood, racing back through two-hop paths, stocks the
  /// relay bound (k-1)*input and a high-degree attacker becomes
  /// arithmetically unconvictable. Off reproduces raw Table-1 counters.
  bool echo_correction = true;
  core::DdPoliceConfig ddp{};

  std::string stats_path;  ///< JSONL stats stream ("" = none)
  std::uint64_t seed = 1;
  EngineConfig engine{};
};

class Node final : private core::PoliceTransport {
 public:
  explicit Node(const NodeConfig& config);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Listen, arm the cadence timers, dial the bootstrap set. False when
  /// the listen socket could not be bound.
  bool start();

  /// Run until SIGTERM/SIGINT (requires install_signals) or stop().
  void run();
  bool poll_once(int timeout_ms = 10) { return engine_.poll_once(timeout_ms); }
  void stop() { engine_.stop(); }

  /// Final stats flush (also called by the destructor; idempotent).
  void shutdown();

  Engine& engine() noexcept { return engine_; }
  core::LocalPolice& police() noexcept { return police_; }

  std::uint32_t self_address() const noexcept { return self_; }
  std::uint16_t listen_port() const noexcept { return engine_.listen_port(); }

  /// Ready overlay neighbours (handshake completed, not control-only).
  std::size_t overlay_degree() const;
  std::uint64_t queries_issued() const noexcept { return queries_issued_; }
  std::uint64_t queries_forwarded() const noexcept { return queries_forwarded_; }
  std::uint64_t hits_received() const noexcept { return hits_received_; }
  std::uint64_t duplicates_dropped() const noexcept { return dup_dropped_; }
  std::uint64_t echo_revocations() const noexcept { return echo_revoked_; }
  /// The police-facing monitor reading for one neighbour (out is the
  /// echo-corrected credit). Exposed for tests and stats.
  std::optional<core::LinkMinute> link_minute(std::uint32_t address);
  std::uint64_t minute_count() const noexcept { return minute_; }
  const std::vector<core::Decision>& cuts() const noexcept {
    return police_.decisions();
  }
  bool is_banned(std::uint32_t address) const {
    return banned_.count(address) != 0;
  }

 private:
  enum class LinkKind : std::uint8_t { kOverlay = 0, kControl = 1 };

  struct Link {
    ConnId conn = kInvalidConn;
    std::uint32_t address = 0;       ///< peer overlay address (0 until hello)
    std::uint16_t peer_port = 0;     ///< peer's advertised listen port
    LinkKind kind = LinkKind::kOverlay;
    bool ready = false;              ///< hello received
    bool outbound = false;
    std::uint16_t dialed_port = 0;   ///< for outbound: the port we dialed
    std::uint32_t dial_target = 0;   ///< control dials: intended address
    double ready_since = 0.0;        ///< wall seconds at hello
    util::RateWindow out_queries;    ///< we -> peer (Out_query monitor)
    util::RateWindow in_queries;     ///< peer -> we (In_query monitor)
    /// Unrelayable Out_query credit: sends the peer could not forward —
    /// TTL-dead copies (known at send time) and duplicates (proven when
    /// the peer sends the same query back). Police reports subtract this
    /// from out_queries; the raw counter keeps measuring bytes.
    util::RateWindow out_revoked;
  };

  // PoliceTransport: control-plane sends by overlay address, dialing a
  // control link when no connection exists yet.
  void send_neighbor_list(std::uint32_t to,
                          const std::vector<std::uint32_t>& members) override;
  void send_neighbor_traffic(std::uint32_t to,
                             const net::NeighborTraffic& report) override;

  void on_accept(ConnId id);
  void on_connect(ConnId id, bool ok);
  void on_message(ConnId id, const net::Message& msg);
  void on_close(ConnId id, CloseReason reason);

  void handle_hello(Link& link, const net::Pong& pong);
  void handle_query(Link& link, const net::Message& msg);
  void handle_query_hit(Link& link, const net::Message& msg);

  void send_hello(ConnId id, LinkKind kind);
  /// Push our current neighbour list to every overlay neighbour. Deferred
  /// to the police tick (adverts_dirty_) when the set changes inside an
  /// engine callback, so we never send re-entrantly from on_close.
  void advertise_neighbors();
  void issue_queries();
  void issue_one_query(double now_s);
  void on_protocol_minute();
  void apply_cut(std::uint32_t suspect, const core::Decision& d);
  void maintain_bootstrap();

  /// Deliver a control message to `to`, dialing if allowed and needed.
  void send_control(std::uint32_t to, const net::Message& msg);
  Link* link_by_conn(ConnId id);
  Link* ready_link_to(std::uint32_t address);
  /// Out_query minus revoked echo credit, clamped at zero (a burst of
  /// trailing revocations after the flood stops must not go negative).
  double out_credit(Link& link, double now_s) const;

  double wall_seconds() const { return double(engine_.now_ms()) / 1000.0; }
  double protocol_minutes() const {
    return wall_seconds() / config_.minute_seconds;
  }

  void stats_line(const std::string& json);

  NodeConfig config_;
  std::uint32_t self_;
  Engine engine_;
  core::LocalPolice police_;
  util::Rng rng_;

  std::unordered_map<ConnId, Link> links_;
  std::unordered_map<std::uint32_t, ConnId> by_address_;  ///< ready links
  std::unordered_set<std::uint32_t> banned_;
  /// Control messages waiting for a dial to complete, per overlay address.
  std::unordered_map<std::uint32_t, std::vector<net::Message>> control_pending_;
  /// Bootstrap ports with a live or in-flight outbound connection.
  std::unordered_set<std::uint16_t> dialed_ports_;
  /// Transport ports of banned peers (never redialed).
  std::unordered_set<std::uint16_t> banned_ports_;
  /// Last advertised transport port per overlay address (from hellos and
  /// Neighbor_List entries) — how buddy dials find members without a
  /// port-base convention.
  std::unordered_map<std::uint32_t, std::uint16_t> port_hints_;

  p2p::GuidTable seen_;  ///< guid -> (origin link address | self marker)
  double issue_acc_ = 0.0;
  double last_issue_s_ = 0.0;
  std::uint64_t minute_ = 0;
  std::uint64_t query_serial_ = 0;

  std::uint64_t queries_issued_ = 0;
  std::uint64_t queries_forwarded_ = 0;
  std::uint64_t hits_received_ = 0;
  std::uint64_t dup_dropped_ = 0;
  std::uint64_t echo_revoked_ = 0;

  std::ofstream stats_;
  bool shutdown_done_ = false;
  bool adverts_dirty_ = false;  ///< neighbour set changed; advertise on tick
};

}  // namespace ddp::netengine
