#include "netengine/poller.hpp"

#include <sys/epoll.h>

#include <array>
#include <cerrno>

namespace ddp::netengine {

namespace {

std::uint32_t interest_mask(bool want_read, bool want_write) {
  std::uint32_t events = 0;
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}

}  // namespace

Poller::Poller() : epoll_(::epoll_create1(EPOLL_CLOEXEC)) {}

bool Poller::add(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = interest_mask(want_read, want_write);
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool Poller::modify(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = interest_mask(want_read, want_write);
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Poller::remove(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

bool Poller::wait(int timeout_ms, std::vector<PollEvent>& out) {
  out.clear();
  std::array<epoll_event, 256> events;
  const int n = ::epoll_wait(epoll_.get(), events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  if (n < 0) return errno == EINTR;  // interrupted = empty batch, not broken
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    PollEvent pe;
    pe.fd = events[static_cast<std::size_t>(i)].data.fd;
    const std::uint32_t e = events[static_cast<std::size_t>(i)].events;
    pe.readable = (e & EPOLLIN) != 0;
    pe.writable = (e & EPOLLOUT) != 0;
    pe.error = (e & (EPOLLERR | EPOLLHUP)) != 0;
    out.push_back(pe);
  }
  return true;
}

}  // namespace ddp::netengine
