#pragma once

/// \file poller.hpp
/// Thin epoll wrapper: register file descriptors with a read/write
/// interest mask, wait, get a flat event list back. Level-triggered on
/// purpose — the engine's read loop drains until EAGAIN anyway, and
/// level-triggered semantics make the "poll once, handle once" unit tests
/// deterministic (no lost-edge corner cases).

#include <cstdint>
#include <vector>

#include "netengine/socket.hpp"

namespace ddp::netengine {

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< EPOLLERR / EPOLLHUP: peer gone or socket broken
};

class Poller {
 public:
  Poller();

  bool valid() const noexcept { return epoll_.valid(); }

  /// Register `fd`. `want_write` is typically off until the write queue
  /// is non-empty.
  bool add(int fd, bool want_read, bool want_write);
  bool modify(int fd, bool want_read, bool want_write);
  void remove(int fd);

  /// Wait up to `timeout_ms` (-1 = forever, 0 = nonblocking probe) and
  /// append ready descriptors to `out` (cleared first). Returns false on
  /// a poller-level failure (not on timeout).
  bool wait(int timeout_ms, std::vector<PollEvent>& out);

 private:
  Fd epoll_;
};

}  // namespace ddp::netengine
