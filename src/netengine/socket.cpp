#include "netengine/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ddp::netengine {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd make_listener(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd) return {};
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return {};
  }
  if (::listen(fd.get(), backlog) != 0) return {};
  return fd;
}

std::uint16_t bound_port(const Fd& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

std::optional<Fd> accept_connection(const Fd& listener, bool* fatal) {
  if (fatal != nullptr) *fatal = false;
  const int fd = ::accept4(listener.get(), nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd >= 0) return Fd(fd);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
      errno == ECONNABORTED) {
    return std::nullopt;  // drained (or the peer gave up mid-handshake)
  }
  if (fatal != nullptr) *fatal = true;
  return std::nullopt;
}

Fd connect_nonblocking(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) return {};
  if (!set_nonblocking(fd.get())) return {};
  sockaddr_in addr = loopback(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return {};
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    return {};
  }
  return fd;
}

int connect_result(const Fd& fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return errno != 0 ? errno : EBADF;
  }
  return err;
}

void set_nodelay(const Fd& fd) {
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace ddp::netengine
