#pragma once

/// \file socket.hpp
/// RAII file descriptors and the small set of nonblocking TCP operations
/// the socket engine needs. Everything is localhost IPv4: the testbed runs
/// hundreds of peer processes on 127.0.0.1, one listen port each, and the
/// overlay addresses riding inside Gnutella bodies are the synthetic
/// 10.x.y.z block (net/address.hpp) — never the transport address.
///
/// All sockets are nonblocking from birth; callers see would-block as a
/// normal return, not an error. Errors are returned, not thrown: the
/// engine treats every failed peer operation the same way (close the
/// connection), so exceptions would only add an unwind path.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace ddp::netengine {

/// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  explicit operator bool() const noexcept { return valid(); }

  /// Close now (idempotent).
  void reset() noexcept;

  /// Give up ownership without closing.
  int release() noexcept { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

/// Nonblocking listener bound to 127.0.0.1:`port` (SO_REUSEADDR set).
/// `port` 0 lets the kernel pick; bound_port() reads the result back.
/// Invalid Fd on failure (errno describes why).
Fd make_listener(std::uint16_t port, int backlog = 128);

/// The local port a bound socket ended up on (0 on error).
std::uint16_t bound_port(const Fd& listener);

/// Accept one pending connection, nonblocking. Empty when the queue is
/// drained (EAGAIN) or on error; `fatal` (if non-null) is set when the
/// listener itself is broken rather than merely drained.
std::optional<Fd> accept_connection(const Fd& listener, bool* fatal = nullptr);

/// Begin a nonblocking connect to 127.0.0.1:`port` (any IPv4 dotted-quad
/// `host` works, but the testbed never leaves loopback). The connection is
/// usually still in progress on return — the poller reports writability
/// when it resolves; connect_result() then reads the outcome.
Fd connect_nonblocking(const std::string& host, std::uint16_t port);

/// Resolve a finished nonblocking connect: 0 on success, else the errno.
int connect_result(const Fd& fd);

/// Disable Nagle; the control plane sends small messages it wants now.
void set_nodelay(const Fd& fd);

}  // namespace ddp::netengine
