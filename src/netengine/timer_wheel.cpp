#include "netengine/timer_wheel.hpp"

#include <algorithm>
#include <limits>

namespace ddp::netengine {

TimerWheel::TimerWheel(std::uint64_t tick_ms, std::size_t slot_count)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
      slots_(slot_count == 0 ? 1 : slot_count) {}

void TimerWheel::insert(Timer timer) {
  slots_[slot_of(timer.due_tick)].push_back(std::move(timer));
}

TimerWheel::TimerId TimerWheel::schedule(std::uint64_t delay_ms,
                                         std::function<void()> fn) {
  Timer t;
  t.id = next_id_++;
  const std::uint64_t ticks = (delay_ms + tick_ms_ - 1) / tick_ms_;
  t.due_tick = cursor_tick_ + std::max<std::uint64_t>(1, ticks);
  t.fn = std::move(fn);
  const TimerId id = t.id;
  insert(std::move(t));
  ++pending_;
  return id;
}

TimerWheel::TimerId TimerWheel::schedule_every(std::uint64_t period_ms,
                                               std::function<void()> fn) {
  Timer t;
  t.id = next_id_++;
  const std::uint64_t ticks = (period_ms + tick_ms_ - 1) / tick_ms_;
  t.due_tick = cursor_tick_ + std::max<std::uint64_t>(1, ticks);
  t.period_ms = std::max<std::uint64_t>(period_ms, tick_ms_);
  t.fn = std::move(fn);
  const TimerId id = t.id;
  insert(std::move(t));
  ++pending_;
  return id;
}

void TimerWheel::cancel(TimerId id) {
  if (id == kInvalidTimer) return;
  for (auto& slot : slots_) {
    for (Timer& t : slot) {
      if (t.id == id) {
        if (!t.cancelled) {
          t.cancelled = true;
          --pending_;
        }
        return;
      }
    }
  }
  // Not in any slot: either long gone, or extracted by the advance() that
  // is calling us — record so the periodic re-arm drops it.
  if (advancing_) cancelled_inflight_.push_back(id);
}

void TimerWheel::advance(std::uint64_t now_ms) {
  if (!anchored_) {
    anchored_ = true;
    origin_ms_ = now_ms;
  }
  const std::uint64_t target_tick = (now_ms - origin_ms_) / tick_ms_;
  advancing_ = true;
  std::vector<Timer> due;
  while (cursor_tick_ < target_tick) {
    ++cursor_tick_;
    auto& slot = slots_[slot_of(cursor_tick_)];
    due.clear();
    for (std::size_t i = 0; i < slot.size();) {
      if (slot[i].due_tick <= cursor_tick_) {
        due.push_back(std::move(slot[i]));
        slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;  // later rotation of the wheel
      }
    }
    for (Timer& t : due) {
      if (t.cancelled) continue;
      t.fn();
      const auto inflight = std::find(cancelled_inflight_.begin(),
                                      cancelled_inflight_.end(), t.id);
      if (inflight != cancelled_inflight_.end()) {
        cancelled_inflight_.erase(inflight);
        --pending_;
        continue;
      }
      if (t.period_ms == 0) {
        --pending_;
        continue;
      }
      // Re-arm anchored to the scheduled (not actual) due time so the
      // cadence does not drift; a long stall skips missed firings rather
      // than bursting to catch up.
      const std::uint64_t period_ticks =
          std::max<std::uint64_t>(1, t.period_ms / tick_ms_);
      t.due_tick += period_ticks;
      if (t.due_tick <= cursor_tick_) t.due_tick = cursor_tick_ + period_ticks;
      insert(std::move(t));
    }
  }
  advancing_ = false;
  cancelled_inflight_.clear();
}

int TimerWheel::next_delay_ms() const {
  if (pending_ == 0) return -1;
  std::uint64_t min_due = std::numeric_limits<std::uint64_t>::max();
  for (const auto& slot : slots_) {
    for (const Timer& t : slot) {
      if (!t.cancelled) min_due = std::min(min_due, t.due_tick);
    }
  }
  if (min_due == std::numeric_limits<std::uint64_t>::max()) return -1;
  const std::uint64_t delta_ticks =
      min_due > cursor_tick_ ? min_due - cursor_tick_ : 1;
  const std::uint64_t ms = delta_ticks * tick_ms_;
  return static_cast<int>(std::min<std::uint64_t>(ms, 60'000));
}

}  // namespace ddp::netengine
