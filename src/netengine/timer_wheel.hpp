#pragma once

/// \file timer_wheel.hpp
/// Hashed timer wheel for the engine's time-driven work: the minute
/// cadence the monitor/judge protocol runs at, the sub-minute police tick,
/// per-connection half-open timeouts, and query-issue pacing.
///
/// A classic single-level wheel: `slot_count` buckets of `tick_ms` each;
/// a timer due in d ticks lands in slot (cursor + d) % slots with
/// `rotations` = d / slots left to sit out. advance(now) walks the wheel
/// cursor forward tick by tick and fires what is due — O(1) amortized per
/// timer per rotation, no heap, no allocation per tick. Periodic timers
/// re-arm themselves by period, anchored to their *scheduled* due time so
/// cadence does not drift with processing delay.
///
/// The wheel is driven by the engine loop with whatever wall-clock it
/// uses; nothing here reads a clock, which keeps it unit-testable with a
/// synthetic time.

#include <cstdint>
#include <functional>
#include <vector>

namespace ddp::netengine {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  /// \param tick_ms   wheel resolution; timers fire on tick boundaries
  /// \param slot_count number of buckets (power of two recommended)
  explicit TimerWheel(std::uint64_t tick_ms = 10, std::size_t slot_count = 256);

  /// One-shot timer `delay_ms` from now. Delays round up to a whole tick
  /// (a zero delay fires on the next advance).
  TimerId schedule(std::uint64_t delay_ms, std::function<void()> fn);

  /// Periodic timer: first fires `period_ms` from now, then every period.
  TimerId schedule_every(std::uint64_t period_ms, std::function<void()> fn);

  /// Cancel a pending timer. Safe on already-fired/cancelled ids. Safe
  /// from inside a timer callback.
  void cancel(TimerId id);

  /// Fire everything due at or before `now_ms` (monotonic, caller-defined
  /// origin; first call anchors the wheel). Callbacks may schedule and
  /// cancel freely; a timer scheduled by a callback for the current tick
  /// fires on the next advance, not recursively.
  void advance(std::uint64_t now_ms);

  /// Milliseconds until the earliest pending timer fires (relative to the
  /// last advance), or -1 when the wheel is empty — made for feeding the
  /// poller's wait timeout.
  int next_delay_ms() const;

  std::size_t pending() const noexcept { return pending_; }

 private:
  struct Timer {
    TimerId id = kInvalidTimer;
    std::uint64_t due_tick = 0;
    std::uint64_t period_ms = 0;  ///< 0 = one-shot
    std::function<void()> fn;
    bool cancelled = false;
  };

  std::size_t slot_of(std::uint64_t tick) const noexcept {
    return static_cast<std::size_t>(tick % slots_.size());
  }
  void insert(Timer timer);

  std::uint64_t tick_ms_;
  std::vector<std::vector<Timer>> slots_;
  std::uint64_t cursor_tick_ = 0;   ///< last fully processed tick
  std::uint64_t origin_ms_ = 0;
  bool anchored_ = false;
  TimerId next_id_ = 1;
  std::size_t pending_ = 0;
  /// Ids cancelled while advance() is mid-flight (their Timer may already
  /// be pulled out of its slot).
  std::vector<TimerId> cancelled_inflight_;
  bool advancing_ = false;
};

}  // namespace ddp::netengine
