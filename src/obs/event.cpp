#include "obs/event.hpp"

namespace ddp::obs {

namespace {

constexpr const char* kNames[kEventTypeCount] = {
    "query_issued",       // kQueryIssued
    "query_forwarded",    // kQueryForwarded
    "query_dropped",      // kQueryDropped
    "query_duplicate",    // kQueryDuplicate
    "query_hit",          // kQueryHit
    "hit_delivered",      // kHitDelivered
    "query_expired",      // kQueryExpired
    "minute_report",      // kMinuteReport
    "link_disconnected",  // kLinkDisconnected
    "edge_added",         // kEdgeAdded
    "peer_offline",       // kPeerOffline
    "peer_joined",        // kPeerJoined
    "peer_left",          // kPeerLeft
    "attack_started",     // kAttackStarted
    "agent_rejoined",     // kAgentRejoined
    "agent_activated",    // kAgentActivated
    "agent_minute",       // kAgentMinute
    "neighbor_list",      // kNeighborListSent
    "list_violation",     // kListViolation
    "suspect_flagged",    // kSuspectFlagged
    "indicator",          // kIndicatorComputed
    "suspect_cut",        // kSuspectCut
    "traffic_request",    // kTrafficRequest
    "traffic_reply",      // kTrafficReply
    "traffic_retry",      // kTrafficRetry
    "traffic_timeout",    // kTrafficTimeout
    "corrupt_reject",     // kCorruptReject
    "late_reply",         // kLateReply
    "fault_crash",        // kFaultCrash
    "fault_stall",        // kFaultStall
    "fault_resume",       // kFaultResume
    "peer_quarantined",   // kPeerQuarantined
    "peer_probation",     // kPeerProbation
    "peer_reinstated",    // kPeerReinstated
    "peer_banned",        // kPeerBanned
    "partition_detected", // kPartitionDetected
    "peer_rebootstrapped",// kPeerRebootstrapped
    "band_reestimated",   // kBandReestimated
    "suspicion_entered",  // kSuspicionEntered
    "suspicion_exited",   // kSuspicionExited
    "flash_crowd_started",// kFlashCrowdStarted
    "flash_crowd_ended",  // kFlashCrowdEnded
    "log",                // kLog
};

}  // namespace

const char* event_name(EventType type) noexcept {
  const auto i = static_cast<std::size_t>(type);
  return i < kEventTypeCount ? kNames[i] : "unknown";
}

std::optional<EventType> event_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    if (name == kNames[i]) return static_cast<EventType>(i);
  }
  return std::nullopt;
}

}  // namespace ddp::obs
