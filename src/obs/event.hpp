#pragma once

/// \file event.hpp
/// Typed trace events: the vocabulary of the observability plane. Every
/// subsystem (sim, flow, p2p, defense, attack, fault) describes what it
/// did as a TraceEvent — simulated time, the peers involved, and a small
/// fixed set of key=value payload fields — and hands it to whatever
/// TraceSink the run installed. Events are plain trivially-copyable
/// structs so a ring buffer can retain them without allocation; field
/// keys are string literals with static storage duration.

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>

#include "util/types.hpp"

namespace ddp::obs {

/// Everything the simulator can put on a trace. Grouped by the layer that
/// emits it; docs/observability.md documents the payload of each.
enum class EventType : std::uint8_t {
  // Packet engine data plane (per descriptor). `query` is the
  // deterministic per-run query id (from kQueryIssued), `parent` the peer
  // the descriptor arrived from (-1 at the origin): together they encode
  // each query's flood tree losslessly (obs::build_flood_tree).
  kQueryIssued = 0,   ///< a=origin; kv: query, object, attack
  kQueryForwarded,    ///< a=from, b=to; kv: ttl, hops, query, parent
  kQueryDropped,      ///< a=peer, b=from (queue overflow); kv: queue, query
  kQueryDuplicate,    ///< a=peer, b=from dropped a seen GUID; kv: query
  kQueryHit,          ///< a=responder, b=origin; kv: object, hops, query, parent
  kHitDelivered,      ///< a=origin; kv: latency, query
  kQueryExpired,      ///< a=leaf, b=from (no forward); kv: query, ttl, hops

  // Flow engine (aggregate volumes; per completed minute / per action).
  kMinuteReport,      ///< kv: traffic, attack, dropped, success
  kLinkDisconnected,  ///< a,b = endpoints of the cut link
  kEdgeAdded,         ///< a,b = endpoints of the new link
  kPeerOffline,       ///< a = peer whose flow state was torn down

  // Membership and attack campaign.
  kPeerJoined,        ///< a = rejoining peer (churn)
  kPeerLeft,          ///< a = departing peer (churn)
  kAttackStarted,     ///< kv: agents
  kAgentRejoined,     ///< a = agent that walked back in; kv: links
  kAgentActivated,    ///< a = picked agent (forensics); kv: rate
  kAgentMinute,       ///< a = agent, per minute (forensics); kv: out, drop_frac

  // DD-POLICE control plane.
  kNeighborListSent,  ///< a=advertiser, b=receiver; kv: entries
  kListViolation,     ///< a=suspect, b=judge (consistency check failed)
  kSuspectFlagged,    ///< a=suspect, b=judge; kv: out (last-minute rate)
  kIndicatorComputed, ///< a=suspect, b=judge; kv: g, s, k, responders
  kSuspectCut,        ///< a=suspect, b=judge; kv: g, s, via_single
  kTrafficRequest,    ///< a=member, b=suspect (Neighbor_Traffic request)
  kTrafficReply,      ///< a=member, b=suspect; kv: out, in
  kTrafficRetry,      ///< a=member, b=suspect; kv: attempt
  kTrafficTimeout,    ///< a=member, b=suspect (retries exhausted)
  kCorruptReject,     ///< a=member, b=suspect (undecodable/inconsistent)
  kLateReply,         ///< a=member, b=suspect; kv: rtt

  // Fault injection.
  kFaultCrash,        ///< a = crash-stopped peer
  kFaultStall,        ///< a = stalled peer; kv: until
  kFaultResume,       ///< a = peer resuming from a stall

  // Self-healing: quarantine ladder and partition repair.
  kPeerQuarantined,   ///< a = suspect; kv: strikes, release (minute)
  kPeerProbation,     ///< a = peer on probation; kv: links, budget
  kPeerReinstated,    ///< a = reinstated peer; kv: quarantined_minutes
  kPeerBanned,        ///< a = banned peer; kv: strikes
  kPartitionDetected, ///< kv: components, stranded, largest
  kPeerRebootstrapped,///< a = repaired peer; kv: links, attempts

  // Adaptive cut bands (core/adaptive.hpp) and flash-crowd workload.
  kBandReestimated,   ///< kv: links (bands updated), mature (total mature)
  kSuspicionEntered,  ///< a = peer over its suspicion rail; kv: ratio
  kSuspicionExited,   ///< a = peer back in band; kv: minutes
  kFlashCrowdStarted, ///< kv: participants, factor
  kFlashCrowdEnded,   ///< kv: participants

  // util::log bridge (t < 0: wall-layer, no sim clock available).
  kLog,               ///< kv: level; note = message (truncated)

  kCount_,            ///< sentinel, not a real event
};

inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kCount_);

/// Stable machine name ("query_issued", "suspect_cut", ...). Used as the
/// JSONL "type" string and by trace_tool filters.
const char* event_name(EventType type) noexcept;

/// Inverse of event_name; nullopt for unknown names.
std::optional<EventType> event_from_name(std::string_view name) noexcept;

/// One trace event. Trivially copyable: sinks may memcpy/retain freely.
struct TraceEvent {
  static constexpr std::size_t kMaxFields = 4;
  static constexpr std::size_t kNoteCapacity = 64;

  /// One key=value payload entry. `key` must be a string literal (or
  /// otherwise outlive every sink holding the event).
  struct Field {
    const char* key = nullptr;
    double value = 0.0;
  };

  SimTime t = 0.0;                 ///< simulated seconds; < 0 = wall layer
  EventType type = EventType::kLog;
  PeerId a = kInvalidPeer;         ///< subject peer (if any)
  PeerId b = kInvalidPeer;         ///< counterpart peer (if any)
  std::uint8_t n_fields = 0;
  std::array<Field, kMaxFields> fields{};
  char note[kNoteCapacity] = {};   ///< optional free text, NUL-terminated

  void add_field(const char* key, double value) noexcept {
    if (n_fields < kMaxFields) fields[n_fields++] = Field{key, value};
  }

  void set_note(std::string_view text) noexcept {
    const std::size_t n = text.size() < kNoteCapacity - 1
                              ? text.size()
                              : kNoteCapacity - 1;
    std::memcpy(note, text.data(), n);
    note[n] = '\0';
  }

  bool has_note() const noexcept { return note[0] != '\0'; }
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "ring-buffer sinks rely on memcpy-able events");

}  // namespace ddp::obs
