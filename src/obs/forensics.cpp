#include "obs/forensics.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "snapshot/snapshot.hpp"

namespace ddp::obs {

namespace {

/// Round-trip a value through the JSONL wire format (integral -> exact,
/// otherwise %.10g like to_jsonl). The live fold canonicalizes every
/// accumulated payload this way so it lands on exactly the doubles an
/// offline fold of the written trace parses back — that is what makes
/// ddpsim's live forensics byte-identical to trace_tool's offline fold.
double canon(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9.007199254740992e15 && v <= 9.007199254740992e15) {
    return v;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return std::strtod(buf, nullptr);
}

/// Deterministic number formatting for the exports: locale-independent,
/// trailing-zero-free, enough digits for the values that occur (minutes,
/// message counts). Same fold state => same bytes.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Seconds -> minutes for export; -1 stays -1 ("never").
double mins(double t) { return t < 0.0 ? -1.0 : to_minutes(t); }

/// Stage latency relative to activation, in minutes; -1 when either end
/// is missing.
double latency_min(double activated_t, double stage_t) {
  if (activated_t < 0.0 || stage_t < 0.0) return -1.0;
  return to_minutes(stage_t - activated_t);
}

}  // namespace

void ForensicsAccumulator::fold(EventType type, double t, PeerId a,
                                double v0, double v1) {
  ++events_folded_;
  switch (type) {
    case EventType::kAttackStarted:
      if (attack_start_t_ < 0.0) attack_start_t_ = t;
      break;
    case EventType::kAgentActivated: {
      AgentForensics& ag = agents_[a];
      ag.agent = a;
      if (ag.activated_t < 0.0) ag.activated_t = t;
      ag.rate = v0;
      break;
    }
    case EventType::kAgentMinute: {
      const auto it = agents_.find(a);
      if (it == agents_.end()) break;  // unknown agent: trace was filtered
      AgentForensics& ag = it->second;
      // The cut lands during the same minute hook that reports the
      // minute's volume, so t == first_cut_t still accrues: that traffic
      // was in flight before the link came down.
      if (ag.first_cut_t < 0.0 || t <= ag.first_cut_t) {
        ag.injected_before_cut += v0;
        ag.delivered_before_cut += v0 * (1.0 - v1);
      }
      break;
    }
    case EventType::kSuspectFlagged: {
      const auto it = agents_.find(a);
      if (it != agents_.end()) {
        ++it->second.flags;
        if (it->second.first_flag_t < 0.0) it->second.first_flag_t = t;
      } else {
        HonestForensics& h = honest_[a];
        h.peer = a;
        ++h.flags;
        if (h.first_flag_t < 0.0) h.first_flag_t = t;
      }
      break;
    }
    case EventType::kIndicatorComputed: {
      const auto it = agents_.find(a);
      if (it != agents_.end()) {
        ++it->second.indicators;
        if (it->second.first_indicator_t < 0.0) {
          it->second.first_indicator_t = t;
        }
      }
      break;
    }
    case EventType::kSuspectCut: {
      const auto it = agents_.find(a);
      if (it != agents_.end()) {
        ++it->second.cuts;
        if (it->second.first_cut_t < 0.0) it->second.first_cut_t = t;
      } else {
        HonestForensics& h = honest_[a];
        h.peer = a;
        ++h.cuts;
        if (h.first_cut_t < 0.0) h.first_cut_t = t;
      }
      break;
    }
    case EventType::kPeerQuarantined: {
      const auto it = agents_.find(a);
      if (it != agents_.end() && it->second.quarantined_t < 0.0) {
        it->second.quarantined_t = t;
      }
      break;
    }
    default:
      break;
  }
}

void ForensicsAccumulator::on_event(const TraceEvent& e) {
  double v0 = 0.0, v1 = 0.0;
  switch (e.type) {
    case EventType::kAgentActivated:
      for (std::uint8_t i = 0; i < e.n_fields; ++i) {
        if (std::string_view(e.fields[i].key) == "rate") v0 = e.fields[i].value;
      }
      break;
    case EventType::kAgentMinute:
      for (std::uint8_t i = 0; i < e.n_fields; ++i) {
        const std::string_view key(e.fields[i].key);
        if (key == "out") v0 = e.fields[i].value;
        if (key == "drop_frac") v1 = e.fields[i].value;
      }
      break;
    default:
      break;
  }
  fold(e.type, canon(e.t), e.a, canon(v0), canon(v1));
}

void ForensicsAccumulator::add(const TraceRecord& r) {
  if (!r.known) return;
  double v0 = 0.0, v1 = 0.0;
  switch (*r.known) {
    case EventType::kAgentActivated:
      v0 = r.field("rate").value_or(0.0);
      break;
    case EventType::kAgentMinute:
      v0 = r.field("out").value_or(0.0);
      v1 = r.field("drop_frac").value_or(0.0);
      break;
    default:
      break;
  }
  fold(*r.known, r.t, r.a, v0, v1);
}

std::string ForensicsAccumulator::to_csv() const {
  std::string out =
      "agent,rate,activated_min,first_flag_min,first_indicator_min,"
      "first_cut_min,quarantined_min,flag_latency_min,indicator_latency_min,"
      "cut_latency_min,injected_before_cut,delivered_before_cut,flags,"
      "indicators,cuts\n";
  for (const auto& [id, ag] : agents_) {
    out += num(id) + ',' + num(ag.rate) + ',' + num(mins(ag.activated_t)) +
           ',' + num(mins(ag.first_flag_t)) + ',' +
           num(mins(ag.first_indicator_t)) + ',' + num(mins(ag.first_cut_t)) +
           ',' + num(mins(ag.quarantined_t)) + ',' +
           num(latency_min(ag.activated_t, ag.first_flag_t)) + ',' +
           num(latency_min(ag.activated_t, ag.first_indicator_t)) + ',' +
           num(latency_min(ag.activated_t, ag.first_cut_t)) + ',' +
           num(ag.injected_before_cut) + ',' + num(ag.delivered_before_cut) +
           ',' + num(static_cast<double>(ag.flags)) + ',' +
           num(static_cast<double>(ag.indicators)) + ',' +
           num(static_cast<double>(ag.cuts)) + '\n';
  }
  return out;
}

std::string ForensicsAccumulator::to_json() const {
  std::string out = "{\"attack_start_min\":" + num(mins(attack_start_t_));
  out += ",\"agents\":[";
  bool first = true;
  std::uint64_t agents_cut = 0, honest_cut = 0;
  double flag_lat_sum = 0.0, cut_lat_sum = 0.0;
  std::size_t flag_lat_n = 0, cut_lat_n = 0;
  double injected = 0.0, delivered = 0.0;
  for (const auto& [id, ag] : agents_) {
    if (!first) out += ',';
    first = false;
    out += "{\"agent\":" + num(id) + ",\"rate\":" + num(ag.rate) +
           ",\"activated_min\":" + num(mins(ag.activated_t)) +
           ",\"first_flag_min\":" + num(mins(ag.first_flag_t)) +
           ",\"first_indicator_min\":" + num(mins(ag.first_indicator_t)) +
           ",\"first_cut_min\":" + num(mins(ag.first_cut_t)) +
           ",\"quarantined_min\":" + num(mins(ag.quarantined_t)) +
           ",\"injected_before_cut\":" + num(ag.injected_before_cut) +
           ",\"delivered_before_cut\":" + num(ag.delivered_before_cut) +
           ",\"flags\":" + num(static_cast<double>(ag.flags)) +
           ",\"indicators\":" + num(static_cast<double>(ag.indicators)) +
           ",\"cuts\":" + num(static_cast<double>(ag.cuts)) + '}';
    if (ag.first_cut_t >= 0.0) ++agents_cut;
    const double fl = latency_min(ag.activated_t, ag.first_flag_t);
    if (fl >= 0.0) { flag_lat_sum += fl; ++flag_lat_n; }
    const double cl = latency_min(ag.activated_t, ag.first_cut_t);
    if (cl >= 0.0) { cut_lat_sum += cl; ++cut_lat_n; }
    injected += ag.injected_before_cut;
    delivered += ag.delivered_before_cut;
  }
  out += "],\"honest\":[";
  first = true;
  for (const auto& [id, h] : honest_) {
    if (!first) out += ',';
    first = false;
    out += "{\"peer\":" + num(id) +
           ",\"first_flag_min\":" + num(mins(h.first_flag_t)) +
           ",\"first_cut_min\":" + num(mins(h.first_cut_t)) +
           ",\"flags\":" + num(static_cast<double>(h.flags)) +
           ",\"cuts\":" + num(static_cast<double>(h.cuts)) + '}';
    if (h.first_cut_t >= 0.0) ++honest_cut;
  }
  out += "],\"summary\":{\"agents\":" +
         num(static_cast<double>(agents_.size())) +
         ",\"agents_cut\":" + num(static_cast<double>(agents_cut)) +
         ",\"mean_flag_latency_min\":" +
         num(flag_lat_n > 0 ? flag_lat_sum / static_cast<double>(flag_lat_n)
                            : -1.0) +
         ",\"mean_cut_latency_min\":" +
         num(cut_lat_n > 0 ? cut_lat_sum / static_cast<double>(cut_lat_n)
                           : -1.0) +
         ",\"injected_before_cut\":" + num(injected) +
         ",\"delivered_before_cut\":" + num(delivered) +
         ",\"honest_flagged\":" + num(static_cast<double>(honest_.size())) +
         ",\"honest_cut\":" + num(static_cast<double>(honest_cut)) + "}}\n";
  return out;
}

bool ForensicsAccumulator::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

bool ForensicsAccumulator::write_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

std::string ForensicsAccumulator::summary() const {
  std::uint64_t flagged = 0, cut = 0, honest_cut = 0;
  double flag_lat_sum = 0.0, cut_lat_sum = 0.0;
  std::size_t flag_lat_n = 0, cut_lat_n = 0;
  double injected = 0.0, delivered = 0.0;
  for (const auto& [id, ag] : agents_) {
    if (ag.first_flag_t >= 0.0) ++flagged;
    if (ag.first_cut_t >= 0.0) ++cut;
    const double fl = latency_min(ag.activated_t, ag.first_flag_t);
    if (fl >= 0.0) { flag_lat_sum += fl; ++flag_lat_n; }
    const double cl = latency_min(ag.activated_t, ag.first_cut_t);
    if (cl >= 0.0) { cut_lat_sum += cl; ++cut_lat_n; }
    injected += ag.injected_before_cut;
    delivered += ag.delivered_before_cut;
  }
  for (const auto& [id, h] : honest_) {
    if (h.first_cut_t >= 0.0) ++honest_cut;
  }
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "forensics: %zu agents (campaign at minute %s)\n",
                agents_.size(), num(mins(attack_start_t_)).c_str());
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  flagged %llu/%zu (mean +%.2f min), cut %llu/%zu (mean +%.2f min)\n",
      static_cast<unsigned long long>(flagged), agents_.size(),
      flag_lat_n > 0 ? flag_lat_sum / static_cast<double>(flag_lat_n) : -1.0,
      static_cast<unsigned long long>(cut), agents_.size(),
      cut_lat_n > 0 ? cut_lat_sum / static_cast<double>(cut_lat_n) : -1.0);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  pre-cut damage: %s injected, %s delivered\n",
                num(injected).c_str(), num(delivered).c_str());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  honest peers: %zu flagged, %llu cut\n", honest_.size(),
                static_cast<unsigned long long>(honest_cut));
  out += buf;
  return out;
}

void ForensicsAccumulator::save(snapshot::Writer& w) const {
  w.f64(attack_start_t_);
  w.u64(events_folded_);
  w.size(agents_.size());
  for (const auto& [id, ag] : agents_) {
    w.u32(id);
    w.f64(ag.rate);
    w.f64(ag.activated_t);
    w.f64(ag.first_flag_t);
    w.f64(ag.first_indicator_t);
    w.f64(ag.first_cut_t);
    w.f64(ag.quarantined_t);
    w.u64(ag.flags);
    w.u64(ag.indicators);
    w.u64(ag.cuts);
    w.f64(ag.injected_before_cut);
    w.f64(ag.delivered_before_cut);
  }
  w.size(honest_.size());
  for (const auto& [id, h] : honest_) {
    w.u32(id);
    w.f64(h.first_flag_t);
    w.f64(h.first_cut_t);
    w.u64(h.flags);
    w.u64(h.cuts);
  }
}

void ForensicsAccumulator::load(snapshot::Reader& r) {
  agents_.clear();
  honest_.clear();
  attack_start_t_ = r.f64();
  events_folded_ = r.u64();
  const std::size_t n_agents = r.size(1u << 24);
  for (std::size_t i = 0; i < n_agents; ++i) {
    const PeerId id = r.u32();
    AgentForensics& ag = agents_[id];
    ag.agent = id;
    ag.rate = r.f64();
    ag.activated_t = r.f64();
    ag.first_flag_t = r.f64();
    ag.first_indicator_t = r.f64();
    ag.first_cut_t = r.f64();
    ag.quarantined_t = r.f64();
    ag.flags = r.u64();
    ag.indicators = r.u64();
    ag.cuts = r.u64();
    ag.injected_before_cut = r.f64();
    ag.delivered_before_cut = r.f64();
  }
  const std::size_t n_honest = r.size(1u << 24);
  for (std::size_t i = 0; i < n_honest; ++i) {
    const PeerId id = r.u32();
    HonestForensics& h = honest_[id];
    h.peer = id;
    h.first_flag_t = r.f64();
    h.first_cut_t = r.f64();
    h.flags = r.u64();
    h.cuts = r.u64();
  }
}

}  // namespace ddp::obs
