#pragma once

/// \file forensics.hpp
/// Per-attacker forensics: fold the defense storyline events — attack
/// campaign start, per-agent activation and minute volumes, DD-POLICE
/// flag / indicator / cut, quarantine — into one record per attack agent:
/// when it started, how fast each detection stage reached it, and how much
/// traffic it injected (and got delivered) before the cut. Honest peers
/// the defense touched are tallied separately (false flags / false cuts).
///
/// The accumulator is itself a TraceSink, so it can ride a live run
/// (ScenarioConfig::obs.forensics) or fold a JSONL trace after the fact
/// (trace_tool forensics); both paths produce byte-identical exports.

#include <cstdint>
#include <map>
#include <string>

#include "obs/event.hpp"
#include "obs/trace.hpp"
#include "obs/trace_read.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::obs {

/// One attack agent's storyline. Times are sim seconds; -1 = never
/// happened (within the folded window).
struct AgentForensics {
  PeerId agent = kInvalidPeer;
  double rate = 0.0;              ///< configured sourcing rate (msg/min)
  double activated_t = -1.0;      ///< kAgentActivated
  double first_flag_t = -1.0;     ///< first kSuspectFlagged
  double first_indicator_t = -1.0;///< first kIndicatorComputed
  double first_cut_t = -1.0;      ///< first kSuspectCut
  double quarantined_t = -1.0;    ///< first kPeerQuarantined
  std::uint64_t flags = 0;
  std::uint64_t indicators = 0;
  std::uint64_t cuts = 0;
  /// Damage before (and including the minute of) the first cut.
  double injected_before_cut = 0.0;
  double delivered_before_cut = 0.0;
};

/// An honest peer the defense touched (false positives).
struct HonestForensics {
  PeerId peer = kInvalidPeer;
  double first_flag_t = -1.0;
  double first_cut_t = -1.0;
  std::uint64_t flags = 0;
  std::uint64_t cuts = 0;
};

class ForensicsAccumulator final : public TraceSink {
 public:
  /// Live path: attach as (part of) the run's trace sink.
  void on_event(const TraceEvent& event) override;

  /// Offline path: fold one parsed JSONL record.
  void add(const TraceRecord& record);

  double attack_start_t() const noexcept { return attack_start_t_; }
  std::uint64_t events_folded() const noexcept { return events_folded_; }
  const std::map<PeerId, AgentForensics>& agents() const noexcept {
    return agents_;
  }
  const std::map<PeerId, HonestForensics>& honest() const noexcept {
    return honest_;
  }

  /// Deterministic exports: one row per agent, ascending agent id, fixed
  /// column set and number formatting (same fold => same bytes).
  std::string to_csv() const;
  std::string to_json() const;
  bool write_csv(const std::string& path) const;
  bool write_json(const std::string& path) const;

  /// Short human-readable digest (trace_tool forensics, ddpsim stdout).
  std::string summary() const;

  /// Serialize the fold state into the writer's open section, so a
  /// checkpointed run resumes its forensics mid-story.
  void save(snapshot::Writer& w) const;
  void load(snapshot::Reader& r);

 private:
  void fold(EventType type, double t, PeerId a, double v0, double v1);

  double attack_start_t_ = -1.0;
  std::uint64_t events_folded_ = 0;
  std::map<PeerId, AgentForensics> agents_;
  std::map<PeerId, HonestForensics> honest_;
};

}  // namespace ddp::obs
