#include "obs/metrics.hpp"

#include <cstdio>
#include <fstream>

#include "snapshot/state_io.hpp"
#include "util/log.hpp"

namespace ddp::obs {

namespace {

/// Deterministic, locale-independent number rendering shared by the CSV
/// and JSON exports: integral values print without a fractional part,
/// everything else with enough significant digits to round-trip the
/// measurements we take.
void append_number(std::string& out, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9.007199254740992e15 && v <= 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  out += buf;
}

}  // namespace

const char* metric_kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricId MetricsRegistry::register_entry(std::string_view name,
                                         MetricKind kind) {
  const MetricId existing = find(name);
  if (existing != kInvalidMetric) {
    if (entries_[existing].kind != kind) {
      util::log_warn("metric re-registered with a different kind; keeping "
                     "the original");
    }
    return existing;
  }
  Entry e;
  e.name.assign(name);
  e.kind = kind;
  entries_.push_back(std::move(e));
  return entries_.size() - 1;
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return register_entry(name, MetricKind::kCounter);
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return register_entry(name, MetricKind::kGauge);
}

MetricId MetricsRegistry::histogram(std::string_view name, double lo,
                                    double hi, std::size_t bins) {
  const MetricId id = register_entry(name, MetricKind::kHistogram);
  if (entries_[id].hist == nullptr) {
    entries_[id].hist = std::make_unique<util::Histogram>(lo, hi, bins);
  }
  return id;
}

MetricId MetricsRegistry::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return i;
  }
  return kInvalidMetric;
}

void MetricsRegistry::add(MetricId id, double delta) noexcept {
  if (id < entries_.size()) entries_[id].value += delta;
}

void MetricsRegistry::set(MetricId id, double value) noexcept {
  if (id < entries_.size()) entries_[id].value = value;
}

void MetricsRegistry::observe(MetricId id, double value) noexcept {
  if (id < entries_.size() && entries_[id].hist != nullptr) {
    entries_[id].hist->add(value);
    entries_[id].value = entries_[id].hist->total_weight();
  }
}

const std::string& MetricsRegistry::name(MetricId id) const noexcept {
  static const std::string kEmpty;
  return id < entries_.size() ? entries_[id].name : kEmpty;
}

MetricKind MetricsRegistry::kind(MetricId id) const noexcept {
  return id < entries_.size() ? entries_[id].kind : MetricKind::kCounter;
}

double MetricsRegistry::value(MetricId id) const noexcept {
  return id < entries_.size() ? entries_[id].value : 0.0;
}

const util::Histogram* MetricsRegistry::histogram_data(
    MetricId id) const noexcept {
  return id < entries_.size() ? entries_[id].hist.get() : nullptr;
}

void MetricsRegistry::snapshot_minute(double minute) {
  Snapshot s;
  s.minute = minute;
  s.values.reserve(entries_.size());
  for (const auto& e : entries_) {
    s.values.push_back(e.kind == MetricKind::kHistogram ? 0.0 : e.value);
  }
  history_.push_back(std::move(s));
}

std::string MetricsRegistry::to_csv() const {
  std::string out = "minute";
  std::vector<std::size_t> cols;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].kind == MetricKind::kHistogram) continue;
    out += ',';
    out += entries_[i].name;
    cols.push_back(i);
  }
  out += '\n';
  for (const auto& s : history_) {
    append_number(out, s.minute);
    for (std::size_t i : cols) {
      out += ',';
      // Metrics registered after this snapshot backfill as zero.
      append_number(out, i < s.values.size() ? s.values[i] : 0.0);
    }
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"metrics\":[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& e = entries_[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    out += e.name;  // naming convention forbids characters needing escapes
    out += "\",\"kind\":\"";
    out += metric_kind_name(e.kind);
    out += "\",\"value\":";
    append_number(out, e.value);
    if (e.hist != nullptr) {
      out += ",\"lo\":";
      append_number(out, e.hist->bin_low(0));
      out += ",\"bin_width\":";
      append_number(out, e.hist->bin_width());
      out += ",\"underflow\":";
      append_number(out, e.hist->underflow());
      out += ",\"overflow\":";
      append_number(out, e.hist->overflow());
      out += ",\"buckets\":[";
      for (std::size_t b = 0; b < e.hist->bins(); ++b) {
        if (b > 0) out += ',';
        append_number(out, e.hist->bin_weight(b));
      }
      out += ']';
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

namespace {

bool write_text(const std::string& path, const std::string& text,
                const char* what) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    util::log_error(std::string("cannot open ") + path + " for " + what);
    return false;
  }
  f << text;
  return static_cast<bool>(f);
}

}  // namespace

bool MetricsRegistry::write_csv(const std::string& path) const {
  return write_text(path, to_csv(), "metrics CSV");
}

bool MetricsRegistry::write_json(const std::string& path) const {
  return write_text(path, to_json(), "metrics JSON");
}

void MetricsRegistry::save(snapshot::Writer& w) const {
  w.size(entries_.size());
  for (const Entry& e : entries_) {
    w.str(e.name);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.f64(e.value);
    w.boolean(e.hist != nullptr);
    if (e.hist != nullptr) snapshot::save_histogram(w, *e.hist);
  }
  w.size(history_.size());
  for (const Snapshot& s : history_) {
    w.f64(s.minute);
    snapshot::save_f64_vector(w, s.values);
  }
}

void MetricsRegistry::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxMetrics = 1u << 16;
  constexpr std::size_t kMaxRows = 1u << 26;
  const std::size_t count = r.size(kMaxMetrics);
  if (count != entries_.size()) {
    throw snapshot::SnapshotError(
        "metrics registry shape disagrees with snapshot (entry count)");
  }
  for (Entry& e : entries_) {
    const std::string name = r.str();
    const std::uint8_t kind = r.u8();
    if (name != e.name || kind != static_cast<std::uint8_t>(e.kind)) {
      throw snapshot::SnapshotError(
          "metrics registry shape disagrees with snapshot (metric '" + name +
          "')");
    }
    e.value = r.f64();
    const bool has_hist = r.boolean();
    if (has_hist != (e.hist != nullptr)) {
      throw snapshot::SnapshotError(
          "metrics registry shape disagrees with snapshot (histogram "
          "presence for '" + name + "')");
    }
    if (has_hist) snapshot::load_histogram(r, *e.hist);
  }
  history_.resize(r.size(kMaxRows));
  for (Snapshot& s : history_) {
    s.minute = r.f64();
    snapshot::load_f64_vector(r, s.values, kMaxMetrics);
  }
}

}  // namespace ddp::obs
