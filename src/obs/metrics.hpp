#pragma once

/// \file metrics.hpp
/// MetricsRegistry: named counters, gauges and fixed-bucket histograms,
/// registered by subsystem under a `subsystem.metric` naming convention
/// (e.g. "flow.traffic_messages", "defense.rounds", "fault.timeouts").
///
/// Scalar metrics are snapshotted per completed simulated minute into a
/// history that exports as CSV (one row per minute, one column per metric,
/// same shape as the figure CSVs) or JSON (final values plus histogram
/// buckets). Registration order is the export order, so a given program
/// always produces identically-shaped files.
///
/// Histograms reuse util::Histogram (fixed-width linear bins with
/// underflow/overflow), so quantiles and bucket boundaries behave exactly
/// like the rest of the metrics pipeline.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::obs {

/// Dense handle into a registry; stable for the registry's lifetime.
using MetricId = std::size_t;
inline constexpr MetricId kInvalidMetric =
    static_cast<MetricId>(-1);

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind kind) noexcept;

class MetricsRegistry {
 public:
  /// Register (or look up) a metric by name. Re-registering an existing
  /// name with the same kind returns the existing id, so subsystems can
  /// idempotently declare what they export.
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name, double lo, double hi,
                     std::size_t bins);

  /// Lookup without registering; kInvalidMetric when absent.
  MetricId find(std::string_view name) const noexcept;

  void add(MetricId id, double delta = 1.0) noexcept;   ///< counter += delta
  void set(MetricId id, double value) noexcept;         ///< gauge = value
  void observe(MetricId id, double value) noexcept;     ///< histogram sample

  std::size_t size() const noexcept { return entries_.size(); }
  const std::string& name(MetricId id) const noexcept;
  MetricKind kind(MetricId id) const noexcept;
  /// Current scalar value (counters/gauges; histograms: total weight).
  double value(MetricId id) const noexcept;
  /// Histogram payload; nullptr for scalar metrics.
  const util::Histogram* histogram_data(MetricId id) const noexcept;

  /// One per-minute snapshot row of every scalar metric (registration
  /// order). Histograms are cumulative and excluded from rows.
  struct Snapshot {
    double minute = 0.0;
    std::vector<double> values;
  };

  /// Record the current scalar values as the row for `minute`. Metrics
  /// registered after the first snapshot backfill earlier rows with 0.
  void snapshot_minute(double minute);
  const std::vector<Snapshot>& history() const noexcept { return history_; }

  /// CSV: header "minute,<name>,..." then one row per snapshot.
  std::string to_csv() const;
  /// JSON: {"metrics":[{"name":...,"kind":...,"value":...,
  ///        "buckets":[...](histograms only)},...]}
  std::string to_json() const;

  bool write_csv(const std::string& path) const;
  bool write_json(const std::string& path) const;

  /// Serialize every metric (name, kind, value, histogram payload) and
  /// the per-minute snapshot history into the writer's open section.
  void save(snapshot::Writer& w) const;

  /// Restore values saved by save() into an already-registered registry:
  /// the caller re-registers its metrics first (construction order), and
  /// load() verifies each stored entry matches by name and kind — a
  /// registry whose shape drifted from the snapshot is rejected rather
  /// than silently misaligned.
  void load(snapshot::Reader& r);

 private:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    double value = 0.0;
    std::unique_ptr<util::Histogram> hist;
  };

  MetricId register_entry(std::string_view name, MetricKind kind);

  std::vector<Entry> entries_;
  std::vector<Snapshot> history_;
};

}  // namespace ddp::obs
