#include "obs/profile.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace ddp::obs {

const char* category_name(EventCategory category) noexcept {
  switch (category) {
    case EventCategory::kGeneric: return "generic";
    case EventCategory::kTransmit: return "transmit";
    case EventCategory::kService: return "service";
    case EventCategory::kPeriodic: return "periodic";
    case EventCategory::kFault: return "fault";
    case EventCategory::kCount_: break;
  }
  return "?";
}

// ------------------------------------------------------- EngineProfiler

void EngineProfiler::record(std::uint8_t category, std::uint64_t nanos,
                            std::size_t pending, SimTime now) noexcept {
  const std::size_t c =
      category < kEventCategoryCount
          ? category
          : static_cast<std::size_t>(EventCategory::kGeneric);
  ++stats_[c].events;
  stats_[c].wall_nanos += nanos;
  if (pending > max_pending_) max_pending_ = pending;
  pending_sum_ += static_cast<double>(pending);
  if (!any_) {
    first_sim_t_ = now;
    any_ = true;
  }
  last_sim_t_ = now;
}

std::uint64_t EngineProfiler::total_events() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : stats_) n += s.events;
  return n;
}

std::uint64_t EngineProfiler::total_wall_nanos() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : stats_) n += s.wall_nanos;
  return n;
}

double EngineProfiler::mean_pending() const noexcept {
  const std::uint64_t n = total_events();
  return n > 0 ? pending_sum_ / static_cast<double>(n) : 0.0;
}

double EngineProfiler::events_per_sim_minute() const noexcept {
  const SimTime span = sim_span();
  return span > 0.0 ? static_cast<double>(total_events()) / to_minutes(span)
                    : 0.0;
}

double EngineProfiler::events_per_wall_second() const noexcept {
  const std::uint64_t nanos = total_wall_nanos();
  return nanos > 0 ? static_cast<double>(total_events()) /
                         (static_cast<double>(nanos) / 1e9)
                   : 0.0;
}

void EngineProfiler::reset() noexcept {
  for (auto& s : stats_) s = CategoryStats{};
  max_pending_ = 0;
  pending_sum_ = 0.0;
  first_sim_t_ = last_sim_t_ = 0.0;
  any_ = false;
}

std::string EngineProfiler::report() const {
  util::Table t({"category", "events", "wall_ms", "mean_us"});
  for (std::size_t c = 0; c < kEventCategoryCount; ++c) {
    const auto& s = stats_[c];
    if (s.events == 0) continue;
    t.row()
        .cell(std::string(category_name(static_cast<EventCategory>(c))))
        .cell(s.events)
        .cell(static_cast<double>(s.wall_nanos) / 1e6, 2)
        .cell(s.mean_us(), 2);
  }
  std::ostringstream os;
  t.print(os, "engine dispatch profile");
  os << "events " << total_events() << ", max pending " << max_pending_
     << ", mean pending " << mean_pending() << ", "
     << events_per_sim_minute() << " events/sim-min, "
     << events_per_wall_second() << " events/wall-s\n";
  return os.str();
}

void EngineProfiler::export_to(MetricsRegistry& registry) const {
  for (std::size_t c = 0; c < kEventCategoryCount; ++c) {
    const auto& s = stats_[c];
    if (s.events == 0) continue;
    const std::string base =
        std::string("engine.") + category_name(static_cast<EventCategory>(c));
    registry.set(registry.gauge(base + "_events"),
                 static_cast<double>(s.events));
    registry.set(registry.gauge(base + "_wall_ms"),
                 static_cast<double>(s.wall_nanos) / 1e6);
  }
  registry.set(registry.gauge("engine.max_pending"),
               static_cast<double>(max_pending_));
  registry.set(registry.gauge("engine.mean_pending"), mean_pending());
  registry.set(registry.gauge("engine.events_per_sim_minute"),
               events_per_sim_minute());
  registry.set(registry.gauge("engine.events_per_wall_second"),
               events_per_wall_second());
}

// -------------------------------------------------------- PhaseProfiler

std::size_t PhaseProfiler::phase(std::string name) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) return i;
  }
  PhaseStat p;
  p.name = std::move(name);
  phases_.push_back(std::move(p));
  return phases_.size() - 1;
}

void PhaseProfiler::add(std::size_t id, std::uint64_t nanos,
                        std::uint64_t calls) noexcept {
  if (id >= phases_.size()) return;
  phases_[id].wall_nanos += nanos;
  phases_[id].calls += calls;
}

std::uint64_t PhaseProfiler::total_wall_nanos() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : phases_) n += p.wall_nanos;
  return n;
}

std::string PhaseProfiler::report() const {
  const double total = static_cast<double>(total_wall_nanos());
  util::Table t({"phase", "calls", "wall_ms", "mean_us", "share_pct"});
  for (const auto& p : phases_) {
    const double mean_us =
        p.calls > 0 ? static_cast<double>(p.wall_nanos) /
                          static_cast<double>(p.calls) / 1e3
                    : 0.0;
    t.row()
        .cell(p.name)
        .cell(p.calls)
        .cell(static_cast<double>(p.wall_nanos) / 1e6, 2)
        .cell(mean_us, 2)
        .cell(total > 0.0 ? static_cast<double>(p.wall_nanos) / total * 100.0
                          : 0.0,
              1);
  }
  std::ostringstream os;
  t.print(os, "run phase profile (wall clock)");
  return os.str();
}

void PhaseProfiler::export_to(MetricsRegistry& registry) const {
  for (const auto& p : phases_) {
    registry.set(registry.gauge("profile." + p.name + "_ms"),
                 static_cast<double>(p.wall_nanos) / 1e6);
  }
}

}  // namespace ddp::obs
