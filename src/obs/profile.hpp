#pragma once

/// \file profile.hpp
/// Wall-clock profiling instruments for the simulation engines.
///
/// EngineProfiler hooks into sim::Engine: the engine times each dispatched
/// callback (steady_clock, only when a profiler is attached) and reports
/// it here under the event's category, together with the live-event gauge
/// at dispatch time. PhaseProfiler is the coarser scenario-level
/// instrument: named phases (tick stepping, each minute hook) accumulate
/// wall time through RAII scopes, answering "where did this run's real
/// seconds go".

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ddp::obs {

class MetricsRegistry;

/// Dispatch categories for engine events. A std::uint8_t tag travels with
/// every scheduled event; uncategorized events land in kGeneric.
enum class EventCategory : std::uint8_t {
  kGeneric = 0,   ///< untagged callbacks
  kTransmit,      ///< p2p descriptor deliveries
  kService,       ///< p2p queue service steps
  kPeriodic,      ///< periodic tasks
  kFault,         ///< fault-injection timeline events
  kCount_,
};

inline constexpr std::size_t kEventCategoryCount =
    static_cast<std::size_t>(EventCategory::kCount_);

const char* category_name(EventCategory category) noexcept;

/// Monotonic nanoseconds; the clock every profiling instrument shares.
inline std::uint64_t wall_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-category dispatch timing plus queue-depth gauges for one
/// sim::Engine. Attach with Engine::set_profiler; detach (nullptr) to
/// stop sampling.
class EngineProfiler {
 public:
  struct CategoryStats {
    std::uint64_t events = 0;
    std::uint64_t wall_nanos = 0;

    double mean_us() const noexcept {
      return events > 0 ? static_cast<double>(wall_nanos) /
                              static_cast<double>(events) / 1e3
                        : 0.0;
    }
  };

  /// Called by the engine after each dispatched callback.
  void record(std::uint8_t category, std::uint64_t nanos, std::size_t pending,
              SimTime now) noexcept;

  const CategoryStats& stats(EventCategory category) const noexcept {
    return stats_[static_cast<std::size_t>(category)];
  }
  std::uint64_t total_events() const noexcept;
  std::uint64_t total_wall_nanos() const noexcept;

  std::size_t max_pending() const noexcept { return max_pending_; }
  double mean_pending() const noexcept;

  /// Simulated span covered by the recorded events (seconds).
  SimTime sim_span() const noexcept {
    return last_sim_t_ > first_sim_t_ ? last_sim_t_ - first_sim_t_ : 0.0;
  }
  /// Events per simulated minute (throughput of the modelled system).
  double events_per_sim_minute() const noexcept;
  /// Events per wall second (throughput of the simulator itself).
  double events_per_wall_second() const noexcept;

  void reset() noexcept;

  /// Human-readable per-category table.
  std::string report() const;

  /// Export as `engine.*` gauges (events, wall_ms and mean_us per
  /// category, pending gauges, throughput).
  void export_to(MetricsRegistry& registry) const;

 private:
  CategoryStats stats_[kEventCategoryCount]{};
  std::size_t max_pending_ = 0;
  double pending_sum_ = 0.0;
  SimTime first_sim_t_ = 0.0;
  SimTime last_sim_t_ = 0.0;
  bool any_ = false;
};

/// Named wall-clock phases for scenario-level profiling. Phases register
/// once (stable ids, report in registration order) and accumulate through
/// Scope RAII guards or explicit add().
class PhaseProfiler {
 public:
  std::size_t phase(std::string name);

  void add(std::size_t id, std::uint64_t nanos,
           std::uint64_t calls = 1) noexcept;

  class Scope {
   public:
    Scope(PhaseProfiler& profiler, std::size_t id) noexcept
        : profiler_(profiler), id_(id), start_(wall_ns()) {}
    ~Scope() { profiler_.add(id_, wall_ns() - start_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfiler& profiler_;
    std::size_t id_;
    std::uint64_t start_;
  };

  struct PhaseStat {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t wall_nanos = 0;
  };

  const std::vector<PhaseStat>& phases() const noexcept { return phases_; }
  std::uint64_t total_wall_nanos() const noexcept;

  /// Human-readable table: phase, calls, total ms, mean us, share %.
  std::string report() const;

  /// Export as `profile.<phase>_ms` gauges.
  void export_to(MetricsRegistry& registry) const;

 private:
  std::vector<PhaseStat> phases_;
};

}  // namespace ddp::obs
