#include "obs/series.hpp"

#include <algorithm>

#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"

namespace ddp::obs {

SeriesStore::SeriesStore(const topology::Graph& graph,
                         std::size_t window_minutes)
    : graph_(&graph),
      window_(std::max<std::size_t>(1, window_minutes)),
      minutes_(window_, 0.0),
      peer_values_(graph.node_count() * window_, 0.0),
      edges_(graph.edge_index()) {}

std::size_t SeriesStore::depth() const noexcept {
  return recorded_ < window_ ? static_cast<std::size_t>(recorded_) : window_;
}

void SeriesStore::begin_minute(double minute) {
  head_ = static_cast<std::size_t>(recorded_ % window_);
  ++recorded_;
  minutes_[head_] = minute;
  const std::size_t peers = peer_values_.size() / window_;
  for (std::size_t p = 0; p < peers; ++p) {
    peer_values_[p * window_ + head_] = 0.0;
  }
  // Zero the live edges' column too: an edge not fed this minute must not
  // leak the value it held one full ring revolution ago.
  edges_.for_each([this](Slot, EdgeSeries& es) {
    if (!es.values.empty()) es.values[head_] = 0.0;
  });
}

void SeriesStore::set_peer(PeerId p, double value) noexcept {
  const std::size_t row = static_cast<std::size_t>(p) * window_;
  if (recorded_ == 0 || row + head_ >= peer_values_.size()) return;
  peer_values_[row + head_] = value;
}

void SeriesStore::set_edge(Slot slot, double value) {
  if (recorded_ == 0) return;
  EdgeSeries& es = edges_.touch(slot);
  if (es.values.empty()) es.values.assign(window_, 0.0);
  es.values[head_] = value;
}

double SeriesStore::peer_rate(PeerId p, std::size_t back) const noexcept {
  if (back >= depth()) return 0.0;
  const std::size_t row = static_cast<std::size_t>(p) * window_;
  if (row + window_ > peer_values_.size()) return 0.0;
  return peer_values_[row + col(back)];
}

double SeriesStore::edge_rate(Slot slot, std::size_t back) const noexcept {
  if (back >= depth()) return 0.0;
  const EdgeSeries* es = edges_.find(slot);
  if (es == nullptr || es->values.empty()) return 0.0;
  return es->values[col(back)];
}

double SeriesStore::minute_label(std::size_t back) const noexcept {
  if (back >= depth()) return -1.0;
  return minutes_[col(back)];
}

SeriesStore::Band SeriesStore::band_of(const double* row) const noexcept {
  Band band;
  band.samples = depth();
  if (band.samples == 0) return band;
  double sum = 0.0;
  band.min = band.max = row[col(0)];
  for (std::size_t back = 0; back < band.samples; ++back) {
    const double v = row[col(back)];
    band.min = std::min(band.min, v);
    band.max = std::max(band.max, v);
    sum += v;
  }
  band.mean = sum / static_cast<double>(band.samples);
  return band;
}

SeriesStore::Band SeriesStore::peer_band(PeerId p) const noexcept {
  const std::size_t row = static_cast<std::size_t>(p) * window_;
  if (row + window_ > peer_values_.size()) return Band{};
  return band_of(peer_values_.data() + row);
}

SeriesStore::Band SeriesStore::edge_band(Slot slot) const noexcept {
  const EdgeSeries* es = edges_.find(slot);
  if (es == nullptr || es->values.empty()) return Band{};
  return band_of(es->values.data());
}

void SeriesStore::save(snapshot::Writer& w) const {
  w.u64(static_cast<std::uint64_t>(window_));
  w.u64(recorded_);
  w.u64(static_cast<std::uint64_t>(peer_values_.size() / window_));
  snapshot::save_f64_vector(w, minutes_);
  snapshot::save_f64_vector(w, peer_values_);
  // Live edge rows, slot order (deterministic — for_each walks ascending
  // slots). Const-cast: EdgeMap only exposes a mutating for_each, but the
  // visitor does not write.
  auto& edges = const_cast<topology::EdgeMap<EdgeSeries>&>(edges_);
  std::uint64_t live_rows = 0;
  edges.for_each([&live_rows](Slot, EdgeSeries& es) {
    if (!es.values.empty()) ++live_rows;
  });
  w.u64(live_rows);
  edges.for_each([&w](Slot slot, EdgeSeries& es) {
    if (es.values.empty()) return;
    w.u32(slot);
    snapshot::save_f64_vector(w, es.values);
  });
}

void SeriesStore::load(snapshot::Reader& r) {
  const auto window = static_cast<std::size_t>(r.u64());
  if (window != window_) {
    throw snapshot::SnapshotError("series store window mismatch");
  }
  recorded_ = r.u64();
  head_ = recorded_ == 0 ? 0
                         : static_cast<std::size_t>((recorded_ - 1) % window_);
  const auto peers = static_cast<std::size_t>(r.u64());
  if (peers != peer_values_.size() / window_) {
    throw snapshot::SnapshotError("series store peer count mismatch");
  }
  snapshot::load_f64_vector(r, minutes_);
  snapshot::load_f64_vector(r, peer_values_);
  if (minutes_.size() != window_ || peer_values_.size() != peers * window_) {
    throw snapshot::SnapshotError("series store row shape mismatch");
  }
  const std::uint64_t live_rows = r.u64();
  for (std::uint64_t i = 0; i < live_rows; ++i) {
    const Slot slot = r.u32();
    if (!graph_->edge_index().live(slot)) {
      throw snapshot::SnapshotError(
          "series store references a dead edge slot");
    }
    EdgeSeries& es = edges_.touch(slot);
    snapshot::load_f64_vector(r, es.values);
    if (es.values.size() != window_) {
      throw snapshot::SnapshotError("series store edge row size mismatch");
    }
  }
}

}  // namespace ddp::obs
