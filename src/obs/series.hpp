#pragma once

/// \file series.hpp
/// Ring-buffered per-minute time series for every peer and every live
/// directed edge. The store keeps the last `window` minute columns of a
/// rate value (peers dense by id, edges keyed by the graph's directed-edge
/// slots, so a torn-down link retires its history by generation mismatch
/// and a re-established one starts clean). Forensics reads it to price an
/// attacker's pre-cut damage; the adaptive-CT work queries the per-edge
/// normal bands ({min, mean, max} over the retained window) it needs to
/// re-estimate thresholds. Feeding one minute is a linear sweep — O(peers
/// + live slots) — and the store never observes the engines itself: the
/// scenario runtime pushes settled minute totals via begin_minute /
/// set_peer / set_edge.

#include <cstdint>
#include <vector>

#include "topology/edge_index.hpp"
#include "topology/graph.hpp"
#include "util/types.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::obs {

class SeriesStore {
 public:
  using Slot = topology::EdgeIndex::Slot;

  /// Min/mean/max of the retained samples of one row (zeros included:
  /// a silent minute is a real observation).
  struct Band {
    double min = 0.0;
    double mean = 0.0;
    double max = 0.0;
    std::size_t samples = 0;
  };

  /// Rows attach to `graph`'s peers and edge slots; `window_minutes` is
  /// the ring depth (>= 1).
  SeriesStore(const topology::Graph& graph, std::size_t window_minutes);

  std::size_t window() const noexcept { return window_; }
  /// Minute columns ever recorded (monotonic; only the last window()
  /// remain addressable).
  std::uint64_t minutes_recorded() const noexcept { return recorded_; }
  /// Columns currently retained: min(minutes_recorded, window).
  std::size_t depth() const noexcept;

  /// Open the column for `minute`: every peer value resets to 0 and every
  /// live edge's column resets to 0 until set_peer / set_edge overwrite
  /// them. Must be called once per minute, before any set_* for it.
  void begin_minute(double minute);
  void set_peer(PeerId p, double value) noexcept;
  void set_edge(Slot slot, double value);

  /// Value `back` columns before the latest (0 = latest). Out-of-range
  /// lookups — back >= depth(), dead/never-touched slots — read 0.
  double peer_rate(PeerId p, std::size_t back = 0) const noexcept;
  double edge_rate(Slot slot, std::size_t back = 0) const noexcept;
  /// Minute label of the column `back` columns before the latest.
  double minute_label(std::size_t back = 0) const noexcept;

  Band peer_band(PeerId p) const noexcept;
  Band edge_band(Slot slot) const noexcept;

  /// Serialize the ring (labels, peer rows, live edge rows in slot order)
  /// into the writer's open section. The graph is saved by its owner;
  /// load() must run after it has been restored.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save(). Throws SnapshotError when the stored
  /// shape (window, peer count) or an edge slot disagrees with the
  /// restored graph.
  void load(snapshot::Reader& r);

 private:
  struct EdgeSeries {
    std::vector<double> values;  ///< sized to window_ on first touch
  };

  std::size_t col(std::size_t back) const noexcept {
    return (static_cast<std::size_t>(recorded_) - 1 - back) % window_;
  }
  Band band_of(const double* row) const noexcept;

  const topology::Graph* graph_;
  std::size_t window_;
  std::uint64_t recorded_ = 0;
  std::size_t head_ = 0;              ///< column being written
  std::vector<double> minutes_;       ///< ring of minute labels
  std::vector<double> peer_values_;   ///< node_count x window, row-major
  topology::EdgeMap<EdgeSeries> edges_;
};

}  // namespace ddp::obs
