#include "obs/trace.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace ddp::obs {

namespace {

/// Deterministic number rendering (matches the metrics exports): integral
/// values print as integers, the rest with round-trippable precision.
void append_number(std::string& out, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9.007199254740992e15 && v <= 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string to_jsonl(const TraceEvent& event) {
  std::string out;
  out.reserve(96);
  out += "{\"t\":";
  append_number(out, event.t);
  out += ",\"type\":\"";
  out += event_name(event.type);
  out += '"';
  if (event.a != kInvalidPeer) {
    out += ",\"a\":";
    append_number(out, static_cast<double>(event.a));
  }
  if (event.b != kInvalidPeer) {
    out += ",\"b\":";
    append_number(out, static_cast<double>(event.b));
  }
  if (event.n_fields > 0) {
    out += ",\"kv\":{";
    for (std::uint8_t i = 0; i < event.n_fields; ++i) {
      if (i > 0) out += ',';
      append_json_string(out, event.fields[i].key);
      out += ':';
      append_number(out, event.fields[i].value);
    }
    out += '}';
  }
  if (event.has_note()) {
    out += ",\"note\":";
    append_json_string(out, event.note);
  }
  out += '}';
  return out;
}

// ---------------------------------------------------------------- ring

RingBufferSink::RingBufferSink(std::size_t capacity)
    : buffer_(capacity > 0 ? capacity : 1) {}

void RingBufferSink::on_event(const TraceEvent& event) {
  buffer_[head_] = event;
  head_ = (head_ + 1) % buffer_.size();
  ++total_;
}

std::size_t RingBufferSink::size() const noexcept {
  return total_ < buffer_.size() ? static_cast<std::size_t>(total_)
                                 : buffer_.size();
}

const TraceEvent& RingBufferSink::at(std::size_t i) const noexcept {
  const std::size_t n = size();
  // Oldest retained event sits at head_ once the buffer has wrapped.
  const std::size_t start = total_ > n ? head_ : 0;
  return buffer_[(start + i) % buffer_.size()];
}

std::vector<TraceEvent> RingBufferSink::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(at(i));
  return out;
}

void RingBufferSink::clear() noexcept {
  head_ = 0;
  total_ = 0;
}

// --------------------------------------------------------------- jsonl

void JsonlSink::on_event(const TraceEvent& event) {
  if (os_ == nullptr) return;
  *os_ << to_jsonl(event) << '\n';
  ++lines_;
}

void JsonlSink::flush() {
  if (os_ != nullptr) os_->flush();
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : file_(path, std::ios::binary) {
  if (!file_) {
    util::log_error("cannot open trace file " + path);
  }
  rebind(file_);
}

JsonlFileSink::~JsonlFileSink() { flush(); }

// ------------------------------------------------------------ counting

CountingSink::CountingSink(MetricsRegistry& registry) : registry_(registry) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    ids_[i] = registry_.counter(std::string("trace.") +
                                event_name(static_cast<EventType>(i)));
  }
}

void CountingSink::on_event(const TraceEvent& event) {
  const auto i = static_cast<std::size_t>(event.type);
  if (i >= kEventTypeCount) return;
  ++counts_[i];
  ++total_;
  registry_.add(ids_[i]);
}

std::uint64_t CountingSink::count(EventType type) const noexcept {
  const auto i = static_cast<std::size_t>(type);
  return i < kEventTypeCount ? counts_[i] : 0;
}

// -------------------------------------------------------------- fanout

void FanoutSink::add(TraceSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void FanoutSink::on_event(const TraceEvent& event) {
  for (TraceSink* s : sinks_) s->on_event(event);
}

void FanoutSink::flush() {
  for (TraceSink* s : sinks_) s->flush();
}

// ---------------------------------------------------------- log bridge

void install_log_bridge(TraceSink* sink) {
  if (sink == nullptr) {
    util::set_log_hook({});
    return;
  }
  util::set_log_hook([sink](util::LogLevel level, std::string_view message) {
    TraceEvent e;
    e.t = -1.0;  // wall layer: log lines carry no sim clock
    e.type = EventType::kLog;
    e.add_field("level", static_cast<double>(static_cast<int>(level)));
    e.set_note(message);
    sink->on_event(e);
  });
}

}  // namespace ddp::obs
