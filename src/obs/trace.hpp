#pragma once

/// \file trace.hpp
/// Trace sinks and the per-subsystem Tracer handle.
///
/// Each instrumented object owns a Tracer — a single sink pointer, null by
/// default. The DDP_TRACE macro compiles to one branch on that pointer, so
/// an untraced run pays nothing beyond the null check and consumes no
/// random draws (tracing only observes). Sinks are installed per run by
/// whoever owns the instrumented objects (the scenario runner, a test, a
/// tool); nothing is process-global, so parallel trials stay independent
/// and two runs with the same seed produce byte-identical traces.
///
/// Provided sinks:
///   RingBufferSink — fixed-capacity in-memory tail, wraparound overwrite;
///   JsonlSink      — one JSON object per event to a caller-owned stream;
///   JsonlFileSink  — JsonlSink that owns its file;
///   CountingSink   — per-event-type counters in a MetricsRegistry;
///   FanoutSink     — forwards to several sinks (e.g. file + counters).

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace ddp::obs {

class MetricsRegistry;

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// The handle an instrumented subsystem owns. Copyable value type; binding
/// is per object, so the same run may trace some engines and not others.
class Tracer {
 public:
  void bind(TraceSink* sink) noexcept { sink_ = sink; }
  TraceSink* sink() const noexcept { return sink_; }
  bool on() const noexcept { return sink_ != nullptr; }

  void emit(const TraceEvent& event) const {
    if (sink_ != nullptr) sink_->on_event(event);
  }

  /// Builder-style emission; only called behind DDP_TRACE's branch.
  void emit(EventType type, SimTime t, PeerId a = kInvalidPeer,
            PeerId b = kInvalidPeer,
            std::initializer_list<TraceEvent::Field> fields = {},
            std::string_view note = {}) const {
    TraceEvent e;
    e.t = t;
    e.type = type;
    e.a = a;
    e.b = b;
    for (const auto& f : fields) e.add_field(f.key, f.value);
    if (!note.empty()) e.set_note(note);
    emit(e);
  }

 private:
  TraceSink* sink_ = nullptr;
};

/// Near-zero-cost emission: one branch on the bound sink pointer when
/// tracing is off; arguments are not evaluated on the cold path.
#define DDP_TRACE(tracer, ...)                            \
  do {                                                    \
    if ((tracer).on()) (tracer).emit(__VA_ARGS__);        \
  } while (0)

/// Fixed-capacity in-memory tail of the event stream. When full, the
/// oldest event is overwritten (flight-recorder semantics).
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void on_event(const TraceEvent& event) override;

  std::size_t capacity() const noexcept { return buffer_.size(); }
  /// Events currently retained (<= capacity).
  std::size_t size() const noexcept;
  /// Events ever seen (retained + overwritten).
  std::uint64_t total() const noexcept { return total_; }

  /// i-th retained event, oldest first (0 <= i < size()).
  const TraceEvent& at(std::size_t i) const noexcept;

  /// Copy of the retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  void clear() noexcept;

 private:
  std::vector<TraceEvent> buffer_;
  std::size_t head_ = 0;       ///< next write position
  std::uint64_t total_ = 0;
};

/// Serialize one event as the canonical JSONL object:
///   {"t":<sec>,"type":"<name>","a":<id>,"b":<id>,
///    "kv":{"<key>":<value>,...},"note":"<text>"}
/// "a"/"b" are omitted when invalid, "kv" when empty, "note" when unset.
/// Formatting is locale-independent and deterministic, so identical event
/// streams serialize to identical bytes.
std::string to_jsonl(const TraceEvent& event);

/// Streams every event as one JSONL line to a caller-owned ostream.
class JsonlSink : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(&os) {}

  void on_event(const TraceEvent& event) override;
  void flush() override;

  std::uint64_t lines() const noexcept { return lines_; }

 protected:
  JsonlSink() = default;
  void rebind(std::ostream& os) noexcept { os_ = &os; }

 private:
  std::ostream* os_ = nullptr;
  std::uint64_t lines_ = 0;
};

/// JsonlSink that owns its output file.
class JsonlFileSink final : public JsonlSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  bool ok() const noexcept { return static_cast<bool>(file_); }

 private:
  std::ofstream file_;
};

/// Counts events per type into `trace.<event_name>` counters of a
/// MetricsRegistry, so the minute-snapshot pipeline sees trace activity.
class CountingSink final : public TraceSink {
 public:
  explicit CountingSink(MetricsRegistry& registry);

  void on_event(const TraceEvent& event) override;

  std::uint64_t count(EventType type) const noexcept;
  std::uint64_t total() const noexcept { return total_; }

 private:
  MetricsRegistry& registry_;
  std::array<std::size_t, kEventTypeCount> ids_{};
  std::array<std::uint64_t, kEventTypeCount> counts_{};
  std::uint64_t total_ = 0;
};

/// Forwards each event to every added sink, in add() order.
class FanoutSink final : public TraceSink {
 public:
  void add(TraceSink* sink);
  void on_event(const TraceEvent& event) override;
  void flush() override;

 private:
  std::vector<TraceSink*> sinks_;
};

/// Mirror every util::log line above the threshold into `sink` as a kLog
/// event (t = -1: the wall layer has no sim clock). Installs the process
/// log hook; pass nullptr to uninstall. The sink must outlive the bridge.
void install_log_bridge(TraceSink* sink);

}  // namespace ddp::obs
