#include "obs/trace_read.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <istream>
#include <map>

namespace ddp::obs {

namespace {

/// Minimal recursive-descent scanner over the canonical schema. Not a
/// general JSON parser: object keys are unescaped strings, values are
/// numbers, strings, or (for "kv" only) one nested flat object.
struct Scanner {
  std::string_view s;
  std::size_t i = 0;
  std::string error;

  bool fail(std::string message) {
    if (error.empty()) error = std::move(message);
    return false;
  }
  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }
  bool expect(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++i;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\') {
        if (i >= s.size()) return fail("dangling escape");
        const char e = s[i++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (i + 4 > s.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s[i++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            c = static_cast<char>(code & 0x7f);
            break;
          }
          default:
            return fail("unknown escape");
        }
      }
      out += c;
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;  // closing quote
    return true;
  }

  bool parse_number(double& out) {
    skip_ws();
    const char* begin = s.data() + i;
    char* end = nullptr;
    errno = 0;
    out = std::strtod(begin, &end);
    if (end == begin || errno == ERANGE) return fail("bad number");
    i += static_cast<std::size_t>(end - begin);
    return true;
  }
};

bool to_peer(double v, PeerId& out) {
  if (v < 0.0 || v != static_cast<double>(static_cast<PeerId>(v))) {
    return false;
  }
  out = static_cast<PeerId>(v);
  return true;
}

}  // namespace

std::optional<double> TraceRecord::field(std::string_view key) const noexcept {
  for (const auto& [k, v] : kv) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<TraceRecord> parse_trace_line(std::string_view line,
                                            std::string* error) {
  Scanner sc{line};
  TraceRecord r;
  bool have_t = false;
  bool have_type = false;

  const auto fail = [&](const std::string& m) -> std::optional<TraceRecord> {
    if (error != nullptr) *error = m.empty() ? sc.error : m;
    return std::nullopt;
  };

  if (!sc.expect('{')) return fail("");
  bool first = true;
  while (!sc.peek('}')) {
    if (!first && !sc.expect(',')) return fail("");
    first = false;
    std::string key;
    if (!sc.parse_string(key) || !sc.expect(':')) return fail("");
    if (key == "t") {
      if (!sc.parse_number(r.t)) return fail("");
      have_t = true;
    } else if (key == "type") {
      if (!sc.parse_string(r.type)) return fail("");
      have_type = true;
    } else if (key == "a" || key == "b") {
      double v = 0.0;
      if (!sc.parse_number(v)) return fail("");
      PeerId p = kInvalidPeer;
      if (!to_peer(v, p)) return fail("field \"" + key + "\" is not a peer id");
      (key == "a" ? r.a : r.b) = p;
    } else if (key == "kv") {
      if (!sc.expect('{')) return fail("");
      bool kv_first = true;
      while (!sc.peek('}')) {
        if (!kv_first && !sc.expect(',')) return fail("");
        kv_first = false;
        std::string k;
        double v = 0.0;
        if (!sc.parse_string(k) || !sc.expect(':') || !sc.parse_number(v)) {
          return fail("");
        }
        r.kv.emplace_back(std::move(k), v);
      }
      sc.expect('}');
    } else if (key == "note") {
      if (!sc.parse_string(r.note)) return fail("");
    } else {
      return fail("unknown key \"" + key + "\"");
    }
  }
  sc.expect('}');
  sc.skip_ws();
  if (sc.i != line.size()) return fail("trailing garbage after object");
  if (!have_t) return fail("missing required key \"t\"");
  if (!have_type) return fail("missing required key \"type\"");
  r.known = event_from_name(r.type);
  return r;
}

std::vector<TraceRecord> validate_trace(std::istream& in,
                                        std::vector<SchemaError>& errors,
                                        std::size_t max_errors) {
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t line_no = 0;
  double last_sim_t = 0.0;
  bool saw_sim_event = false;
  while (std::getline(in, line)) {
    ++line_no;
    // A final line without its trailing newline is the signature of a
    // process that died mid-write: the record may parse, but the file is
    // torn. JSONL sinks always terminate every event with '\n'.
    if (in.eof() && !line.empty()) {
      if (errors.size() < max_errors) {
        errors.push_back(SchemaError{
            line_no, "final line is truncated (no trailing newline; "
                     "interrupted write?)"});
      }
    }
    if (line.empty()) continue;
    std::string why;
    auto rec = parse_trace_line(line, &why);
    const auto report = [&](std::string message) {
      if (errors.size() < max_errors) {
        errors.push_back(SchemaError{line_no, std::move(message)});
      }
    };
    if (!rec) {
      report(why);
      continue;
    }
    if (!rec->known) {
      report("unknown event type \"" + rec->type + "\"");
    } else if (rec->t >= 0.0) {
      // Sim-layer events must be time-ordered: sinks observe the engine's
      // single-threaded execution, so out-of-order stamps mean a stitched
      // or hand-altered trace.
      if (saw_sim_event && rec->t < last_sim_t) {
        report("sim time went backwards");
      }
      last_sim_t = rec->t;
      saw_sim_event = true;
    }
    records.push_back(std::move(*rec));
  }
  return records;
}

std::vector<TraceRecord> read_trace_records(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto rec = parse_trace_line(line)) records.push_back(std::move(*rec));
  }
  return records;
}

bool TraceFilter::matches(const TraceRecord& r) const noexcept {
  if (peer && r.a != *peer && r.b != *peer) return false;
  if (type && (!r.known || *r.known != *type)) return false;
  if (t_min >= 0.0 && r.t < t_min) return false;
  if (t_max >= 0.0 && r.t > t_max) return false;
  return true;
}

TraceSummary summarize_trace(const std::vector<TraceRecord>& records) {
  TraceSummary s;
  std::map<PeerId, double> first_flag;  ///< suspect -> first flag time
  std::map<PeerId, double> first_cut;
  bool first_seen = false;
  for (const auto& r : records) {
    ++s.records;
    if (r.t < 0.0) {
      // Wall-layer record (log bridge): it has no sim clock, so it must
      // not distort the sim-time range.
      ++s.wall_logs;
    } else {
      if (!first_seen || r.t < s.first_t) s.first_t = r.t;
      if (!first_seen || r.t > s.last_t) s.last_t = r.t;
      first_seen = true;
    }
    if (!r.known) {
      ++s.unknown_types;
      continue;
    }
    ++s.by_type[static_cast<std::size_t>(*r.known)];
    switch (*r.known) {
      case EventType::kSuspectFlagged:
        first_flag.try_emplace(r.a, r.t);
        break;
      case EventType::kSuspectCut:
        first_cut.try_emplace(r.a, r.t);
        break;
      case EventType::kListViolation:
        ++s.list_violations;
        break;
      case EventType::kFaultCrash:
      case EventType::kFaultStall:
      case EventType::kFaultResume:
        ++s.fault_events;
        break;
      case EventType::kTrafficTimeout:
        ++s.control_timeouts;
        break;
      case EventType::kTrafficRetry:
        ++s.control_retries;
        break;
      default:
        break;
    }
  }
  s.suspects_flagged = first_flag.size();
  s.suspects_cut = first_cut.size();
  double lag_sum = 0.0;
  std::size_t lag_n = 0;
  for (const auto& [suspect, cut_t] : first_cut) {
    const auto it = first_flag.find(suspect);
    if (it == first_flag.end()) continue;
    lag_sum += cut_t - it->second;
    ++lag_n;
  }
  if (lag_n > 0) {
    s.mean_flag_to_cut_minutes =
        to_minutes(lag_sum / static_cast<double>(lag_n));
  }
  return s;
}

FloodTree build_flood_tree(const std::vector<TraceRecord>& records,
                           QueryId query) {
  FloodTree tree;
  tree.query = query;
  const double want = static_cast<double>(query);
  std::map<PeerId, std::size_t> index;  ///< peer -> node position

  // A peer enters the tree the first time it emits for this query; later
  // events never re-parent it (the first arrival wins the duplicate race,
  // exactly as the seen-table does in the engine).
  const auto ensure = [&](PeerId peer, PeerId parent, std::uint32_t hops,
                          double t) -> FloodTreeNode& {
    const auto [it, fresh] = index.try_emplace(peer, tree.nodes.size());
    if (fresh) {
      FloodTreeNode node;
      node.peer = peer;
      node.parent = parent;
      node.hops = hops;
      node.first_t = t;
      tree.nodes.push_back(node);
      tree.depth = std::max(tree.depth, hops);
    }
    return tree.nodes[it->second];
  };

  for (const auto& r : records) {
    if (!r.known) continue;
    const auto qid = r.field("query");
    if (!qid || *qid != want) continue;
    tree.found = true;
    switch (*r.known) {
      case EventType::kQueryIssued: {
        tree.origin = r.a;
        tree.issued_t = r.t;
        tree.object = r.field("object").value_or(-1.0);
        tree.attack = r.field("attack").value_or(0.0) != 0.0;
        ensure(r.a, kInvalidPeer, 0, r.t);
        break;
      }
      case EventType::kQueryForwarded: {
        ++tree.forwards;
        const double parent = r.field("parent").value_or(-1.0);
        const auto hops =
            static_cast<std::uint32_t>(r.field("hops").value_or(0.0));
        ensure(r.a,
               parent < 0.0 ? kInvalidPeer : static_cast<PeerId>(parent),
               hops, r.t);
        break;
      }
      case EventType::kQueryHit: {
        ++tree.hits;
        const double parent = r.field("parent").value_or(-1.0);
        // hit/expired payloads carry the *received* descriptor's hop
        // count; the emitting peer sits one hop deeper (forwarded events
        // carry the sender's own depth directly).
        const auto hops =
            static_cast<std::uint32_t>(r.field("hops").value_or(0.0)) + 1;
        FloodTreeNode& node = ensure(
            r.a, parent < 0.0 ? kInvalidPeer : static_cast<PeerId>(parent),
            hops, r.t);
        node.hit = true;
        break;
      }
      case EventType::kQueryExpired: {
        const auto hops =
            static_cast<std::uint32_t>(r.field("hops").value_or(0.0)) + 1;
        FloodTreeNode& node = ensure(r.a, r.b, hops, r.t);
        node.expired = true;
        break;
      }
      case EventType::kQueryDuplicate:
        ++tree.duplicates;
        break;
      case EventType::kQueryDropped:
        ++tree.drops;
        break;
      case EventType::kHitDelivered: {
        ++tree.delivered;
        const double latency = r.field("latency").value_or(-1.0);
        if (tree.first_delivery_latency < 0.0 ||
            (latency >= 0.0 && latency < tree.first_delivery_latency)) {
          tree.first_delivery_latency = latency;
        }
        break;
      }
      default:
        break;
    }
  }

  // Wire up child lists (ascending peer id: index is an ordered map).
  for (const auto& [peer, pos] : index) {
    const PeerId parent = tree.nodes[pos].parent;
    if (parent == kInvalidPeer) continue;
    const auto it = index.find(parent);
    if (it != index.end()) tree.nodes[it->second].children.push_back(pos);
  }
  return tree;
}

}  // namespace ddp::obs
