#pragma once

/// \file trace_read.hpp
/// Reading side of the trace plane: a parser for the canonical JSONL
/// schema emitted by JsonlSink (and nothing more general — the grammar is
/// exactly what to_jsonl() produces), plus the filter / summary helpers
/// behind trace_tool's inspect, summary and validate modes.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.hpp"

namespace ddp::obs {

/// One parsed trace line. Field keys are owned strings here (the reading
/// side has no string-literal guarantee).
struct TraceRecord {
  double t = 0.0;
  std::string type;                ///< raw type name from the line
  std::optional<EventType> known;  ///< resolved when the name is known
  PeerId a = kInvalidPeer;
  PeerId b = kInvalidPeer;
  std::vector<std::pair<std::string, double>> kv;
  std::string note;

  /// kv lookup; nullopt when the key is absent.
  std::optional<double> field(std::string_view key) const noexcept;
};

/// Parse one JSONL line. On failure returns nullopt and, when `error` is
/// non-null, stores a human-readable reason.
std::optional<TraceRecord> parse_trace_line(std::string_view line,
                                            std::string* error = nullptr);

/// Schema violations found by validate_trace.
struct SchemaError {
  std::size_t line = 0;  ///< 1-based line number
  std::string message;
};

/// Schema-check an entire JSONL stream: every non-empty line must parse,
/// name a known event type, and carry non-decreasing sim time among
/// sim-layer events (t >= 0). Returns the records that parsed; errors (up
/// to `max_errors`) are appended to `errors`.
std::vector<TraceRecord> validate_trace(std::istream& in,
                                        std::vector<SchemaError>& errors,
                                        std::size_t max_errors = 20);

/// Read a JSONL stream leniently (skip unparseable lines).
std::vector<TraceRecord> read_trace_records(std::istream& in);

/// Predicate bundle for trace_tool's inspect mode.
struct TraceFilter {
  std::optional<PeerId> peer;      ///< matches either endpoint
  std::optional<EventType> type;
  double t_min = -1.0;             ///< inclusive; < 0 = unbounded
  double t_max = -1.0;             ///< inclusive; < 0 = unbounded

  bool matches(const TraceRecord& r) const noexcept;
};

/// Per-run digest of a trace: totals by type plus the defense storyline
/// (how many suspects were flagged, judged and cut, and how fast).
struct TraceSummary {
  std::uint64_t records = 0;
  std::array<std::uint64_t, kEventTypeCount> by_type{};
  double first_t = 0.0;   ///< sim-layer (t >= 0) events only
  double last_t = 0.0;    ///< sim-layer (t >= 0) events only
  std::uint64_t unknown_types = 0;
  std::uint64_t wall_logs = 0;  ///< wall-layer records (t < 0, e.g. kLog)

  // Defense storyline.
  std::uint64_t suspects_flagged = 0;   ///< distinct flagged peers
  std::uint64_t suspects_cut = 0;       ///< distinct cut peers
  std::uint64_t list_violations = 0;
  double mean_flag_to_cut_minutes = -1.0;  ///< -1 when nothing was cut

  // Fault storyline.
  std::uint64_t fault_events = 0;
  std::uint64_t control_timeouts = 0;
  std::uint64_t control_retries = 0;

  std::uint64_t count(EventType type) const noexcept {
    return by_type[static_cast<std::size_t>(type)];
  }
};

TraceSummary summarize_trace(const std::vector<TraceRecord>& records);

/// One peer's role in a query's flood tree.
struct FloodTreeNode {
  PeerId peer = kInvalidPeer;
  PeerId parent = kInvalidPeer;        ///< kInvalidPeer at the origin
  std::uint32_t hops = 0;              ///< depth below the origin
  double first_t = -1.0;               ///< first event this peer emitted
  bool hit = false;                    ///< answered with a QueryHit
  bool expired = false;                ///< terminal leaf (no forward)
  std::vector<std::size_t> children;   ///< node indices, ascending peer id
};

/// A query's flood tree, reconstructed from the `query`/`parent` payload
/// fields of the packet-engine events (trace_tool tree).
struct FloodTree {
  QueryId query = 0;
  bool found = false;                  ///< any event carried this id
  PeerId origin = kInvalidPeer;        ///< from kQueryIssued (if present)
  double issued_t = -1.0;
  double object = -1.0;
  bool attack = false;
  std::vector<FloodTreeNode> nodes;    ///< [0] = origin when found

  // Aggregates over the query's whole event stream.
  std::uint64_t forwards = 0;          ///< transmission attempts
  std::uint64_t duplicates = 0;        ///< seen-GUID drops
  std::uint64_t drops = 0;             ///< queue-overflow drops
  std::uint64_t hits = 0;
  std::uint64_t delivered = 0;         ///< hits that reached the origin
  double first_delivery_latency = -1.0;
  std::uint32_t depth = 0;             ///< max hops over all nodes
};

/// Rebuild one query's flood tree from parsed trace records. Every peer
/// that emitted a forwarded/hit/expired event for the query becomes a
/// node; parents come from the events' `parent` field; duplicate and
/// overflow drops are tallied but do not create nodes (the descriptor
/// died there).
FloodTree build_flood_tree(const std::vector<TraceRecord>& records,
                           QueryId query);

}  // namespace ddp::obs
