#pragma once

/// \file config.hpp
/// Parameters of the packet-level Gnutella engine. Defaults follow the
/// paper's calibration (Sec. 2.3): a good peer processes ~10,000 queries
/// per minute, a compromised peer can source ~20,000 per minute (29,000
/// when only reading a log and pushing bytes), and drops begin once the
/// arrival rate exceeds the service rate plus queueing headroom (~15,000
/// per minute in the paper's Figure 5 testbed).

#include <cstddef>

#include "util/types.hpp"

namespace ddp::p2p {

struct P2pConfig {
  /// Initial TTL of query descriptors (Gnutella default).
  std::uint8_t ttl = 7;

  /// Service capacity of a good peer: queries looked-up-and-forwarded per
  /// minute (paper Sec. 2.3: ~10,000/min on the GX3 testbed).
  double capacity_per_minute = 10000.0;

  /// Bounded input queue, in messages. 5,000 messages at a 10,000/min
  /// service rate gives the ~30 s of burst absorption implied by the
  /// paper's observed 15,000/min drop onset.
  std::size_t queue_limit = 5000;

  /// One-way overlay-link latency per hop, seconds.
  double hop_latency = 0.08;

  /// Rate at which a good peer issues fresh queries (Sec. 3.5: 0.3/min,
  /// derived from [16]: 1,146,782 queries from 12,805 peers in 5 h).
  double good_issue_per_minute = 0.3;

  /// Maximum hits requested before a peer stops forwarding a query it
  /// originated (kept large: floods run to TTL exhaustion as in the paper).
  std::size_t max_results = 50;

  /// Seen-GUID table pruning horizon, seconds (memory bound).
  double seen_horizon = 600.0;

  /// Query-outcome retention horizon, seconds. A hit can only route back
  /// while the per-peer seen tables still hold its GUID, so an outcome
  /// older than the seen horizon can never change; records past this
  /// horizon are pruned (aggregate totals stay exact, and outcomes()
  /// keeps only the still-mutable tail). Non-positive keeps every record.
  double outcome_horizon = 900.0;
};

}  // namespace ddp::p2p
