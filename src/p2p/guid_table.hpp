#pragma once

/// \file guid_table.hpp
/// Flat open-addressed GUID dedup table: the per-peer "seen descriptors"
/// structure on the packet engine's hottest path (every query arrival
/// probes it; every duplicate drop is decided by it). Replaces an
/// `unordered_map<net::Guid, pair<PeerId, SimTime>>` with linear probing
/// over a single contiguous slot array — one hash, no buckets, no
/// per-node allocation, and the 16-byte key sits next to its value so a
/// probe costs at most a couple of cache lines.
///
/// Deletion model: there are no tombstones. Entries leave the table only
/// through epoch compaction — prune(cutoff) rebuilds the table keeping
/// entries at least as new as the cutoff — or clear(). That matches how
/// the engine uses the dedup horizon (amortized prune every TTL/4) and is
/// what bounds the table's growth within a run: after each compaction the
/// capacity is re-sized to the surviving population.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/guid.hpp"
#include "util/types.hpp"

namespace ddp::p2p {

class GuidTable {
 public:
  struct Entry {
    net::Guid guid{};
    SimTime when = 0.0;
    PeerId from = kInvalidPeer;
    bool used = false;
  };

  /// Pointer to the entry for `g`, or nullptr if absent. Stable only
  /// until the next mutating call.
  Entry* find(const net::Guid& g) noexcept {
    if (size_ == 0) return nullptr;
    std::size_t i = net::GuidHash{}(g) & mask_;
    while (slots_[i].used) {
      if (slots_[i].guid == g) return &slots_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const Entry* find(const net::Guid& g) const noexcept {
    return const_cast<GuidTable*>(this)->find(g);
  }

  /// Insert or overwrite the entry for `g`.
  void upsert(const net::Guid& g, PeerId from, SimTime when) {
    if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t i = net::GuidHash{}(g) & mask_;
    while (slots_[i].used) {
      if (slots_[i].guid == g) {
        slots_[i].from = from;
        slots_[i].when = when;
        return;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = Entry{g, when, from, true};
    ++size_;
  }

  /// Epoch compaction: drop every entry strictly older than `cutoff` and
  /// shrink the capacity to fit the survivors. This is the only way
  /// entries age out (no tombstones), so calling it on the dedup-TTL
  /// epoch bounds the table within a run.
  void prune(SimTime cutoff) {
    if (size_ == 0) return;
    std::vector<Entry> old;
    old.swap(slots_);
    std::size_t survivors = 0;
    for (const Entry& e : old) {
      if (e.used && e.when >= cutoff) ++survivors;
    }
    size_ = 0;
    rehash(capacity_for(survivors));
    for (const Entry& e : old) {
      if (e.used && e.when >= cutoff) upsert(e.guid, e.from, e.when);
    }
  }

  void clear() noexcept {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  std::size_t size() const noexcept { return size_; }

  /// Raw slot array (snapshot support). The exact probe layout matters:
  /// prune() re-inserts survivors in slot order, so future layouts — and
  /// with them bit-identical replay — depend on the current one.
  const std::vector<Entry>& raw_slots() const noexcept { return slots_; }

  /// Adopt a slot array previously obtained from raw_slots(). Returns
  /// false when the array is not a valid open-addressed table: capacity
  /// not zero or a power of two, or a used entry unreachable from its
  /// probe home (a corrupt snapshot would otherwise lose dedup entries
  /// silently).
  bool restore_raw(std::vector<Entry> slots) {
    const std::size_t cap = slots.size();
    if (cap != 0 && (cap & (cap - 1)) != 0) return false;
    std::size_t used = 0;
    for (const Entry& e : slots) {
      if (e.used) ++used;
    }
    if (cap != 0 && used * 2 > cap) return false;  // load factor invariant
    const std::size_t mask = cap == 0 ? 0 : cap - 1;
    for (std::size_t at = 0; at < cap; ++at) {
      if (!slots[at].used) continue;
      // Linear-probe reachability: walking from the hash home must reach
      // `at` without crossing an empty slot.
      std::size_t i = net::GuidHash{}(slots[at].guid) & mask;
      while (i != at) {
        if (!slots[i].used) return false;
        i = (i + 1) & mask;
      }
    }
    slots_ = std::move(slots);
    mask_ = mask;
    size_ = used;
    return true;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;  // power of two

  static std::size_t capacity_for(std::size_t n) noexcept {
    std::size_t cap = kMinCapacity;
    while (cap < 2 * n + 2) cap *= 2;  // keep load factor below 1/2
    return cap;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Entry> old;
    old.swap(slots_);
    slots_.assign(new_capacity, Entry{});
    mask_ = new_capacity - 1;
    for (const Entry& e : old) {
      if (!e.used) continue;
      std::size_t i = net::GuidHash{}(e.guid) & mask_;
      while (slots_[i].used) i = (i + 1) & mask_;
      slots_[i] = e;
    }
  }

  std::vector<Entry> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ddp::p2p
