#include "p2p/network.hpp"

#include <algorithm>

#include "snapshot/state_io.hpp"
#include "util/log.hpp"

namespace ddp::p2p {

namespace {

void save_guid(snapshot::Writer& w, const net::Guid& g) {
  for (const std::uint8_t b : g.bytes) w.u8(b);
}

void load_guid(snapshot::Reader& r, net::Guid& g) {
  for (std::uint8_t& b : g.bytes) b = r.u8();
}

}  // namespace

double LinkMonitors::out_per_minute(PeerId from, PeerId to, SimTime now) {
  const auto slot = graph_->edge_slot(from, to);
  if (slot == topology::EdgeIndex::kInvalidSlot) return 0.0;
  util::RateWindow* w = windows_.find(slot);
  return w == nullptr ? 0.0 : w->per_minute(now);
}

double LinkMonitors::out_per_minute_at(PeerId from, PeerId to,
                                       SimTime now) const {
  const auto slot = graph_->edge_slot(from, to);
  if (slot == topology::EdgeIndex::kInvalidSlot) return 0.0;
  const util::RateWindow* w = windows_.find(slot);
  return w == nullptr ? 0.0 : w->per_minute_at(now);
}

void LinkMonitors::record(PeerId from, PeerId to, SimTime now) {
  const auto slot = graph_->edge_slot(from, to);
  if (slot == topology::EdgeIndex::kInvalidSlot) return;
  windows_.touch(slot).add(now, 1.0);
}

void LinkMonitors::forget(PeerId a, PeerId b) {
  const auto slot = graph_->edge_slot(a, b);
  if (slot == topology::EdgeIndex::kInvalidSlot) return;
  windows_.erase(slot);
  windows_.erase(graph_->edge_index().reverse(slot));
}

void LinkMonitors::save(snapshot::Writer& w) const {
  std::size_t entries = 0;
  windows_.for_each([&entries](std::uint32_t, const util::RateWindow&) {
    ++entries;
  });
  w.size(entries);
  windows_.for_each([&w](std::uint32_t slot, const util::RateWindow& win) {
    w.u32(slot);
    snapshot::save_rate_window(w, win);
  });
}

void LinkMonitors::load(snapshot::Reader& r) {
  const auto& index = graph_->edge_index();
  windows_.clear();
  windows_.sync();
  const std::size_t entries = r.size(index.capacity());
  for (std::size_t i = 0; i < entries; ++i) {
    const std::uint32_t slot = r.u32();
    if (!index.live(slot)) {
      throw snapshot::SnapshotError(
          "link monitor window references a dead edge slot");
    }
    snapshot::load_rate_window(r, windows_.touch(slot));
  }
}

PacketNetwork::PacketNetwork(topology::Graph& graph,
                             const workload::ContentModel& content,
                             sim::Engine& engine, const P2pConfig& config,
                             util::Rng rng)
    : graph_(graph), content_(content), engine_(engine), config_(config),
      rng_(rng), peers_(graph.node_count()),
      kinds_(graph.node_count(), PeerKind::kGood), monitors_(graph) {
  for (auto& ps : peers_) ps.capacity_per_minute = config_.capacity_per_minute;
}

void PacketNetwork::set_kind(PeerId p, PeerKind kind) { kinds_[p] = kind; }

void PacketNetwork::set_capacity(PeerId p, double per_minute) {
  peers_[p].capacity_per_minute = std::max(1.0, per_minute);
}

double PacketNetwork::service_time(const PeerState& ps) const noexcept {
  return kMinute / ps.capacity_per_minute;
}

QueryId PacketNetwork::issue_query(PeerId origin, workload::ObjectId object) {
  Descriptor d;
  d.kind = Descriptor::Kind::kQuery;
  d.guid = net::Guid::random(rng_);
  d.ttl = config_.ttl;
  d.hops = 0;
  d.origin = origin;
  d.object = object;

  prune_outcomes(engine_.now());
  const QueryId id = next_query_++;
  QueryOutcome out;
  out.id = id;
  out.guid = d.guid;
  out.origin = origin;
  out.issued_at = engine_.now();
  out.attack = kinds_[origin] == PeerKind::kBad;
  outcome_index_.emplace(d.guid, outcome_base_ + outcomes_.size());
  outcomes_.push_back(out);

  ++totals_.queries_issued;
  if (out.attack) ++totals_.attack_queries_issued;
  DDP_TRACE(tracer_, obs::EventType::kQueryIssued, engine_.now(), origin,
            kInvalidPeer,
            {{"query", static_cast<double>(id)},
             {"object", static_cast<double>(object)},
             {"attack", out.attack ? 1.0 : 0.0}});

  // The origin marks the GUID seen (it will drop echoes) and floods to all
  // current neighbours.
  auto& ps = peers_[origin];
  const std::size_t before = ps.seen.size();
  ps.seen.upsert(d.guid, kInvalidPeer, engine_.now());
  note_guid_entries(before, ps.seen.size());
  prune_seen(ps, engine_.now());
  // Copy the neighbour set: transmission callbacks may disconnect links.
  const std::vector<PeerId> nbrs(graph_.neighbors(origin).begin(),
                                 graph_.neighbors(origin).end());
  for (PeerId n : nbrs) transmit(origin, n, d);
  return id;
}

QueryId PacketNetwork::issue_random_query(PeerId origin) {
  return issue_query(origin, content_.sample_query_object(rng_));
}

void PacketNetwork::disconnect(PeerId a, PeerId b) {
  // remove_edge releases the slot pair, which retires both directions'
  // rate windows — no monitor-side cleanup to forget.
  graph_.remove_edge(a, b);
}

bool PacketNetwork::connect(PeerId a, PeerId b) {
  // A fresh edge acquires a fresh slot generation, so the monitors start
  // with no history (a new TCP connection has none).
  if (!graph_.add_edge(a, b)) return false;
  DDP_TRACE(tracer_, obs::EventType::kEdgeAdded, engine_.now(), a, b);
  return true;
}

void PacketNetwork::reset_peer(PeerId p) {
  auto& ps = peers_[p];
  ps.queue.clear();
  const std::size_t before = ps.seen.size();
  ps.seen.clear();
  note_guid_entries(before, 0);
  ps.busy = false;
}

void PacketNetwork::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  guid_gauge_ = registry != nullptr ? registry->gauge("p2p.guid_table_size")
                                    : obs::kInvalidMetric;
  if (metrics_ != nullptr) {
    metrics_->set(guid_gauge_, static_cast<double>(guid_entries_));
  }
}

void PacketNetwork::note_guid_entries(std::size_t before, std::size_t after) {
  guid_entries_ += static_cast<std::uint64_t>(after) -
                   static_cast<std::uint64_t>(before);  // wraps on shrink
  if (metrics_ != nullptr) {
    metrics_->set(guid_gauge_, static_cast<double>(guid_entries_));
  }
}

double PacketNetwork::trace_query_id(const net::Guid& guid) const noexcept {
  const auto it = outcome_index_.find(guid);
  if (it == outcome_index_.end()) return -1.0;  // settled past the horizon
  return static_cast<double>(outcomes_[it->second - outcome_base_].id);
}

void PacketNetwork::transmit(PeerId from, PeerId to, Descriptor d,
                             PeerId parent) {
  ++totals_.messages_sent;
  if (d.kind == Descriptor::Kind::kQuery) {
    monitors_.record(from, to, engine_.now());
    if (on_query_sent) on_query_sent(from, to, engine_.now());
    DDP_TRACE(tracer_, obs::EventType::kQueryForwarded, engine_.now(), from,
              to,
              {{"ttl", static_cast<double>(d.ttl)},
               {"hops", static_cast<double>(d.hops)},
               {"query", trace_query_id(d.guid)},
               {"parent", parent == kInvalidPeer
                              ? -1.0
                              : static_cast<double>(parent)}});
  }
  // Fault-injection fate roll — after the monitors, so DD-POLICE still
  // observes what the sender pushed (loss happens downstream of the
  // sender-side Out_query counter, as in the flow engine).
  std::uint32_t copies = 1;
  double extra_delay = 0.0;
  if (channel_ != nullptr && channel_->active()) {
    const fault::Transfer t = channel_->transfer();
    if (!t.delivered) {
      ++totals_.transport_dropped;
      return;
    }
    if (t.corrupted) {
      // Damaged framing: the receiver cannot parse it and discards.
      ++totals_.transport_corrupted;
      return;
    }
    copies = t.copies;
    if (t.copies > 1) totals_.transport_duplicated += t.copies - 1;
    extra_delay = t.delay;
  }
  for (std::uint32_t c = 0; c < copies; ++c) {
    engine_.schedule_in(config_.hop_latency + extra_delay,
                        [this, from, to, d]() { arrive(to, from, d); },
                        obs::EventCategory::kTransmit);
  }
}

void PacketNetwork::arrive(PeerId at, PeerId from, Descriptor d) {
  if (!graph_.is_active(at)) return;  // peer left while the message flew
  auto& ps = peers_[at];
  ++ps.received;
  if (ps.queue.size() >= config_.queue_limit) {
    ++ps.dropped;
    ++totals_.queries_dropped;
    DDP_TRACE(tracer_, obs::EventType::kQueryDropped, engine_.now(), at,
              from,
              {{"queue", static_cast<double>(ps.queue.size())},
               {"query", trace_query_id(d.guid)}});
    return;
  }
  // Stash the arrival link in the descriptor's bookkeeping so processing
  // knows the inverse path. We reuse hit_responder for queries as "from".
  Descriptor q = d;
  if (q.kind == Descriptor::Kind::kQuery) q.hit_responder = from;
  ps.queue.push_back(q);
  if (!ps.busy) {
    ps.busy = true;
    engine_.schedule_in(service_time(ps), [this, at]() { service_next(at); },
                        obs::EventCategory::kService);
  }
}

void PacketNetwork::service_next(PeerId at) {
  auto& ps = peers_[at];
  if (ps.queue.empty() || !graph_.is_active(at)) {
    ps.busy = false;
    return;
  }
  const Descriptor d = ps.queue.front();
  ps.queue.pop_front();
  ++ps.processed;
  ++totals_.queries_processed;
  const PeerId from =
      d.kind == Descriptor::Kind::kQuery ? d.hit_responder : kInvalidPeer;
  Descriptor clean = d;
  if (clean.kind == Descriptor::Kind::kQuery) clean.hit_responder = kInvalidPeer;
  process(at, from, clean);
  if (!ps.queue.empty()) {
    engine_.schedule_in(service_time(ps), [this, at]() { service_next(at); },
                        obs::EventCategory::kService);
  } else {
    ps.busy = false;
  }
}

void PacketNetwork::process(PeerId at, PeerId from, const Descriptor& d) {
  auto& ps = peers_[at];
  const SimTime now = engine_.now();

  if (d.kind == Descriptor::Kind::kQueryHit) {
    // Route back along the inverse path recorded in the seen-table.
    const GuidTable::Entry* e = ps.seen.find(d.guid);
    if (e == nullptr) return;  // route evaporated (churn) — hit dies
    const PeerId back = e->from;
    if (back == kInvalidPeer) {
      // We are the origin.
      const auto oi = outcome_index_.find(d.guid);
      if (oi != outcome_index_.end()) {
        auto& out = outcomes_[oi->second - outcome_base_];
        ++totals_.hits_delivered;
        if (!out.responded) {
          out.responded = true;
          out.first_response_at = now;
        }
        DDP_TRACE(tracer_, obs::EventType::kHitDelivered, now, at,
                  d.hit_responder,
                  {{"latency", now - out.issued_at},
                   {"query", static_cast<double>(out.id)}});
      }
      return;
    }
    if (graph_.has_edge(at, back)) transmit(at, back, d);
    return;
  }

  // Query handling.
  prune_seen(ps, now);
  if (ps.seen.find(d.guid) != nullptr) {
    ++totals_.duplicates_dropped;
    DDP_TRACE(tracer_, obs::EventType::kQueryDuplicate, now, at, from,
              {{"query", trace_query_id(d.guid)}});
    return;
  }
  const std::size_t before = ps.seen.size();
  ps.seen.upsert(d.guid, from, now);
  note_guid_entries(before, ps.seen.size());

  // Local lookup; respond with a QueryHit routed back towards the origin.
  if (content_.peer_has(at, d.object)) {
    Descriptor hit;
    hit.kind = Descriptor::Kind::kQueryHit;
    hit.guid = d.guid;
    hit.ttl = static_cast<std::uint8_t>(d.hops + 1);
    hit.hops = 0;
    hit.origin = d.origin;
    hit.object = d.object;
    hit.hit_responder = at;
    ++totals_.hits_generated;
    DDP_TRACE(tracer_, obs::EventType::kQueryHit, now, at, d.origin,
              {{"object", static_cast<double>(d.object)},
               {"hops", static_cast<double>(d.hops)},
               {"query", trace_query_id(d.guid)},
               {"parent", from == kInvalidPeer
                              ? -1.0
                              : static_cast<double>(from)}});
    if (from != kInvalidPeer && graph_.has_edge(at, from)) {
      transmit(at, from, hit);
    }
  }

  // Forward while TTL remains.
  std::size_t forwards = 0;
  if (d.ttl > 1) {
    Descriptor fwd = d;
    fwd.ttl = static_cast<std::uint8_t>(d.ttl - 1);
    fwd.hops = static_cast<std::uint8_t>(d.hops + 1);
    const std::vector<PeerId> nbrs(graph_.neighbors(at).begin(),
                                   graph_.neighbors(at).end());
    for (PeerId n : nbrs) {
      if (n == from) continue;
      transmit(at, n, fwd, from);
      ++forwards;
    }
  }
  if (forwards == 0) {
    // Flood-tree leaf: the query terminates here without fanning out (TTL
    // exhausted, or no neighbour besides the sender). Emitting it keeps
    // the trace lossless — every tree node appears as an emitter.
    DDP_TRACE(tracer_, obs::EventType::kQueryExpired, now, at, from,
              {{"query", trace_query_id(d.guid)},
               {"ttl", static_cast<double>(d.ttl)},
               {"hops", static_cast<double>(d.hops)}});
  }
}

void PacketNetwork::prune_outcomes(SimTime now) {
  if (config_.outcome_horizon <= 0.0) return;
  const SimTime cutoff = now - config_.outcome_horizon;
  std::size_t n = 0;
  while (n < outcomes_.size() && outcomes_[n].issued_at < cutoff) ++n;
  // Amortize the front erase: compact only once the settled prefix is at
  // least half the buffer, so long runs stay O(1) per issued query and
  // memory is bounded by ~2x the queries of one horizon window.
  if (n == 0 || n * 2 < outcomes_.size()) return;
  for (std::size_t i = 0; i < n; ++i) outcome_index_.erase(outcomes_[i].guid);
  outcomes_.erase(outcomes_.begin(),
                  outcomes_.begin() + static_cast<std::ptrdiff_t>(n));
  outcome_base_ += n;
}

void PacketNetwork::save(snapshot::Writer& w) const {
  for (const PeerState& ps : peers_) {
    if (!ps.queue.empty() || ps.busy) {
      throw snapshot::SnapshotError(
          "packet network is not quiescent: descriptors are queued or being "
          "serviced (checkpoint between run_until boundaries)");
    }
  }
  w.size(peers_.size());
  for (const PeerState& ps : peers_) {
    w.f64(ps.capacity_per_minute);
    const auto& slots = ps.seen.raw_slots();
    w.size(slots.size());
    for (const GuidTable::Entry& e : slots) {
      save_guid(w, e.guid);
      w.f64(e.when);
      w.u32(e.from);
      w.boolean(e.used);
    }
    w.u64(ps.processed);
    w.u64(ps.dropped);
    w.u64(ps.received);
    w.f64(ps.last_prune);
  }
  w.size(kinds_.size());
  for (const PeerKind k : kinds_) w.u8(static_cast<std::uint8_t>(k));
  w.u64(totals_.queries_issued);
  w.u64(totals_.attack_queries_issued);
  w.u64(totals_.messages_sent);
  w.u64(totals_.queries_processed);
  w.u64(totals_.queries_dropped);
  w.u64(totals_.duplicates_dropped);
  w.u64(totals_.hits_generated);
  w.u64(totals_.hits_delivered);
  w.f64(totals_.overhead_messages);
  w.u64(totals_.transport_dropped);
  w.u64(totals_.transport_corrupted);
  w.u64(totals_.transport_duplicated);
  w.size(outcomes_.size());
  for (const QueryOutcome& o : outcomes_) {
    w.u64(o.id);
    save_guid(w, o.guid);
    w.u32(o.origin);
    w.f64(o.issued_at);
    w.boolean(o.responded);
    w.f64(o.first_response_at);
    w.boolean(o.attack);
  }
  w.u64(outcome_base_);
  w.u64(next_query_);
  monitors_.save(w);
  snapshot::save_rng(w, rng_);
}

void PacketNetwork::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxPeers = 1u << 24;
  constexpr std::size_t kMaxTableSlots = 1u << 26;
  const std::size_t peer_count = r.size(kMaxPeers);
  if (peer_count != graph_.node_count()) {
    throw snapshot::SnapshotError("packet network peer count != node count");
  }
  peers_.resize(peer_count);
  guid_entries_ = 0;
  for (PeerState& ps : peers_) {
    ps.capacity_per_minute = r.f64();
    ps.queue.clear();
    ps.busy = false;
    std::vector<GuidTable::Entry> slots(r.size(kMaxTableSlots));
    for (GuidTable::Entry& e : slots) {
      load_guid(r, e.guid);
      e.when = r.f64();
      e.from = r.u32();
      e.used = r.boolean();
    }
    if (!ps.seen.restore_raw(std::move(slots))) {
      throw snapshot::SnapshotError(
          "guid table slot layout is not a valid probe sequence");
    }
    guid_entries_ += ps.seen.size();
    ps.processed = r.u64();
    ps.dropped = r.u64();
    ps.received = r.u64();
    ps.last_prune = r.f64();
  }
  kinds_.resize(r.size(kMaxPeers));
  if (kinds_.size() != peer_count) {
    throw snapshot::SnapshotError("packet network kind count != peer count");
  }
  for (PeerKind& k : kinds_) {
    const std::uint8_t v = r.u8();
    if (v > static_cast<std::uint8_t>(PeerKind::kBad)) {
      throw snapshot::SnapshotError("invalid peer kind value");
    }
    k = static_cast<PeerKind>(v);
  }
  totals_.queries_issued = r.u64();
  totals_.attack_queries_issued = r.u64();
  totals_.messages_sent = r.u64();
  totals_.queries_processed = r.u64();
  totals_.queries_dropped = r.u64();
  totals_.duplicates_dropped = r.u64();
  totals_.hits_generated = r.u64();
  totals_.hits_delivered = r.u64();
  totals_.overhead_messages = r.f64();
  totals_.transport_dropped = r.u64();
  totals_.transport_corrupted = r.u64();
  totals_.transport_duplicated = r.u64();
  outcomes_.resize(r.size(1u << 26));
  for (QueryOutcome& o : outcomes_) {
    o.id = r.u64();
    load_guid(r, o.guid);
    o.origin = r.u32();
    o.issued_at = r.f64();
    o.responded = r.boolean();
    o.first_response_at = r.f64();
    o.attack = r.boolean();
  }
  outcome_base_ = static_cast<std::size_t>(r.u64());
  next_query_ = r.u64();
  monitors_.load(r);
  snapshot::load_rng(r, rng_);
  outcome_index_.clear();
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    outcome_index_.emplace(outcomes_[i].guid, outcome_base_ + i);
  }
  if (metrics_ != nullptr) {
    metrics_->set(guid_gauge_, static_cast<double>(guid_entries_));
  }
}

void PacketNetwork::prune_seen(PeerState& ps, SimTime now) {
  // Amortized: compact at most every horizon/4 seconds (the dedup-TTL
  // epoch). Compaction is also what re-sizes the flat table down, so this
  // cadence is what bounds per-peer GUID memory within a run.
  if (now - ps.last_prune < config_.seen_horizon / 4.0) return;
  ps.last_prune = now;
  const std::size_t before = ps.seen.size();
  ps.seen.prune(now - config_.seen_horizon);
  note_guid_entries(before, ps.seen.size());
}

}  // namespace ddp::p2p
