#include "p2p/network.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace ddp::p2p {

double LinkMonitors::out_per_minute(PeerId from, PeerId to, SimTime now) {
  const auto slot = graph_->edge_slot(from, to);
  if (slot == topology::EdgeIndex::kInvalidSlot) return 0.0;
  util::RateWindow* w = windows_.find(slot);
  return w == nullptr ? 0.0 : w->per_minute(now);
}

void LinkMonitors::record(PeerId from, PeerId to, SimTime now) {
  const auto slot = graph_->edge_slot(from, to);
  if (slot == topology::EdgeIndex::kInvalidSlot) return;
  windows_.touch(slot).add(now, 1.0);
}

void LinkMonitors::forget(PeerId a, PeerId b) {
  const auto slot = graph_->edge_slot(a, b);
  if (slot == topology::EdgeIndex::kInvalidSlot) return;
  windows_.erase(slot);
  windows_.erase(graph_->edge_index().reverse(slot));
}

PacketNetwork::PacketNetwork(topology::Graph& graph,
                             const workload::ContentModel& content,
                             sim::Engine& engine, const P2pConfig& config,
                             util::Rng rng)
    : graph_(graph), content_(content), engine_(engine), config_(config),
      rng_(rng), peers_(graph.node_count()),
      kinds_(graph.node_count(), PeerKind::kGood), monitors_(graph) {
  for (auto& ps : peers_) ps.capacity_per_minute = config_.capacity_per_minute;
}

void PacketNetwork::set_kind(PeerId p, PeerKind kind) { kinds_[p] = kind; }

void PacketNetwork::set_capacity(PeerId p, double per_minute) {
  peers_[p].capacity_per_minute = std::max(1.0, per_minute);
}

double PacketNetwork::service_time(const PeerState& ps) const noexcept {
  return kMinute / ps.capacity_per_minute;
}

QueryId PacketNetwork::issue_query(PeerId origin, workload::ObjectId object) {
  Descriptor d;
  d.kind = Descriptor::Kind::kQuery;
  d.guid = net::Guid::random(rng_);
  d.ttl = config_.ttl;
  d.hops = 0;
  d.origin = origin;
  d.object = object;

  prune_outcomes(engine_.now());
  const QueryId id = next_query_++;
  QueryOutcome out;
  out.id = id;
  out.guid = d.guid;
  out.origin = origin;
  out.issued_at = engine_.now();
  out.attack = kinds_[origin] == PeerKind::kBad;
  outcome_index_.emplace(d.guid, outcome_base_ + outcomes_.size());
  outcomes_.push_back(out);

  ++totals_.queries_issued;
  if (out.attack) ++totals_.attack_queries_issued;
  DDP_TRACE(tracer_, obs::EventType::kQueryIssued, engine_.now(), origin,
            kInvalidPeer,
            {{"query", static_cast<double>(id)},
             {"object", static_cast<double>(object)},
             {"attack", out.attack ? 1.0 : 0.0}});

  // The origin marks the GUID seen (it will drop echoes) and floods to all
  // current neighbours.
  auto& ps = peers_[origin];
  const std::size_t before = ps.seen.size();
  ps.seen.upsert(d.guid, kInvalidPeer, engine_.now());
  note_guid_entries(before, ps.seen.size());
  prune_seen(ps, engine_.now());
  // Copy the neighbour set: transmission callbacks may disconnect links.
  const std::vector<PeerId> nbrs(graph_.neighbors(origin).begin(),
                                 graph_.neighbors(origin).end());
  for (PeerId n : nbrs) transmit(origin, n, d);
  return id;
}

QueryId PacketNetwork::issue_random_query(PeerId origin) {
  return issue_query(origin, content_.sample_query_object(rng_));
}

void PacketNetwork::disconnect(PeerId a, PeerId b) {
  // remove_edge releases the slot pair, which retires both directions'
  // rate windows — no monitor-side cleanup to forget.
  graph_.remove_edge(a, b);
}

bool PacketNetwork::connect(PeerId a, PeerId b) {
  // A fresh edge acquires a fresh slot generation, so the monitors start
  // with no history (a new TCP connection has none).
  if (!graph_.add_edge(a, b)) return false;
  DDP_TRACE(tracer_, obs::EventType::kEdgeAdded, engine_.now(), a, b);
  return true;
}

void PacketNetwork::reset_peer(PeerId p) {
  auto& ps = peers_[p];
  ps.queue.clear();
  const std::size_t before = ps.seen.size();
  ps.seen.clear();
  note_guid_entries(before, 0);
  ps.busy = false;
}

void PacketNetwork::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  guid_gauge_ = registry != nullptr ? registry->gauge("p2p.guid_table_size")
                                    : obs::kInvalidMetric;
  if (metrics_ != nullptr) {
    metrics_->set(guid_gauge_, static_cast<double>(guid_entries_));
  }
}

void PacketNetwork::note_guid_entries(std::size_t before, std::size_t after) {
  guid_entries_ += static_cast<std::uint64_t>(after) -
                   static_cast<std::uint64_t>(before);  // wraps on shrink
  if (metrics_ != nullptr) {
    metrics_->set(guid_gauge_, static_cast<double>(guid_entries_));
  }
}

void PacketNetwork::transmit(PeerId from, PeerId to, Descriptor d) {
  ++totals_.messages_sent;
  if (d.kind == Descriptor::Kind::kQuery) {
    monitors_.record(from, to, engine_.now());
    if (on_query_sent) on_query_sent(from, to, engine_.now());
    DDP_TRACE(tracer_, obs::EventType::kQueryForwarded, engine_.now(), from,
              to,
              {{"ttl", static_cast<double>(d.ttl)},
               {"hops", static_cast<double>(d.hops)}});
  }
  // Fault-injection fate roll — after the monitors, so DD-POLICE still
  // observes what the sender pushed (loss happens downstream of the
  // sender-side Out_query counter, as in the flow engine).
  std::uint32_t copies = 1;
  double extra_delay = 0.0;
  if (channel_ != nullptr && channel_->active()) {
    const fault::Transfer t = channel_->transfer();
    if (!t.delivered) {
      ++totals_.transport_dropped;
      return;
    }
    if (t.corrupted) {
      // Damaged framing: the receiver cannot parse it and discards.
      ++totals_.transport_corrupted;
      return;
    }
    copies = t.copies;
    if (t.copies > 1) totals_.transport_duplicated += t.copies - 1;
    extra_delay = t.delay;
  }
  for (std::uint32_t c = 0; c < copies; ++c) {
    engine_.schedule_in(config_.hop_latency + extra_delay,
                        [this, from, to, d]() { arrive(to, from, d); },
                        obs::EventCategory::kTransmit);
  }
}

void PacketNetwork::arrive(PeerId at, PeerId from, Descriptor d) {
  if (!graph_.is_active(at)) return;  // peer left while the message flew
  auto& ps = peers_[at];
  ++ps.received;
  if (ps.queue.size() >= config_.queue_limit) {
    ++ps.dropped;
    ++totals_.queries_dropped;
    DDP_TRACE(tracer_, obs::EventType::kQueryDropped, engine_.now(), at,
              from, {{"queue", static_cast<double>(ps.queue.size())}});
    return;
  }
  // Stash the arrival link in the descriptor's bookkeeping so processing
  // knows the inverse path. We reuse hit_responder for queries as "from".
  Descriptor q = d;
  if (q.kind == Descriptor::Kind::kQuery) q.hit_responder = from;
  ps.queue.push_back(q);
  if (!ps.busy) {
    ps.busy = true;
    engine_.schedule_in(service_time(ps), [this, at]() { service_next(at); },
                        obs::EventCategory::kService);
  }
}

void PacketNetwork::service_next(PeerId at) {
  auto& ps = peers_[at];
  if (ps.queue.empty() || !graph_.is_active(at)) {
    ps.busy = false;
    return;
  }
  const Descriptor d = ps.queue.front();
  ps.queue.pop_front();
  ++ps.processed;
  ++totals_.queries_processed;
  const PeerId from =
      d.kind == Descriptor::Kind::kQuery ? d.hit_responder : kInvalidPeer;
  Descriptor clean = d;
  if (clean.kind == Descriptor::Kind::kQuery) clean.hit_responder = kInvalidPeer;
  process(at, from, clean);
  if (!ps.queue.empty()) {
    engine_.schedule_in(service_time(ps), [this, at]() { service_next(at); },
                        obs::EventCategory::kService);
  } else {
    ps.busy = false;
  }
}

void PacketNetwork::process(PeerId at, PeerId from, const Descriptor& d) {
  auto& ps = peers_[at];
  const SimTime now = engine_.now();

  if (d.kind == Descriptor::Kind::kQueryHit) {
    // Route back along the inverse path recorded in the seen-table.
    const GuidTable::Entry* e = ps.seen.find(d.guid);
    if (e == nullptr) return;  // route evaporated (churn) — hit dies
    const PeerId back = e->from;
    if (back == kInvalidPeer) {
      // We are the origin.
      const auto oi = outcome_index_.find(d.guid);
      if (oi != outcome_index_.end()) {
        auto& out = outcomes_[oi->second - outcome_base_];
        ++totals_.hits_delivered;
        if (!out.responded) {
          out.responded = true;
          out.first_response_at = now;
        }
        DDP_TRACE(tracer_, obs::EventType::kHitDelivered, now, at,
                  d.hit_responder, {{"latency", now - out.issued_at}});
      }
      return;
    }
    if (graph_.has_edge(at, back)) transmit(at, back, d);
    return;
  }

  // Query handling.
  prune_seen(ps, now);
  if (ps.seen.find(d.guid) != nullptr) {
    ++totals_.duplicates_dropped;
    DDP_TRACE(tracer_, obs::EventType::kQueryDuplicate, now, at, from);
    return;
  }
  const std::size_t before = ps.seen.size();
  ps.seen.upsert(d.guid, from, now);
  note_guid_entries(before, ps.seen.size());

  // Local lookup; respond with a QueryHit routed back towards the origin.
  if (content_.peer_has(at, d.object)) {
    Descriptor hit;
    hit.kind = Descriptor::Kind::kQueryHit;
    hit.guid = d.guid;
    hit.ttl = static_cast<std::uint8_t>(d.hops + 1);
    hit.hops = 0;
    hit.origin = d.origin;
    hit.object = d.object;
    hit.hit_responder = at;
    ++totals_.hits_generated;
    DDP_TRACE(tracer_, obs::EventType::kQueryHit, now, at, d.origin,
              {{"object", static_cast<double>(d.object)},
               {"hops", static_cast<double>(d.hops)}});
    if (from != kInvalidPeer && graph_.has_edge(at, from)) {
      transmit(at, from, hit);
    }
  }

  // Forward while TTL remains.
  if (d.ttl <= 1) return;
  Descriptor fwd = d;
  fwd.ttl = static_cast<std::uint8_t>(d.ttl - 1);
  fwd.hops = static_cast<std::uint8_t>(d.hops + 1);
  const std::vector<PeerId> nbrs(graph_.neighbors(at).begin(),
                                 graph_.neighbors(at).end());
  for (PeerId n : nbrs) {
    if (n == from) continue;
    transmit(at, n, fwd);
  }
}

void PacketNetwork::prune_outcomes(SimTime now) {
  if (config_.outcome_horizon <= 0.0) return;
  const SimTime cutoff = now - config_.outcome_horizon;
  std::size_t n = 0;
  while (n < outcomes_.size() && outcomes_[n].issued_at < cutoff) ++n;
  // Amortize the front erase: compact only once the settled prefix is at
  // least half the buffer, so long runs stay O(1) per issued query and
  // memory is bounded by ~2x the queries of one horizon window.
  if (n == 0 || n * 2 < outcomes_.size()) return;
  for (std::size_t i = 0; i < n; ++i) outcome_index_.erase(outcomes_[i].guid);
  outcomes_.erase(outcomes_.begin(),
                  outcomes_.begin() + static_cast<std::ptrdiff_t>(n));
  outcome_base_ += n;
}

void PacketNetwork::prune_seen(PeerState& ps, SimTime now) {
  // Amortized: compact at most every horizon/4 seconds (the dedup-TTL
  // epoch). Compaction is also what re-sizes the flat table down, so this
  // cadence is what bounds per-peer GUID memory within a run.
  if (now - ps.last_prune < config_.seen_horizon / 4.0) return;
  ps.last_prune = now;
  const std::size_t before = ps.seen.size();
  ps.seen.prune(now - config_.seen_horizon);
  note_guid_entries(before, ps.seen.size());
}

}  // namespace ddp::p2p
