#pragma once

/// \file network.hpp
/// Packet-level unstructured-P2P engine: every query is an individual
/// descriptor flooding the overlay exactly as Gnutella 0.6 specifies —
/// duplicate GUIDs dropped, TTL decremented per hop, hits routed back hop
/// by hop along the inverse query path, bounded input queues served at a
/// finite rate, overflow dropped. This engine is the high-fidelity
/// substrate: it reproduces the paper's LimeWire testbed (Figs. 5 and 6)
/// and cross-validates the scalable flow engine.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fault/channel.hpp"
#include "net/guid.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p2p/config.hpp"
#include "p2p/guid_table.hpp"
#include "sim/engine.hpp"
#include "topology/graph.hpp"
#include "util/rate_window.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "workload/content.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::p2p {

/// In-memory descriptor flowing through the engine. Wire encoding is
/// provided by ddp::net and exercised by the codec tests and tools; the
/// engine keeps descriptors as structs for speed but preserves every
/// protocol-relevant field.
struct Descriptor {
  enum class Kind : std::uint8_t { kQuery, kQueryHit };
  Kind kind = Kind::kQuery;
  net::Guid guid{};
  std::uint8_t ttl = 7;
  std::uint8_t hops = 0;
  PeerId origin = kInvalidPeer;            ///< engine-side bookkeeping only
  workload::ObjectId object = 0;           ///< query target
  PeerId hit_responder = kInvalidPeer;     ///< QueryHit: who answered
};

/// Outcome record of one issued query (for response-time / success-rate
/// metrics; Sec. 3.6 definitions).
struct QueryOutcome {
  QueryId id = 0;
  net::Guid guid{};  ///< wire GUID (keys the index; needed to unindex)
  PeerId origin = kInvalidPeer;
  SimTime issued_at = 0.0;
  bool responded = false;
  SimTime first_response_at = 0.0;
  bool attack = false;  ///< issued by a compromised peer
};

/// Aggregate engine counters.
struct NetworkTotals {
  std::uint64_t queries_issued = 0;
  std::uint64_t attack_queries_issued = 0;
  std::uint64_t messages_sent = 0;       ///< all descriptor transmissions
  std::uint64_t queries_processed = 0;   ///< dequeued and serviced
  std::uint64_t queries_dropped = 0;     ///< queue overflow
  std::uint64_t duplicates_dropped = 0;  ///< seen-GUID drops
  std::uint64_t hits_generated = 0;
  std::uint64_t hits_delivered = 0;      ///< reached the query origin
  double overhead_messages = 0.0;        ///< defense-protocol messages
  // Fault-injection tallies (zero unless an UnreliableChannel is attached).
  std::uint64_t transport_dropped = 0;    ///< descriptors lost in flight
  std::uint64_t transport_corrupted = 0;  ///< discarded as damaged on arrival
  std::uint64_t transport_duplicated = 0; ///< extra copies delivered
};

/// Per-directed-link per-minute counters — what DD-POLICE's monitors read.
/// Windows live in an EdgeMap keyed by the graph's directed-edge slots, so
/// tearing a link down (graph remove_edge -> slot release) retires both
/// directions' windows automatically and a re-established connection
/// always starts with fresh history.
class LinkMonitors {
 public:
  explicit LinkMonitors(const topology::Graph& graph)
      : graph_(&graph), windows_(graph.edge_index()) {}

  double out_per_minute(PeerId from, PeerId to, SimTime now);
  /// out_per_minute without advancing the window — a pure const read
  /// (RateWindow::per_minute_at), safe for concurrent sweeps. This is the
  /// read DD-POLICE's sharded flag scan uses via PacketPort: workers sweep
  /// disjoint judge spans, each reading its span's in-link windows.
  double out_per_minute_at(PeerId from, PeerId to, SimTime now) const;
  void record(PeerId from, PeerId to, SimTime now);
  /// Explicitly reset both directions of a live link (slot release already
  /// covers teardown; this is for resets that keep the edge up).
  void forget(PeerId a, PeerId b);

  /// Serialize every live window into the writer's open section. The
  /// graph (and so the slot index) is saved by its owner; load() must run
  /// after the graph has been restored.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save().
  void load(snapshot::Reader& r);

 private:
  const topology::Graph* graph_;
  topology::EdgeMap<util::RateWindow> windows_;
};

/// The packet-level network. Owns peer state; borrows the graph, content
/// model and event engine (so callers can share them with churn processes
/// and the defense layer).
class PacketNetwork {
 public:
  PacketNetwork(topology::Graph& graph, const workload::ContentModel& content,
                sim::Engine& engine, const P2pConfig& config, util::Rng rng);

  /// Mark a peer compromised (affects outcome labelling; the attack module
  /// drives its behaviour).
  void set_kind(PeerId p, PeerKind kind);
  PeerKind kind(PeerId p) const noexcept { return kinds_[p]; }

  /// Override one peer's service capacity (queries/min). Used by the
  /// testbed harness where peer roles differ.
  void set_capacity(PeerId p, double per_minute);

  /// Issue a fresh query from `origin` for `object`. Returns its id.
  QueryId issue_query(PeerId origin, workload::ObjectId object);

  /// Issue a query for a random (popularity-sampled) object.
  QueryId issue_random_query(PeerId origin);

  /// Tear down a logical connection immediately (defense action). Pending
  /// in-flight messages on that link are still delivered (TCP close is not
  /// instantaneous); future sends stop.
  void disconnect(PeerId a, PeerId b);

  /// Re-establish a logical connection (probational reconnection or
  /// partition repair). Monitors start fresh — a new TCP connection has no
  /// history. False when the edge already exists or an endpoint is down.
  bool connect(PeerId a, PeerId b);

  /// Reset per-peer protocol state after a rejoin (seen GUIDs, queues).
  void reset_peer(PeerId p);

  const NetworkTotals& totals() const noexcept { return totals_; }

  /// Account defense-protocol messages (the packet engine does not
  /// simulate them individually; they are tallied into the totals).
  void add_overhead_messages(double count) { totals_.overhead_messages += count; }

  /// Outcome records still inside the retention horizon (older records are
  /// settled — no hit can still route back once the seen tables forgot the
  /// GUID — and get pruned so memory does not grow with issued queries;
  /// the aggregate `totals()` are exact over the whole run regardless).
  const std::vector<QueryOutcome>& outcomes() const noexcept { return outcomes_; }

  /// Settled outcome records dropped so far (memory-bound accounting).
  std::uint64_t outcomes_pruned() const noexcept { return outcome_base_; }
  LinkMonitors& monitors() noexcept { return monitors_; }
  const LinkMonitors& monitors() const noexcept { return monitors_; }
  sim::Engine& engine() noexcept { return engine_; }
  const topology::Graph& graph() const noexcept { return graph_; }

  /// Per-peer drop/processed counters (Fig. 6 reads these).
  std::uint64_t processed_at(PeerId p) const noexcept { return peers_[p].processed; }
  std::uint64_t dropped_at(PeerId p) const noexcept { return peers_[p].dropped; }
  std::uint64_t received_at(PeerId p) const noexcept { return peers_[p].received; }

  /// Hook invoked whenever a peer transmits a query to a neighbour
  /// (after the monitors are updated); the DD-POLICE layer subscribes.
  std::function<void(PeerId from, PeerId to, SimTime now)> on_query_sent;

  /// Attach a fault-injection link policy. Every transmission then rolls a
  /// drop / duplicate / corrupt / jitter fate; monitors still record what
  /// the sender pushed (loss is a receiver-side event, matching the flow
  /// engine's semantics). Null, or a channel with all-zero probabilities,
  /// keeps the exact fault-free path and consumes no random draws.
  void set_channel(fault::UnreliableChannel* channel) noexcept {
    channel_ = channel;
  }

  /// Attach a trace sink (null detaches). Emits the per-descriptor data
  /// plane vocabulary: query_issued/forwarded/dropped/duplicate/expired,
  /// query_hit, hit_delivered — each payload carries the deterministic
  /// query id plus the parent hop, so the JSONL stream losslessly encodes
  /// every query's flood tree (obs::build_flood_tree reconstructs it).
  /// Tracing observes only — no random draws, no state.
  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.bind(sink); }
  const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// Attach a metrics registry (null detaches). Exports the
  /// `p2p.guid_table_size` gauge: total live GUID-dedup entries across all
  /// peers, refreshed whenever a table changes size (insert, prune
  /// compaction, peer reset). Observation only — no behavioural effect.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Total live GUID-dedup entries across all peers (the gauge's value).
  std::uint64_t guid_table_size() const noexcept { return guid_entries_; }

  /// Serialize peer protocol state (dedup tables, counters), link
  /// monitors, totals and the query-outcome window into the writer's open
  /// section. Only valid at a quiescent point — no queued descriptors, no
  /// busy servers and no in-flight engine events; throws SnapshotError
  /// otherwise. The graph and engine are saved by their owner.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save(). The graph must already be restored
  /// (monitor windows re-attach to live edge slots); the outcome index is
  /// rebuilt from the outcome records.
  void load(snapshot::Reader& r);

 private:
  struct PeerState {
    double capacity_per_minute;
    std::deque<Descriptor> queue;
    bool busy = false;
    GuidTable seen;  ///< guid -> (arrived-from, when): dup table + inverse route
    std::uint64_t processed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t received = 0;
    SimTime last_prune = 0.0;
  };

  void transmit(PeerId from, PeerId to, Descriptor d,
                PeerId parent = kInvalidPeer);
  void arrive(PeerId at, PeerId from, Descriptor d);
  void service_next(PeerId at);
  void process(PeerId at, PeerId from, const Descriptor& d);
  void prune_seen(PeerState& ps, SimTime now);
  void prune_outcomes(SimTime now);
  /// Deterministic query id for a GUID still inside the outcome horizon
  /// (-1 once pruned). Trace payloads only — called under tracer_.on().
  double trace_query_id(const net::Guid& guid) const noexcept;
  double service_time(const PeerState& ps) const noexcept;
  void note_guid_entries(std::size_t before, std::size_t after);

  topology::Graph& graph_;
  const workload::ContentModel& content_;
  sim::Engine& engine_;
  P2pConfig config_;
  util::Rng rng_;
  std::vector<PeerState> peers_;
  std::vector<PeerKind> kinds_;
  fault::UnreliableChannel* channel_ = nullptr;
  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId guid_gauge_ = obs::kInvalidMetric;
  std::uint64_t guid_entries_ = 0;  ///< sum of all peers' seen.size()
  LinkMonitors monitors_;
  NetworkTotals totals_;
  std::vector<QueryOutcome> outcomes_;
  /// guid -> *absolute* outcome index (subtract outcome_base_ to address
  /// outcomes_; pruned records are unindexed before they are dropped).
  std::unordered_map<net::Guid, std::size_t, net::GuidHash> outcome_index_;
  std::size_t outcome_base_ = 0;  ///< absolute index of outcomes_[0]
  QueryId next_query_ = 1;
};

}  // namespace ddp::p2p
