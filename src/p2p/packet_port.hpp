#pragma once

/// \file packet_port.hpp
/// core::OverlayPort adapter over the packet-level engine: DD-POLICE running
/// against individually simulated Gnutella descriptors. The per-minute
/// counters come from the engine's sliding-window link monitors — exactly
/// the Out_query/In_query windows a real servent would keep (Sec. 3.2).
/// Lives with the engine (not in core/) so the DD-POLICE core stays
/// engine-agnostic.
///
/// Use run_ddpolice_minutes() (or schedule the protocol step yourself at
/// minute cadence) — the packet engine is event-driven, so the protocol
/// must be driven by scheduled events rather than engine hooks.

#include "core/overlay_port.hpp"
#include "p2p/network.hpp"

namespace ddp::p2p {

class PacketPort final : public core::OverlayPort {
 public:
  explicit PacketPort(PacketNetwork& net) : net_(&net) {}

  const topology::Graph& graph() const override { return net_->graph(); }

  double sent_last_minute(PeerId from, PeerId to) const override {
    // Pure const read (no window advance): bit-identical to the mutable
    // read at the same timestamp, and safe for the concurrent sweeps of
    // DdPolice::set_sweep_pool. Windows advance on record() instead.
    return net_->monitors().out_per_minute_at(from, to, net_->engine().now());
  }

  void disconnect(PeerId a, PeerId b) override { net_->disconnect(a, b); }

  bool connect(PeerId a, PeerId b) override { return net_->connect(a, b); }
  // set_query_budget keeps the default no-op: the packet engine's issue
  // schedule is owned by the workload driver, not the engine itself.

  void report_overhead(double messages) override {
    net_->add_overhead_messages(messages);
  }

 private:
  PacketNetwork* net_;
};

}  // namespace ddp::p2p
