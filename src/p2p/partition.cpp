#include "p2p/partition.hpp"

#include <algorithm>

#include "snapshot/state_io.hpp"

namespace ddp::p2p {

PartitionReport find_partitions(const topology::Graph& graph) {
  const std::size_t n = graph.node_count();
  PartitionReport rep;
  rep.label.assign(n, PartitionReport::kNoComponent);

  std::vector<std::size_t> sizes;
  std::vector<PeerId> queue;
  for (PeerId s = 0; s < n; ++s) {
    if (!graph.is_active(s) || graph.degree(s) == 0) continue;
    if (rep.label[s] != PartitionReport::kNoComponent) continue;
    const auto comp = static_cast<std::uint32_t>(sizes.size());
    std::size_t size = 0;
    queue.clear();
    queue.push_back(s);
    rep.label[s] = comp;
    while (!queue.empty()) {
      const PeerId u = queue.back();
      queue.pop_back();
      ++size;
      for (PeerId v : graph.neighbors(u)) {
        if (!graph.is_active(v)) continue;
        if (rep.label[v] != PartitionReport::kNoComponent) continue;
        rep.label[v] = comp;
        queue.push_back(v);
      }
    }
    sizes.push_back(size);
  }

  rep.components = sizes.size();
  std::uint32_t largest_comp = PartitionReport::kNoComponent;
  for (std::uint32_t c = 0; c < sizes.size(); ++c) {
    if (largest_comp == PartitionReport::kNoComponent ||
        sizes[c] > sizes[largest_comp]) {
      largest_comp = c;
    }
  }
  if (largest_comp != PartitionReport::kNoComponent) {
    rep.largest = sizes[largest_comp];
    for (PeerId p = 0; p < n; ++p) {
      if (rep.label[p] != PartitionReport::kNoComponent &&
          rep.label[p] != largest_comp) {
        rep.stranded.push_back(p);
      }
      // Normalize: the largest component is always label 0 for callers.
      if (rep.label[p] == largest_comp) {
        rep.label[p] = 0;
      } else if (rep.label[p] == 0) {
        rep.label[p] = largest_comp;
      }
    }
  }
  return rep;
}

std::size_t PartitionHealer::heal(double minute, const EligibleFilter& eligible,
                                  const ConnectFn& connect) {
  ++sweeps_;
  const std::size_t n = graph_.node_count();
  PartitionReport rep = find_partitions(graph_);

  // Stranded = linked-but-disconnected peers plus fully isolated active
  // peers (all their links were cut); both need a re-bootstrap.
  std::vector<PeerId> stranded = rep.stranded;
  for (PeerId p = 0; p < n; ++p) {
    if (graph_.is_active(p) && graph_.degree(p) == 0) stranded.push_back(p);
  }
  std::sort(stranded.begin(), stranded.end());

  if (rep.partitioned()) ++partitions_seen_;
  if (stranded.empty()) return 0;

  DDP_TRACE(tracer_, obs::EventType::kPartitionDetected, minute * kMinute,
            kInvalidPeer, kInvalidPeer,
            {{"components", static_cast<double>(rep.components)},
             {"stranded", static_cast<double>(stranded.size())},
             {"largest", static_cast<double>(rep.largest)}});

  const bool have_core = rep.largest > 0;
  std::size_t repaired = 0;
  for (PeerId p : stranded) {
    if (!eligible(p)) continue;
    int made = 0;
    int attempts = 0;
    const int want = std::max(config_.links, 1);
    const int max_attempts = std::max(config_.max_attempts, want);
    while (made < want && attempts < max_attempts) {
      ++attempts;
      // Degree-preferential target draw: a host cache biases toward
      // well-connected, long-lived peers.
      const PeerId target = graph_.random_active_node_by_degree(rng_, p);
      if (target == kInvalidPeer) break;
      if (!eligible(target) || graph_.has_edge(p, target)) continue;
      // Wire into the main component, not a fellow fragment (when one
      // exists); a repaired fragment member counts as core next sweep.
      if (have_core && rep.label[target] != 0) continue;
      if (connect(p, target)) {
        ++made;
        ++edges_added_;
      }
    }
    if (made > 0) {
      ++repaired;
      ++peers_repaired_;
      DDP_TRACE(tracer_, obs::EventType::kPeerRebootstrapped,
                minute * kMinute, p, kInvalidPeer,
                {{"links", static_cast<double>(made)},
                 {"attempts", static_cast<double>(attempts)}});
    }
  }
  return repaired;
}

void PartitionHealer::save(snapshot::Writer& w) const {
  snapshot::save_rng(w, rng_);
  w.u64(sweeps_);
  w.u64(partitions_seen_);
  w.u64(peers_repaired_);
  w.u64(edges_added_);
}

void PartitionHealer::load(snapshot::Reader& r) {
  snapshot::load_rng(r, rng_);
  sweeps_ = r.u64();
  partitions_seen_ = r.u64();
  peers_repaired_ = r.u64();
  edges_added_ = r.u64();
}

}  // namespace ddp::p2p
