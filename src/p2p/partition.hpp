#pragma once

/// \file partition.hpp
/// Partition detection and repair for the overlay graph.
///
/// DD-POLICE cuts plus churn can fragment an unstructured overlay (the
/// hard-cutoff study of Guclu & Yuksel shows exactly this failure mode
/// for scale-free graphs): healthy peers stranded outside the main
/// component keep issuing queries that can never reach the content they
/// seek. Detection labels the connected components over active, linked
/// peers; repair re-bootstraps eligible stranded peers into the largest
/// component with bounded-retry, degree-preferential reconnection — the
/// same join procedure a real Gnutella servent runs against its host
/// cache when all of its connections die.
///
/// The healer only proposes edges; the engine-specific callback actually
/// creates them (flow and packet engines differ in bookkeeping), and an
/// eligibility filter lets the caller exclude attack agents and peers the
/// quarantine ledger has blocked.

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/trace.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::p2p {

/// Snapshot of the overlay's component structure. Peers that are inactive
/// or fully isolated (degree 0) are not part of any component.
struct PartitionReport {
  std::size_t components = 0;      ///< connected components over linked peers
  std::size_t largest = 0;         ///< size of the largest component
  std::vector<PeerId> stranded;    ///< linked peers outside the largest
  /// Component label per peer (kNoComponent for inactive/isolated peers).
  static constexpr std::uint32_t kNoComponent = 0xffffffffu;
  std::vector<std::uint32_t> label;

  bool partitioned() const noexcept { return components > 1; }
};

/// BFS component labeling over active peers with at least one edge.
PartitionReport find_partitions(const topology::Graph& graph);

struct RepairConfig {
  /// Candidate-target draws per peer before giving up this sweep (the
  /// bounded retry of a real re-bootstrap: a host cache hands out a
  /// limited number of addresses per attempt).
  int max_attempts = 8;
  /// Overlay links to establish per re-bootstrapped peer.
  int links = 2;
};

/// Repairs partitions by reconnecting stranded eligible peers into the
/// largest component. Stateless between sweeps except for counters.
class PartitionHealer {
 public:
  PartitionHealer(const topology::Graph& graph, const RepairConfig& config,
                  util::Rng rng)
      : graph_(graph), config_(config), rng_(rng) {}

  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.bind(sink); }

  /// True when `peer` may be re-linked (false for agents / blocked peers).
  using EligibleFilter = std::function<bool(PeerId peer)>;
  /// Creates the edge in the owning engine; returns success.
  using ConnectFn = std::function<bool(PeerId stranded, PeerId target)>;

  /// One repair sweep at `minute`: detect components, and for every
  /// stranded eligible peer try to wire `links` edges into the largest
  /// component (or, when nothing is linked at all, to any eligible active
  /// peer). Returns the number of peers that regained connectivity.
  std::size_t heal(double minute, const EligibleFilter& eligible,
                   const ConnectFn& connect);

  /// Serialize the healer's rng stream and counters into the writer's
  /// open section (the graph is saved by its owner).
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save().
  void load(snapshot::Reader& r);

  /// Monotone counters for the soak invariants.
  std::uint64_t sweeps() const noexcept { return sweeps_; }
  std::uint64_t partitions_seen() const noexcept { return partitions_seen_; }
  std::uint64_t peers_repaired() const noexcept { return peers_repaired_; }
  std::uint64_t edges_added() const noexcept { return edges_added_; }

 private:
  const topology::Graph& graph_;
  RepairConfig config_;
  util::Rng rng_;
  obs::Tracer tracer_;
  std::uint64_t sweeps_ = 0;
  std::uint64_t partitions_seen_ = 0;
  std::uint64_t peers_repaired_ = 0;
  std::uint64_t edges_added_ = 0;
};

}  // namespace ddp::p2p
