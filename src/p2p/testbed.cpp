#include "p2p/testbed.hpp"

#include <cmath>

#include "p2p/network.hpp"
#include "sim/engine.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"
#include "workload/content.hpp"

namespace ddp::p2p {

TestbedPoint run_testbed_level(const TestbedConfig& config,
                               double send_rate_per_minute,
                               std::uint64_t seed) {
  // Three peers in a chain: A(0) - B(1) - C(2).
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);

  // Peer B's local index is "almost empty" in the paper's testbed — an
  // empty catalogue means no hits, pure lookup-and-forward.
  workload::ContentConfig cc;
  cc.objects = 16;
  cc.mean_replicas = 0.0;
  const workload::ContentModel content(cc, 3);

  sim::Engine engine;
  P2pConfig pc;
  pc.capacity_per_minute = config.capacity_per_minute;
  pc.queue_limit = config.queue_limit;
  pc.hop_latency = 0.001;  // 100 Mbps LAN: propagation is negligible
  util::Rng rng(seed);
  PacketNetwork net(g, content, engine, pc, rng.fork("p2p"));

  // A and C are instrumented endpoints, not bottlenecks.
  net.set_capacity(0, 1e9);
  net.set_capacity(2, 1e9);
  net.set_capacity(1, config.capacity_per_minute);

  // A replays *distinct* queries (the trace file contains millions of
  // unique strings) at a uniform rate — model each as a fresh query object
  // cycling the catalogue.
  const double interval = kMinute / send_rate_per_minute;
  std::uint64_t sent = 0;
  std::function<void()> send_next = [&]() {
    net.issue_query(0, static_cast<workload::ObjectId>(sent % cc.objects));
    ++sent;
    if (engine.now() + interval <= config.window_seconds) {
      engine.schedule_in(interval, send_next);
    }
  };
  engine.schedule_at(0.0, send_next);
  engine.run_until(config.window_seconds);

  TestbedPoint pt;
  pt.sent_per_minute =
      static_cast<double>(sent) * kMinute / config.window_seconds;
  // C's received count = queries B forwarded to C (Fig. 5's y-axis).
  pt.processed_per_minute = static_cast<double>(net.received_at(2)) * kMinute /
                            config.window_seconds;
  pt.received_by_b = static_cast<double>(net.received_at(1));
  const double recv = static_cast<double>(net.received_at(1));
  pt.drop_rate = recv > 0.0 ? static_cast<double>(net.dropped_at(1)) / recv : 0.0;
  return pt;
}

std::vector<TestbedPoint> run_testbed_sweep(const TestbedConfig& config,
                                            const std::vector<double>& rates,
                                            std::uint64_t seed) {
  std::vector<TestbedPoint> out;
  out.reserve(rates.size());
  for (double r : rates) out.push_back(run_testbed_level(config, r, seed));
  return out;
}

}  // namespace ddp::p2p
