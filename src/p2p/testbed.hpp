#pragma once

/// \file testbed.hpp
/// Replication of the paper's three-peer LimeWire testbed (Sec. 2.3,
/// Figures 4-6): peer A is a modified client replaying a query trace at a
/// configured rate toward peer B; B is an ordinary forwarding peer with
/// finite processing capacity; peer C only counts what B forwards.
///
/// The paper's hardware (Dell GX3, P3-733, 100 Mbps LAN) is replaced by the
/// capacity constants it measured: B services ~10,000 queries/min, A can
/// push up to ~29,000 queries/min. Figure 5's drop onset near 15,000/min
/// emerges from B's bounded input queue over the one-minute measurement
/// window, and Figure 6's ~47% drop rate at A's maximum rate follows.

#include <vector>

#include "p2p/config.hpp"
#include "workload/trace.hpp"

namespace ddp::p2p {

struct TestbedConfig {
  /// B's query-processing capacity (queries/minute).
  double capacity_per_minute = 10000.0;
  /// Measurement window, seconds (the paper reports per-minute counts).
  double window_seconds = 60.0;
  /// B's input queue bound, messages.
  std::size_t queue_limit = 5000;
};

struct TestbedPoint {
  double sent_per_minute = 0.0;       ///< rate A offered
  double processed_per_minute = 0.0;  ///< queries B forwarded to C
  double received_by_b = 0.0;         ///< queries that arrived at B
  double drop_rate = 0.0;             ///< fraction B discarded
};

/// Run one load level: A replays distinct queries toward B at
/// `send_rate_per_minute` for the window; returns B's measured behaviour.
TestbedPoint run_testbed_level(const TestbedConfig& config,
                               double send_rate_per_minute,
                               std::uint64_t seed);

/// Sweep the load levels of Figure 5/6 (1,000 .. 29,000 queries/min).
std::vector<TestbedPoint> run_testbed_sweep(const TestbedConfig& config,
                                            const std::vector<double>& rates,
                                            std::uint64_t seed);

}  // namespace ddp::p2p
