#include "sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace ddp::sim {

EventId Engine::schedule_at(SimTime t, Callback fn,
                            obs::EventCategory category) {
  const EventId id = next_id_++;
  heap_.push(Scheduled{std::max(t, now_), seq_++, id,
                       static_cast<std::uint8_t>(category)});
  callbacks_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

EventId Engine::schedule_in(SimTime delay, Callback fn,
                            obs::EventCategory category) {
  return schedule_at(now_ + std::max(0.0, delay), std::move(fn), category);
}

EventId Engine::schedule_every(SimTime period, Callback fn, SimTime phase,
                               obs::EventCategory category) {
  const EventId id = next_id_++;
  periodics_.emplace(id, Periodic{period, std::move(fn)});
  const SimTime first = now_ + (phase >= 0.0 ? phase : period);
  heap_.push(Scheduled{first, seq_++, id, static_cast<std::uint8_t>(category)});
  ++live_;
  return id;
}

bool Engine::cancel(EventId id) {
  const bool was_oneshot = callbacks_.erase(id) > 0;
  const bool was_periodic = periodics_.erase(id) > 0;
  if (was_oneshot || was_periodic) {
    cancelled_.insert(id);
    if (live_ > 0) --live_;
    return true;
  }
  return false;
}

void Engine::dispatch(Callback& fn, std::uint8_t category) {
  if (profiler_ != nullptr) {
    const std::uint64_t t0 = obs::wall_ns();
    fn();
    profiler_->record(category, obs::wall_ns() - t0, live_, now_);
  } else {
    fn();
  }
}

bool Engine::step(SimTime horizon) {
  while (!heap_.empty()) {
    const Scheduled top = heap_.top();
    if (const auto c = cancelled_.find(top.id); c != cancelled_.end()) {
      heap_.pop();
      cancelled_.erase(c);
      continue;
    }
    if (top.t > horizon) return false;
    heap_.pop();
    now_ = std::max(now_, top.t);
    if (const auto p = periodics_.find(top.id); p != periodics_.end()) {
      // Re-arm before running so the callback may cancel itself.
      heap_.push(Scheduled{now_ + p->second.period, seq_++, top.id,
                           top.category});
      ++executed_;
      // Move the callback out before invoking it: a callback that cancels
      // its own periodic erases the map entry, which would otherwise
      // destroy the std::function currently executing (use-after-free).
      Callback fn = std::move(p->second.fn);
      dispatch(fn, top.category);
      // Restore the callback only if the task still exists (the callback
      // may have cancelled it — or rehashed the map by scheduling).
      if (const auto again = periodics_.find(top.id); again != periodics_.end()) {
        again->second.fn = std::move(fn);
      }
      return true;
    }
    if (const auto c = callbacks_.find(top.id); c != callbacks_.end()) {
      // Move out so the callback may schedule (and even cancel) freely.
      Callback fn = std::move(c->second);
      callbacks_.erase(c);
      ++executed_;
      if (live_ > 0) --live_;
      dispatch(fn, top.category);
      return true;
    }
    // Id fired-and-erased concurrently (shouldn't happen); skip.
  }
  return false;
}

void Engine::run_until(SimTime horizon) {
  stopped_ = false;
  while (!stopped_ && step(horizon)) {
  }
  // Advance the clock to the horizon even if the queue drained early, so
  // callers can chain run_until segments with consistent time.
  if (!stopped_) now_ = std::max(now_, horizon);
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && step(std::numeric_limits<double>::infinity())) {
  }
}

}  // namespace ddp::sim
