#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "snapshot/snapshot.hpp"

namespace ddp::sim {

std::uint32_t Engine::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  records_.emplace_back();
  assert(records_.size() <= (kSlotMask + 1) &&
         "more than 2^24 concurrently live events");
  return static_cast<std::uint32_t>(records_.size() - 1);
}

void Engine::free_slot(std::uint32_t slot) {
  Record& r = records_[slot];
  r.fn = nullptr;
  r.period = -1.0;
  r.tag = 0;
  r.live = false;
  // The generation bump is what retires every EventId minted for this
  // slot so far; wraparound after 2^32 reuses is acceptable (an id would
  // have to be held across four billion reuses of one slot to alias).
  ++r.generation;
  free_.push_back(slot);
}

// 4-ary heap: half the depth of a binary heap, and with 16-byte entries
// each node's four children span a single cache line, so the extra
// compares per level are nearly free next to the avoided memory touches.

void Engine::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void Engine::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    const std::size_t end = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = e;
}

void Engine::heap_push(SimTime t, std::uint32_t slot) {
  heap_.push_back(HeapEntry{t, (seq_++ << kSlotBits) | slot});
  sift_up(heap_.size() - 1);
}

void Engine::heap_pop_root() {
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_[0] = heap_[last];
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void Engine::heap_rearm_root(SimTime t) {
  heap_[0].t = t;
  heap_[0].seq_slot = (seq_++ << kSlotBits) | (heap_[0].seq_slot & kSlotMask);
  sift_down(0);  // the new key is never earlier than the old minimum
}

EventId Engine::schedule_at(SimTime t, Callback fn,
                            obs::EventCategory category, std::uint64_t tag) {
  const std::uint32_t slot = alloc_slot();
  Record& r = records_[slot];
  r.fn = std::move(fn);
  r.period = -1.0;
  r.tag = tag;
  r.category = static_cast<std::uint8_t>(category);
  r.live = true;
  heap_push(std::max(t, now_), slot);
  ++live_;
  return make_id(slot, r.generation);
}

EventId Engine::schedule_in(SimTime delay, Callback fn,
                            obs::EventCategory category, std::uint64_t tag) {
  return schedule_at(now_ + std::max(0.0, delay), std::move(fn), category, tag);
}

EventId Engine::schedule_every(SimTime period, Callback fn, SimTime phase,
                               obs::EventCategory category, std::uint64_t tag) {
  const std::uint32_t slot = alloc_slot();
  Record& r = records_[slot];
  r.fn = std::move(fn);
  r.period = period;
  r.tag = tag;
  r.category = static_cast<std::uint8_t>(category);
  r.live = true;
  heap_push(now_ + (phase >= 0.0 ? phase : period), slot);
  ++live_;
  return make_id(slot, r.generation);
}

bool Engine::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint64_t low = id & 0xffffffffULL;
  if (low == 0 || low > records_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(low - 1);
  Record& r = records_[slot];
  if (!r.live || r.generation != static_cast<std::uint32_t>(id >> 32)) {
    return false;  // already fired, already cancelled, or a stale handle
  }
  // O(1): clear the record in place and release the payload now; the heap
  // entry drains lazily when it surfaces at the root, which also returns
  // the slot to the free list (so the slot cannot be reused before then).
  r.live = false;
  r.fn = nullptr;
  if (live_ > 0) --live_;
  return true;
}

void Engine::dispatch(Callback& fn, std::uint8_t category) {
  if (profiler_ != nullptr) {
    const std::uint64_t t0 = obs::wall_ns();
    fn();
    profiler_->record(category, obs::wall_ns() - t0, live_, now_);
  } else {
    fn();
  }
}

bool Engine::step(SimTime horizon) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    const std::uint32_t slot = top.slot();
    Record& r = records_[slot];
    if (!r.live) {
      // A cancelled event's entry: reclaim the slot and keep looking.
      heap_pop_root();
      free_slot(slot);
      continue;
    }
    if (top.t > horizon) return false;
    now_ = std::max(now_, top.t);
    const std::uint8_t category = r.category;
    ++executed_;
    if (r.period >= 0.0) {
      // Periodic: re-arm in place before running, so the callback may
      // cancel itself. The seq draw happens before the callback runs —
      // anything the callback schedules sorts after this task at equal
      // times, exactly as a push-then-run implementation would order it.
      const std::uint32_t generation = r.generation;
      heap_rearm_root(now_ + r.period);
      // Move the callback out before invoking it: a self-cancelling
      // callback clears the record, which would otherwise destroy the
      // std::function currently executing (use-after-free).
      Callback fn = std::move(r.fn);
      dispatch(fn, category);
      // Restore the callback only if the task still exists under the same
      // generation (the callback may have cancelled it).
      Record& again = records_[slot];
      if (again.live && again.generation == generation) {
        again.fn = std::move(fn);
      }
      return true;
    }
    // One-shot: release the slot before dispatch so cancel(id) inside the
    // callback reports false (the event has fired) and the slot is free
    // for immediate reuse by anything the callback schedules.
    Callback fn = std::move(r.fn);
    heap_pop_root();
    free_slot(slot);
    if (live_ > 0) --live_;
    dispatch(fn, category);
    return true;
  }
  return false;
}

void Engine::run_until(SimTime horizon) {
  stopped_ = false;
  while (!stopped_ && step(horizon)) {
  }
  // Advance the clock to the horizon even if the queue drained early, so
  // callers can chain run_until segments with consistent time.
  if (!stopped_) now_ = std::max(now_, horizon);
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && step(std::numeric_limits<double>::infinity())) {
  }
}

bool Engine::consistent(std::string* why) const {
  const auto fail = [why](const char* m) {
    if (why != nullptr) *why = m;
    return false;
  };
  const std::size_t n = records_.size();
  // Every slab slot must sit in exactly one place: the heap (live or
  // lazily-draining cancelled entry) or the free list.
  std::vector<std::uint8_t> where(n, 0);  // 0 unseen, 1 heap, 2 free
  for (std::size_t pos = 0; pos < heap_.size(); ++pos) {
    const HeapEntry& e = heap_[pos];
    const std::uint32_t slot = e.slot();
    if (slot >= n) return fail("heap entry slot out of slab range");
    if ((e.seq_slot >> kSlotBits) >= seq_) {
      return fail("heap entry sequence >= next sequence counter");
    }
    if (where[slot] != 0) return fail("slot referenced by two heap entries");
    where[slot] = 1;
    if (pos > 0 && earlier(e, heap_[(pos - 1) / 4])) {
      return fail("heap order invariant violated (child earlier than parent)");
    }
  }
  for (const std::uint32_t slot : free_) {
    if (slot >= n) return fail("free-list slot out of slab range");
    if (where[slot] != 0) {
      return fail("slot on the free list and in the heap (or listed twice)");
    }
    where[slot] = 2;
    if (records_[slot].live) return fail("free-list slot marked live");
  }
  std::size_t live_count = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (where[s] == 0) return fail("slot neither in the heap nor on the free list");
    if (records_[s].live) ++live_count;
  }
  if (live_count != live_) return fail("live counter disagrees with live bits");
  return true;
}

void Engine::save(snapshot::Writer& w) const {
  w.f64(now_);
  w.u64(seq_);
  w.u64(executed_);
  w.u64(live_);
  w.size(records_.size());
  for (const Record& r : records_) {
    if (r.live && r.tag == 0) {
      throw snapshot::SnapshotError(
          "engine has a pending event scheduled without a restore tag");
    }
    w.f64(r.period);
    w.u64(r.tag);
    w.u32(r.generation);
    w.u8(r.category);
    w.boolean(r.live);
  }
  w.size(free_.size());
  for (const std::uint32_t slot : free_) w.u32(slot);
  w.size(heap_.size());
  for (const HeapEntry& e : heap_) {
    w.f64(e.t);
    w.u64(e.seq_slot);
  }
}

void Engine::load(snapshot::Reader& r, const CallbackBinder& bind) {
  now_ = r.f64();
  seq_ = r.u64();
  executed_ = r.u64();
  live_ = static_cast<std::size_t>(r.u64());
  stopped_ = false;
  const std::size_t slots = r.size(kSlotMask + 1);
  records_.assign(slots, Record{});
  for (Record& rec : records_) {
    rec.period = r.f64();
    rec.tag = r.u64();
    rec.generation = r.u32();
    rec.category = r.u8();
    rec.live = r.boolean();
  }
  const std::size_t nfree = r.size(slots);
  free_.resize(nfree);
  for (std::uint32_t& slot : free_) slot = r.u32();
  const std::size_t nheap = r.size(slots);
  heap_.resize(nheap);
  for (HeapEntry& e : heap_) {
    e.t = r.f64();
    e.seq_slot = r.u64();
  }
  // Rebind live callbacks; the heap entry carries the next fire time the
  // binder may need (e.g. a stall-resume event's due time).
  for (const HeapEntry& e : heap_) {
    const std::uint32_t slot = e.slot();
    if (slot >= records_.size()) {
      throw snapshot::SnapshotError("heap entry slot out of slab range");
    }
    Record& rec = records_[slot];
    if (!rec.live) continue;
    rec.fn = bind(rec.tag, e.t, rec.period,
                  static_cast<obs::EventCategory>(rec.category));
    if (!rec.fn) {
      throw snapshot::SnapshotError("no callback bound for event tag " +
                                    std::to_string(rec.tag));
    }
  }
  std::string why;
  if (!consistent(&why)) {
    throw snapshot::SnapshotError("restored engine inconsistent: " + why);
  }
}

}  // namespace ddp::sim
