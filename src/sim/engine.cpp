#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace ddp::sim {

std::uint32_t Engine::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  records_.emplace_back();
  assert(records_.size() <= (kSlotMask + 1) &&
         "more than 2^24 concurrently live events");
  return static_cast<std::uint32_t>(records_.size() - 1);
}

void Engine::free_slot(std::uint32_t slot) {
  Record& r = records_[slot];
  r.fn = nullptr;
  r.period = -1.0;
  r.live = false;
  // The generation bump is what retires every EventId minted for this
  // slot so far; wraparound after 2^32 reuses is acceptable (an id would
  // have to be held across four billion reuses of one slot to alias).
  ++r.generation;
  free_.push_back(slot);
}

// 4-ary heap: half the depth of a binary heap, and with 16-byte entries
// each node's four children span a single cache line, so the extra
// compares per level are nearly free next to the avoided memory touches.

void Engine::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void Engine::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    const std::size_t end = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = e;
}

void Engine::heap_push(SimTime t, std::uint32_t slot) {
  heap_.push_back(HeapEntry{t, (seq_++ << kSlotBits) | slot});
  sift_up(heap_.size() - 1);
}

void Engine::heap_pop_root() {
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_[0] = heap_[last];
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void Engine::heap_rearm_root(SimTime t) {
  heap_[0].t = t;
  heap_[0].seq_slot = (seq_++ << kSlotBits) | (heap_[0].seq_slot & kSlotMask);
  sift_down(0);  // the new key is never earlier than the old minimum
}

EventId Engine::schedule_at(SimTime t, Callback fn,
                            obs::EventCategory category) {
  const std::uint32_t slot = alloc_slot();
  Record& r = records_[slot];
  r.fn = std::move(fn);
  r.period = -1.0;
  r.category = static_cast<std::uint8_t>(category);
  r.live = true;
  heap_push(std::max(t, now_), slot);
  ++live_;
  return make_id(slot, r.generation);
}

EventId Engine::schedule_in(SimTime delay, Callback fn,
                            obs::EventCategory category) {
  return schedule_at(now_ + std::max(0.0, delay), std::move(fn), category);
}

EventId Engine::schedule_every(SimTime period, Callback fn, SimTime phase,
                               obs::EventCategory category) {
  const std::uint32_t slot = alloc_slot();
  Record& r = records_[slot];
  r.fn = std::move(fn);
  r.period = period;
  r.category = static_cast<std::uint8_t>(category);
  r.live = true;
  heap_push(now_ + (phase >= 0.0 ? phase : period), slot);
  ++live_;
  return make_id(slot, r.generation);
}

bool Engine::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint64_t low = id & 0xffffffffULL;
  if (low == 0 || low > records_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(low - 1);
  Record& r = records_[slot];
  if (!r.live || r.generation != static_cast<std::uint32_t>(id >> 32)) {
    return false;  // already fired, already cancelled, or a stale handle
  }
  // O(1): clear the record in place and release the payload now; the heap
  // entry drains lazily when it surfaces at the root, which also returns
  // the slot to the free list (so the slot cannot be reused before then).
  r.live = false;
  r.fn = nullptr;
  if (live_ > 0) --live_;
  return true;
}

void Engine::dispatch(Callback& fn, std::uint8_t category) {
  if (profiler_ != nullptr) {
    const std::uint64_t t0 = obs::wall_ns();
    fn();
    profiler_->record(category, obs::wall_ns() - t0, live_, now_);
  } else {
    fn();
  }
}

bool Engine::step(SimTime horizon) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    const std::uint32_t slot = top.slot();
    Record& r = records_[slot];
    if (!r.live) {
      // A cancelled event's entry: reclaim the slot and keep looking.
      heap_pop_root();
      free_slot(slot);
      continue;
    }
    if (top.t > horizon) return false;
    now_ = std::max(now_, top.t);
    const std::uint8_t category = r.category;
    ++executed_;
    if (r.period >= 0.0) {
      // Periodic: re-arm in place before running, so the callback may
      // cancel itself. The seq draw happens before the callback runs —
      // anything the callback schedules sorts after this task at equal
      // times, exactly as a push-then-run implementation would order it.
      const std::uint32_t generation = r.generation;
      heap_rearm_root(now_ + r.period);
      // Move the callback out before invoking it: a self-cancelling
      // callback clears the record, which would otherwise destroy the
      // std::function currently executing (use-after-free).
      Callback fn = std::move(r.fn);
      dispatch(fn, category);
      // Restore the callback only if the task still exists under the same
      // generation (the callback may have cancelled it).
      Record& again = records_[slot];
      if (again.live && again.generation == generation) {
        again.fn = std::move(fn);
      }
      return true;
    }
    // One-shot: release the slot before dispatch so cancel(id) inside the
    // callback reports false (the event has fired) and the slot is free
    // for immediate reuse by anything the callback schedules.
    Callback fn = std::move(r.fn);
    heap_pop_root();
    free_slot(slot);
    if (live_ > 0) --live_;
    dispatch(fn, category);
    return true;
  }
  return false;
}

void Engine::run_until(SimTime horizon) {
  stopped_ = false;
  while (!stopped_ && step(horizon)) {
  }
  // Advance the clock to the horizon even if the queue drained early, so
  // callers can chain run_until segments with consistent time.
  if (!stopped_) now_ = std::max(now_, horizon);
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && step(std::numeric_limits<double>::infinity())) {
  }
}

}  // namespace ddp::sim
