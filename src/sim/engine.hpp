#pragma once

/// \file engine.hpp
/// Discrete-event simulation engine. A single indexed binary heap of
/// timestamped events with deterministic FIFO tie-breaking (events
/// scheduled earlier run earlier at equal timestamps), O(1)-validated
/// cancellation handles, and periodic tasks rescheduled in place.
///
/// Storage layout: event records live in a slab (vector + free list) whose
/// slots own their callbacks inline; the heap holds only (time, seq, slot)
/// triples. cancel() is O(1): it clears the record in place (liveness is a
/// flag in the slab, not a tombstone hash-set) and the dead heap entry is
/// reclaimed when it surfaces at the root — no hash-map probes anywhere on
/// the hot path. EventIds are generation-tagged slot handles: a slot bumps
/// its generation on reuse, so a stale id can never cancel a newer event.
///
/// Threading contract: the engine is single-writer. All scheduling,
/// cancellation and run_*() calls must come from the one thread that owns
/// the engine (events themselves run on that thread); nothing here is
/// locked. Determinism and reproducibility outrank parallel speedup inside
/// one run — cross-run parallelism is provided by experiments::SweepRunner,
/// which fans independent (config, seed) trials across a util::ThreadPool,
/// one engine per trial, and never shares an engine between threads.
///
/// Observability: every event carries an obs::EventCategory tag, and an
/// optional obs::EngineProfiler (set_profiler) receives per-dispatch
/// wall-clock timings plus the live-event gauge. Without a profiler the
/// dispatch path pays a single null-pointer branch.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "util/types.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time (seconds). Starts at 0.
  SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now, clamped up if in the
  /// past). Returns a handle usable with cancel(). `category` tags the
  /// event for the attached profiler (free when none is attached).
  /// `tag` is an opaque caller token persisted by save(): a checkpointed
  /// event is rebound to a fresh callback via the tag on load. Events
  /// scheduled with the default tag of 0 are *not* restorable — save()
  /// rejects a pending tagless event, so anything that can be in flight
  /// across a checkpoint must carry a tag.
  EventId schedule_at(SimTime t, Callback fn,
                      obs::EventCategory category = obs::EventCategory::kGeneric,
                      std::uint64_t tag = 0);

  /// Schedule `fn` `delay` seconds from now.
  EventId schedule_in(SimTime delay, Callback fn,
                      obs::EventCategory category = obs::EventCategory::kGeneric,
                      std::uint64_t tag = 0);

  /// Schedule `fn` every `period` seconds starting at now + phase
  /// (phase defaults to one full period). The task reschedules itself
  /// until cancelled; the returned id stays valid across repetitions.
  /// Periodic dispatches are profiled under kPeriodic unless tagged.
  EventId schedule_every(SimTime period, Callback fn, SimTime phase = -1.0,
                         obs::EventCategory category = obs::EventCategory::kPeriodic,
                         std::uint64_t tag = 0);

  /// Cancel a pending (or periodic) event. Safe on already-fired, unknown
  /// or stale (generation-reused) ids; returns whether something was
  /// actually cancelled.
  bool cancel(EventId id);

  /// Run until the event queue drains or simulated time would pass
  /// `horizon` (inclusive). Events exactly at the horizon run.
  void run_until(SimTime horizon);

  /// Run until the queue drains (only sensible with a finite workload).
  void run();

  /// Stop the current run_* call after the in-flight event completes.
  void stop() noexcept { stopped_ = true; }

  /// Attach (or detach, with nullptr) a dispatch profiler. The profiler
  /// must outlive the engine or be detached before destruction.
  void set_profiler(obs::EngineProfiler* profiler) noexcept {
    profiler_ = profiler;
  }
  obs::EngineProfiler* profiler() const noexcept { return profiler_; }

  std::uint64_t events_executed() const noexcept { return executed_; }
  /// Live (not-yet-fired, not-cancelled) events; a periodic counts once
  /// for its whole lifetime. Maintained as an explicit counter: a
  /// cancelled event's heap entry is reclaimed lazily, so the heap size
  /// alone transiently overcounts.
  std::size_t pending() const noexcept { return live_; }

  /// Structural self-check: heap order invariant, slab/free-list slot
  /// partition, live counter vs live bits, heap-entry slot/seq bounds.
  /// Returns false and (when `why` is non-null) a description of the first
  /// violation found. O(slots + heap); intended for soak standing
  /// invariants and post-restore validation, not the dispatch path.
  bool consistent(std::string* why = nullptr) const;

  /// Rebinds a checkpointed event's callback on load. Receives the tag the
  /// event was scheduled with, its next fire time, its period (< 0 for a
  /// one-shot) and its category; returns the replacement callback. Must
  /// return a non-empty callback for every tag it is handed.
  using CallbackBinder = std::function<Callback(
      std::uint64_t tag, SimTime t, SimTime period, obs::EventCategory category)>;

  /// Serialize the full engine state (clock, sequence counter, slab, free
  /// list, heap) into the writer's open section. Throws SnapshotError if a
  /// live event carries the non-restorable tag 0.
  void save(snapshot::Writer& w) const;

  /// Restore engine state saved by save(), rebinding each live event's
  /// callback through `bind`. Replaces all current state; throws
  /// SnapshotError (leaving the engine unusable) on malformed input, a
  /// binder failure, or a restored state that fails consistent().
  void load(snapshot::Reader& r, const CallbackBinder& bind);

 private:
  /// Slab slot owning one event's callback. `period < 0` marks a one-shot.
  /// `generation` is baked into the EventId so slot reuse invalidates old
  /// handles; `live` is the inline cancellation flag (a cancelled slot's
  /// heap entry drains lazily, and the slot is only reusable after it has).
  struct Record {
    Callback fn;
    SimTime period = -1.0;
    std::uint64_t tag = 0;  ///< caller token for checkpoint rebinding
    std::uint32_t generation = 0;
    std::uint8_t category = 0;
    bool live = false;
  };

  /// Heap key: earliest time first, FIFO (seq) among equal times. The
  /// entry is packed to 16 bytes — `seq_slot` holds the 40-bit schedule
  /// sequence number in the high bits and the 24-bit slab slot in the low
  /// bits, so the tie-break is one integer compare and four entries share
  /// a cache line. 2^40 total schedules and 2^24 concurrently-live events
  /// are far beyond any simulated workload here (alloc_slot asserts the
  /// slot bound).
  struct HeapEntry {
    SimTime t;
    std::uint64_t seq_slot;

    std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(seq_slot & kSlotMask);
    }
  };
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.seq_slot < b.seq_slot;  // seq occupies the high bits
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t generation) noexcept {
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  void heap_push(SimTime t, std::uint32_t slot);
  void heap_pop_root();
  void heap_rearm_root(SimTime t);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);

  bool step(SimTime horizon);
  void dispatch(Callback& fn, std::uint8_t category);

  obs::EngineProfiler* profiler_ = nullptr;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<Record> records_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;
};

}  // namespace ddp::sim
