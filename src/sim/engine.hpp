#pragma once

/// \file engine.hpp
/// Discrete-event simulation engine. A binary heap of timestamped events
/// with deterministic FIFO tie-breaking (events scheduled earlier run
/// earlier at equal timestamps), cancellation handles, and periodic tasks.
///
/// The engine is deliberately single-threaded: determinism and
/// reproducibility outrank parallel speedup inside one run, and the
/// experiment harness parallelizes at trial granularity instead.
///
/// Observability: every event carries an obs::EventCategory tag, and an
/// optional obs::EngineProfiler (set_profiler) receives per-dispatch
/// wall-clock timings plus the live-event gauge. Without a profiler the
/// dispatch path pays a single null-pointer branch.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/profile.hpp"
#include "util/types.hpp"

namespace ddp::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time (seconds). Starts at 0.
  SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now, clamped up if in the
  /// past). Returns a handle usable with cancel(). `category` tags the
  /// event for the attached profiler (free when none is attached).
  EventId schedule_at(SimTime t, Callback fn,
                      obs::EventCategory category = obs::EventCategory::kGeneric);

  /// Schedule `fn` `delay` seconds from now.
  EventId schedule_in(SimTime delay, Callback fn,
                      obs::EventCategory category = obs::EventCategory::kGeneric);

  /// Schedule `fn` every `period` seconds starting at now + phase
  /// (phase defaults to one full period). The task reschedules itself
  /// until cancelled; the returned id stays valid across repetitions.
  /// Periodic dispatches are profiled under kPeriodic unless tagged.
  EventId schedule_every(SimTime period, Callback fn, SimTime phase = -1.0,
                         obs::EventCategory category = obs::EventCategory::kPeriodic);

  /// Cancel a pending (or periodic) event. Safe on already-fired or
  /// unknown ids; returns whether something was actually cancelled.
  bool cancel(EventId id);

  /// Run until the event queue drains or simulated time would pass
  /// `horizon` (inclusive). Events exactly at the horizon run.
  void run_until(SimTime horizon);

  /// Run until the queue drains (only sensible with a finite workload).
  void run();

  /// Stop the current run_* call after the in-flight event completes.
  void stop() noexcept { stopped_ = true; }

  /// Attach (or detach, with nullptr) a dispatch profiler. The profiler
  /// must outlive the engine or be detached before destruction.
  void set_profiler(obs::EngineProfiler* profiler) noexcept {
    profiler_ = profiler;
  }
  obs::EngineProfiler* profiler() const noexcept { return profiler_; }

  std::uint64_t events_executed() const noexcept { return executed_; }
  /// Live (not-yet-fired, not-cancelled) events. Maintained as an explicit
  /// counter rather than heap_.size() - cancelled_.size(): the heap entry of
  /// a cancelled event is collected lazily, so the two containers shrink at
  /// different times and their difference can transiently underflow.
  std::size_t pending() const noexcept { return live_; }

 private:
  struct Scheduled {
    SimTime t;
    std::uint64_t seq;  ///< tie-break: FIFO among equal times
    EventId id;
    std::uint8_t category;  ///< obs::EventCategory of the dispatch
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  struct Periodic {
    SimTime period;
    Callback fn;
  };

  bool step(SimTime horizon);
  void dispatch(Callback& fn, std::uint8_t category);

  obs::EngineProfiler* profiler_ = nullptr;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  EventId next_id_ = 1;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_map<EventId, Periodic> periodics_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ddp::sim
