#include "snapshot/snapshot.hpp"

#include <bit>
#include <cstdio>
#include <fstream>

namespace ddp::snapshot {

std::string section_name(std::uint32_t id) {
  std::string s;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((id >> (8 * i)) & 0xff);
    s.push_back((c >= 0x20 && c < 0x7f) ? c : '?');
  }
  return s;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) noexcept {
  // Table-free bitwise CRC-32 (reflected 0xEDB88320). Snapshot payloads
  // are MBs at most and written once per simulated-minute checkpoint, so
  // the byte-at-a-time loop is nowhere near any hot path.
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xffffffffu;
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

/// Header: magic, version, config digest, section count.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
/// Per-section frame: id, payload length, payload CRC.
constexpr std::size_t kSectionHeaderBytes = 4 + 8 + 4;

}  // namespace

std::vector<std::uint8_t>& Writer::buf() {
  if (!open_) throw SnapshotError("write outside of a section");
  return sections_.back().payload;
}

void Writer::begin_section(std::uint32_t id) {
  if (open_) throw SnapshotError("begin_section with a section still open");
  sections_.push_back(Section{id, {}});
  open_ = true;
}

void Writer::end_section() {
  if (!open_) throw SnapshotError("end_section with no section open");
  open_ = false;
}

void Writer::u8(std::uint8_t v) { buf().push_back(v); }
void Writer::u32(std::uint32_t v) { put_u32(buf(), v); }
void Writer::u64(std::uint64_t v) { put_u64(buf(), v); }
void Writer::i64(std::int64_t v) { put_u64(buf(), static_cast<std::uint64_t>(v)); }
void Writer::f64(double v) { put_u64(buf(), std::bit_cast<std::uint64_t>(v)); }
void Writer::boolean(bool v) { buf().push_back(v ? 1 : 0); }

void Writer::str(const std::string& s) {
  u64(s.size());
  auto& b = buf();
  b.insert(b.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> Writer::finish(std::uint64_t config_digest) const {
  if (open_) throw SnapshotError("finish with a section still open");
  std::vector<std::uint8_t> out;
  std::size_t total = kHeaderBytes;
  for (const Section& s : sections_) total += kSectionHeaderBytes + s.payload.size();
  out.reserve(total);
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u64(out, config_digest);
  put_u64(out, sections_.size());
  for (const Section& s : sections_) {
    put_u32(out, s.id);
    put_u64(out, s.payload.size());
    put_u32(out, crc32(s.payload.data(), s.payload.size()));
    out.insert(out.end(), s.payload.begin(), s.payload.end());
  }
  return out;
}

void Writer::write_file(const std::string& path,
                        std::uint64_t config_digest) const {
  const std::vector<std::uint8_t> image = finish(config_digest);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw SnapshotError("cannot open " + tmp + " for writing");
    f.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
    f.flush();
    if (!f) throw SnapshotError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot rename " + tmp + " to " + path);
  }
}

Reader Reader::from_bytes(std::vector<std::uint8_t> data) {
  Reader r;
  r.data_ = std::move(data);
  if (r.data_.size() < kHeaderBytes) {
    throw SnapshotError("snapshot truncated: shorter than the header");
  }
  const std::uint8_t* p = r.data_.data();
  if (get_u32(p) != kMagic) throw SnapshotError("bad magic: not a snapshot");
  const std::uint32_t version = get_u32(p + 4);
  if (version != kVersion) {
    throw SnapshotError("snapshot version " + std::to_string(version) +
                        " not supported (expected " + std::to_string(kVersion) +
                        ")");
  }
  r.digest_ = get_u64(p + 8);
  const std::uint64_t sections = get_u64(p + 16);
  // Validate the whole frame up front: every section header in bounds,
  // every payload present, every CRC matching. Only a fully-verified image
  // ever reaches a subsystem loader — this is the no-partial-load contract.
  std::size_t off = kHeaderBytes;
  for (std::uint64_t i = 0; i < sections; ++i) {
    if (r.data_.size() - off < kSectionHeaderBytes) {
      throw SnapshotError("snapshot truncated in section header " +
                          std::to_string(i));
    }
    const std::uint32_t id = get_u32(p + off);
    const std::uint64_t len = get_u64(p + off + 4);
    const std::uint32_t want_crc = get_u32(p + off + 12);
    off += kSectionHeaderBytes;
    if (len > r.data_.size() - off) {
      throw SnapshotError("snapshot truncated in section " + section_name(id) +
                          " payload");
    }
    const std::uint32_t got_crc = crc32(p + off, static_cast<std::size_t>(len));
    if (got_crc != want_crc) {
      throw SnapshotError("section " + section_name(id) +
                          ": crc mismatch (corrupt snapshot)");
    }
    off += static_cast<std::size_t>(len);
  }
  if (off != r.data_.size()) {
    throw SnapshotError("trailing bytes after the last section");
  }
  r.section_count_ = static_cast<std::size_t>(sections);
  r.next_section_ = kHeaderBytes;
  return r;
}

Reader Reader::from_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw SnapshotError("cannot open snapshot file " + path);
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(f)),
                                 std::istreambuf_iterator<char>());
  if (f.bad()) throw SnapshotError("read error on snapshot file " + path);
  return from_bytes(std::move(data));
}

void Reader::need(std::size_t n) const {
  if (!in_section_) throw SnapshotError("read outside of a section");
  if (sec_end_ - pos_ < n) {
    throw SnapshotError("section payload exhausted (format mismatch)");
  }
}

void Reader::begin_section(std::uint32_t id) {
  if (in_section_) throw SnapshotError("begin_section with a section open");
  if (sections_read_ >= section_count_) {
    throw SnapshotError("expected section " + section_name(id) +
                        " but the snapshot has no more sections");
  }
  const std::uint8_t* p = data_.data() + next_section_;
  const std::uint32_t got = get_u32(p);
  if (got != id) {
    throw SnapshotError("expected section " + section_name(id) + " but found " +
                        section_name(got));
  }
  const std::uint64_t len = get_u64(p + 4);
  pos_ = next_section_ + kSectionHeaderBytes;
  sec_end_ = pos_ + static_cast<std::size_t>(len);
  next_section_ = sec_end_;
  ++sections_read_;
  in_section_ = true;
}

void Reader::end_section() {
  if (!in_section_) throw SnapshotError("end_section with no section open");
  if (pos_ != sec_end_) {
    throw SnapshotError("section not fully consumed (" +
                        std::to_string(sec_end_ - pos_) +
                        " bytes left; format mismatch)");
  }
  in_section_ = false;
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  const std::uint32_t v = get_u32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  const std::uint64_t v = get_u64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw SnapshotError("corrupt boolean value");
  return v != 0;
}

std::size_t Reader::size(std::size_t max) {
  const std::uint64_t v = u64();
  if (v > max) {
    throw SnapshotError("stored count " + std::to_string(v) +
                        " exceeds bound " + std::to_string(max));
  }
  return static_cast<std::size_t>(v);
}

std::string Reader::str(std::size_t max_len) {
  const std::size_t n = size(max_len);
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace ddp::snapshot
