#pragma once

/// \file snapshot.hpp
/// Versioned binary snapshot framing: the serialization discipline behind
/// checkpoint/restore. A snapshot is a header (magic, format version,
/// config digest) followed by a sequence of sections, each carrying a
/// fourcc id, an explicit payload length and a CRC32 of the payload.
///
/// Design rules (after the save/load_xdr idiom the ROADMAP cites):
///   * explicit-width little-endian primitives only — no struct memcpy,
///     no host-endianness leaks, no padding bytes on the wire;
///   * every section is integrity-checked *before* any state is restored
///     (Reader::from_bytes walks the whole frame and verifies every CRC
///     up front), so a truncated or bit-flipped snapshot is rejected with
///     a SnapshotError and never half-loaded;
///   * all variable-length reads are bounded (Reader::size takes an
///     explicit maximum) so a corrupt length field cannot drive a
///     multi-gigabyte allocation;
///   * the header's config digest pins the snapshot to the generating
///     configuration — restoring under a different config is an error,
///     not a silent divergence.
///
/// Writers buffer everything in memory (snapshots are MBs at most) and
/// write files atomically: payload to `<path>.tmp`, then rename, so a
/// crash mid-checkpoint never leaves a torn snapshot at the target path.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ddp::snapshot {

/// "DDPS" little-endian.
inline constexpr std::uint32_t kMagic = 0x53504444u;
/// Bump on any incompatible layout change; loaders reject mismatches.
inline constexpr std::uint32_t kVersion = 1;

/// Fourcc section id, e.g. section_id("FLOW").
constexpr std::uint32_t section_id(const char (&s)[5]) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24);
}

/// Human-readable rendering of a fourcc id (for error messages).
std::string section_name(std::uint32_t id);

/// Structured rejection: carries a human-readable reason ("bad magic",
/// "section FLOW: crc mismatch", ...). Loaders throw; nothing is ever
/// partially applied from a snapshot that fails framing validation.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3 polynomial, reflected), the integrity check on every
/// section payload.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len) noexcept;

class Writer {
 public:
  /// Open a new section; all writes land in it until end_section().
  void begin_section(std::uint32_t id);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s);

  /// Assemble the full snapshot image: header + every section framed with
  /// length and CRC. All sections must be closed.
  std::vector<std::uint8_t> finish(std::uint64_t config_digest) const;

  /// finish() + atomic file write (tmp + rename). Throws SnapshotError on
  /// any IO failure.
  void write_file(const std::string& path, std::uint64_t config_digest) const;

 private:
  struct Section {
    std::uint32_t id = 0;
    std::vector<std::uint8_t> payload;
  };

  std::vector<std::uint8_t>& buf();

  std::vector<Section> sections_;
  bool open_ = false;
};

class Reader {
 public:
  /// Parse and *fully validate* a snapshot image: magic, version, section
  /// framing and every section CRC. Throws SnapshotError on any problem —
  /// a Reader that constructs successfully is integrity-checked end to end.
  static Reader from_bytes(std::vector<std::uint8_t> data);
  static Reader from_file(const std::string& path);

  std::uint64_t config_digest() const noexcept { return digest_; }

  /// Enter the next section, which must carry exactly this id (sections
  /// are ordered by contract; an unexpected id is a structural error).
  void begin_section(std::uint32_t id);
  /// Leave the current section; throws if payload bytes remain unread
  /// (length mismatch between writer and loader is a bug, not noise).
  void end_section();

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  /// Bounded count read: throws when the stored value exceeds `max`.
  std::size_t size(std::size_t max);
  std::string str(std::size_t max_len = 1u << 20);

  /// Unread bytes of the current section (for element-count sanity bounds).
  std::size_t remaining() const noexcept { return sec_end_ - pos_; }

  /// Sections not yet entered — loaders assert 0 after their last
  /// begin/end pair so trailing sections from a shape mismatch are caught.
  std::size_t sections_remaining() const noexcept {
    return section_count_ - sections_read_;
  }

 private:
  Reader() = default;
  void need(std::size_t n) const;

  std::vector<std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::size_t next_section_ = 0;  ///< offset of the next section header
  std::size_t sec_end_ = 0;
  bool in_section_ = false;
  std::uint64_t digest_ = 0;
  std::size_t section_count_ = 0;
  std::size_t sections_read_ = 0;
};

}  // namespace ddp::snapshot
