#pragma once

/// \file state_io.hpp
/// Shared serializers for the util value types that appear in many
/// subsystems' checkpoint sections (Rng streams, rate windows, histograms,
/// plain vectors). Header-only so util itself never depends on snapshot.

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/snapshot.hpp"
#include "util/rate_window.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ddp::snapshot {

inline void save_rng(Writer& w, const util::Rng& rng) {
  const util::Rng::State s = rng.state();
  w.u64(s.state);
  w.u64(s.inc);
  w.u64(s.seed_origin);
  w.f64(s.spare_normal);
  w.boolean(s.has_spare);
}

inline void load_rng(Reader& r, util::Rng& rng) {
  util::Rng::State s;
  s.state = r.u64();
  s.inc = r.u64();
  s.seed_origin = r.u64();
  s.spare_normal = r.f64();
  s.has_spare = r.boolean();
  rng.restore(s);
}

inline void save_rate_window(Writer& w, const util::RateWindow& rw) {
  const util::RateWindow::Raw raw = rw.raw();
  w.f64(raw.window);
  w.f64(raw.bucket_len);
  w.size(raw.buckets.size());
  for (const double b : raw.buckets) w.f64(b);
  w.i64(raw.head_index);
  w.f64(raw.sum);
  w.boolean(raw.started);
}

inline void load_rate_window(Reader& r, util::RateWindow& rw) {
  util::RateWindow::Raw raw;
  raw.window = r.f64();
  raw.bucket_len = r.f64();
  raw.buckets.resize(r.size(1u << 16));
  for (double& b : raw.buckets) b = r.f64();
  raw.head_index = r.i64();
  raw.sum = r.f64();
  raw.started = r.boolean();
  if (!rw.restore(std::move(raw))) {
    throw SnapshotError("rate window restore rejected (invalid raw state)");
  }
}

inline void save_histogram(Writer& w, const util::Histogram& h) {
  w.f64(h.total_weight());
  const std::vector<double>& counts = h.raw_counts();
  w.size(counts.size());
  for (const double c : counts) w.f64(c);
}

/// Restores into a histogram already constructed with the original bin
/// layout; throws when the stored bin count disagrees.
inline void load_histogram(Reader& r, util::Histogram& h) {
  const double total = r.f64();
  std::vector<double> counts(r.size(1u << 20));
  for (double& c : counts) c = r.f64();
  if (!h.restore_counts(std::move(counts), total)) {
    throw SnapshotError("histogram bin layout mismatch");
  }
}

inline void save_f64_vector(Writer& w, const std::vector<double>& v) {
  w.size(v.size());
  for (const double x : v) w.f64(x);
}

inline void load_f64_vector(Reader& r, std::vector<double>& v,
                            std::size_t max = 1u << 26) {
  v.resize(r.size(max));
  for (double& x : v) x = r.f64();
}

inline void save_u32_vector(Writer& w, const std::vector<std::uint32_t>& v) {
  w.size(v.size());
  for (const std::uint32_t x : v) w.u32(x);
}

inline void load_u32_vector(Reader& r, std::vector<std::uint32_t>& v,
                            std::size_t max = 1u << 26) {
  v.resize(r.size(max));
  for (std::uint32_t& x : v) x = r.u32();
}

}  // namespace ddp::snapshot
