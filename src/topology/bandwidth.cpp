#include "topology/bandwidth.hpp"

#include <algorithm>

namespace ddp::topology {

std::string_view bandwidth_class_name(BandwidthClass c) noexcept {
  switch (c) {
    case BandwidthClass::kModem: return "modem";
    case BandwidthClass::kDsl: return "dsl";
    case BandwidthClass::kCable: return "cable";
    case BandwidthClass::kT1: return "t1";
    case BandwidthClass::kT3: return "t3";
  }
  return "?";
}

double downstream_kbps(BandwidthClass c) noexcept {
  switch (c) {
    case BandwidthClass::kModem: return 56.0;
    case BandwidthClass::kDsl: return 1500.0;
    case BandwidthClass::kCable: return 3000.0;
    case BandwidthClass::kT1: return 1544.0;
    case BandwidthClass::kT3: return 44736.0;
  }
  return 0.0;
}

double upstream_kbps(BandwidthClass c) noexcept {
  switch (c) {
    case BandwidthClass::kModem: return 56.0;
    case BandwidthClass::kDsl: return 128.0;
    case BandwidthClass::kCable: return 400.0;
    case BandwidthClass::kT1: return 1544.0;
    case BandwidthClass::kT3: return 44736.0;
  }
  return 0.0;
}

double kbps_to_queries_per_minute(double kbps) noexcept {
  // Kbps -> bytes/min -> queries/min.
  const double bytes_per_minute = kbps * 1000.0 / 8.0 * 60.0;
  return bytes_per_minute / kQueryWireBytes;
}

BandwidthMap::BandwidthMap(std::size_t peer_count, util::Rng& rng) {
  classes_.reserve(peer_count);
  for (std::size_t i = 0; i < peer_count; ++i) {
    const double u = rng.uniform();
    BandwidthClass c;
    if (u < 0.22) c = BandwidthClass::kModem;
    else if (u < 0.52) c = BandwidthClass::kDsl;
    else if (u < 0.90) c = BandwidthClass::kCable;
    else if (u < 0.98) c = BandwidthClass::kT1;
    else c = BandwidthClass::kT3;
    classes_.push_back(c);
  }
}

double BandwidthMap::peer_upstream_kbps(PeerId id) const noexcept {
  return upstream_kbps(classes_[id]);
}

double BandwidthMap::peer_downstream_kbps(PeerId id) const noexcept {
  return downstream_kbps(classes_[id]);
}

double BandwidthMap::link_queries_per_minute(PeerId from, PeerId to) const noexcept {
  const double kbps =
      std::min(peer_upstream_kbps(from), peer_downstream_kbps(to));
  return kbps_to_queries_per_minute(kbps);
}

double BandwidthMap::fraction_downstream_at_least(double kbps) const noexcept {
  if (classes_.empty()) return 0.0;
  std::size_t n = 0;
  for (auto c : classes_) {
    if (downstream_kbps(c) >= kbps) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(classes_.size());
}

double BandwidthMap::fraction_upstream_at_most(double kbps) const noexcept {
  if (classes_.empty()) return 0.0;
  std::size_t n = 0;
  for (auto c : classes_) {
    if (upstream_kbps(c) <= kbps) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(classes_.size());
}

}  // namespace ddp::topology
