#pragma once

/// \file bandwidth.hpp
/// Per-peer access-link bandwidth model following the measurements the
/// paper cites (Saroiu et al. [19], Sec. 3.5): "78% of the participating
/// peers have downstream bottleneck bandwidths of at least 1000 Kbps, and
/// 22% of the participating peers have upstream bottleneck bandwidths of
/// 100 Kbps or less."
///
/// Each peer draws a BandwidthClass; a logical link's query capacity is the
/// bottleneck of the sender's upstream and receiver's downstream, converted
/// to queries/minute via the Gnutella query wire size. The attack rate
/// clamp of Sec. 3.5 — Q_d = min(20000, link capacity) — consumes this.

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace ddp::topology {

enum class BandwidthClass : std::uint8_t {
  kModem,   ///< 56 Kbps symmetric
  kDsl,     ///< 1.5 Mbps down / 128 Kbps up
  kCable,   ///< 3 Mbps down / 400 Kbps up
  kT1,      ///< 1.544 Mbps symmetric
  kT3,      ///< 44.7 Mbps symmetric
};

std::string_view bandwidth_class_name(BandwidthClass c) noexcept;

/// Downstream / upstream rates of a class, in Kbps.
double downstream_kbps(BandwidthClass c) noexcept;
double upstream_kbps(BandwidthClass c) noexcept;

/// Average bytes per query descriptor on the wire. The paper's trace
/// (13,075,339 queries in 112 MB) gives ~= 9 bytes of search string plus the
/// 23-byte header — about 34 wire bytes; with TCP/IP framing overhead we
/// use 60 bytes per forwarded query.
inline constexpr double kQueryWireBytes = 60.0;

/// Convert a rate in Kbps to the number of query messages per minute that
/// rate can carry.
double kbps_to_queries_per_minute(double kbps) noexcept;

/// Assignment of bandwidth classes to a peer population.
class BandwidthMap {
 public:
  /// Draw classes from the measurement-derived mixture:
  ///   22% modem (upstream <= 100 Kbps), 30% DSL, 38% cable, 8% T1, 2% T3
  /// which realizes the cited 78%/22% down/up split.
  BandwidthMap(std::size_t peer_count, util::Rng& rng);

  BandwidthClass peer_class(PeerId id) const noexcept { return classes_[id]; }
  double peer_upstream_kbps(PeerId id) const noexcept;
  double peer_downstream_kbps(PeerId id) const noexcept;

  /// Queries/minute capacity of the directed link from -> to: bottleneck of
  /// the sender's upstream and the receiver's downstream.
  double link_queries_per_minute(PeerId from, PeerId to) const noexcept;

  /// Fraction of peers whose downstream is >= the given Kbps (validation).
  double fraction_downstream_at_least(double kbps) const noexcept;
  /// Fraction of peers whose upstream is <= the given Kbps (validation).
  double fraction_upstream_at_most(double kbps) const noexcept;

 private:
  std::vector<BandwidthClass> classes_;
};

}  // namespace ddp::topology
