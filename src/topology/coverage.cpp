#include "topology/coverage.hpp"

#include <algorithm>

namespace ddp::topology {

double CoverageProfile::total_reach() const noexcept {
  double sum = 0.0;
  for (double v : new_nodes) sum += v;
  return sum;
}

double CoverageProfile::total_messages() const noexcept {
  double sum = 0.0;
  for (double v : messages) sum += v;
  return sum;
}

double CoverageProfile::cumulative_reach(std::size_t h) const noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < h && i < new_nodes.size(); ++i) sum += new_nodes[i];
  return sum;
}

double CoverageProfile::fresh_fraction(std::size_t h) const noexcept {
  if (h == 0 || h > messages.size()) return 0.0;
  const double m = messages[h - 1];
  if (m <= 0.0) return 0.0;
  return std::min(1.0, new_nodes[h - 1] / m);
}

double CoverageProfile::branching(std::size_t h) const noexcept {
  if (h == 0 || h >= messages.size()) return 0.0;
  const double fresh = new_nodes[h - 1];
  if (fresh <= 0.0) return 0.0;
  return messages[h] / fresh;
}

CoverageProfile flood_coverage(const Graph& g, PeerId origin, std::size_t ttl) {
  CoverageProfile p;
  p.new_nodes.assign(ttl, 0.0);
  p.messages.assign(ttl, 0.0);
  if (ttl == 0 || origin >= g.node_count() || !g.is_active(origin)) return p;

  // BFS wavefront; `seen` marks peers that already received the query.
  std::vector<char> seen(g.node_count(), 0);
  seen[origin] = 1;
  std::vector<PeerId> frontier{origin};
  std::vector<PeerId> next;

  for (std::size_t h = 1; h <= ttl && !frontier.empty(); ++h) {
    next.clear();
    double msgs = 0.0;
    for (PeerId u : frontier) {
      // The origin sends to all neighbours; forwarders skip the sender.
      // Counting: each fresh peer u at hop h-1 transmits deg(u) minus one
      // copy per inbound edge it already received on. Gnutella forwards on
      // all connections except the arrival one, so out-fan = deg(u) - 1
      // (deg(u) for the origin). Some copies land on already-seen peers:
      // those are the dropped duplicates, still counted in `messages`.
      const double outfan = (u == origin && h == 1)
                                ? static_cast<double>(g.degree(u))
                                : static_cast<double>(g.degree(u)) - 1.0;
      msgs += std::max(0.0, outfan);
      for (PeerId v : g.neighbors(u)) {
        if (!g.is_active(v) || seen[v]) continue;
        seen[v] = 1;
        next.push_back(v);
      }
    }
    p.messages[h - 1] = msgs;
    p.new_nodes[h - 1] = static_cast<double>(next.size());
    frontier.swap(next);
  }
  return p;
}

CoverageProfile average_coverage(const Graph& g, std::size_t ttl,
                                 std::size_t samples, util::Rng& rng) {
  CoverageProfile avg;
  avg.new_nodes.assign(ttl, 0.0);
  avg.messages.assign(ttl, 0.0);
  if (g.active_count() == 0 || ttl == 0) return avg;

  std::size_t used = 0;
  if (samples >= g.active_count()) {
    for (PeerId u = 0; u < g.node_count(); ++u) {
      if (!g.is_active(u)) continue;
      const CoverageProfile p = flood_coverage(g, u, ttl);
      for (std::size_t h = 0; h < ttl; ++h) {
        avg.new_nodes[h] += p.new_nodes[h];
        avg.messages[h] += p.messages[h];
      }
      ++used;
    }
  } else {
    for (std::size_t s = 0; s < samples; ++s) {
      const PeerId u = g.random_active_node(rng);
      if (u == kInvalidPeer) break;
      const CoverageProfile p = flood_coverage(g, u, ttl);
      for (std::size_t h = 0; h < ttl; ++h) {
        avg.new_nodes[h] += p.new_nodes[h];
        avg.messages[h] += p.messages[h];
      }
      ++used;
    }
  }
  if (used > 0) {
    for (std::size_t h = 0; h < ttl; ++h) {
      avg.new_nodes[h] /= static_cast<double>(used);
      avg.messages[h] /= static_cast<double>(used);
    }
  }
  return avg;
}

}  // namespace ddp::topology
