#pragma once

/// \file coverage.hpp
/// Exact flood-coverage profiles of an overlay: for an origin peer, how
/// many fresh nodes a TTL-limited Gnutella flood reaches at each hop and
/// how many messages it generates there. These profiles serve two roles:
///
///  1. validation — the packet engine's measured coverage must match them
///     on an idle network (tests assert this);
///  2. calibration — the flow engine's duplicate-damping factors delta(h)
///     are read off the network-average profile, so aggregate flows
///     propagate with the same branching the real flood would have.
///
/// Flood model (Gnutella 0.6 / the paper's Sec. 2): the origin sends the
/// query to every neighbour; every peer receiving a query it has not seen
/// forwards it to all neighbours except the sender; duplicates are dropped
/// on arrival (but still consumed bandwidth, so they count as messages).

#include <cstddef>
#include <vector>

#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace ddp::topology {

struct CoverageProfile {
  /// new_nodes[h] = peers first reached at hop h (h in [1, ttl]).
  std::vector<double> new_nodes;
  /// messages[h] = query copies transmitted into hop h.
  std::vector<double> messages;

  std::size_t ttl() const noexcept { return new_nodes.size(); }

  /// Total peers reached within the TTL (excluding the origin).
  double total_reach() const noexcept;
  /// Total message transmissions of the flood.
  double total_messages() const noexcept;
  /// Cumulative reach through hop h (1-based; 0 yields 0).
  double cumulative_reach(std::size_t h) const noexcept;

  /// delta(h) = fraction of messages arriving at hop h that land on a
  /// fresh peer (and therefore get forwarded onward). Zero where no
  /// messages flow.
  double fresh_fraction(std::size_t h) const noexcept;

  /// branching(h) = messages(h+1) / new_nodes(h): average out-fan of the
  /// peers first reached at hop h.
  double branching(std::size_t h) const noexcept;
};

/// Exact profile of a flood from `origin` over active nodes.
CoverageProfile flood_coverage(const Graph& g, PeerId origin, std::size_t ttl);

/// Network-average profile over `samples` random active origins (all
/// origins when samples >= active count).
CoverageProfile average_coverage(const Graph& g, std::size_t ttl,
                                 std::size_t samples, util::Rng& rng);

}  // namespace ddp::topology
