#include "topology/edge_index.hpp"

#include <algorithm>

#include "snapshot/snapshot.hpp"

namespace ddp::topology {

EdgeIndex::Slot EdgeIndex::acquire_one(PeerId u, PeerId v) {
  Slot s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    s = static_cast<Slot>(slots_.size());
    slots_.emplace_back();
  }
  SlotInfo& info = slots_[s];
  info.from = u;
  info.to = v;
  ++live_;
  return s;
}

std::pair<EdgeIndex::Slot, EdgeIndex::Slot> EdgeIndex::acquire_pair(PeerId u,
                                                                   PeerId v) {
  const Slot uv = acquire_one(u, v);
  const Slot vu = acquire_one(v, u);
  slots_[uv].rev = vu;
  slots_[vu].rev = uv;
  return {uv, vu};
}

void EdgeIndex::release(Slot slot) {
  const Slot rev = slots_[slot].rev;
  for (const Slot s : {slot, rev}) {
    SlotInfo& info = slots_[s];
    info.from = kInvalidPeer;
    info.to = kInvalidPeer;
    info.rev = kInvalidSlot;
    // Generation bump is what retires every EdgeMap entry keyed to this
    // incarnation; skip the never-written sentinel on wraparound.
    if (++info.gen == kNeverGeneration) info.gen = 0;
    --live_;
  }
  // LIFO reuse keeps the hot end of the slot space cache-resident and the
  // recycling order deterministic.
  free_.push_back(rev);
  free_.push_back(slot);
}

bool EdgeIndex::consistent(std::string* why) const {
  const auto fail = [why](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };
  std::size_t live = 0;
  for (Slot s = 0; s < slots_.size(); ++s) {
    const SlotInfo& info = slots_[s];
    if (info.from == kInvalidPeer) continue;
    ++live;
    if (info.to == kInvalidPeer || info.from == info.to) {
      return fail("slot " + std::to_string(s) + " has invalid endpoints");
    }
    if (info.rev >= slots_.size()) {
      return fail("slot " + std::to_string(s) + " has out-of-range reverse");
    }
    const SlotInfo& rev = slots_[info.rev];
    if (rev.rev != s || rev.from != info.to || rev.to != info.from) {
      return fail("slot " + std::to_string(s) + " reverse is not mutual");
    }
  }
  if (live != live_) {
    return fail("live count " + std::to_string(live_) + " != scanned " +
                std::to_string(live));
  }
  if (live + free_.size() != slots_.size()) {
    return fail("free list size " + std::to_string(free_.size()) +
                " does not complement live set");
  }
  std::vector<Slot> free_sorted = free_;
  std::sort(free_sorted.begin(), free_sorted.end());
  for (std::size_t i = 0; i < free_sorted.size(); ++i) {
    const Slot s = free_sorted[i];
    if (s >= slots_.size() || slots_[s].from != kInvalidPeer) {
      return fail("free list holds live or out-of-range slot " +
                  std::to_string(s));
    }
    if (i > 0 && free_sorted[i - 1] == s) {
      return fail("free list holds slot " + std::to_string(s) + " twice");
    }
  }
  return true;
}

void EdgeIndex::save(snapshot::Writer& w) const {
  w.size(slots_.size());
  for (const SlotInfo& info : slots_) {
    w.u32(info.from);
    w.u32(info.to);
    w.u32(info.rev);
    w.u32(info.gen);
  }
  w.size(free_.size());
  for (const Slot s : free_) w.u32(s);
  w.u64(live_);
}

void EdgeIndex::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxSlots = 1u << 28;
  const std::size_t n = r.size(kMaxSlots);
  slots_.assign(n, SlotInfo{});
  for (SlotInfo& info : slots_) {
    info.from = r.u32();
    info.to = r.u32();
    info.rev = r.u32();
    info.gen = r.u32();
  }
  const std::size_t nfree = r.size(n);
  free_.resize(nfree);
  for (Slot& s : free_) s = r.u32();
  live_ = static_cast<std::size_t>(r.u64());
  std::string why;
  if (!consistent(&why)) {
    throw snapshot::SnapshotError("restored edge index inconsistent: " + why);
  }
}

}  // namespace ddp::topology
