#include "topology/edge_index.hpp"

#include <algorithm>

#include "snapshot/snapshot.hpp"

namespace ddp::topology {

EdgeIndex::Slot EdgeIndex::acquire_one(PeerId u, PeerId v) {
  Slot s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    s = static_cast<Slot>(from_.size());
    from_.push_back(kInvalidPeer);
    to_.push_back(kInvalidPeer);
    rev_.push_back(kInvalidSlot);
    gen_.push_back(0);
  }
  from_[s] = u;
  to_[s] = v;
  ++live_;
  return s;
}

std::pair<EdgeIndex::Slot, EdgeIndex::Slot> EdgeIndex::acquire_pair(PeerId u,
                                                                   PeerId v) {
  const Slot uv = acquire_one(u, v);
  const Slot vu = acquire_one(v, u);
  rev_[uv] = vu;
  rev_[vu] = uv;
  return {uv, vu};
}

void EdgeIndex::release(Slot slot) {
  const Slot rev = rev_[slot];
  for (const Slot s : {slot, rev}) {
    from_[s] = kInvalidPeer;
    to_[s] = kInvalidPeer;
    rev_[s] = kInvalidSlot;
    // Generation bump is what retires every EdgeMap entry keyed to this
    // incarnation; skip the never-written sentinel on wraparound.
    if (++gen_[s] == kNeverGeneration) gen_[s] = 0;
    --live_;
  }
  // LIFO reuse keeps the hot end of the slot space cache-resident and the
  // recycling order deterministic.
  free_.push_back(rev);
  free_.push_back(slot);
}

bool EdgeIndex::consistent(std::string* why) const {
  const auto fail = [why](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };
  if (to_.size() != from_.size() || rev_.size() != from_.size() ||
      gen_.size() != from_.size()) {
    return fail("parallel slot arrays disagree on capacity");
  }
  std::size_t live = 0;
  for (Slot s = 0; s < from_.size(); ++s) {
    if (from_[s] == kInvalidPeer) continue;
    ++live;
    if (to_[s] == kInvalidPeer || from_[s] == to_[s]) {
      return fail("slot " + std::to_string(s) + " has invalid endpoints");
    }
    if (rev_[s] >= from_.size()) {
      return fail("slot " + std::to_string(s) + " has out-of-range reverse");
    }
    const Slot r = rev_[s];
    if (rev_[r] != s || from_[r] != to_[s] || to_[r] != from_[s]) {
      return fail("slot " + std::to_string(s) + " reverse is not mutual");
    }
  }
  if (live != live_) {
    return fail("live count " + std::to_string(live_) + " != scanned " +
                std::to_string(live));
  }
  if (live + free_.size() != from_.size()) {
    return fail("free list size " + std::to_string(free_.size()) +
                " does not complement live set");
  }
  std::vector<Slot> free_sorted = free_;
  std::sort(free_sorted.begin(), free_sorted.end());
  for (std::size_t i = 0; i < free_sorted.size(); ++i) {
    const Slot s = free_sorted[i];
    if (s >= from_.size() || from_[s] != kInvalidPeer) {
      return fail("free list holds live or out-of-range slot " +
                  std::to_string(s));
    }
    if (i > 0 && free_sorted[i - 1] == s) {
      return fail("free list holds slot " + std::to_string(s) + " twice");
    }
  }
  return true;
}

void EdgeIndex::save(snapshot::Writer& w) const {
  // Field order matches the pre-SoA array-of-structs record, so images
  // written by either layout round-trip through the other.
  w.size(from_.size());
  for (Slot s = 0; s < from_.size(); ++s) {
    w.u32(from_[s]);
    w.u32(to_[s]);
    w.u32(rev_[s]);
    w.u32(gen_[s]);
  }
  w.size(free_.size());
  for (const Slot s : free_) w.u32(s);
  w.u64(live_);
}

void EdgeIndex::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxSlots = 1u << 28;
  const std::size_t n = r.size(kMaxSlots);
  from_.assign(n, kInvalidPeer);
  to_.assign(n, kInvalidPeer);
  rev_.assign(n, kInvalidSlot);
  gen_.assign(n, 0);
  for (Slot s = 0; s < n; ++s) {
    from_[s] = r.u32();
    to_[s] = r.u32();
    rev_[s] = r.u32();
    gen_[s] = r.u32();
  }
  const std::size_t nfree = r.size(n);
  free_.resize(nfree);
  for (Slot& s : free_) s = r.u32();
  live_ = static_cast<std::size_t>(r.u64());
  std::string why;
  if (!consistent(&why)) {
    throw snapshot::SnapshotError("restored edge index inconsistent: " + why);
  }
}

}  // namespace ddp::topology
