#pragma once

/// \file edge_index.hpp
/// Dense directed-edge slot index over the overlay graph, plus the generic
/// dense containers (`EdgeMap`, `SplitEdgeMap`, `PeerMap`) the engines key
/// per-link and per-peer state off.
///
/// Every live directed edge owns a stable dense *slot* (a small integer).
/// Slots of removed edges go on a free list and are recycled by later
/// insertions, so the slot space stays compact under arbitrary churn —
/// the same slab-with-generations design as the simulation core's event
/// slab. A recycled slot's *generation* is bumped on release, which is how
/// an `EdgeMap` distinguishes state written for a previous incarnation of
/// the slot from state belonging to the current edge: stale entries are
/// simply unreadable, no per-layer teardown bookkeeping required.
///
/// The index replaces the per-layer `(from << 32 | to)` hash maps that the
/// flow engine, the packet engine's rate monitors and DD-POLICE each grew
/// independently: one authority for the live directed edge set, O(1)
/// array-indexed state access, and linear slot sweeps instead of scattered
/// hash iteration on the per-minute paths.
///
/// Layout: the slot table is structure-of-arrays (parallel from_/to_/
/// rev_/gen_ vectors) so sweeps that consult a single attribute — the
/// per-minute generation scans, the endpoint lookups of the shard planner
/// — pull one tightly packed array through cache instead of striding
/// 16-byte records. The snapshot byte format interleaves the fields
/// exactly as the old array-of-structs table did, so images round-trip
/// across the layout change.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::topology {

class EdgeIndex {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kInvalidSlot = 0xffffffffu;
  /// Generation value no live or released slot ever carries; dense maps
  /// use it to mark never-written entries.
  static constexpr std::uint32_t kNeverGeneration = 0xffffffffu;

  /// Allocate slots for both directions of a new undirected edge.
  /// Returns {slot(u->v), slot(v->u)}; the two are mutual reverses.
  std::pair<Slot, Slot> acquire_pair(PeerId u, PeerId v);

  /// Release a directed slot *and its reverse* (edges are undirected at
  /// the topology level, so both directions always die together). Bumps
  /// both generations, invalidating any EdgeMap state they carried.
  void release(Slot slot);

  /// Slots ever allocated (live + free). EdgeMaps size their arrays to it.
  std::size_t capacity() const noexcept { return from_.size(); }
  /// Live directed slots — exactly 2 * Graph::edge_count().
  std::size_t live_count() const noexcept { return live_; }

  bool live(Slot slot) const noexcept {
    return slot < from_.size() && from_[slot] != kInvalidPeer;
  }
  PeerId from(Slot slot) const noexcept { return from_[slot]; }
  PeerId to(Slot slot) const noexcept { return to_[slot]; }
  Slot reverse(Slot slot) const noexcept { return rev_[slot]; }
  std::uint32_t generation(Slot slot) const noexcept { return gen_[slot]; }

  /// The raw generation array (size == capacity()). Hot sweeps that test
  /// many slots against an EdgeMap's own generations index this directly
  /// instead of paying a bounds-checked call per slot.
  const std::uint32_t* generations() const noexcept { return gen_.data(); }

  /// Structural self-check (tests, soak invariants): live/free partition
  /// adds up, reverses are mutual, free-list entries are dead and unique.
  /// Writes the first violation into *why (if non-null) on failure.
  bool consistent(std::string* why = nullptr) const;

  /// Serialize the complete slot table, free list and generations into the
  /// writer's open section.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save(). Replaces all current state; throws
  /// SnapshotError when the restored index fails consistent().
  void load(snapshot::Reader& r);

 private:
  Slot acquire_one(PeerId u, PeerId v);

  // Parallel arrays over the slot space. from_[s] == kInvalidPeer marks a
  // slot on the free list; gen_ survives release so recycled incarnations
  // stay distinguishable.
  std::vector<PeerId> from_;
  std::vector<PeerId> to_;
  std::vector<Slot> rev_;
  std::vector<std::uint32_t> gen_;
  std::vector<Slot> free_;
  std::size_t live_ = 0;
};

/// Dense per-directed-edge state, keyed by EdgeIndex slot. Semantics match
/// the hash maps it replaces: `touch` is operator[] (find-or-create),
/// `find` is lookup-without-insert, and entries written for a previous
/// incarnation of a recycled slot read as absent (generation mismatch) —
/// tearing an edge down implicitly erases every layer's state for it.
template <typename T>
class EdgeMap {
 public:
  explicit EdgeMap(const EdgeIndex& index) : index_(&index) {}

  /// Value for the slot's current incarnation, default-constructed (or
  /// reset from a stale incarnation) on first touch.
  T& touch(EdgeIndex::Slot slot) {
    if (slot >= gens_.size()) {
      const std::size_t want = std::max<std::size_t>(slot + 1, index_->capacity());
      gens_.resize(want, EdgeIndex::kNeverGeneration);
      values_.resize(want);
    }
    const std::uint32_t gen = index_->generation(slot);
    if (gens_[slot] != gen) {
      values_[slot] = T{};
      gens_[slot] = gen;
    }
    return values_[slot];
  }

  /// Null when the slot is dead, recycled since last touched, or never
  /// touched — exactly unordered_map::find on the old keyed maps.
  const T* find(EdgeIndex::Slot slot) const noexcept {
    if (slot >= gens_.size() || !index_->live(slot)) return nullptr;
    return gens_[slot] == index_->generation(slot) ? &values_[slot] : nullptr;
  }
  T* find(EdgeIndex::Slot slot) noexcept {
    return const_cast<T*>(std::as_const(*this).find(slot));
  }

  void erase(EdgeIndex::Slot slot) noexcept {
    if (slot < gens_.size()) gens_[slot] = EdgeIndex::kNeverGeneration;
  }

  /// Pre-grow the dense arrays to the index's current capacity so a batch
  /// of touch() calls never reallocates mid-batch (references handed out
  /// earlier in the batch stay valid).
  void sync() {
    if (gens_.size() < index_->capacity()) {
      gens_.resize(index_->capacity(), EdgeIndex::kNeverGeneration);
      values_.resize(index_->capacity());
    }
  }

  void clear() noexcept {
    gens_.assign(gens_.size(), EdgeIndex::kNeverGeneration);
  }

  /// Visit every live, current entry in slot order (deterministic: slot
  /// assignment is a pure function of the graph's edge add/remove
  /// history, never of hash layout).
  template <typename F>
  void for_each(F&& f) {
    for (EdgeIndex::Slot s = 0; s < gens_.size(); ++s) {
      if (index_->live(s) && gens_[s] == index_->generation(s)) {
        f(s, values_[s]);
      }
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    for (EdgeIndex::Slot s = 0; s < gens_.size(); ++s) {
      if (index_->live(s) && gens_[s] == index_->generation(s)) {
        f(s, values_[s]);
      }
    }
  }

  const EdgeIndex& index() const noexcept { return *index_; }

 private:
  const EdgeIndex* index_;
  std::vector<T> values_;
  std::vector<std::uint32_t> gens_;
};

/// EdgeMap with the value split into a *hot* and a *cold* half stored in
/// separate parallel arrays under one shared generation array. The flow
/// engine keys its 256-byte in-flight flow vectors (read/written every
/// tick) as Hot and its 16-byte minute counters (read by monitors, swept
/// once a minute) as Cold: per-tick phases stream the hot array without
/// dragging minute state through cache, and the minute rotation plus
/// every DD-POLICE counter sweep touch only the cold array — 17x less
/// memory traffic than sweeping the fused records.
///
/// Incarnation semantics are identical to EdgeMap (one generation guards
/// both halves; a touch that detects a stale generation resets both).
template <typename Hot, typename Cold>
class SplitEdgeMap {
 public:
  explicit SplitEdgeMap(const EdgeIndex& index) : index_(&index) {}

  /// Hot value for the slot's current incarnation; resets both halves
  /// when the slot was never written or belongs to a stale incarnation.
  Hot& touch(EdgeIndex::Slot slot) {
    if (slot >= gens_.size()) grow(slot);
    const std::uint32_t gen = index_->generation(slot);
    if (gens_[slot] != gen) {
      hot_[slot] = Hot{};
      cold_[slot] = Cold{};
      gens_[slot] = gen;
    }
    return hot_[slot];
  }

  const Hot* find(EdgeIndex::Slot slot) const noexcept {
    if (slot >= gens_.size() || !index_->live(slot)) return nullptr;
    return gens_[slot] == index_->generation(slot) ? &hot_[slot] : nullptr;
  }
  Hot* find(EdgeIndex::Slot slot) noexcept {
    return const_cast<Hot*>(std::as_const(*this).find(slot));
  }

  const Cold* find_cold(EdgeIndex::Slot slot) const noexcept {
    if (slot >= gens_.size() || !index_->live(slot)) return nullptr;
    return gens_[slot] == index_->generation(slot) ? &cold_[slot] : nullptr;
  }
  Cold* find_cold(EdgeIndex::Slot slot) noexcept {
    return const_cast<Cold*>(std::as_const(*this).find_cold(slot));
  }

  /// Unchecked cold access for a slot already validated this tick by
  /// touch()/find() — the phase-3 pattern: find the hot record, then bump
  /// the minute counter without re-running the generation test.
  Cold& cold(EdgeIndex::Slot slot) noexcept { return cold_[slot]; }
  const Cold& cold(EdgeIndex::Slot slot) const noexcept { return cold_[slot]; }

  void erase(EdgeIndex::Slot slot) noexcept {
    if (slot < gens_.size()) gens_[slot] = EdgeIndex::kNeverGeneration;
  }

  /// Pre-grow to the index's capacity (same contract as EdgeMap::sync):
  /// after this, no touch() below capacity() reallocates — which is also
  /// what makes concurrent touches of *distinct* slots safe during the
  /// sharded sweeps.
  void sync() {
    if (gens_.size() < index_->capacity()) grow(index_->capacity() - 1);
  }

  void clear() noexcept {
    gens_.assign(gens_.size(), EdgeIndex::kNeverGeneration);
  }

  /// Visit every live, current entry in slot order: f(slot, hot, cold).
  template <typename F>
  void for_each(F&& f) {
    for (EdgeIndex::Slot s = 0; s < gens_.size(); ++s) {
      if (index_->live(s) && gens_[s] == index_->generation(s)) {
        f(s, hot_[s], cold_[s]);
      }
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    for (EdgeIndex::Slot s = 0; s < gens_.size(); ++s) {
      if (index_->live(s) && gens_[s] == index_->generation(s)) {
        f(s, hot_[s], cold_[s]);
      }
    }
  }

  /// Visit only the cold halves of live, current entries in slot order —
  /// the minute-rotation sweep; never faults the hot arrays in.
  template <typename F>
  void for_each_cold(F&& f) {
    const std::uint32_t* index_gens = index_->generations();
    for (EdgeIndex::Slot s = 0; s < gens_.size(); ++s) {
      if (gens_[s] == index_gens[s] && index_->live(s)) f(s, cold_[s]);
    }
  }

  const EdgeIndex& index() const noexcept { return *index_; }

 private:
  void grow(EdgeIndex::Slot max_slot) {
    const std::size_t want =
        std::max<std::size_t>(static_cast<std::size_t>(max_slot) + 1,
                              index_->capacity());
    gens_.resize(want, EdgeIndex::kNeverGeneration);
    hot_.resize(want);
    cold_.resize(want);
  }

  const EdgeIndex* index_;
  std::vector<Hot> hot_;
  std::vector<Cold> cold_;
  std::vector<std::uint32_t> gens_;
};

/// Dense per-peer state keyed by PeerId. PeerIds are already dense and
/// never recycled (deactivation keeps the id), so this is a plain
/// auto-growing array with map-like access semantics: absent entries read
/// as default-constructed, iteration runs in PeerId order.
template <typename T>
class PeerMap {
 public:
  /// Find-or-create (operator[] of the map it replaces).
  T& operator[](PeerId p) {
    if (p >= values_.size()) values_.resize(static_cast<std::size_t>(p) + 1);
    return values_[p];
  }

  const T* find(PeerId p) const noexcept {
    return p < values_.size() ? &values_[p] : nullptr;
  }
  T* find(PeerId p) noexcept {
    return p < values_.size() ? &values_[p] : nullptr;
  }

  /// Peers touched so far (the dense array's extent, not a live count).
  std::size_t extent() const noexcept { return values_.size(); }

  /// Visit every entry (default-valued ones included) in PeerId order.
  template <typename F>
  void for_each(F&& f) {
    for (PeerId p = 0; p < values_.size(); ++p) f(p, values_[p]);
  }
  template <typename F>
  void for_each(F&& f) const {
    for (PeerId p = 0; p < values_.size(); ++p) f(p, values_[p]);
  }

  void clear() noexcept { values_.clear(); }

 private:
  std::vector<T> values_;
};

}  // namespace ddp::topology
