#include "topology/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/log.hpp"

namespace ddp::topology {

namespace {

/// Connect stray components by linking a random node of each secondary
/// component to a random node of the main one.
void patch_connectivity(Graph& g, util::Rng& rng) {
  const std::size_t n = g.node_count();
  std::vector<int> comp(n, -1);
  int comp_count = 0;
  std::vector<PeerId> stack;
  for (PeerId s = 0; s < n; ++s) {
    if (comp[s] >= 0) continue;
    comp[s] = comp_count;
    stack.push_back(s);
    while (!stack.empty()) {
      const PeerId u = stack.back();
      stack.pop_back();
      for (PeerId v : g.neighbors(u)) {
        if (comp[v] < 0) {
          comp[v] = comp_count;
          stack.push_back(v);
        }
      }
    }
    ++comp_count;
  }
  if (comp_count <= 1) return;
  // One representative per component; attach all others to component 0.
  std::vector<PeerId> rep(static_cast<std::size_t>(comp_count), kInvalidPeer);
  for (PeerId u = 0; u < n; ++u) {
    auto c = static_cast<std::size_t>(comp[u]);
    if (rep[c] == kInvalidPeer) rep[c] = u;
  }
  for (std::size_t c = 1; c < rep.size(); ++c) {
    // Random anchor in component 0.
    PeerId anchor = rep[0];
    for (int tries = 0; tries < 64; ++tries) {
      const auto cand =
          static_cast<PeerId>(rng.below(static_cast<std::uint32_t>(n)));
      if (comp[cand] == 0) {
        anchor = cand;
        break;
      }
    }
    g.add_edge(rep[c], anchor);
  }
}

Graph generate_barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng) {
  if (m == 0 || n <= m) {
    throw std::invalid_argument("BA generator: need nodes > links_per_node >= 1");
  }
  Graph g(n);
  // Seed clique over the first m+1 nodes.
  for (PeerId u = 0; u <= m; ++u) {
    for (PeerId v = u + 1; v <= m; ++v) g.add_edge(u, v);
  }
  // Repeated-endpoint list: picking a uniform element is equivalent to
  // degree-proportional node selection.
  std::vector<PeerId> endpoints;
  endpoints.reserve(2 * n * m);
  for (PeerId u = 0; u <= m; ++u) {
    for (PeerId v : g.neighbors(u)) {
      (void)v;
      endpoints.push_back(u);
    }
  }
  for (PeerId u = static_cast<PeerId>(m + 1); u < n; ++u) {
    std::size_t added = 0;
    std::vector<PeerId> chosen;
    while (added < m) {
      const PeerId target = endpoints[rng.below(
          static_cast<std::uint32_t>(endpoints.size()))];
      if (target == u ||
          std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        continue;
      }
      g.add_edge(u, target);
      chosen.push_back(target);
      ++added;
    }
    for (PeerId t : chosen) {
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return g;
}

/// Barabási–Albert growth under a hard degree ceiling (the hub-suppressed
/// scale-free family studied for flood resilience): a node at the cutoff
/// stops attracting links, so its endpoint-list entries are skipped and the
/// joining node's preference redistributes to unsaturated peers.
Graph generate_hard_cutoff(const GeneratorConfig& cfg, util::Rng& rng) {
  const std::size_t n = cfg.nodes;
  const std::size_t m = cfg.ba_links_per_node;
  if (m == 0 || n <= m) {
    throw std::invalid_argument(
        "hard-cutoff generator: need nodes > links_per_node >= 1");
  }
  const double kc_raw =
      std::ceil(std::pow(static_cast<double>(n), 1.0 / cfg.hc_cutoff_exponent));
  // The seed clique already gives every member degree m; a cutoff below
  // m + 1 could never grow past the clique.
  const std::size_t kc = std::max<std::size_t>(
      m + 1, kc_raw < static_cast<double>(n) ? static_cast<std::size_t>(kc_raw)
                                             : n);
  Graph g(n);
  for (PeerId u = 0; u <= m; ++u) {
    for (PeerId v = u + 1; v <= m; ++v) g.add_edge(u, v);
  }
  std::vector<PeerId> endpoints;
  endpoints.reserve(2 * n * m);
  for (PeerId u = 0; u <= m; ++u) {
    for (std::size_t k = 0; k < g.neighbors(u).size(); ++k) endpoints.push_back(u);
  }
  const auto saturated = [&](PeerId v) { return g.neighbors(v).size() >= kc; };
  std::vector<PeerId> chosen;
  for (PeerId u = static_cast<PeerId>(m + 1); u < n; ++u) {
    chosen.clear();
    std::size_t added = 0;
    // Preferential draws, rejecting saturated endpoints. The try budget
    // bounds the draw loop when most of the list points at full hubs.
    for (std::size_t tries = 0; tries < 64 * m && added < m; ++tries) {
      const PeerId target = endpoints[rng.below(
          static_cast<std::uint32_t>(endpoints.size()))];
      if (target == u || saturated(target) ||
          std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        continue;
      }
      g.add_edge(u, target);
      chosen.push_back(target);
      ++added;
    }
    // Fallback sweep keeps the overlay connected when the draw budget ran
    // out: link to the earliest unsaturated non-neighbour.
    for (PeerId t = 0; t < u && added < m; ++t) {
      if (t == u || saturated(t) ||
          std::find(chosen.begin(), chosen.end(), t) != chosen.end()) {
        continue;
      }
      g.add_edge(u, t);
      chosen.push_back(t);
      ++added;
    }
    if (added == 0) {
      // Every earlier node is at the ceiling; connectivity trumps the
      // cutoff for this one link.
      g.add_edge(u, static_cast<PeerId>(u - 1));
      chosen.push_back(static_cast<PeerId>(u - 1));
    }
    for (PeerId t : chosen) {
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph generate_waxman(const GeneratorConfig& cfg, util::Rng& rng) {
  const std::size_t n = cfg.nodes;
  Graph g(n);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const double max_dist = std::sqrt(2.0);
  // First pass: expected degree with alpha as given, to derive a scaling
  // factor that hits the requested average degree.
  double expected_edges = 0.0;
  const std::size_t probe = std::min<std::size_t>(n, 200);
  for (std::size_t i = 0; i < probe; ++i) {
    for (std::size_t j = i + 1; j < probe; ++j) {
      const double d = std::hypot(x[i] - x[j], y[i] - y[j]);
      expected_edges += cfg.waxman_alpha * std::exp(-d / (cfg.waxman_beta * max_dist));
    }
  }
  const double probe_pairs = static_cast<double>(probe) * (static_cast<double>(probe) - 1.0) / 2.0;
  const double p_mean = probe_pairs > 0 ? expected_edges / probe_pairs : 0.0;
  const double target_edges = cfg.waxman_target_degree * static_cast<double>(n) / 2.0;
  const double all_pairs = static_cast<double>(n) * (static_cast<double>(n) - 1.0) / 2.0;
  const double scale = p_mean > 0 ? (target_edges / all_pairs) / p_mean : 1.0;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = std::hypot(x[i] - x[j], y[i] - y[j]);
      const double p =
          scale * cfg.waxman_alpha * std::exp(-d / (cfg.waxman_beta * max_dist));
      if (rng.chance(p)) g.add_edge(static_cast<PeerId>(i), static_cast<PeerId>(j));
    }
  }
  patch_connectivity(g, rng);
  return g;
}

Graph generate_erdos_renyi(const GeneratorConfig& cfg, util::Rng& rng) {
  const std::size_t n = cfg.nodes;
  Graph g(n);
  const double p = cfg.er_target_degree / static_cast<double>(n - 1);
  // Geometric skipping (Batagelj–Brandes) for O(edges) generation.
  const double log1mp = std::log1p(-p);
  std::size_t v = 1, w = static_cast<std::size_t>(-1);
  while (v < n) {
    double u = rng.uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    w += 1 + static_cast<std::size_t>(std::floor(std::log(u) / log1mp));
    while (w >= v && v < n) {
      w -= v;
      ++v;
    }
    if (v < n) g.add_edge(static_cast<PeerId>(v), static_cast<PeerId>(w));
  }
  patch_connectivity(g, rng);
  return g;
}

}  // namespace

Graph generate(const GeneratorConfig& config, util::Rng& rng) {
  switch (config.model) {
    case Model::kBarabasiAlbert:
      return generate_barabasi_albert(config.nodes, config.ba_links_per_node, rng);
    case Model::kWaxman:
      return generate_waxman(config, rng);
    case Model::kErdosRenyi:
      return generate_erdos_renyi(config, rng);
    case Model::kHardCutoff:
      return generate_hard_cutoff(config, rng);
    case Model::kTwoTier: {
      TwoTierConfig tt = config.two_tier;
      tt.nodes = config.nodes;
      tt.ultrapeers = std::min(tt.ultrapeers, std::max<std::size_t>(
          tt.core_links_per_node + 2, config.nodes / 5));
      return two_tier_topology(tt, rng);
    }
  }
  throw std::invalid_argument("generate: unknown model");
}

Graph two_tier_topology(const TwoTierConfig& config, util::Rng& rng) {
  if (config.ultrapeers < config.core_links_per_node + 1 ||
      config.ultrapeers > config.nodes) {
    throw std::invalid_argument("two_tier_topology: bad ultrapeer count");
  }
  // Barabási–Albert core over the first `ultrapeers` ids.
  Graph core = generate_barabasi_albert(config.ultrapeers,
                                        config.core_links_per_node, rng);
  Graph g(config.nodes);
  for (PeerId u = 0; u < config.ultrapeers; ++u) {
    for (PeerId v : core.neighbors(u)) {
      if (u < v) g.add_edge(u, v);
    }
  }
  // Leaves attach to degree-preferential ultrapeers (host caches hand out
  // the well-known, well-connected ones first).
  for (PeerId leaf = static_cast<PeerId>(config.ultrapeers);
       leaf < config.nodes; ++leaf) {
    std::size_t added = 0;
    for (std::size_t tries = 0;
         tries < config.leaf_links * 16 && added < config.leaf_links; ++tries) {
      const auto up = static_cast<PeerId>(
          rng.below(static_cast<std::uint32_t>(config.ultrapeers)));
      if (g.add_edge(leaf, up)) ++added;
    }
  }
  return g;
}

Graph paper_topology(std::size_t nodes, util::Rng& rng) {
  GeneratorConfig cfg;
  cfg.model = Model::kBarabasiAlbert;
  cfg.nodes = nodes;
  cfg.ba_links_per_node = 3;
  return generate(cfg, rng);
}

}  // namespace ddp::topology
