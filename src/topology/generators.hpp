#pragma once

/// \file generators.hpp
/// Overlay topology generators replacing the paper's use of BRITE
/// (Sec. 3.5): Barabási–Albert preferential attachment (BRITE's default
/// AS-level model and the one matching the paper's description — "most
/// peers have 3 or 4 logical neighbors, and a few peers have tens of direct
/// neighbors; the average number of neighbors is 6"), Waxman random
/// geometric graphs, and Erdős–Rényi as a null model for ablations.

#include <cstdint>

#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace ddp::topology {

enum class Model : std::uint8_t {
  kBarabasiAlbert,  ///< preferential attachment, m links per joining node
  kWaxman,          ///< BRITE's Waxman flat random model
  kErdosRenyi,      ///< G(n, p) null model
  kTwoTier,         ///< Gnutella 0.6 ultrapeer/leaf structure
  kHardCutoff,      ///< preferential attachment with a hard degree cutoff
};

/// A Gnutella-0.6-style two-tier overlay (the paper's introduction: the
/// flood runs "among peers or among super-peers"). A BA core of
/// `ultrapeers` forms the flooding backbone; the remaining nodes are
/// leaves, each attached to `leaf_links` ultrapeers. Node ids
/// [0, ultrapeers) are the core.
struct TwoTierConfig {
  std::size_t nodes = 2000;
  std::size_t ultrapeers = 300;
  std::size_t core_links_per_node = 3;  ///< BA parameter inside the core
  std::size_t leaf_links = 2;           ///< ultrapeer connections per leaf
};

struct GeneratorConfig {
  Model model = Model::kBarabasiAlbert;
  std::size_t nodes = 2000;

  /// Two-tier parameters (model == kTwoTier); `nodes` overrides the
  /// embedded node count.
  TwoTierConfig two_tier{};

  /// Barabási–Albert: edges added per joining node. m = 3 yields average
  /// degree ~6 with mode 3-4 and a heavy tail — the paper's shape.
  std::size_t ba_links_per_node = 3;

  /// Waxman parameters: P(edge between u,v) = alpha * exp(-d / (beta * L)).
  double waxman_alpha = 0.15;
  double waxman_beta = 0.2;
  /// Waxman target average degree; edge probability is scaled to hit it.
  double waxman_target_degree = 6.0;

  /// Erdős–Rényi target average degree (p = target / (n-1)).
  double er_target_degree = 6.0;

  /// Hard-cutoff scale-free (model == kHardCutoff): Barabási–Albert growth
  /// with `ba_links_per_node` links per joining node, but no node may
  /// exceed k_c = max(m + 1, ceil(n^(1 / hc_cutoff_exponent))) neighbours —
  /// saturated nodes stop attracting links and the tail mass redistributes
  /// to mid-degree peers. Exponent 2 (k_c ~ sqrt(n)) is the classic
  /// hub-suppressed overlay; larger exponents cut harder. Valid range is
  /// [1, 16] (validated by the experiment config; 1 means k_c = n, i.e.
  /// plain BA).
  double hc_cutoff_exponent = 2.0;
};

/// Generate a connected overlay per `config`. Generators retry/patch until
/// the graph is connected (flooding experiments need one component).
Graph generate(const GeneratorConfig& config, util::Rng& rng);

/// The exact topology family used in the paper's evaluation: 2,000 peers,
/// Barabási–Albert, average degree ~6.
Graph paper_topology(std::size_t nodes, util::Rng& rng);

Graph two_tier_topology(const TwoTierConfig& config, util::Rng& rng);

/// True when `node` is in the ultrapeer core of a two-tier overlay.
constexpr bool is_ultrapeer(const TwoTierConfig& config, PeerId node) noexcept {
  return node < config.ultrapeers;
}

}  // namespace ddp::topology
